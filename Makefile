# Convenience targets; everything is plain `go` underneath.

.PHONY: all build lint lint-update-baseline test test-norace race cover bench experiments fuzz fuzz-smoke clean

all: build lint test

build:
	go build ./...
	go vet ./...

# Repo-specific static analysis (docs/LINTING.md describes the analyzers).
# Baseline-aware: only findings absent from lint.baseline.json fail the
# build, so an inherited finding never blocks unrelated work.
lint:
	go run ./cmd/repolint -baseline lint.baseline.json ./...

# Re-snapshot the baseline after deliberately accepting a finding.
# Prefer fixing; baseline entries are debt, and reviews should treat a
# growing baseline as a smell.
lint-update-baseline:
	go run ./cmd/repolint -baseline lint.baseline.json -update-baseline ./...

# The race detector is the default test path; the only race-sensitive test
# (topology timing, see internal/topology/race_on_test.go) skips itself.
test:
	go test -race ./...

# Opt-out for slow machines; CI and `make all` stay on the race path.
test-norace:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every paper table/figure (EXPERIMENTS.md documents them).
experiments:
	go run ./cmd/ssjoinbench

# Short fuzz pass over the codec and tokenizers.
fuzz:
	go test -fuzz FuzzReaderNeverPanics -fuzztime 15s ./internal/wire/
	go test -fuzz FuzzRecordRoundTrip -fuzztime 15s ./internal/wire/
	go test -fuzz FuzzWordTokenizer -fuzztime 10s ./internal/tokens/
	go test -fuzz FuzzQGramTokenizer -fuzztime 10s ./internal/tokens/
	go test -fuzz FuzzJoinMatchesBruteForce -fuzztime 15s ./internal/offline/
	go test -fuzz FuzzIntersectKernels -fuzztime 15s ./internal/similarity/
	go test -fuzz FuzzTreeVsCollect -fuzztime 15s ./internal/bundle/

# ~10s fuzz sanity pass for CI.
fuzz-smoke:
	go test -fuzz FuzzReaderNeverPanics -fuzztime 2s ./internal/wire/
	go test -fuzz FuzzRecordRoundTrip -fuzztime 2s ./internal/wire/
	go test -fuzz FuzzWordTokenizer -fuzztime 2s ./internal/tokens/
	go test -fuzz FuzzQGramTokenizer -fuzztime 2s ./internal/tokens/
	go test -fuzz FuzzJoinMatchesBruteForce -fuzztime 2s ./internal/offline/
	go test -fuzz FuzzIntersectKernels -fuzztime 2s ./internal/similarity/
	go test -fuzz FuzzTreeVsCollect -fuzztime 2s ./internal/bundle/

clean:
	rm -rf internal/*/testdata/fuzz
