# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race cover bench experiments fuzz clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every paper table/figure (EXPERIMENTS.md documents them).
experiments:
	go run ./cmd/ssjoinbench

# Short fuzz pass over the codec and tokenizers.
fuzz:
	go test -fuzz FuzzReaderNeverPanics -fuzztime 15s ./internal/wire/
	go test -fuzz FuzzRecordRoundTrip -fuzztime 15s ./internal/wire/
	go test -fuzz FuzzWordTokenizer -fuzztime 10s ./internal/tokens/
	go test -fuzz FuzzQGramTokenizer -fuzztime 10s ./internal/tokens/
	go test -fuzz FuzzJoinMatchesBruteForce -fuzztime 15s ./internal/offline/

clean:
	rm -rf internal/*/testdata/fuzz
