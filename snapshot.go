package ssjoin

import (
	"io"

	"repro/internal/checkpoint"
	"repro/internal/record"
)

// WriteSnapshot persists the stream's window state (the records still
// joinable) and its ID/time cursor to w. Restore with RestoreStream using
// the same Config; snapshots are logical, so they remain readable across
// library versions that change index internals.
func (s *Stream) WriteSnapshot(w io.Writer) error {
	return checkpoint.Write(w, checkpoint.Cursor{
		NextID:   uint64(s.nextID),
		NextTime: s.tick,
	}, s.joiner)
}

// RestoreStream reconstructs a Stream from a snapshot produced by
// WriteSnapshot. cfg must match the snapshotting stream's configuration:
// the snapshot carries records, not parameters, so joining semantics come
// entirely from cfg. The restored stream continues ID assignment where the
// original left off.
func RestoreStream(r io.Reader, cfg Config) (*Stream, error) {
	s, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	cur, n, err := checkpoint.Read(r, s.joiner)
	if err != nil {
		return nil, err
	}
	s.nextID = record.ID(cur.NextID)
	s.tick = cur.NextTime
	s.records = uint64(n)
	return s, nil
}
