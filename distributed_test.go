package ssjoin

import (
	"math/rand"
	"testing"
)

func randomSets(n, universe int, seed int64) [][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]uint32, n)
	var protos [][]uint32
	for i := range sets {
		var set []uint32
		if len(protos) > 0 && rng.Float64() < 0.4 {
			p := protos[rng.Intn(len(protos))]
			set = append([]uint32{}, p...)
			if len(set) > 1 {
				set[rng.Intn(len(set))] = uint32(rng.Intn(universe))
			}
		} else {
			m := 3 + rng.Intn(10)
			set = make([]uint32, m)
			for j := range set {
				set[j] = uint32(rng.Intn(universe))
			}
			protos = append(protos, set)
		}
		sets[i] = set
	}
	return sets
}

func TestRunDistributedValidation(t *testing.T) {
	sets := randomSets(10, 50, 1)
	if _, err := RunDistributed(sets, DistributedConfig{
		Config: Config{Threshold: 0.8}, Workers: 0,
	}); err == nil {
		t.Fatal("expected worker validation error")
	}
	if _, err := RunDistributed(sets, DistributedConfig{
		Config: Config{}, Workers: 2,
	}); err == nil {
		t.Fatal("expected threshold validation error")
	}
	if _, err := RunDistributed(sets, DistributedConfig{
		Config: Config{Threshold: 0.8}, Workers: 2, Distribution: Distribution(9),
	}); err == nil {
		t.Fatal("expected distribution validation error")
	}
	if _, err := RunDistributed(sets, DistributedConfig{
		Config: Config{Threshold: 0.8}, Workers: 2, Partitioner: Partitioner(9),
	}); err == nil {
		t.Fatal("expected partitioner validation error")
	}
}

// TestDistributedMatchesSingleNode: all distributions and partitioners must
// produce the single-node result set.
func TestDistributedMatchesSingleNode(t *testing.T) {
	sets := randomSets(400, 60, 7)
	single, err := NewStream(Config{Threshold: 0.7, Algorithm: Naive})
	if err != nil {
		t.Fatal(err)
	}
	type pr struct{ a, b uint64 }
	want := make(map[pr]bool)
	for _, set := range sets {
		id, ms := single.Add(set)
		for _, m := range ms {
			want[pr{m.ID, id}] = true
		}
	}
	for _, dist := range []Distribution{LengthBased, PrefixBased, BroadcastBased} {
		for _, part := range []Partitioner{LoadAware, EvenLength, EvenFrequency} {
			if dist != LengthBased && part != LoadAware {
				continue // partitioner only matters for LengthBased
			}
			res, err := RunDistributed(sets, DistributedConfig{
				Config:       Config{Threshold: 0.7},
				Workers:      4,
				Distribution: dist,
				Partitioner:  part,
				CollectPairs: true,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", dist, part, err)
			}
			got := make(map[pr]bool)
			for _, p := range res.Pairs {
				key := pr{p.A, p.B}
				if got[key] {
					t.Fatalf("%v/%v: duplicate %v", dist, part, key)
				}
				got[key] = true
			}
			if len(got) != len(want) {
				t.Fatalf("%v/%v: got %d pairs want %d", dist, part, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%v/%v: missing %v", dist, part, p)
				}
			}
		}
	}
}

func TestDistributedSummaryFields(t *testing.T) {
	sets := randomSets(500, 100, 13)
	res, err := RunDistributed(sets, DistributedConfig{
		Config:  Config{Threshold: 0.7},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 500 || res.Elapsed <= 0 || res.ThroughputPerSec <= 0 {
		t.Fatalf("basic fields: %+v", res)
	}
	if res.StoredCopies != 500 {
		t.Fatalf("length-based must not replicate: %d", res.StoredCopies)
	}
	if res.CommTuples == 0 || res.CommBytes == 0 {
		t.Fatal("communication not counted")
	}
	if res.LoadImbalance < 1 {
		t.Fatalf("imbalance below 1: %v", res.LoadImbalance)
	}
	if res.LatencyMeanNs <= 0 || res.LatencyP99Ns < res.LatencyMeanNs {
		t.Fatalf("latency fields: mean=%d p99=%d", res.LatencyMeanNs, res.LatencyP99Ns)
	}
	if res.Pairs != nil {
		t.Fatal("pairs collected without CollectPairs")
	}
}

func TestDistributedWithWindowAndBundle(t *testing.T) {
	sets := randomSets(300, 50, 19)
	res, err := RunDistributed(sets, DistributedConfig{
		Config: Config{
			Threshold:     0.7,
			Algorithm:     Bundle,
			WindowRecords: 80,
		},
		Workers:      3,
		CollectPairs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Validate against a single-node windowed run.
	single, _ := NewStream(Config{Threshold: 0.7, WindowRecords: 80, Algorithm: Naive})
	var want int
	for _, set := range sets {
		_, ms := single.Add(set)
		want += len(ms)
	}
	if int(res.Results) != want {
		t.Fatalf("windowed distributed: got %d want %d", res.Results, want)
	}
}

// TestRunDistributedBiMatchesBiStream: distributed and single-node
// two-stream joins must agree.
func TestRunDistributedBiMatchesBiStream(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	stream := make([]SideSet, 500)
	for i := range stream {
		n := 3 + rng.Intn(8)
		set := make([]uint32, n)
		for j := range set {
			set[j] = uint32(rng.Intn(60))
		}
		stream[i] = SideSet{Right: rng.Float64() < 0.5, Tokens: set}
	}
	// Single-node reference.
	bi, err := NewBiStream(Config{Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	type pr struct{ a, b uint64 }
	want := make(map[pr]bool)
	for _, s := range stream {
		var id uint64
		var ms []Match
		if s.Right {
			id, ms = bi.AddRight(s.Tokens)
		} else {
			id, ms = bi.AddLeft(s.Tokens)
		}
		for _, m := range ms {
			want[pr{m.ID, id}] = true
		}
	}
	for _, dist := range []Distribution{LengthBased, PrefixBased, BroadcastBased} {
		res, err := RunDistributedBi(stream, DistributedConfig{
			Config:       Config{Threshold: 0.7},
			Workers:      3,
			Distribution: dist,
			CollectPairs: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		got := make(map[pr]bool)
		for _, p := range res.Pairs {
			key := pr{p.A, p.B}
			if got[key] {
				t.Fatalf("%v: duplicate %v", dist, key)
			}
			got[key] = true
		}
		if len(got) != len(want) {
			t.Fatalf("%v: got %d pairs want %d", dist, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%v: missing %v", dist, p)
			}
		}
	}
}

func TestRunDistributedBiValidation(t *testing.T) {
	if _, err := RunDistributedBi(nil, DistributedConfig{Config: Config{Threshold: 0.8}}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := RunDistributedBi(nil, DistributedConfig{Workers: 2}); err == nil {
		t.Fatal("missing threshold accepted")
	}
}
