package ssjoin

import (
	"io"

	"repro/internal/checkpoint"
	"repro/internal/local"
	"repro/internal/record"
	"repro/internal/tokens"
)

// BiStream joins two record streams R and S online: each AddLeft reports
// matches among stored right-side records and vice versa; same-side pairs
// are never reported. The canonical use is data integration — two sources
// feeding one matcher. IDs are assigned from one shared counter, so
// windows span both sides (WindowRecords counts arrivals on either side).
type BiStream struct {
	cfg     Config
	bi      *local.BiJoiner
	nextID  record.ID
	tick    int64
	scratch []Match
}

// NewBiStream validates cfg and returns an empty two-stream joiner.
func NewBiStream(cfg Config) (*BiStream, error) {
	params, win, alg, bcfg, err := cfg.build()
	if err != nil {
		return nil, err
	}
	return &BiStream{
		cfg: cfg,
		bi:  local.NewBi(alg, local.Options{Params: params, Window: win, Bundle: bcfg}),
	}, nil
}

func (b *BiStream) add(tokenSet []uint32, left bool) (uint64, []Match) {
	set := make([]tokens.Rank, len(tokenSet))
	copy(set, tokenSet)
	r := &record.Record{ID: b.nextID, Time: b.tick, Tokens: tokens.Dedup(set)}
	b.nextID++
	b.tick++
	b.scratch = b.scratch[:0]
	emit := func(m local.Match) {
		b.scratch = append(b.scratch, Match{
			ID:         uint64(m.Rec.ID),
			Overlap:    m.Overlap,
			Similarity: m.Sim,
		})
	}
	if left {
		b.bi.StepLeft(r, emit)
	} else {
		b.bi.StepRight(r, emit)
	}
	return uint64(r.ID), b.scratch
}

// AddLeft ingests the next R-record and returns its ID plus matches among
// in-window S-records. The match slice is reused by the next Add call.
func (b *BiStream) AddLeft(tokenSet []uint32) (id uint64, matches []Match) {
	return b.add(tokenSet, true)
}

// AddRight ingests the next S-record and returns its matches among
// in-window R-records.
func (b *BiStream) AddRight(tokenSet []uint32) (id uint64, matches []Match) {
	return b.add(tokenSet, false)
}

// SizeLeft and SizeRight report the stored record counts per side.
func (b *BiStream) SizeLeft() int { return b.bi.SizeLeft() }

// SizeRight reports the stored S-side record count.
func (b *BiStream) SizeRight() int { return b.bi.SizeRight() }

// WriteSnapshot persists both sides' window state and the stream cursor;
// restore with RestoreBiStream using the same Config.
func (b *BiStream) WriteSnapshot(w io.Writer) error {
	return checkpoint.WriteBi(w, checkpoint.Cursor{
		NextID:   uint64(b.nextID),
		NextTime: b.tick,
	}, b.bi)
}

// RestoreBiStream reconstructs a BiStream from a snapshot produced by
// BiStream.WriteSnapshot.
func RestoreBiStream(r io.Reader, cfg Config) (*BiStream, error) {
	b, err := NewBiStream(cfg)
	if err != nil {
		return nil, err
	}
	cur, _, err := checkpoint.ReadBi(r, b.bi)
	if err != nil {
		return nil, err
	}
	b.nextID = record.ID(cur.NextID)
	b.tick = cur.NextTime
	return b, nil
}
