package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/record"
)

func rec(id record.ID) *record.Record { return &record.Record{ID: id, Time: int64(id)} }

func newRecBuffer(slack uint64) *Buffer[*record.Record] {
	return New(slack, func(r *record.Record) uint64 { return uint64(r.ID) })
}

func TestInOrderPassThrough(t *testing.T) {
	b := newRecBuffer(0)
	var got []record.ID
	for i := 0; i < 10; i++ {
		b.Push(rec(record.ID(i)), func(r *record.Record) { got = append(got, r.ID) })
	}
	b.Flush(func(r *record.Record) { got = append(got, r.ID) })
	if len(got) != 10 {
		t.Fatalf("released %d", len(got))
	}
	for i, id := range got {
		if id != record.ID(i) {
			t.Fatalf("order broken at %d: %d", i, id)
		}
	}
	if b.Late() != 0 {
		t.Fatalf("late: %d", b.Late())
	}
}

func TestShuffledWithinSlackIsRestored(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, slack = 5000, 64
	ids := make([]record.ID, n)
	for i := range ids {
		ids[i] = record.ID(i)
	}
	// Bounded disorder: shuffle within disjoint blocks smaller than the
	// slack, so no record arrives more than slack IDs late.
	const block = slack / 2
	for start := 0; start < n; start += block {
		end := start + block
		if end > n {
			end = n
		}
		rng.Shuffle(end-start, func(a, c int) {
			ids[start+a], ids[start+c] = ids[start+c], ids[start+a]
		})
	}
	b := newRecBuffer(slack)
	var got []record.ID
	emit := func(r *record.Record) { got = append(got, r.ID) }
	for _, id := range ids {
		b.Push(rec(id), emit)
	}
	b.Flush(emit)
	if len(got) != n {
		t.Fatalf("released %d of %d (late %d)", len(got), n, b.Late())
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order broken at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	if b.Late() != 0 {
		t.Fatalf("late: %d", b.Late())
	}
}

func TestBeyondSlackIsCountedDropped(t *testing.T) {
	b := newRecBuffer(2)
	var got []record.ID
	emit := func(r *record.Record) { got = append(got, r.ID) }
	for _, id := range []record.ID{0, 1, 2, 3, 10, 11, 12} {
		b.Push(rec(id), emit)
	}
	// id 4 is far behind the watermark (12-2=10): must be dropped.
	b.Push(rec(4), emit)
	b.Flush(emit)
	if b.Late() != 1 {
		t.Fatalf("late: %d", b.Late())
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated: %v", got)
		}
	}
}

func TestFlushDrainsEverything(t *testing.T) {
	b := newRecBuffer(1000)
	for i := 0; i < 50; i++ {
		b.Push(rec(record.ID(i)), func(*record.Record) { t.Fatal("nothing should release under huge slack") })
	}
	if b.Pending() != 50 {
		t.Fatalf("pending: %d", b.Pending())
	}
	n := 0
	b.Flush(func(*record.Record) { n++ })
	if n != 50 || b.Pending() != 0 {
		t.Fatalf("flush released %d, pending %d", n, b.Pending())
	}
}

func TestSubsetStreams(t *testing.T) {
	// A worker sees only a subset of global IDs; gaps must not stall
	// release, and slack is measured in ID units (so gaps count toward
	// lateness).
	b := newRecBuffer(300)
	var got []record.ID
	emit := func(r *record.Record) { got = append(got, r.ID) }
	for _, id := range []record.ID{3, 9, 1, 27, 81, 243} {
		b.Push(rec(id), emit)
	}
	b.Flush(emit)
	if len(got) != 6 {
		t.Fatalf("released %d (late %d)", len(got), b.Late())
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated: %v", got)
		}
	}
}

// Property: for any input sequence, output is strictly increasing and
// |output| + late == |input| (no silent loss).
func TestReorderConservationProperty(t *testing.T) {
	f := func(raw []uint16, slackRaw uint8) bool {
		slack := uint64(slackRaw)
		b := newRecBuffer(slack)
		var out []record.ID
		emit := func(r *record.Record) { out = append(out, r.ID) }
		seen := make(map[uint16]bool)
		n := 0
		for _, v := range raw {
			if seen[v] {
				continue // IDs must be unique in a stream
			}
			seen[v] = true
			n++
			b.Push(rec(record.ID(v)), emit)
		}
		b.Flush(emit)
		if len(out)+int(b.Late()) != n {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i] <= out[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
