// Package reorder restores arrival order for streams that cross parallel
// paths: with several dispatchers, records can reach a worker slightly out
// of sequence order, which breaks windowed join semantics (eviction
// assumes nondecreasing sequence numbers). A Buffer holds items until a
// watermark — the highest sequence seen minus an allowed lateness
// (slack) — passes them, then releases in ascending order. Items arriving
// later than the slack cannot be ordered anymore; they are counted and
// dropped, the standard allowed-lateness contract of stream processors.
package reorder

import "container/heap"

// Buffer reorders items within a bounded disorder horizon. T carries the
// payload; seq extracts its sequence number. The zero value is not usable;
// call New.
type Buffer[T any] struct {
	slack    uint64
	seq      func(T) uint64
	pending  itemHeap[T]
	maxSeen  uint64
	released uint64
	any      bool
	late     uint64
}

// New returns a buffer tolerating items up to slack sequence numbers late
// (slack 0 degenerates to pass-through for already-ordered streams).
func New[T any](slack uint64, seq func(T) uint64) *Buffer[T] {
	return &Buffer[T]{slack: slack, seq: seq}
}

// Late reports how many items arrived beyond the slack and were dropped.
func (b *Buffer[T]) Late() uint64 { return b.late }

// Pending reports how many items are buffered.
func (b *Buffer[T]) Pending() int { return len(b.pending.items) }

// Push accepts the next arrival and emits, in ascending sequence order,
// every buffered item at or below the new watermark.
func (b *Buffer[T]) Push(v T, emit func(T)) {
	s := b.seq(v)
	if b.any && s <= b.released {
		// Cannot be ordered anymore: it would regress the output.
		b.late++
		return
	}
	b.pending.push(s, v)
	if s > b.maxSeen {
		b.maxSeen = s
	}
	if b.maxSeen <= b.slack {
		return // watermark has not advanced past zero yet
	}
	watermark := b.maxSeen - b.slack
	for len(b.pending.items) > 0 && b.pending.items[0].seq <= watermark {
		b.release(emit)
	}
}

// Flush releases everything still buffered, in order. Call at stream end.
func (b *Buffer[T]) Flush(emit func(T)) {
	for len(b.pending.items) > 0 {
		b.release(emit)
	}
}

func (b *Buffer[T]) release(emit func(T)) {
	it := b.pending.pop()
	b.released = it.seq
	b.any = true
	emit(it.v)
}

type item[T any] struct {
	seq uint64
	v   T
}

// itemHeap is a min-heap by sequence number.
type itemHeap[T any] struct{ items []item[T] }

func (h *itemHeap[T]) Len() int           { return len(h.items) }
func (h *itemHeap[T]) Less(i, j int) bool { return h.items[i].seq < h.items[j].seq }
func (h *itemHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *itemHeap[T]) Push(x interface{}) { h.items = append(h.items, x.(item[T])) }
func (h *itemHeap[T]) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	var zero item[T]
	old[n-1] = zero
	h.items = old[:n-1]
	return x
}

func (h *itemHeap[T]) push(seq uint64, v T) { heap.Push(h, item[T]{seq: seq, v: v}) }
func (h *itemHeap[T]) pop() item[T]         { return heap.Pop(h).(item[T]) }
