package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/filter"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/window"
)

func params(tau float64) filter.Params {
	return filter.Params{Func: similarity.Jaccard, Threshold: tau}
}

func rec(id record.ID, ranks ...tokens.Rank) *record.Record {
	return &record.Record{ID: id, Time: int64(id), Tokens: tokens.Dedup(ranks)}
}

func TestInsertProbeFindsExactDuplicate(t *testing.T) {
	ix := New(params(0.9), window.Unbounded{})
	a := rec(0, 1, 2, 3, 4, 5)
	ix.Insert(a)
	b := rec(1, 1, 2, 3, 4, 5)
	var got []record.ID
	ix.Probe(b, func(c Candidate) { got = append(got, c.Rec.ID) })
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("probe: got %v want [0]", got)
	}
}

func TestProbeSkipsSelf(t *testing.T) {
	ix := New(params(0.5), window.Unbounded{})
	a := rec(7, 1, 2, 3)
	ix.Insert(a)
	count := 0
	ix.Probe(a, func(Candidate) { count++ })
	if count != 0 {
		t.Fatalf("self probe produced %d candidates", count)
	}
}

func TestLengthFilterPrunes(t *testing.T) {
	ix := New(params(0.9), window.Unbounded{})
	// Length 2 vs length 10 can never reach Jaccard 0.9, even sharing a
	// prefix token.
	ix.Insert(rec(0, 1, 2))
	probe := rec(1, 1, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	count := 0
	ix.Probe(probe, func(Candidate) { count++ })
	if count != 0 {
		t.Fatalf("length-incompatible candidate emitted (%d)", count)
	}
	if ix.Stats().LenPruned == 0 {
		t.Fatal("length filter never fired")
	}
}

func TestWindowEvictionRemovesPartners(t *testing.T) {
	ix := New(params(0.8), window.Count{N: 2})
	a := rec(0, 1, 2, 3, 4)
	ix.Insert(a)
	// Advance the stream: records 1,2,3 arrive. With N=2 record 0 dies at
	// seq 3.
	ix.Evict(3, 3)
	probe := rec(3, 1, 2, 3, 4)
	count := 0
	ix.Probe(probe, func(Candidate) { count++ })
	if count != 0 {
		t.Fatalf("evicted record still probed (%d candidates)", count)
	}
	if ix.Stats().Evicted != 1 {
		t.Fatalf("evicted: got %d want 1", ix.Stats().Evicted)
	}
}

func TestLazyCompactionShrinksPostings(t *testing.T) {
	ix := New(params(0.8), window.Count{N: 1})
	// Two records sharing prefix token 1.
	ix.Insert(rec(0, 1, 2, 3, 4))
	ix.Insert(rec(1, 1, 2, 3, 5))
	before := ix.PostingsLen(1)
	if before == 0 {
		t.Fatal("expected postings under token 1")
	}
	ix.Evict(5, 5) // both dead
	probe := rec(5, 1, 2, 3, 4)
	ix.Probe(probe, func(Candidate) {})
	if after := ix.PostingsLen(1); after != 0 {
		t.Fatalf("postings not compacted: %d -> %d", before, after)
	}
}

func TestSweepReclaimsUnprobedPostings(t *testing.T) {
	ix := New(params(0.8), window.Count{N: 1})
	// Insert many records with disjoint tokens so probes never touch them,
	// then let them all die: the sweep heuristic must reclaim postings.
	for i := 0; i < 3000; i++ {
		base := tokens.Rank(10 * i)
		ix.Insert(rec(record.ID(i), base, base+1, base+2, base+3))
	}
	ix.Evict(100000, 100000)
	if got := ix.Stats().Postings; got != 0 {
		t.Fatalf("postings after sweep: got %d want 0", got)
	}
}

func TestProbeEmitsCandidateOnce(t *testing.T) {
	ix := New(params(0.5), window.Unbounded{})
	// Candidate shares several prefix tokens with the probe; it must be
	// emitted exactly once with the accumulated overlap.
	ix.Insert(rec(0, 1, 2, 3, 4, 5, 6))
	probe := rec(1, 1, 2, 3, 4, 5, 7)
	var cands []Candidate
	ix.Probe(probe, func(c Candidate) { cands = append(cands, c) })
	if len(cands) != 1 {
		t.Fatalf("got %d candidates want 1", len(cands))
	}
	c := cands[0]
	if c.Overlap < 1 {
		t.Fatalf("bad accumulated overlap %d", c.Overlap)
	}
	// Resuming verification must yield the true overlap (5).
	req := ix.Params().RequiredOverlap(probe.Len(), c.Rec.Len())
	o, ok := similarity.VerifyOverlapFrom(probe.Tokens, c.Rec.Tokens, c.ResumeA, c.ResumeB, c.Overlap, req)
	if !ok || o != 5 {
		t.Fatalf("resumed verification: got (%d,%v) want (5,true)", o, ok)
	}
}

// TestStreamingJoinMatchesBruteForce is the end-to-end correctness check:
// probing then inserting each record of a random stream and verifying the
// candidates must produce exactly the brute-force result set, for several
// thresholds and window sizes.
func TestStreamingJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tau := range []float64{0.5, 0.6, 0.75, 0.9} {
		for _, win := range []window.Policy{window.Unbounded{}, window.Count{N: 20}} {
			p := params(tau)
			ix := New(p, win)
			var stream []*record.Record
			for i := 0; i < 250; i++ {
				n := 2 + rng.Intn(12)
				set := make([]tokens.Rank, 0, n)
				for len(set) < n {
					set = append(set, tokens.Rank(rng.Intn(60)))
				}
				stream = append(stream, rec(record.ID(i), set...))
			}
			got := make(map[record.Pair]bool)
			for _, r := range stream {
				ix.Evict(r.ID, r.Time)
				ix.Probe(r, func(c Candidate) {
					req := p.RequiredOverlap(r.Len(), c.Rec.Len())
					o, ok := similarity.VerifyOverlapFrom(
						r.Tokens, c.Rec.Tokens, c.ResumeA, c.ResumeB, c.Overlap, req)
					if !ok {
						return
					}
					sim := similarity.FromOverlap(similarity.Jaccard, o, r.Len(), c.Rec.Len())
					got[record.NewPair(r.ID, c.Rec.ID, 0)] = true
					_ = sim
				})
				ix.Insert(r)
			}
			want := bruteForce(stream, tau, win)
			if len(got) != len(want) {
				t.Fatalf("τ=%v win=%v: got %d pairs want %d\nmissing=%v extra=%v",
					tau, win, len(got), len(want), diff(want, got), diff(got, want))
			}
			for pr := range want {
				if !got[pr] {
					t.Fatalf("τ=%v win=%v: missing pair %v", tau, win, pr)
				}
			}
		}
	}
}

func bruteForce(stream []*record.Record, tau float64, win window.Policy) map[record.Pair]bool {
	out := make(map[record.Pair]bool)
	for i, r := range stream {
		for j := 0; j < i; j++ {
			s := stream[j]
			if !win.Live(s.ID, s.Time, r.ID, r.Time) {
				continue
			}
			if similarity.Of(similarity.Jaccard, r.Tokens, s.Tokens) >= tau-1e-12 {
				out[record.NewPair(r.ID, s.ID, 0)] = true
			}
		}
	}
	return out
}

func diff(a, b map[record.Pair]bool) []record.Pair {
	var out []record.Pair
	for p := range a {
		if !b[p] {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Second < out[j].Second
	})
	if len(out) > 5 {
		out = out[:5]
	}
	return out
}

func TestStatsAccounting(t *testing.T) {
	ix := New(params(0.8), window.Unbounded{})
	ix.Insert(rec(0, 1, 2, 3, 4, 5))
	st := ix.Stats()
	if st.Inserted != 1 {
		t.Fatalf("inserted: %d", st.Inserted)
	}
	p := ix.Params().PrefixLen(5)
	if st.Postings != uint64(p) {
		t.Fatalf("postings: got %d want %d", st.Postings, p)
	}
}

func TestPositionFilterAblation(t *testing.T) {
	// Disabling the position filter must not change results, only raise
	// the candidate count.
	rng := rand.New(rand.NewSource(77))
	var stream []*record.Record
	for i := 0; i < 400; i++ {
		n := 3 + rng.Intn(10)
		set := make([]tokens.Rank, 0, n)
		for len(set) < n {
			set = append(set, tokens.Rank(rng.Intn(80)))
			set = tokens.Dedup(set)
		}
		stream = append(stream, rec(record.ID(i), set...))
	}
	run := func(disable bool) (uint64, int) {
		ix := New(params(0.7), window.Unbounded{})
		if disable {
			ix.DisablePositionFilter()
		}
		results := 0
		for _, r := range stream {
			ix.Evict(r.ID, r.Time)
			ix.Probe(r, func(c Candidate) {
				req := ix.Params().RequiredOverlap(r.Len(), c.Rec.Len())
				if _, ok := similarity.VerifyOverlapFrom(
					r.Tokens, c.Rec.Tokens, c.ResumeA, c.ResumeB, c.Overlap, req); ok {
					results++
				}
			})
			ix.Insert(r)
		}
		return ix.Stats().Candidates, results
	}
	candOn, resOn := run(false)
	candOff, resOff := run(true)
	if resOn != resOff {
		t.Fatalf("results changed: %d vs %d", resOn, resOff)
	}
	if candOff <= candOn {
		t.Fatalf("position filter pruned nothing: on=%d off=%d", candOn, candOff)
	}
}
