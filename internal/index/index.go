// Package index implements the streaming prefix inverted index used by
// every local joiner: records are indexed under their prefix tokens, probes
// generate candidates with the length and position filters, and window
// eviction reclaims postings lazily so the hot path never scans dead
// records twice.
package index

import (
	"repro/internal/filter"
	"repro/internal/record"
	"repro/internal/tokens"
	"repro/internal/window"
)

// entry is one posting: a stored record and the position of the posting's
// token inside that record.
type entry struct {
	rec *record.Record
	pos int32
}

// Candidate is a probe result that survived the length and position
// filters. Overlap counts the matches accumulated during candidate
// generation; ResumeA/ResumeB are the merge positions verification should
// resume from (see similarity.VerifyOverlapFrom).
type Candidate struct {
	Rec              *record.Record
	Overlap          int
	ResumeA, ResumeB int
}

// Stats counts the work an index performed; the experiment harness reads
// them to report filtering cost.
type Stats struct {
	Inserted   uint64 // records indexed
	Evicted    uint64 // records expired from the window
	Postings   uint64 // live posting entries right now
	Scanned    uint64 // posting entries visited during probes
	Candidates uint64 // candidates produced (post length+position filter)
	LenPruned  uint64 // postings skipped by the length filter
	PosPruned  uint64 // candidates killed by the position filter
}

// Inverted is a single-writer streaming prefix index. It is not safe for
// concurrent use; in the distributed engine each worker bolt owns one.
type Inverted struct {
	params filter.Params
	win    window.Policy
	// noPositionFilter disables the position filter (ablation only).
	noPositionFilter bool

	posts map[tokens.Rank][]entry
	fifo  []*record.Record // arrival order, for eviction
	head  int              // first live fifo slot
	dead  map[record.ID]struct{}
	// remaining counts the postings still referencing a record so the dead
	// set can be pruned once lazy compaction drops the last one.
	remaining map[record.ID]int32

	stats Stats

	// probe-local scratch, reused across calls
	cand map[record.ID]*candState
}

type candState struct {
	rec     *record.Record
	overlap int
	pi, pj  int
	pruned  bool
}

// New returns an empty index joining at the given parameters over the given
// window policy.
func New(p filter.Params, w window.Policy) *Inverted {
	return &Inverted{
		params:    p,
		win:       w,
		posts:     make(map[tokens.Rank][]entry),
		dead:      make(map[record.ID]struct{}),
		remaining: make(map[record.ID]int32),
		cand:      make(map[record.ID]*candState),
	}
}

// Params returns the filter parameters the index was built with.
func (ix *Inverted) Params() filter.Params { return ix.params }

// DisablePositionFilter turns the position filter off; candidates then
// survive on the length filter alone. Exists for the DESIGN.md ablation —
// never disable it in production.
func (ix *Inverted) DisablePositionFilter() { ix.noPositionFilter = true }

// Stats returns a snapshot of the work counters.
func (ix *Inverted) Stats() Stats { return ix.stats }

// Size returns the number of live records currently indexed.
func (ix *Inverted) Size() int { return len(ix.fifo) - ix.head }

// Insert indexes r under its prefix tokens and registers it for eviction.
// The record must have tokens in ascending global-rank order.
func (ix *Inverted) Insert(r *record.Record) {
	p := ix.params.PrefixLen(r.Len())
	for i := 0; i < p; i++ {
		tok := r.Tokens[i]
		ix.posts[tok] = append(ix.posts[tok], entry{rec: r, pos: int32(i)})
	}
	ix.stats.Postings += uint64(p)
	ix.remaining[r.ID] = int32(p)
	ix.fifo = append(ix.fifo, r)
	ix.stats.Inserted++
}

// dropPosting bookkeeps the removal of one dead posting for id.
func (ix *Inverted) dropPosting(id record.ID) {
	ix.stats.Postings--
	if n := ix.remaining[id] - 1; n > 0 {
		ix.remaining[id] = n
	} else {
		delete(ix.remaining, id)
		delete(ix.dead, id)
	}
}

// Evict expires every stored record outside the window as observed by a
// current record with sequence nowSeq and event time nowTime. Postings are
// reclaimed lazily during probes; Evict only flips liveness and trims the
// FIFO.
func (ix *Inverted) Evict(nowSeq record.ID, nowTime int64) {
	for ix.head < len(ix.fifo) {
		r := ix.fifo[ix.head]
		if ix.win.Live(r.ID, r.Time, nowSeq, nowTime) {
			break
		}
		ix.dead[r.ID] = struct{}{}
		ix.fifo[ix.head] = nil
		ix.head++
		ix.stats.Evicted++
	}
	// Compact the FIFO once the dead prefix dominates.
	if ix.head > 64 && ix.head*2 > len(ix.fifo) {
		ix.fifo = append(ix.fifo[:0], ix.fifo[ix.head:]...)
		ix.head = 0
	}
	// Lazy probe-time compaction only reclaims postings that get scanned;
	// sweep everything once dead records dominate live ones.
	if live := ix.Size(); len(ix.dead) > 1024 && len(ix.dead) > 2*live {
		ix.sweep()
	}
}

// sweep removes every dead posting from every list in one pass.
func (ix *Inverted) sweep() {
	for tok, list := range ix.posts {
		w := 0
		for _, e := range list {
			if ix.alive(e.rec) {
				list[w] = e
				w++
			} else {
				ix.stats.Postings--
			}
		}
		if w == 0 {
			delete(ix.posts, tok)
		} else {
			ix.posts[tok] = list[:w]
		}
	}
	ix.dead = make(map[record.ID]struct{})
	ix.remaining = make(map[record.ID]int32)
	for i := ix.head; i < len(ix.fifo); i++ {
		r := ix.fifo[i]
		ix.remaining[r.ID] = int32(ix.params.PrefixLen(r.Len()))
	}
}

func (ix *Inverted) alive(r *record.Record) bool {
	_, d := ix.dead[r.ID]
	return !d
}

// Probe generates the candidates of r among live indexed records, applying
// the length filter per posting and the position filter per candidate. It
// does not verify; callers decide between one-by-one and batch
// verification. The callback receives each surviving candidate exactly
// once. Probe also compacts dead postings it encounters.
func (ix *Inverted) Probe(r *record.Record, emit func(Candidate)) {
	p := ix.params.PrefixLen(r.Len())
	la := r.Len()
	for i := 0; i < p; i++ {
		tok := r.Tokens[i]
		list, ok := ix.posts[tok]
		if !ok {
			continue
		}
		w := 0
		for _, e := range list {
			if !ix.alive(e.rec) {
				ix.dropPosting(e.rec.ID) // compact dead posting in place
				continue
			}
			list[w] = e
			w++
			ix.stats.Scanned++
			y := e.rec
			if y.ID == r.ID {
				continue
			}
			lb := y.Len()
			if !ix.params.LengthCompatible(la, lb) {
				ix.stats.LenPruned++
				continue
			}
			st, seen := ix.cand[y.ID]
			if !seen {
				st = &candState{rec: y}
				ix.cand[y.ID] = st
				if !ix.noPositionFilter && !ix.params.PositionOK(la, lb, i, int(e.pos), 1) {
					st.pruned = true
					ix.stats.PosPruned++
					continue
				}
				st.overlap = 1
				st.pi, st.pj = i+1, int(e.pos)+1
				continue
			}
			if st.pruned {
				continue
			}
			st.overlap++
			st.pi, st.pj = i+1, int(e.pos)+1
			if !ix.noPositionFilter && !ix.params.PositionOK(la, lb, i, int(e.pos), st.overlap) {
				st.pruned = true
				ix.stats.PosPruned++
			}
		}
		if w == 0 {
			delete(ix.posts, tok)
		} else {
			ix.posts[tok] = list[:w]
		}
	}
	for id, st := range ix.cand {
		if !st.pruned {
			ix.stats.Candidates++
			emit(Candidate{Rec: st.rec, Overlap: st.overlap, ResumeA: st.pi, ResumeB: st.pj})
		}
		delete(ix.cand, id)
	}
}

// PostingsLen reports the current live+dead length of the posting list for
// tok; tests use it to observe lazy compaction.
func (ix *Inverted) PostingsLen(tok tokens.Rank) int { return len(ix.posts[tok]) }

// Dump visits every live stored record in arrival order; returning false
// stops the walk.
func (ix *Inverted) Dump(visit func(*record.Record) bool) {
	for i := ix.head; i < len(ix.fifo); i++ {
		if !visit(ix.fifo[i]) {
			return
		}
	}
}
