package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	if l.Count() != 0 || l.Mean() != 0 || l.Quantile(0.5) != 0 {
		t.Fatal("zero value not empty")
	}
	l.Observe(100 * time.Microsecond)
	l.Observe(200 * time.Microsecond)
	l.Observe(300 * time.Microsecond)
	if l.Count() != 3 {
		t.Fatalf("count: %d", l.Count())
	}
	if got, want := l.Mean(), 200*time.Microsecond; got != want {
		t.Fatalf("mean: %v", got)
	}
	if l.Max() != 300*time.Microsecond {
		t.Fatalf("max: %v", l.Max())
	}
}

func TestLatencyNegativeClamped(t *testing.T) {
	var l Latency
	l.Observe(-5)
	if l.Count() != 1 || l.Max() != 0 {
		t.Fatal("negative duration not clamped")
	}
}

func TestQuantileWithinBucketError(t *testing.T) {
	var l Latency
	rng := rand.New(rand.NewSource(5))
	samples := make([]time.Duration, 0, 10000)
	for i := 0; i < 10000; i++ {
		d := time.Duration(rng.Intn(1_000_000)) * time.Nanosecond
		samples = append(samples, d)
		l.Observe(d)
	}
	// p50 of uniform [0,1ms) is ~0.5ms; log buckets guarantee at most 2x
	// relative error.
	p50 := l.Quantile(0.5)
	if p50 < 250*time.Microsecond || p50 > 1*time.Millisecond {
		t.Fatalf("p50 estimate too far off: %v", p50)
	}
	if l.Quantile(1.0) != l.Max() {
		t.Fatalf("p100 should be max: %v vs %v", l.Quantile(1.0), l.Max())
	}
	if l.Quantile(-1) > l.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
	_ = samples
}

func TestQuantileMonotone(t *testing.T) {
	var l Latency
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		l.Observe(time.Duration(rng.ExpFloat64() * float64(time.Millisecond)))
	}
	prev := time.Duration(0)
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := l.Quantile(q)
		if cur < prev {
			t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b Latency
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count: %d", a.Count())
	}
	if a.Max() != 3*time.Millisecond {
		t.Fatalf("merged max: %v", a.Max())
	}
	if a.Mean() != 2*time.Millisecond {
		t.Fatalf("merged mean: %v", a.Mean())
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Records: 1000, Elapsed: 2 * time.Second}
	if got := tp.PerSecond(); math.Abs(got-500) > 1e-9 {
		t.Fatalf("rate: %v", got)
	}
	if (Throughput{Records: 5}).PerSecond() != 0 {
		t.Fatal("zero elapsed should give 0")
	}
	if tp.String() == "" {
		t.Fatal("empty string")
	}
}

func TestSummarizeLoads(t *testing.T) {
	s := SummarizeLoads([]float64{10, 10, 10, 10})
	if s.Imbalance != 1 || s.CV != 0 {
		t.Fatalf("balanced: %+v", s)
	}
	s = SummarizeLoads([]float64{40, 0, 0, 0})
	if math.Abs(s.Imbalance-4) > 1e-9 {
		t.Fatalf("skewed imbalance: %v", s.Imbalance)
	}
	if s.Max != 40 || s.Min != 0 || s.Mean != 10 {
		t.Fatalf("stats: %+v", s)
	}
	s = SummarizeLoads(nil)
	if s.Imbalance != 1 {
		t.Fatalf("empty: %+v", s)
	}
	s = SummarizeLoads([]float64{0, 0})
	if s.Imbalance != 1 {
		t.Fatalf("all-zero: %+v", s)
	}
}

func TestSyncLatencyConcurrentObservers(t *testing.T) {
	var s SyncLatency
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	hist := s.Snapshot()
	if hist.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", hist.Count(), workers*perWorker)
	}
	if hist.Max() != time.Duration(workers*perWorker-1)*time.Microsecond {
		t.Fatalf("max = %v", hist.Max())
	}
	// The snapshot is a copy: later observations must not leak into it.
	s.Observe(time.Hour)
	if hist.Max() == time.Hour {
		t.Fatal("snapshot aliases live histogram")
	}
}

// TestBucketsRoundTrip rebuilds a quantile estimate from the exported
// bucket bounds and checks it agrees with Quantile itself — the exposition
// layer depends on Buckets() carrying the same information.
func TestBucketsRoundTrip(t *testing.T) {
	var l Latency
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		l.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
	}
	bs := l.Buckets()
	if len(bs) == 0 {
		t.Fatal("no buckets")
	}
	var total uint64
	var sum time.Duration
	prevHi := time.Duration(-1)
	for _, b := range bs {
		if b.Count == 0 {
			t.Fatalf("empty bucket exported: %+v", b)
		}
		if b.Hi <= b.Lo {
			t.Fatalf("bucket bounds inverted: %+v", b)
		}
		if b.Lo < prevHi {
			t.Fatalf("buckets out of order: lo %v after hi %v", b.Lo, prevHi)
		}
		prevHi = b.Hi
		total += b.Count
	}
	if total != l.Count() {
		t.Fatalf("bucket counts sum to %d, observations %d", total, l.Count())
	}
	if sum = l.Sum(); sum <= 0 {
		t.Fatalf("sum: %v", sum)
	}
	if got, want := time.Duration(float64(sum)/float64(total)), l.Mean(); got != want {
		t.Fatalf("mean from Sum/Count %v != Mean %v", got, want)
	}
	// Interpolate quantiles from the exported buckets exactly the way
	// Quantile does internally, and require agreement within one bucket.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := l.Quantile(q)
		rank := q * float64(total)
		var seen float64
		var got time.Duration
		for _, b := range bs {
			if seen+float64(b.Count) >= rank {
				frac := (rank - seen) / float64(b.Count)
				got = b.Lo + time.Duration(frac*float64(b.Hi-b.Lo))
				break
			}
			seen += float64(b.Count)
		}
		// Same log2 bucket: got and want must share a bucket's range.
		lo, hi := got, want
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 2*lo+1 {
			t.Fatalf("q=%v: bucket estimate %v vs Quantile %v disagree beyond one bucket", q, got, want)
		}
	}
}

func TestBucketsSaturatingBound(t *testing.T) {
	var l Latency
	l.Observe(time.Duration(math.MaxInt64))
	bs := l.Buckets()
	if len(bs) != 1 || bs[len(bs)-1].Hi != time.Duration(math.MaxInt64) {
		t.Fatalf("top bucket: %+v", bs)
	}
}
