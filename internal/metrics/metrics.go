// Package metrics provides the measurement plumbing of the experiment
// harness: a log-bucketed latency histogram with percentile queries, a
// throughput summary, and load-imbalance statistics over per-worker work
// counters.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"
)

// Latency is a log2-bucketed histogram of durations. Buckets grow
// geometrically, so percentile estimates carry at most ~50% relative error
// at nanosecond scale and far less after interpolation — plenty for
// comparing frameworks orders of magnitude apart. The zero value is ready
// to use; it is not safe for concurrent writers.
type Latency struct {
	buckets [64]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

func bucketOf(d time.Duration) int {
	n := uint64(d)
	if n == 0 {
		return 0
	}
	return 63 - bits.LeadingZeros64(n)
}

// Observe records one duration (negative durations are clamped to zero).
func (l *Latency) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.buckets[bucketOf(d)]++
	l.count++
	l.sum += d
	if d > l.max {
		l.max = d
	}
}

// Count returns the number of observations.
func (l *Latency) Count() uint64 { return l.count }

// Mean returns the average observed duration (0 when empty).
func (l *Latency) Mean() time.Duration {
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Max returns the largest observed duration.
func (l *Latency) Max() time.Duration { return l.max }

// Quantile returns an interpolated estimate of the q-quantile, q in [0,1].
func (l *Latency) Quantile(q float64) time.Duration {
	if l.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(l.count)
	var acc float64
	for b, n := range l.buckets {
		if n == 0 {
			continue
		}
		next := acc + float64(n)
		if next >= target {
			lo := float64(uint64(1) << uint(b))
			if b == 0 {
				lo = 0
			}
			hi := float64(uint64(1) << uint(b+1))
			frac := 0.5
			if n > 0 {
				frac = (target - acc) / float64(n)
			}
			d := time.Duration(lo + (hi-lo)*frac)
			if d > l.max {
				d = l.max
			}
			return d
		}
		acc = next
	}
	return l.max
}

// Bucket is one log2 histogram bucket: Count observations with durations
// in [Lo, Hi). Buckets returns them so callers can render the histogram in
// external formats (e.g. Prometheus text exposition) without losing the
// information Quantile interpolates over.
type Bucket struct {
	Lo, Hi time.Duration
	Count  uint64
}

// Buckets returns the non-empty buckets in ascending bound order. The
// bounds follow the internal log2 layout: bucket b covers [2^b, 2^(b+1))
// nanoseconds, except the first (which starts at 0) and the last (whose
// upper bound saturates at the maximum Duration). Summing the counts
// reproduces Count(), and a quantile computed by interpolating inside these
// buckets agrees with Quantile up to the shared bucket resolution.
func (l *Latency) Buckets() []Bucket {
	var out []Bucket
	for b, n := range l.buckets {
		if n == 0 {
			continue
		}
		lo := time.Duration(uint64(1) << uint(b))
		if b == 0 {
			lo = 0
		}
		hi := time.Duration(math.MaxInt64)
		if b < 62 { // 1<<63 would overflow int64
			hi = time.Duration(uint64(1) << uint(b+1))
		}
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: n})
	}
	return out
}

// Sum returns the total of all observed durations.
func (l *Latency) Sum() time.Duration { return l.sum }

// Merge adds the contents of other into l.
func (l *Latency) Merge(other *Latency) {
	for i, n := range other.buckets {
		l.buckets[i] += n
	}
	l.count += other.count
	l.sum += other.sum
	if other.max > l.max {
		l.max = other.max
	}
}

// SyncLatency is a Latency histogram safe for concurrent observers: many
// goroutines Observe, any goroutine Snapshots. The zero value is ready to
// use.
type SyncLatency struct {
	mu   sync.Mutex
	hist Latency // guarded by mu
}

// Observe records one duration.
func (s *SyncLatency) Observe(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hist.Observe(d)
}

// Snapshot returns a point-in-time copy of the histogram, safe to query
// without further locking.
func (s *SyncLatency) Snapshot() Latency {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist
}

// Throughput summarizes a processed-count over elapsed wall time.
type Throughput struct {
	Records uint64
	Elapsed time.Duration
}

// PerSecond returns records/second (0 for zero elapsed).
func (t Throughput) PerSecond() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Records) / t.Elapsed.Seconds()
}

// String implements fmt.Stringer.
func (t Throughput) String() string {
	return fmt.Sprintf("%.0f rec/s (%d in %v)", t.PerSecond(), t.Records, t.Elapsed.Round(time.Millisecond))
}

// LoadSummary characterizes per-worker load distribution.
type LoadSummary struct {
	Max, Min, Mean float64
	// Imbalance is max/mean: 1.0 is perfectly balanced, k is worst.
	Imbalance float64
	// CV is the coefficient of variation (stddev/mean).
	CV float64
}

// SummarizeLoads computes a LoadSummary over per-worker work counters.
func SummarizeLoads(loads []float64) LoadSummary {
	if len(loads) == 0 {
		return LoadSummary{Imbalance: 1}
	}
	var sum, max float64
	min := math.MaxFloat64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	mean := sum / float64(len(loads))
	var varsum float64
	for _, l := range loads {
		d := l - mean
		varsum += d * d
	}
	s := LoadSummary{Max: max, Min: min, Mean: mean}
	if mean > 0 {
		s.Imbalance = max / mean
		s.CV = math.Sqrt(varsum/float64(len(loads))) / mean
	} else {
		s.Imbalance = 1
	}
	return s
}
