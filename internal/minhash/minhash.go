// Package minhash implements the classic approximate alternative to exact
// prefix-filter joins: MinHash signatures with LSH banding. Each record is
// summarized by h independent min-hashes; the signature is cut into b
// bands of rows each, and records colliding in any band become candidates.
// The probability a pair with Jaccard similarity s collides is
// 1 − (1 − s^rows)^b — the familiar S-curve, steered by (b, rows).
//
// The experiment suite uses it as the approximate baseline the exact
// streaming join is contrasted against: LSH trades recall for speed and
// cannot bound its error per pair, while the prefix-filter join is exact.
package minhash

import (
	"fmt"

	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/window"
)

// splitmix64 provides the per-row hash family: row i hashes token t as
// splitmix64(seed_i ^ t).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Params sizes the signature.
type Params struct {
	// Bands and Rows define the banding; the signature has Bands*Rows
	// min-hashes. Defaults (when zero): 16 bands × 4 rows.
	Bands, Rows int
	// Seed derandomizes the hash family.
	Seed uint64
}

func (p Params) withDefaults() Params {
	if p.Bands == 0 {
		p.Bands = 16
	}
	if p.Rows == 0 {
		p.Rows = 4
	}
	return p
}

// Signature computes the record's min-hash signature into sig (allocating
// when nil); len(sig) == Bands*Rows.
func (p Params) Signature(set []tokens.Rank, sig []uint64) []uint64 {
	p = p.withDefaults()
	n := p.Bands * p.Rows
	if cap(sig) < n {
		sig = make([]uint64, n)
	}
	sig = sig[:n]
	for i := range sig {
		rowSeed := splitmix64(p.Seed + uint64(i)*0x9e3779b97f4a7c15)
		min := ^uint64(0)
		for _, t := range set {
			if h := splitmix64(rowSeed ^ uint64(t)); h < min {
				min = h
			}
		}
		sig[i] = min
	}
	return sig
}

// bandKey folds one band of the signature into a hash-table key.
func bandKey(band []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range band {
		h ^= v
		h *= 1099511628211
	}
	return h
}

// Match is one emitted pair; Sim is exact when Verify is on, otherwise an
// estimate from the signature.
type Match struct {
	Rec *record.Record
	Sim float64
}

// Stats counts join work.
type Stats struct {
	Records    uint64
	Candidates uint64 // distinct colliding records considered
	Verified   uint64
	Results    uint64
	Buckets    uint64 // live band-bucket entries
}

type entry struct {
	rec *record.Record
	sig []uint64
}

// Joiner is the streaming LSH self-join: Add probes the band tables and
// then inserts the new record. Threshold semantics follow Jaccard;
// verification (on by default) makes emitted pairs exact, leaving recall
// as the only approximation.
type Joiner struct {
	params    Params
	threshold float64
	win       window.Policy
	verify    bool

	tables []map[uint64][]*entry // one per band
	fifo   []*entry
	head   int
	dead   map[record.ID]struct{}
	stats  Stats
	seen   map[record.ID]struct{}
}

// Config wires a Joiner.
type Config struct {
	Params    Params
	Threshold float64
	Window    window.Policy
	// SkipVerify emits candidates with signature-estimated similarity
	// instead of exact verification (fastest, least precise).
	SkipVerify bool
}

// New builds an empty LSH joiner.
func New(cfg Config) (*Joiner, error) {
	if cfg.Threshold <= 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("minhash: threshold must be in (0,1], got %v", cfg.Threshold)
	}
	p := cfg.Params.withDefaults()
	win := cfg.Window
	if win == nil {
		win = window.Unbounded{}
	}
	tables := make([]map[uint64][]*entry, p.Bands)
	for i := range tables {
		tables[i] = make(map[uint64][]*entry)
	}
	return &Joiner{
		params:    p,
		threshold: cfg.Threshold,
		win:       win,
		verify:    !cfg.SkipVerify,
		tables:    tables,
		dead:      make(map[record.ID]struct{}),
		seen:      make(map[record.ID]struct{}),
	}, nil
}

// EstimateSim estimates Jaccard similarity as the fraction of agreeing
// signature rows.
func EstimateSim(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// Add processes the next record: evict, probe band tables, emit matches,
// insert. Matches are unique per partner.
func (j *Joiner) Add(r *record.Record, emit func(Match)) {
	j.stats.Records++
	j.evict(r.ID, r.Time)
	sig := j.params.Signature(r.Tokens, nil)
	rows := j.params.Rows
	for b := 0; b < j.params.Bands; b++ {
		key := bandKey(sig[b*rows : (b+1)*rows])
		list := j.tables[b][key]
		w := 0
		for _, e := range list {
			if _, d := j.dead[e.rec.ID]; d {
				j.stats.Buckets--
				continue
			}
			list[w] = e
			w++
			if _, dup := j.seen[e.rec.ID]; dup {
				continue
			}
			j.seen[e.rec.ID] = struct{}{}
			j.stats.Candidates++
			if j.verify {
				j.stats.Verified++
				sim := similarity.Of(similarity.Jaccard, r.Tokens, e.rec.Tokens)
				if sim >= j.threshold-1e-12 {
					j.stats.Results++
					emit(Match{Rec: e.rec, Sim: sim})
				}
			} else {
				est := EstimateSim(sig, e.sig)
				if est >= j.threshold-1e-12 {
					j.stats.Results++
					emit(Match{Rec: e.rec, Sim: est})
				}
			}
		}
		if w == 0 {
			delete(j.tables[b], key)
		} else {
			j.tables[b][key] = list[:w]
		}
	}
	for id := range j.seen {
		delete(j.seen, id)
	}
	// Insert.
	e := &entry{rec: r, sig: sig}
	for b := 0; b < j.params.Bands; b++ {
		key := bandKey(sig[b*rows : (b+1)*rows])
		j.tables[b][key] = append(j.tables[b][key], e)
	}
	j.stats.Buckets += uint64(j.params.Bands)
	j.fifo = append(j.fifo, e)
}

func (j *Joiner) evict(nowSeq record.ID, nowTime int64) {
	for j.head < len(j.fifo) {
		e := j.fifo[j.head]
		if j.win.Live(e.rec.ID, e.rec.Time, nowSeq, nowTime) {
			break
		}
		j.dead[e.rec.ID] = struct{}{}
		j.fifo[j.head] = nil
		j.head++
	}
	if j.head > 64 && j.head*2 > len(j.fifo) {
		j.fifo = append(j.fifo[:0], j.fifo[j.head:]...)
		j.head = 0
	}
}

// Size reports live stored records.
func (j *Joiner) Size() int { return len(j.fifo) - j.head }

// Stats snapshots the counters.
func (j *Joiner) Stats() Stats { return j.stats }
