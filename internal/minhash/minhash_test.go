package minhash

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/window"
	"repro/internal/workload"
)

func rec(id record.ID, ranks ...tokens.Rank) *record.Record {
	return &record.Record{ID: id, Time: int64(id), Tokens: tokens.Dedup(ranks)}
}

func TestSignatureDeterministic(t *testing.T) {
	p := Params{Bands: 8, Rows: 4, Seed: 7}
	a := p.Signature([]tokens.Rank{1, 2, 3}, nil)
	b := p.Signature([]tokens.Rank{1, 2, 3}, nil)
	if len(a) != 32 {
		t.Fatalf("signature length: %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature not deterministic")
		}
	}
}

func TestIdenticalSetsAlwaysCollide(t *testing.T) {
	j, err := New(Config{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	j.Add(rec(0, 1, 2, 3, 4, 5), func(Match) {})
	n := 0
	j.Add(rec(1, 1, 2, 3, 4, 5), func(m Match) {
		n++
		if m.Sim != 1.0 {
			t.Fatalf("sim: %v", m.Sim)
		}
	})
	if n != 1 {
		t.Fatalf("identical sets not matched: %d", n)
	}
}

func TestEstimateSimTracksJaccard(t *testing.T) {
	// With many rows the estimator must concentrate near the true value.
	p := Params{Bands: 64, Rows: 4, Seed: 3}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(30)
		a := make([]tokens.Rank, 0, n)
		for len(a) < n {
			a = append(a, tokens.Rank(rng.Intn(10000)))
			a = tokens.Dedup(a)
		}
		// b shares a prefix of a
		shared := n / 2
		b := append([]tokens.Rank{}, a[:shared]...)
		for len(b) < n {
			b = append(b, tokens.Rank(10000+rng.Intn(10000)))
			b = tokens.Dedup(b)
		}
		truth := similarity.Of(similarity.Jaccard, a, b)
		est := EstimateSim(p.Signature(a, nil), p.Signature(b, nil))
		if math.Abs(est-truth) > 0.15 {
			t.Fatalf("estimate %v too far from truth %v", est, truth)
		}
	}
}

func TestVerifiedModeHasNoFalsePositives(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(9)).Generate(400)
	j, err := New(Config{Threshold: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		r := r
		j.Add(r, func(m Match) {
			if truth := similarity.Of(similarity.Jaccard, r.Tokens, m.Rec.Tokens); truth < 0.8-1e-12 {
				t.Fatalf("false positive: %v (true sim %v)", m, truth)
			}
		})
	}
}

func TestRecallIsHighForAggressiveBanding(t *testing.T) {
	// 32 bands × 2 rows has collision prob ≥ 1-(1-0.8^2)^32 ≈ 1-1e-14 at
	// s=0.8: recall should be essentially 1 on this workload.
	recs := workload.NewGenerator(workload.AOLLike(11)).Generate(2000)
	j, err := New(Config{Threshold: 0.8, Params: Params{Bands: 32, Rows: 2}})
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[record.Pair]bool)
	for _, r := range recs {
		r := r
		j.Add(r, func(m Match) {
			found[record.NewPair(r.ID, m.Rec.ID, 0)] = true
		})
	}
	truth := make(map[record.Pair]bool)
	for i, r := range recs {
		for k := 0; k < i; k++ {
			if similarity.Of(similarity.Jaccard, r.Tokens, recs[k].Tokens) >= 0.8-1e-12 {
				truth[record.NewPair(r.ID, recs[k].ID, 0)] = true
			}
		}
	}
	missed := 0
	for p := range truth {
		if !found[p] {
			missed++
		}
	}
	recall := 1 - float64(missed)/float64(len(truth))
	if recall < 0.98 {
		t.Fatalf("recall too low: %v (missed %d of %d)", recall, missed, len(truth))
	}
}

func TestConservativeBandingMissesLowSimPairs(t *testing.T) {
	// 1 band × 8 rows collides with prob s^8: at s≈0.5 nearly never. The
	// point of this test is that banding actually filters.
	j, err := New(Config{Threshold: 0.5, Params: Params{Bands: 1, Rows: 8}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pairsChecked := j.Stats().Candidates
	for i := 0; i < 500; i++ {
		n := 8 + rng.Intn(8)
		set := make([]tokens.Rank, 0, n)
		for len(set) < n {
			set = append(set, tokens.Rank(rng.Intn(200)))
			set = tokens.Dedup(set)
		}
		j.Add(rec(record.ID(i), set...), func(Match) {})
	}
	if j.Stats().Candidates-pairsChecked > 500*20 {
		t.Fatalf("banding produced too many candidates: %d", j.Stats().Candidates)
	}
}

func TestWindowEviction(t *testing.T) {
	j, err := New(Config{Threshold: 0.9, Window: window.Count{N: 1}})
	if err != nil {
		t.Fatal(err)
	}
	j.Add(rec(0, 1, 2, 3), func(Match) {})
	j.Add(rec(1, 7, 8, 9), func(Match) {})
	n := 0
	j.Add(rec(3, 1, 2, 3), func(Match) { n++ })
	if n != 0 {
		t.Fatalf("expired record matched: %d", n)
	}
	if j.Size() > 2 {
		t.Fatalf("size: %d", j.Size())
	}
}

func TestSkipVerifyEmitsEstimates(t *testing.T) {
	j, err := New(Config{Threshold: 0.5, SkipVerify: true, Params: Params{Bands: 16, Rows: 2}})
	if err != nil {
		t.Fatal(err)
	}
	j.Add(rec(0, 1, 2, 3, 4), func(Match) {})
	got := 0
	j.Add(rec(1, 1, 2, 3, 4), func(m Match) {
		got++
		if m.Sim != 1.0 { // identical records estimate to 1
			t.Fatalf("estimate: %v", m.Sim)
		}
	})
	if got != 1 {
		t.Fatalf("matches: %d", got)
	}
	if j.Stats().Verified != 0 {
		t.Fatal("skip-verify still verified")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, tau := range []float64{0, -1, 1.5} {
		if _, err := New(Config{Threshold: tau}); err == nil {
			t.Fatalf("threshold %v accepted", tau)
		}
	}
}

func TestEstimateSimEdgeCases(t *testing.T) {
	if EstimateSim(nil, nil) != 0 {
		t.Fatal("nil signatures")
	}
	if EstimateSim([]uint64{1}, []uint64{1, 2}) != 0 {
		t.Fatal("length mismatch")
	}
}
