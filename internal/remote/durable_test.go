package remote

import (
	"context"
	"errors"
	"io"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultwire"
	"repro/internal/local"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/window"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestRunFTDurableRoundTrip is the differential gate for durable session
// state: a clean durable run must (a) match the fault-free baseline, (b)
// leave an ingest log that replays the input stream record for record,
// (c) leave a results log holding exactly the distinct result set, and
// (d) leave a manifest whose hello round-trips back to the launch session.
func TestRunFTDurableRoundTrip(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(59)).Generate(600)
	const tau = 0.7
	k := 3
	sess := testSession(tau, "length", boundsFor(recs, tau, k))
	want := chaosBaseline(t, k, sess, recs)

	workers := make([]*ftWorker, k)
	addrs := make([]string, k)
	for i := range workers {
		workers[i] = startFTWorker(t, t.TempDir(), 2*time.Millisecond)
		addrs[i] = workers[i].addr
	}
	state := t.TempDir()
	ft := fastFT(0xD0B1E)
	ft.Durable = &Durable{StateDir: state, Workers: addrs}
	sum, err := RunFT(context.Background(), tcpDialer(func(task int) string { return addrs[task] }),
		k, sess, recs, Opts{CollectPairs: true}, ft)
	if err != nil {
		t.Fatal(err)
	}
	requireParity(t, sum.Pairs, want, "durable")

	// Ingest log vs live input: same length, same records, same order.
	logRecs, err := ReadIngestLog(state)
	if err != nil {
		t.Fatal(err)
	}
	if len(logRecs) != len(recs) {
		t.Fatalf("ingest log holds %d records, input had %d", len(logRecs), len(recs))
	}
	for i, r := range logRecs {
		in := recs[i]
		if r.ID != in.ID || r.Time != in.Time || len(r.Tokens) != len(in.Tokens) {
			t.Fatalf("ingest log record %d = %v, input %v", i, r, in)
		}
		for j, tok := range r.Tokens {
			if tok != in.Tokens[j] {
				t.Fatalf("ingest log record %d token %d = %v, input %v", i, j, tok, in.Tokens[j])
			}
		}
	}

	// Results log vs live result set: exactly the distinct pairs, no dups.
	logRes, err := ReadResultsLog(state)
	if err != nil {
		t.Fatal(err)
	}
	if len(logRes) != len(want) {
		t.Errorf("results log holds %d entries, want %d distinct results", len(logRes), len(want))
	}
	seen := make(map[record.Pair]bool, len(logRes))
	for _, res := range logRes {
		p := record.Pair{First: res.A, Second: res.B}
		if seen[p] {
			t.Errorf("results log holds duplicate pair %v", p)
		}
		seen[p] = true
		if !want[p] {
			t.Errorf("results log holds pair %v absent from the baseline", p)
		}
	}

	// Manifest: identity, plan hash, cursors, and a hello that round-trips.
	m, err := checkpoint.LoadManifest(filepath.Join(state, checkpoint.ManifestPath))
	if err != nil {
		t.Fatal(err)
	}
	if m.SessionID != ft.SessionID {
		t.Errorf("manifest session id %016x, want %016x", m.SessionID, ft.SessionID)
	}
	if m.PlanHash != sess.PlanHash(k) {
		t.Errorf("manifest plan hash %016x, want %016x", m.PlanHash, sess.PlanHash(k))
	}
	if m.IngestNext != uint64(len(recs)) {
		t.Errorf("manifest ingest cursor %d, want %d", m.IngestNext, len(recs))
	}
	if m.ResultsNext != uint64(len(want)) {
		t.Errorf("manifest results cursor %d, want %d", m.ResultsNext, len(want))
	}
	if len(m.Workers) != k {
		t.Fatalf("manifest workers %v, want %d addresses", m.Workers, k)
	}
	for i, a := range m.Workers {
		if a != addrs[i] {
			t.Errorf("manifest worker %d = %q, want %q", i, a, addrs[i])
		}
	}
	sess2, err := SessionFromHello(m.Hello)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Strategy != sess.Strategy || sess2.Params.Threshold != sess.Params.Threshold {
		t.Errorf("manifest hello decodes to %+v, want %+v", sess2, sess)
	}
	if sess2.PlanHash(k) != m.PlanHash {
		t.Errorf("round-tripped session plan hash %016x, manifest %016x", sess2.PlanHash(k), m.PlanHash)
	}
}

// TestRunFTCoordinatorKillResume is the coordinator-crash acceptance gate:
// a durable run is killed mid-flight (context cancel standing in for
// kill -9 — the CI chaos job does the real thing), a fresh "process"
// reconstructs the session purely from the state directory (manifest +
// ingest log), and the resumed run over the same workers must produce
// exactly the fault-free result set of the persisted input. The resume
// leg additionally carries duplicated frames so the per-connection credit
// dedup is exercised while workers drain restored unacked buffers.
func TestRunFTCoordinatorKillResume(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(71)).Generate(1500)
	const tau = 0.7
	k := 3
	sess := testSession(tau, "length", boundsFor(recs, tau, k))
	sess.Window = window.Count{N: 128}

	workers := make([]*ftWorker, k)
	addrs := make([]string, k)
	for i := range workers {
		workers[i] = startFTWorker(t, t.TempDir(), 2*time.Millisecond)
		addrs[i] = workers[i].addr
	}
	state := t.TempDir()
	const sid = 0x51DFA11
	ft1 := fastFT(sid)
	ft1.Durable = &Durable{StateDir: state, Workers: addrs}

	// First incarnation: slowed by injected frame delays so the kill lands
	// mid-stream, then cancelled once the fleet has made real progress.
	dial1 := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", addrs[task])
		if err != nil {
			return nil, err
		}
		return faultwire.Wrap(c, faultwire.Config{
			Seed:          0xA171 ^ uint64(task),
			DelayPerMille: 400,
			Delay:         time.Millisecond,
		}), nil
	}
	ctx1, kill := context.WithCancel(context.Background())
	defer kill()
	done := make(chan error, 1)
	go func() {
		_, err := RunFT(ctx1, dial1, k, sess, recs, Opts{CollectPairs: true}, ft1)
		done <- err
	}()
	progress := func() uint64 {
		var n uint64
		for _, w := range workers {
			n += w.mon.RecordsSeen.Load()
		}
		return n
	}
	deadline := time.Now().Add(10 * time.Second)
	for progress() < 300 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if progress() < 300 {
		t.Fatalf("fleet made no progress before the kill: %d records seen", progress())
	}
	kill()
	if err := <-done; err == nil {
		// The run outpaced the kill; the resume below still exercises the
		// full recovery path against a complete state directory.
		t.Log("first run finished before the kill landed")
	}
	// Let the severed session handlers finish their unclean-exit
	// checkpoints before the resumed coordinator dials back in.
	time.Sleep(150 * time.Millisecond)

	// Second incarnation: everything comes from the state directory.
	m, err := checkpoint.LoadManifest(filepath.Join(state, checkpoint.ManifestPath))
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := SessionFromHello(m.Hello)
	if err != nil {
		t.Fatal(err)
	}
	logRecs, err := ReadIngestLog(state)
	if err != nil {
		t.Fatal(err)
	}
	if len(logRecs) == 0 {
		t.Fatal("ingest log empty after kill")
	}
	want := chaosBaseline(t, k, sess2, logRecs)

	var attempts [3]atomic.Int64
	dial2 := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", m.Workers[task])
		if err != nil {
			return nil, err
		}
		return faultwire.Wrap(c, faultwire.Config{
			Seed:        0x2E5 ^ uint64(task)<<16 ^ uint64(attempts[task].Add(1)),
			DupPerMille: 20,
		}), nil
	}
	ft2 := fastFT(m.SessionID)
	ft2.Durable = &Durable{StateDir: state, Resume: true, Workers: m.Workers}
	sum, err := RunFT(context.Background(), dial2, k, sess2, logRecs, Opts{CollectPairs: true}, ft2)
	if err != nil {
		t.Fatal(err)
	}
	requireParity(t, sum.Pairs, want, "kill-resume")

	var resumed uint64
	for _, w := range workers {
		resumed += w.mon.SessionsResumed.Load()
	}
	if resumed == 0 {
		t.Error("no worker restored a checkpoint across the coordinator restart")
	}
}

// TestWorkerRejectsPlanMismatch pins the stale-state guard: a resuming
// hello whose plan hash disagrees with the checkpoint's must be refused
// with checkpoint.ErrPlanMismatch instead of silently replaying
// wrong-range records, while a matching hash resumes normally.
func TestWorkerRejectsPlanMismatch(t *testing.T) {
	const sid = 0xBADB1A
	sess := testSession(0.7, "broadcast", nil)
	dir := t.TempDir()

	// Fabricate a v2 checkpoint stamped with plan hash A.
	j := local.New(local.Naive, local.Options{Params: sess.Params})
	path := checkpointPath(dir, sid, 0)
	if err := writeCheckpointFile(path, checkpoint.Cursor{NextID: 5, NextTime: 1}, j,
		&checkpoint.SessionMeta{PlanHash: 0xAAAA}); err != nil {
		t.Fatal(err)
	}
	local.CloseJoiner(j)

	hello := func(planHash uint64) wire.Hello {
		h, err := sess.hello(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		h.FT = true
		h.Resume = true
		h.SessionID = sid
		h.Durable = true
		h.PlanHash = planHash
		return h
	}
	handshake := func(h wire.Hello) (ackErr, sessErr error) {
		srv, cli := net.Pipe()
		defer srv.Close()
		defer cli.Close()
		errCh := make(chan error, 1)
		go func() {
			errCh <- HandleSessionOpts(context.Background(), srv, srv,
				WorkerOpts{Logf: silentLogf, CheckpointDir: dir})
		}()
		wr := wire.NewWriter(cli)
		if err := wr.WriteHello(h); err != nil {
			t.Fatal(err)
		}
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		rd := wire.NewReader(cli)
		ackDone := make(chan error, 1)
		go func() {
			typ, err := rd.Next()
			if err != nil {
				ackDone <- err
				return
			}
			if typ != wire.TypeResumeAck {
				ackDone <- errors.New("unexpected frame type")
				return
			}
			_, _, _, err = rd.ReadResumeAckCredit()
			ackDone <- err
		}()
		select {
		case sessErr = <-errCh:
			// Rejected before the ack: unblock the pending read.
			cli.Close()
			<-ackDone
			return nil, sessErr
		case ackErr = <-ackDone:
			// Handshake succeeded; hang up and collect the session error.
			cli.Close()
			return ackErr, <-errCh
		}
	}

	// Mismatched hash: refused with the sentinel, before any ack.
	if _, err := handshake(hello(0xBBBB)); !errors.Is(err, checkpoint.ErrPlanMismatch) {
		t.Errorf("mismatched plan hash: got %v, want ErrPlanMismatch", err)
	}
	// Matching hash: the resume ack arrives and no mismatch is reported.
	ackErr, sessErr := handshake(hello(0xAAAA))
	if ackErr != nil {
		t.Errorf("matching plan hash: resume ack failed: %v", ackErr)
	}
	if errors.Is(sessErr, checkpoint.ErrPlanMismatch) {
		t.Errorf("matching plan hash rejected: %v", sessErr)
	}
}

// TestSessionControlPauseHoldsFleet pins the PauseAll mechanism: with the
// control pre-paused, a running session's workers must see zero records
// and the coordinator journal must stay quiet across observation rounds —
// the paused fleet neither streams nor accumulates anything — then Resume
// releases the run to full parity.
func TestSessionControlPauseHoldsFleet(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(41)).Generate(400)
	const tau = 0.7
	k := 2
	sess := testSession(tau, "broadcast", nil)
	want := chaosBaseline(t, k, sess, recs)

	workers := make([]*ftWorker, k)
	for i := range workers {
		workers[i] = startFTWorker(t, t.TempDir(), 2*time.Millisecond)
	}
	jr := obs.NewJournal(256)
	ctl := &SessionControl{}
	ctl.Pause() // before launch: deterministic — no record may ever flow

	ft := fastFT(0x9A5E)
	ft.Control = ctl
	type result struct {
		sum *RunSummary
		err error
	}
	done := make(chan result, 1)
	go func() {
		sum, err := RunFT(context.Background(),
			tcpDialer(func(task int) string { return workers[task].addr }),
			k, sess, recs, Opts{CollectPairs: true, Journal: jr}, ft)
		done <- result{sum, err}
	}()

	// Wait for every worker to complete its handshake, then observe.
	deadline := time.Now().Add(5 * time.Second)
	started := func() bool {
		for _, w := range workers {
			if w.mon.SessionsStarted.Load() == 0 {
				return false
			}
		}
		return true
	}
	for !started() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !started() {
		t.Fatal("workers never handshook")
	}
	events := jr.Appended()
	for round := 0; round < 3; round++ {
		time.Sleep(30 * time.Millisecond)
		for i, w := range workers {
			if n := w.mon.RecordsSeen.Load(); n != 0 {
				t.Fatalf("round %d: paused worker %d saw %d records", round, i, n)
			}
		}
		if n := jr.Appended(); n != events {
			t.Fatalf("round %d: journal grew from %d to %d events while paused", round, events, n)
		}
	}

	ctl.Resume()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		requireParity(t, r.sum.Pairs, want, "pause-resume")
	case <-time.After(30 * time.Second):
		t.Fatal("run did not complete after resume")
	}
	var sawResume bool
	for _, ev := range jr.Recent(256) {
		if ev.Type == "resume_all" {
			sawResume = true
		}
	}
	if !sawResume {
		t.Error("journal holds no resume_all event")
	}
}

// TestPlanHashProperties pins the plan hash as a launch-configuration
// fingerprint: stable across identical sessions, sensitive to every knob
// that changes which records a task owns or how they are compared.
func TestPlanHashProperties(t *testing.T) {
	base := testSession(0.7, "length", []int{0, 10, 20})
	if base.PlanHash(3) != base.PlanHash(3) {
		t.Error("plan hash unstable across calls")
	}
	clone := testSession(0.7, "length", []int{0, 10, 20})
	if clone.PlanHash(3) != base.PlanHash(3) {
		t.Error("plan hash differs between identical sessions")
	}
	variants := map[string]uint64{
		"workers": base.PlanHash(4),
	}
	v := base
	v.Params.Threshold = 0.8
	variants["threshold"] = v.PlanHash(3)
	v = base
	v.Strategy = "broadcast"
	v.Bounds = nil
	variants["strategy"] = v.PlanHash(3)
	v = base
	v.Bounds = []int{0, 12, 20}
	variants["bounds"] = v.PlanHash(3)
	v = base
	v.Window = window.Count{N: 64}
	variants["window"] = v.PlanHash(3)
	seen := map[uint64]string{base.PlanHash(3): "base"}
	for name, h := range variants {
		if prev, dup := seen[h]; dup {
			t.Errorf("plan hash collision: %s == %s (%016x)", name, prev, h)
		}
		seen[h] = name
	}
}
