// Cluster-wide observability: the coordinator scrapes each worker's
// /metrics endpoint (Prometheus text exposition, parsed with
// obs.ParseExposition) and renders one table row per worker — queue depth,
// load, and p50/p99 record latency recomputed from the scraped histogram
// buckets. No metrics dependency crosses the wire; the exposition text is
// the whole contract.
package remote

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
)

// WorkerStatus is one worker's scraped headline state.
type WorkerStatus struct {
	Addr string
	Up   bool
	Err  error
	// QueueDepth is worker_inflight_records: records mid-processing.
	QueueDepth float64
	// Load is worker_load: records/second since the worker's previous
	// scrape.
	Load float64
	// Records and Results are lifetime totals.
	Records float64
	Results float64
	// SessionsActive is started - finished - failed.
	SessionsActive float64
	// P50Us and P99Us are record-latency quantiles in microseconds,
	// recomputed from the scraped worker_record_seconds buckets.
	P50Us float64
	P99Us float64
}

// ScrapeWorker fetches base's /metrics endpoint and parses the exposition
// text. base is a host:port or URL prefix ("worker-3:8080" or
// "http://worker-3:8080").
func ScrapeWorker(ctx context.Context, client *http.Client, base string) (obs.ParsedMetrics, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote: scraping %s: HTTP %d", req.URL, resp.StatusCode)
	}
	return obs.ParseExposition(resp.Body)
}

// StatusFrom extracts the cluster-table row from one worker's scrape.
func StatusFrom(addr string, pm obs.ParsedMetrics) WorkerStatus {
	st := WorkerStatus{Addr: addr, Up: true}
	st.QueueDepth = pm.Value("worker_inflight_records", 0)
	st.Load = pm.Value("worker_load", 0)
	st.Records = pm.Value("worker_records_total", 0)
	st.Results = pm.Value("worker_results_total", 0)
	started := pm.Value("worker_sessions_started_total", 0)
	st.SessionsActive = started -
		pm.Value("worker_sessions_finished_total", 0) -
		pm.Value("worker_sessions_failed_total", 0)
	if fam := pm["worker_record_seconds_bucket"]; fam != nil {
		st.P50Us = obs.HistogramQuantile(fam.Samples, 0.5) * 1e6
		st.P99Us = obs.HistogramQuantile(fam.Samples, 0.99) * 1e6
	}
	return st
}

// ScrapeCluster scrapes every address concurrently and returns one status
// per worker, in input order. Unreachable workers come back with Up=false
// and the scrape error; the table still renders them.
func ScrapeCluster(ctx context.Context, client *http.Client, addrs []string, timeout time.Duration) []WorkerStatus {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	out := make([]WorkerStatus, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			pm, err := ScrapeWorker(sctx, client, addr)
			if err != nil {
				out[i] = WorkerStatus{Addr: addr, Err: err}
				return
			}
			out[i] = StatusFrom(addr, pm)
		}(i, addr)
	}
	wg.Wait()
	return out
}

// ClusterTable renders worker statuses as an aligned table with a totals
// row, sorted by address for stable output.
func ClusterTable(w io.Writer, sts []WorkerStatus) error {
	sorted := append([]WorkerStatus(nil), sts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tUP\tQUEUE\tLOAD r/s\tRECORDS\tRESULTS\tACTIVE\tP50 us\tP99 us")
	var tot WorkerStatus
	for _, st := range sorted {
		if !st.Up {
			fmt.Fprintf(tw, "%s\tdown\t-\t-\t-\t-\t-\t-\t-\n", st.Addr)
			continue
		}
		fmt.Fprintf(tw, "%s\tup\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			st.Addr, st.QueueDepth, st.Load, st.Records, st.Results,
			st.SessionsActive, st.P50Us, st.P99Us)
		tot.QueueDepth += st.QueueDepth
		tot.Load += st.Load
		tot.Records += st.Records
		tot.Results += st.Results
		tot.SessionsActive += st.SessionsActive
	}
	fmt.Fprintf(tw, "TOTAL\t\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t\t\n",
		tot.QueueDepth, tot.Load, tot.Records, tot.Results, tot.SessionsActive)
	return tw.Flush()
}
