// Cluster-wide observability: the coordinator scrapes each worker's
// /metrics endpoint (Prometheus text exposition, parsed with
// obs.ParseExposition) and renders one table row per worker — queue depth,
// load, and p50/p99 record latency recomputed from the scraped histogram
// buckets. No metrics dependency crosses the wire; the exposition text is
// the whole contract.
package remote

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
)

// WorkerStatus is one worker's scraped headline state.
type WorkerStatus struct {
	Addr string
	Up   bool
	Err  error
	// Stale marks a row carried forward from an earlier successful scrape
	// after the current one failed (see MergeStatuses): the numbers are
	// real but old. LastSeen is when they were actually scraped.
	Stale    bool
	LastSeen time.Time
	// QueueDepth is worker_inflight_records: records mid-processing.
	QueueDepth float64
	// Load is worker_load: records/second since the worker's previous
	// scrape.
	Load float64
	// Records and Results are lifetime totals.
	Records float64
	Results float64
	// SessionsActive is started - finished - failed.
	SessionsActive float64
	// P50Us and P99Us are record-latency quantiles in microseconds,
	// recomputed from the scraped worker_record_seconds buckets.
	P50Us float64
	P99Us float64
	// Unacked is worker_unacked_results: durable-session results buffered
	// awaiting coordinator acknowledgement.
	Unacked float64
	// Paused is worker_paused_sessions: sessions that asked the coordinator
	// to pause the record stream — the fleet's shedding/backpressure flag.
	Paused float64
}

// ScrapeWorker fetches base's /metrics endpoint and parses the exposition
// text. base is a host:port or URL prefix ("worker-3:8080" or
// "http://worker-3:8080").
func ScrapeWorker(ctx context.Context, client *http.Client, base string) (obs.ParsedMetrics, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote: scraping %s: HTTP %d", req.URL, resp.StatusCode)
	}
	return obs.ParseExposition(resp.Body)
}

// StatusFrom extracts the cluster-table row from one worker's scrape.
func StatusFrom(addr string, pm obs.ParsedMetrics) WorkerStatus {
	st := WorkerStatus{Addr: addr, Up: true, LastSeen: time.Now()}
	st.QueueDepth = pm.Value("worker_inflight_records", 0)
	st.Load = pm.Value("worker_load", 0)
	st.Records = pm.Value("worker_records_total", 0)
	st.Results = pm.Value("worker_results_total", 0)
	started := pm.Value("worker_sessions_started_total", 0)
	st.SessionsActive = started -
		pm.Value("worker_sessions_finished_total", 0) -
		pm.Value("worker_sessions_failed_total", 0)
	st.Unacked = pm.Value("worker_unacked_results", 0)
	st.Paused = pm.Value("worker_paused_sessions", 0)
	if fam := pm["worker_record_seconds_bucket"]; fam != nil {
		st.P50Us = obs.HistogramQuantile(fam.Samples, 0.5) * 1e6
		st.P99Us = obs.HistogramQuantile(fam.Samples, 0.99) * 1e6
	}
	return st
}

// ScrapeCluster scrapes every address concurrently and returns one status
// per worker, in input order. Unreachable workers come back with Up=false
// and the scrape error; the table still renders them.
func ScrapeCluster(ctx context.Context, client *http.Client, addrs []string, timeout time.Duration) []WorkerStatus {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	out := make([]WorkerStatus, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			pm, err := ScrapeWorker(sctx, client, addr)
			if err != nil {
				out[i] = WorkerStatus{Addr: addr, Err: err}
				return
			}
			out[i] = StatusFrom(addr, pm)
		}(i, addr)
	}
	wg.Wait()
	return out
}

// MergeStatuses overlays a fresh scrape round onto the previous one: rows
// that scraped cleanly pass through, while rows whose scrape failed
// mid-fleet fall back to their last successful reading, marked Stale and
// keeping the fresh error. A worker that has never been scraped
// successfully stays a plain down row. One flaky worker therefore degrades
// one row instead of blanking it — the rest of the fleet renders normally
// either way.
func MergeStatuses(prev, cur []WorkerStatus) []WorkerStatus {
	last := make(map[string]WorkerStatus, len(prev))
	for _, st := range prev {
		if st.Up {
			last[st.Addr] = st
		}
	}
	out := append([]WorkerStatus(nil), cur...)
	for i, st := range out {
		if st.Up {
			continue
		}
		old, ok := last[st.Addr]
		if !ok {
			continue
		}
		old.Stale = true
		old.Err = st.Err
		out[i] = old
	}
	return out
}

// SignalsFrom converts one worker's status row into the signal map a
// HealthEngine evaluates coordinator-side. Down rows yield only the up
// signal, so value rules skip them instead of firing on zeros.
func SignalsFrom(st WorkerStatus) map[string]float64 {
	sig := map[string]float64{"up": 0}
	if !st.Up {
		return sig
	}
	sig["up"] = 1
	sig["queue"] = st.QueueDepth
	sig["load"] = st.Load
	sig["p50_ms"] = st.P50Us / 1e3
	sig["p99_ms"] = st.P99Us / 1e3
	sig["records"] = st.Records
	sig["results"] = st.Results
	sig["sessions_active"] = st.SessionsActive
	sig["unacked"] = st.Unacked
	sig["paused"] = st.Paused
	if st.Stale {
		sig["stale"] = 1
	}
	return sig
}

// ClusterSignals derives fleet-wide signals from a scrape round: the down
// count and the load imbalance ratio (max load over mean load across up
// workers, 1 when balanced or idle).
func ClusterSignals(sts []WorkerStatus) map[string]float64 {
	var down, up int
	var sum, max float64
	for _, st := range sts {
		if !st.Up {
			down++
			continue
		}
		up++
		sum += st.Load
		if st.Load > max {
			max = st.Load
		}
	}
	imb := 1.0
	if up > 0 && sum > 0 {
		imb = max / (sum / float64(up))
	}
	return map[string]float64{
		"workers_down": float64(down),
		"imbalance":    imb,
	}
}

// ClusterTable renders worker statuses as an aligned table with a totals
// row, sorted by address for stable output.
func ClusterTable(w io.Writer, sts []WorkerStatus) error {
	sorted := append([]WorkerStatus(nil), sts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tUP\tQUEUE\tLOAD r/s\tRECORDS\tRESULTS\tACTIVE\tP50 us\tP99 us")
	var tot WorkerStatus
	for _, st := range sorted {
		if !st.Up {
			fmt.Fprintf(tw, "%s\tdown\t-\t-\t-\t-\t-\t-\t-\n", st.Addr)
			continue
		}
		state := "up"
		if st.Stale {
			state = "stale"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			st.Addr, state, st.QueueDepth, st.Load, st.Records, st.Results,
			st.SessionsActive, st.P50Us, st.P99Us)
		tot.QueueDepth += st.QueueDepth
		tot.Load += st.Load
		tot.Records += st.Records
		tot.Results += st.Results
		tot.SessionsActive += st.SessionsActive
	}
	fmt.Fprintf(tw, "TOTAL\t\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t\t\n",
		tot.QueueDepth, tot.Load, tot.Records, tot.Results, tot.SessionsActive)
	return tw.Flush()
}
