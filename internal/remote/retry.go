package remote

import (
	"context"
	"fmt"
	"net"
	"time"
)

// RetryPolicy bounds and paces reconnection attempts after a transport
// failure. The zero value retries nothing: the first failure is final.
type RetryPolicy struct {
	// MaxAttempts is the number of consecutive failed attempts tolerated
	// before the peer is declared dead. A successful handshake resets the
	// count.
	MaxAttempts int
	// Base is the backoff before the first retry; each further retry
	// doubles it up to Cap.
	Base time.Duration
	// Cap bounds the backoff growth. Zero means no cap.
	Cap time.Duration
	// Seed drives the deterministic jitter so retry storms decorrelate
	// without nondeterminism in tests. Zero is a valid seed.
	Seed uint64
}

// DefaultRetryPolicy is a sensible starting point: four retries from 50ms
// doubling to a 2s ceiling.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Base: 50 * time.Millisecond, Cap: 2 * time.Second}
}

// splitmix is splitmix64 — the jitter PRNG. Deterministic in (seed,
// sequence), so a fixed-seed chaos run reproduces its exact schedule.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff returns the pause before retry attempt (1-based) in sequence
// seq: exponential growth from Base capped at Cap, with the upper half
// jittered so simultaneous failures don't reconnect in lockstep.
func (p RetryPolicy) backoff(attempt int, seq uint64) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.Cap > 0 && d >= p.Cap {
			d = p.Cap
			break
		}
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	// Jitter in [d/2, d): keep half the backoff deterministic floor, spread
	// the rest.
	half := d / 2
	if half <= 0 {
		return d
	}
	j := splitmix(p.Seed ^ (uint64(attempt) << 32) ^ seq)
	return half + time.Duration(j%uint64(half))
}

// sleepCtx pauses for d or until ctx is cancelled, returning the ctx error
// in the latter case. This is the cancellation-aware sleep every retry
// loop must use (retrycheck flags bare time.Sleep in such loops).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// DialRetry connects to every worker address like Dial, but retries each
// failing address under the policy before giving up. On final failure all
// already-opened connections are closed — no partially-open fleet escapes.
func DialRetry(ctx context.Context, addrs []string, timeout time.Duration, policy RetryPolicy) ([]net.Conn, error) {
	d := net.Dialer{Timeout: timeout}
	conns := make([]net.Conn, 0, len(addrs))
	for ai, a := range addrs {
		var (
			c   net.Conn
			err error
		)
		for attempt := 0; ; attempt++ {
			c, err = d.DialContext(ctx, "tcp", a)
			if err == nil || attempt >= policy.MaxAttempts || ctx.Err() != nil {
				break
			}
			if serr := sleepCtx(ctx, policy.backoff(attempt+1, uint64(ai))); serr != nil {
				err = serr
				break
			}
		}
		if err != nil {
			for _, done := range conns {
				done.Close()
			}
			return nil, fmt.Errorf("remote: dialing %s: %w", a, err)
		}
		conns = append(conns, c)
	}
	return conns, nil
}
