package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/window"
	"repro/internal/workload"
)

// newUpWorkerServer serves a registry-backed /metrics for one fake worker.
func newUpWorkerServer(t *testing.T, records float64) *httptest.Server {
	t.Helper()
	var mon Monitor
	mon.RecordsSeen.Add(uint64(records))
	mon.SessionsStarted.Add(1)
	reg := obs.NewRegistry()
	mon.RegisterMetrics(reg)
	mux := http.NewServeMux()
	obs.AttachDebug(mux, reg, nil)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestScrapeClusterPartialFailure is the regression test for the monitor's
// graceful degradation: when one worker of the fleet stops answering
// scrapes mid-run, the cluster view must keep the healthy rows live and
// carry the failed worker forward as a stale row rather than blanking it.
func TestScrapeClusterPartialFailure(t *testing.T) {
	good := newUpWorkerServer(t, 1000)
	flaky := newUpWorkerServer(t, 500)

	addrs := []string{good.URL, flaky.URL}
	ctx := context.Background()
	prev := ScrapeCluster(ctx, nil, addrs, time.Second)
	for i, st := range prev {
		if !st.Up {
			t.Fatalf("baseline scrape %d failed: %v", i, st.Err)
		}
	}

	// The flaky worker dies mid-fleet.
	flaky.Close()
	cur := ScrapeCluster(ctx, nil, addrs, time.Second)
	if !cur[0].Up {
		t.Fatalf("healthy worker reported down: %v", cur[0].Err)
	}
	if cur[1].Up || cur[1].Err == nil {
		t.Fatalf("dead worker must come back Up=false with the error, got %+v", cur[1])
	}

	merged := MergeStatuses(prev, cur)
	if !merged[0].Up || merged[0].Stale {
		t.Fatalf("healthy row degraded by merge: %+v", merged[0])
	}
	st := merged[1]
	if !st.Up || !st.Stale {
		t.Fatalf("failed row must carry forward stale, got %+v", st)
	}
	if st.Records != 500 {
		t.Fatalf("stale row lost its last reading: %+v", st)
	}
	if st.Err == nil {
		t.Fatal("stale row must keep the fresh scrape error")
	}
	if st.LastSeen.IsZero() {
		t.Fatal("stale row must keep its LastSeen stamp")
	}

	// The table renders the whole fleet: one up row, one stale row.
	var buf bytes.Buffer
	if err := ClusterTable(&buf, merged); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "stale") {
		t.Fatalf("table lacks the stale row:\n%s", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("table lost healthy rows:\n%s", out)
	}

	// A worker that never scraped successfully stays a plain down row.
	neverUp := MergeStatuses(nil, cur)
	if neverUp[1].Up || neverUp[1].Stale {
		t.Fatalf("never-seen worker must stay down, got %+v", neverUp[1])
	}
}

// TestHealthzDetailEndpoint pins the machine-readable health contract:
// detail=1 serves the engine's JSON (503 when firing), the plain endpoint
// stays "ok".
func TestHealthzDetailEndpoint(t *testing.T) {
	var mon Monitor
	rules, err := obs.ParseHealthRules("q: queue > 1")
	if err != nil {
		t.Fatal(err)
	}
	mon.Health = obs.NewHealthEngine(rules, nil)
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/healthz?detail=1")
	if code != http.StatusOK {
		t.Fatalf("healthy detail status = %d", code)
	}
	var st obs.HealthStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("detail body is not HealthStatus JSON: %v\n%s", err, body)
	}
	if !st.Healthy {
		t.Fatalf("engine with no evaluations must be healthy: %+v", st)
	}

	mon.Health.Eval("self", map[string]float64{"queue": 10}, 0xfeed)
	code, body = get("/healthz?detail=1")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("firing detail status = %d, want 503", code)
	}
	if err := json.Unmarshal(body, &st); err != nil || st.Healthy || st.Firing != 1 {
		t.Fatalf("firing detail = %+v (%v)", st, err)
	}
	if st.Rules[0].ExemplarTraceID != 0xfeed {
		t.Fatalf("rule lost its exemplar: %+v", st.Rules[0])
	}

	if code, body := get("/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("plain healthz changed: %d %q", code, body)
	}
}

// TestMonitorHealthSignals checks the worker-side signal map wiring,
// including the checkpoint-lag signal appearing only after a checkpoint.
func TestMonitorHealthSignals(t *testing.T) {
	var mon Monitor
	mon.InFlightRecords.Add(3)
	mon.RecordsSeen.Add(100)
	mon.RecordLatency.Observe(5 * time.Millisecond)
	sig := mon.HealthSignals()
	if sig["queue"] != 3 {
		t.Fatalf("queue signal = %v", sig["queue"])
	}
	if _, ok := sig["checkpoint_lag_s"]; ok {
		t.Fatal("checkpoint_lag_s must be absent before the first checkpoint")
	}
	if sig["p99_ms"] <= 0 {
		t.Fatalf("p99_ms signal = %v", sig["p99_ms"])
	}
	mon.MarkCheckpoint()
	sig = mon.HealthSignals()
	if lag, ok := sig["checkpoint_lag_s"]; !ok || lag < 0 || lag > 60 {
		t.Fatalf("checkpoint_lag_s = %v (%v)", lag, ok)
	}
}

// TestClusterSignals checks the fleet-derived health inputs.
func TestClusterSignals(t *testing.T) {
	sts := []WorkerStatus{
		{Addr: "a", Up: true, Load: 300},
		{Addr: "b", Up: true, Load: 100},
		{Addr: "c", Up: false},
	}
	sig := ClusterSignals(sts)
	if sig["workers_down"] != 1 {
		t.Fatalf("workers_down = %v", sig["workers_down"])
	}
	if sig["imbalance"] != 1.5 {
		t.Fatalf("imbalance = %v, want 300/200", sig["imbalance"])
	}
	if per := SignalsFrom(sts[2]); per["up"] != 0 || len(per) != 1 {
		t.Fatalf("down row signals = %v", per)
	}
	if per := SignalsFrom(sts[0]); per["up"] != 1 || per["load"] != 300 {
		t.Fatalf("up row signals = %v", per)
	}
}

// TestDistributedTraceEndToEnd is the tentpole acceptance test: a real
// 2-worker distributed session over TCP with tracing on, worker fragments
// scraped over HTTP, and the stitcher producing an end-to-end trace with
// spans from both the coordinator and a worker process.
func TestDistributedTraceEndToEnd(t *testing.T) {
	const k = 2
	frags := make([]*obs.Fragments, k)
	journals := make([]*obs.Journal, k)
	conns := make([]net.Conn, 0, k)
	debugURLs := make([]string, k)
	for i := 0; i < k; i++ {
		frags[i] = obs.NewFragments(0)
		journals[i] = obs.NewJournal(0)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go ServeWorkerOpts(context.Background(), ln, WorkerOpts{ //nolint:errcheck
			Logf:    silentLogf,
			Frags:   frags[i],
			Journal: journals[i],
		})
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close(); ln.Close() })
		conns = append(conns, c)

		mux := http.NewServeMux()
		obs.AttachDebugOpts(mux, obs.DebugOptions{
			Registry:  obs.NewRegistry(),
			Fragments: frags[i],
			Journal:   journals[i],
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		debugURLs[i] = srv.URL
	}

	tracer := obs.NewTracer(1, 256) // trace every record
	tracer.SetIDBase(0x77000000)
	journal := obs.NewJournal(0)
	recs := workload.NewGenerator(workload.UniformSmall(7)).Generate(100)
	sess := testSession(0.7, "broadcast", nil)
	sum, err := RunWithOpts(context.Background(), asRW(conns), sess, recs,
		Opts{CollectPairs: true, Tracer: tracer, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	want := singleNodePairs(recs, 0.7, window.Unbounded{})
	if int(sum.Results) != len(want) {
		t.Fatalf("tracing changed results: got %d, want %d", sum.Results, len(want))
	}

	stitcher := obs.NewStitcher(256)
	errs := CollectTraces(context.Background(), nil, stitcher, tracer, debugURLs, time.Second)
	if len(errs) != 0 {
		t.Fatalf("trace scrape errors: %v", errs)
	}
	snap := stitcher.Snapshot()
	if len(snap.Traces) == 0 {
		t.Fatal("no stitched traces")
	}

	var full *obs.StitchedTrace
	for i := range snap.Traces {
		if len(snap.Traces[i].Origins) >= 2 {
			full = &snap.Traces[i]
			break
		}
	}
	if full == nil {
		t.Fatalf("no trace stitched spans from more than one process; first trace: %+v", snap.Traces[0])
	}
	var coordSpans, workerSpans, wireParents int
	stages := map[string]bool{}
	for _, sp := range full.Spans {
		stages[sp.Stage] = true
		switch sp.Origin {
		case "coordinator":
			coordSpans++
		default:
			workerSpans++
			if sp.Stage == "queue" {
				if sp.Parent < 0 || sp.Parent >= len(full.Spans) || full.Spans[sp.Parent].Stage != "wire" {
					t.Fatalf("queue span not parented at a wire span: %+v", sp)
				}
				wireParents++
			}
		}
	}
	if coordSpans == 0 || workerSpans == 0 {
		t.Fatalf("stitched trace lacks both sides: coord=%d worker=%d", coordSpans, workerSpans)
	}
	if wireParents == 0 {
		t.Fatal("no worker queue span attached to a coordinator wire span")
	}
	for _, stage := range []string{"emit", "wire", "queue", "process"} {
		if !stages[stage] {
			t.Fatalf("stitched trace missing %q stage; stages: %v", stage, stages)
		}
	}
	if full.ID < 0x77000000 {
		t.Fatalf("trace id %#x ignores the session id base", full.ID)
	}

	// The tree renderer handles a real stitched trace.
	var tree bytes.Buffer
	if err := RenderTraceTree(&tree, *full); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.String(), "emit") || !strings.Contains(tree.String(), "queue") {
		t.Fatalf("rendered tree:\n%s", tree.String())
	}

	// Worker journals recorded the session lifecycle, and CollectEvents
	// merges them with the coordinator timeline.
	events := CollectEvents(context.Background(), nil, journal.Snapshot(), debugURLs, time.Second)
	byType := map[string]int{}
	bySource := map[string]bool{}
	for _, ev := range events {
		byType[ev.Type]++
		bySource[ev.Source] = true
	}
	if byType["session_start"] < k+1 || byType["session_end"] < k+1 {
		t.Fatalf("merged timeline missing lifecycle events: %v", byType)
	}
	if !bySource["coordinator"] || len(bySource) < 2 {
		t.Fatalf("merged timeline sources: %v", bySource)
	}
}

// TestTracingDetachedLeavesWireUntouched checks the zero-cost-off gate at
// the protocol level: a run without a tracer produces byte-identical
// frames to one with a nil tracer explicitly set, and traced runs produce
// identical results.
func TestTracingDetachedLeavesWireUntouched(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(3)).Generate(50)
	run := func(tracer *obs.Tracer) uint64 {
		conns := startWorkers(t, 2)
		sum, err := RunWithOpts(context.Background(), asRW(conns), testSession(0.7, "broadcast", nil), recs,
			Opts{Tracer: tracer})
		if err != nil {
			t.Fatal(err)
		}
		return sum.BytesSent
	}
	off := run(nil)
	disabled := run(obs.NewTracer(0, 0)) // attached but sampling disabled
	if off != disabled {
		t.Fatalf("disabled tracer changed wire bytes: %d vs %d", off, disabled)
	}
	on := run(obs.NewTracer(1, 16))
	if on <= off {
		t.Fatalf("traced run should carry annotations: %d vs %d", on, off)
	}
}
