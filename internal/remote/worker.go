package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/local"
	"repro/internal/record"
	"repro/internal/wire"
)

// ServeWorker accepts coordinator connections on ln and runs one join
// session per connection until ln is closed or ctx is cancelled. Sessions
// run concurrently; each owns its joiner. The returned error is nil when
// the listener was closed; in-flight sessions are drained before return.
func ServeWorker(ctx context.Context, ln net.Listener, logf func(format string, args ...interface{})) error {
	return ServeWorkerMonitored(ctx, ln, logf, nil)
}

// ServeWorkerMonitored behaves like ServeWorker and additionally feeds the
// monitor's counters (mon may be nil).
func ServeWorkerMonitored(ctx context.Context, ln net.Listener, logf func(format string, args ...interface{}), mon *Monitor) error {
	if logf == nil {
		logf = log.Printf
	}
	stopCancel := context.AfterFunc(ctx, func() { ln.Close() })
	defer stopCancel()
	var wg sync.WaitGroup
	defer wg.Wait() // graceful drain: finish in-flight sessions first
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			stopConn := context.AfterFunc(ctx, func() { conn.Close() })
			defer stopConn()
			if mon != nil {
				mon.SessionsStarted.Add(1)
			}
			start := time.Now()
			err := HandleSessionMonitored(ctx, conn, conn, mon)
			if mon != nil {
				mon.SessionLatency.Observe(time.Since(start))
			}
			if err != nil {
				if mon != nil {
					mon.SessionsFailed.Add(1)
				}
				logf("remote worker: session ended with error: %v", err)
			} else if mon != nil {
				mon.SessionsFinished.Add(1)
			}
		}(conn)
	}
}

// HandleSession runs one worker-side join session over the given
// reader/writer pair (a TCP connection in production, an in-memory pipe in
// tests). It returns when the coordinator sends EOF (nil error), the
// stream breaks, or ctx is cancelled between frames. Callers streaming
// over a blocking transport should additionally arrange for cancellation
// to close the transport (ServeWorker does).
func HandleSession(ctx context.Context, r io.Reader, w io.Writer) error {
	return HandleSessionMonitored(ctx, r, w, nil)
}

// HandleSessionMonitored is HandleSession with optional monitor counters.
func HandleSessionMonitored(ctx context.Context, r io.Reader, w io.Writer, mon *Monitor) error {
	wr := wire.NewWriter(w)
	rd := wire.NewReader(r)

	typ, err := rd.Next()
	if err != nil {
		return fmt.Errorf("remote: reading hello: %w", err)
	}
	if typ != wire.TypeHello {
		return fmt.Errorf("remote: expected hello, got frame type %d", typ)
	}
	h, err := rd.ReadHello()
	if err != nil {
		return err
	}
	sess, strat, err := sessionFromHello(h)
	if err != nil {
		return err
	}
	opts := local.Options{
		Params: sess.Params,
		Window: sess.Window,
		Bundle: sess.Bundle,
	}
	var (
		joiner local.Joiner
		bi     *local.BiJoiner
	)
	if sess.Bi {
		bi = local.NewBi(sess.Algorithm, opts)
	} else {
		joiner = local.New(sess.Algorithm, opts)
	}

	task, workers := h.Task, h.Workers
	var writeErr error
	emit := func(r *record.Record) func(local.Match) {
		return func(m local.Match) {
			if writeErr != nil {
				return
			}
			if !strat.Emits(r, m.Rec, task, workers) {
				return
			}
			a, b := r.ID, m.Rec.ID
			if a > b {
				a, b = b, a
			}
			if mon != nil {
				mon.ResultsEmitted.Add(1)
			}
			writeErr = wr.WriteResult(wire.Result{A: a, B: b, Sim: m.Sim})
		}
	}

	sendStats := func() error {
		var c local.Cost
		if bi != nil {
			cl, cr := bi.CostLeft(), bi.CostRight()
			c = local.Cost{
				Probes: cl.Probes + cr.Probes, Stored: cl.Stored + cr.Stored,
				Scanned: cl.Scanned + cr.Scanned, Candidates: cl.Candidates + cr.Candidates,
				Verified: cl.Verified + cr.Verified, Results: cl.Results + cr.Results,
				VerifySteps: cl.VerifySteps + cr.VerifySteps, Postings: cl.Postings + cr.Postings,
			}
		} else {
			c = joiner.Cost()
		}
		return wr.WriteStats(wire.Stats{
			Probes: c.Probes, Stored: c.Stored, Scanned: c.Scanned,
			Candidates: c.Candidates, Verified: c.Verified,
			Results: c.Results, VerifySteps: c.VerifySteps,
			Postings: c.Postings,
		})
	}

	first := true
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("remote: session cancelled: %w", err)
		}
		typ, err := rd.Next()
		if err != nil {
			return fmt.Errorf("remote: reading frame: %w", err)
		}
		switch typ {
		case wire.TypeSnapshot:
			if !first {
				return errors.New("remote: snapshot frame after records")
			}
			if bi != nil {
				return errors.New("remote: snapshots unsupported for bi sessions")
			}
			blob := rd.ReadSnapshot()
			if _, _, err := checkpoint.Read(bytes.NewReader(blob), joiner); err != nil {
				return fmt.Errorf("remote: restoring snapshot: %w", err)
			}
			first = false
		case wire.TypeRecord:
			first = false
			rt, err := rd.ReadRecord()
			if err != nil {
				return err
			}
			var rstart time.Time
			if mon != nil {
				mon.RecordsSeen.Add(1)
				mon.InFlightRecords.Add(1)
				rstart = time.Now()
			}
			if bi != nil {
				bi.StepSide(rt.Rec, rt.Right, rt.Store, emit(rt.Rec))
			} else {
				joiner.Step(rt.Rec, rt.Store, emit(rt.Rec))
			}
			if mon != nil {
				mon.RecordLatency.Observe(time.Since(rstart))
				mon.InFlightRecords.Add(-1)
			}
			if writeErr != nil {
				return fmt.Errorf("remote: writing result: %w", writeErr)
			}
		case wire.TypeEOF:
			return sendStats()
		case wire.TypeSnapshotReq:
			if bi != nil {
				return errors.New("remote: snapshots unsupported for bi sessions")
			}
			if err := sendStats(); err != nil {
				return err
			}
			var blob bytes.Buffer
			if err := checkpoint.Write(&blob, checkpoint.Cursor{}, joiner); err != nil {
				return fmt.Errorf("remote: snapshotting: %w", err)
			}
			return wr.WriteSnapshot(blob.Bytes())
		default:
			return fmt.Errorf("remote: unexpected frame type %d", typ)
		}
	}
}
