package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/bundle"
	"repro/internal/checkpoint"
	"repro/internal/local"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/wire"
)

// WorkerOpts configures the optional capabilities of a worker: monitoring
// counters, logging, and fault-tolerant checkpointing. The zero value is a
// plain worker.
type WorkerOpts struct {
	// Mon feeds the worker monitor's counters when non-nil.
	Mon *Monitor
	// Logf receives operational log lines; nil means log.Printf.
	Logf func(format string, args ...interface{})
	// CheckpointDir enables window checkpointing for fault-tolerant
	// sessions: periodic snapshots land here (one file per session/task)
	// and resuming coordinators are answered from them. Empty disables
	// checkpointing — FT sessions then always resume from scratch.
	CheckpointDir string
	// CheckpointInterval is the minimum spacing between periodic window
	// checkpoints. Zero checkpoints only when a session ends uncleanly
	// (connection break, cancellation) — the cheapest useful setting.
	CheckpointInterval time.Duration
	// Parallelism sizes each session joiner's verifier pool: P-1 helper
	// goroutines fan candidate-bundle verification out across cores
	// (bundle algorithm only), with results merged in deterministic order
	// so the result stream is byte-identical to a sequential worker's.
	// 0 or 1 keeps sessions single-threaded. Concurrent sessions each get
	// their own pool.
	Parallelism int
	// Kernel selects this worker's verification intersection kernel
	// (bundle algorithm only). Worker-local and deliberately not part of
	// the wire protocol: every kernel computes exact overlaps, so the
	// choice cannot change a session's results — a fleet may freely mix
	// kernel settings per machine.
	Kernel similarity.KernelConfig
	// VerifyMode selects this worker's verification organization
	// (collect / tree / auto; bundle algorithm only). Worker-local and
	// off the wire for the same reason as Kernel: every mode emits
	// byte-identical results, so a fleet may mix modes per machine.
	VerifyMode bundle.VerifyMode
	// Frags receives span fragments for traced records (wire v3 trace
	// annotation); nil disables worker-side span recording entirely —
	// untraced records never touch it either way.
	Frags *obs.Fragments
	// Journal receives worker lifecycle events (session start/end,
	// checkpoint, resume, duplicate summaries, kernel mix); nil disables.
	Journal *obs.Journal
}

func (o WorkerOpts) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// ServeWorker accepts coordinator connections on ln and runs one join
// session per connection until ln is closed or ctx is cancelled. Sessions
// run concurrently; each owns its joiner. The returned error is nil when
// the listener was closed; in-flight sessions are drained before return.
func ServeWorker(ctx context.Context, ln net.Listener, logf func(format string, args ...interface{})) error {
	return ServeWorkerOpts(ctx, ln, WorkerOpts{Logf: logf})
}

// ServeWorkerMonitored behaves like ServeWorker and additionally feeds the
// monitor's counters (mon may be nil).
func ServeWorkerMonitored(ctx context.Context, ln net.Listener, logf func(format string, args ...interface{}), mon *Monitor) error {
	return ServeWorkerOpts(ctx, ln, WorkerOpts{Logf: logf, Mon: mon})
}

// ServeWorkerOpts is ServeWorker with the full option set, including
// fault-tolerant checkpointing.
func ServeWorkerOpts(ctx context.Context, ln net.Listener, o WorkerOpts) error {
	mon := o.Mon
	stopCancel := context.AfterFunc(ctx, func() { ln.Close() })
	defer stopCancel()
	var wg sync.WaitGroup
	defer wg.Wait() // graceful drain: finish in-flight sessions first
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			stopConn := context.AfterFunc(ctx, func() { conn.Close() })
			defer stopConn()
			if mon != nil {
				mon.SessionsStarted.Add(1)
			}
			start := time.Now()
			err := HandleSessionOpts(ctx, conn, conn, o)
			if mon != nil {
				mon.SessionLatency.Observe(time.Since(start))
			}
			if err != nil {
				if mon != nil {
					mon.SessionsFailed.Add(1)
				}
				o.logf("remote worker: session ended with error: %v", err)
			} else if mon != nil {
				mon.SessionsFinished.Add(1)
			}
		}(conn)
	}
}

// HandleSession runs one worker-side join session over the given
// reader/writer pair (a TCP connection in production, an in-memory pipe in
// tests). It returns when the coordinator sends EOF (nil error), the
// stream breaks, or ctx is cancelled between frames. Callers streaming
// over a blocking transport should additionally arrange for cancellation
// to close the transport (ServeWorker does).
func HandleSession(ctx context.Context, r io.Reader, w io.Writer) error {
	return HandleSessionOpts(ctx, r, w, WorkerOpts{})
}

// HandleSessionMonitored is HandleSession with optional monitor counters.
func HandleSessionMonitored(ctx context.Context, r io.Reader, w io.Writer, mon *Monitor) error {
	return HandleSessionOpts(ctx, r, w, WorkerOpts{Mon: mon})
}

// checkpointPath names the checkpoint file for one FT session/task pair.
func checkpointPath(dir string, sessionID uint64, task int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x-t%03d.ckpt", sessionID, task))
}

// Worker-side flow-control parameters (wire v4).
const (
	// workerRecordWindow is the per-connection record credit granted in the
	// resume ack; half of it is the replenishment batch.
	workerRecordWindow = 4096
	// unackedPauseHigh/-Low are the unacked-result watermarks at which a
	// durable session asks the coordinator to pause and resume the record
	// stream.
	unackedPauseHigh = 8192
	unackedPauseLow  = 4096
)

// writeCheckpointFile atomically replaces path with a fresh checkpoint of
// j at cursor cur (write to a temp file, then rename). A non-nil meta
// prepends the v2 session envelope (plan hash, unacked results).
func writeCheckpointFile(path string, cur checkpoint.Cursor, j local.Joiner, meta *checkpoint.SessionMeta) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if meta != nil {
		if err := checkpoint.WriteSessionHeader(f, *meta); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := checkpoint.Write(f, cur, j); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// HandleSessionOpts is HandleSession with the full worker option set.
//
// Fault-tolerant sessions (Hello flag FT) extend the plain protocol:
//
//   - a ResumeAck frame answers the hello, carrying the next record ID the
//     worker expects — restored from its checkpoint when the hello asked
//     to resume (and one exists), zero otherwise;
//   - a hello with FT set but Resume clear discards any stale checkpoint
//     for the session: the coordinator is rebuilding this worker's state
//     from scratch and a later resume must not revive pre-rebuild state;
//   - Ping frames are answered with a flushed Pong;
//   - records with IDs at or below the resume cursor are dropped as
//     duplicates (the coordinator replays at least the lost tail, and the
//     fault-injection harness can duplicate frames outright);
//   - the window is checkpointed periodically (CheckpointInterval) and on
//     any unclean exit, and the checkpoint is removed on a clean EOF.
func HandleSessionOpts(ctx context.Context, r io.Reader, w io.Writer, o WorkerOpts) error {
	mon := o.Mon
	wr := wire.NewWriter(w)
	rd := wire.NewReader(r)

	typ, err := rd.Next()
	if err != nil {
		return fmt.Errorf("remote: reading hello: %w", err)
	}
	// The handshake frame is consumed before the dispatch loop starts.
	// wire-handled: worker TypeHello
	if typ != wire.TypeHello {
		return fmt.Errorf("remote: expected hello, got frame type %d", typ)
	}
	h, err := rd.ReadHello()
	if err != nil {
		return err
	}
	sess, strat, err := sessionFromHello(h)
	if err != nil {
		return err
	}
	if h.FT && sess.Bi {
		return errors.New("remote: fault-tolerant bi sessions unsupported")
	}
	comp := fmt.Sprintf("worker/%d", h.Task)
	o.Journal.Append("session_start", comp,
		fmt.Sprintf("session %016x task %d/%d ft=%v resume=%v", h.SessionID, h.Task, h.Workers, h.FT, h.Resume))
	opts := local.Options{
		Params:      sess.Params,
		Window:      sess.Window,
		Bundle:      sess.Bundle,
		Parallelism: o.Parallelism,
	}
	opts.Bundle.Kernel = o.Kernel
	opts.Bundle.VerifyMode = o.VerifyMode
	var (
		joiner local.Joiner
		bi     *local.BiJoiner
	)
	if sess.Bi {
		bi = local.NewBi(sess.Algorithm, opts)
	} else {
		joiner = local.New(sess.Algorithm, opts)
	}
	// Parallel joiners own helper goroutines; release them however the
	// session ends. The deferred read sees the latest joiner even after
	// the torn-checkpoint replacement below.
	defer func() {
		if bi != nil {
			bi.Close()
		} else if joiner != nil {
			local.CloseJoiner(joiner)
		}
	}()

	// FT handshake: restore or discard the checkpoint, then ack the cursor.
	ckptPath := ""
	if h.FT && o.CheckpointDir != "" {
		ckptPath = checkpointPath(o.CheckpointDir, h.SessionID, h.Task)
	}
	var (
		lastID   uint64
		lastTime int64
		haveLast bool
		// unacked is the durable-mode result buffer: everything emitted but
		// not yet acknowledged as durable by a coordinator Credit frame, in
		// emission order. Restored from the checkpoint's v2 envelope on
		// resume and re-sent after the ack.
		unacked    []wire.Result
		selfPaused bool
	)
	// v4 gates the flow-control frames: both peers speak wire v4 and the
	// session is fault-tolerant (a plain coordinator has no credit loop).
	v4 := h.Version >= 4 && h.FT
	if h.FT {
		next := uint64(0)
		if h.Resume && ckptPath != "" {
			if blob, rerr := os.ReadFile(ckptPath); rerr == nil {
				startFresh := func(why error) {
					// A torn or stale file must not poison the session:
					// drop the partially-loaded joiner and start fresh.
					o.logf("remote worker: checkpoint %s unreadable, starting fresh: %v", ckptPath, why)
					local.CloseJoiner(joiner)
					joiner = local.New(sess.Algorithm, opts)
				}
				meta, body, isV2, herr := checkpoint.ReadSessionHeader(bytes.NewReader(blob))
				if herr != nil {
					startFresh(herr)
				} else if isV2 && h.PlanHash != 0 && meta.PlanHash != 0 && meta.PlanHash != h.PlanHash {
					// The checkpoint belongs to a different launch plan —
					// a stale state directory reused under the same session
					// id. Resuming it would replay wrong-range records, so
					// refuse loudly instead of degrading silently.
					o.Journal.Append("resume_rejected", comp,
						fmt.Sprintf("session %016x checkpoint plan %016x does not match hello plan %016x",
							h.SessionID, meta.PlanHash, h.PlanHash))
					return fmt.Errorf("remote: session %016x task %d: checkpoint plan hash %016x, hello plan hash %016x: %w",
						h.SessionID, h.Task, meta.PlanHash, h.PlanHash, checkpoint.ErrPlanMismatch)
				} else if cur, n, cerr := checkpoint.Read(body, joiner); cerr != nil {
					startFresh(cerr)
				} else {
					next = cur.NextID
					lastTime = cur.NextTime - 1
					unacked = meta.Unacked
					if mon != nil {
						mon.SessionsResumed.Add(1)
					}
					o.Journal.Append("resume", comp,
						fmt.Sprintf("session %016x restored %d records from checkpoint, next id %d, %d unacked results",
							h.SessionID, n, next, len(unacked)))
					o.logf("remote worker: resumed session %016x task %d from checkpoint (%d records, next id %d)",
						h.SessionID, h.Task, n, next)
				}
			}
		} else if !h.Resume && ckptPath != "" {
			os.Remove(ckptPath)
		}
		if next > 0 {
			lastID, haveLast = next-1, true
		}
		if v4 {
			if err := wr.WriteResumeAckCredit(next, workerRecordWindow); err != nil {
				return fmt.Errorf("remote: writing resume ack: %w", err)
			}
		} else if err := wr.WriteResumeAck(next); err != nil {
			return fmt.Errorf("remote: writing resume ack: %w", err)
		}
	}
	if mon != nil && len(unacked) > 0 {
		mon.UnackedResults.Add(int64(len(unacked)))
	}

	task, workers := h.Task, h.Workers
	var writeErr error
	// emitted counts results written this session; the record loop diffs it
	// around a traced Step to decide whether a "deliver" span exists. Step
	// merges parallel-verifier results on the calling goroutine, so the
	// counter needs no synchronization.
	var emitted uint64
	emit := func(r *record.Record) func(local.Match) {
		return func(m local.Match) {
			if writeErr != nil {
				return
			}
			if !strat.Emits(r, m.Rec, task, workers) {
				return
			}
			a, b := r.ID, m.Rec.ID
			if a > b {
				a, b = b, a
			}
			if mon != nil {
				mon.ResultsEmitted.Add(1)
			}
			emitted++
			res := wire.Result{A: a, B: b, Sim: m.Sim}
			writeErr = wr.WriteResult(res)
			if h.Durable {
				unacked = append(unacked, res)
				if mon != nil {
					mon.UnackedResults.Add(1)
				}
				if v4 && !selfPaused && len(unacked) >= unackedPauseHigh {
					// Ask the coordinator to hold records until the credit
					// stream drains the buffer below the low watermark.
					selfPaused = true
					if mon != nil {
						mon.PausedSessions.Add(1)
					}
					o.Journal.Append("flow_pause", comp,
						fmt.Sprintf("session %016x paused the record stream: %d unacked results", h.SessionID, len(unacked)))
					if werr := wr.WritePause(); werr != nil && writeErr == nil {
						writeErr = werr
					}
				}
			}
		}
	}

	// Re-send the restored unacked tail: the previous coordinator may have
	// died before persisting these; the new one's dedup drops any it
	// already has and acknowledges all of them either way.
	for _, res := range unacked {
		if err := wr.WriteResult(res); err != nil {
			return fmt.Errorf("remote: re-sending unacked result: %w", err)
		}
	}

	sendStats := func() error {
		var c local.Cost
		if bi != nil {
			cl, cr := bi.CostLeft(), bi.CostRight()
			c = local.Cost{
				Probes: cl.Probes + cr.Probes, Stored: cl.Stored + cr.Stored,
				Scanned: cl.Scanned + cr.Scanned, Candidates: cl.Candidates + cr.Candidates,
				Verified: cl.Verified + cr.Verified, Results: cl.Results + cr.Results,
				VerifySteps: cl.VerifySteps + cr.VerifySteps, Postings: cl.Postings + cr.Postings,
			}
		} else {
			c = joiner.Cost()
		}
		return wr.WriteStats(wire.Stats{
			Probes: c.Probes, Stored: c.Stored, Scanned: c.Scanned,
			Candidates: c.Candidates, Verified: c.Verified,
			Results: c.Results, VerifySteps: c.VerifySteps,
			Postings: c.Postings,
		})
	}

	saveCheckpoint := func() {
		if ckptPath == "" || !haveLast {
			return
		}
		// Flush-consistency: a checkpoint's cursor may only cover records
		// whose results are on the wire, or a resume would skip replaying
		// them and their results would be lost with the dead connection.
		// When the flush fails the connection is broken and the previous
		// (flush-consistent) checkpoint stays in place.
		if err := wr.Flush(); err != nil {
			return
		}
		cur := checkpoint.Cursor{NextID: lastID + 1, NextTime: lastTime + 1}
		var meta *checkpoint.SessionMeta
		if h.Durable || h.PlanHash != 0 {
			meta = &checkpoint.SessionMeta{PlanHash: h.PlanHash, Unacked: unacked}
		}
		if err := writeCheckpointFile(ckptPath, cur, joiner, meta); err != nil {
			o.logf("remote worker: checkpoint write failed: %v", err)
			return
		}
		if mon != nil {
			mon.CheckpointsWritten.Add(1)
			mon.MarkCheckpoint()
		}
		o.Journal.Append("checkpoint", comp,
			fmt.Sprintf("session %016x checkpointed, cursor next_id=%d", h.SessionID, cur.NextID))
	}

	lastCkpt := time.Now()
	first := true
	var dups uint64
	var consumed uint64 // records since the last credit replenishment (v4)
	loop := func() error {
		for {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("remote: session cancelled: %w", err)
			}
			typ, err := rd.Next()
			if err != nil {
				return fmt.Errorf("remote: reading frame: %w", err)
			}
			// wire-dispatch: worker
			switch typ {
			case wire.TypePing:
				if err := wr.WritePong(); err != nil {
					return fmt.Errorf("remote: writing pong: %w", err)
				}
			case wire.TypeSnapshot:
				if !first {
					return errors.New("remote: snapshot frame after records")
				}
				if bi != nil {
					return errors.New("remote: snapshots unsupported for bi sessions")
				}
				if h.FT {
					return errors.New("remote: snapshot seeding unsupported for ft sessions")
				}
				blob := rd.ReadSnapshot()
				if _, _, err := checkpoint.Read(bytes.NewReader(blob), joiner); err != nil {
					return fmt.Errorf("remote: restoring snapshot: %w", err)
				}
				first = false
			case wire.TypeRecord:
				first = false
				rt, err := rd.ReadRecord()
				if err != nil {
					return err
				}
				if v4 {
					// Replenish the coordinator's record credit in half-window
					// batches. Duplicates count too: the coordinator spent
					// credit on every frame it sent.
					consumed++
					if consumed >= workerRecordWindow/2 {
						if cerr := wr.WriteCredit(consumed); cerr != nil {
							return fmt.Errorf("remote: writing credit: %w", cerr)
						}
						consumed = 0
					}
				}
				if h.FT && haveLast && uint64(rt.Rec.ID) <= lastID {
					// Replay overlap or an injected duplicate frame: the
					// window already holds this record.
					if mon != nil {
						mon.DuplicateRecords.Add(1)
					}
					dups++
					continue
				}
				// The wire trace annotation decodes to a zero TraceID on
				// untraced records, so this branch costs one comparison on
				// the untraced hot path.
				traced := rt.TraceID != 0 && o.Frags != nil
				var rstart time.Time
				if mon != nil || traced {
					rstart = time.Now()
				}
				if mon != nil {
					mon.RecordsSeen.Add(1)
					mon.InFlightRecords.Add(1)
				}
				eBefore := emitted
				if bi != nil {
					bi.StepSide(rt.Rec, rt.Right, rt.Store, emit(rt.Rec))
				} else {
					joiner.Step(rt.Rec, rt.Store, emit(rt.Rec))
				}
				if mon != nil || traced {
					stepEnd := time.Now()
					if mon != nil {
						mon.RecordLatency.Observe(stepEnd.Sub(rstart))
						mon.InFlightRecords.Add(-1)
					}
					if traced {
						// Mirror the in-process chain: queue (frame decoded,
						// attaches at the wire parent) -> process (the join
						// step) -> deliver (results written), so a stitched
						// trace reads the same across deployment modes.
						qi := o.Frags.Append(rt.TraceID, rt.ParentSpan, "queue", comp, h.Task, -1, rstart, rstart)
						pi := o.Frags.Append(rt.TraceID, rt.ParentSpan, "process", comp, h.Task, qi, rstart, stepEnd)
						if emitted > eBefore {
							o.Frags.Append(rt.TraceID, rt.ParentSpan, "deliver", comp, h.Task, pi, stepEnd, time.Now())
						}
						if mon != nil {
							mon.ObserveTraced(stepEnd.Sub(rstart), rt.TraceID)
						}
					}
				}
				if writeErr != nil {
					return fmt.Errorf("remote: writing result: %w", writeErr)
				}
				lastID, lastTime, haveLast = uint64(rt.Rec.ID), rt.Rec.Time, true
				if ckptPath != "" && o.CheckpointInterval > 0 && time.Since(lastCkpt) >= o.CheckpointInterval {
					saveCheckpoint()
					lastCkpt = time.Now()
				}
			case wire.TypeCredit:
				// Coordinator acknowledgement: the first n results of the
				// unacked buffer are durable in its results log. Clamp n —
				// counts are advisory, the buffer is the truth.
				n, cerr := rd.ReadCredit()
				if cerr != nil {
					return cerr
				}
				d := len(unacked)
				if n < uint64(d) {
					d = int(n)
				}
				if d > 0 {
					unacked = unacked[d:]
					if len(unacked) == 0 {
						unacked = nil // release the drained backing array
					}
					if mon != nil {
						mon.UnackedResults.Add(-int64(d))
					}
				}
				if selfPaused && len(unacked) <= unackedPauseLow {
					selfPaused = false
					if mon != nil {
						mon.PausedSessions.Add(-1)
					}
					o.Journal.Append("flow_resume", comp,
						fmt.Sprintf("session %016x resumed the record stream: %d unacked results", h.SessionID, len(unacked)))
					if werr := wr.WriteResume(); werr != nil {
						return fmt.Errorf("remote: writing resume: %w", werr)
					}
				}
			case wire.TypePause:
				// Coordinator-side admission control parked the record
				// stream; keep serving pings and credits.
				o.Journal.Append("paused", comp,
					fmt.Sprintf("session %016x paused by coordinator", h.SessionID))
			case wire.TypeResume:
				o.Journal.Append("resumed", comp,
					fmt.Sprintf("session %016x resumed by coordinator", h.SessionID))
			case wire.TypeEOF:
				return sendStats()
			case wire.TypeSnapshotReq:
				if bi != nil {
					return errors.New("remote: snapshots unsupported for bi sessions")
				}
				if err := sendStats(); err != nil {
					return err
				}
				var blob bytes.Buffer
				if err := checkpoint.Write(&blob, checkpoint.Cursor{}, joiner); err != nil {
					return fmt.Errorf("remote: snapshotting: %w", err)
				}
				return wr.WriteSnapshot(blob.Bytes())
			default:
				return fmt.Errorf("remote: unexpected frame type %d", typ)
			}
		}
	}
	err = loop()
	if mon != nil {
		// The session's live buffer is gone either way; what survives a
		// crash lives in the checkpoint, not the gauge.
		mon.UnackedResults.Add(-int64(len(unacked)))
		if selfPaused {
			mon.PausedSessions.Add(-1)
		}
	}
	if ckptPath != "" {
		if err != nil {
			// Unclean end: persist the window so a resuming coordinator
			// replays only the tail.
			saveCheckpoint()
		} else {
			os.Remove(ckptPath)
		}
	}
	if o.Journal != nil {
		if dups > 0 {
			o.Journal.Append("duplicates", comp,
				fmt.Sprintf("session %016x dropped %d duplicate records via the replay filter", h.SessionID, dups))
		}
		if bs, ok := joiner.(interface{ BundleStats() bundle.Stats }); ok && joiner != nil {
			st := bs.BundleStats()
			if st.KernelLinear+st.KernelGallop+st.KernelBitset > 0 {
				o.Journal.Append("kernel_mix", comp,
					fmt.Sprintf("session %016x verify kernels: linear=%d gallop=%d bitset=%d",
						h.SessionID, st.KernelLinear, st.KernelGallop, st.KernelBitset))
			}
		}
		status := "clean"
		if err != nil {
			status = "error: " + err.Error()
		}
		o.Journal.Append("session_end", comp,
			fmt.Sprintf("session %016x ended (%s), %d results", h.SessionID, status, emitted))
	}
	return err
}
