// Durable session state for fault-tolerant runs: a persistent ingest log
// (every dispatched record), a persistent results log (every distinct
// result, appended before it is acknowledged to the worker), and the
// session manifest tying them to the launch configuration. Together they
// make the *coordinator* restartable: a fresh process loads the manifest,
// re-reads the ingest log, seeds its result dedup from the results log,
// and re-drives the session — workers resume from their own checkpoints
// and re-send their unacknowledged result tails, so the final result set
// is exactly the uninterrupted run's.
//
// Result-acknowledgement protocol (wire v4 Credit frames, coordinator →
// worker): the reader goroutine counts, per connection, each *distinct*
// result received while durable mode is on (new results are appended to
// the results log first; re-sent ones are already there). The write loop
// syncs the results log and grants the outstanding count as credit. A
// worker drops acknowledged results from its unacked buffer in emission
// order — sound because a connection delivers frames in order with only
// tail loss, so by the time any credit arrives, every result at the front
// of the worker's buffer has been received and persisted.
package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/record"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Durable configures persistent session state for RunFT. StateDir is laid
// out as:
//
//	<StateDir>/manifest.json   session manifest (checkpoint.Manifest)
//	<StateDir>/ingest/         WAL of dispatched records, one frame each
//	<StateDir>/results/        WAL of distinct results, one frame each
type Durable struct {
	// StateDir roots the session's persistent state. Created if missing.
	StateDir string
	// Sync is the WAL fsync policy for both logs (wal.SyncInterval when
	// zero). Result acknowledgements sync explicitly before each credit
	// grant regardless, so the durability of *acknowledged* results never
	// depends on this knob.
	Sync wal.SyncPolicy
	// SegmentBytes is the WAL segment rotation threshold (wal default when
	// zero).
	SegmentBytes int64
	// Resume marks this run as a restart: the ingest log already holds the
	// record stream (the caller re-read it from there), the results log
	// seeds the coordinator's dedup, and workers are asked to resume.
	Resume bool
	// Workers records the worker addresses in the manifest so a resuming
	// process knows the fleet. Informational — dialing stays the caller's
	// Dialer.
	Workers []string
}

const (
	ingestLogDir  = "ingest"
	resultsLogDir = "results"
)

// durableState is the runtime handle on a durable session's two logs plus
// a shared frame encoder.
type durableState struct {
	cfg     Durable
	ingest  *wal.Log
	results *wal.Log
	// skip is the ingest position already persisted by a previous
	// incarnation: dispatch skips appending record indices below it.
	skip uint64

	mu  sync.Mutex
	buf bytes.Buffer
	enc *wire.Writer
}

func openDurable(cfg Durable) (*durableState, error) {
	idir := filepath.Join(cfg.StateDir, ingestLogDir)
	rdir := filepath.Join(cfg.StateDir, resultsLogDir)
	for _, d := range []string{idir, rdir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("remote: creating state dir: %w", err)
		}
	}
	o := wal.Options{Sync: cfg.Sync, SegmentBytes: cfg.SegmentBytes}
	ing, err := wal.Open(idir, o)
	if err != nil {
		return nil, fmt.Errorf("remote: opening ingest log: %w", err)
	}
	res, err := wal.Open(rdir, o)
	if err != nil {
		ing.Close()
		return nil, fmt.Errorf("remote: opening results log: %w", err)
	}
	ds := &durableState{cfg: cfg, ingest: ing, results: res, skip: ing.Next()}
	ds.enc = wire.NewWriter(&ds.buf)
	return ds, nil
}

func (ds *durableState) close() {
	if ds == nil {
		return
	}
	ds.ingest.Close()
	ds.results.Close()
}

// appendRecord persists record number idx of the ingest stream. Indices
// below the resume skip point are already on disk (the records themselves
// came from the log) and are not re-appended.
func (ds *durableState) appendRecord(idx uint64, r *record.Record) error {
	if idx < ds.skip {
		return nil
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.buf.Reset()
	if err := ds.enc.WriteRecord(false, r); err != nil {
		return err
	}
	if err := ds.enc.Flush(); err != nil {
		return err
	}
	_, err := ds.ingest.Append(ds.buf.Bytes())
	return err
}

// appendResult persists one distinct result frame.
func (ds *durableState) appendResult(res wire.Result) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.buf.Reset()
	if err := ds.enc.WriteResult(res); err != nil {
		return err
	}
	if err := ds.enc.Flush(); err != nil {
		return err
	}
	_, err := ds.results.Append(ds.buf.Bytes())
	return err
}

// seedResults replays the results log into the collector — the restart
// path's dedup seed. Returns how many distinct results were recovered.
func (ds *durableState) seedResults(coll *ftCollector) (int, error) {
	it, err := ds.results.Iter(ds.results.Begin())
	if err != nil {
		return 0, err
	}
	defer it.Close()
	n := 0
	for {
		_, payload, err := it.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("remote: replaying results log: %w", err)
		}
		res, err := decodeResultFrame(payload)
		if err != nil {
			return n, err
		}
		if coll.add(res) {
			n++
		}
	}
}

func decodeRecordFrame(payload []byte) (*record.Record, error) {
	rd := wire.NewReader(bytes.NewReader(payload))
	typ, err := rd.Next()
	if err != nil {
		return nil, fmt.Errorf("remote: ingest log frame: %w", err)
	}
	if typ != wire.TypeRecord {
		return nil, fmt.Errorf("remote: ingest log holds frame type %d, want record", typ)
	}
	rt, err := rd.ReadRecord()
	if err != nil {
		return nil, fmt.Errorf("remote: ingest log frame: %w", err)
	}
	return rt.Rec, nil
}

func decodeResultFrame(payload []byte) (wire.Result, error) {
	rd := wire.NewReader(bytes.NewReader(payload))
	typ, err := rd.Next()
	if err != nil {
		return wire.Result{}, fmt.Errorf("remote: results log frame: %w", err)
	}
	if typ != wire.TypeResult {
		return wire.Result{}, fmt.Errorf("remote: results log holds frame type %d, want result", typ)
	}
	res, err := rd.ReadResult()
	if err != nil {
		return wire.Result{}, fmt.Errorf("remote: results log frame: %w", err)
	}
	return res, nil
}

// ReadIngestLog replays the persisted record stream of a durable session
// state directory — the input a resumed run feeds back into RunFT.
func ReadIngestLog(stateDir string) ([]*record.Record, error) {
	lg, err := wal.Open(filepath.Join(stateDir, ingestLogDir), wal.Options{Sync: wal.SyncNever})
	if err != nil {
		return nil, fmt.Errorf("remote: opening ingest log: %w", err)
	}
	defer lg.Close()
	it, err := lg.Iter(lg.Begin())
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []*record.Record
	for {
		_, payload, err := it.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("remote: replaying ingest log: %w", err)
		}
		r, err := decodeRecordFrame(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
}

// ReadResultsLog replays the persisted distinct results of a durable
// session state directory, in append order.
func ReadResultsLog(stateDir string) ([]wire.Result, error) {
	lg, err := wal.Open(filepath.Join(stateDir, resultsLogDir), wal.Options{Sync: wal.SyncNever})
	if err != nil {
		return nil, fmt.Errorf("remote: opening results log: %w", err)
	}
	defer lg.Close()
	it, err := lg.Iter(lg.Begin())
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []wire.Result
	for {
		_, payload, err := it.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("remote: replaying results log: %w", err)
		}
		res, err := decodeResultFrame(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
}

// SessionControl pauses and resumes a fault-tolerant run's record streams
// from outside: Pause makes every worker's write loop send a wire Pause
// frame and park (heartbeats and result acknowledgements keep flowing, so
// a paused fleet still drains its unacked buffers), Resume releases them.
// Attach one via FT.Control. All methods are safe for concurrent use and
// nil-safe.
type SessionControl struct {
	paused atomic.Bool
	r      atomic.Pointer[ftRunner]
}

// Pause parks every record stream. Idempotent.
func (c *SessionControl) Pause() {
	if c == nil || c.paused.Swap(true) {
		return
	}
	if f := c.r.Load(); f != nil {
		f.journal.Append("pause_all", "coordinator", "record streams paused by session control")
		f.kickAll()
	}
}

// Resume releases a Pause. Idempotent.
func (c *SessionControl) Resume() {
	if c == nil || !c.paused.Swap(false) {
		return
	}
	if f := c.r.Load(); f != nil {
		f.journal.Append("resume_all", "coordinator", "record streams resumed by session control")
		f.kickAll()
	}
}

// Paused reports the current control state.
func (c *SessionControl) Paused() bool { return c != nil && c.paused.Load() }
