package remote

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/wire"
)

// RunSummary reports a completed remote join.
type RunSummary struct {
	Records uint64
	Results uint64
	// Pairs holds results when collection was requested.
	Pairs []record.Pair
	// Elapsed covers dispatch through the last worker's stats frame.
	Elapsed time.Duration
	// TuplesSent and BytesSent count coordinator→worker record traffic —
	// real serialized bytes this time, not an estimate.
	TuplesSent, BytesSent uint64
	// WorkerStats are the per-worker final counters, indexed by task.
	WorkerStats []wire.Stats
	// Snapshots holds each worker's window checkpoint when requested via
	// Opts.Snapshot, indexed by task.
	Snapshots [][]byte
	// Degraded reports that a fault-tolerant run declared at least one
	// worker dead and rebalanced its length ranges onto survivors instead
	// of failing.
	Degraded bool
	// DeadWorkers lists the tasks declared dead, in death order (FT runs).
	DeadWorkers []int
	// RebalancedBounds is the post-degradation length partition, when the
	// run degraded.
	RebalancedBounds []int
	// Retries counts failed connection attempts, Reconnects successful
	// recoveries, and ReplayedRecords the log entries re-sent during those
	// recoveries (FT runs).
	Retries, Reconnects, ReplayedRecords uint64
}

// Opts tunes a remote run beyond the session parameters.
type Opts struct {
	// CollectPairs returns every result pair in the summary.
	CollectPairs bool
	// Seed restores worker windows from per-task snapshot blobs before the
	// record stream (nil entries start empty). Produce blobs with a prior
	// run's Opts.Snapshot.
	Seed [][]byte
	// Snapshot asks every worker to return its window state after the
	// stream; the blobs land in RunSummary.Snapshots.
	Snapshot bool
	// Tracer samples distributed traces at the dispatch loop: a sampled
	// record gets emit and wire spans in a coordinator-rooted trace and
	// carries (trace id, wire span index) to the worker as the wire v3
	// trace annotation. Nil (or a disabled tracer) keeps the dispatch path
	// and the wire encoding byte-identical to an untraced run.
	Tracer *obs.Tracer
	// Journal receives coordinator lifecycle events; nil disables.
	Journal *obs.Journal
}

// countingWriter tallies bytes crossing a connection. When stamp is set,
// each completed write stores its offset from base there — the outbound
// half of the FT liveness signal.
type countingWriter struct {
	w     io.Writer
	n     atomic.Uint64
	stamp *atomic.Int64
	base  time.Time
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(uint64(n))
	if c.stamp != nil {
		c.stamp.Store(int64(time.Since(c.base)))
	}
	return n, err
}

// Dial connects to every worker address. Cancelling ctx aborts in-flight
// dials; timeout bounds each individual dial on top of that.
func Dial(ctx context.Context, addrs []string, timeout time.Duration) ([]net.Conn, error) {
	d := net.Dialer{Timeout: timeout}
	conns := make([]net.Conn, 0, len(addrs))
	for _, a := range addrs {
		c, err := d.DialContext(ctx, "tcp", a)
		if err != nil {
			for _, done := range conns {
				done.Close()
			}
			return nil, fmt.Errorf("remote: dialing %s: %w", a, err)
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// Run executes one join session over the given worker connections: it
// handshakes every worker, routes each record per the session strategy
// (sending the store flag to the record's home copy), signals EOF, and
// collects results and final stats. Connections are left open; callers own
// their lifecycle. Cancelling ctx aborts the dispatch loop and closes any
// closable connections to unblock the result readers.
func Run(ctx context.Context, conns []io.ReadWriter, sess Session, recs []*record.Record, collectPairs bool) (*RunSummary, error) {
	return RunWithOpts(ctx, conns, sess, recs, Opts{CollectPairs: collectPairs})
}

// BiRecord tags a record with its stream side for two-stream sessions.
type BiRecord struct {
	Rec   *record.Record
	Right bool
}

// RunBi executes a two-stream join session: records match only across
// sides. The session must have Bi set; snapshot options are rejected.
func RunBi(ctx context.Context, conns []io.ReadWriter, sess Session, recs []BiRecord, opts Opts) (*RunSummary, error) {
	if !sess.Bi {
		return nil, fmt.Errorf("remote: RunBi requires Session.Bi")
	}
	if opts.Snapshot || len(opts.Seed) > 0 {
		return nil, fmt.Errorf("remote: snapshots unsupported for bi sessions")
	}
	return runSession(ctx, conns, sess, recs, opts)
}

// RunWithOpts is Run with snapshot seeding and collection.
func RunWithOpts(ctx context.Context, conns []io.ReadWriter, sess Session, recs []*record.Record, opts Opts) (*RunSummary, error) {
	if sess.Bi {
		return nil, fmt.Errorf("remote: use RunBi for bi sessions")
	}
	birecs := make([]BiRecord, len(recs))
	for i, r := range recs {
		birecs[i] = BiRecord{Rec: r}
	}
	return runSession(ctx, conns, sess, birecs, opts)
}

// collector accumulates the result traffic arriving concurrently from all
// worker reader goroutines.
type collector struct {
	collectPairs bool
	mu           sync.Mutex
	results      uint64        // guarded by mu
	pairs        []record.Pair // guarded by mu
}

// add records one result frame.
func (c *collector) add(res wire.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results++
	if c.collectPairs {
		c.pairs = append(c.pairs, record.Pair{First: res.A, Second: res.B, Sim: res.Sim})
	}
}

// drain moves the accumulated totals into the summary. Call it only after
// every reader goroutine has finished.
func (c *collector) drain(sum *RunSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sum.Results = c.results
	sum.Pairs = c.pairs
}

func runSession(ctx context.Context, conns []io.ReadWriter, sess Session, recs []BiRecord, opts Opts) (*RunSummary, error) {
	k := len(conns)
	if k == 0 {
		return nil, fmt.Errorf("remote: no workers")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	strat, err := sess.strategyFor(k)
	if err != nil {
		return nil, err
	}

	writers := make([]*wire.Writer, k)
	counters := make([]*countingWriter, k)
	for i, c := range conns {
		cw := &countingWriter{w: c}
		counters[i] = cw
		writers[i] = wire.NewWriter(cw)
	}

	opts.Journal.Append("session_start", "coordinator",
		fmt.Sprintf("dispatching %d records to %d workers", len(recs), k))
	start := time.Now()
	for i, w := range writers {
		h, err := sess.hello(i, k)
		if err != nil {
			return nil, err
		}
		if err := w.WriteHello(h); err != nil {
			return nil, fmt.Errorf("remote: hello to worker %d: %w", i, err)
		}
	}

	// Seed worker windows before the record stream.
	for i, w := range writers {
		if i < len(opts.Seed) && len(opts.Seed[i]) > 0 {
			if err := w.WriteSnapshot(opts.Seed[i]); err != nil {
				return nil, fmt.Errorf("remote: seeding worker %d: %w", i, err)
			}
		}
	}

	// Result readers: one per worker, running until its Stats frame (plus
	// a trailing snapshot frame when requested).
	sum := &RunSummary{Records: uint64(len(recs)), WorkerStats: make([]wire.Stats, k)}
	if opts.Snapshot {
		sum.Snapshots = make([][]byte, k)
	}
	coll := &collector{collectPairs: opts.CollectPairs}
	var (
		wg      sync.WaitGroup
		readErr = make(chan error, k)
	)

	// Cancellation closes every closable connection, which unblocks both
	// the reader goroutines and the dispatch loop below.
	stopCancel := context.AfterFunc(ctx, func() {
		for _, c := range conns {
			if cl, ok := c.(io.Closer); ok {
				cl.Close()
			}
		}
	})
	defer stopCancel()
	for i, c := range conns {
		wg.Add(1)
		go func(task int, r io.Reader) {
			defer wg.Done()
			rd := wire.NewReader(r)
			for {
				typ, err := rd.Next()
				if err != nil {
					readErr <- fmt.Errorf("remote: worker %d read: %w", task, err)
					return
				}
				// wire-dispatch: coordinator
				switch typ {
				case wire.TypeResult:
					res, err := rd.ReadResult()
					if err != nil {
						readErr <- err
						return
					}
					coll.add(res)
				case wire.TypeStats:
					st, err := rd.ReadStats()
					if err != nil {
						readErr <- err
						return
					}
					sum.WorkerStats[task] = st
					if !opts.Snapshot {
						return
					}
					typ, err := rd.Next()
					if err != nil {
						readErr <- fmt.Errorf("remote: worker %d snapshot: %w", task, err)
						return
					}
					// The snapshot follows Stats outside the switch.
					// wire-handled: coordinator TypeSnapshot
					if typ != wire.TypeSnapshot {
						readErr <- fmt.Errorf("remote: worker %d sent frame %d, want snapshot", task, typ)
						return
					}
					sum.Snapshots[task] = rd.ReadSnapshot()
					return
				default:
					readErr <- fmt.Errorf("remote: worker %d sent frame type %d", task, typ)
					return
				}
			}
		}(i, c)
	}

	// Dispatch loop.
	var tuples uint64
	buf := make([]int, 0, k)
	tracer := opts.Tracer
	dispatchErr := func() error {
		for _, br := range recs {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("remote: %w", err)
			}
			r := br.Rec
			// Sample() is nil for untraced records (and a nil tracer), and
			// every traced branch below keys off tr, so the untraced path
			// does no tracing work beyond one atomic add inside Sample.
			tr := tracer.Sample()
			var emitIdx int
			if tr != nil {
				now := time.Now()
				emitIdx = tr.Append("emit", "coordinator", 0, -1, now, now)
			}
			buf = strat.Route(r, k, buf[:0])
			for _, dst := range buf {
				store := strat.Stores(r, dst, k)
				if tr == nil {
					if err := writers[dst].WriteRecordSide(store, br.Right, r); err != nil {
						return fmt.Errorf("remote: record to worker %d: %w", dst, err)
					}
				} else {
					wstart := time.Now()
					wireIdx := tr.Append("wire", "coordinator", dst, emitIdx, wstart, wstart)
					err := writers[dst].WriteRecordTraced(store, br.Right, r, tr.ID(), wireIdx)
					if err != nil {
						return fmt.Errorf("remote: record to worker %d: %w", dst, err)
					}
				}
				tuples++
			}
		}
		for i, w := range writers {
			var err error
			if opts.Snapshot {
				err = w.WriteSnapshotReq()
			} else {
				err = w.WriteEOF()
			}
			if err != nil {
				return fmt.Errorf("remote: eof to worker %d: %w", i, err)
			}
		}
		return nil
	}()

	if dispatchErr != nil {
		// Unblock readers on workers that will never see EOF.
		for _, c := range conns {
			if cl, ok := c.(io.Closer); ok {
				cl.Close()
			}
		}
	}
	wg.Wait()
	close(readErr)
	if err := ctx.Err(); err != nil {
		// Reader and dispatch failures after cancellation are fallout from
		// the closed connections; report the cancellation itself.
		return nil, fmt.Errorf("remote: %w", err)
	}
	if dispatchErr != nil {
		return nil, dispatchErr
	}
	for err := range readErr {
		if err != nil {
			return nil, err
		}
	}
	coll.drain(sum)
	sum.Elapsed = time.Since(start)
	sum.TuplesSent = tuples
	for _, cw := range counters {
		sum.BytesSent += cw.n.Load()
	}
	opts.Journal.Append("session_end", "coordinator",
		fmt.Sprintf("%d records dispatched, %d results in %v", sum.Records, sum.Results, sum.Elapsed.Round(time.Millisecond)))
	return sum, nil
}
