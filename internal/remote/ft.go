// Fault-tolerant coordinator: RunFT drives a join like Run, but survives
// worker crashes, hangs and flaky transports. Each worker gets a manager
// goroutine owning its connection lifecycle: heartbeat-based failure
// detection, bounded reconnection with exponential backoff, and resume
// from the worker's checkpoint cursor. Workers that exhaust the retry
// budget are declared dead; in degraded mode (length strategy only) their
// length ranges rebalance onto a surviving heir, which replays the merged
// log from scratch.
//
// Exactness: a resumed worker restores its window from the checkpoint and
// replays the ID-ordered log tail after the cursor, so its window state is
// identical to an uninterrupted run. Replayed records the worker already
// processed are dropped by its duplicate filter; result frames replayed
// across reconnects are dropped by the coordinator's result dedup. The
// final result multiset therefore matches a fault-free run.
package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/wire"
)

// Dialer opens a transport to worker task. RunFT calls it once per
// connection attempt; wrap it to inject faults or route through
// non-TCP transports.
type Dialer func(ctx context.Context, task int) (io.ReadWriteCloser, error)

// FT configures fault tolerance for RunFT.
type FT struct {
	// Retry bounds reconnection attempts per worker. Zero value means no
	// retries: the first transport failure declares the worker dead.
	Retry RetryPolicy
	// HeartbeatInterval paces coordinator pings on idle connections and
	// watchdog checks. Zero defaults to one second.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence span after which a connection is
	// considered hung and severed (progress on either direction counts as
	// life). Zero defaults to five heartbeat intervals.
	HeartbeatTimeout time.Duration
	// SessionID keys worker-side checkpoints. Reconnects under the same ID
	// resume from the checkpoint; callers must pick an ID not used by a
	// previous unrelated run on the same workers.
	SessionID uint64
	// Degraded allows the run to continue after a worker is declared dead
	// by rebalancing its length ranges onto a surviving heir (length
	// strategy only). Off, a dead worker fails the run.
	Degraded bool
	// Registry receives coordinator fault metrics when non-nil.
	Registry *obs.Registry
	// Durable enables persistent session state (ingest/results logs plus a
	// manifest under Durable.StateDir) making the run resumable after a
	// coordinator crash. Requires a non-zero SessionID.
	Durable *Durable
	// Control, when non-nil, lets the caller pause and resume the record
	// streams mid-run (admission control against a backlogged fleet).
	Control *SessionControl
}

// errEpochChanged aborts an attempt whose worker log was rebuilt (the
// worker inherited a dead peer's records) while the attempt was live. The
// manager reconnects immediately with a fresh session; no retry budget is
// charged.
var errEpochChanged = errors.New("remote: worker log rebuilt during attempt")

// ftEntry is one dispatched record in a worker's replay log. Traced
// entries keep their wire trace annotation so a replay re-sends it — the
// worker-side fragment then shows the retry as duplicate spans, which the
// stitcher surfaces as DuplicateSpans instead of hiding.
type ftEntry struct {
	rec        *record.Record
	store      bool
	traceID    uint64
	parentSpan int
}

// resumeAck is the decoded handshake answer: the worker's resume cursor
// and whether the peer speaks wire v4 (it appended an initial record
// credit to the ack).
type resumeAck struct {
	next uint64
	v4   bool
}

// ftMetrics holds the coordinator-side fault instruments. All fields are
// nil when no registry was supplied.
type ftMetrics struct {
	retries    *obs.Counter
	reconnects *obs.Counter
	replayed   *obs.Counter
	dupResults *obs.Counter
	dead       *obs.Gauge
	recovery   *obs.Histogram
}

func newFTMetrics(reg *obs.Registry) ftMetrics {
	if reg == nil {
		return ftMetrics{}
	}
	return ftMetrics{
		retries: reg.Counter("coord_retries_total",
			"Failed worker connection attempts, including the first."),
		reconnects: reg.Counter("coord_reconnects_total",
			"Successful worker reconnections after a transport failure."),
		replayed: reg.Counter("coord_replayed_records_total",
			"Log entries re-sent to workers during recovery."),
		dupResults: reg.Counter("coord_duplicate_results_total",
			"Result frames dropped by the coordinator's replay dedup."),
		dead: reg.Gauge("coord_dead_workers",
			"Workers declared dead after exhausting the retry budget."),
		recovery: reg.Histogram("coord_recovery_seconds",
			"Time from first failure to successful reconnection."),
	}
}

// ftCollector accumulates results like collector, but drops duplicates: a
// worker replaying its log tail after resume legally re-emits result pairs
// it produced before the crash.
type ftCollector struct {
	collectPairs bool
	mu           sync.Mutex
	results      uint64                // guarded by mu
	pairs        []record.Pair         // guarded by mu
	seen         map[[2]record.ID]bool // guarded by mu
}

// add records one result frame, reporting whether it was new.
func (c *ftCollector) add(res wire.Result) bool {
	key := [2]record.ID{res.A, res.B}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen[key] {
		return false
	}
	c.seen[key] = true
	c.results++
	if c.collectPairs {
		c.pairs = append(c.pairs, record.Pair{First: res.A, Second: res.B, Sim: res.Sim})
	}
	return true
}

func (c *ftCollector) drain(sum *RunSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sum.Results = c.results
	sum.Pairs = c.pairs
}

// ftState is the shared run state managers and the dispatch loop mutate.
type ftState struct {
	mu       sync.Mutex
	logs     [][]ftEntry       // guarded by mu
	sentPos  []int             // guarded by mu
	alive    []bool            // guarded by mu
	finished []bool            // guarded by mu
	rebuilt  []bool            // guarded by mu
	epoch    []uint64          // guarded by mu
	conns    []io.Closer       // guarded by mu
	stats    []wire.Stats      // guarded by mu
	bounds   []int             // guarded by mu
	strat    dispatch.Strategy // guarded by mu
	deadList []int             // guarded by mu
	closed   bool              // guarded by mu
	degraded bool              // guarded by mu
	fatal    error             // guarded by mu
}

// ftRunner owns one RunFT invocation.
type ftRunner struct {
	k          int
	sess       Session
	ft         FT
	dial       Dialer
	met        ftMetrics
	tracer     *obs.Tracer
	journal    *obs.Journal
	coll       *ftCollector
	hbInterval time.Duration
	hbTimeout  time.Duration
	canDegrade bool
	origBounds []int
	start      time.Time
	cancel     context.CancelFunc
	durable    *durableState
	planHash   uint64

	st      ftState
	notify  []chan struct{} // per-worker wakeups, capacity 1
	runCh   chan struct{}   // completion-watcher wakeup, capacity 1
	finalCh chan struct{}   // closed when the run is complete

	wg         sync.WaitGroup
	tuples     atomic.Uint64
	bytes      atomic.Uint64
	retries    atomic.Uint64
	reconnects atomic.Uint64
	replayed   atomic.Uint64
}

// kick wakes worker task's manager without blocking.
func (f *ftRunner) kick(task int) {
	select {
	case f.notify[task] <- struct{}{}:
	default:
	}
}

func (f *ftRunner) kickAll() {
	for i := range f.notify {
		f.kick(i)
	}
}

// kickRun wakes the completion watcher without blocking.
func (f *ftRunner) kickRun() {
	select {
	case f.runCh <- struct{}{}:
	default:
	}
}

// setConn registers worker task's live transport so declareDead can sever
// a busy heir mid-attempt.
func (f *ftRunner) setConn(task int, c io.Closer) {
	f.st.mu.Lock()
	f.st.conns[task] = c
	f.st.mu.Unlock()
}

// RunFT executes a join session with fault tolerance: dial is invoked per
// connection attempt, failures are retried under ft.Retry, hung
// connections are severed by the heartbeat watchdog, and reconnected
// workers resume from their checkpoint cursor. Bi sessions and snapshot
// options are not supported.
func RunFT(ctx context.Context, dial Dialer, workers int, sess Session, recs []*record.Record, opts Opts, ft FT) (*RunSummary, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("remote: no workers")
	}
	if sess.Bi {
		return nil, fmt.Errorf("remote: RunFT does not support bi sessions")
	}
	if opts.Snapshot || len(opts.Seed) > 0 {
		return nil, fmt.Errorf("remote: snapshot options unsupported for ft runs")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	strat, err := sess.strategyFor(workers)
	if err != nil {
		return nil, err
	}
	if ft.HeartbeatInterval <= 0 {
		ft.HeartbeatInterval = time.Second
	}
	if ft.HeartbeatTimeout <= 0 {
		ft.HeartbeatTimeout = 5 * ft.HeartbeatInterval
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	f := &ftRunner{
		k:          workers,
		sess:       sess,
		ft:         ft,
		dial:       dial,
		met:        newFTMetrics(ft.Registry),
		tracer:     opts.Tracer,
		journal:    opts.Journal,
		coll:       &ftCollector{collectPairs: opts.CollectPairs, seen: make(map[[2]record.ID]bool)},
		hbInterval: ft.HeartbeatInterval,
		hbTimeout:  ft.HeartbeatTimeout,
		canDegrade: ft.Degraded && sess.Strategy == "length",
		origBounds: append([]int(nil), sess.Bounds...),
		start:      time.Now(),
		cancel:     cancel,
		notify:     make([]chan struct{}, workers),
		runCh:      make(chan struct{}, 1),
		finalCh:    make(chan struct{}),
	}
	alive := make([]bool, workers)
	for i := range alive {
		alive[i] = true
	}
	f.st = ftState{
		logs:     make([][]ftEntry, workers),
		sentPos:  make([]int, workers),
		alive:    alive,
		finished: make([]bool, workers),
		rebuilt:  make([]bool, workers),
		epoch:    make([]uint64, workers),
		conns:    make([]io.Closer, workers),
		stats:    make([]wire.Stats, workers),
		bounds:   append([]int(nil), sess.Bounds...),
		strat:    strat,
	}
	for i := range f.notify {
		f.notify[i] = make(chan struct{}, 1)
	}

	if ft.Durable != nil {
		if ft.SessionID == 0 {
			return nil, fmt.Errorf("remote: durable runs need a non-zero session id")
		}
		ds, derr := openDurable(*ft.Durable)
		if derr != nil {
			return nil, derr
		}
		defer ds.close()
		f.durable = ds
		f.planHash = sess.PlanHash(workers)
		if ft.Durable.Resume {
			n, serr := ds.seedResults(f.coll)
			if serr != nil {
				return nil, serr
			}
			f.journal.Append("session_resume", "coordinator",
				fmt.Sprintf("session %016x resumed: %d records in ingest log, %d durable results recovered",
					ft.SessionID, ds.ingest.Next(), n))
		}
		if merr := f.saveManifest(); merr != nil {
			return nil, merr
		}
	}
	if ft.Control != nil {
		ft.Control.r.Store(f)
	}

	for i := 0; i < workers; i++ {
		f.wg.Add(1)
		go func(task int) {
			defer f.wg.Done()
			f.manage(rctx, task)
		}(i)
	}

	err = f.dispatch(rctx, recs)
	if err == nil {
		err = f.await(rctx)
	}
	if err != nil {
		cancel()
		f.wg.Wait()
		f.st.mu.Lock()
		fatal := f.st.fatal
		f.st.mu.Unlock()
		if fatal != nil {
			return nil, fatal
		}
		return nil, err
	}
	close(f.finalCh)
	f.wg.Wait()
	if f.durable != nil {
		// Final manifest: cursors at end-of-log, both WALs synced so the
		// state directory is complete on disk before the summary returns.
		f.durable.ingest.Sync()
		f.durable.results.Sync()
		if merr := f.saveManifest(); merr != nil {
			return nil, merr
		}
	}

	sum := &RunSummary{Records: uint64(len(recs))}
	f.st.mu.Lock()
	sum.WorkerStats = f.st.stats
	sum.Degraded = f.st.degraded
	sum.DeadWorkers = f.st.deadList
	if f.st.degraded {
		sum.RebalancedBounds = f.st.bounds
	}
	f.st.mu.Unlock()
	f.coll.drain(sum)
	sum.Elapsed = time.Since(f.start)
	sum.TuplesSent = f.tuples.Load()
	sum.BytesSent = f.bytes.Load()
	sum.Retries = f.retries.Load()
	sum.Reconnects = f.reconnects.Load()
	sum.ReplayedRecords = f.replayed.Load()
	return sum, nil
}

// dispatch routes every record into the per-worker replay logs, re-reading
// the strategy each record so a degradation mid-stream redirects the tail.
func (f *ftRunner) dispatch(ctx context.Context, recs []*record.Record) error {
	buf := make([]int, 0, f.k)
	touched := make([]int, 0, f.k)
	for i, r := range recs {
		if err := ctx.Err(); err != nil {
			f.st.mu.Lock()
			fatal := f.st.fatal
			f.st.mu.Unlock()
			if fatal != nil {
				return fatal
			}
			return fmt.Errorf("remote: %w", err)
		}
		if f.durable != nil {
			// Persist before routing: a record is only ever sent to a worker
			// after it is in the ingest log, so a restart can always re-drive
			// everything any worker might have partially processed.
			if err := f.durable.appendRecord(uint64(i), r); err != nil {
				return fmt.Errorf("remote: ingest log append: %w", err)
			}
		}
		touched = touched[:0]
		f.st.mu.Lock()
		if f.st.fatal != nil {
			err := f.st.fatal
			f.st.mu.Unlock()
			return err
		}
		tr := f.tracer.Sample()
		var emitIdx int
		if tr != nil {
			now := time.Now()
			emitIdx = tr.Append("emit", "coordinator", 0, -1, now, now)
		}
		buf = f.st.strat.Route(r, f.k, buf[:0])
		for _, dst := range buf {
			// Dead workers keep empty intervals after rebalance, but the
			// route range can still brush them; their records belong to the
			// heir, which the rebalanced strategy already targets.
			if !f.st.alive[dst] {
				continue
			}
			e := ftEntry{rec: r, store: f.st.strat.Stores(r, dst, f.k)}
			if tr != nil {
				now := time.Now()
				e.traceID = tr.ID()
				e.parentSpan = tr.Append("wire", "coordinator", dst, emitIdx, now, now)
			}
			f.st.logs[dst] = append(f.st.logs[dst], e)
			touched = append(touched, dst)
		}
		f.st.mu.Unlock()
		for _, dst := range touched {
			f.kick(dst)
		}
	}
	f.st.mu.Lock()
	f.st.closed = true
	f.st.mu.Unlock()
	f.kickAll()
	if f.durable != nil {
		// Ingest complete: sync the log and stamp the manifest so a crash
		// from here on can replay the full record stream.
		if err := f.durable.ingest.Sync(); err != nil {
			return fmt.Errorf("remote: ingest log sync: %w", err)
		}
		if err := f.saveManifest(); err != nil {
			return err
		}
		f.journal.Append("ingest_sealed", "coordinator",
			fmt.Sprintf("ingest log sealed at %d records", f.durable.ingest.Next()))
	}
	return nil
}

// saveManifest atomically writes the session manifest: launch hello, plan
// hash, current (possibly rebalanced) bounds, WAL positions and advisory
// per-task send cursors.
func (f *ftRunner) saveManifest() error {
	if f.durable == nil {
		return nil
	}
	h, err := f.sess.hello(0, f.k)
	if err != nil {
		return err
	}
	h.FT = true
	h.SessionID = f.ft.SessionID
	h.Durable = true
	h.PlanHash = f.planHash
	m := &checkpoint.Manifest{
		Schema:    checkpoint.ManifestSchema,
		SessionID: f.ft.SessionID,
		PlanHash:  f.planHash,
		Hello:     h,
		Workers:   append([]string(nil), f.durable.cfg.Workers...),
	}
	f.st.mu.Lock()
	m.Bounds = append([]int(nil), f.st.bounds...)
	m.Cursors = make([]checkpoint.TaskCursor, f.k)
	for i := 0; i < f.k; i++ {
		m.Cursors[i] = checkpoint.TaskCursor{Task: i, SentPos: uint64(f.st.sentPos[i])}
	}
	f.st.mu.Unlock()
	m.IngestNext = f.durable.ingest.Next()
	m.ResultsNext = f.durable.results.Next()
	return checkpoint.SaveManifest(filepath.Join(f.durable.cfg.StateDir, checkpoint.ManifestPath), m)
}

// await blocks until every alive worker has finished its full log, or the
// run fails.
func (f *ftRunner) await(ctx context.Context) error {
	for {
		f.st.mu.Lock()
		fatal := f.st.fatal
		done := fatal == nil
		if done {
			for i := 0; i < f.k; i++ {
				if f.st.alive[i] && !f.st.finished[i] {
					done = false
					break
				}
			}
		}
		f.st.mu.Unlock()
		if fatal != nil {
			return fatal
		}
		if done {
			return nil
		}
		select {
		case <-f.runCh:
		case <-ctx.Done():
			f.st.mu.Lock()
			fatal = f.st.fatal
			f.st.mu.Unlock()
			if fatal != nil {
				return fatal
			}
			return fmt.Errorf("remote: %w", ctx.Err())
		}
	}
}

// manage owns worker task for the whole run: it connects, streams, and on
// failure retries under the policy until the worker finishes or is
// declared dead. The consecutive-failure count resets on every successful
// handshake.
func (f *ftRunner) manage(ctx context.Context, task int) {
	failures := 0
	var failSince time.Time
	for {
		if ctx.Err() != nil {
			return
		}
		f.st.mu.Lock()
		alive := f.st.alive[task]
		epoch := f.st.epoch[task]
		resume := !f.st.rebuilt[task]
		parked := f.st.closed && f.st.finished[task]
		f.st.mu.Unlock()
		if !alive {
			return
		}
		if parked {
			// Done — but stay reachable: a later death may rebuild this
			// worker's log and un-finish it.
			select {
			case <-f.finalCh:
				return
			case <-f.notify[task]:
			case <-ctx.Done():
				return
			}
			continue
		}
		handshook, err := f.attempt(ctx, task, epoch, resume, failures > 0 || !failSince.IsZero(), failSince)
		if handshook {
			failures = 0
			failSince = time.Time{}
		}
		if err == nil {
			continue
		}
		if errors.Is(err, errEpochChanged) {
			continue
		}
		if ctx.Err() != nil {
			return
		}
		failures++
		if failSince.IsZero() {
			failSince = time.Now()
		}
		f.retries.Add(1)
		if f.met.retries != nil {
			f.met.retries.Inc()
		}
		f.journal.Append("retry", "coordinator",
			fmt.Sprintf("worker %d attempt %d failed: %v", task, failures, err))
		if failures > f.ft.Retry.MaxAttempts {
			f.declareDead(task, failures, err)
			return
		}
		if sleepCtx(ctx, f.ft.Retry.backoff(failures, uint64(task))) != nil {
			return
		}
	}
}

// attempt runs one connection's full lifecycle: dial, FT handshake with
// resume ack, log replay/stream, EOF, stats. handshook reports whether the
// handshake completed (resetting the manager's failure budget) regardless
// of how the attempt ended.
func (f *ftRunner) attempt(ctx context.Context, task int, epoch uint64, resume, isReconnect bool, failSince time.Time) (handshook bool, err error) {
	conn, err := f.dial(ctx, task)
	if err != nil {
		return false, fmt.Errorf("remote: dialing worker %d: %w", task, err)
	}
	f.setConn(task, conn)
	defer f.setConn(task, nil)

	// Liveness stamps: nanoseconds since run start of the last inbound
	// frame and the last completed outbound write. Progress on either
	// direction keeps the watchdog calm; blocked writes during a backlog
	// still stamp per flushed chunk.
	var lastIn, lastOut atomic.Int64
	now := func() int64 { return int64(time.Since(f.start)) }
	lastIn.Store(now())
	lastOut.Store(now())
	cw := &countingWriter{w: conn, stamp: &lastOut, base: f.start}
	defer func() { f.bytes.Add(cw.n.Load()) }()
	w := wire.NewWriter(cw)

	f.st.mu.Lock()
	sess := f.sess
	sess.Bounds = f.st.bounds
	f.st.mu.Unlock()
	h, err := sess.hello(task, f.k)
	if err != nil {
		conn.Close()
		return false, err
	}
	h.FT = true
	h.Resume = resume
	h.SessionID = f.ft.SessionID
	h.Durable = f.durable != nil
	h.PlanHash = f.planHash
	if err := w.WriteHello(h); err != nil {
		conn.Close()
		return false, fmt.Errorf("remote: hello to worker %d: %w", task, err)
	}
	if err := w.Flush(); err != nil {
		conn.Close()
		return false, fmt.Errorf("remote: hello to worker %d: %w", task, err)
	}

	// Per-attempt flow-control state shared between the reader goroutine
	// and the write loop. Credits are per-connection by design (wire v4):
	// every handshake resets them, so nothing here survives the attempt.
	var (
		recCredit    atomic.Int64  // records the worker will currently accept
		resDurable   atomic.Uint64 // distinct durable results received on this connection
		workerPaused atomic.Bool   // worker-requested pause (unacked watermark)
	)

	ackCh := make(chan resumeAck, 1)
	statsCh := make(chan wire.Stats, 1)
	readErrCh := make(chan error, 1)
	var aw sync.WaitGroup
	aw.Add(1)
	go func() {
		defer aw.Done()
		rd := wire.NewReader(conn)
		ackSeen := false
		// connSeen dedups result frames within this connection so a frame
		// duplicated by a flaky transport is never credited twice — the
		// soundness condition of count-based acknowledgement.
		var connSeen map[[2]record.ID]bool
		if f.durable != nil {
			connSeen = make(map[[2]record.ID]bool)
		}
		for {
			typ, rerr := rd.Next()
			if rerr != nil {
				readErrCh <- fmt.Errorf("remote: worker %d read: %w", task, rerr)
				return
			}
			lastIn.Store(int64(time.Since(f.start)))
			// wire-dispatch: coordinator
			switch typ {
			case wire.TypeResumeAck:
				next, credit, hasCredit, rerr := rd.ReadResumeAckCredit()
				if rerr != nil {
					readErrCh <- rerr
					return
				}
				if ackSeen {
					continue // duplicate ack frame (fault injection); drop
				}
				ackSeen = true
				if hasCredit {
					recCredit.Store(int64(credit))
				}
				ackCh <- resumeAck{next: next, v4: hasCredit}
			case wire.TypeResult:
				res, rerr := rd.ReadResult()
				if rerr != nil {
					readErrCh <- rerr
					return
				}
				isNew := f.coll.add(res)
				if !isNew && f.met.dupResults != nil {
					f.met.dupResults.Inc()
				}
				if f.durable != nil {
					key := [2]record.ID{res.A, res.B}
					if !connSeen[key] {
						connSeen[key] = true
						if isNew {
							if aerr := f.durable.appendResult(res); aerr != nil {
								readErrCh <- fmt.Errorf("remote: results log append: %w", aerr)
								return
							}
						}
						// New or re-sent, the result is now (or already was)
						// in the results log: creditable once synced.
						resDurable.Add(1)
						f.kick(task)
					}
				}
			case wire.TypeCredit:
				n, rerr := rd.ReadCredit()
				if rerr != nil {
					readErrCh <- rerr
					return
				}
				recCredit.Add(int64(n))
				f.kick(task)
			case wire.TypePause:
				workerPaused.Store(true)
				f.journal.Append("worker_pause", "coordinator",
					fmt.Sprintf("worker %d asked to pause: unacked results over watermark", task))
			case wire.TypeResume:
				workerPaused.Store(false)
				f.journal.Append("worker_resume", "coordinator",
					fmt.Sprintf("worker %d released its pause", task))
				f.kick(task)
			case wire.TypePong:
				// Stamp above is the whole point.
			case wire.TypeStats:
				st, rerr := rd.ReadStats()
				if rerr != nil {
					readErrCh <- rerr
					return
				}
				statsCh <- st
				return
			default:
				readErrCh <- fmt.Errorf("remote: worker %d sent frame type %d", task, typ)
				return
			}
		}
	}()

	// Watchdog: sever the connection when both directions have been silent
	// past the timeout, or on cancellation. Closing the conn unblocks any
	// blocked read or write above and below.
	hbStop := make(chan struct{})
	var eofDrained atomic.Bool
	aw.Add(1)
	go func() {
		defer aw.Done()
		t := time.NewTicker(f.hbInterval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ctx.Done():
				conn.Close()
				return
			case <-t.C:
				if eofDrained.Load() {
					// Post-EOF the worker stops answering pings while it
					// drains and computes stats; only cancellation or a
					// transport error ends the wait from here.
					continue
				}
				last := lastIn.Load()
				if o := lastOut.Load(); o > last {
					last = o
				}
				if time.Duration(now()-last) > f.hbTimeout {
					conn.Close()
					return
				}
			}
		}
	}()
	defer func() {
		close(hbStop)
		conn.Close()
		aw.Wait()
	}()

	var ack resumeAck
	select {
	case ack = <-ackCh:
	case rerr := <-readErrCh:
		return false, rerr
	case <-ctx.Done():
		return false, fmt.Errorf("remote: %w", ctx.Err())
	}
	v4 := ack.v4

	// Handshake complete: locate the replay position and reset bookkeeping.
	f.st.mu.Lock()
	if f.st.epoch[task] != epoch {
		f.st.mu.Unlock()
		return false, errEpochChanged
	}
	f.st.rebuilt[task] = false
	log := f.st.logs[task]
	pos := sort.Search(len(log), func(i int) bool { return uint64(log[i].rec.ID) >= ack.next })
	if prev := f.st.sentPos[task]; prev > pos {
		n := uint64(prev - pos)
		f.replayed.Add(n)
		if f.met.replayed != nil {
			f.met.replayed.Add(n)
		}
	}
	f.st.mu.Unlock()
	if isReconnect {
		f.reconnects.Add(1)
		if f.met.reconnects != nil {
			f.met.reconnects.Inc()
		}
		if !failSince.IsZero() && f.met.recovery != nil {
			f.met.recovery.Observe(time.Since(failSince))
		}
		f.journal.Append("reconnect", "coordinator",
			fmt.Sprintf("worker %d reconnected, resuming from id %d", task, ack.next))
	}

	// drainReader parks until the reader goroutine is done after a write
	// failure: the worker may still be flushing results it has already
	// checkpointed as delivered, and abandoning them would break replay
	// exactness. The wait is bounded — the watchdog severs a silent
	// connection, which errors the reader out.
	drainReader := func() {
		eofDrained.Store(false) // rearm the watchdog to bound the wait
		select {
		case <-readErrCh:
		case <-statsCh:
		case <-ctx.Done():
		}
	}

	ping := time.NewTicker(f.hbInterval)
	defer ping.Stop()
	eofSent := false
	var credited uint64  // result credits granted on this connection
	toldPaused := false  // coordinator-side pause state the worker was told
	for {
		f.st.mu.Lock()
		if f.st.epoch[task] != epoch {
			f.st.mu.Unlock()
			return true, errEpochChanged
		}
		log = f.st.logs[task]
		end := len(log)
		closed := f.st.closed
		f.st.mu.Unlock()

		// Result acknowledgements flow before anything else — and crucially
		// regardless of pause state, or a paused worker's unacked buffer
		// could never drain. The sync makes every credited result durable
		// whatever the WAL's background fsync policy says.
		if v4 && f.durable != nil {
			if d := resDurable.Load(); d > credited {
				if serr := f.durable.results.Sync(); serr != nil {
					drainReader()
					return true, fmt.Errorf("remote: results log sync: %w", serr)
				}
				if werr := w.WriteCredit(d - credited); werr != nil {
					drainReader()
					return true, fmt.Errorf("remote: credit to worker %d: %w", task, werr)
				}
				credited = d
			}
		}

		// Coordinator-side admission control: tell a v4 worker about pause
		// transitions so it can journal and relax its own pacing; the actual
		// gate is below and applies to any peer version.
		ctlPaused := f.ft.Control.Paused()
		if v4 && ctlPaused != toldPaused {
			var werr error
			if ctlPaused {
				werr = w.WritePause()
			} else {
				werr = w.WriteResume()
			}
			if werr != nil {
				drainReader()
				return true, fmt.Errorf("remote: pause/resume to worker %d: %w", task, werr)
			}
			toldPaused = ctlPaused
		}
		paused := ctlPaused || workerPaused.Load()

		if pos < end && !paused {
			n := end - pos
			if v4 {
				// Credit-gated: send at most what the worker granted. Out of
				// credit, park below until a Credit frame replenishes.
				if avail := recCredit.Load(); avail <= 0 {
					n = 0
				} else if int64(n) > avail {
					n = int(avail)
				}
			}
			if n > 0 {
				for _, e := range log[pos : pos+n] {
					if werr := w.WriteRecordTraced(e.store, false, e.rec, e.traceID, e.parentSpan); werr != nil {
						drainReader()
						return true, fmt.Errorf("remote: record to worker %d: %w", task, werr)
					}
				}
				if werr := w.Flush(); werr != nil {
					drainReader()
					return true, fmt.Errorf("remote: flush to worker %d: %w", task, werr)
				}
				f.tuples.Add(uint64(n))
				if v4 {
					recCredit.Add(-int64(n))
				}
				pos += n
				f.st.mu.Lock()
				if pos > f.st.sentPos[task] {
					f.st.sentPos[task] = pos
				}
				f.st.mu.Unlock()
				continue
			}
		}

		if closed && !eofSent && pos == end && !paused {
			// Flush while the watchdog still enforces the deadline, then
			// relax it: post-EOF stats can legitimately take a while with
			// nothing on the wire.
			if werr := w.Flush(); werr != nil {
				drainReader()
				return true, fmt.Errorf("remote: flush to worker %d: %w", task, werr)
			}
			eofDrained.Store(true)
			if werr := w.WriteEOF(); werr != nil {
				drainReader()
				return true, fmt.Errorf("remote: eof to worker %d: %w", task, werr)
			}
			eofSent = true
		}

		if eofSent {
			select {
			case st := <-statsCh:
				f.st.mu.Lock()
				if f.st.epoch[task] != epoch {
					f.st.mu.Unlock()
					return true, errEpochChanged
				}
				f.st.stats[task] = st
				f.st.finished[task] = true
				f.st.mu.Unlock()
				f.kickRun()
				return true, nil
			case rerr := <-readErrCh:
				return true, rerr
			case <-f.notify[task]:
				// Possibly an epoch bump; the loop re-checks.
			case <-ctx.Done():
				return true, fmt.Errorf("remote: %w", ctx.Err())
			}
			continue
		}

		select {
		case <-f.notify[task]:
		case rerr := <-readErrCh:
			return true, rerr
		case <-ping.C:
			if werr := w.WritePing(); werr != nil {
				drainReader()
				return true, fmt.Errorf("remote: ping to worker %d: %w", task, werr)
			}
		case <-ctx.Done():
			return true, fmt.Errorf("remote: %w", ctx.Err())
		}
	}
}

// declareDead marks worker task dead after its retry budget ran out. In
// degraded mode its log merges into the heir's and the partition
// rebalances; otherwise the run fails.
func (f *ftRunner) declareDead(task, failures int, cause error) {
	if f.met.dead != nil {
		f.met.dead.Add(1)
	}
	f.journal.Append("worker_dead", "coordinator",
		fmt.Sprintf("worker %d declared dead after %d attempts: %v", task, failures, cause))
	var (
		heir        int
		heirConn    io.Closer
		rescued     bool
		wasDegraded bool
	)
	f.st.mu.Lock()
	wasDegraded = f.st.degraded
	f.st.alive[task] = false
	f.st.deadList = append(f.st.deadList, task)
	if !f.canDegrade {
		why := "degraded mode off"
		if f.ft.Degraded {
			why = fmt.Sprintf("strategy %q cannot rebalance", f.sess.Strategy)
		}
		f.st.fatal = fmt.Errorf("remote: worker %d dead after %d attempts (%s): %w", task, failures, why, cause)
	} else if h, ok := partition.Heir(f.st.alive, task); !ok {
		f.st.fatal = fmt.Errorf("remote: all workers dead: %w", cause)
	} else if np, err := partition.Rebalance(partition.Partition{Bounds: f.origBounds}, f.st.alive); err != nil {
		f.st.fatal = fmt.Errorf("remote: rebalancing after worker %d death: %w", task, err)
	} else {
		heir, rescued = h, true
		f.st.bounds = np.Bounds
		f.st.strat = dispatch.NewLengthBased(f.sess.Params, np)
		f.st.logs[heir] = mergeFTLogs(f.st.logs[heir], f.st.logs[task])
		f.st.logs[task] = nil
		f.st.sentPos[heir] = 0
		f.st.rebuilt[heir] = true
		f.st.epoch[heir]++
		f.st.finished[heir] = false
		f.st.degraded = true
		heirConn = f.st.conns[heir]
	}
	f.st.mu.Unlock()
	if !rescued {
		f.cancel()
		f.kickRun()
		return
	}
	if !wasDegraded {
		f.journal.Append("degraded", "coordinator",
			"entering degraded mode: continuing on survivors with rebalanced ranges")
	}
	f.journal.Append("rebalance", "coordinator",
		fmt.Sprintf("worker %d ranges rebalanced onto heir %d, heir log rebuilt", task, heir))
	if f.durable != nil {
		// Manifest keeps the launch hello (plan hash must stay stable) but
		// records the rebalanced bounds for status tooling.
		if merr := f.saveManifest(); merr != nil {
			f.journal.Append("manifest_error", "coordinator",
				fmt.Sprintf("manifest save after rebalance failed: %v", merr))
		}
	}
	if heirConn != nil {
		// Interrupt the heir's in-flight attempt; its manager reconnects
		// with the rebuilt log without charging the retry budget.
		heirConn.Close()
	}
	f.kick(heir)
	f.kickRun()
}

// mergeFTLogs merges two ID-sorted replay logs. A record present in both
// (routed to both workers pre-death) keeps a single entry whose store flag
// is the OR — it must be stored if either owner would have stored it.
func mergeFTLogs(a, b []ftEntry) []ftEntry {
	out := make([]ftEntry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].rec.ID == b[j].rec.ID:
			e := a[i] // keeps a's trace annotation, if any
			e.store = a[i].store || b[j].store
			out = append(out, e)
			i++
			j++
		case a[i].rec.ID < b[j].rec.ID:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
