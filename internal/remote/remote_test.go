package remote

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/bundle"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/window"
	"repro/internal/wire"
	"repro/internal/workload"
)

func testSession(tau float64, strategy string, bounds []int) Session {
	return Session{
		Params:   filter.Params{Func: similarity.Jaccard, Threshold: tau},
		Strategy: strategy,
		Bounds:   bounds,
	}
}

// silentLogf discards worker session logs: sessions end with EOF errors
// when test cleanup closes connections, and logging through t.Logf from a
// goroutine after the test completes panics.
func silentLogf(string, ...interface{}) {}

// startWorkers launches n loopback TCP workers and returns dialed
// connections plus a cleanup func.
func startWorkers(t *testing.T, n int) []net.Conn {
	t.Helper()
	var conns []net.Conn
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go ServeWorker(context.Background(), ln, silentLogf) //nolint:errcheck
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close(); ln.Close() })
		conns = append(conns, c)
	}
	return conns
}

func asRW(conns []net.Conn) []io.ReadWriter {
	out := make([]io.ReadWriter, len(conns))
	for i, c := range conns {
		out[i] = c
	}
	return out
}

func singleNodePairs(recs []*record.Record, tau float64, win window.Policy) map[record.Pair]bool {
	j := local.New(local.Naive, local.Options{
		Params: filter.Params{Func: similarity.Jaccard, Threshold: tau},
		Window: win,
	})
	out := make(map[record.Pair]bool)
	for _, r := range recs {
		j.Step(r, true, func(m local.Match) {
			out[record.Pair{First: minID(r.ID, m.Rec.ID), Second: maxID(r.ID, m.Rec.ID)}] = true
		})
	}
	return out
}

func minID(a, b record.ID) record.ID {
	if a < b {
		return a
	}
	return b
}
func maxID(a, b record.ID) record.ID {
	if a < b {
		return b
	}
	return a
}

func boundsFor(recs []*record.Record, tau float64, k int) []int {
	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	w := partition.CostModel{Params: filter.Params{Func: similarity.Jaccard, Threshold: tau}}.Weights(&h)
	return partition.LoadAware(w, k).Bounds
}

// TestRemoteMatchesSingleNode is the end-to-end gate for the TCP runtime:
// every strategy over real sockets must reproduce the single-node result
// set exactly.
func TestRemoteMatchesSingleNode(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(31)).Generate(500)
	const tau = 0.7
	want := singleNodePairs(recs, tau, window.Unbounded{})
	for _, strat := range []string{"length", "prefix", "broadcast"} {
		k := 3
		sess := testSession(tau, strat, nil)
		if strat == "length" {
			sess.Bounds = boundsFor(recs, tau, k)
		}
		conns := startWorkers(t, k)
		sum, err := Run(context.Background(), asRW(conns), sess, recs, true)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		got := make(map[record.Pair]bool)
		for _, p := range sum.Pairs {
			key := record.Pair{First: p.First, Second: p.Second}
			if got[key] {
				t.Fatalf("%s: duplicate pair %v", strat, key)
			}
			got[key] = true
		}
		if len(got) != len(want) {
			t.Fatalf("%s: got %d pairs want %d", strat, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%s: missing %v", strat, p)
			}
		}
		if sum.BytesSent == 0 || sum.TuplesSent == 0 {
			t.Fatalf("%s: traffic not counted: %+v", strat, sum)
		}
	}
}

func TestRemoteWindowedBundleSession(t *testing.T) {
	recs := workload.NewGenerator(workload.AOLLike(7)).Generate(800)
	const tau = 0.8
	win := window.Count{N: 200}
	sess := Session{
		Params:    filter.Params{Func: similarity.Jaccard, Threshold: tau},
		Algorithm: local.Bundled,
		Window:    win,
		Bundle:    bundle.Config{MaxMembers: 16},
		Strategy:  "length",
		Bounds:    boundsFor(recs, tau, 2),
	}
	conns := startWorkers(t, 2)
	sum, err := Run(context.Background(), asRW(conns), sess, recs, false)
	if err != nil {
		t.Fatal(err)
	}
	want := singleNodePairs(recs, tau, win)
	if int(sum.Results) != len(want) {
		t.Fatalf("results: got %d want %d", sum.Results, len(want))
	}
	var stored uint64
	for _, st := range sum.WorkerStats {
		stored += st.Stored
	}
	if stored != uint64(len(recs)) {
		t.Fatalf("length strategy replicated: stored %d of %d", stored, len(recs))
	}
}

func TestRemoteStatsPlumbing(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(3)).Generate(200)
	sess := testSession(0.6, "broadcast", nil)
	conns := startWorkers(t, 2)
	sum, err := Run(context.Background(), asRW(conns), sess, recs, false)
	if err != nil {
		t.Fatal(err)
	}
	var probes uint64
	for _, st := range sum.WorkerStats {
		probes += st.Probes
	}
	if probes != uint64(2*len(recs)) { // broadcast probes everywhere
		t.Fatalf("probes: got %d want %d", probes, 2*len(recs))
	}
	if sum.Elapsed <= 0 {
		t.Fatal("elapsed missing")
	}
}

func TestRemoteRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, testSession(0.8, "length", nil), nil, false); err == nil {
		t.Fatal("expected error for zero workers")
	}
	conns := startWorkers(t, 2)
	if _, err := Run(context.Background(), asRW(conns), testSession(0.8, "length", []int{5}), nil, false); err == nil {
		t.Fatal("expected bounds mismatch error")
	}
	if _, err := Run(context.Background(), asRW(conns), testSession(0.8, "bogus", nil), nil, false); err == nil {
		t.Fatal("expected unknown strategy error")
	}
}

func TestWorkerRejectsBadHandshake(t *testing.T) {
	conns := startWorkers(t, 1)
	c := conns[0]
	// Send a record before any hello.
	w := wire.NewWriter(c)
	if err := w.WriteRecord(true, &record.Record{ID: 1, Tokens: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Worker must close the connection without sending stats.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("worker answered a session with no handshake")
	}
}

func TestWorkerDiesMidRunSurfacesError(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(9)).Generate(5000)
	sess := testSession(0.6, "broadcast", nil)

	// One healthy worker, one that accepts then slams the connection.
	healthy := startWorkers(t, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
		conn.Close()
	}()
	evil, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()

	_, err = Run(context.Background(), []io.ReadWriter{healthy[0], evil}, sess, recs, false)
	if err == nil {
		t.Fatal("dead worker went unnoticed")
	}
}

func TestHandleSessionOverPipes(t *testing.T) {
	// The session handler is transport-agnostic: drive it over in-memory
	// pipes with a hand-rolled coordinator.
	cr, ww := io.Pipe() // worker writes results
	wr, cw := io.Pipe() // coordinator writes records
	done := make(chan error, 1)
	go func() { done <- HandleSession(context.Background(), wr, ww) }()

	w := wire.NewWriter(cw)
	h, err := testSession(0.9, "broadcast", nil).hello(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHello(h); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(true, &record.Record{ID: 0, Tokens: []uint32{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(true, &record.Record{ID: 1, Time: 1, Tokens: []uint32{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEOF(); err != nil {
		t.Fatal(err)
	}

	rd := wire.NewReader(cr)
	typ, err := rd.Next()
	if err != nil || typ != wire.TypeResult {
		t.Fatalf("first frame: %v %v", typ, err)
	}
	res, err := rd.ReadResult()
	if err != nil || res.A != 0 || res.B != 1 || res.Sim != 1.0 {
		t.Fatalf("result: %+v %v", res, err)
	}
	typ, err = rd.Next()
	if err != nil || typ != wire.TypeStats {
		t.Fatalf("second frame: %v %v", typ, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("session: %v", err)
	}
}

func TestSessionHelloErrors(t *testing.T) {
	s := testSession(0.8, "length", []int{1, 2})
	if _, err := s.hello(0, 3); err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Fatalf("expected bounds error, got %v", err)
	}
}

// TestWorkerServesConcurrentSessions: one worker process must handle
// several independent coordinator sessions at the same time without
// cross-talk.
func TestWorkerServesConcurrentSessions(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ServeWorker(context.Background(), ln, silentLogf) //nolint:errcheck

	const sessions = 4
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		go func(seed int64) {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			recs := workload.NewGenerator(workload.UniformSmall(seed)).Generate(300)
			sum, err := Run(context.Background(), []io.ReadWriter{conn}, testSession(0.7, "broadcast", nil), recs, false)
			if err != nil {
				errs <- err
				return
			}
			want := singleNodePairs(recs, 0.7, window.Unbounded{})
			if int(sum.Results) != len(want) {
				errs <- fmt.Errorf("seed %d: got %d results want %d", seed, sum.Results, len(want))
				return
			}
			errs <- nil
		}(int64(s + 1))
	}
	for s := 0; s < sessions; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRemoteLargeSession pushes a bigger stream through a 4-worker fleet to
// exercise buffering and backpressure on real sockets.
func TestRemoteLargeSession(t *testing.T) {
	if testing.Short() {
		t.Skip("large session")
	}
	recs := workload.NewGenerator(workload.AOLLike(77)).Generate(20000)
	const tau = 0.8
	sess := testSession(tau, "length", boundsFor(recs, tau, 4))
	sess.Algorithm = local.Bundled
	conns := startWorkers(t, 4)
	sum, err := Run(context.Background(), asRW(conns), sess, recs, false)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Results == 0 {
		t.Fatal("no results on a duplicate-heavy stream")
	}
	var stored uint64
	for _, st := range sum.WorkerStats {
		stored += st.Stored
	}
	if stored != uint64(len(recs)) {
		t.Fatalf("replication detected: %d stored copies", stored)
	}
}

// TestSnapshotSeedAndResume splits a stream across two remote sessions:
// run the first half requesting snapshots, then seed a second session
// (fresh workers) with them — the combined results must match one
// uninterrupted run.
func TestSnapshotSeedAndResume(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(55)).Generate(600)
	const tau = 0.7
	const cut = 350
	sess := testSession(tau, "broadcast", nil)
	k := 2

	// Uninterrupted reference over fresh workers.
	ref := startWorkers(t, k)
	full, err := Run(context.Background(), asRW(ref), sess, recs, false)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1 with snapshot collection.
	phase1Conns := startWorkers(t, k)
	sum1, err := RunWithOpts(context.Background(), asRW(phase1Conns), sess, recs[:cut], Opts{Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum1.Snapshots) != k {
		t.Fatalf("snapshots: %d", len(sum1.Snapshots))
	}
	for i, blob := range sum1.Snapshots {
		if len(blob) == 0 {
			t.Fatalf("worker %d snapshot empty", i)
		}
	}

	// Phase 2 on brand-new workers seeded from the snapshots.
	phase2Conns := startWorkers(t, k)
	sum2, err := RunWithOpts(context.Background(), asRW(phase2Conns), sess, recs[cut:], Opts{Seed: sum1.Snapshots})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum1.Results+sum2.Results, full.Results; got != want {
		t.Fatalf("split results %d (=%d+%d) != full %d", got, sum1.Results, sum2.Results, want)
	}
}

// TestSnapshotSeedWithLengthStrategy ensures seeding works when the stored
// records are partitioned by length: each worker's snapshot returns to the
// same task index, so routing stays consistent.
func TestSnapshotSeedWithLengthStrategy(t *testing.T) {
	recs := workload.NewGenerator(workload.AOLLike(66)).Generate(600)
	const tau = 0.8
	k := 3
	bounds := boundsFor(recs, tau, k)
	sess := testSession(tau, "length", bounds)

	ref := startWorkers(t, k)
	full, err := Run(context.Background(), asRW(ref), sess, recs, false)
	if err != nil {
		t.Fatal(err)
	}

	const cut = 300
	c1 := startWorkers(t, k)
	sum1, err := RunWithOpts(context.Background(), asRW(c1), sess, recs[:cut], Opts{Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	c2 := startWorkers(t, k)
	sum2, err := RunWithOpts(context.Background(), asRW(c2), sess, recs[cut:], Opts{Seed: sum1.Snapshots})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum1.Results+sum2.Results, full.Results; got != want {
		t.Fatalf("split results %d != full %d", got, want)
	}
}

func TestDialConnectsAndFailsCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ServeWorker(context.Background(), ln, silentLogf) //nolint:errcheck
	conns, err := Dial(context.Background(), []string{ln.Addr().String()}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		c.Close()
	}
	// A dead address must fail and close the earlier connections.
	if _, err := Dial(context.Background(), []string{ln.Addr().String(), "127.0.0.1:1"}, 200*time.Millisecond); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

// TestRemoteBiJoinMatchesLocal: the two-stream session over real sockets
// must match a local BiJoiner run.
func TestRemoteBiJoinMatchesLocal(t *testing.T) {
	base := workload.NewGenerator(workload.UniformSmall(91)).Generate(400)
	recs := make([]BiRecord, len(base))
	for i, r := range base {
		recs[i] = BiRecord{Rec: r, Right: i%2 == 1}
	}
	const tau = 0.7
	// Local reference.
	bi := local.NewBi(local.Naive, local.Options{
		Params: filter.Params{Func: similarity.Jaccard, Threshold: tau},
	})
	want := make(map[record.Pair]bool)
	for _, br := range recs {
		br := br
		emit := func(m local.Match) {
			want[record.NewPair(br.Rec.ID, m.Rec.ID, 0)] = true
		}
		bi.StepSide(br.Rec, br.Right, true, emit)
	}

	for _, strat := range []string{"length", "prefix", "broadcast"} {
		k := 3
		sess := testSession(tau, strat, nil)
		sess.Bi = true
		if strat == "length" {
			sess.Bounds = boundsFor(base, tau, k)
		}
		conns := startWorkers(t, k)
		sum, err := RunBi(context.Background(), asRW(conns), sess, recs, Opts{CollectPairs: true})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		got := make(map[record.Pair]bool)
		for _, p := range sum.Pairs {
			key := record.Pair{First: p.First, Second: p.Second}
			if got[key] {
				t.Fatalf("%s: duplicate %v", strat, key)
			}
			got[key] = true
		}
		if len(got) != len(want) {
			t.Fatalf("%s: got %d pairs want %d", strat, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%s: missing %v", strat, p)
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate: no cross pairs")
	}
}

func TestRemoteBiValidation(t *testing.T) {
	sess := testSession(0.8, "broadcast", nil)
	if _, err := RunBi(context.Background(), nil, sess, nil, Opts{}); err == nil {
		t.Fatal("RunBi without Session.Bi accepted")
	}
	sess.Bi = true
	if _, err := RunBi(context.Background(), nil, sess, nil, Opts{Snapshot: true}); err == nil {
		t.Fatal("bi snapshot accepted")
	}
	if _, err := RunWithOpts(context.Background(), nil, sess, nil, Opts{}); err == nil {
		t.Fatal("RunWithOpts with bi session accepted")
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	conns := startWorkers(t, 2)
	_, err := Run(ctx, asRW(conns), testSession(0.8, "length", []int{5}), nil, false)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("err = %v, want context canceled", err)
	}
}

// TestRunCancelledMidSession points the coordinator at workers that accept
// connections but never answer, so the run can only end via cancellation.
func TestRunCancelledMidSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, send nothing
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		recs := workload.NewGenerator(workload.AOLLike(3)).Generate(50)
		_, err := Run(ctx, []io.ReadWriter{conn}, testSession(0.8, "broadcast", nil), recs, false)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("err = %v, want context canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestServeWorkerStopsOnCancel checks the server side: cancelling the
// context closes the listener and ServeWorker returns nil.
func TestServeWorkerStopsOnCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeWorker(ctx, ln, silentLogf) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeWorker returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeWorker did not return after cancellation")
	}
}
