// Distributed-trace collection. Workers expose their span fragments at
// /debug/traces (obs.Fragments); the coordinator owns the root traces
// (its dispatch loop sampled them) and stitches scraped fragments under
// them with an obs.Stitcher. Collection rides the same HTTP scrape path
// as /metrics — no extra wire frames, and a worker that cannot be
// scraped simply contributes no spans this round (the stitcher keeps
// whatever an earlier round delivered).
package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// scrapeJSON fetches base+path and decodes the JSON body into out.
func scrapeJSON(ctx context.Context, client *http.Client, base, path string, out interface{}) error {
	if client == nil {
		client = http.DefaultClient
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+path, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote: scraping %s: HTTP %d", req.URL, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ScrapeTraces fetches base's /debug/traces document (local traces plus
// fragment spans recorded against remote trace ids).
func ScrapeTraces(ctx context.Context, client *http.Client, base string) (obs.TraceDoc, error) {
	var doc obs.TraceDoc
	err := scrapeJSON(ctx, client, base, "/debug/traces", &doc)
	return doc, err
}

// ScrapeEvents fetches base's /debug/events journal snapshot.
func ScrapeEvents(ctx context.Context, client *http.Client, base string) (obs.JournalSnapshot, error) {
	var snap obs.JournalSnapshot
	err := scrapeJSON(ctx, client, base, "/debug/events", &snap)
	return snap, err
}

// CollectTraces runs one stitching round: it refreshes the stitcher's
// roots from the coordinator-side tracer, scrapes every worker address
// concurrently, and feeds each worker's fragments in under its address as
// the source label. Re-running is idempotent per (trace, source) — a
// fragment that grew since the last round replaces its older copy. It
// returns the scrape errors keyed by address (empty map = clean round).
func CollectTraces(ctx context.Context, client *http.Client, st *obs.Stitcher, tracer *obs.Tracer, addrs []string, timeout time.Duration) map[string]error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	for _, root := range tracer.Recent() {
		st.AddRoot(root)
	}
	type scraped struct {
		addr string
		doc  obs.TraceDoc
		err  error
	}
	res := make([]scraped, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			doc, err := ScrapeTraces(sctx, client, addr)
			res[i] = scraped{addr: addr, doc: doc, err: err}
		}(i, addr)
	}
	wg.Wait()
	errs := make(map[string]error)
	for _, r := range res {
		if r.err != nil {
			errs[r.addr] = r.err
			continue
		}
		for _, frag := range r.doc.Fragments {
			st.AddFragment(r.addr, frag)
		}
	}
	return errs
}

// CollectEvents scrapes every address's journal and merges the rounds
// with local into one source-stamped timeline. Unreachable workers are
// skipped (their events arrive on a later round; journals are append-only
// up to their ring bound).
func CollectEvents(ctx context.Context, client *http.Client, local obs.JournalSnapshot, addrs []string, timeout time.Duration) []obs.Event {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	snaps := make([]obs.JournalSnapshot, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			snaps[i], _ = ScrapeEvents(sctx, client, addr)
		}(i, addr)
	}
	wg.Wait()
	all := append([]obs.JournalSnapshot{local}, snaps...)
	sources := append([]string{"coordinator"}, addrs...)
	return obs.MergeEvents(all, sources)
}

// RenderTraceTree writes one stitched trace as an indented span tree:
// children under parents, each line showing stage, origin/component/task,
// start offset from the trace root, and duration. Orphan spans (parent
// clamped to -1 by the stitcher) render at the top level.
func RenderTraceTree(w io.Writer, tr obs.StitchedTrace) error {
	if _, err := fmt.Fprintf(w, "trace %016x  start %s  spans %d  sources %s",
		tr.ID, time.Unix(0, tr.StartUnixNs).Format(time.RFC3339Nano),
		len(tr.Spans), strings.Join(tr.Origins, ",")); err != nil {
		return err
	}
	if tr.DuplicateSpans > 0 {
		fmt.Fprintf(w, "  duplicates %d", tr.DuplicateSpans)
	}
	fmt.Fprintln(w)
	children := make(map[int][]int)
	for i, sp := range tr.Spans {
		p := sp.Parent
		if p < -1 || p >= len(tr.Spans) || p == i {
			p = -1
		}
		children[p] = append(children[p], i)
	}
	for _, idxs := range children {
		sort.Slice(idxs, func(a, b int) bool {
			sa, sb := tr.Spans[idxs[a]], tr.Spans[idxs[b]]
			if sa.StartUs != sb.StartUs {
				return sa.StartUs < sb.StartUs
			}
			return idxs[a] < idxs[b]
		})
	}
	var render func(idx, depth int) error
	seen := make(map[int]bool)
	render = func(idx, depth int) error {
		if seen[idx] {
			return nil
		}
		seen[idx] = true
		sp := tr.Spans[idx]
		origin := sp.Origin
		if origin == "" {
			origin = "local"
		}
		if _, err := fmt.Fprintf(w, "  %s%-8s %s %s/%d  @%.1fus  %.1fus\n",
			strings.Repeat("  ", depth), sp.Stage, origin, sp.Component, sp.Task,
			sp.StartUs, sp.DurationUs); err != nil {
			return err
		}
		for _, c := range children[idx] {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, rootIdx := range children[-1] {
		if err := render(rootIdx, 0); err != nil {
			return err
		}
	}
	return nil
}
