package remote

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestMonitorCountsSessions(t *testing.T) {
	var mon Monitor
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ServeWorkerMonitored(context.Background(), ln, silentLogf, &mon) //nolint:errcheck

	recs := workload.NewGenerator(workload.UniformSmall(1)).Generate(150)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sum, err := Run(context.Background(), []io.ReadWriter{conn}, testSession(0.7, "broadcast", nil), recs, false)
	if err != nil {
		t.Fatal(err)
	}

	snap := mon.Snapshot()
	if snap["sessions_started"] != 1 || snap["sessions_finished"] != 1 || snap["sessions_failed"] != 0 {
		t.Fatalf("session counters: %v", snap)
	}
	if snap["records_seen"] != uint64(len(recs)) {
		t.Fatalf("records seen: %v", snap)
	}
	if snap["results_emitted"] != sum.Results {
		t.Fatalf("results: %v vs %d", snap, sum.Results)
	}
	if snap["sessions_active"] != 0 {
		t.Fatalf("active: %v", snap)
	}
}

func TestMonitorHTTPHandler(t *testing.T) {
	var mon Monitor
	mon.SessionsStarted.Add(3)
	mon.SessionsFinished.Add(2)
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok\n" {
		t.Fatalf("healthz: %q", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["sessions_started"] != 3 || got["sessions_active"] != 1 {
		t.Fatalf("stats: %v", got)
	}
}

func TestMonitorCountsFailedSessions(t *testing.T) {
	var mon Monitor
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		ServeWorkerMonitored(context.Background(), ln, func(string, ...interface{}) {}, &mon) //nolint:errcheck
		close(done)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xFF}) //nolint:errcheck — garbage, then hang up
	conn.Close()

	// Poll until the failure is recorded.
	deadline := time.Now().Add(5 * time.Second)
	for mon.SessionsFailed.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("failed session not counted: %v", mon.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ln.Close()
	<-done
}
