package remote

import (
	"context"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultwire"
	"repro/internal/window"
	"repro/internal/workload"
)

// startParallelFTWorker is startFTWorker with a verifier pool per session:
// the chaos variant for intra-worker parallelism.
func startParallelFTWorker(t *testing.T, dir string, interval time.Duration, par int) *ftWorker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &ftWorker{addr: ln.Addr().String(), mon: &Monitor{}, stop: cancel, done: make(chan struct{})}
	go func() {
		defer close(w.done)
		ServeWorkerOpts(ctx, ln, WorkerOpts{ //nolint:errcheck
			Logf:               silentLogf,
			Mon:                w.mon,
			CheckpointDir:      dir,
			CheckpointInterval: interval,
			Parallelism:        par,
		})
	}()
	t.Cleanup(func() { cancel(); <-w.done })
	return w
}

// TestChaosParallelVerifyParity reruns the seeded-fault chaos gate with
// every worker verifying on a 4-goroutine pool. The baseline is a
// fault-free sequential run, so the test pins both properties at once:
// parallel verification changes no results, and checkpoint/restore under
// faults composes with the pool (torn sessions rebuild their joiner — and
// its pool — from the checkpoint without leaking the old one).
func TestChaosParallelVerifyParity(t *testing.T) {
	const chaosSeed = 0x9A417
	recs := workload.NewGenerator(workload.UniformSmall(97)).Generate(1000)
	const tau = 0.7
	k := 2
	sess := testSession(tau, "length", boundsFor(recs, tau, k))
	sess.Window = window.Count{N: 128}
	want := chaosBaseline(t, k, sess, recs)

	workers := make([]*ftWorker, k)
	for i := range workers {
		workers[i] = startParallelFTWorker(t, t.TempDir(), 2*time.Millisecond, 4)
	}
	var attempts [2]atomic.Int64
	dial := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", workers[task].addr)
		if err != nil {
			return nil, err
		}
		n := attempts[task].Add(1)
		cfg := faultwire.Config{
			Seed:          chaosSeed ^ uint64(task)<<16 ^ uint64(n),
			SeverPerMille: 2,
			DupPerMille:   20,
			DelayPerMille: 5,
			Delay:         200 * time.Microsecond,
		}
		if n == 1 {
			cfg.SeverAfterFrames = 80
		}
		return faultwire.Wrap(c, cfg), nil
	}
	ft := FT{
		Retry:             RetryPolicy{MaxAttempts: 100, Base: time.Millisecond, Cap: 20 * time.Millisecond, Seed: chaosSeed},
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		SessionID:         chaosSeed,
	}
	sum, err := RunFT(context.Background(), dial, k, sess, recs, Opts{CollectPairs: true}, ft)
	if err != nil {
		t.Fatal(err)
	}
	requireParity(t, sum.Pairs, want, "parallel-verify chaos")
	if sum.Reconnects < uint64(k) {
		t.Errorf("reconnects = %d, want at least %d (anchored severs)", sum.Reconnects, k)
	}
	var ckpts uint64
	for _, w := range workers {
		ckpts += w.mon.CheckpointsWritten.Load()
	}
	if ckpts == 0 {
		t.Error("no checkpoints written under chaos")
	}
	t.Logf("parallel-verify chaos: reconnects=%d retries=%d replayed=%d worker_ckpts=%d",
		sum.Reconnects, sum.Retries, sum.ReplayedRecords, ckpts)
}
