package remote

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// Monitor aggregates worker-process counters and serves them over HTTP —
// the operational surface a deployed worker needs. Wire it with
// ServeWorkerMonitored and mount Handler on any mux.
type Monitor struct {
	SessionsStarted  atomic.Uint64
	SessionsFinished atomic.Uint64
	SessionsFailed   atomic.Uint64
	RecordsSeen      atomic.Uint64
	ResultsEmitted   atomic.Uint64
}

// snapshot is the JSON shape of /stats.
type snapshot struct {
	SessionsStarted  uint64 `json:"sessions_started"`
	SessionsFinished uint64 `json:"sessions_finished"`
	SessionsFailed   uint64 `json:"sessions_failed"`
	SessionsActive   uint64 `json:"sessions_active"`
	RecordsSeen      uint64 `json:"records_seen"`
	ResultsEmitted   uint64 `json:"results_emitted"`
}

// Snapshot returns the current counter values.
func (m *Monitor) Snapshot() map[string]uint64 {
	started := m.SessionsStarted.Load()
	finished := m.SessionsFinished.Load()
	failed := m.SessionsFailed.Load()
	return map[string]uint64{
		"sessions_started":  started,
		"sessions_finished": finished,
		"sessions_failed":   failed,
		"sessions_active":   started - finished - failed,
		"records_seen":      m.RecordsSeen.Load(),
		"results_emitted":   m.ResultsEmitted.Load(),
	}
}

// Handler serves GET /stats (JSON counters) and GET /healthz ("ok").
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		started := m.SessionsStarted.Load()
		finished := m.SessionsFinished.Load()
		failed := m.SessionsFailed.Load()
		s := snapshot{
			SessionsStarted:  started,
			SessionsFinished: finished,
			SessionsFailed:   failed,
			SessionsActive:   started - finished - failed,
			RecordsSeen:      m.RecordsSeen.Load(),
			ResultsEmitted:   m.ResultsEmitted.Load(),
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
