package remote

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"repro/internal/metrics"
)

// Monitor aggregates worker-process counters and serves them over HTTP —
// the operational surface a deployed worker needs. Wire it with
// ServeWorkerMonitored and mount Handler on any mux.
type Monitor struct {
	SessionsStarted  atomic.Uint64
	SessionsFinished atomic.Uint64
	SessionsFailed   atomic.Uint64
	RecordsSeen      atomic.Uint64
	ResultsEmitted   atomic.Uint64
	// SessionLatency tracks wall time per completed session (failures
	// included).
	SessionLatency metrics.SyncLatency
}

// snapshot is the JSON shape of /stats.
type snapshot struct {
	SessionsStarted  uint64 `json:"sessions_started"`
	SessionsFinished uint64 `json:"sessions_finished"`
	SessionsFailed   uint64 `json:"sessions_failed"`
	SessionsActive   uint64 `json:"sessions_active"`
	RecordsSeen      uint64 `json:"records_seen"`
	ResultsEmitted   uint64 `json:"results_emitted"`
	SessionUsP50     uint64 `json:"session_us_p50"`
	SessionUsP99     uint64 `json:"session_us_p99"`
}

// Snapshot returns the current counter values. Session latency quantiles
// are reported in microseconds.
func (m *Monitor) Snapshot() map[string]uint64 {
	started := m.SessionsStarted.Load()
	finished := m.SessionsFinished.Load()
	failed := m.SessionsFailed.Load()
	lat := m.SessionLatency.Snapshot()
	return map[string]uint64{
		"sessions_started":  started,
		"sessions_finished": finished,
		"sessions_failed":   failed,
		"sessions_active":   started - finished - failed,
		"records_seen":      m.RecordsSeen.Load(),
		"results_emitted":   m.ResultsEmitted.Load(),
		"session_us_p50":    uint64(lat.Quantile(0.5).Microseconds()),
		"session_us_p99":    uint64(lat.Quantile(0.99).Microseconds()),
	}
}

// Handler serves GET /stats (JSON counters) and GET /healthz ("ok").
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		started := m.SessionsStarted.Load()
		finished := m.SessionsFinished.Load()
		failed := m.SessionsFailed.Load()
		lat := m.SessionLatency.Snapshot()
		s := snapshot{
			SessionsStarted:  started,
			SessionsFinished: finished,
			SessionsFailed:   failed,
			SessionsActive:   started - finished - failed,
			RecordsSeen:      m.RecordsSeen.Load(),
			ResultsEmitted:   m.ResultsEmitted.Load(),
			SessionUsP50:     uint64(lat.Quantile(0.5).Microseconds()),
			SessionUsP99:     uint64(lat.Quantile(0.99).Microseconds()),
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
