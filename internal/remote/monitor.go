package remote

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Monitor aggregates worker-process counters and serves them over HTTP —
// the operational surface a deployed worker needs. Wire it with
// ServeWorkerMonitored and mount Handler on any mux; RegisterMetrics
// additionally exposes everything through an obs.Registry for /metrics
// scraping and the coordinator's cluster table.
type Monitor struct {
	SessionsStarted  atomic.Uint64
	SessionsFinished atomic.Uint64
	SessionsFailed   atomic.Uint64
	RecordsSeen      atomic.Uint64
	ResultsEmitted   atomic.Uint64
	// InFlightRecords counts records currently being processed across all
	// sessions — the worker's instantaneous queue depth.
	InFlightRecords atomic.Int64
	// CheckpointsWritten counts window checkpoints persisted by
	// fault-tolerant sessions (periodic and on unclean exit).
	CheckpointsWritten atomic.Uint64
	// SessionsResumed counts FT sessions whose window was restored from a
	// checkpoint at handshake.
	SessionsResumed atomic.Uint64
	// DuplicateRecords counts records dropped by the FT replay/duplicate
	// filter (ID at or below the resume cursor).
	DuplicateRecords atomic.Uint64
	// UnackedResults gauges results buffered by durable sessions awaiting a
	// coordinator durability acknowledgement — the worker-side backpressure
	// signal. Grows without bound if the coordinator stops acking.
	UnackedResults atomic.Int64
	// PausedSessions gauges sessions that asked their coordinator to pause
	// the record stream (unacked buffer over the high watermark).
	PausedSessions atomic.Int64
	// SessionLatency tracks wall time per completed session (failures
	// included).
	SessionLatency metrics.SyncLatency
	// RecordLatency tracks per-record processing time (read to step
	// completion) across sessions.
	RecordLatency metrics.SyncLatency
	// LastTraceID remembers the most recent traced record's trace id —
	// the exemplar the health engine attaches to firing rules.
	LastTraceID atomic.Uint64
	// Health, when set, backs /healthz?detail=1 with rule states.
	Health *obs.HealthEngine
	// RecordExemplars receives (latency, trace id) exemplars for traced
	// records; bound to the worker_record_seconds family by
	// RegisterMetrics, nil (and ignored) before that.
	RecordExemplars *obs.ExemplarStore

	lastCkptNs atomic.Int64 // unix ns of the newest checkpoint write

	// rate state for Load and HealthSignals, guarded by rateMu. The two
	// windows are independent: the /metrics scrape and the health loop
	// each see the rate since their own previous reading.
	rateMu     sync.Mutex
	lastCount  uint64    // guarded by rateMu
	lastTime   time.Time // guarded by rateMu
	hLastCount uint64    // guarded by rateMu
	hLastTime  time.Time // guarded by rateMu
}

// Load returns the record throughput (records/second) since the previous
// Load call — a scrape-to-scrape rate gauge. The first call primes the
// window and returns 0.
func (m *Monitor) Load() float64 {
	m.rateMu.Lock()
	defer m.rateMu.Unlock()
	now := time.Now()
	count := m.RecordsSeen.Load()
	if m.lastTime.IsZero() {
		m.lastTime, m.lastCount = now, count
		return 0
	}
	dt := now.Sub(m.lastTime).Seconds()
	if dt <= 0 {
		return 0
	}
	rate := float64(count-m.lastCount) / dt
	m.lastTime, m.lastCount = now, count
	return rate
}

// MarkCheckpoint stamps the time of the newest checkpoint write; the
// worker_checkpoint_age_seconds gauge and the checkpoint_lag_s health
// signal measure from this stamp.
func (m *Monitor) MarkCheckpoint() {
	m.lastCkptNs.Store(time.Now().UnixNano())
}

// CheckpointAge returns seconds since the last checkpoint write, or -1 if
// no checkpoint has been written yet.
func (m *Monitor) CheckpointAge() float64 {
	ns := m.lastCkptNs.Load()
	if ns == 0 {
		return -1
	}
	return time.Since(time.Unix(0, ns)).Seconds()
}

// ObserveTraced records a traced record's latency exemplar and remembers
// its trace id for health-rule linkage. The latency itself is observed
// through RecordLatency by the caller; this only adds the trace-id side.
func (m *Monitor) ObserveTraced(d time.Duration, traceID uint64) {
	if traceID == 0 {
		return
	}
	m.LastTraceID.Store(traceID)
	m.RecordExemplars.Observe(d.Seconds(), traceID)
}

// HealthSignals returns the signal map a HealthEngine evaluates for this
// worker: instantaneous queue depth, record rate since the previous
// HealthSignals call (a window independent of Load's scrape window),
// latency quantiles in milliseconds, and checkpoint lag in seconds
// (omitted until a first checkpoint exists, so the rule stays silent on
// non-FT workers).
func (m *Monitor) HealthSignals() map[string]float64 {
	inflight := m.InFlightRecords.Load()
	if inflight < 0 {
		inflight = 0
	}
	m.rateMu.Lock()
	now := time.Now()
	count := m.RecordsSeen.Load()
	var rate float64
	if !m.hLastTime.IsZero() {
		if dt := now.Sub(m.hLastTime).Seconds(); dt > 0 {
			rate = float64(count-m.hLastCount) / dt
		}
	}
	m.hLastTime, m.hLastCount = now, count
	m.rateMu.Unlock()
	rlat := m.RecordLatency.Snapshot()
	started := m.SessionsStarted.Load()
	done := m.SessionsFinished.Load() + m.SessionsFailed.Load()
	sig := map[string]float64{
		"queue":   float64(inflight),
		"load":    rate,
		"p50_ms":  float64(rlat.Quantile(0.5).Microseconds()) / 1e3,
		"p99_ms":  float64(rlat.Quantile(0.99).Microseconds()) / 1e3,
		"records": float64(count),
		"results": float64(m.ResultsEmitted.Load()),
		"sessions_active": func() float64 {
			if started < done {
				return 0
			}
			return float64(started - done)
		}(),
	}
	if age := m.CheckpointAge(); age >= 0 {
		sig["checkpoint_lag_s"] = age
	}
	unacked := m.UnackedResults.Load()
	if unacked < 0 {
		unacked = 0
	}
	sig["unacked"] = float64(unacked)
	paused := m.PausedSessions.Load()
	if paused < 0 {
		paused = 0
	}
	sig["paused"] = float64(paused)
	return sig
}

// Snapshot returns the current counter values. Session latency quantiles
// are reported in microseconds.
func (m *Monitor) Snapshot() map[string]uint64 {
	started := m.SessionsStarted.Load()
	finished := m.SessionsFinished.Load()
	failed := m.SessionsFailed.Load()
	lat := m.SessionLatency.Snapshot()
	rlat := m.RecordLatency.Snapshot()
	inflight := m.InFlightRecords.Load()
	if inflight < 0 {
		inflight = 0
	}
	unacked := m.UnackedResults.Load()
	if unacked < 0 {
		unacked = 0
	}
	paused := m.PausedSessions.Load()
	if paused < 0 {
		paused = 0
	}
	return map[string]uint64{
		"sessions_started":  started,
		"sessions_finished": finished,
		"sessions_failed":   failed,
		"sessions_active":   started - finished - failed,
		"sessions_resumed":  m.SessionsResumed.Load(),
		"unacked_results":   uint64(unacked),
		"paused_sessions":   uint64(paused),
		"records_seen":      m.RecordsSeen.Load(),
		"results_emitted":   m.ResultsEmitted.Load(),
		"inflight_records":  uint64(inflight),
		"checkpoints":       m.CheckpointsWritten.Load(),
		"duplicate_records": m.DuplicateRecords.Load(),
		"session_us_p50":    uint64(lat.Quantile(0.5).Microseconds()),
		"session_us_p99":    uint64(lat.Quantile(0.99).Microseconds()),
		"record_us_p50":     uint64(rlat.Quantile(0.5).Microseconds()),
		"record_us_p99":     uint64(rlat.Quantile(0.99).Microseconds()),
	}
}

// RegisterMetrics exposes the monitor through reg: the session/record
// counters, the in-flight queue-depth gauge, the scrape-to-scrape load
// gauge, and the latency histograms the cluster table reads p50/p99 from.
func (m *Monitor) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("worker_sessions_started_total",
		"Join sessions accepted by this worker.",
		func() float64 { return float64(m.SessionsStarted.Load()) })
	reg.CounterFunc("worker_sessions_finished_total",
		"Join sessions completed without error.",
		func() float64 { return float64(m.SessionsFinished.Load()) })
	reg.CounterFunc("worker_sessions_failed_total",
		"Join sessions ended with an error.",
		func() float64 { return float64(m.SessionsFailed.Load()) })
	reg.CounterFunc("worker_records_total",
		"Records received across all sessions.",
		func() float64 { return float64(m.RecordsSeen.Load()) })
	reg.CounterFunc("worker_results_total",
		"Result pairs emitted across all sessions.",
		func() float64 { return float64(m.ResultsEmitted.Load()) })
	reg.GaugeFunc("worker_inflight_records",
		"Records currently being processed — the worker's queue depth.",
		func() float64 {
			n := m.InFlightRecords.Load()
			if n < 0 {
				n = 0
			}
			return float64(n)
		})
	reg.CounterFunc("worker_checkpoints_total",
		"Window checkpoints written by fault-tolerant sessions.",
		func() float64 { return float64(m.CheckpointsWritten.Load()) })
	reg.CounterFunc("worker_sessions_resumed_total",
		"FT sessions restored from a checkpoint at handshake.",
		func() float64 { return float64(m.SessionsResumed.Load()) })
	reg.CounterFunc("worker_duplicate_records_total",
		"Records dropped by the FT replay/duplicate filter.",
		func() float64 { return float64(m.DuplicateRecords.Load()) })
	reg.GaugeFunc("worker_unacked_results",
		"Results buffered by durable sessions awaiting coordinator acknowledgement.",
		func() float64 {
			n := m.UnackedResults.Load()
			if n < 0 {
				n = 0
			}
			return float64(n)
		})
	reg.GaugeFunc("worker_paused_sessions",
		"Sessions that asked the coordinator to pause the record stream.",
		func() float64 {
			n := m.PausedSessions.Load()
			if n < 0 {
				n = 0
			}
			return float64(n)
		})
	reg.GaugeFunc("worker_load",
		"Record throughput (records/second) since the previous scrape.",
		m.Load)
	reg.HistogramFunc("worker_session_seconds",
		"Wall time per completed join session.",
		m.SessionLatency.Snapshot)
	reg.HistogramFunc("worker_record_seconds",
		"Per-record processing time, frame read to step completion.",
		m.RecordLatency.Snapshot)
	reg.GaugeFunc("worker_checkpoint_age_seconds",
		"Seconds since the last checkpoint write; -1 before the first.",
		m.CheckpointAge)
	// Traced records land latency exemplars here; WriteExposition attaches
	// them to worker_record_seconds _bucket lines.
	m.RecordExemplars = reg.ExemplarsFor("worker_record_seconds")
}

// Handler serves GET /stats (JSON counters, keys sorted) and GET /healthz
// ("ok").
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("detail") == "1" {
			st := m.Health.Status() // nil-safe: empty, healthy status
			w.Header().Set("Content-Type", "application/json")
			if !st.Healthy {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(st) //nolint:errcheck — best effort over HTTP
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Snapshot returns a map; encoding/json emits map keys in sorted
		// order, so scrapes diff cleanly.
		if err := json.NewEncoder(w).Encode(m.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
