package remote

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMonitorHandlerContentTypes pins the HTTP contract: /healthz and
// /stats declare their media types, and /stats renders keys in sorted
// order so scrapes diff cleanly.
func TestMonitorHandlerContentTypes(t *testing.T) {
	var mon Monitor
	mon.SessionsStarted.Add(2)
	mon.SessionsFinished.Add(2)
	mon.RecordsSeen.Add(10)
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("healthz content type: %q", ct)
	}
	if string(body) != "ok\n" {
		t.Fatalf("healthz body: %q", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("stats content type: %q", ct)
	}
	// Keys must appear in sorted order in the raw JSON text.
	var prev string
	rest := string(raw)
	for {
		i := strings.IndexByte(rest, '"')
		if i < 0 {
			break
		}
		rest = rest[i+1:]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			break
		}
		key := rest[:j]
		rest = rest[j+1:]
		if prev != "" && key < prev {
			t.Fatalf("stats keys out of order: %q after %q in %s", key, prev, raw)
		}
		prev = key
	}
	if !strings.Contains(string(raw), `"records_seen":10`) {
		t.Fatalf("stats body: %s", raw)
	}
}

// TestScrapeWorkerAndClusterTable stands up a worker-style debug mux with
// the monitor registered, scrapes it over HTTP, and checks the status row
// and rendered table.
func TestScrapeWorkerAndClusterTable(t *testing.T) {
	var mon Monitor
	mon.SessionsStarted.Add(3)
	mon.SessionsFinished.Add(2)
	mon.RecordsSeen.Add(1000)
	mon.ResultsEmitted.Add(40)
	mon.InFlightRecords.Add(5)
	for i := 0; i < 100; i++ {
		mon.RecordLatency.Observe(2 * time.Millisecond)
	}
	reg := obs.NewRegistry()
	mon.RegisterMetrics(reg)
	srv := httptest.NewServer(obs.NewDebugMux(reg, nil))
	defer srv.Close()

	pm, err := ScrapeWorker(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	st := StatusFrom(srv.URL, pm)
	if !st.Up || st.Records != 1000 || st.Results != 40 || st.QueueDepth != 5 {
		t.Fatalf("status: %+v", st)
	}
	if st.SessionsActive != 1 {
		t.Fatalf("active sessions: %+v", st)
	}
	// All observations are 2ms; the log2-bucketed quantile must land within
	// one bucket of that (2-4ms).
	if st.P50Us < 1000 || st.P50Us > 5000 {
		t.Fatalf("p50: %+v", st)
	}

	sts := ScrapeCluster(context.Background(), srv.Client(),
		[]string{srv.URL, "127.0.0.1:1"}, time.Second)
	if len(sts) != 2 || !sts[0].Up || sts[1].Up || sts[1].Err == nil {
		t.Fatalf("cluster: %+v", sts)
	}

	var buf bytes.Buffer
	if err := ClusterTable(&buf, sts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "down") || !strings.Contains(out, "1000") ||
		!strings.Contains(out, "TOTAL") {
		t.Fatalf("table:\n%s", out)
	}
}

// TestMonitorLoadRate checks the scrape-to-scrape throughput gauge.
func TestMonitorLoadRate(t *testing.T) {
	var mon Monitor
	if mon.Load() != 0 {
		t.Fatal("first Load() should prime and return 0")
	}
	mon.RecordsSeen.Add(500)
	time.Sleep(20 * time.Millisecond)
	rate := mon.Load()
	if rate <= 0 {
		t.Fatalf("rate: %v", rate)
	}
}
