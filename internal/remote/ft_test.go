package remote

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultwire"
	"repro/internal/record"
	"repro/internal/window"
	"repro/internal/workload"
)

// fastFT returns FT settings tuned for tests: tight heartbeats, quick
// retries, generous budget.
func fastFT(sessionID uint64) FT {
	return FT{
		Retry:             RetryPolicy{MaxAttempts: 20, Base: time.Millisecond, Cap: 20 * time.Millisecond, Seed: sessionID},
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
		SessionID:         sessionID,
	}
}

// ftWorker is a restartable FT worker over loopback TCP.
type ftWorker struct {
	addr string
	mon  *Monitor
	stop context.CancelFunc
	done chan struct{}
}

func startFTWorker(t *testing.T, dir string, interval time.Duration) *ftWorker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &ftWorker{addr: ln.Addr().String(), mon: &Monitor{}, stop: cancel, done: make(chan struct{})}
	go func() {
		defer close(w.done)
		ServeWorkerOpts(ctx, ln, WorkerOpts{ //nolint:errcheck
			Logf:               silentLogf,
			Mon:                w.mon,
			CheckpointDir:      dir,
			CheckpointInterval: interval,
		})
	}()
	t.Cleanup(func() { cancel(); <-w.done })
	return w
}

// kill stops the worker and waits for its drain (checkpoint included).
func (w *ftWorker) kill() {
	w.stop()
	<-w.done
}

// tcpDialer dials the address addr returns for the task at call time.
func tcpDialer(addr func(task int) string) Dialer {
	return func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr(task))
	}
}

func pairSet(pairs []record.Pair) map[record.Pair]bool {
	out := make(map[record.Pair]bool, len(pairs))
	for _, p := range pairs {
		out[record.Pair{First: p.First, Second: p.Second}] = true
	}
	return out
}

func requireParity(t *testing.T, got []record.Pair, want map[record.Pair]bool, label string) {
	t.Helper()
	gs := pairSet(got)
	if len(gs) != len(got) {
		t.Errorf("%s: %d duplicate pairs escaped the coordinator dedup", label, len(got)-len(gs))
	}
	for p := range want {
		if !gs[p] {
			t.Errorf("%s: missing pair %v", label, p)
		}
	}
	for p := range gs {
		if !want[record.Pair{First: p.First, Second: p.Second}] {
			t.Errorf("%s: extra pair %v", label, p)
		}
	}
}

// TestRunFTMatchesSingleNode is the fault-free gate: RunFT without any
// injected faults must reproduce the single-node result set for every
// strategy, with zero retries.
func TestRunFTMatchesSingleNode(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(17)).Generate(400)
	const tau = 0.7
	want := make(map[record.Pair]bool)
	for p := range singleNodePairs(recs, tau, window.Unbounded{}) {
		want[record.Pair{First: p.First, Second: p.Second}] = true
	}
	for si, strat := range []string{"length", "prefix", "broadcast"} {
		k := 3
		sess := testSession(tau, strat, nil)
		if strat == "length" {
			sess.Bounds = boundsFor(recs, tau, k)
		}
		workers := make([]*ftWorker, k)
		for i := range workers {
			workers[i] = startFTWorker(t, t.TempDir(), time.Millisecond)
		}
		dial := tcpDialer(func(task int) string { return workers[task].addr })
		sum, err := RunFT(context.Background(), dial, k, sess, recs,
			Opts{CollectPairs: true}, fastFT(uint64(0xF00+si)))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		requireParity(t, sum.Pairs, want, strat)
		if sum.Retries != 0 || sum.Reconnects != 0 || sum.Degraded {
			t.Errorf("%s: clean run reported retries=%d reconnects=%d degraded=%v",
				strat, sum.Retries, sum.Reconnects, sum.Degraded)
		}
		if sum.Records != uint64(len(recs)) {
			t.Errorf("%s: records = %d, want %d", strat, sum.Records, len(recs))
		}
	}
}

// TestRunFTReconnectResume severs each worker's first connection
// mid-stream; the coordinator must reconnect, resume from the worker's
// checkpoint, and still produce the exact result set.
func TestRunFTReconnectResume(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(23)).Generate(600)
	const tau = 0.7
	want := make(map[record.Pair]bool)
	for p := range singleNodePairs(recs, tau, window.Unbounded{}) {
		want[record.Pair{First: p.First, Second: p.Second}] = true
	}
	k := 3
	sess := testSession(tau, "length", boundsFor(recs, tau, k))
	workers := make([]*ftWorker, k)
	for i := range workers {
		workers[i] = startFTWorker(t, t.TempDir(), time.Millisecond)
	}
	var attempts [3]atomic.Int64
	dial := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", workers[task].addr)
		if err != nil {
			return nil, err
		}
		if attempts[task].Add(1) == 1 {
			// First connection dies after 60 outbound frames.
			return faultwire.Wrap(c, faultwire.Config{SeverAfterFrames: 60}), nil
		}
		return c, nil
	}
	sum, err := RunFT(context.Background(), dial, k, sess, recs,
		Opts{CollectPairs: true}, fastFT(0xA11))
	if err != nil {
		t.Fatal(err)
	}
	requireParity(t, sum.Pairs, want, "reconnect")
	if sum.Reconnects != uint64(k) {
		t.Errorf("reconnects = %d, want %d (one per worker)", sum.Reconnects, k)
	}
	var resumed uint64
	for _, w := range workers {
		resumed += w.mon.SessionsResumed.Load()
	}
	if resumed == 0 {
		t.Error("no worker session resumed from a checkpoint")
	}
	if sum.Degraded {
		t.Error("recovered run reported degraded")
	}
}

// TestRunFTHeartbeatDetectsHang connects to a worker that accepts the
// connection and then goes silent. The watchdog must sever it and, with no
// retry budget and degradation off, fail the run promptly.
func TestRunFTHeartbeatDetectsHang(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow frames forever, never answer.
			go io.Copy(io.Discard, c) //nolint:errcheck
		}
	}()
	recs := workload.NewGenerator(workload.UniformSmall(5)).Generate(50)
	sess := testSession(0.7, "broadcast", nil)
	ft := FT{
		Retry:             RetryPolicy{MaxAttempts: 0},
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
		SessionID:         0xDEAD,
	}
	dial := tcpDialer(func(int) string { return ln.Addr().String() })
	start := time.Now()
	_, err = RunFT(context.Background(), dial, 1, sess, recs, Opts{}, ft)
	if err == nil {
		t.Fatal("run over a hung worker succeeded")
	}
	if !strings.Contains(err.Error(), "dead after") {
		t.Fatalf("error = %v, want a dead-worker report", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang detection took %v", elapsed)
	}
}

// TestRunFTDegradedRebalance kills worker 1 permanently mid-run with
// degradation on: the run must complete on the survivors with the exact
// result set and report the rebalanced partition.
func TestRunFTDegradedRebalance(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(29)).Generate(600)
	const tau = 0.7
	want := make(map[record.Pair]bool)
	for p := range singleNodePairs(recs, tau, window.Unbounded{}) {
		want[record.Pair{First: p.First, Second: p.Second}] = true
	}
	k := 3
	sess := testSession(tau, "length", boundsFor(recs, tau, k))
	workers := make([]*ftWorker, k)
	for i := range workers {
		workers[i] = startFTWorker(t, t.TempDir(), time.Millisecond)
	}
	var attempts [3]atomic.Int64
	dial := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		if task == 1 && attempts[task].Add(1) > 1 {
			return nil, errors.New("injected: worker 1 is gone")
		}
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", workers[task].addr)
		if err != nil {
			return nil, err
		}
		if task == 1 {
			return faultwire.Wrap(c, faultwire.Config{SeverAfterFrames: 40}), nil
		}
		return c, nil
	}
	ft := fastFT(0xDE6)
	ft.Retry.MaxAttempts = 2
	ft.Degraded = true
	sum, err := RunFT(context.Background(), dial, k, sess, recs, Opts{CollectPairs: true}, ft)
	if err != nil {
		t.Fatal(err)
	}
	requireParity(t, sum.Pairs, want, "degraded")
	if !sum.Degraded {
		t.Error("run did not report degraded")
	}
	if len(sum.DeadWorkers) != 1 || sum.DeadWorkers[0] != 1 {
		t.Errorf("dead workers = %v, want [1]", sum.DeadWorkers)
	}
	if len(sum.RebalancedBounds) != k {
		t.Errorf("rebalanced bounds = %v, want %d entries", sum.RebalancedBounds, k)
	}
	// Worker 1's interval must have collapsed onto a survivor: its bound
	// equals its left neighbour's.
	if len(sum.RebalancedBounds) == k && sum.RebalancedBounds[1] != sum.RebalancedBounds[0] {
		t.Errorf("dead worker keeps a non-empty interval: bounds %v", sum.RebalancedBounds)
	}
}

// TestRunFTDeadWorkerWithoutDegradedFails mirrors the degraded test with
// degradation off: the run must fail and name the dead worker.
func TestRunFTDeadWorkerWithoutDegradedFails(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(3)).Generate(100)
	sess := testSession(0.7, "broadcast", nil)
	dial := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		return nil, errors.New("injected: refused")
	}
	ft := fastFT(0xFA11)
	ft.Retry.MaxAttempts = 1
	_, err := RunFT(context.Background(), dial, 2, sess, recs, Opts{}, ft)
	if err == nil {
		t.Fatal("run with an unreachable worker succeeded")
	}
	if !strings.Contains(err.Error(), "dead after") {
		t.Fatalf("error = %v, want dead-worker report", err)
	}
}

// TestRunFTKilledWorkerRejoins is the checkpoint-recovery acceptance
// test: a worker process is stopped mid-run and a fresh process restarted
// over the same checkpoint directory must rejoin, resume, and the run
// finish exactly.
func TestRunFTKilledWorkerRejoins(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(41)).Generate(3000)
	const tau = 0.75
	want := make(map[record.Pair]bool)
	for p := range singleNodePairs(recs, tau, window.Unbounded{}) {
		want[record.Pair{First: p.First, Second: p.Second}] = true
	}
	dir := t.TempDir()
	first := startFTWorker(t, dir, time.Millisecond)

	var addr atomic.Value
	addr.Store(first.addr)
	dial := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", addr.Load().(string))
		if err != nil {
			return nil, err
		}
		// Throttle the stream so the kill lands mid-run.
		return faultwire.Wrap(c, faultwire.Config{DelayPerMille: 1000, Delay: 100 * time.Microsecond}), nil
	}
	sess := testSession(tau, "broadcast", nil)
	ft := fastFT(0x4E40)
	ft.Retry = RetryPolicy{MaxAttempts: 50, Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond}

	type result struct {
		sum *RunSummary
		err error
	}
	done := make(chan result, 1)
	go func() {
		sum, err := RunFT(context.Background(), dial, 1, sess, recs, Opts{CollectPairs: true}, ft)
		done <- result{sum, err}
	}()

	// Wait for real progress, then kill the worker process.
	deadline := time.Now().Add(10 * time.Second)
	for first.mon.RecordsSeen.Load() < 500 {
		if time.Now().After(deadline) {
			t.Fatal("worker made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	first.kill()
	second := startFTWorker(t, dir, time.Millisecond)
	addr.Store(second.addr)

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	requireParity(t, res.sum.Pairs, want, "rejoin")
	if res.sum.Reconnects == 0 {
		t.Error("no reconnect recorded")
	}
	if second.mon.SessionsResumed.Load() == 0 {
		t.Error("restarted worker did not resume from the checkpoint")
	}
	if res.sum.ReplayedRecords >= uint64(len(recs)) {
		t.Errorf("replayed %d of %d records — checkpoint did not shorten the replay",
			res.sum.ReplayedRecords, len(recs))
	}
}

// TestRunFTValidation covers the rejected configurations.
func TestRunFTValidation(t *testing.T) {
	dial := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		return nil, errors.New("must not dial")
	}
	recs := []*record.Record{}
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero workers", func() error {
			_, err := RunFT(context.Background(), dial, 0, testSession(0.7, "broadcast", nil), recs, Opts{}, FT{})
			return err
		}},
		{"bi session", func() error {
			s := testSession(0.7, "broadcast", nil)
			s.Bi = true
			_, err := RunFT(context.Background(), dial, 1, s, recs, Opts{}, FT{})
			return err
		}},
		{"snapshot opts", func() error {
			_, err := RunFT(context.Background(), dial, 1, testSession(0.7, "broadcast", nil), recs, Opts{Snapshot: true}, FT{})
			return err
		}},
		{"bad strategy", func() error {
			_, err := RunFT(context.Background(), dial, 1, testSession(0.7, "nope", nil), recs, Opts{}, FT{})
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestDialClosesPartialConns is the regression gate for Dial's partial
// failure path: when a later address fails, connections already opened
// must be closed, not leaked.
func TestDialClosesPartialConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	// Second address: a listener we close immediately — connection refused.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	_, err = Dial(context.Background(), []string{ln.Addr().String(), deadAddr}, time.Second)
	if err == nil {
		t.Fatal("Dial succeeded with an unreachable address")
	}
	select {
	case c := <-accepted:
		c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		if _, rerr := c.Read(make([]byte, 1)); rerr != io.EOF {
			t.Errorf("accepted conn read = %v, want EOF (closed by Dial)", rerr)
		}
		c.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("first address was never dialed")
	}
}

// TestDialRetryEventuallyConnects starts the listener only after the first
// attempts fail, proving the backoff loop retries rather than giving up.
func TestDialRetryEventuallyConnects(t *testing.T) {
	// Reserve an address, then free it so the first dial fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		ln2, lerr := net.Listen("tcp", addr)
		if lerr != nil {
			return // port raced away; the dial side will fail the test
		}
		c, aerr := ln2.Accept()
		if aerr == nil {
			c.Close()
		}
		ln2.Close()
	}()
	policy := RetryPolicy{MaxAttempts: 40, Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond}
	conns, err := DialRetry(context.Background(), []string{addr}, time.Second, policy)
	if err != nil {
		t.Fatalf("DialRetry never connected: %v", err)
	}
	for _, c := range conns {
		c.Close()
	}
	wg.Wait()
}

// TestRetryPolicyBackoff pins the backoff envelope: exponential growth
// from Base, jitter within [d/2, d), capped at Cap, deterministic per
// (seed, attempt, seq).
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 7}
	for attempt := 1; attempt <= 6; attempt++ {
		raw := p.Base * (1 << (attempt - 1))
		if raw > p.Cap {
			raw = p.Cap
		}
		d := p.backoff(attempt, 3)
		if d < raw/2 || d >= raw {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d, raw/2, raw)
		}
		if d2 := p.backoff(attempt, 3); d2 != d {
			t.Errorf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d, d2)
		}
	}
	if (RetryPolicy{}).backoff(1, 0) != 0 {
		t.Error("zero policy should not pause")
	}
}
