package remote

import (
	"context"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultwire"
	"repro/internal/record"
	"repro/internal/window"
	"repro/internal/workload"
)

// chaosBaseline runs the same session fault-free over plain Run and
// returns its result set — the ground truth the chaotic run must match
// exactly. Run (not the single-node joiner) is the right baseline: it has
// identical per-worker stream semantics, including windowed eviction.
func chaosBaseline(t *testing.T, k int, sess Session, recs []*record.Record) map[record.Pair]bool {
	t.Helper()
	conns := startWorkers(t, k)
	sum, err := Run(context.Background(), asRW(conns), sess, recs, true)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return pairSet(sum.Pairs)
}

// TestChaosSeededFaultParity is the acceptance gate for the fault
// injection harness: a run with seeded severs, duplicated frames and
// delays on every connection must produce exactly the fault-free result
// set. Each worker's first connection is severed deterministically
// mid-stream; every connection additionally carries probabilistic faults
// from the fixed seed. Windows are bounded so checkpoint/restore runs
// through real eviction state.
func TestChaosSeededFaultParity(t *testing.T) {
	const chaosSeed = 0xC4405
	recs := workload.NewGenerator(workload.UniformSmall(83)).Generate(1200)
	const tau = 0.7
	for _, strat := range []string{"length", "broadcast"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			k := 3
			sess := testSession(tau, strat, nil)
			sess.Window = window.Count{N: 128}
			if strat == "length" {
				sess.Bounds = boundsFor(recs, tau, k)
			}
			want := chaosBaseline(t, k, sess, recs)

			workers := make([]*ftWorker, k)
			for i := range workers {
				workers[i] = startFTWorker(t, t.TempDir(), 2*time.Millisecond)
			}
			var attempts [3]atomic.Int64
			dial := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
				var d net.Dialer
				c, err := d.DialContext(ctx, "tcp", workers[task].addr)
				if err != nil {
					return nil, err
				}
				n := attempts[task].Add(1)
				cfg := faultwire.Config{
					// Fresh sub-seed per attempt so a retried connection
					// doesn't replay the exact fault schedule that killed
					// its predecessor.
					Seed:          chaosSeed ^ uint64(task)<<16 ^ uint64(n),
					SeverPerMille: 2,
					DupPerMille:   20,
					DelayPerMille: 5,
					Delay:         200 * time.Microsecond,
				}
				if n == 1 {
					// Deterministic anchor: the first connection always
					// dies mid-stream.
					cfg.SeverAfterFrames = 80
				}
				return faultwire.Wrap(c, cfg), nil
			}
			ft := FT{
				Retry:             RetryPolicy{MaxAttempts: 100, Base: time.Millisecond, Cap: 20 * time.Millisecond, Seed: chaosSeed},
				HeartbeatInterval: 10 * time.Millisecond,
				HeartbeatTimeout:  500 * time.Millisecond,
				SessionID:         chaosSeed ^ uint64(len(strat)),
			}
			sum, err := RunFT(context.Background(), dial, k, sess, recs, Opts{CollectPairs: true}, ft)
			if err != nil {
				t.Fatal(err)
			}
			requireParity(t, sum.Pairs, want, strat)
			if sum.Reconnects < uint64(k) {
				t.Errorf("reconnects = %d, want at least %d (anchored severs)", sum.Reconnects, k)
			}
			var ckpts, dups uint64
			for _, w := range workers {
				ckpts += w.mon.CheckpointsWritten.Load()
				dups += w.mon.DuplicateRecords.Load()
			}
			if ckpts == 0 {
				t.Error("no checkpoints written under chaos")
			}
			if dups == 0 {
				t.Error("duplicate filter never fired despite injected duplicates")
			}
			t.Logf("%s: reconnects=%d retries=%d replayed=%d worker_ckpts=%d worker_dups=%d",
				strat, sum.Reconnects, sum.Retries, sum.ReplayedRecords, ckpts, dups)
		})
	}
}

// TestChaosDegradedParity combines chaos with permanent loss: worker 0's
// transport fails for good partway through, degradation rebalances onto
// survivors, and the result set must still match the fault-free baseline.
// Unbounded windows: a merged replay log interleaves two workers' streams,
// which is only order-insensitive without eviction.
func TestChaosDegradedParity(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(89)).Generate(800)
	const tau = 0.7
	k := 3
	sess := testSession(tau, "length", boundsFor(recs, tau, k))
	want := chaosBaseline(t, k, sess, recs)

	workers := make([]*ftWorker, k)
	for i := range workers {
		workers[i] = startFTWorker(t, t.TempDir(), 2*time.Millisecond)
	}
	var attempts [3]atomic.Int64
	dial := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
		n := attempts[task].Add(1)
		if task == 0 && n > 1 {
			return nil, io.ErrClosedPipe // worker 0 never comes back
		}
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", workers[task].addr)
		if err != nil {
			return nil, err
		}
		if task == 0 {
			return faultwire.Wrap(c, faultwire.Config{SeverAfterFrames: 50}), nil
		}
		return faultwire.Wrap(c, faultwire.Config{
			Seed:        0xDE64 ^ uint64(task)<<16 ^ uint64(n),
			DupPerMille: 15,
		}), nil
	}
	ft := FT{
		Retry:             RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Cap: 10 * time.Millisecond},
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		SessionID:         0xDE64,
		Degraded:          true,
	}
	sum, err := RunFT(context.Background(), dial, k, sess, recs, Opts{CollectPairs: true}, ft)
	if err != nil {
		t.Fatal(err)
	}
	requireParity(t, sum.Pairs, want, "chaos-degraded")
	if !sum.Degraded || len(sum.DeadWorkers) != 1 || sum.DeadWorkers[0] != 0 {
		t.Errorf("degraded=%v dead=%v, want degraded with worker 0 dead", sum.Degraded, sum.DeadWorkers)
	}
}
