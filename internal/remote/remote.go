// Package remote runs the distributed join over real network connections:
// a coordinator process dispatches records to worker processes speaking
// the wire protocol over TCP. It is the multi-process counterpart of
// internal/topology's in-process engine: the same strategies, joiners and
// windows, but with serialization and sockets on the path — the deployment
// shape the paper's Storm cluster has.
//
// Protocol per connection (one join session):
//
//	coordinator → worker: Hello, Record*, EOF
//	worker → coordinator: Result*, Stats, close
//
// The coordinator runs one reader goroutine per worker so result
// backpressure can never deadlock record dispatch.
package remote

import (
	"fmt"

	"repro/internal/bundle"
	"repro/internal/dispatch"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/partition"
	"repro/internal/similarity"
	"repro/internal/window"
	"repro/internal/wire"
)

// Session is the join configuration shared by coordinator and workers.
type Session struct {
	Params    filter.Params
	Algorithm local.Algorithm
	Window    window.Policy // nil = unbounded
	Bundle    bundle.Config
	// Strategy kind and, for the length strategy, the partition bounds.
	Strategy string // "length", "prefix", "broadcast"
	Bounds   []int
	// Bi selects a two-stream session: records carry sides and match only
	// across sides. Snapshot seeding/collection is not supported for bi
	// sessions.
	Bi bool
}

// hello encodes the session for worker task of workers.
func (s Session) hello(task, workers int) (wire.Hello, error) {
	h := wire.Hello{
		Version:        wire.Version,
		Task:           task,
		Workers:        workers,
		Func:           int(s.Params.Func),
		Threshold:      s.Params.Threshold,
		Algorithm:      int(s.Algorithm),
		Bounds:         s.Bounds,
		GroupThreshold: s.Bundle.GroupThreshold,
		MaxMembers:     s.Bundle.MaxMembers,
		OneByOne:       s.Bundle.OneByOneVerify,
		Bi:             s.Bi,
	}
	switch w := s.Window.(type) {
	case nil, window.Unbounded:
		h.WindowKind = 0
	case window.Count:
		h.WindowKind = 1
		h.WindowN = w.N
	case window.Time:
		h.WindowKind = 2
		h.WindowN = w.Span
	default:
		return h, fmt.Errorf("remote: unsupported window %T", s.Window)
	}
	switch s.Strategy {
	case "length":
		h.Strategy = 0
		if len(s.Bounds) != workers {
			return h, fmt.Errorf("remote: length strategy needs %d bounds, got %d", workers, len(s.Bounds))
		}
	case "prefix":
		h.Strategy = 1
	case "broadcast":
		h.Strategy = 2
	default:
		return h, fmt.Errorf("remote: unknown strategy %q", s.Strategy)
	}
	return h, nil
}

// sessionFromHello reconstructs the worker-side session.
func sessionFromHello(h wire.Hello) (Session, dispatch.Strategy, error) {
	s := Session{
		Params: filter.Params{
			Func:      similarity.Func(h.Func),
			Threshold: h.Threshold,
		},
		Algorithm: local.Algorithm(h.Algorithm),
		Bundle: bundle.Config{
			GroupThreshold: h.GroupThreshold,
			MaxMembers:     h.MaxMembers,
			OneByOneVerify: h.OneByOne,
		},
		Bounds: h.Bounds,
		Bi:     h.Bi,
	}
	switch h.WindowKind {
	case 0:
		s.Window = window.Unbounded{}
	case 1:
		s.Window = window.Count{N: h.WindowN}
	case 2:
		s.Window = window.Time{Span: h.WindowN}
	default:
		return s, nil, fmt.Errorf("remote: unknown window kind %d", h.WindowKind)
	}
	var strat dispatch.Strategy
	switch h.Strategy {
	case 0:
		s.Strategy = "length"
		strat = dispatch.NewLengthBased(s.Params, partition.Partition{Bounds: h.Bounds})
	case 1:
		s.Strategy = "prefix"
		strat = dispatch.PrefixBased{Params: s.Params}
	case 2:
		s.Strategy = "broadcast"
		strat = dispatch.BroadcastBased{}
	default:
		return s, nil, fmt.Errorf("remote: unknown strategy %d", h.Strategy)
	}
	if s.Params.Threshold <= 0 {
		return s, nil, fmt.Errorf("remote: non-positive threshold %v", s.Params.Threshold)
	}
	return s, strat, nil
}

// strategyFor builds the coordinator-side routing strategy.
func (s Session) strategyFor(workers int) (dispatch.Strategy, error) {
	switch s.Strategy {
	case "length":
		if len(s.Bounds) != workers {
			return nil, fmt.Errorf("remote: length strategy needs %d bounds, got %d", workers, len(s.Bounds))
		}
		return dispatch.NewLengthBased(s.Params, partition.Partition{Bounds: s.Bounds}), nil
	case "prefix":
		return dispatch.PrefixBased{Params: s.Params}, nil
	case "broadcast":
		return dispatch.BroadcastBased{}, nil
	default:
		return nil, fmt.Errorf("remote: unknown strategy %q", s.Strategy)
	}
}
