// Package remote runs the distributed join over real network connections:
// a coordinator process dispatches records to worker processes speaking
// the wire protocol over TCP. It is the multi-process counterpart of
// internal/topology's in-process engine: the same strategies, joiners and
// windows, but with serialization and sockets on the path — the deployment
// shape the paper's Storm cluster has.
//
// Protocol per connection (one join session):
//
//	coordinator → worker: Hello, Record*, EOF
//	worker → coordinator: Result*, Stats, close
//
// The coordinator runs one reader goroutine per worker so result
// backpressure can never deadlock record dispatch.
package remote

import (
	"fmt"
	"math"

	"repro/internal/bundle"
	"repro/internal/dispatch"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/partition"
	"repro/internal/similarity"
	"repro/internal/window"
	"repro/internal/wire"
)

// Session is the join configuration shared by coordinator and workers.
type Session struct {
	Params    filter.Params
	Algorithm local.Algorithm
	Window    window.Policy // nil = unbounded
	Bundle    bundle.Config
	// Strategy kind and, for the length strategy, the partition bounds.
	Strategy string // "length", "prefix", "broadcast"
	Bounds   []int
	// Bi selects a two-stream session: records carry sides and match only
	// across sides. Snapshot seeding/collection is not supported for bi
	// sessions.
	Bi bool
}

// hello encodes the session for worker task of workers.
func (s Session) hello(task, workers int) (wire.Hello, error) {
	h := wire.Hello{
		Version:        wire.Version,
		Task:           task,
		Workers:        workers,
		Func:           int(s.Params.Func),
		Threshold:      s.Params.Threshold,
		Algorithm:      int(s.Algorithm),
		Bounds:         s.Bounds,
		GroupThreshold: s.Bundle.GroupThreshold,
		MaxMembers:     s.Bundle.MaxMembers,
		OneByOne:       s.Bundle.OneByOneVerify,
		Bi:             s.Bi,
	}
	switch w := s.Window.(type) {
	case nil, window.Unbounded:
		h.WindowKind = 0
	case window.Count:
		h.WindowKind = 1
		h.WindowN = w.N
	case window.Time:
		h.WindowKind = 2
		h.WindowN = w.Span
	default:
		return h, fmt.Errorf("remote: unsupported window %T", s.Window)
	}
	switch s.Strategy {
	case "length":
		h.Strategy = 0
		if len(s.Bounds) != workers {
			return h, fmt.Errorf("remote: length strategy needs %d bounds, got %d", workers, len(s.Bounds))
		}
	case "prefix":
		h.Strategy = 1
	case "broadcast":
		h.Strategy = 2
	default:
		return h, fmt.Errorf("remote: unknown strategy %q", s.Strategy)
	}
	return h, nil
}

// PlanHash fingerprints the launch configuration: worker count, strategy,
// partition bounds, similarity parameters, window, bundle knobs and
// bi-stream mode. Coordinators stamp it into v4 hellos and session
// manifests; workers persist it in checkpoints so a resume against a
// *different* plan (stale checkpoint directory, edited bounds) is rejected
// instead of silently producing wrong results. FNV-1a over the canonical
// field encoding — stable across runs of the same launch config.
func (s Session) PlanHash(workers int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(workers))
	mix(uint64(len(s.Strategy)))
	for i := 0; i < len(s.Strategy); i++ {
		mix(uint64(s.Strategy[i]))
	}
	mix(uint64(len(s.Bounds)))
	for _, b := range s.Bounds {
		mix(uint64(b))
	}
	mix(uint64(s.Params.Func))
	mix(math.Float64bits(s.Params.Threshold))
	mix(uint64(s.Algorithm))
	switch w := s.Window.(type) {
	case nil, window.Unbounded:
		mix(0)
	case window.Count:
		mix(1)
		mix(uint64(w.N))
	case window.Time:
		mix(2)
		mix(uint64(w.Span))
	default:
		mix(^uint64(0))
	}
	mix(uint64(s.Bundle.GroupThreshold))
	mix(uint64(s.Bundle.MaxMembers))
	if s.Bundle.OneByOneVerify {
		mix(1)
	} else {
		mix(0)
	}
	if s.Bi {
		mix(1)
	} else {
		mix(0)
	}
	return h
}

// SessionFromHello reconstructs a Session from a wire hello — the resume
// path: a saved manifest carries the launch hello, and the relaunched
// coordinator turns it back into the Session it must re-run.
func SessionFromHello(h wire.Hello) (Session, error) {
	s, _, err := sessionFromHello(h)
	return s, err
}

// sessionFromHello reconstructs the worker-side session.
func sessionFromHello(h wire.Hello) (Session, dispatch.Strategy, error) {
	s := Session{
		Params: filter.Params{
			Func:      similarity.Func(h.Func),
			Threshold: h.Threshold,
		},
		Algorithm: local.Algorithm(h.Algorithm),
		Bundle: bundle.Config{
			GroupThreshold: h.GroupThreshold,
			MaxMembers:     h.MaxMembers,
			OneByOneVerify: h.OneByOne,
		},
		Bounds: h.Bounds,
		Bi:     h.Bi,
	}
	switch h.WindowKind {
	case 0:
		s.Window = window.Unbounded{}
	case 1:
		s.Window = window.Count{N: h.WindowN}
	case 2:
		s.Window = window.Time{Span: h.WindowN}
	default:
		return s, nil, fmt.Errorf("remote: unknown window kind %d", h.WindowKind)
	}
	var strat dispatch.Strategy
	switch h.Strategy {
	case 0:
		s.Strategy = "length"
		strat = dispatch.NewLengthBased(s.Params, partition.Partition{Bounds: h.Bounds})
	case 1:
		s.Strategy = "prefix"
		strat = dispatch.PrefixBased{Params: s.Params}
	case 2:
		s.Strategy = "broadcast"
		strat = dispatch.BroadcastBased{}
	default:
		return s, nil, fmt.Errorf("remote: unknown strategy %d", h.Strategy)
	}
	if s.Params.Threshold <= 0 {
		return s, nil, fmt.Errorf("remote: non-positive threshold %v", s.Params.Threshold)
	}
	return s, strat, nil
}

// strategyFor builds the coordinator-side routing strategy.
func (s Session) strategyFor(workers int) (dispatch.Strategy, error) {
	switch s.Strategy {
	case "length":
		if len(s.Bounds) != workers {
			return nil, fmt.Errorf("remote: length strategy needs %d bounds, got %d", workers, len(s.Bounds))
		}
		return dispatch.NewLengthBased(s.Params, partition.Partition{Bounds: s.Bounds}), nil
	case "prefix":
		return dispatch.PrefixBased{Params: s.Params}, nil
	case "broadcast":
		return dispatch.BroadcastBased{}, nil
	default:
		return nil, fmt.Errorf("remote: unknown strategy %q", s.Strategy)
	}
}
