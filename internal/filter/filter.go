// Package filter bundles the candidate-pruning predicates of prefix-based
// set-similarity joins into one place with a uniform vocabulary: length
// filter, prefix filter, position filter, and the suffix filter used as an
// optional deep prune before verification. Every predicate is conservative:
// it never discards a true result pair.
package filter

import (
	"repro/internal/similarity"
	"repro/internal/tokens"
)

// Params fixes the similarity function and threshold a join runs with and
// precomputes nothing; all methods are cheap arithmetic over the
// similarity package's bounds.
type Params struct {
	Func      similarity.Func
	Threshold float64
}

// LengthBounds returns the inclusive [lo, hi] partner-size range compatible
// with a record of size l.
func (p Params) LengthBounds(l int) (lo, hi int) {
	lo = similarity.MinSize(p.Func, p.Threshold, l)
	if lo < 1 {
		lo = 1
	}
	return lo, similarity.MaxSize(p.Func, p.Threshold, l)
}

// PrefixLen returns the symmetric prefix length for size l (see
// similarity.PrefixLen).
func (p Params) PrefixLen(l int) int {
	return similarity.PrefixLen(p.Func, p.Threshold, l)
}

// RequiredOverlap returns the overlap two records of sizes la, lb must
// reach.
func (p Params) RequiredOverlap(la, lb int) int {
	return similarity.RequiredOverlap(p.Func, p.Threshold, la, lb)
}

// LengthCompatible reports whether sizes la and lb can possibly reach the
// threshold.
func (p Params) LengthCompatible(la, lb int) bool {
	lo, hi := p.LengthBounds(la)
	return lb >= lo && lb <= hi
}

// PositionOK is the position filter: when records a (size la) and b
// (size lb) are first seen to collide at token positions ia and ib (0-based)
// with acc matching tokens accumulated so far (including the colliding one),
// the pair can still reach the required overlap only if the shorter
// remaining suffix plus acc suffices.
func (p Params) PositionOK(la, lb, ia, ib, acc int) bool {
	restA := la - ia - 1
	restB := lb - ib - 1
	rest := restA
	if restB < rest {
		rest = restB
	}
	return acc+rest >= p.RequiredOverlap(la, lb)
}

// SuffixBound returns an upper bound on the overlap between the suffixes
// a[ia:] and b[ib:] using the Hamming-style recursive partition bound of the
// suffix filter, exploring at most maxDepth partition levels. Conservative:
// the true suffix overlap never exceeds the returned bound.
func SuffixBound(a, b []tokens.Rank, maxDepth int) int {
	return suffixBound(a, b, maxDepth)
}

func suffixBound(a, b []tokens.Rank, depth int) int {
	la, lb := len(a), len(b)
	min := la
	if lb < min {
		min = lb
	}
	if depth <= 0 || min == 0 {
		return min
	}
	// Partition b around a's median token; overlap cannot cross the pivot.
	mid := la / 2
	pivot := a[mid]
	lo, hi := 0, lb
	for lo < hi {
		m := (lo + hi) / 2
		if b[m] < pivot {
			lo = m + 1
		} else {
			hi = m
		}
	}
	pb := lo // first index in b with b[pb] >= pivot
	match := 0
	rb := pb
	if pb < lb && b[pb] == pivot {
		match = 1
		rb = pb + 1
	}
	left := suffixBound(a[:mid], b[:pb], depth-1)
	right := suffixBound(a[mid+1:], b[rb:], depth-1)
	return left + match + right
}

// SuffixOK applies the suffix filter to candidate pair (a, b) that already
// accumulated acc overlapping tokens within prefixes ending at positions ia
// and ib (exclusive). It returns false only when the pair provably cannot
// reach the required overlap.
func (p Params) SuffixOK(a, b []tokens.Rank, ia, ib, acc, maxDepth int) bool {
	bound := acc + SuffixBound(a[ia:], b[ib:], maxDepth)
	return bound >= p.RequiredOverlap(len(a), len(b))
}
