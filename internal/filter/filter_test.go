package filter

import (
	"math/rand"
	"testing"

	"repro/internal/similarity"
	"repro/internal/tokens"
)

func jacc(tau float64) Params {
	return Params{Func: similarity.Jaccard, Threshold: tau}
}

func TestLengthBounds(t *testing.T) {
	p := jacc(0.8)
	lo, hi := p.LengthBounds(10)
	if lo != 8 || hi != 12 {
		t.Fatalf("bounds: got [%d,%d] want [8,12]", lo, hi)
	}
	lo, _ = p.LengthBounds(0)
	if lo != 1 {
		t.Fatalf("empty record lower bound clamps to 1, got %d", lo)
	}
}

func TestLengthCompatibleSymmetryProperty(t *testing.T) {
	// Jaccard length compatibility must be symmetric: lb in bounds(la) iff
	// la in bounds(lb).
	rng := rand.New(rand.NewSource(1))
	p := jacc(0.7)
	for i := 0; i < 2000; i++ {
		la, lb := 1+rng.Intn(100), 1+rng.Intn(100)
		if p.LengthCompatible(la, lb) != p.LengthCompatible(lb, la) {
			t.Fatalf("asymmetric at la=%d lb=%d", la, lb)
		}
	}
}

func TestPositionOK(t *testing.T) {
	p := jacc(0.8)
	// la=lb=10, required overlap 9. Collision at first positions, acc=1:
	// remaining min suffix = 9, so 1+9 = 10 >= 9 → keep.
	if !p.PositionOK(10, 10, 0, 0, 1) {
		t.Fatal("early collision should pass position filter")
	}
	// Collision at positions (2,2) with acc=1: remaining = 7, 1+7=8 < 9 → prune.
	if p.PositionOK(10, 10, 2, 2, 1) {
		t.Fatal("late first collision should be pruned")
	}
}

func TestPositionFilterIsConservative(t *testing.T) {
	// Generate random similar pairs; at their true first-collision point
	// the position filter must never prune them.
	rng := rand.New(rand.NewSource(9))
	p := jacc(0.75)
	for trial := 0; trial < 500; trial++ {
		a := randomSet(rng, 3+rng.Intn(15), 30)
		b := randomSet(rng, 3+rng.Intn(15), 30)
		if similarity.Of(similarity.Jaccard, a, b) < p.Threshold {
			continue
		}
		ia, ib, found := firstCollision(a, b)
		if !found {
			t.Fatal("similar pair with no collision — impossible")
		}
		if !p.PositionOK(len(a), len(b), ia, ib, 1) {
			t.Fatalf("position filter pruned a true pair: a=%v b=%v", a, b)
		}
	}
}

func firstCollision(a, b []tokens.Rank) (int, int, bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return i, j, true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return 0, 0, false
}

func TestSuffixBoundNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		a := randomSet(rng, rng.Intn(20), 40)
		b := randomSet(rng, rng.Intn(20), 40)
		truth := similarity.IntersectSize(a, b)
		for depth := 0; depth <= 4; depth++ {
			if bound := SuffixBound(a, b, depth); bound < truth {
				t.Fatalf("depth %d: bound %d < truth %d for a=%v b=%v",
					depth, bound, truth, a, b)
			}
		}
	}
}

func TestSuffixBoundTightensWithDepth(t *testing.T) {
	a := []tokens.Rank{1, 2, 3, 4, 5, 6, 7, 8}
	b := []tokens.Rank{9, 10, 11, 12, 13, 14, 15, 16}
	// Disjoint sets: depth 0 gives min length 8, deeper bounds must shrink.
	b0 := SuffixBound(a, b, 0)
	b3 := SuffixBound(a, b, 3)
	if b0 != 8 {
		t.Fatalf("depth 0 bound: got %d want 8", b0)
	}
	if b3 >= b0 {
		t.Fatalf("deeper bound %d not tighter than %d", b3, b0)
	}
}

func TestSuffixOKConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := jacc(0.8)
	for trial := 0; trial < 500; trial++ {
		a := randomSet(rng, 4+rng.Intn(12), 24)
		b := randomSet(rng, 4+rng.Intn(12), 24)
		if similarity.Of(similarity.Jaccard, a, b) < p.Threshold {
			continue
		}
		ia, ib, found := firstCollision(a, b)
		if !found {
			continue
		}
		// acc=1 at the collision; suffixes start right after it.
		if !p.SuffixOK(a, b, ia+1, ib+1, 1, 3) {
			t.Fatalf("suffix filter pruned a true pair: a=%v b=%v", a, b)
		}
	}
}

func TestPrefixLenDelegates(t *testing.T) {
	p := jacc(0.8)
	if got := p.PrefixLen(10); got != 3 {
		t.Fatalf("got %d want 3", got)
	}
	if got := p.RequiredOverlap(10, 10); got != 9 {
		t.Fatalf("got %d want 9", got)
	}
}

func randomSet(rng *rand.Rand, n, universe int) []tokens.Rank {
	seen := make(map[tokens.Rank]bool)
	out := make([]tokens.Rank, 0, n)
	for len(out) < n {
		r := tokens.Rank(rng.Intn(universe))
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return tokens.Dedup(out)
}
