// Package obs is the runtime observability layer: a process-wide metrics
// registry unifying counters, gauges, and the log-bucketed latency
// histograms of internal/metrics behind one Collector interface with
// name/help metadata, plus a sampling span tracer (trace.go) that records
// tuple lineage end to end, and HTTP introspection endpoints (debug.go)
// serving Prometheus text exposition, recent traces, and pprof.
//
// Design constraints, in order:
//
//   - Hot paths stay hot. Counter and Gauge are single atomics; the Func
//     variants defer all work to scrape time; Histogram observation is one
//     mutex-protected bucket increment. Nothing in this package allocates
//     on the update path.
//   - Engines re-run. The experiment harness executes many topologies per
//     process, so the helper constructors are get-or-create (a re-run finds
//     its counter again) and the Func constructors are create-or-replace (a
//     callback rebinds to the most recent run's state). Strict duplicate
//     detection remains available through Register.
//   - No dependencies. The exposition format is written and parsed by hand
//     (expo.go); the module stays stdlib-only.
//
// Metric names are snake_case with a unit suffix where applicable
// (`_total` for counters, `_seconds` for histograms, bare nouns for
// gauges); the obscheck analyzer (internal/lint) machine-checks the naming
// convention and that every metric carries a help string. See
// docs/OBSERVABILITY.md for the catalogue.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Kind classifies a collector for the exposition TYPE line.
type Kind string

// The three collector kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Desc is the identity and metadata of one metric family.
type Desc struct {
	// Name is the snake_case metric name.
	Name string
	// Help is a one-line description (mandatory; obscheck enforces it).
	Help string
	// Label is the single optional label key of the family ("" when
	// unlabeled). One key is enough for this system's per-edge and
	// per-task breakdowns and keeps exposition and parsing trivial.
	Label string
}

// Sample is one scraped value of a family: counters and gauges fill Value,
// histograms fill Hist.
type Sample struct {
	// Label is the label value ("" for unlabeled families).
	Label string
	// Value is the current counter or gauge reading.
	Value float64
	// Hist is the histogram snapshot (nil for counters and gauges).
	Hist *metrics.Latency
}

// Collector is one registered metric family.
type Collector interface {
	Desc() Desc
	Kind() Kind
	// Collect emits the family's current samples. Implementations must be
	// safe to call concurrently with updates.
	Collect(emit func(Sample))
}

// Family is one gathered metric family, ready for rendering.
type Family struct {
	Desc    Desc
	Kind    Kind
	Samples []Sample
}

// nameRe is the snake_case naming convention obscheck enforces statically
// and Register enforces at runtime.
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Registry holds the collectors of one process (or one engine run).
type Registry struct {
	mu sync.Mutex
	cs map[string]Collector      // guarded by mu
	ex map[string]*ExemplarStore // guarded by mu; histogram exemplars by family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cs: make(map[string]Collector)}
}

// Register adds c, rejecting invalid names, empty help, and duplicates.
func (r *Registry) Register(c Collector) error {
	d := c.Desc()
	if !nameRe.MatchString(d.Name) {
		return fmt.Errorf("obs: metric name %q is not snake_case", d.Name)
	}
	if d.Help == "" {
		return fmt.Errorf("obs: metric %q has no help string", d.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.cs[d.Name]; dup {
		return fmt.Errorf("obs: metric %q already registered", d.Name)
	}
	r.cs[d.Name] = c
	return nil
}

// MustRegister is Register panicking on error, for init-time wiring.
func (r *Registry) MustRegister(c Collector) {
	if err := r.Register(c); err != nil {
		panic(err)
	}
}

// getOrCreate returns the collector under name when its kind matches,
// creating it with make otherwise. A name collision across kinds panics:
// that is a programming error, not a runtime condition.
func (r *Registry) getOrCreate(name string, kind Kind, make func() Collector) Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cs[name]; ok {
		if c.Kind() != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, c.Kind()))
		}
		return c
	}
	c := make()
	d := c.Desc()
	if !nameRe.MatchString(d.Name) {
		panic(fmt.Sprintf("obs: metric name %q is not snake_case", d.Name))
	}
	if d.Help == "" {
		panic(fmt.Sprintf("obs: metric %q has no help string", d.Name))
	}
	r.cs[name] = c
	return c
}

// replace installs c under its name unconditionally (create-or-replace
// semantics for the Func collectors, whose callbacks must rebind to the
// most recent engine run).
func (r *Registry) replace(c Collector) {
	d := c.Desc()
	if !nameRe.MatchString(d.Name) {
		panic(fmt.Sprintf("obs: metric name %q is not snake_case", d.Name))
	}
	if d.Help == "" {
		panic(fmt.Sprintf("obs: metric %q has no help string", d.Name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cs[d.Name] = c
}

// Reset drops every collector, returning the registry to empty. The bench
// harness calls it between experiments so each -json snapshot reflects one
// experiment only.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cs = make(map[string]Collector)
	r.ex = nil
}

// Gather snapshots every family, sorted by name.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	cs := make([]Collector, 0, len(r.cs))
	for _, c := range r.cs {
		cs = append(cs, c)
	}
	r.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].Desc().Name < cs[j].Desc().Name })
	fams := make([]Family, 0, len(cs))
	for _, c := range cs {
		f := Family{Desc: c.Desc(), Kind: c.Kind()}
		c.Collect(func(s Sample) { f.Samples = append(f.Samples, s) })
		sort.SliceStable(f.Samples, func(i, j int) bool { return f.Samples[i].Label < f.Samples[j].Label })
		fams = append(fams, f)
	}
	return fams
}

// ------------------------------------------------------------- counter --

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	desc Desc
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Desc implements Collector.
func (c *Counter) Desc() Desc { return c.desc }

// Kind implements Collector.
func (c *Counter) Kind() Kind { return KindCounter }

// Collect implements Collector.
func (c *Counter) Collect(emit func(Sample)) {
	emit(Sample{Value: float64(c.v.Load())})
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.getOrCreate(name, KindCounter, func() Collector {
		return &Counter{desc: Desc{Name: name, Help: help}}
	}).(*Counter)
}

// --------------------------------------------------------------- gauge --

// Gauge is an atomic float64 gauge.
type Gauge struct {
	desc Desc
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Desc implements Collector.
func (g *Gauge) Desc() Desc { return g.desc }

// Kind implements Collector.
func (g *Gauge) Kind() Kind { return KindGauge }

// Collect implements Collector.
func (g *Gauge) Collect(emit func(Sample)) { emit(Sample{Value: g.Value()}) }

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.getOrCreate(name, KindGauge, func() Collector {
		return &Gauge{desc: Desc{Name: name, Help: help}}
	}).(*Gauge)
}

// ----------------------------------------------------------- histogram --

// Histogram is a concurrency-safe log2-bucketed duration histogram.
type Histogram struct {
	desc Desc
	h    metrics.SyncLatency
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.h.Observe(d) }

// Snapshot returns the current histogram contents.
func (h *Histogram) Snapshot() metrics.Latency { return h.h.Snapshot() }

// Desc implements Collector.
func (h *Histogram) Desc() Desc { return h.desc }

// Kind implements Collector.
func (h *Histogram) Kind() Kind { return KindHistogram }

// Collect implements Collector.
func (h *Histogram) Collect(emit func(Sample)) {
	s := h.h.Snapshot()
	emit(Sample{Hist: &s})
}

// Histogram returns the registered histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.getOrCreate(name, KindHistogram, func() Collector {
		return &Histogram{desc: Desc{Name: name, Help: help}}
	}).(*Histogram)
}

// ------------------------------------------------------ func collectors --

// funcCollector defers the reading to scrape time: the callback typically
// loads an atomic owned by the instrumented subsystem, so the hot path
// pays nothing beyond the counter it already maintains.
type funcCollector struct {
	desc Desc
	kind Kind
	f    func() float64
}

// Desc implements Collector.
func (fc *funcCollector) Desc() Desc { return fc.desc }

// Kind implements Collector.
func (fc *funcCollector) Kind() Kind { return fc.kind }

// Collect implements Collector.
func (fc *funcCollector) Collect(emit func(Sample)) { emit(Sample{Value: fc.f()}) }

// CounterFunc registers (or rebinds) a counter whose value is read by f at
// scrape time.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.replace(&funcCollector{desc: Desc{Name: name, Help: help}, kind: KindCounter, f: f})
}

// GaugeFunc registers (or rebinds) a gauge whose value is read by f at
// scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.replace(&funcCollector{desc: Desc{Name: name, Help: help}, kind: KindGauge, f: f})
}

// histFuncCollector reads a histogram snapshot at scrape time.
type histFuncCollector struct {
	desc Desc
	f    func() metrics.Latency
}

// Desc implements Collector.
func (hc *histFuncCollector) Desc() Desc { return hc.desc }

// Kind implements Collector.
func (hc *histFuncCollector) Kind() Kind { return KindHistogram }

// Collect implements Collector.
func (hc *histFuncCollector) Collect(emit func(Sample)) {
	s := hc.f()
	emit(Sample{Hist: &s})
}

// HistogramFunc registers (or rebinds) a histogram whose contents are
// snapshotted by f at scrape time — the adapter for subsystems that already
// maintain a metrics.SyncLatency.
func (r *Registry) HistogramFunc(name, help string, f func() metrics.Latency) {
	r.replace(&histFuncCollector{desc: Desc{Name: name, Help: help}, f: f})
}

// ------------------------------------------------------------ vec types --

// vec is the shared labeled-children machinery of the *Vec collectors.
type vec struct {
	desc Desc
	kind Kind
	mu   sync.Mutex
	kids map[string]Collector // guarded by mu
}

// Desc implements Collector.
func (v *vec) Desc() Desc { return v.desc }

// Kind implements Collector.
func (v *vec) Kind() Kind { return v.kind }

// Collect implements Collector.
func (v *vec) Collect(emit func(Sample)) {
	v.mu.Lock()
	labels := make([]string, 0, len(v.kids))
	for l := range v.kids {
		labels = append(labels, l)
	}
	kids := make([]Collector, 0, len(v.kids))
	sort.Strings(labels)
	for _, l := range labels {
		kids = append(kids, v.kids[l])
	}
	v.mu.Unlock()
	for i, c := range kids {
		label := labels[i]
		c.Collect(func(s Sample) {
			s.Label = label
			emit(s)
		})
	}
}

// child returns the labeled child, creating it with make on first use.
func (v *vec) child(label string, make func() Collector) Collector {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[label]
	if !ok {
		c = make()
		v.kids[label] = c
	}
	return c
}

// set replaces the labeled child (Func rebinding).
func (v *vec) set(label string, c Collector) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.kids[label] = c
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ vec }

// With returns the child counter for the label value.
func (cv *CounterVec) With(label string) *Counter {
	return cv.child(label, func() Collector { return &Counter{desc: cv.desc} }).(*Counter)
}

// CounterVec returns the registered labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.getOrCreate(name, KindCounter, func() Collector {
		return &CounterVec{vec{desc: Desc{Name: name, Help: help, Label: label}, kind: KindCounter, kids: map[string]Collector{}}}
	}).(*CounterVec)
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ vec }

// With returns the child gauge for the label value.
func (gv *GaugeVec) With(label string) *Gauge {
	return gv.child(label, func() Collector { return &Gauge{desc: gv.desc} }).(*Gauge)
}

// GaugeVec returns the registered labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return r.getOrCreate(name, KindGauge, func() Collector {
		return &GaugeVec{vec{desc: Desc{Name: name, Help: help, Label: label}, kind: KindGauge, kids: map[string]Collector{}}}
	}).(*GaugeVec)
}

// SetFunc binds (or rebinds) the labeled child to a scrape-time callback.
func (gv *GaugeVec) SetFunc(label string, f func() float64) {
	gv.set(label, &funcCollector{desc: gv.desc, kind: KindGauge, f: f})
}

// SetFunc binds (or rebinds) the labeled child to a scrape-time callback.
func (cv *CounterVec) SetFunc(label string, f func() float64) {
	cv.set(label, &funcCollector{desc: cv.desc, kind: KindCounter, f: f})
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ vec }

// With returns the child histogram for the label value.
func (hv *HistogramVec) With(label string) *Histogram {
	return hv.child(label, func() Collector { return &Histogram{desc: hv.desc} }).(*Histogram)
}

// SetFunc binds (or rebinds) the labeled child to a snapshot callback.
func (hv *HistogramVec) SetFunc(label string, f func() metrics.Latency) {
	hv.set(label, &histFuncCollector{desc: hv.desc, f: f})
}

// HistogramVec returns the registered labeled histogram family.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	return r.getOrCreate(name, KindHistogram, func() Collector {
		return &HistogramVec{vec{desc: Desc{Name: name, Help: help, Label: label}, kind: KindHistogram, kids: map[string]Collector{}}}
	}).(*HistogramVec)
}
