package obs

import (
	"strings"
	"testing"
)

func TestJournalRingAndDropCounting(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append("tick", "comp", strings.Repeat("x", i+1))
	}
	if got := j.Appended(); got != 10 {
		t.Fatalf("Appended() = %d, want 10", got)
	}
	snap := j.Snapshot()
	if snap.Appended != 10 || snap.Dropped != 6 {
		t.Fatalf("snapshot appended=%d dropped=%d, want 10/6", snap.Appended, snap.Dropped)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(snap.Events))
	}
	// Oldest-first, with monotonically increasing sequence numbers for the
	// survivors (events 7..10).
	for i, ev := range snap.Events {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
		if len(ev.Msg) != 7+i {
			t.Fatalf("event %d is not the expected survivor (msg %q)", i, ev.Msg)
		}
	}
}

func TestJournalRecentTail(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Append("e", "c", "m")
	}
	if got := len(j.Recent(3)); got != 3 {
		t.Fatalf("Recent(3) returned %d events", got)
	}
	if got := j.Recent(3); got[0].Seq >= got[2].Seq {
		t.Fatalf("Recent must be oldest-first, got seqs %d..%d", got[0].Seq, got[2].Seq)
	}
}

func TestJournalTraceLinkage(t *testing.T) {
	j := NewJournal(8)
	j.AppendTrace("health_fire", "w0", "p99 breached", 0xabc)
	ev := j.Recent(1)[0]
	if ev.TraceID != 0xabc {
		t.Fatalf("TraceID = %#x, want 0xabc", ev.TraceID)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append("e", "c", "m") // must not panic
	j.AppendTrace("e", "c", "m", 1)
	if j.Appended() != 0 || len(j.Recent(5)) != 0 {
		t.Fatal("nil journal must be empty")
	}
	snap := j.Snapshot()
	if snap.Appended != 0 || len(snap.Events) != 0 {
		t.Fatal("nil journal snapshot must be empty")
	}
}

func TestMergeEventsTimeline(t *testing.T) {
	a := NewJournal(8)
	b := NewJournal(8)
	a.Append("first", "coordinator", "m1")
	b.Append("second", "worker/0", "m2")
	a.Append("third", "coordinator", "m3")
	merged := MergeEvents([]JournalSnapshot{a.Snapshot(), b.Snapshot()}, []string{"coord", "w0"})
	if len(merged) != 3 {
		t.Fatalf("merged %d events, want 3", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].UnixNs < merged[i-1].UnixNs {
			t.Fatalf("merged timeline out of order at %d", i)
		}
	}
	srcs := map[string]bool{}
	for _, ev := range merged {
		srcs[ev.Source] = true
	}
	if !srcs["coord"] || !srcs["w0"] {
		t.Fatalf("merged events missing source stamps: %v", srcs)
	}
}
