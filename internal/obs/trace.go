// Span-style tuple-lineage tracing. A Tracer samples 1 in every N tuples
// at the spout; a sampled tuple carries its *Trace down the topology, and
// each stage appends one Span (emit, queue wait, dispatch, process,
// verify, deliver) with wall-clock bounds and the component/task that ran
// it. Completed traces sit in a fixed ring buffer, served as JSON by
// /debug/traces. The unsampled path costs one atomic increment and carries
// a nil pointer — zero allocations — which is what keeps tracing
// affordable on a hot path shipping hundreds of thousands of tuples per
// second.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage of a tuple's journey.
type Span struct {
	// Stage names the lifecycle step: emit, queue, dispatch, process,
	// verify, deliver.
	Stage string
	// Component and Task locate the executor that ran the stage.
	Component string
	Task      int
	// Parent is the index of the causally preceding span in the same
	// trace, -1 for the root.
	Parent int
	// Start and End bound the stage in wall-clock time.
	Start, End time.Time
}

// Trace is the recorded lineage of one sampled tuple. Spans are appended
// by whichever executor currently owns the tuple; result fan-out means
// several goroutines may append concurrently, so appends lock.
type Trace struct {
	id    uint64
	start time.Time

	mu    sync.Mutex
	spans []Span // guarded by mu
}

// ID returns the trace's process-unique identifier.
func (t *Trace) ID() uint64 { return t.id }

// Append records one span and returns its index, for use as a child's
// Parent. A nil trace ignores the call and returns -1, so call sites need
// no sampling branch.
func (t *Trace) Append(stage, component string, task, parent int, start, end time.Time) int {
	if t == nil {
		return -1
	}
	if end.Before(start) {
		end = start
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{
		Stage: stage, Component: component, Task: task,
		Parent: parent, Start: start, End: end,
	})
	return len(t.spans) - 1
}

// Tail returns the index and end time of the most recently appended span
// (-1 and the trace start when empty) — the chaining point for the next
// sequential stage. Safe on a nil trace.
func (t *Trace) Tail() (parent int, end time.Time) {
	if t == nil {
		return -1, time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return -1, t.start
	}
	return len(t.spans) - 1, t.spans[len(t.spans)-1].End
}

// SpanSnapshot is a Span in JSON form, offsets relative to trace start.
type SpanSnapshot struct {
	Stage      string  `json:"stage"`
	Component  string  `json:"component"`
	Task       int     `json:"task"`
	Parent     int     `json:"parent"`
	StartUs    float64 `json:"start_us"`
	DurationUs float64 `json:"duration_us"`
	// Origin names the process the span came from in a stitched cluster
	// trace ("coordinator" or a scrape source); empty on local snapshots.
	Origin string `json:"origin,omitempty"`
}

// TraceSnapshot is a completed (or in-flight) trace in JSON form.
type TraceSnapshot struct {
	ID          uint64         `json:"id"`
	StartUnixNs int64          `json:"start_unix_ns"`
	Spans       []SpanSnapshot `json:"spans"`
}

// snapshot copies the trace under its lock.
func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := TraceSnapshot{ID: t.id, StartUnixNs: t.start.UnixNano()}
	for _, s := range t.spans {
		ts.Spans = append(ts.Spans, SpanSnapshot{
			Stage:      s.Stage,
			Component:  s.Component,
			Task:       s.Task,
			Parent:     s.Parent,
			StartUs:    float64(s.Start.Sub(t.start)) / 1e3,
			DurationUs: float64(s.End.Sub(s.Start)) / 1e3,
		})
	}
	return ts
}

// Tracer decides which tuples get a lineage trace and retains the most
// recent ones in a ring buffer.
type Tracer struct {
	every   uint64
	n       atomic.Uint64
	nextID  atomic.Uint64
	sampled atomic.Uint64

	mu   sync.Mutex
	ring []*Trace // guarded by mu
	next int      // guarded by mu
}

// NewTracer samples 1 in every `every` Sample calls and retains the most
// recent `ring` traces. every <= 0 disables sampling entirely (Sample
// always returns nil); ring <= 0 selects 256.
func NewTracer(every, ring int) *Tracer {
	if ring <= 0 {
		ring = 256
	}
	t := &Tracer{ring: make([]*Trace, 0, ring)}
	if every > 0 {
		t.every = uint64(every)
	}
	return t
}

// Enabled reports whether the tracer can ever sample. Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 }

// SetIDBase offsets all future trace ids by base. Trace ids are otherwise
// a process-local counter; a coordinator folds its session id in so that
// ids stay meaningful across the fleet (worker fragments key on them) and
// across coordinator restarts. Safe on nil; call before sampling starts.
func (t *Tracer) SetIDBase(base uint64) {
	if t == nil {
		return
	}
	t.nextID.Store(base)
}

// Sample returns a fresh trace for 1 in every N calls and nil otherwise.
// The nil path is one atomic add — no allocation — and a nil Tracer always
// returns nil, so the spout can call it unconditionally.
func (t *Tracer) Sample() *Trace {
	if t == nil || t.every == 0 {
		return nil
	}
	if t.n.Add(1)%t.every != 0 {
		return nil
	}
	t.sampled.Add(1)
	tr := &Trace{id: t.nextID.Add(1), start: time.Now()}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.mu.Unlock()
	return tr
}

// Sampled returns how many traces have been started. (Distinct from the
// id counter: SetIDBase offsets ids without counting as samples.)
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// Recent snapshots the retained traces, newest first. Safe on nil (empty).
func (t *Tracer) Recent() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	trs := make([]*Trace, 0, len(t.ring))
	// Ring order: next..end is oldest, 0..next newest; walk backwards from
	// the slot before next.
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		trs = append(trs, t.ring[idx])
	}
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(trs))
	for _, tr := range trs {
		out = append(out, tr.snapshot())
	}
	return out
}
