package obs

import (
	"fmt"
	"testing"
)

func testRoot(id uint64, startNs int64, spans int) TraceSnapshot {
	ts := TraceSnapshot{ID: id, StartUnixNs: startNs}
	for i := 0; i < spans; i++ {
		parent := i - 1
		ts.Spans = append(ts.Spans, SpanSnapshot{
			Stage: fmt.Sprintf("stage%d", i), Component: "coordinator",
			Parent: parent, StartUs: float64(i), DurationUs: 1,
		})
	}
	return ts
}

func testFrag(id uint64, wireParent int, spans ...FragSpanSnapshot) FragmentSnapshot {
	return FragmentSnapshot{TraceID: id, WireParent: wireParent, Spans: spans}
}

func TestStitchFragmentBeforeRoot(t *testing.T) {
	s := NewStitcher(8)
	frag := testFrag(7, 1,
		FragSpanSnapshot{Stage: "queue", Component: "worker/0", Parent: -1, StartUnixNs: 2000},
		FragSpanSnapshot{Stage: "process", Component: "worker/0", Parent: 0, StartUnixNs: 2500, DurationUs: 3},
	)
	s.AddFragment("w0:9000", frag)
	snap := s.Snapshot()
	if snap.OrphanFragments != 1 || len(snap.Traces) != 0 {
		t.Fatalf("before root: orphans=%d traces=%d, want 1/0", snap.OrphanFragments, len(snap.Traces))
	}

	s.AddRoot(testRoot(7, 1000, 2))
	snap = s.Snapshot()
	if snap.OrphanFragments != 0 || len(snap.Traces) != 1 {
		t.Fatalf("after root: orphans=%d traces=%d, want 0/1", snap.OrphanFragments, len(snap.Traces))
	}
	tr := snap.Traces[0]
	if len(tr.Spans) != 4 {
		t.Fatalf("stitched %d spans, want 4", len(tr.Spans))
	}
	// Fragment span 0 attaches at the wire parent (root span 1); fragment
	// span 1's intra-fragment parent 0 is re-based past the 2 root spans.
	if tr.Spans[2].Parent != 1 {
		t.Fatalf("queue span parent = %d, want wire parent 1", tr.Spans[2].Parent)
	}
	if tr.Spans[3].Parent != 2 {
		t.Fatalf("process span parent = %d, want re-based 2", tr.Spans[3].Parent)
	}
	// Absolute worker clock re-based onto the root's start.
	if tr.Spans[2].StartUs != 1.0 {
		t.Fatalf("queue StartUs = %g, want 1 (2000ns-1000ns)", tr.Spans[2].StartUs)
	}
	if tr.Spans[2].Origin != "w0:9000" || tr.Spans[0].Origin != "coordinator" {
		t.Fatalf("origins not stamped: %q / %q", tr.Spans[2].Origin, tr.Spans[0].Origin)
	}
	if len(tr.Origins) != 2 || tr.Origins[0] != "coordinator" || tr.Origins[1] != "w0:9000" {
		t.Fatalf("trace origins = %v", tr.Origins)
	}
}

func TestStitchDuplicateSpansAfterRetry(t *testing.T) {
	s := NewStitcher(8)
	s.AddRoot(testRoot(9, 0, 2))
	// A replayed record re-processes on the worker: the fragment holds two
	// identical (stage, component, task, parent) spans.
	dup := FragSpanSnapshot{Stage: "process", Component: "worker/1", Task: 1, Parent: -1, StartUnixNs: 100}
	again := dup
	again.StartUnixNs = 900
	s.AddFragment("w1", testFrag(9, 0, dup, again))
	tr := s.Snapshot().Traces[0]
	if tr.DuplicateSpans != 1 {
		t.Fatalf("DuplicateSpans = %d, want 1", tr.DuplicateSpans)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("duplicate spans must be kept, got %d spans", len(tr.Spans))
	}
}

func TestStitchRescrapeIsIdempotent(t *testing.T) {
	s := NewStitcher(8)
	s.AddRoot(testRoot(3, 0, 1))
	f := testFrag(3, 0, FragSpanSnapshot{Stage: "process", Component: "worker/0", Parent: -1})
	s.AddFragment("w0", f)
	s.AddFragment("w0", f) // second scrape of the same worker
	tr := s.Snapshot().Traces[0]
	if len(tr.Spans) != 2 || tr.DuplicateSpans != 0 {
		t.Fatalf("re-scrape must replace, not append: %d spans, %d dups", len(tr.Spans), tr.DuplicateSpans)
	}
}

func TestStitchOrphansBoundedByRing(t *testing.T) {
	const capacity = 4
	s := NewStitcher(capacity)
	// A worker that died mid-session leaves orphans forever; the pending
	// ring must stay bounded no matter how many ids show up.
	for id := uint64(1); id <= 20; id++ {
		s.AddFragment("dead-worker", testFrag(id, 0,
			FragSpanSnapshot{Stage: "queue", Component: "worker/9", Parent: -1}))
	}
	snap := s.Snapshot()
	if snap.OrphanFragments > capacity {
		t.Fatalf("pending orphans %d exceed ring capacity %d", snap.OrphanFragments, capacity)
	}
	s.mu.Lock()
	pendLen, ringLen := len(s.pending), len(s.pendOrder)
	s.mu.Unlock()
	if pendLen > capacity || ringLen > capacity {
		t.Fatalf("pending map %d / ring %d leak past capacity %d", pendLen, ringLen, capacity)
	}
}

func TestStitchStalePendingSlotIsNoOp(t *testing.T) {
	const capacity = 3
	s := NewStitcher(capacity)
	// Orphan arrives, root adopts it — its pending ring slot goes stale.
	s.AddFragment("w0", testFrag(1, 0, FragSpanSnapshot{Stage: "q", Component: "w", Parent: -1}))
	s.AddRoot(testRoot(1, 0, 1))
	// Now cycle the pending ring well past the stale slot.
	for id := uint64(100); id < 110; id++ {
		s.AddFragment("w0", testFrag(id, 0, FragSpanSnapshot{Stage: "q", Component: "w", Parent: -1}))
	}
	snap := s.Snapshot()
	if len(snap.Traces) != 1 {
		t.Fatalf("adopted trace lost: %d traces", len(snap.Traces))
	}
	if got := len(snap.Traces[0].Spans); got != 2 {
		t.Fatalf("adopted fragment lost: %d spans, want 2", got)
	}
	if snap.OrphanFragments > capacity {
		t.Fatalf("orphans %d exceed capacity %d", snap.OrphanFragments, capacity)
	}
}

func TestStitchRootEvictionDropsFragments(t *testing.T) {
	const capacity = 2
	s := NewStitcher(capacity)
	for id := uint64(1); id <= 5; id++ {
		s.AddRoot(testRoot(id, 0, 1))
		s.AddFragment("w0", testFrag(id, 0, FragSpanSnapshot{Stage: "q", Component: "w", Parent: -1}))
	}
	snap := s.Snapshot()
	if len(snap.Traces) != capacity {
		t.Fatalf("retained %d traces, want %d", len(snap.Traces), capacity)
	}
	if snap.EvictedTraces != 3 {
		t.Fatalf("EvictedTraces = %d, want 3", snap.EvictedTraces)
	}
	s.mu.Lock()
	rootsLen, fragsLen := len(s.roots), len(s.frags)
	s.mu.Unlock()
	if rootsLen != capacity || fragsLen > capacity {
		t.Fatalf("eviction leaked: roots=%d frags=%d, capacity=%d", rootsLen, fragsLen, capacity)
	}
}

func TestStitchBadWireParentClamped(t *testing.T) {
	s := NewStitcher(4)
	s.AddRoot(testRoot(5, 0, 1)) // root has exactly 1 span
	s.AddFragment("w0", testFrag(5, 7, // wire parent beyond the root
		FragSpanSnapshot{Stage: "q", Component: "w", Parent: -1}))
	tr := s.Snapshot().Traces[0]
	if tr.Spans[1].Parent != -1 {
		t.Fatalf("out-of-range wire parent must clamp to -1, got %d", tr.Spans[1].Parent)
	}
}

func TestStitcherNilSafe(t *testing.T) {
	var s *Stitcher
	s.AddRoot(testRoot(1, 0, 1))
	s.AddFragment("w", testFrag(1, 0))
	if snap := s.Snapshot(); len(snap.Traces) != 0 {
		t.Fatal("nil stitcher must be empty")
	}
}
