package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTracerConcurrentLineage drives concurrent "spout" and "bolt" tasks
// through a shared tracer, the way the stream engine does, and checks every
// recorded span is well-formed: start <= end, parent links resolve to an
// earlier span, and stage chains are causally ordered. Run under -race this
// also exercises the Trace append/snapshot locking.
func TestTracerConcurrentLineage(t *testing.T) {
	const (
		spouts  = 4
		tuples  = 2048
		every   = 16
		ringCap = 64
	)
	tracer := NewTracer(every, ringCap)
	if !tracer.Enabled() {
		t.Fatal("tracer should be enabled")
	}

	// Each spout emits tuples; sampled ones get an emit span, then a
	// simulated downstream bolt appends queue+process spans from another
	// goroutine, mimicking tuple handoff.
	work := make(chan *Trace, 256)
	var wg sync.WaitGroup
	for s := 0; s < spouts; s++ {
		wg.Add(1)
		go func(task int) {
			defer wg.Done()
			for i := 0; i < tuples; i++ {
				tr := tracer.Sample()
				if tr == nil {
					continue
				}
				now := time.Now()
				tr.Append("emit", "source", task, -1, now, now)
				work <- tr
			}
		}(s)
	}
	var bolts sync.WaitGroup
	for b := 0; b < 2; b++ {
		bolts.Add(1)
		go func(task int) {
			defer bolts.Done()
			for tr := range work {
				parent, end := tr.Tail()
				now := time.Now()
				p := tr.Append("queue", "worker", task, parent, end, now)
				tr.Append("process", "worker", task, p, now, time.Now())
			}
		}(b)
	}
	// Concurrent scrapes while traces are still being appended to.
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for i := 0; i < 50; i++ {
			tracer.Recent()
		}
	}()
	wg.Wait()
	close(work)
	bolts.Wait()
	scrapes.Wait()

	wantSampled := uint64(spouts * tuples / every)
	if got := tracer.Sampled(); got != wantSampled {
		t.Fatalf("sampled %d traces, want %d", got, wantSampled)
	}
	recent := tracer.Recent()
	if len(recent) != ringCap {
		t.Fatalf("ring holds %d traces, want %d", len(recent), ringCap)
	}
	for _, ts := range recent {
		if len(ts.Spans) != 3 {
			t.Fatalf("trace %d has %d spans, want 3", ts.ID, len(ts.Spans))
		}
		for i, sp := range ts.Spans {
			if sp.DurationUs < 0 {
				t.Fatalf("trace %d span %d: negative duration %v", ts.ID, i, sp.DurationUs)
			}
			if sp.Parent < -1 || sp.Parent >= i {
				t.Fatalf("trace %d span %d: parent %d does not resolve to an earlier span", ts.ID, i, sp.Parent)
			}
			if sp.Parent >= 0 {
				pEnd := ts.Spans[sp.Parent].StartUs + ts.Spans[sp.Parent].DurationUs
				if sp.StartUs+1e-3 < pEnd { // 1ns slack for float µs rounding
					t.Fatalf("trace %d span %d starts %vus before parent end %vus", ts.ID, i, sp.StartUs, pEnd)
				}
			}
		}
		if ts.Spans[0].Stage != "emit" || ts.Spans[0].Parent != -1 {
			t.Fatalf("trace %d root span: %+v", ts.ID, ts.Spans[0])
		}
	}
}

// TestTracerDisabledZeroCost checks the acceptance criterion that disabled
// sampling records no spans and allocates nothing on the sample path.
func TestTracerDisabledZeroCost(t *testing.T) {
	for name, tracer := range map[string]*Tracer{
		"nil":     nil,
		"every=0": NewTracer(0, 8),
	} {
		if tracer.Enabled() {
			t.Fatalf("%s: Enabled() = true", name)
		}
		if tr := tracer.Sample(); tr != nil {
			t.Fatalf("%s: Sample() returned a trace", name)
		}
		if got := tracer.Sampled(); got != 0 {
			t.Fatalf("%s: Sampled() = %d", name, got)
		}
		if rec := tracer.Recent(); len(rec) != 0 {
			t.Fatalf("%s: Recent() = %v", name, rec)
		}
		allocs := testing.AllocsPerRun(1000, func() {
			tracer.Sample()
		})
		if allocs != 0 {
			t.Fatalf("%s: Sample() allocates %v per call when disabled", name, allocs)
		}
		// The nil-trace span path must be free too: Append/Tail on the nil
		// *Trace every unsampled tuple carries.
		var nilTrace *Trace
		allocs = testing.AllocsPerRun(1000, func() {
			parent, end := nilTrace.Tail()
			nilTrace.Append("process", "worker", 0, parent, end, end)
		})
		if allocs != 0 {
			t.Fatalf("%s: nil-trace span path allocates %v per call", name, allocs)
		}
	}
}

func TestTraceAppendClampsEnd(t *testing.T) {
	tracer := NewTracer(1, 4)
	tr := tracer.Sample()
	now := time.Now()
	tr.Append("emit", "source", 0, -1, now, now.Add(-time.Second))
	ts := tracer.Recent()[0]
	if ts.Spans[0].DurationUs != 0 {
		t.Fatalf("end before start not clamped: %+v", ts.Spans[0])
	}
}
