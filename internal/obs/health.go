// Declarative health/SLO rules with hysteresis. A rule watches one named
// signal (queue occupancy, p99 record latency, scrape-to-scrape load
// rate, imbalance, checkpoint lag, ...) against a threshold and fires
// only after `for N` consecutive breaching evaluations — one flapping
// scrape never pages — then resolves after the same number of clean ones.
// Firing and resolving append journal events carrying an exemplar trace
// id, so a breached latency SLO links straight to a sampled trace that
// exhibits it. The engine evaluates per target ("self" on a worker, one
// target per worker coordinator-side over remote.ScrapeCluster rows) and
// serves a machine-readable summary at /healthz?detail=1.
//
// Rule syntax, one rule per line (# comments and blank lines skipped):
//
//	<name>: <signal> <op> <threshold> [for <n>]
//
// e.g.
//
//	slow_tail: p99_ms > 250 for 3
//	idle_worker: load < 1 for 5
//
// op is > or <; `for` defaults to 1 (fire immediately).
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HealthRule is one declarative SLO rule.
type HealthRule struct {
	// Name identifies the rule in events and status output.
	Name string `json:"name"`
	// Signal names the reading the rule watches (e.g. "queue", "p99_ms",
	// "load", "imbalance", "checkpoint_lag_s"). Targets missing the
	// signal are skipped, not breached.
	Signal string `json:"signal"`
	// Op is ">" (breach when above threshold) or "<" (breach when below).
	Op string `json:"op"`
	// Threshold is the breach bound.
	Threshold float64 `json:"threshold"`
	// For is the hysteresis width: consecutive breaching evaluations
	// before firing, and consecutive clean ones before resolving (>= 1).
	For int `json:"for"`
}

// String renders the rule back in its own syntax.
func (r HealthRule) String() string {
	return fmt.Sprintf("%s: %s %s %g for %d", r.Name, r.Signal, r.Op, r.Threshold, r.For)
}

// breached reports whether v violates the rule.
func (r HealthRule) breached(v float64) bool {
	if r.Op == "<" {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// ParseHealthRules parses the rule syntax above.
func ParseHealthRules(text string) ([]HealthRule, error) {
	var rules []HealthRule
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("obs: health rule line %d: missing \"name:\" prefix", ln+1)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 && len(fields) != 5 {
			return nil, fmt.Errorf("obs: health rule line %d: want \"signal op threshold [for n]\", got %q", ln+1, rest)
		}
		r := HealthRule{Name: strings.TrimSpace(name), Signal: fields[0], Op: fields[1], For: 1}
		if r.Name == "" || r.Signal == "" {
			return nil, fmt.Errorf("obs: health rule line %d: empty name or signal", ln+1)
		}
		if r.Op != ">" && r.Op != "<" {
			return nil, fmt.Errorf("obs: health rule line %d: op %q, want > or <", ln+1, r.Op)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: health rule line %d: threshold %q: %v", ln+1, fields[2], err)
		}
		r.Threshold = v
		if len(fields) == 5 {
			if fields[3] != "for" {
				return nil, fmt.Errorf("obs: health rule line %d: expected \"for\", got %q", ln+1, fields[3])
			}
			n, err := strconv.Atoi(fields[4])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("obs: health rule line %d: \"for\" count %q must be a positive integer", ln+1, fields[4])
			}
			r.For = n
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// DefaultHealthRules is the stock fleet rule set the CLIs install when no
// -health-rules override is given. Thresholds are intentionally loose:
// they catch a stuck or drowning worker, not a busy one.
func DefaultHealthRules() []HealthRule {
	rules, err := ParseHealthRules(`
queue_backlog: queue > 50000 for 3
slow_tail: p99_ms > 1000 for 3
overload: load > 5000000 for 3
imbalance: imbalance > 3 for 3
checkpoint_stall: checkpoint_lag_s > 60 for 2
shedding: paused > 0 for 2
result_backlog: unacked > 100000 for 3
`)
	if err != nil {
		panic("obs: default health rules failed to parse: " + err.Error())
	}
	return rules
}

// ruleState is the hysteresis window of one (rule, target) pair.
type ruleState struct {
	rule     HealthRule
	target   string
	bad      int // consecutive breaching evaluations
	good     int // consecutive clean evaluations
	firing   bool
	value    float64
	exemplar uint64
	sinceNs  int64 // transition stamp of the current firing/ok state
}

// RuleStatus is the machine-readable state of one (rule, target) pair.
type RuleStatus struct {
	Rule        string  `json:"rule"`
	Target      string  `json:"target"`
	Signal      string  `json:"signal"`
	Op          string  `json:"op"`
	Threshold   float64 `json:"threshold"`
	Value       float64 `json:"value"`
	Firing      bool    `json:"firing"`
	Breaches    int     `json:"breaches"`
	SinceUnixNs int64   `json:"since_unix_ns,omitempty"`
	// ExemplarTraceID links to a sampled trace observed while the rule
	// was breaching (0 = none captured).
	ExemplarTraceID uint64 `json:"exemplar_trace_id,omitempty"`
}

// HealthStatus is the /healthz?detail=1 document.
type HealthStatus struct {
	Healthy bool         `json:"healthy"`
	Firing  int          `json:"firing"`
	Rules   []RuleStatus `json:"rules"`
}

// HealthEngine evaluates a rule set over per-target signal readings and
// journals firing/resolved transitions.
type HealthEngine struct {
	rules   []HealthRule
	journal *Journal

	mu    sync.Mutex
	state map[string]*ruleState // guarded by mu; keyed rule|target
}

// NewHealthEngine builds an engine over rules; journal may be nil (state
// transitions are then only visible via Status).
func NewHealthEngine(rules []HealthRule, journal *Journal) *HealthEngine {
	return &HealthEngine{rules: rules, journal: journal, state: make(map[string]*ruleState)}
}

// Rules returns the installed rule set.
func (e *HealthEngine) Rules() []HealthRule { return e.rules }

// Eval runs one evaluation round for target over its signal readings.
// exemplar is a trace id observed around this round (0 = none); it is
// retained on breaching rules so a firing event links to a concrete
// trace. Nil-safe.
func (e *HealthEngine) Eval(target string, signals map[string]float64, exemplar uint64) {
	if e == nil {
		return
	}
	now := time.Now().UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.rules {
		v, ok := signals[r.Signal]
		if !ok {
			continue
		}
		key := r.Name + "|" + target
		st := e.state[key]
		if st == nil {
			st = &ruleState{rule: r, target: target, sinceNs: now}
			e.state[key] = st
		}
		st.value = v
		if r.breached(v) {
			st.bad++
			st.good = 0
			if exemplar != 0 {
				st.exemplar = exemplar
			}
			if !st.firing && st.bad >= r.For {
				st.firing = true
				st.sinceNs = now
				e.journal.AppendTrace("health_fire", target,
					fmt.Sprintf("%s: %s=%g breaches %s %g (x%d)", r.Name, r.Signal, v, r.Op, r.Threshold, st.bad),
					st.exemplar)
			}
		} else {
			st.good++
			st.bad = 0
			if st.firing && st.good >= r.For {
				st.firing = false
				st.sinceNs = now
				e.journal.AppendTrace("health_resolve", target,
					fmt.Sprintf("%s: %s=%g back within %s %g", r.Name, r.Signal, v, r.Op, r.Threshold),
					st.exemplar)
				st.exemplar = 0
			}
		}
	}
}

// Forget drops all state for a target (e.g. a worker removed from the
// fleet), so dead targets cannot hold rules firing forever.
func (e *HealthEngine) Forget(target string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, st := range e.state {
		if st.target == target {
			delete(e.state, k)
		}
	}
}

// Status returns the engine's full (rule, target) state, sorted for
// stable output. Nil-safe (healthy, empty).
func (e *HealthEngine) Status() HealthStatus {
	out := HealthStatus{Healthy: true, Rules: []RuleStatus{}}
	if e == nil {
		return out
	}
	e.mu.Lock()
	for _, st := range e.state {
		rs := RuleStatus{
			Rule:            st.rule.Name,
			Target:          st.target,
			Signal:          st.rule.Signal,
			Op:              st.rule.Op,
			Threshold:       st.rule.Threshold,
			Value:           st.value,
			Firing:          st.firing,
			Breaches:        st.bad,
			SinceUnixNs:     st.sinceNs,
			ExemplarTraceID: st.exemplar,
		}
		if st.firing {
			out.Healthy = false
			out.Firing++
		}
		out.Rules = append(out.Rules, rs)
	}
	e.mu.Unlock()
	sort.Slice(out.Rules, func(a, b int) bool {
		if out.Rules[a].Target != out.Rules[b].Target {
			return out.Rules[a].Target < out.Rules[b].Target
		}
		return out.Rules[a].Rule < out.Rules[b].Rule
	})
	return out
}
