// Worker-side trace fragments. A traced tuple crosses the wire carrying
// only (trace id, parent span index); the worker has no *Trace to append
// to, so it records spans into a Fragments store keyed by trace id, with
// absolute wall-clock bounds. The coordinator scrapes /debug/traces,
// collects each worker's fragments, and a Stitcher reassembles them under
// the originating root trace. The store is bounded two ways — a fragment
// ring with FIFO eviction and a per-fragment span cap — so a hostile or
// long-running stream can never grow it without bound, and Append never
// blocks on anything but its own mutex.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// maxFragSpans caps the spans one fragment retains; later appends to a
// full fragment are counted but discarded.
const maxFragSpans = 512

// FragSpan is one span recorded against a remote trace.
type FragSpan struct {
	Stage     string
	Component string
	Task      int
	// Parent is the index of the causally preceding span within the same
	// fragment, or -1 to attach at the fragment's wire parent (the span
	// index inside the coordinator's root trace that shipped the tuple).
	Parent     int
	Start, End time.Time
}

type fragment struct {
	traceID    uint64
	wireParent int
	spans      []FragSpan
	truncated  uint64
}

// Fragments is a bounded store of span fragments keyed by trace id.
// Nil-safe: a nil *Fragments ignores appends, so the record path needs no
// tracing branch beyond the trace-id != 0 check.
type Fragments struct {
	recorded atomic.Uint64

	mu      sync.Mutex
	capRing int
	byID    map[uint64]*fragment // guarded by mu
	order   []uint64             // guarded by mu; FIFO ring of trace ids
	next    int                  // guarded by mu
	evicted uint64               // guarded by mu
}

// NewFragments returns a store retaining fragments for the most recent
// capacity trace ids (capacity <= 0 selects 256).
func NewFragments(capacity int) *Fragments {
	if capacity <= 0 {
		capacity = 256
	}
	return &Fragments{
		capRing: capacity,
		byID:    make(map[uint64]*fragment, capacity),
		order:   make([]uint64, 0, capacity),
	}
}

// Append records one span against traceID and returns its index within
// the fragment (for chaining a child span), or -1 when nothing was
// recorded (nil store, zero trace id, or a full fragment). wireParent is
// the parent span index carried across the wire; it is fixed by the first
// append for a given trace id.
func (f *Fragments) Append(traceID uint64, wireParent int, stage, component string, task, parent int, start, end time.Time) int {
	if f == nil || traceID == 0 {
		return -1
	}
	if end.Before(start) {
		end = start
	}
	f.recorded.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	fr := f.byID[traceID]
	if fr == nil {
		fr = &fragment{traceID: traceID, wireParent: wireParent}
		// Claim a ring slot, evicting the oldest fragment when full.
		if len(f.order) < f.capRing {
			f.order = append(f.order, traceID)
		} else {
			delete(f.byID, f.order[f.next])
			f.order[f.next] = traceID
			f.next = (f.next + 1) % f.capRing
			f.evicted++
		}
		f.byID[traceID] = fr
	}
	if len(fr.spans) >= maxFragSpans {
		fr.truncated++
		return -1
	}
	fr.spans = append(fr.spans, FragSpan{
		Stage: stage, Component: component, Task: task,
		Parent: parent, Start: start, End: end,
	})
	return len(fr.spans) - 1
}

// Recorded returns the total spans ever appended (including discarded
// overflow). Nil-safe.
func (f *Fragments) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.recorded.Load()
}

// FragSpanSnapshot is a FragSpan in JSON form with absolute timestamps
// (the worker knows no root start to offset against).
type FragSpanSnapshot struct {
	Stage       string  `json:"stage"`
	Component   string  `json:"component"`
	Task        int     `json:"task"`
	Parent      int     `json:"parent"`
	StartUnixNs int64   `json:"start_unix_ns"`
	DurationUs  float64 `json:"duration_us"`
}

// FragmentSnapshot is one trace's worth of remote spans in JSON form.
type FragmentSnapshot struct {
	TraceID    uint64             `json:"trace_id"`
	WireParent int                `json:"wire_parent"`
	Truncated  uint64             `json:"truncated_spans,omitempty"`
	Spans      []FragSpanSnapshot `json:"spans"`
}

// Snapshot returns the retained fragments, oldest trace first. Nil-safe
// (empty).
func (f *Fragments) Snapshot() []FragmentSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FragmentSnapshot, 0, len(f.order))
	for i := 0; i < len(f.order); i++ {
		fr := f.byID[f.order[(f.next+i)%len(f.order)]]
		if fr == nil {
			continue
		}
		fs := FragmentSnapshot{TraceID: fr.traceID, WireParent: fr.wireParent, Truncated: fr.truncated}
		for _, s := range fr.spans {
			fs.Spans = append(fs.Spans, FragSpanSnapshot{
				Stage:       s.Stage,
				Component:   s.Component,
				Task:        s.Task,
				Parent:      s.Parent,
				StartUnixNs: s.Start.UnixNano(),
				DurationUs:  float64(s.End.Sub(s.Start)) / 1e3,
			})
		}
		out = append(out, fs)
	}
	return out
}

// RegisterMetrics exposes fragment-store volume counters on reg.
func (f *Fragments) RegisterMetrics(reg *Registry) {
	reg.CounterFunc("trace_fragment_spans_total",
		"Spans recorded against remote traces on this process.",
		func() float64 { return float64(f.Recorded()) })
	reg.CounterFunc("trace_fragments_evicted_total",
		"Trace fragments evicted from the bounded ring.",
		func() float64 {
			if f == nil {
				return 0
			}
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(f.evicted)
		})
}
