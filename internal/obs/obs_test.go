package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistryNamingRules(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(&Counter{desc: Desc{Name: "BadName", Help: "x"}}); err == nil {
		t.Fatal("camel-case name accepted")
	}
	if err := reg.Register(&Counter{desc: Desc{Name: "ok_name", Help: ""}}); err == nil {
		t.Fatal("empty help accepted")
	}
	if err := reg.Register(&Counter{desc: Desc{Name: "ok_name", Help: "h"}}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&Counter{desc: Desc{Name: "ok_name", Help: "h"}}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestGetOrCreateAndReplaceSemantics(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("requests_total", "requests")
	c1.Add(3)
	c2 := reg.Counter("requests_total", "requests")
	if c1 != c2 || c2.Value() != 3 {
		t.Fatalf("get-or-create returned a different counter")
	}
	reg.GaugeFunc("depth", "queue depth", func() float64 { return 1 })
	reg.GaugeFunc("depth", "queue depth", func() float64 { return 2 })
	fams := reg.Gather()
	for _, f := range fams {
		if f.Desc.Name == "depth" && f.Samples[0].Value != 2 {
			t.Fatalf("GaugeFunc did not rebind: %v", f.Samples[0].Value)
		}
	}
}

func TestVecLabels(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("edge_tuples_total", "tuples per edge", "edge")
	cv.With("a->b").Add(5)
	cv.With("b->c").Add(7)
	cv.With("a->b").Inc()
	fams := reg.Gather()
	if len(fams) != 1 || len(fams[0].Samples) != 2 {
		t.Fatalf("gather: %+v", fams)
	}
	// Sorted by label value.
	if fams[0].Samples[0].Label != "a->b" || fams[0].Samples[0].Value != 6 {
		t.Fatalf("sample 0: %+v", fams[0].Samples[0])
	}
	if fams[0].Samples[1].Label != "b->c" || fams[0].Samples[1].Value != 7 {
		t.Fatalf("sample 1: %+v", fams[0].Samples[1])
	}
}

// TestExpositionRoundTrip writes a registry with all collector kinds and
// parses it back, checking values, labels, and histogram series survive.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tuples_total", "total tuples").Add(42)
	reg.Gauge("queue_depth", "current depth").Set(3.5)
	gv := reg.GaugeVec("load", "per-worker load", "task")
	gv.With(`0`).Set(1.25)
	gv.With(`with"quote`).Set(2)
	h := reg.Histogram("process_seconds", "per-record latency")
	for _, d := range []time.Duration{time.Microsecond, 3 * time.Microsecond, time.Millisecond} {
		h.Observe(d)
	}

	var buf bytes.Buffer
	if err := reg.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	pm, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse back failed: %v\n%s", err, text)
	}

	if v := pm.Value("tuples_total", -1); v != 42 {
		t.Fatalf("tuples_total = %v", v)
	}
	if pm["tuples_total"].Type != "counter" {
		t.Fatalf("TYPE: %q", pm["tuples_total"].Type)
	}
	if v := pm.Value("queue_depth", -1); v != 3.5 {
		t.Fatalf("queue_depth = %v", v)
	}
	loads := pm["load"]
	if loads == nil || len(loads.Samples) != 2 {
		t.Fatalf("load family: %+v", loads)
	}
	found := false
	for _, s := range loads.Samples {
		if s.Labels["task"] == `with"quote` && s.Value == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped label lost: %+v", loads.Samples)
	}

	if v := pm.Value("process_seconds_count", -1); v != 3 {
		t.Fatalf("histogram count = %v", v)
	}
	buckets := pm["process_seconds_bucket"]
	if buckets == nil {
		t.Fatal("no bucket series")
	}
	// Cumulative: the +Inf bucket equals the count.
	var inf float64 = -1
	for _, s := range buckets.Samples {
		if s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
	}
	if inf != 3 {
		t.Fatalf("+Inf bucket = %v", inf)
	}
	// Quantile from scraped buckets is in the right decade.
	p50 := HistogramQuantile(buckets.Samples, 0.5)
	if p50 <= 0 || p50 > 20e-6 {
		t.Fatalf("scraped p50 = %v s", p50)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"<html>not metrics</html>",
		"name_only\n",
		`ok_metric{unterminated="v 1` + "\n",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	samples := []ParsedSample{
		{Labels: map[string]string{"le": "0.001"}, Value: 50},
		{Labels: map[string]string{"le": "0.01"}, Value: 100},
		{Labels: map[string]string{"le": "+Inf"}, Value: 100},
	}
	p50 := HistogramQuantile(samples, 0.5)
	if p50 <= 0 || p50 > 0.001 {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := HistogramQuantile(samples, 0.99)
	if p99 < 0.001 || p99 > 0.01 {
		t.Fatalf("p99 = %v", p99)
	}
	if v := HistogramQuantile(nil, 0.5); v != 0 {
		t.Fatalf("empty = %v", v)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "a").Add(1)
	reg.Histogram("b_seconds", "b").Observe(time.Millisecond)
	snap := reg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap[0].Name != "a_total" || snap[0].Samples[0].Value != 1 {
		t.Fatalf("counter snapshot: %+v", snap[0])
	}
	hs := snap[1].Samples[0]
	if snap[1].Name != "b_seconds" || hs.Count != 1 || hs.P50Us <= 0 {
		t.Fatalf("histogram snapshot: %+v", snap[1])
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "hits").Inc()
	RegisterProcessMetrics(reg)
	tracer := NewTracer(1, 8)
	tr := tracer.Sample()
	now := time.Now()
	root := tr.Append("emit", "source", 0, -1, now, now.Add(time.Microsecond))
	tr.Append("process", "worker", 1, root, now.Add(time.Microsecond), now.Add(2*time.Microsecond))

	srv := httptest.NewServer(NewDebugMux(reg, tracer))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ExpositionContentType {
		t.Fatalf("content type: %q", got)
	}
	pm, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Value("hits_total", -1) != 1 {
		t.Fatalf("hits_total: %v", pm.Value("hits_total", -1))
	}
	if pm.Value("process_goroutines", -1) <= 0 {
		t.Fatal("process metrics missing")
	}

	resp2, err := srv.Client().Get(srv.URL + "/debug/traces?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	s := body.String()
	if !strings.Contains(s, `"stage": "emit"`) || !strings.Contains(s, `"sampled_total": 1`) {
		t.Fatalf("traces body: %s", s)
	}

	resp3, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Fatalf("pprof: %d", resp3.StatusCode)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2.5)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v", g.Value())
	}
	if math.IsNaN(g.Value()) {
		t.Fatal("NaN")
	}
}
