package obs

import (
	"strings"
	"testing"
)

func TestParseHealthRules(t *testing.T) {
	rules, err := ParseHealthRules(`
# comment
slow_tail: p99_ms > 250 for 3
idle: load < 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	if r := rules[0]; r.Name != "slow_tail" || r.Signal != "p99_ms" || r.Op != ">" || r.Threshold != 250 || r.For != 3 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if r := rules[1]; r.For != 1 || r.Op != "<" {
		t.Fatalf("rule 1 = %+v (for must default to 1)", r)
	}
	if got := rules[0].String(); got != "slow_tail: p99_ms > 250 for 3" {
		t.Fatalf("String() = %q", got)
	}

	for _, bad := range []string{
		"no colon here",
		"r: sig >= 5",
		"r: sig > notanumber",
		"r: sig > 5 for 0",
		"r: sig > 5 whenever 3",
		"r: sig >",
	} {
		if _, err := ParseHealthRules(bad); err == nil {
			t.Errorf("ParseHealthRules(%q) accepted garbage", bad)
		}
	}
}

func TestDefaultHealthRulesParse(t *testing.T) {
	if len(DefaultHealthRules()) == 0 {
		t.Fatal("no default rules")
	}
}

func TestHealthHysteresisAndJournal(t *testing.T) {
	j := NewJournal(16)
	rules, _ := ParseHealthRules("slow: p99_ms > 100 for 3")
	e := NewHealthEngine(rules, j)

	breach := map[string]float64{"p99_ms": 500}
	clean := map[string]float64{"p99_ms": 10}

	e.Eval("w0", breach, 0x1)
	e.Eval("w0", breach, 0x2)
	if st := e.Status(); !st.Healthy || st.Firing != 0 {
		t.Fatalf("fired before `for 3` satisfied: %+v", st)
	}
	e.Eval("w0", breach, 0x3)
	st := e.Status()
	if st.Healthy || st.Firing != 1 {
		t.Fatalf("rule must fire on 3rd breach: %+v", st)
	}
	if st.Rules[0].ExemplarTraceID != 0x3 {
		t.Fatalf("exemplar = %#x, want latest breaching trace 0x3", st.Rules[0].ExemplarTraceID)
	}

	// One clean round must not resolve (hysteresis both directions).
	e.Eval("w0", clean, 0)
	if st := e.Status(); st.Healthy {
		t.Fatal("resolved after a single clean evaluation")
	}
	e.Eval("w0", clean, 0)
	e.Eval("w0", clean, 0)
	if st := e.Status(); !st.Healthy {
		t.Fatal("did not resolve after 3 clean evaluations")
	}

	var fires, resolves int
	for _, ev := range j.Recent(0) {
		switch ev.Type {
		case "health_fire":
			fires++
			if ev.TraceID == 0 {
				t.Error("health_fire event lost its exemplar trace id")
			}
			if !strings.Contains(ev.Msg, "slow") {
				t.Errorf("fire msg %q does not name the rule", ev.Msg)
			}
		case "health_resolve":
			resolves++
		}
	}
	if fires != 1 || resolves != 1 {
		t.Fatalf("journal saw %d fires / %d resolves, want 1/1", fires, resolves)
	}
}

func TestHealthMissingSignalSkipped(t *testing.T) {
	rules, _ := ParseHealthRules("ckpt: checkpoint_lag_s > 60")
	e := NewHealthEngine(rules, nil)
	e.Eval("w0", map[string]float64{"queue": 3}, 0) // signal absent
	if st := e.Status(); len(st.Rules) != 0 {
		t.Fatalf("missing signal must not create state: %+v", st.Rules)
	}
}

func TestHealthForget(t *testing.T) {
	rules, _ := ParseHealthRules("q: queue > 1")
	e := NewHealthEngine(rules, nil)
	e.Eval("w0", map[string]float64{"queue": 5}, 0)
	e.Eval("w1", map[string]float64{"queue": 5}, 0)
	if st := e.Status(); st.Firing != 2 {
		t.Fatalf("want both targets firing, got %+v", st)
	}
	e.Forget("w0")
	st := e.Status()
	if st.Firing != 1 || len(st.Rules) != 1 || st.Rules[0].Target != "w1" {
		t.Fatalf("Forget(w0) left %+v", st)
	}
}

func TestHealthStatusSorted(t *testing.T) {
	rules, _ := ParseHealthRules("b: x > 0\na: x > 0")
	e := NewHealthEngine(rules, nil)
	e.Eval("w1", map[string]float64{"x": 1}, 0)
	e.Eval("w0", map[string]float64{"x": 1}, 0)
	st := e.Status()
	if len(st.Rules) != 4 {
		t.Fatalf("want 4 rule states, got %d", len(st.Rules))
	}
	want := []struct{ target, rule string }{{"w0", "a"}, {"w0", "b"}, {"w1", "a"}, {"w1", "b"}}
	for i, w := range want {
		if st.Rules[i].Target != w.target || st.Rules[i].Rule != w.rule {
			t.Fatalf("rule %d = %s/%s, want %s/%s", i, st.Rules[i].Target, st.Rules[i].Rule, w.target, w.rule)
		}
	}
}

func TestHealthEngineNilSafe(t *testing.T) {
	var e *HealthEngine
	e.Eval("w0", map[string]float64{"x": 1}, 0)
	e.Forget("w0")
	if st := e.Status(); !st.Healthy || len(st.Rules) != 0 {
		t.Fatalf("nil engine status = %+v", st)
	}
}
