// Prometheus text exposition: writing (WriteExposition), parsing
// (ParseExposition — the scrape client used by the coordinator's cluster
// table and the promcheck validator), and the JSON-friendly Snapshot the
// bench harness embeds in its artifacts. Format reference: the Prometheus
// text format 0.0.4 — `# HELP`/`# TYPE` comments followed by
// `name{label="value"} number` sample lines; histograms expose cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
)

// ExpositionContentType is the Content-Type of the /metrics endpoint.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// writeSeries writes one sample line with up to two label pairs.
func writeSeries(w io.Writer, name string, pairs [][2]string, value string) error {
	if len(pairs) == 0 {
		_, err := fmt.Fprintf(w, "%s %s\n", name, value)
		return err
	}
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = p[0] + `="` + escapeLabel(p[1]) + `"`
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, strings.Join(parts, ","), value)
	return err
}

// WriteExposition renders the registry in Prometheus text format, families
// sorted by name, label values sorted within a family. Histogram bucket
// bounds are emitted in seconds; when a family has an exemplar store,
// bucket lines gain OpenMetrics-style `# {trace_id="..."} value ts`
// suffixes, each exemplar attached to the first bucket that covers it.
func (r *Registry) WriteExposition(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if _, err := fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n",
			fam.Desc.Name, fam.Desc.Help, fam.Desc.Name, fam.Kind); err != nil {
			return err
		}
		var exs []Exemplar
		if fam.Kind == KindHistogram {
			exs = r.exemplarsOf(fam.Desc.Name).Snapshot()
			sort.Slice(exs, func(i, j int) bool { return exs[i].Value < exs[j].Value })
		}
		for _, s := range fam.Samples {
			var base [][2]string
			if fam.Desc.Label != "" {
				base = append(base, [2]string{fam.Desc.Label, s.Label})
			}
			if fam.Kind != KindHistogram {
				if err := writeSeries(bw, fam.Desc.Name, base, formatValue(s.Value)); err != nil {
					return err
				}
				continue
			}
			if err := writeHistogram(bw, fam.Desc.Name, base, s.Hist, &exs); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// exemplarSuffix renders (and consumes) the first pending exemplar inside
// (lo, hi]; "" when none fits.
func exemplarSuffix(exs *[]Exemplar, lo, hi float64) string {
	for i, e := range *exs {
		if e.Value > lo && (e.Value <= hi || math.IsInf(hi, 1)) {
			*exs = append((*exs)[:i], (*exs)[i+1:]...)
			return fmt.Sprintf(" # {trace_id=\"%016x\"} %s %s",
				e.TraceID, formatValue(e.Value),
				strconv.FormatFloat(float64(e.UnixNs)/1e9, 'f', 3, 64))
		}
	}
	return ""
}

// writeHistogram renders one histogram sample as cumulative buckets plus
// _sum and _count, bounds in seconds.
func writeHistogram(w io.Writer, name string, base [][2]string, h *metrics.Latency, exs *[]Exemplar) error {
	var cum uint64
	prevHi := 0.0
	for _, b := range h.Buckets() {
		if b.Hi == time.Duration(math.MaxInt64) {
			continue // folded into the trailing +Inf bucket
		}
		cum += b.Count
		hi := b.Hi.Seconds()
		pairs := append(append([][2]string(nil), base...), [2]string{"le", formatValue(hi)})
		v := strconv.FormatUint(cum, 10) + exemplarSuffix(exs, prevHi, hi)
		if err := writeSeries(w, name+"_bucket", pairs, v); err != nil {
			return err
		}
		prevHi = hi
	}
	pairs := append(append([][2]string(nil), base...), [2]string{"le", "+Inf"})
	v := strconv.FormatUint(h.Count(), 10) + exemplarSuffix(exs, prevHi, math.Inf(1))
	if err := writeSeries(w, name+"_bucket", pairs, v); err != nil {
		return err
	}
	if err := writeSeries(w, name+"_sum", base, formatValue(h.Sum().Seconds())); err != nil {
		return err
	}
	return writeSeries(w, name+"_count", base, strconv.FormatUint(h.Count(), 10))
}

// ------------------------------------------------------------- parsing --

// ParsedSample is one scraped series: its labels and value, plus the
// optional exemplar and timestamp carried on the line.
type ParsedSample struct {
	Labels map[string]string
	Value  float64
	// TimestampMs is the optional sample timestamp (0 when absent).
	TimestampMs int64
	// Exemplar is the optional `# {...} value ts` exemplar (nil when
	// absent).
	Exemplar *ParsedExemplar
}

// ParsedExemplar is one scraped exemplar.
type ParsedExemplar struct {
	Labels map[string]string
	Value  float64
	// TimestampS is the optional exemplar timestamp in unix seconds (0
	// when absent).
	TimestampS float64
}

// TraceID returns the trace id an exemplar links to (0 when absent or
// malformed). The writer emits 16 hex digits under the trace_id key.
func (e *ParsedExemplar) TraceID() uint64 {
	if e == nil {
		return 0
	}
	id, err := strconv.ParseUint(e.Labels["trace_id"], 16, 64)
	if err != nil {
		return 0
	}
	return id
}

// ParsedFamily is one scraped metric family.
type ParsedFamily struct {
	Name    string
	Type    string // from # TYPE; "" when the scrape carried none
	Help    string
	Samples []ParsedSample
}

// ParsedMetrics indexes a scrape by family name. Histogram series land
// under their full series name (name_bucket, name_sum, name_count).
type ParsedMetrics map[string]*ParsedFamily

// Value returns the single unlabeled (or first) sample value of a family,
// or def when absent.
func (pm ParsedMetrics) Value(name string, def float64) float64 {
	f, ok := pm[name]
	if !ok || len(f.Samples) == 0 {
		return def
	}
	return f.Samples[0].Value
}

// sampleRe is intentionally not a regexp: the format is simple enough that
// a hand parser is both faster and clearer about what it rejects.

// ParseExposition parses Prometheus text exposition. Every non-comment,
// non-blank line must be a well-formed sample; the error names the first
// offending line. An empty scrape (no samples at all) is an error, so a
// misrouted endpoint (HTML, JSON) fails loudly.
func ParseExposition(r io.Reader) (ParsedMetrics, error) {
	out := make(ParsedMetrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	samples := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, out); err != nil {
				return nil, fmt.Errorf("obs: exposition line %d: %w", lineno, err)
			}
			continue
		}
		if err := parseSample(line, out); err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", lineno, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if samples == 0 {
		return nil, fmt.Errorf("obs: exposition contains no samples")
	}
	return out, nil
}

// parseComment handles # HELP and # TYPE lines (other comments are legal
// and ignored).
func parseComment(line string, out ParsedMetrics) error {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		fam := familyFor(out, fields[2])
		fam.Type = fields[3]
	case "HELP":
		fam := familyFor(out, fields[2])
		fam.Help = strings.Join(fields[3:], " ")
	}
	return nil
}

func familyFor(out ParsedMetrics, name string) *ParsedFamily {
	fam, ok := out[name]
	if !ok {
		fam = &ParsedFamily{Name: name}
		out[name] = fam
	}
	return fam
}

// parseSample parses `name{k="v",...} value [timestamp] [# {...} v [ts]]`
// into its family. The label set is scanned quote-aware — values may
// contain escaped quotes, backslashes, newlines, and even `}` or `#` —
// so the scan never confuses a byte inside a quoted value with syntax.
func parseSample(line string, out ParsedMetrics) error {
	name := line
	labels := map[string]string{}
	rest := ""
	if i := strings.IndexAny(line, "{ \t"); i >= 0 {
		name = line[:i]
		if line[i] == '{' {
			var err error
			labels, rest, err = scanLabelSet(line[i:])
			if err != nil {
				return fmt.Errorf("%w in %q", err, line)
			}
		} else {
			rest = line[i:]
		}
		rest = strings.TrimSpace(rest)
	} else {
		return fmt.Errorf("sample line %q has no value", line)
	}
	if !nameRe.MatchString(name) {
		return fmt.Errorf("metric name %q is not snake_case", name)
	}
	sample := ParsedSample{Labels: labels}
	// Split off the exemplar section; '#' cannot occur in a value or
	// timestamp, which is all that precedes it.
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		exPart := strings.TrimSpace(rest[i+1:])
		rest = strings.TrimSpace(rest[:i])
		ex, err := parseExemplar(exPart)
		if err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		sample.Exemplar = ex
	}
	fields := strings.Fields(rest)
	switch len(fields) {
	case 1:
	case 2:
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad timestamp %q: %w", fields[1], err)
		}
		sample.TimestampMs = ts
	default:
		return fmt.Errorf("sample line %q has no value", line)
	}
	v, err := parseNumber(fields[0])
	if err != nil {
		return fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	sample.Value = v
	fam := familyFor(out, name)
	fam.Samples = append(fam.Samples, sample)
	return nil
}

// parseExemplar parses `{k="v",...} value [ts]` (the part after `# `).
func parseExemplar(s string) (*ParsedExemplar, error) {
	if len(s) == 0 || s[0] != '{' {
		return nil, fmt.Errorf("exemplar %q does not start with a label set", s)
	}
	labels, rest, err := scanLabelSet(s)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("exemplar %q needs a value and optional timestamp", s)
	}
	ex := &ParsedExemplar{Labels: labels}
	if ex.Value, err = parseNumber(fields[0]); err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if ex.TimestampS, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q: %w", fields[1], err)
		}
	}
	return ex, nil
}

// parseNumber accepts Go floats plus the exposition spellings of infinity.
func parseNumber(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// scanLabelSet consumes a leading `{k="v",...}` group and returns the
// labels plus whatever follows the closing brace. The scan tracks quoting
// through scanQuoted, so `}`/`#`/`,` inside a quoted value never
// terminate the set early.
func scanLabelSet(s string) (map[string]string, string, error) {
	if len(s) == 0 || s[0] != '{' {
		return nil, "", fmt.Errorf("label set %q does not start with {", s)
	}
	labels := map[string]string{}
	s = s[1:]
	for {
		s = strings.TrimSpace(s)
		if len(s) == 0 {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label pair %q has no =", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %q value is not quoted", key)
		}
		val, rest, err := scanQuoted(s)
		if err != nil {
			return nil, "", err
		}
		labels[key] = val
		s = strings.TrimSpace(rest)
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

// scanQuoted consumes a leading quoted string with \\, \", \n escapes.
func scanQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string in %q", s)
}

// HistogramQuantile estimates the q-quantile in seconds from the
// cumulative `_bucket` samples of one histogram series (optionally
// filtered by a label pair). It mirrors metrics.Latency.Quantile on the
// scraped representation: interpolate within the first bucket whose
// cumulative count reaches the target.
func HistogramQuantile(buckets []ParsedSample, q float64) float64 {
	type bound struct {
		le    float64
		count float64
	}
	bs := make([]bound, 0, len(buckets))
	for _, s := range buckets {
		le, err := parseNumber(s.Labels["le"])
		if err != nil {
			continue
		}
		bs = append(bs, bound{le: le, count: s.Value})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	if len(bs) == 0 {
		return 0
	}
	total := bs[len(bs)-1].count
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * total
	prevCount, prevLe := 0.0, 0.0
	for _, b := range bs {
		if b.count >= target {
			if math.IsInf(b.le, 1) {
				return prevLe
			}
			frac := 0.5
			if b.count > prevCount {
				frac = (target - prevCount) / (b.count - prevCount)
			}
			return prevLe + (b.le-prevLe)*frac
		}
		prevCount, prevLe = b.count, b.le
	}
	last := bs[len(bs)-1].le
	if math.IsInf(last, 1) {
		return prevLe
	}
	return last
}

// ------------------------------------------------------------ snapshot --

// SampleSnapshot is one sample in JSON form. Histogram samples carry
// count/mean and the headline quantiles in microseconds — the shape BENCH
// artifacts want — instead of raw buckets.
type SampleSnapshot struct {
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value,omitempty"`
	Count uint64  `json:"count,omitempty"`
	MeanUs float64 `json:"mean_us,omitempty"`
	P50Us  float64 `json:"p50_us,omitempty"`
	P99Us  float64 `json:"p99_us,omitempty"`
	MaxUs  float64 `json:"max_us,omitempty"`
}

// MetricSnapshot is one family in JSON form.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Kind    string           `json:"kind"`
	Help    string           `json:"help,omitempty"`
	Label   string           `json:"label,omitempty"`
	Samples []SampleSnapshot `json:"samples"`
}

// Snapshot renders every family for JSON embedding, sorted by name.
func (r *Registry) Snapshot() []MetricSnapshot {
	fams := r.Gather()
	out := make([]MetricSnapshot, 0, len(fams))
	for _, fam := range fams {
		ms := MetricSnapshot{Name: fam.Desc.Name, Kind: string(fam.Kind), Help: fam.Desc.Help, Label: fam.Desc.Label}
		for _, s := range fam.Samples {
			ss := SampleSnapshot{Label: s.Label, Value: s.Value}
			if s.Hist != nil {
				ss.Value = 0
				ss.Count = s.Hist.Count()
				ss.MeanUs = float64(s.Hist.Mean()) / 1e3
				ss.P50Us = float64(s.Hist.Quantile(0.5)) / 1e3
				ss.P99Us = float64(s.Hist.Quantile(0.99)) / 1e3
				ss.MaxUs = float64(s.Hist.Max()) / 1e3
			}
			ms.Samples = append(ms.Samples, ss)
		}
		out = append(out, ms)
	}
	return out
}
