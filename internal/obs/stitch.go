// Trace stitching. The coordinator owns root traces (emit/dispatch/wire
// spans); each worker owns fragments (queue/process/verify/deliver spans)
// keyed by trace id. A Stitcher accepts both in any order — fragments
// routinely arrive before their root when worker scrapes race the local
// ring — and reassembles end-to-end traces. It is defensive by design:
//
//   - fragments without a root wait in a bounded pending ring (a worker
//     that died mid-session leaves orphans, which must not pin memory);
//   - re-adding the same root or the same (trace, source) fragment
//     replaces the previous copy, so repeated scrapes are idempotent;
//   - spans duplicated by a retry (the PR 4 replay path re-processes
//     records past the checkpoint cursor) are kept but counted, so a
//     stitched trace shows that the retry happened;
//   - every map entry is tied to a fixed-size ring slot, so no code path
//     leaks slots regardless of arrival order.
package obs

import (
	"sort"
	"sync"
)

// maxFragSources caps how many distinct sources may contribute fragments
// to one trace; a fleet is far smaller.
const maxFragSources = 64

// StitchedTrace is one end-to-end trace: the coordinator's root spans
// plus every worker fragment, re-based onto the root's clock.
type StitchedTrace struct {
	TraceSnapshot
	// Origins lists the processes that contributed spans, sorted;
	// "coordinator" for the root, scrape sources for fragments.
	Origins []string `json:"origins"`
	// DuplicateSpans counts fragment spans whose (stage, component, task,
	// parent) repeats within one source — the signature of a retry
	// re-processing a replayed record.
	DuplicateSpans int `json:"duplicate_spans,omitempty"`
}

// StitchSnapshot is the coordinator-side cluster view served at
// /debug/traces.
type StitchSnapshot struct {
	Traces []StitchedTrace `json:"traces"`
	// OrphanFragments counts trace ids holding fragments with no root yet.
	OrphanFragments int `json:"orphan_fragments"`
	// EvictedTraces counts roots dropped from the bounded ring.
	EvictedTraces uint64 `json:"evicted_traces"`
}

// Stitcher reassembles distributed traces from roots and fragments. All
// methods lock and return quickly; nothing blocks on I/O.
type Stitcher struct {
	mu       sync.Mutex
	capacity int

	roots     map[uint64]TraceSnapshot            // guarded by mu
	rootOrder []uint64                            // guarded by mu; FIFO ring
	rootNext  int                                 // guarded by mu
	frags     map[uint64]map[string]FragmentSnapshot // guarded by mu; ids with roots
	pending   map[uint64]map[string]FragmentSnapshot // guarded by mu; ids without roots
	pendOrder []uint64                            // guarded by mu; FIFO ring
	pendNext  int                                 // guarded by mu
	evicted   uint64                              // guarded by mu
}

// NewStitcher returns a stitcher retaining the most recent capacity root
// traces and as many orphaned trace ids (capacity <= 0 selects 256).
func NewStitcher(capacity int) *Stitcher {
	if capacity <= 0 {
		capacity = 256
	}
	return &Stitcher{
		capacity: capacity,
		roots:    make(map[uint64]TraceSnapshot, capacity),
		frags:    make(map[uint64]map[string]FragmentSnapshot, capacity),
		pending:  make(map[uint64]map[string]FragmentSnapshot),
	}
}

// AddRoot registers (or refreshes) a coordinator root trace and adopts
// any fragments that arrived before it.
func (s *Stitcher) AddRoot(root TraceSnapshot) {
	if s == nil || root.ID == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roots[root.ID]; ok {
		s.roots[root.ID] = root // refresh in place, slot already claimed
		return
	}
	if len(s.rootOrder) < s.capacity {
		s.rootOrder = append(s.rootOrder, root.ID)
	} else {
		old := s.rootOrder[s.rootNext]
		delete(s.roots, old)
		delete(s.frags, old)
		s.rootOrder[s.rootNext] = root.ID
		s.rootNext = (s.rootNext + 1) % s.capacity
		s.evicted++
	}
	s.roots[root.ID] = root
	if pend, ok := s.pending[root.ID]; ok {
		s.frags[root.ID] = pend
		delete(s.pending, root.ID)
		// The pending ring slot goes stale; evicting it later is a no-op.
	}
}

// AddFragment registers (or refreshes) the fragment scraped from source
// for one trace. Fragments for unknown roots wait in a bounded pending
// ring until the root arrives or the slot is reclaimed.
func (s *Stitcher) AddFragment(source string, f FragmentSnapshot) {
	if s == nil || f.TraceID == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roots[f.TraceID]; ok {
		m := s.frags[f.TraceID]
		if m == nil {
			m = make(map[string]FragmentSnapshot)
			s.frags[f.TraceID] = m
		}
		if _, have := m[source]; have || len(m) < maxFragSources {
			m[source] = f
		}
		return
	}
	m := s.pending[f.TraceID]
	if m == nil {
		// Claim a pending slot for this orphan id, reclaiming the oldest
		// slot when full (its map entry may already be gone: adopted by a
		// root, or overwritten — both leave the delete a no-op).
		if len(s.pendOrder) < s.capacity {
			s.pendOrder = append(s.pendOrder, f.TraceID)
		} else {
			delete(s.pending, s.pendOrder[s.pendNext])
			s.pendOrder[s.pendNext] = f.TraceID
			s.pendNext = (s.pendNext + 1) % s.capacity
		}
		m = make(map[string]FragmentSnapshot)
		s.pending[f.TraceID] = m
	}
	if _, have := m[source]; have || len(m) < maxFragSources {
		m[source] = f
	}
}

// Snapshot stitches and returns the cluster trace view, newest root
// first.
func (s *Stitcher) Snapshot() StitchSnapshot {
	if s == nil {
		return StitchSnapshot{Traces: []StitchedTrace{}}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := StitchSnapshot{
		Traces:          make([]StitchedTrace, 0, len(s.rootOrder)),
		OrphanFragments: len(s.pending),
		EvictedTraces:   s.evicted,
	}
	for i := 0; i < len(s.rootOrder); i++ {
		id := s.rootOrder[(s.rootNext-1-i+len(s.rootOrder))%len(s.rootOrder)]
		root, ok := s.roots[id]
		if !ok {
			continue
		}
		out.Traces = append(out.Traces, stitchOne(root, s.frags[id]))
	}
	return out
}

// stitchOne merges one root with its fragments: fragment spans are
// re-based onto the root's start, their intra-fragment parent indices
// shifted past the root's spans, and parent -1 re-anchored at the
// fragment's wire parent.
func stitchOne(root TraceSnapshot, frags map[string]FragmentSnapshot) StitchedTrace {
	st := StitchedTrace{TraceSnapshot: TraceSnapshot{ID: root.ID, StartUnixNs: root.StartUnixNs}}
	st.Spans = make([]SpanSnapshot, 0, len(root.Spans))
	for _, sp := range root.Spans {
		sp.Origin = "coordinator"
		st.Spans = append(st.Spans, sp)
	}
	st.Origins = append(st.Origins, "coordinator")
	sources := make([]string, 0, len(frags))
	for src := range frags {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	for _, src := range sources {
		f := frags[src]
		st.Origins = append(st.Origins, src)
		base := len(st.Spans)
		type spanKey struct {
			stage, component string
			task, parent     int
		}
		seen := make(map[spanKey]bool, len(f.Spans))
		for _, sp := range f.Spans {
			k := spanKey{sp.Stage, sp.Component, sp.Task, sp.Parent}
			if seen[k] {
				st.DuplicateSpans++
			}
			seen[k] = true
			parent := f.WireParent
			if sp.Parent >= 0 {
				parent = base + sp.Parent
			} else if parent < 0 || parent >= len(root.Spans) {
				// A wire parent outside the root (stale root snapshot or a
				// mismatched session) degrades to a parentless span rather
				// than a dangling reference.
				parent = -1
			}
			st.Spans = append(st.Spans, SpanSnapshot{
				Stage:     sp.Stage,
				Component: sp.Component,
				Task:      sp.Task,
				Parent:    parent,
				StartUs:   float64(sp.StartUnixNs-root.StartUnixNs) / 1e3,
				DurationUs: sp.DurationUs,
				Origin:    src,
			})
		}
	}
	return st
}
