package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestExpositionEscapedLabelRoundTrip drives nasty label values through
// the writer and back through the parser: backslashes, quotes, newlines,
// and syntax bytes (`}`, `#`, `,`) inside values must all survive.
func TestExpositionEscapedLabelRoundTrip(t *testing.T) {
	nasty := []string{
		`back\slash`,
		`qu"ote`,
		"new\nline",
		`brace}inside`,
		`hash#inside`,
		`comma,inside`,
		`all\of"them}#,` + "\n" + `mixed`,
	}
	reg := NewRegistry()
	vec := reg.GaugeVec("escape_test_gauge", "escape torture", "edge")
	for i, v := range nasty {
		vec.With(v).Set(float64(i + 1)) // obscheck: bounded — fixed test table
	}
	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	pm, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse of own output failed: %v\n%s", err, sb.String())
	}
	fam := pm["escape_test_gauge"]
	if fam == nil {
		t.Fatalf("family missing from round trip:\n%s", sb.String())
	}
	got := map[string]float64{}
	for _, s := range fam.Samples {
		got[s.Labels["edge"]] = s.Value
	}
	for i, v := range nasty {
		if got[v] != float64(i+1) {
			t.Errorf("label %q round-tripped to %v (want %d); full keys: %q", v, got[v], i+1, keysOf(got))
		}
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestExpositionNonFiniteValues covers +Inf/-Inf/NaN sample values in both
// directions.
func TestExpositionNonFiniteValues(t *testing.T) {
	for _, tc := range []struct {
		text string
		chk  func(float64) bool
	}{
		{"edge_metric 42\nedge_inf +Inf\n", func(v float64) bool { return math.IsInf(v, 1) }},
		{"edge_metric 42\nedge_inf Inf\n", func(v float64) bool { return math.IsInf(v, 1) }},
		{"edge_metric 42\nedge_inf -Inf\n", func(v float64) bool { return math.IsInf(v, -1) }},
		{"edge_metric 42\nedge_inf NaN\n", math.IsNaN},
	} {
		pm, err := ParseExposition(strings.NewReader(tc.text))
		if err != nil {
			t.Fatalf("%q: %v", tc.text, err)
		}
		if v := pm.Value("edge_inf", 0); !tc.chk(v) {
			t.Errorf("%q parsed to %v", tc.text, v)
		}
	}
	if formatValue(math.Inf(1)) != "+Inf" || formatValue(math.Inf(-1)) != "-Inf" {
		t.Error("formatValue must spell infinities the exposition way")
	}
}

// TestExpositionSampleTimestamps covers the optional trailing millisecond
// timestamp on sample lines.
func TestExpositionSampleTimestamps(t *testing.T) {
	pm, err := ParseExposition(strings.NewReader("stamped_total 5 1712345678901\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := pm["stamped_total"].Samples[0]
	if s.Value != 5 || s.TimestampMs != 1712345678901 {
		t.Fatalf("sample = %+v", s)
	}
}

// TestExpositionExemplarParsing covers the OpenMetrics exemplar suffix:
// labels, value, optional timestamp, and trace-id extraction.
func TestExpositionExemplarParsing(t *testing.T) {
	text := `rt_seconds_bucket{le="0.1"} 3 # {trace_id="00000000000000ab"} 0.053 1712345678.123
rt_seconds_bucket{le="+Inf"} 4
`
	pm, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	samples := pm["rt_seconds_bucket"].Samples
	ex := samples[0].Exemplar
	if ex == nil {
		t.Fatal("exemplar not parsed")
	}
	if ex.TraceID() != 0xab {
		t.Fatalf("TraceID = %#x, want 0xab", ex.TraceID())
	}
	if ex.Value != 0.053 || ex.TimestampS != 1712345678.123 {
		t.Fatalf("exemplar = %+v", ex)
	}
	if samples[1].Exemplar != nil {
		t.Fatal("bucket without exemplar must parse with nil exemplar")
	}
}

// TestExpositionExemplarWriteReadLoop drives an exemplar through the
// registry: observe a traced latency, write the exposition, parse it, and
// find the trace id attached to a covering bucket.
func TestExpositionExemplarWriteReadLoop(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("loop_seconds", "histogram with exemplars")
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	reg.ExemplarsFor("loop_seconds").Observe(0.050, 0xdeadbeef)

	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `trace_id="00000000deadbeef"`) {
		t.Fatalf("exposition lacks the exemplar:\n%s", sb.String())
	}
	pm, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse of own output failed: %v\n%s", err, sb.String())
	}
	var found bool
	for _, s := range pm["loop_seconds_bucket"].Samples {
		if s.Exemplar.TraceID() == 0xdeadbeef {
			found = true
			if s.Exemplar.Value != 0.050 {
				t.Fatalf("exemplar value = %v", s.Exemplar.Value)
			}
		}
	}
	if !found {
		t.Fatalf("no bucket carried the exemplar:\n%s", sb.String())
	}
}

// TestExpositionMalformedLinesRejected pins down the failure modes the
// hardened parser must still reject.
func TestExpositionMalformedLinesRejected(t *testing.T) {
	for _, bad := range []string{
		`m{l="unterminated} 1`,
		`m{l="dangling\} 1`,
		`m{l=unquoted} 1`,
		`m{l="v"} 1 2 3`,
		`m{l="v"} 1 # notbrace 2`,
		`m{l="v"} 1 # {t="x"} `,
		`m{l="v"} 1 # {t="x"} 1 2 3`,
		`m{l="v"}`,
		`Bad-Name 1`,
	} {
		if _, err := ParseExposition(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ParseExposition accepted %q", bad)
		}
	}
}

// TestExemplarStoreRing covers the bounded exemplar ring itself.
func TestExemplarStoreRing(t *testing.T) {
	var nilStore *ExemplarStore
	nilStore.Observe(1, 1) // nil-safe
	if len(nilStore.Snapshot()) != 0 {
		t.Fatal("nil store must be empty")
	}
	reg := NewRegistry()
	st := reg.ExemplarsFor("ring_seconds")
	if st != reg.ExemplarsFor("ring_seconds") {
		t.Fatal("ExemplarsFor must return the same store per family")
	}
	st.Observe(1, 0) // trace id 0 is "not traced" and must be ignored
	for i := 1; i <= 20; i++ {
		st.Observe(float64(i), uint64(i))
	}
	snap := st.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("ring holds %d exemplars, want 8", len(snap))
	}
	for _, e := range snap {
		if e.TraceID < 13 {
			t.Fatalf("ring kept stale exemplar %+v", e)
		}
	}
}
