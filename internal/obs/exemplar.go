// Histogram exemplars: a tiny bounded sample of (value, trace id) pairs
// attached to a histogram family, so a scraped bucket can point at one
// concrete sampled trace that landed in it — the link a firing latency
// SLO uses to answer "show me a slow one". Stores are registered on the
// Registry by family name; the exposition writer renders them as
// OpenMetrics-style `# {trace_id="..."} value ts` suffixes on _bucket
// lines, and ParseExposition reads them back.
package obs

import (
	"sync"
	"time"
)

// exemplarRing bounds how many exemplars one family retains.
const exemplarRing = 8

// Exemplar is one (observation, trace) pair.
type Exemplar struct {
	// TraceID is the sampled trace that produced the observation.
	TraceID uint64
	// Value is the observed value in the family's unit (seconds for the
	// latency histograms).
	Value float64
	// UnixNs stamps the observation.
	UnixNs int64
}

// ExemplarStore retains the most recent exemplars of one family. All
// methods are nil-safe, so the observing path needs no attachment branch
// beyond the trace-id != 0 check it already makes.
type ExemplarStore struct {
	mu   sync.Mutex
	ring [exemplarRing]Exemplar // guarded by mu
	n    int                    // guarded by mu
	next int                    // guarded by mu
}

// Observe records one exemplar (ignored when traceID is 0 or the store
// nil).
func (e *ExemplarStore) Observe(value float64, traceID uint64) {
	if e == nil || traceID == 0 {
		return
	}
	now := time.Now().UnixNano()
	e.mu.Lock()
	e.ring[e.next] = Exemplar{TraceID: traceID, Value: value, UnixNs: now}
	e.next = (e.next + 1) % exemplarRing
	if e.n < exemplarRing {
		e.n++
	}
	e.mu.Unlock()
}

// Snapshot returns the retained exemplars (unordered). Nil-safe (empty).
func (e *ExemplarStore) Snapshot() []Exemplar {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Exemplar, e.n)
	copy(out, e.ring[:e.n])
	return out
}

// ExemplarsFor returns the exemplar store attached to the named family,
// creating it on first use. The store is independent of the collector's
// lifecycle: rebinding a HistogramFunc keeps its exemplars.
func (r *Registry) ExemplarsFor(name string) *ExemplarStore {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ex == nil {
		r.ex = make(map[string]*ExemplarStore)
	}
	e, ok := r.ex[name]
	if !ok {
		e = &ExemplarStore{}
		r.ex[name] = e
	}
	return e
}

// exemplarsOf returns the store under name without creating one.
func (r *Registry) exemplarsOf(name string) *ExemplarStore {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ex[name]
}
