// Live introspection endpoints. AttachDebug mounts the observability
// surface onto any mux: /metrics (Prometheus text exposition),
// /debug/traces (recent sampled tuple lineages as JSON), and the standard
// net/http/pprof handlers under /debug/pprof/. Both ssjoinworker and
// ssjoinbench serve this mux, and the coordinator's cluster table scrapes
// /metrics.
package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"
)

// DebugOptions selects what AttachDebugOpts mounts. Registry is
// mandatory; everything else is optional and nil-safe.
type DebugOptions struct {
	// Registry backs /metrics.
	Registry *Registry
	// Tracer contributes locally rooted traces to /debug/traces.
	Tracer *Tracer
	// Fragments contributes this process's remote-trace span fragments to
	// /debug/traces (the worker side of distributed tracing).
	Fragments *Fragments
	// Stitcher contributes the stitched cluster trace view to
	// /debug/traces (the coordinator side).
	Stitcher *Stitcher
	// Journal backs /debug/events.
	Journal *Journal
}

// TraceDoc is the /debug/traces JSON document: whichever of the three
// trace surfaces the process owns.
type TraceDoc struct {
	Sampled   uint64             `json:"sampled_total"`
	Traces    []TraceSnapshot    `json:"traces"`
	Fragments []FragmentSnapshot `json:"fragments,omitempty"`
	Stitched  *StitchSnapshot    `json:"stitched,omitempty"`
}

// AttachDebugOpts mounts /metrics, /debug/traces, /debug/events, and
// /debug/pprof/* on mux according to o.
func AttachDebugOpts(mux *http.ServeMux, o DebugOptions) {
	reg, tracer := o.Registry, o.Tracer
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		reg.WriteExposition(w) //nolint:errcheck — best effort over HTTP
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		limit := 0
		if s := req.URL.Query().Get("n"); s != "" {
			limit, _ = strconv.Atoi(s)
		}
		doc := TraceDoc{Sampled: tracer.Sampled(), Traces: tracer.Recent(), Fragments: o.Fragments.Snapshot()}
		if limit > 0 && limit < len(doc.Traces) {
			doc.Traces = doc.Traces[:limit]
		}
		if doc.Traces == nil {
			doc.Traces = []TraceSnapshot{}
		}
		if o.Stitcher != nil {
			snap := o.Stitcher.Snapshot()
			if limit > 0 && limit < len(snap.Traces) {
				snap.Traces = snap.Traces[:limit]
			}
			doc.Stitched = &snap
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck — best effort over HTTP
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := o.Journal.Snapshot()
		if s := req.URL.Query().Get("n"); s != "" {
			if n, _ := strconv.Atoi(s); n > 0 && n < len(snap.Events) {
				snap.Events = snap.Events[len(snap.Events)-n:]
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap) //nolint:errcheck — best effort over HTTP
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// AttachDebug mounts the classic surface: /metrics, /debug/traces, and
// /debug/pprof/*. reg may not be nil; tracer may be nil (traces endpoint
// serves an empty list).
func AttachDebug(mux *http.ServeMux, reg *Registry, tracer *Tracer) {
	AttachDebugOpts(mux, DebugOptions{Registry: reg, Tracer: tracer})
}

// NewDebugMux returns a fresh mux with the debug surface mounted.
func NewDebugMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	AttachDebug(mux, reg, tracer)
	return mux
}

// RegisterProcessMetrics adds process-wide runtime gauges (goroutines,
// heap, GC, uptime) to reg. All readings happen at scrape time.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("process_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("process_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
}
