// Live introspection endpoints. AttachDebug mounts the observability
// surface onto any mux: /metrics (Prometheus text exposition),
// /debug/traces (recent sampled tuple lineages as JSON), and the standard
// net/http/pprof handlers under /debug/pprof/. Both ssjoinworker and
// ssjoinbench serve this mux, and the coordinator's cluster table scrapes
// /metrics.
package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"
)

// AttachDebug mounts /metrics, /debug/traces, and /debug/pprof/* on mux.
// reg may not be nil; tracer may be nil (traces endpoint serves an empty
// list).
func AttachDebug(mux *http.ServeMux, reg *Registry, tracer *Tracer) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		reg.WriteExposition(w) //nolint:errcheck — best effort over HTTP
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		limit := 0
		if s := req.URL.Query().Get("n"); s != "" {
			limit, _ = strconv.Atoi(s)
		}
		traces := tracer.Recent()
		if limit > 0 && limit < len(traces) {
			traces = traces[:limit]
		}
		if traces == nil {
			traces = []TraceSnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct { //nolint:errcheck — best effort over HTTP
			Sampled uint64          `json:"sampled_total"`
			Traces  []TraceSnapshot `json:"traces"`
		}{Sampled: tracer.Sampled(), Traces: traces})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// NewDebugMux returns a fresh mux with the debug surface mounted.
func NewDebugMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	AttachDebug(mux, reg, tracer)
	return mux
}

// RegisterProcessMetrics adds process-wide runtime gauges (goroutines,
// heap, GC, uptime) to reg. All readings happen at scrape time.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("process_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("process_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
}
