// A bounded structured event log for lifecycle events: checkpoints,
// resumes, rebalances, retries, degraded-mode entries, kernel-mix shifts,
// and health rule transitions. Events are cheap fixed-shape structs in a
// ring buffer — the journal never allocates per Append beyond the ring —
// and each event can carry a trace id, linking "what happened" to "which
// tuple saw it". Workers expose their journal at /debug/events; the
// coordinator merges scraped journals into one session timeline with
// MergeEvents.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one journal entry.
type Event struct {
	// Seq orders events from one journal; unique per journal, not global.
	Seq uint64 `json:"seq"`
	// UnixNs is the wall-clock stamp.
	UnixNs int64 `json:"unix_ns"`
	// Type is the lifecycle event kind: checkpoint, resume, rebalance,
	// retry, reconnect, degraded, worker_dead, kernel_mix, health_fire,
	// health_resolve, session_start, session_end, ...
	Type string `json:"type"`
	// Component locates the emitter (e.g. "worker/2", "coordinator").
	Component string `json:"component"`
	// Msg is a short human-readable detail line.
	Msg string `json:"msg"`
	// TraceID links the event to a sampled trace (0 = none).
	TraceID uint64 `json:"trace_id,omitempty"`
	// Source names the process the event was scraped from; filled by
	// MergeEvents coordinator-side, empty locally.
	Source string `json:"source,omitempty"`
}

// Journal is a bounded ring of events, safe for concurrent appenders.
// The zero of *Journal (nil) is a valid no-op sink: every method is
// nil-safe, so instrumented code needs no gating branches.
type Journal struct {
	appended atomic.Uint64

	mu      sync.Mutex
	ring    []Event // guarded by mu
	next    int     // guarded by mu
	seq     uint64  // guarded by mu
	dropped uint64  // guarded by mu
}

// NewJournal returns a journal retaining the most recent cap events
// (cap <= 0 selects 512).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 512
	}
	return &Journal{ring: make([]Event, 0, capacity)}
}

// Append records one event. Nil-safe no-op.
func (j *Journal) Append(typ, component, msg string) {
	j.AppendTrace(typ, component, msg, 0)
}

// AppendTrace records one event linked to a trace id. Nil-safe no-op.
func (j *Journal) AppendTrace(typ, component, msg string, traceID uint64) {
	if j == nil {
		return
	}
	j.appended.Add(1)
	now := time.Now().UnixNano()
	j.mu.Lock()
	j.seq++
	ev := Event{Seq: j.seq, UnixNs: now, Type: typ, Component: component, Msg: msg, TraceID: traceID}
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[j.next] = ev
		j.next = (j.next + 1) % cap(j.ring)
		j.dropped++
	}
	j.mu.Unlock()
}

// Appended returns the total number of events ever appended. Nil-safe.
func (j *Journal) Appended() uint64 {
	if j == nil {
		return 0
	}
	return j.appended.Load()
}

// Recent returns up to n retained events, oldest first (n <= 0 returns
// all retained). Nil-safe (empty).
func (j *Journal) Recent(n int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	out := make([]Event, 0, len(j.ring))
	// Ring order: next..end is oldest, 0..next newest.
	for i := 0; i < len(j.ring); i++ {
		out = append(out, j.ring[(j.next+i)%len(j.ring)])
	}
	j.mu.Unlock()
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// JournalSnapshot is the JSON document served at /debug/events.
type JournalSnapshot struct {
	// Appended counts every event ever journaled; Dropped counts those
	// evicted from the ring, so Appended-Dropped are retained.
	Appended uint64  `json:"appended_total"`
	Dropped  uint64  `json:"dropped_total"`
	Events   []Event `json:"events"`
}

// Snapshot returns the retained events with drop accounting. Nil-safe.
func (j *Journal) Snapshot() JournalSnapshot {
	if j == nil {
		return JournalSnapshot{Events: []Event{}}
	}
	snap := JournalSnapshot{Appended: j.appended.Load(), Events: j.Recent(0)}
	j.mu.Lock()
	snap.Dropped = j.dropped
	j.mu.Unlock()
	return snap
}

// RegisterMetrics exposes the journal's volume counters on reg.
func (j *Journal) RegisterMetrics(reg *Registry) {
	reg.CounterFunc("journal_events_total",
		"Lifecycle events appended to the process journal.",
		func() float64 { return float64(j.Appended()) })
	reg.CounterFunc("journal_events_dropped_total",
		"Journal events evicted from the bounded ring.",
		func() float64 {
			if j == nil {
				return 0
			}
			j.mu.Lock()
			defer j.mu.Unlock()
			return float64(j.dropped)
		})
}

// MergeEvents merges per-process journal snapshots into one timeline,
// stamping each event's Source and ordering by wall clock (sequence
// breaks ties from the same source). Sources map snapshot index to a
// name; a short sources slice leaves the remainder unstamped.
func MergeEvents(snaps []JournalSnapshot, sources []string) []Event {
	var out []Event
	for i, s := range snaps {
		src := ""
		if i < len(sources) {
			src = sources[i]
		}
		for _, ev := range s.Events {
			ev.Source = src
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].UnixNs != out[b].UnixNs {
			return out[a].UnixNs < out[b].UnixNs
		}
		if out[a].Source != out[b].Source {
			return out[a].Source < out[b].Source
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}
