package offline

import (
	"testing"

	"repro/internal/filter"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
)

// FuzzJoinMatchesBruteForce decodes arbitrary bytes into a tiny dataset
// and threshold, then cross-checks the optimized offline join against a
// brute-force scan — a fuzzable end-to-end correctness oracle.
func FuzzJoinMatchesBruteForce(f *testing.F) {
	f.Add([]byte{8, 1, 2, 3, 0, 2, 3, 4, 0, 1, 2, 3, 4}, uint8(7))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, tauRaw uint8) {
		// τ in {0.5, 0.55, ..., 0.95}; record separator is byte 0.
		tau := 0.5 + float64(tauRaw%10)*0.05
		p := filter.Params{Func: similarity.Jaccard, Threshold: tau}
		var recs []*record.Record
		var cur []tokens.Rank
		flush := func() {
			cur = tokens.Dedup(cur)
			if len(cur) > 0 {
				recs = append(recs, &record.Record{
					ID:     record.ID(len(recs)),
					Tokens: append([]tokens.Rank(nil), cur...),
				})
			}
			cur = cur[:0]
		}
		for _, b := range data {
			if b == 0 {
				flush()
				continue
			}
			cur = append(cur, tokens.Rank(b))
		}
		flush()
		if len(recs) > 64 {
			recs = recs[:64] // keep the n² oracle cheap
		}

		got := make(map[record.Pair]bool)
		Join(recs, p, func(pr Pair) {
			key := record.NewPair(pr.A, pr.B, 0)
			if got[key] {
				t.Fatalf("duplicate pair %v", key)
			}
			got[key] = true
		})
		want := 0
		for i, r := range recs {
			for j := 0; j < i; j++ {
				if similarity.Of(similarity.Jaccard, r.Tokens, recs[j].Tokens) >= tau-1e-12 {
					want++
					if !got[record.NewPair(r.ID, recs[j].ID, 0)] {
						t.Fatalf("missing pair (%d,%d) τ=%v", recs[j].ID, r.ID, tau)
					}
				}
			}
		}
		if len(got) != want {
			t.Fatalf("got %d pairs want %d (τ=%v)", len(got), want, tau)
		}
	})
}
