package offline

import (
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/workload"
)

func params(f similarity.Func, tau float64) filter.Params {
	return filter.Params{Func: f, Threshold: tau}
}

func bruteForce(recs []*record.Record, p filter.Params) map[record.Pair]bool {
	out := make(map[record.Pair]bool)
	for i, r := range recs {
		for j := 0; j < i; j++ {
			if similarity.Of(p.Func, r.Tokens, recs[j].Tokens) >= p.Threshold-1e-12 {
				out[record.NewPair(r.ID, recs[j].ID, 0)] = true
			}
		}
	}
	return out
}

func randomRecords(rng *rand.Rand, n, universe, maxLen int) []*record.Record {
	out := make([]*record.Record, n)
	for i := range out {
		m := 1 + rng.Intn(maxLen)
		set := make([]tokens.Rank, 0, m)
		for len(set) < m {
			set = append(set, tokens.Rank(rng.Intn(universe)))
			set = tokens.Dedup(set)
		}
		out[i] = &record.Record{ID: record.ID(i), Tokens: set}
	}
	return out
}

func TestJoinMatchesBruteForceAcrossFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, f := range []similarity.Func{similarity.Jaccard, similarity.Cosine, similarity.Dice} {
		for _, tau := range []float64{0.5, 0.7, 0.85} {
			p := params(f, tau)
			recs := randomRecords(rng, 300, 50, 14)
			want := bruteForce(recs, p)
			pairs, st := JoinAll(recs, p)
			if len(pairs) != len(want) {
				t.Fatalf("%v τ=%v: got %d pairs want %d", f, tau, len(pairs), len(want))
			}
			seen := make(map[record.Pair]bool)
			for _, pr := range pairs {
				key := record.NewPair(pr.A, pr.B, 0)
				if seen[key] {
					t.Fatalf("%v τ=%v: duplicate %v", f, tau, key)
				}
				seen[key] = true
				if !want[key] {
					t.Fatalf("%v τ=%v: spurious %v", f, tau, key)
				}
				// Overlap and similarity must be exact.
				var a, b *record.Record
				for _, r := range recs {
					if r.ID == pr.A {
						a = r
					}
					if r.ID == pr.B {
						b = r
					}
				}
				if truth := similarity.IntersectSize(a.Tokens, b.Tokens); truth != pr.Overlap {
					t.Fatalf("overlap: got %d want %d", pr.Overlap, truth)
				}
			}
			if st.Results != uint64(len(want)) {
				t.Fatalf("stats results: %d want %d", st.Results, len(want))
			}
		}
	}
}

func TestJoinAgreesWithStreamingUnbounded(t *testing.T) {
	// Offline and streaming joins over the same data must agree when the
	// stream window is unbounded — the cross-check oracle property.
	recs := workload.NewGenerator(workload.UniformSmall(9)).Generate(600)
	p := params(similarity.Jaccard, 0.7)
	offline, _ := JoinAll(recs, p)
	j := local.New(local.Prefix, local.Options{Params: p})
	streaming := make(map[record.Pair]bool)
	for _, r := range recs {
		j.Step(r, true, func(m local.Match) {
			streaming[record.NewPair(r.ID, m.Rec.ID, 0)] = true
		})
	}
	if len(offline) != len(streaming) {
		t.Fatalf("offline %d vs streaming %d", len(offline), len(streaming))
	}
	for _, pr := range offline {
		if !streaming[record.NewPair(pr.A, pr.B, 0)] {
			t.Fatalf("streaming missing %v", pr)
		}
	}
}

func TestOfflineIndexesFewerPostingsThanStreaming(t *testing.T) {
	// The index-prefix shortening is the offline advantage: strictly fewer
	// postings than the streaming mid-prefix index on the same data.
	recs := workload.NewGenerator(workload.TweetLike(4)).Generate(800)
	p := params(similarity.Jaccard, 0.8)
	_, st := JoinAll(recs, p)
	j := local.New(local.Prefix, local.Options{Params: p})
	for _, r := range recs {
		j.Step(r, true, func(local.Match) {})
	}
	if st.Postings >= j.Cost().Postings {
		t.Fatalf("offline postings %d not fewer than streaming %d",
			st.Postings, j.Cost().Postings)
	}
}

func TestIndexPrefixMatchesClassicFormula(t *testing.T) {
	for _, tau := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		p := params(similarity.Jaccard, tau)
		for l := 1; l <= 200; l++ {
			if got, want := indexPrefixLen(p, l), jaccardIndexPrefix(tau, l); got != want {
				t.Fatalf("τ=%v l=%d: got %d want %d", tau, l, got, want)
			}
		}
	}
	if indexPrefixLen(params(similarity.Jaccard, 0.8), 0) != 0 {
		t.Fatal("empty record prefix")
	}
}

func TestJoinEmptyAndDegenerateInputs(t *testing.T) {
	p := params(similarity.Jaccard, 0.8)
	pairs, st := JoinAll(nil, p)
	if len(pairs) != 0 || st.Results != 0 {
		t.Fatalf("empty input: %v %v", pairs, st)
	}
	// Records with empty token sets never match.
	recs := []*record.Record{
		{ID: 0}, {ID: 1},
		{ID: 2, Tokens: []tokens.Rank{1, 2}},
		{ID: 3, Tokens: []tokens.Rank{1, 2}},
	}
	pairs, _ = JoinAll(recs, p)
	if len(pairs) != 1 || pairs[0].A != 2 || pairs[0].B != 3 {
		t.Fatalf("degenerate join: %v", pairs)
	}
}

func TestJoinAllSortsOutput(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(2)).Generate(300)
	pairs, _ := JoinAll(recs, params(similarity.Jaccard, 0.6))
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if a.A > b.A || (a.A == b.A && a.B >= b.B) {
			t.Fatalf("output not sorted at %d: %v then %v", i, a, b)
		}
	}
	for _, pr := range pairs {
		if pr.A >= pr.B {
			t.Fatalf("pair not normalized: %v", pr)
		}
	}
}
