// Package offline implements the classic static-dataset set-similarity
// self-join (AllPairs/PPJoin family) that the streaming system is
// contrasted against: records are sorted by length and processed in that
// order, which legitimizes the tighter index prefix
//
//	p_index(l) = l − ⌈2τ/(1+τ)·l⌉ + 1   (Jaccard)
//
// because every future probe is at least as long as the indexed record.
// Probes use the symmetric mid prefix. The index is built incrementally
// during the single pass, so the join is O(candidates) with no post-hoc
// dedup — the structural advantage a static dataset buys over a stream,
// which must index the full mid prefix because arrival order is arbitrary.
//
// The offline join is used as (a) a baseline in the evaluation, (b) a
// cross-check oracle for the streaming joiners on unbounded windows, and
// (c) the batch entry point of the public API.
package offline

import (
	"math"
	"sort"

	"repro/internal/filter"
	"repro/internal/record"
	"repro/internal/similarity"
)

// Pair is one verified result with exact overlap and similarity.
type Pair struct {
	A, B    record.ID
	Overlap int
	Sim     float64
}

// Stats counts join work.
type Stats struct {
	Candidates uint64
	Verified   uint64
	Results    uint64
	Postings   uint64
}

// indexPrefixLen returns the shortened index prefix valid when every
// future probe is at least as long as the indexed record (length-ascending
// processing): the required overlap with an equal-or-longer partner is at
// least the value at lb == la, so indexing the first
// la − RequiredOverlap(la, la) + 1 tokens suffices. For Jaccard this is
// the classic la − ⌈2τ/(1+τ)·la⌉ + 1.
func indexPrefixLen(p filter.Params, l int) int {
	if l == 0 {
		return 0
	}
	req := similarity.RequiredOverlap(p.Func, p.Threshold, l, l)
	pp := l - req + 1
	if pp < 1 {
		pp = 1
	}
	if pp > l {
		pp = l
	}
	return pp
}

type posting struct {
	idx int // position in the sorted slice
	pos int32
}

// Join computes all pairs with similarity >= the threshold among recs,
// emitting each exactly once. Input order is irrelevant; token slices must
// be ascending rank sets (as produced by the record builder and workload
// generators).
func Join(recs []*record.Record, p filter.Params, emit func(Pair)) Stats {
	var st Stats
	n := len(recs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := recs[order[a]].Len(), recs[order[b]].Len()
		if la != lb {
			return la < lb
		}
		return recs[order[a]].ID < recs[order[b]].ID
	})

	posts := make(map[uint32][]posting)
	type cand struct {
		overlap int
		pi, pj  int
		pruned  bool
	}
	cands := make(map[int]*cand)

	for oi, ri := range order {
		r := recs[ri]
		la := r.Len()
		if la == 0 {
			continue
		}
		minPartner := similarity.MinSize(p.Func, p.Threshold, la)
		pp := p.PrefixLen(la) // probe (mid) prefix
		for i := 0; i < pp; i++ {
			tok := r.Tokens[i]
			list := posts[uint32(tok)]
			// Evict partners now too short to ever match again: lengths
			// only grow, so the too-short head is dead for every future
			// probe as well.
			w := 0
			for _, e := range list {
				if recs[order[e.idx]].Len() >= minPartner {
					list[w] = e
					w++
				} else {
					st.Postings--
				}
			}
			list = list[:w]
			posts[uint32(tok)] = list
			for _, e := range list {
				y := recs[order[e.idx]]
				c, seen := cands[e.idx]
				if !seen {
					c = &cand{}
					cands[e.idx] = c
					if !p.PositionOK(la, y.Len(), i, int(e.pos), 1) {
						c.pruned = true
						continue
					}
					c.overlap = 1
					c.pi, c.pj = i+1, int(e.pos)+1
					continue
				}
				if c.pruned {
					continue
				}
				c.overlap++
				c.pi, c.pj = i+1, int(e.pos)+1
				if !p.PositionOK(la, y.Len(), i, int(e.pos), c.overlap) {
					c.pruned = true
				}
			}
		}
		for idx, c := range cands {
			if !c.pruned {
				st.Candidates++
				y := recs[order[idx]]
				req := p.RequiredOverlap(la, y.Len())
				o, ok := similarity.VerifyOverlapFrom(r.Tokens, y.Tokens, c.pi, c.pj, c.overlap, req)
				st.Verified++
				if ok {
					st.Results++
					emit(Pair{
						A: y.ID, B: r.ID, Overlap: o,
						Sim: similarity.FromOverlap(p.Func, o, la, y.Len()),
					})
				}
			}
			delete(cands, idx)
		}
		// Index r under its shortened index prefix; only equal-or-longer
		// records probe it from here on.
		mid := indexPrefixLen(p, la)
		for i := 0; i < mid; i++ {
			posts[uint32(r.Tokens[i])] = append(posts[uint32(r.Tokens[i])], posting{idx: oi, pos: int32(i)})
			st.Postings++
		}
	}
	return st
}

// JoinAll collects the result pairs of Join into a slice sorted by
// (A, B) — the convenience wrapper the public API exposes.
func JoinAll(recs []*record.Record, p filter.Params) ([]Pair, Stats) {
	var out []Pair
	st := Join(recs, p, func(pr Pair) {
		if pr.A > pr.B {
			pr.A, pr.B = pr.B, pr.A
		}
		out = append(out, pr)
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, st
}

// jaccardIndexPrefix recomputes the Jaccard index prefix with math.Ceil
// directly; the test suite compares it against indexPrefixLen so a
// regression in the similarity-package bounds is caught.
func jaccardIndexPrefix(tau float64, l int) int {
	req := int(math.Ceil(2*tau/(1+tau)*float64(l) - 1e-9))
	pp := l - req + 1
	if pp < 1 {
		pp = 1
	}
	if pp > l {
		pp = l
	}
	return pp
}
