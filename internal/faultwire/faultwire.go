// Package faultwire wraps a wire-protocol transport with deterministic
// fault injection: frames crossing the connection can be delayed,
// duplicated, or the connection severed mid-stream, all driven by a seeded
// PRNG so a failing chaos run reproduces exactly. The wrapper is
// frame-aware — it parses the [type][uvarint length][payload] framing in
// both directions and applies faults on whole-frame boundaries, so
// injected duplicates are valid protocol traffic rather than byte noise.
//
// It exists to exercise internal/remote's fault-tolerant coordinator: a
// severed connection forces retry/reconnect/resume, duplicated record and
// result frames exercise both dedup filters, and delays exercise the
// heartbeat watchdog's tolerance.
package faultwire

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// ErrSevered is returned by Write after the wrapper cut the connection.
// Reads keep draining frames the peer already sent until the transport
// reports EOF — the orderly-close delivery model the FT layer's
// flush-consistent checkpoints rely on.
var ErrSevered = errors.New("faultwire: connection severed by fault injection")

// Config selects which faults to inject. Probabilities are per frame in
// per-mille (0–1000); all faults are off in the zero value, making Wrap a
// transparent (but still frame-parsing) passthrough.
type Config struct {
	// Seed drives the per-frame fault decisions. The same seed over the
	// same traffic produces the same faults. Each direction keeps its own
	// frame counter, so decisions are deterministic even though the two
	// directions interleave arbitrarily in time.
	Seed uint64
	// SeverPerMille severs the connection at a frame boundary.
	SeverPerMille int
	// DupPerMille duplicates record and result frames (other frame types
	// are never duplicated: duplicating a handshake would be a protocol
	// violation rather than a transport fault).
	DupPerMille int
	// DelayPerMille stalls the frame for Delay before passing it on.
	DelayPerMille int
	// Delay is the stall length for delayed frames.
	Delay time.Duration
	// SeverAfterFrames, when positive, deterministically severs the
	// connection once that many outbound (written) frames have passed —
	// the reproducible mid-stream cut chaos tests anchor on.
	SeverAfterFrames int
}

type action int

const (
	actPass action = iota
	actDup
	actDelay
	actSever
)

// Per-direction salts decorrelate the two frame streams.
const (
	saltWrite = 0x57
	saltRead  = 0x52
)

// Conn is a fault-injecting io.ReadWriteCloser over an inner transport.
// It assumes the wire protocol's discipline: one reader and one writer per
// direction. Read and Write are internally serialized per direction and
// never block each other.
type Conn struct {
	inner   io.ReadWriteCloser
	cfg     Config
	severed atomic.Bool

	wmu     sync.Mutex
	wbuf    []byte // guarded by wmu: outbound bytes not yet parsed
	wframes int    // guarded by wmu: outbound frame count

	rmu     sync.Mutex
	rbuf    []byte // guarded by rmu: inbound bytes not yet parsed
	rout    []byte // guarded by rmu: parsed frames ready for the caller
	rframes int    // guarded by rmu: inbound frame count
}

// Wrap returns conn with cfg's faults injected on both directions.
func Wrap(conn io.ReadWriteCloser, cfg Config) *Conn {
	return &Conn{inner: conn, cfg: cfg}
}

// splitmix is splitmix64, the per-frame decision PRNG.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide picks the fault for frame n of type typ in the direction salted
// by dir. Severs only fire on the write path: retroactively dropping
// frames the peer's application already believes delivered would model a
// transport no checkpoint scheme can be exact over.
func (c *Conn) decide(dir uint64, n int, typ byte) action {
	if dir == saltWrite && c.cfg.SeverAfterFrames > 0 && n+1 >= c.cfg.SeverAfterFrames {
		return actSever
	}
	r := splitmix(c.cfg.Seed ^ dir<<32 ^ uint64(n)<<8 ^ uint64(typ))
	v := int(r % 1000)
	if v < c.cfg.SeverPerMille {
		if dir == saltWrite {
			return actSever
		}
		return actPass
	}
	v -= c.cfg.SeverPerMille
	if v < c.cfg.DupPerMille {
		if typ == wire.TypeRecord || typ == wire.TypeResult {
			return actDup
		}
		return actPass
	}
	v -= c.cfg.DupPerMille
	if v < c.cfg.DelayPerMille {
		return actDelay
	}
	return actPass
}

// frameLen returns the byte length of the first complete frame in b, or 0
// when b holds only a partial frame.
func frameLen(b []byte) int {
	if len(b) < 2 {
		return 0
	}
	payload, n := binary.Uvarint(b[1:])
	if n <= 0 {
		return 0 // length prefix incomplete
	}
	total := 1 + n + int(payload)
	if len(b) < total {
		return 0
	}
	return total
}

// sever cuts the outbound direction. When the transport supports
// half-close (TCP), the peer sees EOF while its own in-flight frames keep
// draining to our reader; otherwise the whole transport closes.
func (c *Conn) sever() {
	c.severed.Store(true)
	if hc, ok := c.inner.(interface{ CloseWrite() error }); ok {
		hc.CloseWrite() //nolint:errcheck
		return
	}
	c.inner.Close()
}

// Write parses outbound bytes into frames and forwards each with its
// fault applied. Partial frames wait in the buffer for the next Write.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.severed.Load() {
		return 0, ErrSevered
	}
	c.wbuf = append(c.wbuf, p...)
	for {
		fl := frameLen(c.wbuf)
		if fl == 0 {
			return len(p), nil
		}
		frame := c.wbuf[:fl]
		act := c.decide(saltWrite, c.wframes, frame[0])
		c.wframes++
		switch act {
		case actSever:
			c.sever()
			return 0, ErrSevered
		case actDup:
			frame = append(append([]byte(nil), frame...), frame...)
		case actDelay:
			time.Sleep(c.cfg.Delay)
		}
		if _, err := c.inner.Write(frame); err != nil {
			return 0, err
		}
		c.wbuf = c.wbuf[fl:]
	}
}

// Read serves parsed (and possibly faulted) inbound frames. Reads keep
// working after a sever so the peer's already-flushed frames drain.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rout) == 0 {
		buf := make([]byte, 4096)
		n, err := c.inner.Read(buf)
		if n > 0 {
			c.rbuf = append(c.rbuf, buf[:n]...)
			for {
				fl := frameLen(c.rbuf)
				if fl == 0 {
					break
				}
				frame := c.rbuf[:fl]
				switch c.decide(saltRead, c.rframes, frame[0]) {
				case actDup:
					c.rout = append(c.rout, frame...)
				case actDelay:
					time.Sleep(c.cfg.Delay)
				}
				c.rframes++
				c.rout = append(c.rout, frame...)
				c.rbuf = c.rbuf[fl:]
			}
		}
		if err != nil {
			if len(c.rout) > 0 {
				break
			}
			return 0, err
		}
	}
	n := copy(p, c.rout)
	c.rout = c.rout[n:]
	return n, nil
}

// Close closes the inner transport.
func (c *Conn) Close() error {
	return c.inner.Close()
}
