package faultwire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/record"
	"repro/internal/wire"
)

// memConn is an in-memory io.ReadWriteCloser: reads drain the preloaded
// input, writes accumulate in out.
type memConn struct {
	in     *bytes.Reader
	out    bytes.Buffer
	closed bool
}

func (m *memConn) Read(p []byte) (int, error) {
	if m.closed {
		return 0, io.ErrClosedPipe
	}
	if m.in == nil {
		return 0, io.EOF
	}
	return m.in.Read(p)
}

func (m *memConn) Write(p []byte) (int, error) {
	if m.closed {
		return 0, io.ErrClosedPipe
	}
	return m.out.Write(p)
}

func (m *memConn) Close() error {
	m.closed = true
	return nil
}

func rec(id int, toks ...uint32) *record.Record {
	return &record.Record{ID: record.ID(id), Tokens: toks}
}

// writeRecords pushes n records through a wrapped connection, returning
// the write error if any.
func writeRecords(c io.Writer, n int) error {
	w := wire.NewWriter(c)
	for i := 0; i < n; i++ {
		if err := w.WriteRecord(true, rec(i, 1, 2, 3)); err != nil {
			return err
		}
	}
	return w.Flush()
}

// countFrames parses the raw stream and counts frames per type.
func countFrames(t *testing.T, b []byte) map[byte]int {
	t.Helper()
	out := make(map[byte]int)
	for len(b) > 0 {
		fl := frameLen(b)
		if fl == 0 {
			t.Fatalf("trailing partial frame (%d bytes left)", len(b))
		}
		out[b[0]]++
		b = b[fl:]
	}
	return out
}

func TestPassthrough(t *testing.T) {
	inner := &memConn{}
	c := Wrap(inner, Config{})
	if err := writeRecords(c, 5); err != nil {
		t.Fatal(err)
	}
	got := countFrames(t, inner.out.Bytes())
	if got[wire.TypeRecord] != 5 || len(got) != 1 {
		t.Fatalf("passthrough frames = %v, want 5 records", got)
	}
}

func TestDuplicateRecordsOnly(t *testing.T) {
	inner := &memConn{}
	c := Wrap(inner, Config{DupPerMille: 1000})
	w := wire.NewWriter(c)
	// A ping (control frame) must never be duplicated even at 100%.
	if err := w.WritePing(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(true, rec(7, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := countFrames(t, inner.out.Bytes())
	if got[wire.TypeRecord] != 2 {
		t.Fatalf("record frames = %d, want 2 (duplicated)", got[wire.TypeRecord])
	}
	if got[wire.TypePing] != 1 {
		t.Fatalf("ping frames = %d, want 1 (never duplicated)", got[wire.TypePing])
	}
}

func TestSeverAfterFrames(t *testing.T) {
	inner := &memConn{}
	c := Wrap(inner, Config{SeverAfterFrames: 3})
	err := writeRecords(c, 10)
	if !errors.Is(err, ErrSevered) {
		t.Fatalf("write error = %v, want ErrSevered", err)
	}
	if !inner.closed {
		t.Fatal("inner connection not closed on sever")
	}
	got := countFrames(t, inner.out.Bytes())
	if got[wire.TypeRecord] != 2 {
		t.Fatalf("frames before sever = %d, want 2", got[wire.TypeRecord])
	}
	// The severed state is sticky for writes; reads fall through to the
	// (here fully closed: memConn has no half-close) inner transport.
	if _, err := c.Write([]byte{0}); !errors.Is(err, ErrSevered) {
		t.Fatalf("post-sever write error = %v, want ErrSevered", err)
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("post-sever read on closed inner transport succeeded")
	}
}

// halfCloseConn adds CloseWrite to memConn.
type halfCloseConn struct {
	memConn
	wclosed bool
}

func (h *halfCloseConn) CloseWrite() error {
	h.wclosed = true
	return nil
}

func TestSeverHalfClosesWhenSupported(t *testing.T) {
	inner := &halfCloseConn{memConn: memConn{in: bytes.NewReader(nil)}}
	c := Wrap(inner, Config{SeverAfterFrames: 1})
	if err := writeRecords(c, 1); !errors.Is(err, ErrSevered) {
		t.Fatalf("write error = %v, want ErrSevered", err)
	}
	if !inner.wclosed {
		t.Fatal("sever did not use CloseWrite")
	}
	if inner.closed {
		t.Fatal("sever fully closed a half-closable transport")
	}
	// The read direction still drains: EOF from the preloaded reader, not
	// ErrSevered.
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("post-sever read error = %v, want io.EOF", err)
	}
}

func TestReadSideDuplication(t *testing.T) {
	// Preload the inner connection with one result frame; at 100% dup the
	// wrapped reader must surface it twice.
	var raw bytes.Buffer
	w := wire.NewWriter(&raw)
	if err := w.WriteResult(wire.Result{A: 1, B: 2, Sim: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	inner := &memConn{in: bytes.NewReader(raw.Bytes())}
	c := Wrap(inner, Config{DupPerMille: 1000})
	rd := wire.NewReader(c)
	for i := 0; i < 2; i++ {
		typ, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != wire.TypeResult {
			t.Fatalf("frame %d type = %d, want result", i, typ)
		}
		res, err := rd.ReadResult()
		if err != nil {
			t.Fatal(err)
		}
		if res.A != 1 || res.B != 2 {
			t.Fatalf("result = %+v", res)
		}
	}
	if _, err := rd.Next(); err == nil {
		t.Fatal("expected EOF after the duplicated frame")
	}
}

func TestDeterministicDecisions(t *testing.T) {
	run := func() []byte {
		inner := &memConn{}
		c := Wrap(inner, Config{Seed: 42, DupPerMille: 300})
		if err := writeRecords(c, 50); err != nil {
			t.Fatal(err)
		}
		return inner.out.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("same seed produced different fault schedules")
	}
}

func TestPartialWritesReassemble(t *testing.T) {
	// Frames split across many tiny Writes must still come out whole.
	var raw bytes.Buffer
	w := wire.NewWriter(&raw)
	for i := 0; i < 3; i++ {
		if err := w.WriteRecord(i%2 == 0, rec(i, 5, 6, 7, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	inner := &memConn{}
	c := Wrap(inner, Config{})
	for _, b := range raw.Bytes() {
		if _, err := c.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(inner.out.Bytes(), raw.Bytes()) {
		t.Fatal("byte-at-a-time writes corrupted the stream")
	}
}
