// Package dispatch implements the record-distribution strategies that
// decide which workers receive each incoming record:
//
//   - LengthBased — the paper's framework. A worker owns a contiguous
//     record-length interval; an incoming record is multicast to every
//     worker whose interval intersects the record's compatible-length range
//     and is stored only at the single worker owning its own length. The
//     index is never replicated and the probe fan-out is small at high
//     thresholds.
//
//   - PrefixBased — the offline state of the art adapted to streams. A
//     record is replicated to the worker of every distinct hash of its
//     prefix tokens and stored at each; results are deduplicated by letting
//     only the owner of the pair's smallest common token emit.
//
//   - BroadcastBased — the naive baseline: every record probes every
//     worker and is stored at one chosen by hashing its ID.
//
// All strategies share the same worker protocol: every delivered record
// probes; Stores decides local indexing; Emits deduplicates results. This
// keeps completeness proofs local: a strategy is correct iff for every
// similar pair (r, s) with s stored somewhere r reaches s's worker, and
// exactly one worker emits.
package dispatch

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/tokens"
)

// Strategy routes records to workers and arbitrates storage and result
// emission. Implementations must be stateless or read-only after
// construction: Route runs on the dispatcher, Stores and Emits run
// concurrently on every worker.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Route appends the destination worker indices for r (deduplicated)
	// and returns the extended buffer. k is the worker count.
	Route(r *record.Record, k int, buf []int) []int
	// Stores reports whether worker task must index r.
	Stores(r *record.Record, task, k int) bool
	// Emits reports whether worker task owns the result pair (r, s) —
	// false suppresses duplicates on replicating strategies.
	Emits(r, s *record.Record, task, k int) bool
}

// hash64 is splitmix64 — a cheap, well-distributed token/ID hash shared by
// all strategies.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ------------------------------------------------------------- length --

// LengthBased is the paper's length-based distribution framework.
type LengthBased struct {
	Params    filter.Params
	Partition partition.Partition
}

// NewLengthBased builds a length-based strategy over the given partition.
// The partition's worker count must match the topology's.
func NewLengthBased(p filter.Params, part partition.Partition) LengthBased {
	return LengthBased{Params: p, Partition: part}
}

// Name implements Strategy.
func (LengthBased) Name() string { return "length" }

// Route implements Strategy: the record visits every worker whose length
// interval intersects its compatible range.
func (s LengthBased) Route(r *record.Record, k int, buf []int) []int {
	lo, hi := s.Params.LengthBounds(r.Len())
	first, last := s.Partition.Overlapping(lo, hi)
	for w := first; w <= last && w < k; w++ {
		buf = append(buf, w)
	}
	return buf
}

// Stores implements Strategy: only the owner of the record's own length
// indexes it — no replication.
func (s LengthBased) Stores(r *record.Record, task, k int) bool {
	return s.Partition.WorkerOf(r.Len()) == task
}

// Emits implements Strategy: each stored record lives on one worker, so
// every pair is found exactly once.
func (LengthBased) Emits(r, s *record.Record, task, k int) bool { return true }

// ------------------------------------------------------------- prefix --

// PrefixBased replicates records along their prefix tokens, the way
// offline distributed prefix joins shard their token space.
type PrefixBased struct {
	Params filter.Params
}

// Name implements Strategy.
func (PrefixBased) Name() string { return "prefix" }

func tokenWorker(t tokens.Rank, k int) int {
	return int(hash64(uint64(t)) % uint64(k))
}

// Route implements Strategy: one copy per distinct prefix-token worker.
func (s PrefixBased) Route(r *record.Record, k int, buf []int) []int {
	p := s.Params.PrefixLen(r.Len())
	start := len(buf)
	for i := 0; i < p; i++ {
		w := tokenWorker(r.Tokens[i], k)
		dup := false
		for _, seen := range buf[start:] {
			if seen == w {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, w)
		}
	}
	return buf
}

// Stores implements Strategy: every copy is indexed (this is the
// replication the length-based framework eliminates).
func (PrefixBased) Stores(r *record.Record, task, k int) bool { return true }

// Emits implements Strategy: only the worker owning the pair's smallest
// common token emits. For any similar pair that token is inside both
// prefixes, so the owning worker holds both records; every other worker
// suppresses the duplicate.
func (PrefixBased) Emits(r, s *record.Record, task, k int) bool {
	t, ok := firstCommon(r.Tokens, s.Tokens)
	if !ok {
		return false
	}
	return tokenWorker(t, k) == task
}

func firstCommon(a, b []tokens.Rank) (tokens.Rank, bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i], true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return 0, false
}

// ---------------------------------------------------------- broadcast --

// BroadcastBased sends every record to every worker and stores it at the
// worker hashed from its ID — the store-one-probe-all baseline.
type BroadcastBased struct{}

// Name implements Strategy.
func (BroadcastBased) Name() string { return "broadcast" }

// Route implements Strategy.
func (BroadcastBased) Route(r *record.Record, k int, buf []int) []int {
	for w := 0; w < k; w++ {
		buf = append(buf, w)
	}
	return buf
}

// Stores implements Strategy.
func (BroadcastBased) Stores(r *record.Record, task, k int) bool {
	return int(hash64(uint64(r.ID))%uint64(k)) == task
}

// Emits implements Strategy: the stored partner exists on one worker only.
func (BroadcastBased) Emits(r, s *record.Record, task, k int) bool { return true }

// ParseStrategy builds a strategy by name; length-based strategies need the
// partition, so this helper only resolves the two parameter-free baselines
// and reports a helpful error otherwise.
func ParseStrategy(name string, p filter.Params, part partition.Partition) (Strategy, error) {
	switch name {
	case "length":
		return NewLengthBased(p, part), nil
	case "prefix":
		return PrefixBased{Params: p}, nil
	case "broadcast":
		return BroadcastBased{}, nil
	default:
		return nil, fmt.Errorf("dispatch: unknown strategy %q", name)
	}
}

// Interface checks.
var (
	_ Strategy = LengthBased{}
	_ Strategy = PrefixBased{}
	_ Strategy = BroadcastBased{}
)
