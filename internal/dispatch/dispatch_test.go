package dispatch

import (
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/workload"
)

func params(tau float64) filter.Params {
	return filter.Params{Func: similarity.Jaccard, Threshold: tau}
}

func testPartition(maxLen, k int) partition.Partition {
	return partition.EvenLength(maxLen, k)
}

func rec(id record.ID, ranks ...tokens.Rank) *record.Record {
	return &record.Record{ID: id, Time: int64(id), Tokens: tokens.Dedup(ranks)}
}

func TestLengthBasedStoresAtExactlyOneWorker(t *testing.T) {
	s := NewLengthBased(params(0.8), testPartition(100, 4))
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(90)
		set := make([]tokens.Rank, 0, n)
		for len(set) < n {
			set = append(set, tokens.Rank(rng.Intn(100000)))
			set = tokens.Dedup(set)
		}
		r := rec(record.ID(trial), set...)
		stores := 0
		for w := 0; w < 4; w++ {
			if s.Stores(r, w, 4) {
				stores++
			}
		}
		if stores != 1 {
			t.Fatalf("record of len %d stored at %d workers", r.Len(), stores)
		}
	}
}

func TestLengthBasedRouteCoversHomeWorker(t *testing.T) {
	s := NewLengthBased(params(0.7), testPartition(60, 5))
	for l := 1; l <= 60; l++ {
		set := make([]tokens.Rank, l)
		for i := range set {
			set[i] = tokens.Rank(i)
		}
		r := rec(0, set...)
		dests := s.Route(r, 5, nil)
		home := s.Partition.WorkerOf(r.Len())
		found := false
		for _, d := range dests {
			if d == home {
				found = true
			}
		}
		if !found {
			t.Fatalf("len %d: home %d not in route %v", l, home, dests)
		}
	}
}

func TestLengthBasedFanoutShrinksWithThreshold(t *testing.T) {
	part := testPartition(100, 8)
	low := NewLengthBased(params(0.5), part)
	high := NewLengthBased(params(0.9), part)
	set := make([]tokens.Rank, 40)
	for i := range set {
		set[i] = tokens.Rank(i)
	}
	r := rec(0, set...)
	if l, h := len(low.Route(r, 8, nil)), len(high.Route(r, 8, nil)); h > l {
		t.Fatalf("fan-out should shrink with τ: low=%d high=%d", l, h)
	}
}

func TestPrefixBasedRouteDedupsWorkers(t *testing.T) {
	s := PrefixBased{Params: params(0.5)}
	set := make([]tokens.Rank, 20)
	for i := range set {
		set[i] = tokens.Rank(i)
	}
	r := rec(0, set...)
	dests := s.Route(r, 3, nil)
	seen := map[int]bool{}
	for _, d := range dests {
		if seen[d] {
			t.Fatalf("duplicate destination %d in %v", d, dests)
		}
		seen[d] = true
		if d < 0 || d >= 3 {
			t.Fatalf("destination out of range: %d", d)
		}
	}
}

func TestPrefixEmitsExactlyOnce(t *testing.T) {
	s := PrefixBased{Params: params(0.6)}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		a := randomRec(rng, record.ID(2*trial))
		b := randomRec(rng, record.ID(2*trial+1))
		if similarity.Of(similarity.Jaccard, a.Tokens, b.Tokens) < 0.6 {
			continue
		}
		k := 2 + rng.Intn(6)
		emitters := 0
		var owner int
		for w := 0; w < k; w++ {
			if s.Emits(a, b, w, k) {
				emitters++
				owner = w
			}
		}
		if emitters != 1 {
			t.Fatalf("pair emitted by %d workers", emitters)
		}
		// The owner must be a routed destination of both records —
		// otherwise the emitting worker would not hold them.
		if !contains(s.Route(a, k, nil), owner) || !contains(s.Route(b, k, nil), owner) {
			t.Fatalf("emitting worker %d not routed both records", owner)
		}
	}
}

func TestBroadcastBasics(t *testing.T) {
	s := BroadcastBased{}
	r := rec(5, 1, 2, 3)
	dests := s.Route(r, 4, nil)
	if len(dests) != 4 {
		t.Fatalf("broadcast route: %v", dests)
	}
	stores := 0
	for w := 0; w < 4; w++ {
		if s.Stores(r, w, 4) {
			stores++
		}
	}
	if stores != 1 {
		t.Fatalf("broadcast stored at %d workers", stores)
	}
}

// TestStrategyCompletenessAndUniqueness simulates the worker protocol for
// each strategy over a random stream and checks, against brute force, that
// every similar pair is found exactly once.
func TestStrategyCompletenessAndUniqueness(t *testing.T) {
	tau := 0.6
	p := params(tau)
	gen := workload.NewGenerator(workload.UniformSmall(77))
	recs := gen.Generate(400)
	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	for _, k := range []int{1, 3, 5} {
		strategies := []Strategy{
			NewLengthBased(p, partition.EvenFrequency(&h, k)),
			PrefixBased{Params: p},
			BroadcastBased{},
		}
		for _, s := range strategies {
			found := simulate(t, s, p, recs, k)
			want := brute(recs, tau)
			if len(found) != len(want) {
				t.Fatalf("%s k=%d: found %d pairs want %d", s.Name(), k, len(found), len(want))
			}
			for pr, n := range found {
				if n != 1 {
					t.Fatalf("%s k=%d: pair %v found %d times", s.Name(), k, pr, n)
				}
				if !want[pr] {
					t.Fatalf("%s k=%d: spurious pair %v", s.Name(), k, pr)
				}
			}
		}
	}
}

// simulate runs the worker protocol sequentially: for each record, in
// arrival order, deliver to routed workers; each worker probes its local
// store (naive verification) and stores when Stores says so.
func simulate(t *testing.T, s Strategy, p filter.Params, recs []*record.Record, k int) map[record.Pair]int {
	t.Helper()
	stores := make([][]*record.Record, k)
	found := make(map[record.Pair]int)
	for _, r := range recs {
		dests := s.Route(r, k, nil)
		for _, w := range dests {
			for _, y := range stores[w] {
				if y.ID == r.ID {
					continue
				}
				if similarity.Of(p.Func, r.Tokens, y.Tokens) >= p.Threshold-1e-12 &&
					s.Emits(r, y, w, k) {
					found[record.NewPair(r.ID, y.ID, 0)]++
				}
			}
			if s.Stores(r, w, k) {
				stores[w] = append(stores[w], r)
			}
		}
	}
	return found
}

func brute(recs []*record.Record, tau float64) map[record.Pair]bool {
	out := make(map[record.Pair]bool)
	for i, r := range recs {
		for j := 0; j < i; j++ {
			if similarity.Of(similarity.Jaccard, r.Tokens, recs[j].Tokens) >= tau-1e-12 {
				out[record.NewPair(r.ID, recs[j].ID, 0)] = true
			}
		}
	}
	return out
}

func TestReplicationFactors(t *testing.T) {
	// Length-based stores each record once; prefix-based stores multiple
	// copies; broadcast stores once but routes k copies.
	p := params(0.7)
	gen := workload.NewGenerator(workload.TweetLike(5))
	recs := gen.Generate(500)
	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	k := 8
	lb := NewLengthBased(p, partition.EvenFrequency(&h, k))
	pb := PrefixBased{Params: p}
	storedCopies := func(s Strategy) int {
		n := 0
		for _, r := range recs {
			for _, w := range s.Route(r, k, nil) {
				if s.Stores(r, w, k) {
					n++
				}
			}
		}
		return n
	}
	if got := storedCopies(lb); got != len(recs) {
		t.Fatalf("length-based stored copies: %d want %d", got, len(recs))
	}
	if got := storedCopies(pb); got <= len(recs) {
		t.Fatalf("prefix-based should replicate: %d copies of %d", got, len(recs))
	}
}

func TestParseStrategy(t *testing.T) {
	p := params(0.8)
	part := testPartition(10, 2)
	for _, name := range []string{"length", "prefix", "broadcast"} {
		s, err := ParseStrategy(name, p, part)
		if err != nil || s.Name() != name {
			t.Fatalf("%s: %v %v", name, s, err)
		}
	}
	if _, err := ParseStrategy("bogus", p, part); err == nil {
		t.Fatal("expected error")
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func randomRec(rng *rand.Rand, id record.ID) *record.Record {
	n := 3 + rng.Intn(10)
	set := make([]tokens.Rank, 0, n)
	for len(set) < n {
		set = append(set, tokens.Rank(rng.Intn(40)))
		set = tokens.Dedup(set)
	}
	return rec(id, set...)
}
