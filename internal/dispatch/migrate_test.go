package dispatch

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/window"
	"repro/internal/workload"
)

// driftStream produces a stream whose length distribution shifts halfway:
// phase A short records, phase B long records.
func driftStream(n int) []*record.Record {
	a := workload.NewGenerator(workload.AOLLike(5)).Generate(n / 2)
	b := workload.NewGenerator(workload.EnronLike(5)).Generate(n - n/2)
	out := append([]*record.Record{}, a...)
	for i, r := range b {
		r.ID = record.ID(n/2 + i)
		r.Time = int64(r.ID)
		out = append(out, r)
	}
	return out
}

// TestMigrationPreservesCompleteness runs the worker-protocol simulation
// across a live repartition at the phase boundary with a count window, and
// checks against brute force that nothing is lost or duplicated — the
// correctness property live repartitioning must provide.
func TestMigrationPreservesCompleteness(t *testing.T) {
	const (
		n    = 600
		k    = 4
		tau  = 0.7
		winN = 150
	)
	p := params(tau)
	recs := driftStream(n)
	win := window.Count{N: winN}

	// Old partition fitted to phase A, new partition fitted to phase B.
	var hA, hB partition.Histogram
	for _, r := range recs[:n/2] {
		hA.Add(r.Len())
	}
	for _, r := range recs[n/2:] {
		hB.Add(r.Len())
	}
	wA := partition.CostModel{Params: p}.Weights(&hA)
	wB := partition.CostModel{Params: p}.Weights(&hB)
	mig := PlanMigration(p,
		partition.LoadAware(wA, k),
		partition.LoadAware(wB, k),
		record.ID(n/2), winN)

	// Simulate the worker protocol with windowed stores.
	stores := make([][]*record.Record, k)
	found := make(map[record.Pair]int)
	for _, r := range recs {
		dests := mig.Route(r, k, nil)
		for _, w := range dests {
			live := stores[w][:0]
			for _, y := range stores[w] {
				if win.Live(y.ID, y.Time, r.ID, r.Time) {
					live = append(live, y)
				}
			}
			stores[w] = live
			for _, y := range stores[w] {
				if similarity.Of(p.Func, r.Tokens, y.Tokens) >= tau-1e-12 &&
					mig.Emits(r, y, w, k) {
					found[record.NewPair(r.ID, y.ID, 0)]++
				}
			}
			if mig.Stores(r, w, k) {
				stores[w] = append(stores[w], r)
			}
		}
	}

	want := make(map[record.Pair]bool)
	for i, r := range recs {
		for j := 0; j < i; j++ {
			s := recs[j]
			if !win.Live(s.ID, s.Time, r.ID, r.Time) {
				continue
			}
			if similarity.Of(p.Func, r.Tokens, s.Tokens) >= tau-1e-12 {
				want[record.NewPair(r.ID, s.ID, 0)] = true
			}
		}
	}
	if len(found) != len(want) {
		t.Fatalf("found %d pairs want %d", len(found), len(want))
	}
	for pr, c := range found {
		if c != 1 {
			t.Fatalf("pair %v found %d times", pr, c)
		}
		if !want[pr] {
			t.Fatalf("spurious pair %v", pr)
		}
	}
}

func TestMigrationStoresAtExactlyOneWorker(t *testing.T) {
	p := params(0.8)
	old := partition.EvenLength(50, 4)
	new := partition.EvenLength(200, 4)
	mig := PlanMigration(p, old, new, 100, 50)
	for _, id := range []record.ID{0, 99, 100, 140, 10_000} {
		set := make([]uint32, 30)
		for i := range set {
			set[i] = uint32(i)
		}
		r := rec(id, set...)
		stores := 0
		for w := 0; w < 4; w++ {
			if mig.Stores(r, w, 4) {
				stores++
			}
		}
		if stores != 1 {
			t.Fatalf("record %d stored at %d workers", id, stores)
		}
	}
}

func TestMigrationRouteDropsOldAfterTransition(t *testing.T) {
	p := params(0.8)
	// Old and new partitions differ wildly.
	old := partition.Partition{Bounds: []int{5, 10, 20, 1000}}
	new := partition.Partition{Bounds: []int{100, 200, 300, 1000}}
	mig := PlanMigration(p, old, new, 100, 50)
	set := make([]uint32, 30)
	for i := range set {
		set[i] = uint32(i)
	}
	during := mig.Route(rec(120, set...), 4, nil)
	after := mig.Route(rec(200, set...), 4, nil)
	if len(after) >= len(during) {
		t.Fatalf("old routes not dropped: during=%v after=%v", during, after)
	}
	newOnly := mig.New.Route(rec(200, set...), 4, nil)
	if len(after) != len(newOnly) {
		t.Fatalf("post-transition route differs from new partition: %v vs %v", after, newOnly)
	}
}

func TestMigrationPreSwitchUsesOldRoutes(t *testing.T) {
	p := params(0.8)
	old := partition.Partition{Bounds: []int{5, 1000}}
	new := partition.Partition{Bounds: []int{500, 1000}}
	mig := PlanMigration(p, old, new, 100, 50)
	set := make([]uint32, 30)
	for i := range set {
		set[i] = uint32(i)
	}
	r := rec(50, set...)
	got := mig.Route(r, 2, nil)
	want := mig.Old.Route(r, 2, nil)
	if len(got) != len(want) {
		t.Fatalf("pre-switch route: %v vs %v", got, want)
	}
	if mig.Name() != "length-migrating" {
		t.Fatal("name")
	}
}
