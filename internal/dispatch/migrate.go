package dispatch

import (
	"repro/internal/filter"
	"repro/internal/partition"
	"repro/internal/record"
)

// Migrating routes across a live length-repartition without losing results:
// records stored before the switch live where the old partition put them,
// so until the sliding window has fully turned over, probes must visit the
// union of old-partition and new-partition destinations. Once every
// pre-switch record has expired (TransitionLen records after SwitchSeq for
// a count window of that size), the old routes are dropped.
//
// Storage switches immediately: records arriving at or after SwitchSeq are
// stored at their new home. Each record still has exactly one home at any
// time, so result pairs are still emitted exactly once and Emits stays
// trivially true.
type Migrating struct {
	Old, New LengthBased
	// SwitchSeq is the first record ID stored under the new partition.
	SwitchSeq record.ID
	// TransitionLen is how many records after SwitchSeq the old routes
	// remain live — at least the count-window size (use the stream length
	// for unbounded windows; the transition then never ends, which is the
	// correct price of never evicting).
	TransitionLen int64
}

// NewMigrating builds a migrating strategy between two partitions sharing
// the same parameters.
func NewMigrating(old, new LengthBased, switchSeq record.ID, transitionLen int64) Migrating {
	return Migrating{Old: old, New: new, SwitchSeq: switchSeq, TransitionLen: transitionLen}
}

// Name implements Strategy.
func (Migrating) Name() string { return "length-migrating" }

// inTransition reports whether pre-switch records may still be live when
// record seq arrives.
func (m Migrating) inTransition(seq record.ID) bool {
	return int64(seq)-int64(m.SwitchSeq) <= m.TransitionLen
}

// Route implements Strategy.
func (m Migrating) Route(r *record.Record, k int, buf []int) []int {
	if r.ID < m.SwitchSeq {
		return m.Old.Route(r, k, buf)
	}
	buf = m.New.Route(r, k, buf)
	if m.inTransition(r.ID) {
		start := len(buf)
		tmp := m.Old.Route(r, k, nil)
		for _, w := range tmp {
			dup := false
			for _, seen := range buf[:start] {
				if seen == w {
					dup = true
					break
				}
			}
			if !dup {
				buf = append(buf, w)
			}
		}
	}
	return buf
}

// Stores implements Strategy: home is the partition active at arrival.
func (m Migrating) Stores(r *record.Record, task, k int) bool {
	if r.ID < m.SwitchSeq {
		return m.Old.Stores(r, task, k)
	}
	return m.New.Stores(r, task, k)
}

// Emits implements Strategy: every record has exactly one home, so pairs
// are unique without arbitration.
func (Migrating) Emits(r, s *record.Record, task, k int) bool { return true }

// PlanMigration builds a Migrating strategy from a refit: it keeps the old
// partition for already-stored records and adopts the new one from
// switchSeq on. windowN must be the count-window size (or the residual
// stream length when unbounded).
func PlanMigration(params filter.Params, old, new partition.Partition, switchSeq record.ID, windowN int64) Migrating {
	return NewMigrating(
		LengthBased{Params: params, Partition: old},
		LengthBased{Params: params, Partition: new},
		switchSeq, windowN,
	)
}

// Interface check.
var _ Strategy = Migrating{}
