// Package record defines the record model shared by every stage of the
// streaming set-similarity join: a record is an identified, timestamped set
// of token ranks sorted by the global frequency ordering (rarest first).
package record

import (
	"fmt"

	"repro/internal/tokens"
)

// ID identifies a record uniquely within a stream. IDs are assigned in
// arrival order by the ingestion layer, so comparing IDs compares arrival
// times.
type ID uint64

// Record is an immutable token set flowing through the join. Tokens holds
// deduplicated ranks in ascending global order; Seq is the arrival sequence
// number (== ID for generated streams); Time is an optional event timestamp
// in stream ticks used by time-based windows.
type Record struct {
	ID     ID
	Time   int64
	Tokens []tokens.Rank
}

// Len returns the set size.
func (r *Record) Len() int { return len(r.Tokens) }

// String renders a compact debugging form.
func (r *Record) String() string {
	return fmt.Sprintf("record{id=%d len=%d t=%d}", r.ID, len(r.Tokens), r.Time)
}

// Overlap returns the size of the intersection of the two records' token
// sets using a linear merge; both must be in ascending rank order.
func (r *Record) Overlap(s *Record) int {
	a, b := r.Tokens, s.Tokens
	i, j, o := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			o++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return o
}

// Builder converts raw text into Records: tokenize, intern, observe
// frequencies, map to ranks, dedup, and stamp with the next ID. A Builder
// owns its dictionary and ordering; it is not safe for concurrent use.
type Builder struct {
	Dict     *tokens.Dictionary
	Order    *tokens.Ordering
	Tok      tokens.Tokenizer
	nextID   ID
	nextTime int64
}

// NewBuilder returns a Builder over an already-frozen ordering. Use
// BuildOrderingFromSample to produce dict and order from a text sample.
func NewBuilder(dict *tokens.Dictionary, order *tokens.Ordering, tok tokens.Tokenizer) *Builder {
	return &Builder{Dict: dict, Order: order, Tok: tok}
}

// BuildOrderingFromSample interns and counts every token of every sample
// text, then freezes a frequency ordering. It is the offline bootstrapping
// step: streams built afterwards map unseen tokens to post-frozen ranks.
func BuildOrderingFromSample(tok tokens.Tokenizer, sample []string) (*tokens.Dictionary, *tokens.Ordering) {
	dict := tokens.NewDictionary()
	for _, text := range sample {
		seen := make(map[tokens.Token]struct{})
		var set []tokens.Token
		for _, w := range tok.Tokenize(text) {
			id := dict.Intern(w)
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			set = append(set, id)
		}
		dict.Observe(set)
	}
	return dict, tokens.NewOrdering(dict)
}

// SetCursor positions the builder's ID and time counters; the snapshot
// restore path uses it so a restored pipeline continues numbering where
// the original stopped.
func (b *Builder) SetCursor(nextID ID, nextTime int64) {
	b.nextID = nextID
	b.nextTime = nextTime
}

// FromText builds the next record from raw text, accruing document
// frequencies in the dictionary as it goes (the frozen ordering is
// unaffected until an explicit refresh rebuilds it from the accumulated
// counts). Empty token sets yield a record with zero length; callers
// typically drop those.
func (b *Builder) FromText(text string) Record {
	words := b.Tok.Tokenize(text)
	ids := make([]tokens.Token, 0, len(words))
	seen := make(map[tokens.Token]struct{}, len(words))
	for _, w := range words {
		id := b.Dict.Intern(w)
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		ids = append(ids, id)
	}
	b.Dict.Observe(ids)
	ranks := make([]tokens.Rank, 0, len(ids))
	for _, id := range ids {
		ranks = append(ranks, b.Order.RankOf(id))
	}
	ranks = tokens.Dedup(ranks)
	r := Record{ID: b.nextID, Time: b.nextTime, Tokens: ranks}
	b.nextID++
	b.nextTime++
	return r
}

// FromRanks builds the next record directly from precomputed ranks (used by
// synthetic workload generators). The slice is deduplicated and sorted in
// place and retained by the record.
func (b *Builder) FromRanks(ranks []tokens.Rank) Record {
	ranks = tokens.Dedup(ranks)
	r := Record{ID: b.nextID, Time: b.nextTime, Tokens: ranks}
	b.nextID++
	b.nextTime++
	return r
}

// Pair is an emitted join result: two record IDs with their similarity.
// First < Second always holds so pairs compare and deduplicate cheaply.
type Pair struct {
	First, Second ID
	Sim           float64
}

// NewPair normalizes the ID order.
func NewPair(a, b ID, sim float64) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{First: a, Second: b, Sim: sim}
}

// String implements fmt.Stringer.
func (p Pair) String() string {
	return fmt.Sprintf("(%d,%d:%.3f)", p.First, p.Second, p.Sim)
}
