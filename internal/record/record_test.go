package record

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/tokens"
)

func buildTestBuilder(sample []string) *Builder {
	dict, order := BuildOrderingFromSample(tokens.WordTokenizer{}, sample)
	return NewBuilder(dict, order, tokens.WordTokenizer{})
}

func TestFromTextAssignsSequentialIDs(t *testing.T) {
	b := buildTestBuilder([]string{"a b c"})
	r1 := b.FromText("a b")
	r2 := b.FromText("b c")
	if r1.ID != 0 || r2.ID != 1 {
		t.Fatalf("ids: got %d,%d want 0,1", r1.ID, r2.ID)
	}
	if r1.Time != 0 || r2.Time != 1 {
		t.Fatalf("times: got %d,%d want 0,1", r1.Time, r2.Time)
	}
}

func TestFromTextTokensSortedDeduped(t *testing.T) {
	b := buildTestBuilder([]string{"the the the quick brown", "the fox", "the dog"})
	r := b.FromText("the quick the quick fox")
	if len(r.Tokens) != 3 {
		t.Fatalf("want 3 distinct tokens, got %d: %v", len(r.Tokens), r.Tokens)
	}
	if !sort.SliceIsSorted(r.Tokens, func(i, j int) bool { return r.Tokens[i] < r.Tokens[j] }) {
		t.Fatalf("tokens not sorted: %v", r.Tokens)
	}
}

func TestRareTokensSortBeforeCommonOnes(t *testing.T) {
	// "the" appears in every sample doc, "zebra" in one.
	b := buildTestBuilder([]string{"the cat", "the dog", "the zebra"})
	r := b.FromText("the zebra")
	if len(r.Tokens) != 2 {
		t.Fatalf("want 2 tokens, got %v", r.Tokens)
	}
	zebra, _ := b.Dict.Lookup("zebra")
	if b.Order.RankOf(zebra) != r.Tokens[0] {
		t.Fatalf("rare token should be first: tokens=%v zebraRank=%d",
			r.Tokens, b.Order.RankOf(zebra))
	}
}

func TestOverlap(t *testing.T) {
	a := &Record{Tokens: []tokens.Rank{1, 3, 5, 7}}
	b := &Record{Tokens: []tokens.Rank{3, 4, 5, 9}}
	if o := a.Overlap(b); o != 2 {
		t.Fatalf("overlap: got %d want 2", o)
	}
	empty := &Record{}
	if o := a.Overlap(empty); o != 0 {
		t.Fatalf("overlap with empty: got %d want 0", o)
	}
}

func TestOverlapIsSymmetric(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a := &Record{Tokens: tokens.Dedup(append([]tokens.Rank{}, xs...))}
		b := &Record{Tokens: tokens.Dedup(append([]tokens.Rank{}, ys...))}
		return a.Overlap(b) == b.Overlap(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromRanksDedups(t *testing.T) {
	b := buildTestBuilder([]string{"x"})
	r := b.FromRanks([]tokens.Rank{9, 2, 9, 2, 4})
	if len(r.Tokens) != 3 {
		t.Fatalf("want 3 tokens got %v", r.Tokens)
	}
}

func TestNewPairNormalizesOrder(t *testing.T) {
	p := NewPair(9, 3, 0.8)
	if p.First != 3 || p.Second != 9 {
		t.Fatalf("pair not normalized: %v", p)
	}
	q := NewPair(3, 9, 0.8)
	if p != q {
		t.Fatalf("pairs differ after normalization: %v vs %v", p, q)
	}
}

func TestBuildOrderingFromSampleCountsDocFreqNotTermFreq(t *testing.T) {
	// "a" appears twice in one doc, "b" once in each of two docs: doc
	// frequency must make b the more frequent token.
	dict, order := BuildOrderingFromSample(tokens.WordTokenizer{}, []string{"a a b", "b c"})
	a, _ := dict.Lookup("a")
	bb, _ := dict.Lookup("b")
	if !(order.RankOf(a) < order.RankOf(bb)) {
		t.Fatalf("doc-freq ordering wrong: rank(a)=%d rank(b)=%d",
			order.RankOf(a), order.RankOf(bb))
	}
}
