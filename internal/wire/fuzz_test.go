package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/record"
	"repro/internal/tokens"
)

// FuzzReaderNeverPanics feeds arbitrary bytes through the frame reader and
// every payload decoder: malformed input must produce errors, never panics
// or huge allocations.
func FuzzReaderNeverPanics(f *testing.F) {
	// Seed with valid frames of each type.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteHello(Hello{Version: Version, Bounds: []int{1, 2}})
	_ = w.WriteRecord(true, &record.Record{ID: 9, Time: -3, Tokens: []tokens.Rank{1, 5, 9}})
	_ = w.WriteResult(Result{A: 1, B: 2, Sim: 0.5})
	_ = w.WriteStats(Stats{Probes: 1})
	_ = w.WriteEOF()
	f.Add(buf.Bytes())
	f.Add([]byte{TypeRecord, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			typ, err := r.Next()
			if err != nil {
				return
			}
			switch typ {
			case TypeHello:
				_, _ = r.ReadHello()
			case TypeRecord:
				_, _ = r.ReadRecord()
			case TypeResult:
				_, _ = r.ReadResult()
			case TypeStats:
				_, _ = r.ReadStats()
			case TypeEOF:
				return
			default:
				return
			}
		}
	})
}

// FuzzRecordRoundTrip checks encode→decode identity for arbitrary token
// multisets.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(2), []byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, id uint64, tm int64, raw []byte) {
		set := make([]tokens.Rank, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			set = append(set, tokens.Rank(raw[i])<<8|tokens.Rank(raw[i+1]))
		}
		set = tokens.Dedup(set)
		rec := &record.Record{ID: record.ID(id), Time: tm, Tokens: set}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRecord(false, rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadRecord()
		if err != nil {
			t.Fatal(err)
		}
		if got.Rec.ID != rec.ID || got.Rec.Time != tm || len(got.Rec.Tokens) != len(set) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got.Rec, rec)
		}
		for i := range set {
			if got.Rec.Tokens[i] != set[i] {
				t.Fatalf("token %d: %d vs %d", i, got.Rec.Tokens[i], set[i])
			}
		}
		// And the stream must end cleanly.
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trailing garbage: %v", err)
		}
	})
}
