package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/record"
	"repro/internal/tokens"
)

// TestTracedRecordRoundTrip covers the wire v3 trace annotation: trace id
// and parent span index survive the trip, and untraced records decode
// with both zeroed.
func TestTracedRecordRoundTrip(t *testing.T) {
	rec := &record.Record{ID: 42, Time: 9, Tokens: []tokens.Rank{1, 2, 300}}
	r := roundTripFrames(t, func(w *Writer) error {
		return w.WriteRecordTraced(true, false, rec, 0xcafebabe12345678, 3)
	})
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0xcafebabe12345678 || got.ParentSpan != 3 {
		t.Fatalf("trace annotation lost: id=%#x parent=%d", got.TraceID, got.ParentSpan)
	}
	if !got.Store || got.Right {
		t.Fatalf("flags corrupted by trace bit: %+v", got)
	}
	if got.Rec.ID != rec.ID || len(got.Rec.Tokens) != len(rec.Tokens) {
		t.Fatalf("payload corrupted: %+v", got)
	}
}

// TestUntracedEncodingUnchanged pins the zero-cost-off property at the
// byte level: WriteRecordTraced with a zero trace id must produce the
// exact bytes WriteRecordSide always produced.
func TestUntracedEncodingUnchanged(t *testing.T) {
	rec := &record.Record{ID: 7, Time: 1, Tokens: []tokens.Rank{4, 8, 15, 16, 23, 42}}
	var plain, traced bytes.Buffer
	wp, wt := NewWriter(&plain), NewWriter(&traced)
	if err := wp.WriteRecordSide(true, true, rec); err != nil {
		t.Fatal(err)
	}
	if err := wt.WriteRecordTraced(true, true, rec, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := wp.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := wt.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), traced.Bytes()) {
		t.Fatalf("zero trace id changed the encoding:\n%x\n%x", plain.Bytes(), traced.Bytes())
	}
	r := NewReader(&plain)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0 || got.ParentSpan != 0 {
		t.Fatalf("untraced record decoded trace fields: %+v", got)
	}
}

// TestTracedRecordRoundTripProperty fuzzes the annotation across ids and
// parent spans (including -1, the "attach at wire parent" sentinel).
func TestTracedRecordRoundTripProperty(t *testing.T) {
	f := func(id uint64, traceID uint64, parent int16, raw []uint32, store, right bool) bool {
		toks := tokens.Dedup(append([]tokens.Rank{}, raw...))
		rec := &record.Record{ID: record.ID(id), Tokens: toks}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRecordTraced(store, right, rec, traceID, int(parent)); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		if _, err := r.Next(); err != nil {
			return false
		}
		got, err := r.ReadRecord()
		if err != nil {
			return false
		}
		if got.Store != store || got.Right != right || got.Rec.ID != rec.ID {
			return false
		}
		if traceID == 0 {
			return got.TraceID == 0 && got.ParentSpan == 0
		}
		return got.TraceID == traceID && got.ParentSpan == int(parent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
