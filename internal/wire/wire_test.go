package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/record"
	"repro/internal/tokens"
)

func roundTripFrames(t *testing.T, write func(*Writer) error) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := write(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return NewReader(&buf)
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{
		Version: Version, Task: 3, Workers: 8, Func: 1, Threshold: 0.85,
		Algorithm: 2, WindowKind: 1, WindowN: 5000, Strategy: 0,
		Bounds: []int{4, 9, 17, 300}, GroupThreshold: 0.9, MaxMembers: 32,
		OneByOne: true,
	}
	r := roundTripFrames(t, func(w *Writer) error { return w.WriteHello(h) })
	typ, err := r.Next()
	if err != nil || typ != TypeHello {
		t.Fatalf("next: %v %v", typ, err)
	}
	got, err := r.ReadHello()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("hello mismatch:\ngot  %+v\nwant %+v", got, h)
	}
}

func TestHelloFTRoundTrip(t *testing.T) {
	h := Hello{
		Version: Version, Task: 1, Workers: 4, Func: 0, Threshold: 0.7,
		Strategy: 2, Bounds: []int{},
		FT: true, Resume: true, SessionID: 0xDEADBEEFCAFE,
	}
	r := roundTripFrames(t, func(w *Writer) error { return w.WriteHello(h) })
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadHello()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("ft hello mismatch:\ngot  %+v\nwant %+v", got, h)
	}
}

func TestControlFramesRoundTrip(t *testing.T) {
	r := roundTripFrames(t, func(w *Writer) error {
		if err := w.WritePing(); err != nil {
			return err
		}
		if err := w.WritePong(); err != nil {
			return err
		}
		return w.WriteResumeAck(123456789)
	})
	for _, want := range []byte{TypePing, TypePong} {
		typ, err := r.Next()
		if err != nil || typ != want {
			t.Fatalf("control frame: got %v %v, want %v", typ, err, want)
		}
	}
	typ, err := r.Next()
	if err != nil || typ != TypeResumeAck {
		t.Fatalf("resume-ack frame: %v %v", typ, err)
	}
	next, err := r.ReadResumeAck()
	if err != nil || next != 123456789 {
		t.Fatalf("resume-ack cursor: %d %v", next, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestHelloVersionRejected(t *testing.T) {
	h := Hello{Version: Version + 1, Bounds: []int{}}
	r := roundTripFrames(t, func(w *Writer) error { return w.WriteHello(h) })
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadHello(); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestHelloOldVersionsAccepted(t *testing.T) {
	// A v4 peer must keep accepting v2/v3 hellos (version negotiation);
	// anything below MinVersion stays rejected.
	for v := MinVersion; v <= Version; v++ {
		h := Hello{Version: v, Task: 1, Workers: 2, Threshold: 0.6, Bounds: []int{}}
		r := roundTripFrames(t, func(w *Writer) error { return w.WriteHello(h) })
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadHello()
		if err != nil {
			t.Fatalf("version %d rejected: %v", v, err)
		}
		if got.Version != v {
			t.Fatalf("version %d decoded as %d", v, got.Version)
		}
	}
	h := Hello{Version: MinVersion - 1, Bounds: []int{}}
	r := roundTripFrames(t, func(w *Writer) error { return w.WriteHello(h) })
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadHello(); err == nil {
		t.Fatalf("version %d accepted", MinVersion-1)
	}
}

func TestHelloV4FieldsRoundTrip(t *testing.T) {
	h := Hello{
		Version: 4, Task: 2, Workers: 4, Threshold: 0.8, Bounds: []int{10, 20},
		FT: true, Durable: true, SessionID: 42, PlanHash: 0xFEEDFACE12345678,
	}
	r := roundTripFrames(t, func(w *Writer) error { return w.WriteHello(h) })
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadHello()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("v4 hello mismatch:\ngot  %+v\nwant %+v", got, h)
	}
}

func TestHelloV3EncodingUnchanged(t *testing.T) {
	// A hello pinned at version 3 must encode byte-identically whether or
	// not the v4-only fields are populated: old peers see the old bytes.
	base := Hello{Version: 3, Task: 1, Workers: 2, Threshold: 0.7, Bounds: []int{5}, FT: true, SessionID: 9}
	withV4 := base
	withV4.PlanHash = 0xABCDEF

	encode := func(h Hello) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteHello(h); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(base), encode(withV4)) {
		t.Fatal("PlanHash leaked into a v3 hello encoding")
	}
}

func TestFlowControlFramesRoundTrip(t *testing.T) {
	r := roundTripFrames(t, func(w *Writer) error {
		if err := w.WritePause(); err != nil {
			return err
		}
		if err := w.WriteCredit(4096); err != nil {
			return err
		}
		return w.WriteResume()
	})
	typ, err := r.Next()
	if err != nil || typ != TypePause {
		t.Fatalf("pause frame: %v %v", typ, err)
	}
	typ, err = r.Next()
	if err != nil || typ != TypeCredit {
		t.Fatalf("credit frame: %v %v", typ, err)
	}
	delta, err := r.ReadCredit()
	if err != nil || delta != 4096 {
		t.Fatalf("credit delta: %d %v", delta, err)
	}
	typ, err = r.Next()
	if err != nil || typ != TypeResume {
		t.Fatalf("resume frame: %v %v", typ, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestResumeAckCreditForms(t *testing.T) {
	// v2/v3 form: no credit field.
	r := roundTripFrames(t, func(w *Writer) error { return w.WriteResumeAck(77) })
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	next, credit, has, err := r.ReadResumeAckCredit()
	if err != nil || next != 77 || has || credit != 0 {
		t.Fatalf("plain ack decoded as (%d, %d, %v, %v)", next, credit, has, err)
	}
	// v4 form: credit present; legacy ReadResumeAck still sees the cursor.
	r = roundTripFrames(t, func(w *Writer) error { return w.WriteResumeAckCredit(77, 512) })
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	next, credit, has, err = r.ReadResumeAckCredit()
	if err != nil || next != 77 || !has || credit != 512 {
		t.Fatalf("v4 ack decoded as (%d, %d, %v, %v)", next, credit, has, err)
	}
	r = roundTripFrames(t, func(w *Writer) error { return w.WriteResumeAckCredit(33, 8) })
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if next, err := r.ReadResumeAck(); err != nil || next != 33 {
		t.Fatalf("legacy decode of v4 ack: %d %v", next, err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := &record.Record{ID: 12345, Time: -7, Tokens: []tokens.Rank{1, 5, 9, 4_000_000_000}}
	r := roundTripFrames(t, func(w *Writer) error { return w.WriteRecord(true, rec) })
	typ, err := r.Next()
	if err != nil || typ != TypeRecord {
		t.Fatalf("next: %v %v", typ, err)
	}
	got, err := r.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Store || got.Rec.ID != rec.ID || got.Rec.Time != rec.Time {
		t.Fatalf("record header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Rec.Tokens, rec.Tokens) {
		t.Fatalf("tokens: %v vs %v", got.Rec.Tokens, rec.Tokens)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(id uint64, tm int64, raw []uint32, store bool) bool {
		toks := tokens.Dedup(append([]tokens.Rank{}, raw...))
		rec := &record.Record{ID: record.ID(id), Time: tm, Tokens: toks}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRecord(store, rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		if _, err := r.Next(); err != nil {
			return false
		}
		got, err := r.ReadRecord()
		if err != nil {
			return false
		}
		if got.Store != store || got.Rec.ID != rec.ID || got.Rec.Time != tm {
			return false
		}
		if len(got.Rec.Tokens) != len(toks) {
			return false
		}
		for i := range toks {
			if got.Rec.Tokens[i] != toks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResultAndStatsRoundTrip(t *testing.T) {
	res := Result{A: 7, B: 99, Sim: 0.875}
	st := Stats{Probes: 1, Stored: 2, Scanned: 3, Candidates: 4, Verified: 5,
		Results: 6, VerifySteps: 7, Postings: 8}
	r := roundTripFrames(t, func(w *Writer) error {
		if err := w.WriteResult(res); err != nil {
			return err
		}
		return w.WriteStats(st)
	})
	typ, _ := r.Next()
	if typ != TypeResult {
		t.Fatalf("type: %v", typ)
	}
	gotRes, err := r.ReadResult()
	if err != nil || gotRes != res {
		t.Fatalf("result: %+v %v", gotRes, err)
	}
	typ, _ = r.Next()
	if typ != TypeStats {
		t.Fatalf("type: %v", typ)
	}
	gotSt, err := r.ReadStats()
	if err != nil || gotSt != st {
		t.Fatalf("stats: %+v %v", gotSt, err)
	}
}

func TestEOFFrame(t *testing.T) {
	r := roundTripFrames(t, func(w *Writer) error { return w.WriteEOF() })
	typ, err := r.Next()
	if err != nil || typ != TypeEOF {
		t.Fatalf("eof: %v %v", typ, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean io.EOF, got %v", err)
	}
}

func TestInterleavedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 500
	for i := 0; i < n; i++ {
		toks := make([]tokens.Rank, 1+rng.Intn(20))
		for j := range toks {
			toks[j] = tokens.Rank(rng.Intn(1 << 20))
		}
		toks = tokens.Dedup(toks)
		if err := w.WriteRecord(i%2 == 0, &record.Record{ID: record.ID(i), Tokens: toks}); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := w.WriteResult(Result{A: record.ID(i), B: record.ID(i + 1), Sim: 0.5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.WriteEOF(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	recs, results := 0, 0
	for {
		typ, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if typ == TypeEOF {
			break
		}
		switch typ {
		case TypeRecord:
			if _, err := r.ReadRecord(); err != nil {
				t.Fatal(err)
			}
			recs++
		case TypeResult:
			if _, err := r.ReadResult(); err != nil {
				t.Fatal(err)
			}
			results++
		default:
			t.Fatalf("unexpected type %d", typ)
		}
	}
	if recs != n || results != n/5 {
		t.Fatalf("counts: %d records %d results", recs, results)
	}
}

func TestTruncatedFrameIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(true, &record.Record{ID: 1, Tokens: []tokens.Rank{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		_, err := r.Next()
		if err == nil {
			// Header parsed; payload must still decode or the frame was
			// complete — but we cut it, so Next must have failed unless
			// cut == len(full).
			t.Fatalf("cut=%d: truncated frame accepted", cut)
		}
		if err == io.EOF {
			t.Fatalf("cut=%d: truncation reported as clean EOF", cut)
		}
	}
}

func TestGarbagePayloadRejected(t *testing.T) {
	// A record frame claiming many tokens but carrying none.
	var buf bytes.Buffer
	buf.WriteByte(TypeRecord)
	buf.WriteByte(3)    // payload length 3
	buf.WriteByte(1)    // store
	buf.WriteByte(1)    // id
	buf.WriteByte(0x7F) // time varint... then missing token count
	r := NewReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadRecord(); err == nil {
		t.Fatal("garbage record accepted")
	}
}

func TestDeltaEncodingIsCompact(t *testing.T) {
	// Dense ascending tokens must encode in ~1 byte each.
	toks := make([]tokens.Rank, 1000)
	for i := range toks {
		toks[i] = tokens.Rank(1_000_000 + i)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(false, &record.Record{ID: 1, Tokens: toks}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 1100 {
		t.Fatalf("delta encoding not compact: %d bytes for 1000 dense tokens", buf.Len())
	}
}

func TestSnapshotFramesRoundTrip(t *testing.T) {
	blob := []byte("opaque checkpoint bytes \x00\x01\x02")
	r := roundTripFrames(t, func(w *Writer) error {
		if err := w.WriteSnapshot(blob); err != nil {
			return err
		}
		return w.WriteSnapshotReq()
	})
	typ, err := r.Next()
	if err != nil || typ != TypeSnapshot {
		t.Fatalf("snapshot frame: %v %v", typ, err)
	}
	got := r.ReadSnapshot()
	if !bytes.Equal(got, blob) {
		t.Fatalf("blob mismatch: %q", got)
	}
	typ, err = r.Next()
	if err != nil || typ != TypeSnapshotReq {
		t.Fatalf("snapshot-req frame: %v %v", typ, err)
	}
}

func TestReadSnapshotReturnsCopy(t *testing.T) {
	r := roundTripFrames(t, func(w *Writer) error {
		if err := w.WriteSnapshot([]byte("aaa")); err != nil {
			return err
		}
		return w.WriteSnapshot([]byte("bbb"))
	})
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	first := r.ReadSnapshot()
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	second := r.ReadSnapshot()
	if string(first) != "aaa" || string(second) != "bbb" {
		t.Fatalf("staging buffer aliased: %q %q", first, second)
	}
}
