// Package wire defines the binary protocol between the join coordinator
// and remote workers: length-delimited frames with a one-byte type,
// varint-encoded payloads, and delta-encoded token sets (tokens are sorted
// ascending, so gaps are small and compress well).
//
// Frame layout:
//
//	[type: 1 byte][payload length: uvarint][payload]
//
// The protocol is request/response-free on the data path: the coordinator
// streams Hello, Record... , EOF; the worker streams Result..., Stats, and
// closes. Both sides therefore run one reader and one writer goroutine
// with no locking. Fault-tolerant sessions (Hello flag FT, protocol v2)
// add three control frames outside the data path: Ping/Pong liveness
// probes and the ResumeAck cursor answer to a resuming Hello.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/record"
	"repro/internal/tokens"
)

// Frame types. Each constant declares its consumer with a handled-by
// marker; the wirestate analyzer verifies that every declared role has a
// matching arm in an annotated dispatch switch (or a wire-handled site).
const (
	TypeHello byte = iota + 1 // handled-by: worker
	TypeRecord                // handled-by: worker
	TypeResult                // handled-by: coordinator
	// TypeEOF ends the coordinator's record stream; payload-free, the
	// worker reacts to the frame type alone. handled-by: worker
	TypeEOF
	TypeStats // handled-by: coordinator
	// TypeSnapshot carries an opaque checkpoint blob: coordinator→worker
	// right after Hello to seed the window, or worker→coordinator after
	// Stats when the coordinator ended the stream with TypeSnapshotReq.
	// handled-by: coordinator,worker
	TypeSnapshot
	// TypeSnapshotReq replaces TypeEOF when the coordinator wants the
	// worker's window state back; payload-free like TypeEOF.
	// handled-by: worker
	TypeSnapshotReq
	// TypePing is a coordinator→worker liveness probe; payload-free and
	// flushed immediately so it cannot sit in the write buffer.
	// handled-by: worker
	TypePing
	// TypePong is the worker's payload-free answer to TypePing, likewise
	// flushed immediately. handled-by: coordinator
	TypePong
	// TypeResumeAck answers a resuming Hello (flag bit 2): the worker
	// reports the stream cursor it restored from its checkpoint so the
	// coordinator can replay only the tail. Payload is one uvarint — the
	// next record ID the worker expects (0 = nothing restored, replay all).
	// A v4 worker appends a second uvarint, its initial record-credit
	// window; its presence is how the coordinator learns the peer speaks
	// v4 (see ReadResumeAckCredit). handled-by: coordinator
	TypeResumeAck
	// TypePause (v4) is a payload-free flow-control notice, valid in both
	// directions once a v4 FT session is negotiated. Worker→coordinator it
	// means "my unacknowledged-result buffer crossed its high watermark;
	// hold the record stream". Coordinator→worker it parks the session:
	// the worker keeps answering pings but should expect no records until
	// Resume. Flushed immediately, like Ping.
	// handled-by: coordinator,worker
	TypePause
	// TypeResume (v4) is the payload-free counterpart of TypePause: the
	// sender's pressure dropped below its low watermark and the stream may
	// flow again. handled-by: coordinator,worker
	TypeResume
	// TypeCredit (v4) grants flow-control credit; payload is one uvarint
	// delta. Worker→coordinator it means "I processed n more records; send
	// n more". Coordinator→worker it acknowledges n more results as
	// durable (persisted to the results log), letting the worker drop them
	// from its unacknowledged-result buffer. Credits are per-connection
	// and reset at each handshake. handled-by: coordinator,worker
	TypeCredit
)

// Version is the protocol version carried in Hello. Version 2 added the
// fault-tolerance handshake: Hello carries a session ID plus FT/Resume
// flags, and the Ping, Pong and ResumeAck frame types exist. Version 3
// added the optional trace-context annotation on Record frames (flags
// bit 4: trace id + parent span index appended after the token list);
// untraced records encode byte-identically to version 2, so the
// annotation costs nothing off the sampled path. Version 4 added flow
// control and durable recovery: the Pause/Resume/Credit frames, a
// partition-plan hash appended to Hello, the Durable hello flag, and an
// initial-credit field on ResumeAck.
//
// Negotiation is asymmetric by design: a peer accepts any version in
// [MinVersion, Version] (ReadHello), and the v4 additions appear on the
// wire only when the Hello that opened the session carried version >= 4 —
// a session pinned at version 2 or 3 encodes byte-identically to the old
// protocol, so new coordinators interoperate with old workers by sending
// the older version.
const Version = 4

// MinVersion is the oldest Hello version a peer still accepts.
const MinVersion = 2

// MaxFrame bounds a frame payload; larger frames indicate corruption.
const MaxFrame = 1 << 24

// ErrFrameTooLarge is returned when a frame exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Hello configures a worker for one join session.
type Hello struct {
	Version   int
	Task      int // this worker's task index
	Workers   int // total worker count
	Func      int // similarity.Func
	Threshold float64
	Algorithm int // local.Algorithm
	// Window: 0 unbounded, 1 count, 2 time; N is the size/span.
	WindowKind int
	WindowN    int64
	// Strategy: 0 length, 1 prefix, 2 broadcast. Bounds carries the
	// length partition for strategy 0.
	Strategy int
	Bounds   []int
	// Bundle config.
	GroupThreshold float64
	MaxMembers     int
	OneByOne       bool
	// Bi marks a two-stream session: records carry a side flag and match
	// only across sides.
	Bi bool
	// FT marks a fault-tolerant session: the coordinator may ping, record
	// IDs are strictly increasing per connection (so the worker can drop
	// duplicates), and the worker checkpoints its window for recovery.
	FT bool
	// Resume asks the worker to restore the checkpoint saved under
	// SessionID/Task before answering with a ResumeAck frame.
	Resume bool
	// SessionID names the run across reconnects; FT checkpoints are keyed
	// by it. Zero for non-FT sessions.
	SessionID uint64
	// Durable (v4, flags bit 16) marks a session whose results are
	// persisted coordinator-side: the worker must buffer results until the
	// coordinator acknowledges them with Credit frames, and re-send the
	// unacknowledged tail after a resume.
	Durable bool
	// PlanHash (v4) fingerprints the session's launch configuration
	// (partition plan, strategy, similarity parameters). A resuming worker
	// compares it against its checkpoint and rejects a mismatch — the
	// checkpoint belongs to a different plan and would replay wrong-range
	// records. Encoded only when Version >= 4.
	PlanHash uint64
}

// Record is a routed record copy with its storage role and, for
// two-stream sessions, its side. TraceID and ParentSpan carry the
// distributed-tracing context of a sampled tuple (TraceID 0 = untraced):
// the worker records its span fragments under TraceID, parented at span
// index ParentSpan of the coordinator's root trace.
type Record struct {
	Store      bool
	Right      bool
	TraceID    uint64
	ParentSpan int
	Rec        *record.Record
}

// Result is one verified pair.
type Result struct {
	A, B record.ID
	Sim  float64
}

// Stats carries a worker's final work counters back to the coordinator.
type Stats struct {
	Probes, Stored, Scanned, Candidates, Verified, Results, VerifySteps, Postings uint64
}

// Writer frames and buffers outbound messages. Not safe for concurrent
// use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

func (w *Writer) putUvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *Writer) putVarint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *Writer) putFloat(f float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	w.buf = append(w.buf, b[:]...)
}

func (w *Writer) flushFrame(typ byte) error {
	if len(w.buf) > MaxFrame {
		return ErrFrameTooLarge
	}
	if err := w.w.WriteByte(typ); err != nil {
		return err
	}
	n := binary.PutUvarint(w.tmp[:], uint64(len(w.buf)))
	if _, err := w.w.Write(w.tmp[:n]); err != nil {
		return err
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// WriteHello sends the session handshake.
func (w *Writer) WriteHello(h Hello) error {
	w.putUvarint(uint64(h.Version))
	w.putUvarint(uint64(h.Task))
	w.putUvarint(uint64(h.Workers))
	w.putUvarint(uint64(h.Func))
	w.putFloat(h.Threshold)
	w.putUvarint(uint64(h.Algorithm))
	w.putUvarint(uint64(h.WindowKind))
	w.putVarint(h.WindowN)
	w.putUvarint(uint64(h.Strategy))
	w.putUvarint(uint64(len(h.Bounds)))
	for _, b := range h.Bounds {
		w.putUvarint(uint64(b))
	}
	w.putFloat(h.GroupThreshold)
	w.putUvarint(uint64(h.MaxMembers))
	var flags byte
	if h.OneByOne {
		flags |= 1
	}
	if h.Bi {
		flags |= 2
	}
	if h.FT {
		flags |= 4
	}
	if h.Resume {
		flags |= 8
	}
	if h.Durable {
		flags |= 16
	}
	w.buf = append(w.buf, flags)
	w.putUvarint(h.SessionID)
	if h.Version >= 4 {
		w.putUvarint(h.PlanHash)
	}
	return w.flushFrame(TypeHello)
}

// WriteRecord sends one routed record copy. Tokens must be sorted
// ascending (they are delta-encoded).
func (w *Writer) WriteRecord(store bool, r *record.Record) error {
	return w.WriteRecordSide(store, false, r)
}

// WriteRecordSide is WriteRecord with the two-stream side flag.
func (w *Writer) WriteRecordSide(store, right bool, r *record.Record) error {
	return w.WriteRecordTraced(store, right, r, 0, 0)
}

// WriteRecordTraced is WriteRecordSide carrying a trace context. A zero
// traceID writes the exact untraced v2 encoding — the annotation (flags
// bit 4 plus two trailing varints) exists on the wire only for sampled
// tuples, keeping the unsampled path byte-identical and branch-cheap.
func (w *Writer) WriteRecordTraced(store, right bool, r *record.Record, traceID uint64, parentSpan int) error {
	var flags byte
	if store {
		flags |= 1
	}
	if right {
		flags |= 2
	}
	if traceID != 0 {
		flags |= 4
	}
	w.buf = append(w.buf, flags)
	w.putUvarint(uint64(r.ID))
	w.putVarint(r.Time)
	w.putUvarint(uint64(len(r.Tokens)))
	prev := uint64(0)
	for _, t := range r.Tokens {
		w.putUvarint(uint64(t) - prev)
		prev = uint64(t)
	}
	if traceID != 0 {
		w.putUvarint(traceID)
		w.putVarint(int64(parentSpan))
	}
	return w.flushFrame(TypeRecord)
}

// WriteResult sends one verified pair.
func (w *Writer) WriteResult(res Result) error {
	w.putUvarint(uint64(res.A))
	w.putUvarint(uint64(res.B))
	w.putFloat(res.Sim)
	return w.flushFrame(TypeResult)
}

// WriteEOF signals end of stream.
func (w *Writer) WriteEOF() error {
	if err := w.flushFrame(TypeEOF); err != nil {
		return err
	}
	return w.Flush()
}

// WriteStats sends the worker's final counters.
func (w *Writer) WriteStats(s Stats) error {
	for _, v := range []uint64{s.Probes, s.Stored, s.Scanned, s.Candidates,
		s.Verified, s.Results, s.VerifySteps, s.Postings} {
		w.putUvarint(v)
	}
	if err := w.flushFrame(TypeStats); err != nil {
		return err
	}
	return w.Flush()
}

// WriteSnapshot sends an opaque checkpoint blob.
func (w *Writer) WriteSnapshot(blob []byte) error {
	w.buf = append(w.buf, blob...)
	if err := w.flushFrame(TypeSnapshot); err != nil {
		return err
	}
	return w.Flush()
}

// WriteSnapshotReq ends the record stream like WriteEOF but asks the
// worker to append its window snapshot after the stats frame.
func (w *Writer) WriteSnapshotReq() error {
	if err := w.flushFrame(TypeSnapshotReq); err != nil {
		return err
	}
	return w.Flush()
}

// WritePing sends a liveness probe and flushes it to the connection so the
// peer sees it immediately.
func (w *Writer) WritePing() error {
	if err := w.flushFrame(TypePing); err != nil {
		return err
	}
	return w.Flush()
}

// WritePong answers a ping; flushed like WritePing.
func (w *Writer) WritePong() error {
	if err := w.flushFrame(TypePong); err != nil {
		return err
	}
	return w.Flush()
}

// WriteResumeAck reports the restored stream cursor of a resuming session:
// nextID is the first record ID the worker has NOT yet seen (0 when no
// checkpoint was found). Flushed so the coordinator can start its replay
// without waiting for buffer pressure. This is the v2/v3 form; v4 workers
// answer with WriteResumeAckCredit instead.
func (w *Writer) WriteResumeAck(nextID uint64) error {
	w.putUvarint(nextID)
	if err := w.flushFrame(TypeResumeAck); err != nil {
		return err
	}
	return w.Flush()
}

// WriteResumeAckCredit is the v4 ResumeAck: the cursor plus the worker's
// initial record-credit window. The extra field is what tells the
// coordinator the worker speaks v4 and flow control is in effect.
func (w *Writer) WriteResumeAckCredit(nextID, credit uint64) error {
	w.putUvarint(nextID)
	w.putUvarint(credit)
	if err := w.flushFrame(TypeResumeAck); err != nil {
		return err
	}
	return w.Flush()
}

// WritePause sends the payload-free flow-control pause notice; flushed
// immediately like WritePing so pressure propagates without delay.
func (w *Writer) WritePause() error {
	if err := w.flushFrame(TypePause); err != nil {
		return err
	}
	return w.Flush()
}

// WriteResume lifts a pause; flushed like WritePause.
func (w *Writer) WriteResume() error {
	if err := w.flushFrame(TypeResume); err != nil {
		return err
	}
	return w.Flush()
}

// WriteCredit grants delta units of flow-control credit; flushed so the
// peer can act on it immediately.
func (w *Writer) WriteCredit(delta uint64) error {
	w.putUvarint(delta)
	if err := w.flushFrame(TypeCredit); err != nil {
		return err
	}
	return w.Flush()
}

// Flush drains the buffered writer to the connection.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader parses inbound frames. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next reads the next frame, returning its type and leaving the payload
// staged for the matching Read* call. io.EOF is returned at a clean
// connection end.
func (r *Reader) Next() (byte, error) {
	typ, err := r.r.ReadByte()
	if err != nil {
		return 0, err
	}
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, frameErr(err)
	}
	if n > MaxFrame {
		return 0, ErrFrameTooLarge
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return 0, frameErr(err)
	}
	return typ, nil
}

// frameErr converts an EOF mid-frame into ErrUnexpectedEOF so that callers
// can distinguish clean stream end (io.EOF from Next's first byte) from a
// truncated frame.
func frameErr(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

type payload struct {
	b []byte
	i int
}

func (p *payload) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.i:])
	if n <= 0 {
		return 0, errors.New("wire: truncated uvarint")
	}
	p.i += n
	return v, nil
}

func (p *payload) varint() (int64, error) {
	v, n := binary.Varint(p.b[p.i:])
	if n <= 0 {
		return 0, errors.New("wire: truncated varint")
	}
	p.i += n
	return v, nil
}

func (p *payload) float() (float64, error) {
	if p.i+8 > len(p.b) {
		return 0, errors.New("wire: truncated float")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.b[p.i:]))
	p.i += 8
	return v, nil
}

func (p *payload) byte() (byte, error) {
	if p.i >= len(p.b) {
		return 0, errors.New("wire: truncated byte")
	}
	b := p.b[p.i]
	p.i++
	return b, nil
}

// ReadHello decodes a staged Hello frame.
func (r *Reader) ReadHello() (Hello, error) {
	p := payload{b: r.buf}
	var h Hello
	var err error
	get := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = p.uvarint()
		return v
	}
	h.Version = int(get())
	h.Task = int(get())
	h.Workers = int(get())
	h.Func = int(get())
	if err == nil {
		h.Threshold, err = p.float()
	}
	h.Algorithm = int(get())
	h.WindowKind = int(get())
	if err == nil {
		h.WindowN, err = p.varint()
	}
	h.Strategy = int(get())
	nb := int(get())
	if err != nil {
		return h, err
	}
	if nb < 0 || nb > 1<<20 {
		return h, fmt.Errorf("wire: absurd bounds count %d", nb)
	}
	h.Bounds = make([]int, nb)
	for i := range h.Bounds {
		h.Bounds[i] = int(get())
	}
	if err == nil {
		h.GroupThreshold, err = p.float()
	}
	h.MaxMembers = int(get())
	if err != nil {
		return h, err
	}
	ob, err := p.byte()
	if err != nil {
		return h, err
	}
	h.OneByOne = ob&1 != 0
	h.Bi = ob&2 != 0
	h.FT = ob&4 != 0
	h.Resume = ob&8 != 0
	h.Durable = ob&16 != 0
	if h.SessionID, err = p.uvarint(); err != nil {
		return h, err
	}
	if h.Version < MinVersion || h.Version > Version {
		return h, fmt.Errorf("wire: protocol version %d, want %d..%d", h.Version, MinVersion, Version)
	}
	if h.Version >= 4 {
		if h.PlanHash, err = p.uvarint(); err != nil {
			return h, err
		}
	}
	return h, nil
}

// ReadResumeAck decodes a staged ResumeAck frame into the worker's next
// expected record ID, ignoring the v4 credit field if present.
func (r *Reader) ReadResumeAck() (uint64, error) {
	p := payload{b: r.buf}
	return p.uvarint()
}

// ReadResumeAckCredit decodes a staged ResumeAck frame including the v4
// initial-credit field. hasCredit reports whether the field was present —
// false means the peer answered with the v2/v3 form and flow control is
// not in effect on this connection.
func (r *Reader) ReadResumeAckCredit() (nextID, credit uint64, hasCredit bool, err error) {
	p := payload{b: r.buf}
	if nextID, err = p.uvarint(); err != nil {
		return 0, 0, false, err
	}
	if p.i >= len(p.b) {
		return nextID, 0, false, nil
	}
	if credit, err = p.uvarint(); err != nil {
		return 0, 0, false, err
	}
	return nextID, credit, true, nil
}

// ReadCredit decodes a staged Credit frame's delta.
func (r *Reader) ReadCredit() (uint64, error) {
	p := payload{b: r.buf}
	return p.uvarint()
}

// ReadRecord decodes a staged Record frame.
func (r *Reader) ReadRecord() (Record, error) {
	p := payload{b: r.buf}
	st, err := p.byte()
	if err != nil {
		return Record{}, err
	}
	id, err := p.uvarint()
	if err != nil {
		return Record{}, err
	}
	t, err := p.varint()
	if err != nil {
		return Record{}, err
	}
	n, err := p.uvarint()
	if err != nil {
		return Record{}, err
	}
	if n > MaxFrame {
		return Record{}, fmt.Errorf("wire: absurd token count %d", n)
	}
	toks := make([]tokens.Rank, n)
	prev := uint64(0)
	for i := range toks {
		d, err := p.uvarint()
		if err != nil {
			return Record{}, err
		}
		prev += d
		if prev > math.MaxUint32 {
			return Record{}, fmt.Errorf("wire: token overflows rank: %d", prev)
		}
		toks[i] = tokens.Rank(prev)
	}
	rec := Record{
		Store: st&1 != 0,
		Right: st&2 != 0,
		Rec:   &record.Record{ID: record.ID(id), Time: t, Tokens: toks},
	}
	if st&4 != 0 {
		if rec.TraceID, err = p.uvarint(); err != nil {
			return Record{}, err
		}
		ps, err := p.varint()
		if err != nil {
			return Record{}, err
		}
		rec.ParentSpan = int(ps)
	}
	return rec, nil
}

// ReadResult decodes a staged Result frame.
func (r *Reader) ReadResult() (Result, error) {
	p := payload{b: r.buf}
	a, err := p.uvarint()
	if err != nil {
		return Result{}, err
	}
	b, err := p.uvarint()
	if err != nil {
		return Result{}, err
	}
	sim, err := p.float()
	if err != nil {
		return Result{}, err
	}
	return Result{A: record.ID(a), B: record.ID(b), Sim: sim}, nil
}

// ReadSnapshot returns a copy of a staged Snapshot frame's blob.
func (r *Reader) ReadSnapshot() []byte {
	return append([]byte(nil), r.buf...)
}

// ReadStats decodes a staged Stats frame.
func (r *Reader) ReadStats() (Stats, error) {
	p := payload{b: r.buf}
	var s Stats
	for _, dst := range []*uint64{&s.Probes, &s.Stored, &s.Scanned, &s.Candidates,
		&s.Verified, &s.Results, &s.VerifySteps, &s.Postings} {
		v, err := p.uvarint()
		if err != nil {
			return s, err
		}
		*dst = v
	}
	return s, nil
}
