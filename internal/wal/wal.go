// Package wal is the coordinator's persistent ingest/replay log: an
// append-only sequence of binary records split across segment files, each
// record framed as
//
//	[payload length: uvarint][crc32c of payload: 4 bytes LE][payload]
//
// Records are addressed by a dense index (0, 1, 2, ...) assigned at
// append. Segment files are named wal-<start index, hex>.seg, so the
// record index doubles as a durable replay cursor: an iterator can
// re-drive a session from any retained offset, which is what makes a
// coordinator restart recoverable — the session's input is on disk, not
// in the dead process.
//
// Durability is a policy knob (always / interval / never), because fsync
// cost dominates ingest throughput. Open tolerates a torn final record —
// the tail a crash mid-write leaves behind — by truncating it; any other
// framing or checksum damage is corruption and is reported with the
// segment, record index and byte offset rather than silently skipped.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MaxRecord bounds one payload; larger frames indicate corruption.
const MaxRecord = 1 << 24

const (
	defaultSegmentBytes = 8 << 20
	defaultSyncEvery    = 256
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs every Options.SyncEvery appends, on rotation,
	// and on Close — the default: bounded loss window, amortized cost.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: no acknowledged record is
	// ever lost, at one fsync per record.
	SyncAlways
	// SyncNever leaves flushing to the OS entirely (tests, scratch runs).
	SyncNever
)

// ParseSyncPolicy maps the CLI spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// String renders the policy in its ParseSyncPolicy spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// Options configures a log. The zero value is usable.
type Options struct {
	// SegmentBytes caps a segment file; the next append rotates to a new
	// segment. Default 8 MiB.
	SegmentBytes int64
	// Sync is the fsync policy.
	Sync SyncPolicy
	// SyncEvery is the append count between fsyncs under SyncInterval.
	// Default 256.
	SyncEvery int
	// Retain caps the number of *sealed* segments kept after a rotation;
	// older segments are deleted, making their record range unreplayable.
	// 0 keeps everything — the right setting while a session must stay
	// fully re-drivable.
	Retain int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = defaultSyncEvery
	}
	return o
}

// CorruptError reports an unreadable record that is not a torn tail:
// the log's contents past this point cannot be trusted.
type CorruptError struct {
	Segment string // segment file path
	Index   uint64 // record index of the damaged record
	Offset  int64  // byte offset of the record's frame inside the segment
	Reason  string
}

// Error formats the damage site: record index, segment, byte offset.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record %d at %s+%d: %s", e.Index, e.Segment, e.Offset, e.Reason)
}

// segment is one sealed, immutable segment file.
type segment struct {
	start uint64 // index of the segment's first record
	path  string
}

// logState is the mutable state of a Log. It is owned wholesale by the
// Log's mutex — methods on logState assume the caller holds it.
type logState struct {
	dir         string
	o           Options
	sealed      []segment
	active      *os.File
	activePath  string
	activeStart uint64
	activeBytes int64
	next        uint64 // index of the next record
	unsynced    int    // appends since the last fsync
	closed      bool
}

// Log is an append-only segmented record log. Safe for concurrent use;
// iterators read a consistent snapshot taken at Iter time.
type Log struct {
	mu sync.Mutex
	s  logState // guarded by mu
}

func segName(start uint64) string { return fmt.Sprintf("wal-%016x.seg", start) }

// Open opens (or creates) the log in dir. The final segment's torn tail,
// if any, is truncated; a checksum or framing error anywhere before the
// tail fails the open with a CorruptError.
func Open(dir string, o Options) (*Log, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		start, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
		if perr != nil {
			return nil, fmt.Errorf("wal: segment %s has an unparseable start index", name)
		}
		segs = append(segs, segment{start: start, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	st := logState{dir: dir, o: o}
	if len(segs) == 0 {
		if err := st.openActive(0); err != nil {
			return nil, err
		}
		return &Log{s: st}, nil
	}
	// Sealed segments are immutable; only the last one can hold a torn
	// tail from a crash mid-append.
	last := segs[len(segs)-1]
	n, valid, err := scanSegment(last.path, last.start, true)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if fi, serr := f.Stat(); serr == nil && fi.Size() > valid {
		if terr := f.Truncate(valid); terr != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.path, terr)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	st.sealed = segs[:len(segs)-1]
	st.active = f
	st.activePath = last.path
	st.activeStart = last.start
	st.activeBytes = valid
	st.next = last.start + n
	return &Log{s: st}, nil
}

// openActive creates a fresh active segment whose first record is start.
func (s *logState) openActive(start uint64) error {
	path := filepath.Join(s.dir, segName(start))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	s.active = f
	s.activePath = path
	s.activeStart = start
	s.activeBytes = 0
	s.next = start
	return nil
}

// countingByteReader counts consumed bytes so scan and iteration can
// report exact offsets.
type countingByteReader struct {
	r io.Reader
	n int64
}

func (c *countingByteReader) ReadByte() (byte, error) {
	var one [1]byte
	n, err := c.r.Read(one[:])
	if n == 1 {
		c.n++
		return one[0], nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return 0, err
}

func (c *countingByteReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readFrame reads one record frame from c into buf (grown as needed),
// verifying length bounds and the checksum. It returns the payload or an
// io.EOF/io.ErrUnexpectedEOF/crc error; the caller classifies torn vs
// corrupt.
var errCRC = errors.New("checksum mismatch")

func readFrame(c *countingByteReader, buf []byte) ([]byte, error) {
	length, err := binary.ReadUvarint(c)
	if err != nil {
		return nil, err
	}
	if length > MaxRecord {
		return nil, fmt.Errorf("absurd record length %d", length)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(c, crcb[:]); err != nil {
		return nil, err
	}
	if uint64(cap(buf)) < length {
		buf = make([]byte, length)
	}
	buf = buf[:length]
	if _, err := io.ReadFull(c, buf); err != nil {
		return nil, err
	}
	if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(crcb[:]) {
		return nil, errCRC
	}
	return buf, nil
}

// scanSegment walks a segment, returning its record count and the byte
// size of its valid prefix. With truncateTorn, an incomplete final frame
// (or a checksum mismatch on the very last frame) counts as a torn tail
// and simply ends the valid prefix; otherwise — and for any damage that
// is not at the tail — a CorruptError is returned.
func scanSegment(path string, start uint64, truncateTorn bool) (n uint64, validSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	size := st.Size()
	c := &countingByteReader{r: f}
	var buf []byte
	idx := start
	for {
		frameStart := c.n
		payload, rerr := readFrame(c, buf)
		if rerr == io.EOF && c.n == frameStart {
			return idx - start, frameStart, nil // clean segment end
		}
		if rerr != nil {
			torn := rerr == io.EOF || rerr == io.ErrUnexpectedEOF ||
				(rerr == errCRC && c.n == size)
			if torn && truncateTorn {
				return idx - start, frameStart, nil
			}
			return 0, 0, &CorruptError{Segment: path, Index: idx, Offset: frameStart, Reason: rerr.Error()}
		}
		buf = payload
		idx++
	}
}

// Append writes one record and returns its index. Durability follows the
// sync policy; Sync forces it.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &l.s
	if s.closed {
		return 0, ErrClosed
	}
	if s.activeBytes >= s.o.SegmentBytes && s.activeBytes > 0 {
		if err := s.rotate(); err != nil {
			return 0, err
		}
	}
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.Checksum(payload, castagnoli))
	n += 4
	if _, err := s.active.Write(hdr[:n]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := s.active.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	idx := s.next
	s.next++
	s.activeBytes += int64(n + len(payload))
	s.unsynced++
	switch s.o.Sync {
	case SyncAlways:
		if err := s.sync(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if s.unsynced >= s.o.SyncEvery {
			if err := s.sync(); err != nil {
				return 0, err
			}
		}
	}
	return idx, nil
}

func (s *logState) sync() error {
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	s.unsynced = 0
	return nil
}

// Sync forces the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.s.closed {
		return ErrClosed
	}
	return l.s.sync()
}

// Rotate seals the active segment and starts a new one, applying the
// retention cap to sealed segments. Rotating an empty active segment is
// a no-op: the new segment would carry the same start index (and hence
// the same file name), so there is nothing to seal.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.s.closed {
		return ErrClosed
	}
	return l.s.rotate()
}

func (s *logState) rotate() error {
	if s.activeBytes == 0 {
		return nil
	}
	if err := s.sync(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	s.sealed = append(s.sealed, segment{start: s.activeStart, path: s.activePath})
	if s.o.Retain > 0 {
		for len(s.sealed) > s.o.Retain {
			if err := os.Remove(s.sealed[0].path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: retiring %s: %w", s.sealed[0].path, err)
			}
			s.sealed = s.sealed[1:]
		}
	}
	return s.openActive(s.next)
}

// Next returns the index the next appended record will get — i.e. the
// count of records ever appended (including retired ones).
func (l *Log) Next() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.next
}

// Begin returns the first replayable index (0 until retention retires a
// segment).
func (l *Log) Begin() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.s.sealed) > 0 {
		return l.s.sealed[0].start
	}
	return l.s.activeStart
}

// TrimBefore deletes sealed segments whose every record is below index,
// reclaiming space once a durable checkpoint covers them. The active
// segment is never trimmed.
func (l *Log) TrimBefore(index uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &l.s
	if s.closed {
		return ErrClosed
	}
	for len(s.sealed) > 0 {
		end := s.activeStart
		if len(s.sealed) > 1 {
			end = s.sealed[1].start
		}
		if end > index {
			break
		}
		if err := os.Remove(s.sealed[0].path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: trimming %s: %w", s.sealed[0].path, err)
		}
		s.sealed = s.sealed[1:]
	}
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &l.s
	if s.closed {
		return nil
	}
	s.closed = true
	if s.o.Sync != SyncNever {
		if err := s.active.Sync(); err != nil {
			s.active.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	return s.active.Close()
}

// Iterator replays records in index order from a snapshot of the log
// taken at Iter time: records appended afterwards are not visible.
type Iterator struct {
	segs  []segment // every segment as of the snapshot, active included
	limit uint64    // first index beyond the snapshot
	seg   int       // next segs entry to open
	f     *os.File
	c     *countingByteReader
	buf   []byte
	idx   uint64 // index of the next record Next returns
	skip  uint64 // records to discard after opening the next segment
	err   error
}

// Iter returns an iterator positioned at index from. An index below
// Begin() (retired by retention) is an error; an index at or past Next()
// yields an immediately-exhausted iterator.
func (l *Log) Iter(from uint64) (*Iterator, error) {
	l.mu.Lock()
	if l.s.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	// Appends land in the file before next moves, so bounding the
	// iterator by the snapshot limit guarantees every frame it reads is
	// fully written even while appends continue.
	segs := append([]segment(nil), l.s.sealed...)
	segs = append(segs, segment{start: l.s.activeStart, path: l.s.activePath})
	limit := l.s.next
	begin := l.s.activeStart
	if len(l.s.sealed) > 0 {
		begin = l.s.sealed[0].start
	}
	l.mu.Unlock()

	if from < begin {
		return nil, fmt.Errorf("wal: index %d already retired (log begins at %d)", from, begin)
	}
	it := &Iterator{segs: segs, limit: limit, idx: from}
	if from >= limit {
		it.seg = len(segs)
		return it, nil
	}
	// Locate the segment containing from: the last one starting at or
	// below it.
	it.seg = sort.Search(len(segs), func(i int) bool { return segs[i].start > from })
	it.seg--
	it.skip = from - segs[it.seg].start
	return it, nil
}

// Next returns the next record's index and payload. The payload is only
// valid until the following Next call. io.EOF signals the end of the
// snapshot; a CorruptError signals unreadable data.
func (it *Iterator) Next() (uint64, []byte, error) {
	if it.err != nil {
		return 0, nil, it.err
	}
	for {
		if it.idx >= it.limit {
			it.fail(io.EOF)
			return 0, nil, io.EOF
		}
		if it.f == nil {
			if it.seg >= len(it.segs) {
				it.fail(io.EOF)
				return 0, nil, io.EOF
			}
			f, err := os.Open(it.segs[it.seg].path)
			if err != nil {
				it.fail(fmt.Errorf("wal: %w", err))
				return 0, nil, it.err
			}
			it.f = f
			it.c = &countingByteReader{r: f}
		}
		frameStart := it.c.n
		payload, rerr := readFrame(it.c, it.buf)
		if rerr == io.EOF && it.c.n == frameStart {
			// Clean end of this segment: move on.
			it.f.Close()
			it.f = nil
			it.seg++
			continue
		}
		if rerr != nil {
			it.fail(&CorruptError{Segment: it.segs[it.seg].path, Index: it.idx, Offset: frameStart, Reason: rerr.Error()})
			return 0, nil, it.err
		}
		it.buf = payload
		if it.skip > 0 {
			it.skip--
			continue
		}
		idx := it.idx
		it.idx++
		return idx, payload, nil
	}
}

func (it *Iterator) fail(err error) {
	it.err = err
	if it.f != nil {
		it.f.Close()
		it.f = nil
	}
}

// Close releases the iterator's open file.
func (it *Iterator) Close() {
	if it.f != nil {
		it.f.Close()
		it.f = nil
	}
	if it.err == nil {
		it.err = ErrClosed
	}
}
