package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, l *Log, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if _, err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func drain(t *testing.T, l *Log, from uint64) []string {
	t.Helper()
	it, err := l.Iter(from)
	if err != nil {
		t.Fatalf("Iter(%d): %v", from, err)
	}
	defer it.Close()
	var out []string
	want := from
	for {
		idx, payload, err := it.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if idx != want {
			t.Fatalf("Next returned index %d, want %d", idx, want)
		}
		want++
		out = append(out, string(payload))
	}
}

func TestAppendIterRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := []string{"alpha", "", "gamma", "delta"}
	appendAll(t, l, want...)
	got := drain(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if tail := drain(t, l, 2); len(tail) != 2 || tail[0] != "gamma" {
		t.Fatalf("Iter(2) = %q, want [gamma delta]", tail)
	}
	if past := drain(t, l, 4); len(past) != 0 {
		t.Fatalf("Iter(next) returned %q, want empty", past)
	}
}

func TestReopenContinuesIndexing(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b", "c")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if n := l.Next(); n != 3 {
		t.Fatalf("Next after reopen = %d, want 3", n)
	}
	idx, err := l.Append([]byte("d"))
	if err != nil || idx != 3 {
		t.Fatalf("Append after reopen = (%d, %v), want (3, nil)", idx, err)
	}
	got := drain(t, l, 0)
	if len(got) != 4 || got[3] != "d" {
		t.Fatalf("replay after reopen = %q", got)
	}
}

func TestRotationAndMultiSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	l, err := Open(dir, Options{SegmentBytes: 1, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "one", "two", "three", "four")
	got := drain(t, l, 0)
	if len(got) != 4 || got[0] != "one" || got[3] != "four" {
		t.Fatalf("multi-segment replay = %q", got)
	}
	if got := drain(t, l, 3); len(got) != 1 || got[0] != "four" {
		t.Fatalf("Iter(3) across segments = %q", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 4 {
		t.Fatalf("expected >=4 segment files, found %d", len(segs))
	}
	l, err = Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if n := l.Next(); n != 4 {
		t.Fatalf("Next after multi-segment reopen = %d, want 4", n)
	}
}

func TestEmptySegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rotate with zero records: seals an empty segment, and the new
	// active segment reuses the same start index.
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate on empty log: %v", err)
	}
	appendAll(t, l, "after")
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil { // empty again, mid-log
		t.Fatal(err)
	}
	appendAll(t, l, "last")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with empty segments: %v", err)
	}
	defer l.Close()
	got := drain(t, l, 0)
	if len(got) != 2 || got[0] != "after" || got[1] != "last" {
		t.Fatalf("replay with empty segments = %q, want [after last]", got)
	}
}

func TestTornFinalRecordTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "keep-0", "keep-1", "doomed")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := onlySegment(t, dir)
	// Chop mid-payload of the final record, as a crash mid-write would.
	st, _ := os.Stat(seg)
	if err := os.Truncate(seg, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l.Close()
	if n := l.Next(); n != 2 {
		t.Fatalf("Next after torn-tail truncation = %d, want 2", n)
	}
	got := drain(t, l, 0)
	if len(got) != 2 || got[1] != "keep-1" {
		t.Fatalf("replay after torn tail = %q", got)
	}
	// The torn record's index is reused: the log stays dense.
	if idx, err := l.Append([]byte("rewritten")); err != nil || idx != 2 {
		t.Fatalf("Append after truncation = (%d, %v), want (2, nil)", idx, err)
	}
	if got := drain(t, l, 2); len(got) != 1 || got[0] != "rewritten" {
		t.Fatalf("replay of rewritten tail = %q", got)
	}
}

func TestTornFinalChecksumTreatedAsTorn(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "keep", "doomed")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := onlySegment(t, dir)
	// Flip the last payload byte: a complete frame with a bad checksum
	// at the very tail is indistinguishable from a torn write.
	flipByteAt(t, seg, -1)
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with corrupt final record: %v", err)
	}
	defer l.Close()
	if n := l.Next(); n != 1 {
		t.Fatalf("Next = %d, want 1 (corrupt tail dropped)", n)
	}
}

func TestCorruptMidSegmentRejectedWithOffset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "zero", "one", "two")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := onlySegment(t, dir)
	// Record 1 starts after record 0's frame: varint(4) + crc(4) + "zero".
	frame0 := int64(1 + 4 + len("zero"))
	// Flip a payload byte of record 1 (its payload starts 5 bytes in).
	flipByteAt(t, seg, frame0+5)
	_, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("reopen with mid-segment corruption: got %v, want CorruptError", err)
	}
	if ce.Index != 1 {
		t.Fatalf("CorruptError.Index = %d, want 1", ce.Index)
	}
	if ce.Offset != frame0 {
		t.Fatalf("CorruptError.Offset = %d, want %d", ce.Offset, frame0)
	}
	if ce.Segment != seg {
		t.Fatalf("CorruptError.Segment = %q, want %q", ce.Segment, seg)
	}
}

func TestIteratorReportsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "aaaa", "bbbb", "cccc")
	// Corrupt the middle (sealed) segment after open: Open never
	// re-scans sealed segments, so only the iterator sees it.
	flipByteAt(t, filepath.Join(dir, segName(1)), 6)
	it, err := l.Iter(0)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, _, err := it.Next(); err != nil {
		t.Fatalf("record 0 should be readable: %v", err)
	}
	_, _, err = it.Next()
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("iterating corrupt segment: got %v, want CorruptError at index 1", err)
	}
	l.Close()
}

func TestRetention(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1, Retain: 2, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 6; i++ {
		appendAll(t, l, fmt.Sprintf("rec-%d", i))
	}
	if b := l.Begin(); b == 0 {
		t.Fatal("Begin still 0: retention never fired")
	}
	if _, err := l.Iter(0); err == nil {
		t.Fatal("Iter(0) succeeded on a retired index")
	}
	got := drain(t, l, l.Begin())
	if len(got) == 0 || got[len(got)-1] != "rec-5" {
		t.Fatalf("replay from Begin = %q", got)
	}
}

func TestTrimBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, "a", "b", "c", "d")
	if err := l.TrimBefore(2); err != nil {
		t.Fatal(err)
	}
	if b := l.Begin(); b != 2 {
		t.Fatalf("Begin after TrimBefore(2) = %d, want 2", b)
	}
	got := drain(t, l, 2)
	if len(got) != 2 || got[0] != "c" {
		t.Fatalf("replay after trim = %q", got)
	}
	// Trimming never touches the active segment.
	if err := l.TrimBefore(1 << 20); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, l, l.Begin()); len(got) == 0 {
		t.Fatal("active segment was trimmed away")
	}
}

func TestIteratorSnapshotIsolation(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, "before")
	it, err := l.Iter(0)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	appendAll(t, l, "after")
	if _, _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := it.Next(); err != io.EOF {
		t.Fatalf("snapshot iterator saw post-snapshot append: err=%v", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = (%v, %v)", tc.in, got, err)
		}
	}
	// SyncAlways must keep every record durable: exercised for coverage
	// of the per-append fsync path.
	l, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "durable")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if _, err := l.Iter(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Iter after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

func TestAbsurdLengthIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "fine")
	l.Close()
	seg := onlySegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var huge [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(huge[:], MaxRecord+1)
	// A huge declared length followed by data: not a torn tail (the
	// frame is self-evidently invalid), and Open must refuse to guess.
	garbage := append(huge[:n], make([]byte, 64)...)
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("reopen with absurd length = %v, want CorruptError at 1", err)
	}
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return segs[0]
}

func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if off < 0 {
		st, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		off += st.Size()
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
