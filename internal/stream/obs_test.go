package stream

import (
	"testing"

	"repro/internal/obs"
)

// TestWithRegistryBindsRunMetrics runs a small pipeline with a registry
// attached and checks the scrape agrees with the run report: edge counters
// match, every task has executed/emitted series, and bolt tasks carry
// process/queue-wait histograms with one observation per batch.
func TestWithRegistryBindsRunMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tp := New("instrumented", 8, WithBatchSize(4), WithRegistry(reg))
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(100)} }, 1)
	sink := &collectBolt{}
	tp.AddBolt("dbl", func(int) Bolt { return doubleBolt{} }, 2).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(int) Bolt { return sink }, 1).
		SubscribeTo("dbl", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]obs.MetricSnapshot{}
	for _, ms := range reg.Snapshot() {
		byName[ms.Name] = ms
	}

	edgeTotal := func(name string) float64 {
		var sum float64
		for _, s := range byName[name].Samples {
			sum += s.Value
		}
		return sum
	}
	if got, want := edgeTotal("stream_edge_tuples_total"), float64(rep.TotalTuples()); got != want {
		t.Fatalf("edge tuples: scrape %v, report %v", got, want)
	}
	if got, want := edgeTotal("stream_edge_bytes_total"), float64(rep.TotalBytes()); got != want {
		t.Fatalf("edge bytes: scrape %v, report %v", got, want)
	}
	if edgeTotal("stream_edge_batches_total") == 0 {
		t.Fatal("no batches counted")
	}

	exec := byName["stream_task_executed_total"]
	if len(exec.Samples) != 4 { // src/0, dbl/0, dbl/1, sink/0
		t.Fatalf("executed series: %+v", exec.Samples)
	}
	var execSum float64
	for _, s := range exec.Samples {
		execSum += s.Value
	}
	if execSum != 300 { // 100 at src + 100 at dbl + 100 at sink
		t.Fatalf("executed total: %v", execSum)
	}

	proc := byName["stream_process_seconds"]
	if len(proc.Samples) != 3 { // bolt tasks only
		t.Fatalf("process series: %+v", proc.Samples)
	}
	var batchObs uint64
	for _, s := range proc.Samples {
		batchObs += s.Count
	}
	if got := edgeTotal("stream_edge_batches_total"); float64(batchObs) != got {
		t.Fatalf("process observations %d != shipped batches %v", batchObs, got)
	}
	wait := byName["stream_queue_wait_seconds"]
	var waitObs uint64
	for _, s := range wait.Samples {
		waitObs += s.Count
	}
	if waitObs != batchObs {
		t.Fatalf("queue-wait observations %d != process observations %d", waitObs, batchObs)
	}

	if _, ok := byName["stream_queue_depth_batches"]; !ok {
		t.Fatal("queue depth gauge missing")
	}
	if len(sink.got) != 100 {
		t.Fatalf("sink saw %d tuples", len(sink.got))
	}
}

// TestUninstrumentedRunRegistersNothing guards the zero-cost-off contract
// at the API level: no registry, no batch stamping, no observations.
func TestUninstrumentedRunRegistersNothing(t *testing.T) {
	tp := New("plain", 8)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(10)} }, 1)
	tp.AddBolt("sink", func(int) Bolt { return &collectBolt{} }, 1).
		SubscribeTo("src", Shuffle{})
	if _, err := tp.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWithJournalRecordsRunLifecycle checks that a journaled run brackets
// itself with run_start/run_end events naming the topology, and that an
// unjournaled run stays silent (nil-safe Append).
func TestWithJournalRecordsRunLifecycle(t *testing.T) {
	j := obs.NewJournal(8)
	tp := New("journaled", 8, WithJournal(j))
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(10)} }, 1)
	tp.AddBolt("sink", func(int) Bolt { return &collectBolt{} }, 1).
		SubscribeTo("src", Shuffle{})
	if _, err := tp.Run(); err != nil {
		t.Fatal(err)
	}
	evs := j.Recent(0)
	if len(evs) != 2 {
		t.Fatalf("journal has %d events, want run_start + run_end: %+v", len(evs), evs)
	}
	if evs[0].Type != "run_start" || evs[1].Type != "run_end" {
		t.Fatalf("event types = %s, %s", evs[0].Type, evs[1].Type)
	}
	if evs[0].Component != "stream/journaled" {
		t.Fatalf("component = %q", evs[0].Component)
	}
}
