package stream

import (
	"fmt"
	"sync"
	"testing"
)

// ptrTuple is a pre-boxed tuple for benchmarks: emitting it exercises only
// the transport, not interface boxing of the payload.
type ptrTuple struct{ v int }

func (*ptrTuple) SizeBytes() int { return 8 }

// BenchmarkEmitPath measures the steady-state cost of one EmitTo through a
// batched edge with a live consumer: batching plus the pooled batches keep
// it allocation-flat (~0 allocs/op).
func BenchmarkEmitPath(b *testing.B) {
	for _, bs := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch-%d", bs), func(b *testing.B) {
			pool := &sync.Pool{New: func() interface{} {
				return &batch{items: make([]Tuple, 0, bs)}
			}}
			dest := &taskRun{in: make(chan *batch, 64), pool: pool}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ba := range dest.in {
					for i := range ba.items {
						ba.items[i] = nil
					}
					ba.items = ba.items[:0]
					pool.Put(ba)
				}
			}()
			out := &edgeOut{
				stream:    DefaultStream,
				sel:       Shuffle{}.NewSelector(1),
				dests:     []*taskRun{dest},
				counters:  &EdgeCounters{},
				batchSize: bs,
				pending:   make([]*batch, 1),
			}
			em := &emitter{outs: []*edgeOut{out}, counters: &TaskCounters{}, pool: pool}
			tu := &ptrTuple{v: 7}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				em.Emit(tu)
			}
			em.flush()
			b.StopTimer()
			close(dest.in)
			wg.Wait()
		})
	}
}

// BenchmarkTransport pushes tuples through a three-stage pipeline at
// several batch sizes; per-tuple cost should drop sharply from batch 1 to
// 64 because channel synchronization is amortized across the batch.
func BenchmarkTransport(b *testing.B) {
	const n = 100000
	for _, bs := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("batch-%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tp := New("bench", 16, WithBatchSize(bs))
				tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(n)} }, 1)
				tp.AddBolt("mid", func(int) Bolt { return doubleBolt{} }, 4).
					SubscribeTo("src", Shuffle{})
				tp.AddBolt("sink", func(int) Bolt { return countBolt{c: new(int)} }, 1).
					SubscribeTo("mid", Shuffle{})
				if _, err := tp.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(n)
		})
	}
}

// countBolt counts tuples without retaining them.
type countBolt struct{ c *int }

// Execute implements Bolt.
func (c countBolt) Execute(Tuple, Emitter) { *c.c++ }
