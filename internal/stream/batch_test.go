package stream

import (
	"sync"
	"testing"
)

// taggedTuple encodes (producer, seq) so consumers can check per-producer
// order.
type taggedTuple struct {
	producer int
	seq      int
}

func (taggedTuple) SizeBytes() int { return 16 }

// taggedSpout emits n tuples tagged with its task index, in seq order.
type taggedSpout struct {
	task, n, i int
}

func (s *taggedSpout) Next() (Tuple, bool) {
	if s.i >= s.n {
		return nil, false
	}
	t := taggedTuple{producer: s.task, seq: s.i}
	s.i++
	return t, true
}

// orderBolt records the tuples it sees, per producer.
type orderBolt struct {
	mu  sync.Mutex
	got map[int][]int // guarded by mu
}

func (o *orderBolt) Execute(t Tuple, _ Emitter) {
	tt := t.(taggedTuple)
	o.mu.Lock()
	if o.got == nil {
		o.got = make(map[int][]int)
	}
	o.got[tt.producer] = append(o.got[tt.producer], tt.seq)
	o.mu.Unlock()
}

// TestBatchingPreservesPerProducerFIFO checks the transport ordering
// contract under batching: for every (producer, destination) pair, tuples
// arrive in emit order, at every batch size including ones that do not
// divide the stream length.
func TestBatchingPreservesPerProducerFIFO(t *testing.T) {
	const perProducer = 500
	for _, bs := range []int{1, 3, 64, 1000} {
		tp := New("fifo", 4, WithBatchSize(bs))
		tp.AddSpout("src", func(task int) Spout {
			return &taggedSpout{task: task, n: perProducer}
		}, 3)
		tp.AddBolt("sink", func(int) Bolt { return &orderBolt{} }, 2).
			SubscribeTo("src", Shuffle{})
		rep, err := tp.Run()
		if err != nil {
			t.Fatalf("batch %d: %v", bs, err)
		}
		total := 0
		for task := 0; task < 2; task++ {
			sink := rep.Bolts["sink"][task].(*orderBolt)
			for prod, seqs := range sink.got {
				total += len(seqs)
				for i := 1; i < len(seqs); i++ {
					if seqs[i] <= seqs[i-1] {
						t.Fatalf("batch %d: producer %d at sink %d out of order: %d after %d",
							bs, prod, task, seqs[i], seqs[i-1])
					}
				}
			}
		}
		if total != 3*perProducer {
			t.Fatalf("batch %d: delivered %d tuples, want %d", bs, total, 3*perProducer)
		}
	}
}

// TestFlushOnCompletionDeliversEveryTuple drives stream lengths around and
// below the batch size through a two-stage pipeline: the final flush, not
// batch fill, must deliver the tail, including bolt Flush output emitted
// after the input closed.
func TestFlushOnCompletionDeliversEveryTuple(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 1000} {
		tp := New("flushall", 4, WithBatchSize(64))
		tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(n)} }, 1)
		tp.AddBolt("sum", func(int) Bolt { return &sumFlushBolt{} }, 1).
			SubscribeTo("src", Shuffle{})
		tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
			SubscribeTo("sum", Shuffle{})
		rep, err := tp.Run()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sink := rep.Bolts["sink"][0].(*collectBolt)
		want := n * (n - 1) / 2
		if len(sink.got) != 1 || sink.got[0] != want {
			t.Fatalf("n=%d: flush output %v, want [%d]", n, sink.got, want)
		}
	}
}

// TestBatchCountersAndOccupancy checks the amortization accounting: tuple
// counts are unchanged by batching, batch counts reflect channel sends, and
// occupancy is tuples per send.
func TestBatchCountersAndOccupancy(t *testing.T) {
	const n, bs = 1000, 8
	tp := New("occupancy", 16, WithBatchSize(bs))
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(n)} }, 1)
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("src", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	ec := rep.Edges[EdgeKey{From: "src", To: "sink"}]
	if got := ec.Tuples.Load(); got != n {
		t.Fatalf("tuples: got %d want %d", got, n)
	}
	if got := rep.EdgeBatches("src", "sink"); got != n/bs {
		t.Fatalf("batches: got %d want %d", got, n/bs)
	}
	if occ := ec.Occupancy(); occ != float64(bs) {
		t.Fatalf("occupancy: got %v want %v", occ, float64(bs))
	}
}

// TestWithQueueCapOption checks the option overrides the positional
// argument and the topology still drains under a tiny queue.
func TestWithQueueCapOption(t *testing.T) {
	tp := New("qcap", 1024, WithQueueCap(1), WithBatchSize(4))
	if tp.queueCap != 1 {
		t.Fatalf("queueCap: got %d want 1", tp.queueCap)
	}
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(5000)} }, 1)
	tp.AddBolt("mid", func(int) Bolt { return doubleBolt{} }, 2).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("mid", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Bolts["sink"][0].(*collectBolt).got); got != 5000 {
		t.Fatalf("sink: %d", got)
	}
}

// TestLazySizeBytes checks the emit path only calls SizeBytes when a
// subscribed edge selects at least one destination: emits to unsubscribed
// streams must not pay for size accounting.
func TestLazySizeBytes(t *testing.T) {
	tp := New("lazysize", 4)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(10)} }, 1)
	tp.AddBolt("split", func(int) Bolt { return sizeCountingBolt{} }, 1).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(int) Bolt { return dropBolt{} }, 1).
		SubscribeTo("split", Shuffle{})
	if _, err := tp.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sizeCalls.Load(); got != 10 {
		t.Fatalf("SizeBytes calls: got %d want 10 (one per delivered tuple, none for dropped streams)", got)
	}
}

// dropBolt discards every tuple regardless of type.
type dropBolt struct{}

// Execute implements Bolt.
func (dropBolt) Execute(Tuple, Emitter) {}

// sizeProbeTuple counts SizeBytes invocations through a package-level
// counter (tests run sequentially per topology here).
type sizeProbeTuple int

// sizeCalls counts SizeBytes invocations across a run.
var sizeCalls atomicCounter

func (sizeProbeTuple) SizeBytes() int {
	sizeCalls.Add(1)
	return 8
}

// sizeCountingBolt forwards every tuple as a sizeProbeTuple on the default
// stream and also emits one copy to a stream nobody subscribes to.
type sizeCountingBolt struct{}

func (sizeCountingBolt) Execute(t Tuple, em Emitter) {
	v := sizeProbeTuple(int(t.(intTuple)))
	em.Emit(v)
	em.EmitTo("nobody-listens", v) // must not call SizeBytes
}

// atomicCounter is a tiny test helper around a mutex-guarded int (avoids
// importing sync/atomic in tests for one counter).
type atomicCounter struct {
	mu sync.Mutex
	n  int64 // guarded by mu
}

// Add increments the counter.
func (c *atomicCounter) Add(d int64) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Load reads the counter.
func (c *atomicCounter) Load() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
