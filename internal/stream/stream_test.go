package stream

import (
	"fmt"
	"sync"
	"testing"
)

// intTuple is a minimal test tuple.
type intTuple int

func (intTuple) SizeBytes() int { return 8 }

// sliceSpout replays a fixed slice.
type sliceSpout struct {
	vals []int
	i    int
}

func (s *sliceSpout) Next() (Tuple, bool) {
	if s.i >= len(s.vals) {
		return nil, false
	}
	v := s.vals[s.i]
	s.i++
	return intTuple(v), true
}

// collectBolt records everything it sees.
type collectBolt struct {
	mu   sync.Mutex
	got  []int
	task int
}

func (c *collectBolt) Execute(t Tuple, _ Emitter) {
	c.mu.Lock()
	c.got = append(c.got, int(t.(intTuple)))
	c.mu.Unlock()
}

// doubleBolt emits 2x its input.
type doubleBolt struct{}

func (doubleBolt) Execute(t Tuple, em Emitter) { em.Emit(intTuple(2 * int(t.(intTuple)))) }

// sumFlushBolt sums inputs and emits the total only at flush.
type sumFlushBolt struct{ sum int }

func (s *sumFlushBolt) Execute(t Tuple, _ Emitter) { s.sum += int(t.(intTuple)) }
func (s *sumFlushBolt) Flush(em Emitter)           { em.Emit(intTuple(s.sum)) }

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestLinearPipeline(t *testing.T) {
	tp := New("linear", 4)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(100)} }, 1)
	tp.AddBolt("double", func(int) Bolt { return doubleBolt{} }, 1).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("double", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	sink := rep.Bolts["sink"][0].(*collectBolt)
	if len(sink.got) != 100 {
		t.Fatalf("sink saw %d tuples", len(sink.got))
	}
	sum := 0
	for _, v := range sink.got {
		sum += v
	}
	want := 2 * (99 * 100 / 2)
	if sum != want {
		t.Fatalf("sum: got %d want %d", sum, want)
	}
}

func TestShuffleBalancesRoundRobin(t *testing.T) {
	tp := New("shuffle", 8)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(90)} }, 1)
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 3).
		SubscribeTo("src", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got := len(rep.Bolts["sink"][i].(*collectBolt).got)
		if got != 30 {
			t.Fatalf("task %d got %d tuples, want 30", i, got)
		}
	}
}

func TestFieldsGroupingIsConsistent(t *testing.T) {
	tp := New("fields", 8)
	vals := make([]int, 300)
	for i := range vals {
		vals[i] = i % 10 // ten keys
	}
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: vals} }, 1)
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 4).
		SubscribeTo("src", Fields{Hash: func(t Tuple) uint64 { return uint64(t.(intTuple)) }})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	owner := make(map[int]int)
	total := 0
	for task := 0; task < 4; task++ {
		for _, v := range rep.Bolts["sink"][task].(*collectBolt).got {
			if prev, ok := owner[v]; ok && prev != task {
				t.Fatalf("key %d seen on tasks %d and %d", v, prev, task)
			}
			owner[v] = task
			total++
		}
	}
	if total != 300 {
		t.Fatalf("total: %d", total)
	}
}

func TestBroadcastReplicates(t *testing.T) {
	tp := New("bcast", 8)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(50)} }, 1)
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 5).
		SubscribeTo("src", Broadcast{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got := len(rep.Bolts["sink"][i].(*collectBolt).got); got != 50 {
			t.Fatalf("task %d got %d tuples", i, got)
		}
	}
	if got := rep.EdgeTuples("src", "sink"); got != 250 {
		t.Fatalf("edge tuples: got %d want 250", got)
	}
	if got := rep.TotalBytes(); got != 250*8 {
		t.Fatalf("edge bytes: got %d want %d", got, 250*8)
	}
}

func TestPartitionFuncMulticast(t *testing.T) {
	// Even values go to tasks {0,1}, odd to {2}.
	pf := PartitionFunc(func(t Tuple, n int, buf []int) []int {
		if int(t.(intTuple))%2 == 0 {
			return append(buf, 0, 1)
		}
		return append(buf, 2)
	})
	tp := New("part", 8)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(10)} }, 1)
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 3).
		SubscribeTo("src", pf)
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	c0 := len(rep.Bolts["sink"][0].(*collectBolt).got)
	c1 := len(rep.Bolts["sink"][1].(*collectBolt).got)
	c2 := len(rep.Bolts["sink"][2].(*collectBolt).got)
	if c0 != 5 || c1 != 5 || c2 != 5 {
		t.Fatalf("distribution: %d %d %d", c0, c1, c2)
	}
	if got := rep.EdgeTuples("src", "sink"); got != 15 {
		t.Fatalf("edge tuples: got %d want 15", got)
	}
}

func TestFlusherRunsAfterDrain(t *testing.T) {
	tp := New("flush", 8)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(10)} }, 1)
	tp.AddBolt("sum", func(int) Bolt { return &sumFlushBolt{} }, 1).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("sum", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	sink := rep.Bolts["sink"][0].(*collectBolt)
	if len(sink.got) != 1 || sink.got[0] != 45 {
		t.Fatalf("flush output: %v", sink.got)
	}
}

func TestMultipleSpoutTasksAndFanIn(t *testing.T) {
	tp := New("fanin", 8)
	tp.AddSpout("src", func(task int) Spout {
		return &sliceSpout{vals: ints(20)}
	}, 4)
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("src", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Bolts["sink"][0].(*collectBolt).got); got != 80 {
		t.Fatalf("fan-in total: %d", got)
	}
}

func TestDiamondTopology(t *testing.T) {
	tp := New("diamond", 8)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(30)} }, 1)
	tp.AddBolt("left", func(int) Bolt { return doubleBolt{} }, 2).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("right", func(int) Bolt { return doubleBolt{} }, 2).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("left", Shuffle{}).
		SubscribeTo("right", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Bolts["sink"][0].(*collectBolt).got); got != 60 {
		t.Fatalf("diamond sink: %d tuples", got)
	}
}

func TestBackpressureTinyQueues(t *testing.T) {
	// Queue capacity 1 with 10k tuples: must complete without deadlock.
	tp := New("bp", 1)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(10000)} }, 1)
	tp.AddBolt("mid", func(int) Bolt { return doubleBolt{} }, 2).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("mid", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Bolts["sink"][0].(*collectBolt).got); got != 10000 {
		t.Fatalf("sink: %d", got)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Topology
	}{
		{"empty", func() *Topology { return New("x", 0) }},
		{"bolt without input", func() *Topology {
			tp := New("x", 0)
			tp.AddSpout("s", func(int) Spout { return &sliceSpout{} }, 1)
			tp.AddBolt("b", func(int) Bolt { return doubleBolt{} }, 1)
			return tp
		}},
		{"unknown upstream", func() *Topology {
			tp := New("x", 0)
			tp.AddSpout("s", func(int) Spout { return &sliceSpout{} }, 1)
			tp.AddBolt("b", func(int) Bolt { return doubleBolt{} }, 1).
				SubscribeTo("ghost", Shuffle{})
			return tp
		}},
		{"cycle", func() *Topology {
			tp := New("x", 0)
			tp.AddSpout("s", func(int) Spout { return &sliceSpout{} }, 1)
			tp.AddBolt("a", func(int) Bolt { return doubleBolt{} }, 1).
				SubscribeTo("s", Shuffle{}).SubscribeTo("b", Shuffle{})
			tp.AddBolt("b", func(int) Bolt { return doubleBolt{} }, 1).
				SubscribeTo("a", Shuffle{})
			return tp
		}},
		{"duplicate name", func() *Topology {
			tp := New("x", 0)
			tp.AddSpout("s", func(int) Spout { return &sliceSpout{} }, 1)
			tp.AddSpout("s", func(int) Spout { return &sliceSpout{} }, 1)
			return tp
		}},
		{"zero parallelism", func() *Topology {
			tp := New("x", 0)
			tp.AddSpout("s", func(int) Spout { return &sliceSpout{} }, 0)
			return tp
		}},
		{"spout subscribing", func() *Topology {
			tp := New("x", 0)
			tp.AddSpout("a", func(int) Spout { return &sliceSpout{} }, 1)
			tp.AddSpout("s", func(int) Spout { return &sliceSpout{} }, 1).
				SubscribeTo("a", Shuffle{})
			return tp
		}},
	}
	for _, c := range cases {
		if _, err := c.build().Run(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestTaskCounters(t *testing.T) {
	tp := New("counters", 8)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(25)} }, 1)
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("src", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Tasks["src"][0].Executed.Load(); got != 25 {
		t.Fatalf("spout executed: %d", got)
	}
	if got := rep.Tasks["src"][0].Emitted.Load(); got != 25 {
		t.Fatalf("spout emitted: %d", got)
	}
	if got := rep.Tasks["sink"][0].Executed.Load(); got != 25 {
		t.Fatalf("sink executed: %d", got)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
	if rep.TotalTuples() != 25 {
		t.Fatalf("total tuples: %d", rep.TotalTuples())
	}
}

func TestLargeFanOutStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	tp := New("stress", 64)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(50000)} }, 2)
	tp.AddBolt("work", func(int) Bolt { return doubleBolt{} }, 16).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("work", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Bolts["sink"][0].(*collectBolt).got); got != 100000 {
		t.Fatalf("sink: %d", got)
	}
}

func TestGroupingSelectorsDoNotShareState(t *testing.T) {
	// Two producers with Shuffle each start at task 0; each must keep an
	// independent cursor.
	g := Shuffle{}
	s1 := g.NewSelector(3)
	s2 := g.NewSelector(3)
	var buf []int
	buf = s1.Select(intTuple(0), buf[:0])
	first1 := buf[0]
	buf = s1.Select(intTuple(0), buf[:0])
	second1 := buf[0]
	buf = s2.Select(intTuple(0), buf[:0])
	first2 := buf[0]
	if first1 != 0 || second1 != 1 || first2 != 0 {
		t.Fatalf("cursors shared: %d %d %d", first1, second1, first2)
	}
}

func ExampleTopology() {
	tp := New("example", 16)
	tp.AddSpout("numbers", func(int) Spout { return &sliceSpout{vals: []int{1, 2, 3}} }, 1)
	tp.AddBolt("double", func(int) Bolt { return doubleBolt{} }, 1).
		SubscribeTo("numbers", Shuffle{})
	tp.AddBolt("sum", func(int) Bolt { return &sumFlushBolt{} }, 1).
		SubscribeTo("double", Shuffle{})
	rep, _ := tp.Run()
	fmt.Println(rep.Bolts["sum"][0].(*sumFlushBolt).sum)
	// Output: 12
}

// panicBolt explodes on a specific value.
type panicBolt struct{ on int }

func (p panicBolt) Execute(t Tuple, em Emitter) {
	if int(t.(intTuple)) == p.on {
		panic("boom")
	}
	em.Emit(t)
}

func TestBoltPanicIsIsolated(t *testing.T) {
	tp := New("panic", 4)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(100)} }, 1)
	tp.AddBolt("mid", func(int) Bolt { return panicBolt{on: 10} }, 1).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("mid", Shuffle{})
	rep, err := tp.Run()
	if err == nil {
		t.Fatal("panic not reported")
	}
	if rep == nil {
		t.Fatal("report missing despite partial run")
	}
	// The process survived and the topology drained (no deadlock).
}

func TestSpoutPanicIsIsolated(t *testing.T) {
	tp := New("spanic", 4)
	tp.AddSpout("src", func(int) Spout { return panicSpout{} }, 1)
	tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("src", Shuffle{})
	if _, err := tp.Run(); err == nil {
		t.Fatal("spout panic not reported")
	}
}

type panicSpout struct{}

func (panicSpout) Next() (Tuple, bool) { panic("spout boom") }

// splitBolt routes evens to the default stream, odds to "odds".
type splitBolt struct{}

func (splitBolt) Execute(t Tuple, em Emitter) {
	if int(t.(intTuple))%2 == 0 {
		em.Emit(t)
	} else {
		em.EmitTo("odds", t)
	}
}

func TestNamedStreams(t *testing.T) {
	tp := New("streams", 8)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(20)} }, 1)
	tp.AddBolt("split", func(int) Bolt { return splitBolt{} }, 1).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("evens", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("split", Shuffle{})
	tp.AddBolt("odds", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeToStream("split", "odds", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	evens := rep.Bolts["evens"][0].(*collectBolt).got
	odds := rep.Bolts["odds"][0].(*collectBolt).got
	if len(evens) != 10 || len(odds) != 10 {
		t.Fatalf("split: %d evens %d odds", len(evens), len(odds))
	}
	for _, v := range evens {
		if v%2 != 0 {
			t.Fatalf("odd value %d on default stream", v)
		}
	}
	for _, v := range odds {
		if v%2 == 0 {
			t.Fatalf("even value %d on odds stream", v)
		}
	}
}

func TestEmitToUnsubscribedStreamDrops(t *testing.T) {
	tp := New("drop", 8)
	tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(10)} }, 1)
	tp.AddBolt("split", func(int) Bolt { return splitBolt{} }, 1).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("evens", func(task int) Bolt { return &collectBolt{task: task} }, 1).
		SubscribeTo("split", Shuffle{})
	// Nobody subscribes to "odds": the topology must still drain.
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Bolts["evens"][0].(*collectBolt).got); got != 5 {
		t.Fatalf("evens: %d", got)
	}
}

// TestRandomTopologyConservation builds random layered DAGs and checks
// tuple conservation: every tuple a producer sends is executed exactly once
// downstream (per delivered copy), for every grouping type.
func TestRandomTopologyConservation(t *testing.T) {
	groupings := []Grouping{Shuffle{}, Broadcast{},
		Fields{Hash: func(t Tuple) uint64 { return uint64(t.(intTuple)) }}}
	for seed := 0; seed < 10; seed++ {
		tp := New("rand", 16)
		n := 200 + seed*37
		tp.AddSpout("src", func(int) Spout { return &sliceSpout{vals: ints(n)} }, 1+seed%3)
		layers := 1 + seed%3
		prev := "src"
		for l := 0; l < layers; l++ {
			name := "layer" + itoa(l)
			tp.AddBolt(name, func(int) Bolt { return doubleBolt{} }, 1+(seed+l)%4).
				SubscribeTo(prev, groupings[(seed+l)%len(groupings)])
			prev = name
		}
		tp.AddBolt("sink", func(task int) Bolt { return &collectBolt{task: task} }, 1).
			SubscribeTo(prev, Shuffle{})
		rep, err := tp.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Conservation: sink executed == tuples on the last edge; and every
		// edge's tuple count equals the downstream component's total
		// executed count.
		for key, ec := range rep.Edges {
			var executed uint64
			for _, tc := range rep.Tasks[key.To] {
				executed += tc.Executed.Load()
			}
			// A component may have several input edges; sum them.
			var inbound uint64
			for k2, e2 := range rep.Edges {
				if k2.To == key.To {
					inbound += e2.Tuples.Load()
				}
			}
			if executed != inbound {
				t.Fatalf("seed %d: %s executed %d != inbound %d", seed, key.To, executed, inbound)
			}
			_ = ec
		}
	}
}

func itoa(n int) string {
	return fmt.Sprintf("%d", n)
}
