// Observability wiring for the stream engine. WithRegistry attaches an
// obs.Registry to a topology; Run then binds scrape-time callbacks for
// every edge and task and switches on per-batch timing. The instrumented
// costs stay off the per-tuple path: edge counters were already atomic,
// queue depth and batch occupancy are read at scrape time, and latency
// observation happens twice per transport batch (batch age at dequeue,
// batch processing time), not per tuple. With no registry attached the
// emit and dispatch paths are byte-for-byte the uninstrumented ones.
package stream

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// WithRegistry binds the run's counters, queue gauges, and latency
// histograms to reg. Callbacks registered here replace those of any earlier
// run, so a long-lived registry always reports the most recent topology.
func WithRegistry(reg *obs.Registry) Option {
	return func(tp *Topology) { tp.reg = reg }
}

// WithJournal routes run lifecycle events (run_start, run_end with task
// and error counts) onto j. Nil keeps the run silent; events cost nothing
// on the per-tuple path either way.
func WithJournal(j *obs.Journal) Option {
	return func(tp *Topology) { tp.journal = j }
}

// taskObs holds the per-task latency histograms an instrumented run
// maintains. Histograms are SyncLatency because scrapes snapshot them while
// the executor goroutine observes.
type taskObs struct {
	process metrics.SyncLatency
	wait    metrics.SyncLatency
}

// registerMetrics binds every edge counter and task gauge/histogram of this
// run to the topology's registry and enables batch stamping so consumers
// can measure batch age at dequeue.
func (tp *Topology) registerMetrics(report *Report, tasks map[string][]*taskRun, adm *admission) {
	reg := tp.reg
	if adm != nil {
		reg.CounterFunc("admission_shed_total",
			"Tuples dropped by the admission policy under full queues.",
			func() float64 { return float64(adm.shedTuples.Load()) })
		reg.CounterFunc("admission_shed_batches_total",
			"Transport batches dropped by the admission policy.",
			func() float64 { return float64(adm.shedBatches.Load()) })
		reg.GaugeFunc("stream_pressure_links",
			"Producer-to-destination links currently above the pressure high watermark.",
			func() float64 { return float64(adm.pressured.Load()) })
		reg.CounterFunc("stream_pressure_transitions_total",
			"Pressure watermark transitions (engage plus release) across all links.",
			func() float64 { return float64(adm.transitions.Load()) })
	}
	tuples := reg.CounterVec("stream_edge_tuples_total",
		"Tuples shipped over a topology edge.", "edge")
	bytes := reg.CounterVec("stream_edge_bytes_total",
		"Approximate wire bytes shipped over a topology edge.", "edge")
	batches := reg.CounterVec("stream_edge_batches_total",
		"Transport batches (channel sends) shipped over a topology edge.", "edge")
	occ := reg.GaugeVec("stream_edge_batch_occupancy",
		"Mean tuples per shipped batch on a topology edge.", "edge")
	for key, ec := range report.Edges {
		ec := ec
		label := key.From + "->" + key.To
		tuples.SetFunc(label, func() float64 { return float64(ec.Tuples.Load()) }) // obscheck: bounded — one series per edge/task, fixed at wiring time
		bytes.SetFunc(label, func() float64 { return float64(ec.Bytes.Load()) }) // obscheck: bounded — one series per edge/task, fixed at wiring time
		batches.SetFunc(label, func() float64 { return float64(ec.Batches.Load()) }) // obscheck: bounded — one series per edge/task, fixed at wiring time
		occ.SetFunc(label, ec.Occupancy) // obscheck: bounded — one series per edge/task, fixed at wiring time
	}

	executed := reg.CounterVec("stream_task_executed_total",
		"Tuples executed by a task instance.", "task")
	emitted := reg.CounterVec("stream_task_emitted_total",
		"Tuples emitted by a task instance.", "task")
	depth := reg.GaugeVec("stream_queue_depth_batches",
		"Input queue depth of a task instance, in transport batches.", "task")
	procH := reg.HistogramVec("stream_process_seconds",
		"Per-batch processing time of a task instance.", "task")
	waitH := reg.HistogramVec("stream_queue_wait_seconds",
		"Age of a transport batch at dequeue: fill time plus queue wait.", "task")
	for name, runs := range tasks {
		for _, tr := range runs {
			tr := tr
			label := fmt.Sprintf("%s/%d", name, tr.idx)
			executed.SetFunc(label, func() float64 { return float64(tr.counters.Executed.Load()) }) // obscheck: bounded — one series per edge/task, fixed at wiring time
			emitted.SetFunc(label, func() float64 { return float64(tr.counters.Emitted.Load()) }) // obscheck: bounded — one series per edge/task, fixed at wiring time
			if tr.in != nil {
				tr.obs = &taskObs{}
				depth.SetFunc(label, func() float64 { return float64(len(tr.in)) }) // obscheck: bounded — one series per edge/task, fixed at wiring time
				procH.SetFunc(label, tr.obs.process.Snapshot) // obscheck: bounded — one series per edge/task, fixed at wiring time
				waitH.SetFunc(label, tr.obs.wait.Snapshot) // obscheck: bounded — one series per edge/task, fixed at wiring time
			}
		}
	}

	// Stamp batches at creation so consumers can observe their age.
	for _, runs := range tasks {
		for _, tr := range runs {
			for _, out := range tr.outs {
				out.stamp = true
			}
		}
	}
}
