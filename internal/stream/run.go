package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// batch is one transport unit: a reusable slice of tuples shipped over an
// edge channel in a single send. Batching amortizes channel synchronization
// (one send/receive + one potential goroutine wakeup per BatchSize tuples
// instead of per tuple), the same amortization the join applies at the
// algorithm level via bundles and batch verification. Batches are recycled
// through a per-run sync.Pool, so the steady-state emit path allocates
// nothing.
type batch struct {
	items []Tuple
	// enq is the batch's creation time, stamped only on instrumented runs
	// (edgeOut.stamp) so the consumer can observe the batch's age at
	// dequeue. Zero on uninstrumented runs.
	enq time.Time
}

// taskRun is one executor: a task instance with its input queue and output
// routing tables.
type taskRun struct {
	comp *component
	idx  int

	in        chan *batch
	producers atomic.Int64 // upstream tasks still running; close(in) at zero

	outs []*edgeOut
	pool *sync.Pool // shared batch pool for the whole run

	counters *TaskCounters
	bolt     Bolt
	spout    Spout
	obs      *taskObs // nil unless the run has a registry attached
}

// edgeOut is one producer task's view of a downstream subscription. It owns
// one pending (accumulating) batch per destination task; the owning producer
// goroutine is the only writer, so no locking is needed. Per-(producer,
// destination) FIFO order is preserved: tuples append to the pending batch
// in emit order and batches ship in fill order over a FIFO channel.
type edgeOut struct {
	stream    string
	sel       Selector
	dests     []*taskRun
	counters  *EdgeCounters
	batchSize int
	stamp     bool     // instrumented run: stamp batch creation time
	pending   []*batch // one accumulating batch per destination, nil when empty
	// Admission control (nil adm = plain blocking sends, the zero-cost-off
	// default). pressure and sampled are producer-local, no locking.
	adm      *admission
	pressure []bool // per-destination watermark state
	sampled  uint64 // shed-sampled: full-queue batches seen
	spare    *batch // last shed batch, emptied, kept for reuse
}

// send appends t to destination d's pending batch, shipping the batch when
// it reaches batchSize.
//
// hotpath: zero-alloc — one call per (tuple, destination); batches come
// from the pool and items grow by amortized self-append only.
func (o *edgeOut) send(d int, t Tuple, pool *sync.Pool) {
	b := o.pending[d]
	if b == nil {
		if b = o.spare; b != nil {
			o.spare = nil
		} else {
			b = pool.Get().(*batch)
		}
		if o.stamp {
			b.enq = time.Now()
		}
		o.pending[d] = b
	}
	b.items = append(b.items, t)
	if len(b.items) >= o.batchSize {
		o.pending[d] = nil
		o.counters.Batches.Add(1)
		if o.adm == nil {
			o.dests[d].in <- b
		} else {
			o.deliver(d, b)
		}
	}
}

// flush ships every non-empty pending batch. Call when the producer task
// finishes so no tuple is stranded in an accumulation buffer. Flushes
// bypass shedding (they ship the tail of the stream, not overload) but
// still block, so they stay lossless.
func (o *edgeOut) flush() {
	for d, b := range o.pending {
		if b == nil {
			continue
		}
		o.pending[d] = nil
		if len(b.items) > 0 {
			o.counters.Batches.Add(1)
			o.dests[d].in <- b
		}
	}
}

// emitter implements Emitter for one producer task.
type emitter struct {
	outs     []*edgeOut
	counters *TaskCounters
	buf      []int
	pool     *sync.Pool
}

// Emit routes t on the default stream.
//
// hotpath: zero-alloc — the per-tuple fast path of every task.
func (e *emitter) Emit(t Tuple) { e.EmitTo(DefaultStream, t) }

// EmitTo routes t on the named stream to every subscribed edge.
//
// hotpath: zero-alloc — selection reuses e.buf, batching reuses pooled
// batches; BenchmarkEmitPath pins the dynamic side of this contract.
func (e *emitter) EmitTo(stream string, t Tuple) {
	e.counters.Emitted.Add(1)
	// SizeBytes is computed lazily: only once a subscribed edge selects at
	// least one destination. Emits to unsubscribed streams and selections
	// that route nowhere skip both the size call and all counter updates.
	size := -1
	for _, out := range e.outs {
		if out.stream != stream {
			continue
		}
		e.buf = out.sel.Select(t, e.buf[:0])
		n := len(e.buf)
		if n == 0 {
			continue
		}
		if size < 0 {
			size = t.SizeBytes()
		}
		out.counters.Tuples.Add(uint64(n))
		out.counters.Bytes.Add(uint64(size) * uint64(n))
		for _, d := range e.buf {
			out.send(d, t, e.pool)
		}
	}
}

// flush ships every pending batch on every edge of this producer.
func (e *emitter) flush() {
	for _, out := range e.outs {
		out.flush()
	}
}

// done signals that one upstream producer of t finished; the last producer
// closes the input queue.
func (t *taskRun) done() {
	if t.producers.Add(-1) == 0 {
		close(t.in)
	}
}

// Run validates the topology, executes it to completion, and returns the
// traffic and work report. Spouts drive termination: when every spout task
// is exhausted, completion propagates down the DAG; Run returns when the
// last task finishes.
func (tp *Topology) Run() (*Report, error) {
	if err := tp.validate(); err != nil {
		return nil, err
	}

	report := &Report{
		Topology: tp.name,
		Edges:    make(map[EdgeKey]*EdgeCounters),
		Tasks:    make(map[string][]*TaskCounters),
		Bolts:    make(map[string][]Bolt),
	}

	var adm *admission
	if tp.adm != nil {
		adm = newAdmission(*tp.adm, tp.queueCap)
		if tp.journal != nil {
			journal, name := tp.journal, tp.name
			adm.onTransition = func(dest *taskRun, engaged bool) {
				state := "released"
				if engaged {
					state = "engaged"
				}
				journal.Append("pressure", "stream/"+name,
					fmt.Sprintf("%s on %s[%d] queue", state, dest.comp.name, dest.idx))
			}
		}
	}

	// One batch pool per run: batches have uniform capacity, so any task
	// can recycle any producer's batch.
	batchSize := tp.batchSize
	pool := &sync.Pool{New: func() interface{} {
		return &batch{items: make([]Tuple, 0, batchSize)}
	}}

	// Materialize tasks.
	tasks := make(map[string][]*taskRun)
	for _, name := range tp.order {
		c := tp.comps[name]
		runs := make([]*taskRun, c.par)
		counters := make([]*TaskCounters, c.par)
		for i := 0; i < c.par; i++ {
			tr := &taskRun{comp: c, idx: i, counters: &TaskCounters{}, pool: pool}
			if c.boltF != nil {
				tr.in = make(chan *batch, tp.queueCap)
				tr.bolt = c.boltF(i)
				report.Bolts[name] = append(report.Bolts[name], tr.bolt)
			} else {
				tr.spout = c.spoutF(i)
			}
			runs[i] = tr
			counters[i] = tr.counters
		}
		tasks[name] = runs
		report.Tasks[name] = counters
	}

	// Wire edges: for each consumer input, every producer task gets an
	// edgeOut with its own selector; consumers count their producers.
	for _, name := range tp.order {
		c := tp.comps[name]
		for _, in := range c.inputs {
			key := EdgeKey{From: in.from, To: name}
			ec, ok := report.Edges[key]
			if !ok {
				ec = &EdgeCounters{}
				report.Edges[key] = ec
			}
			dests := tasks[name]
			streamName := in.stream
			if streamName == "" {
				streamName = DefaultStream
			}
			for _, prod := range tasks[in.from] {
				out := &edgeOut{
					stream:    streamName,
					sel:       in.grouping.NewSelector(len(dests)),
					dests:     dests,
					counters:  ec,
					batchSize: batchSize,
					pending:   make([]*batch, len(dests)),
				}
				if adm != nil {
					out.adm = adm
					out.pressure = make([]bool, len(dests))
				}
				prod.outs = append(prod.outs, out)
			}
			for _, d := range dests {
				d.producers.Add(int64(len(tasks[in.from])))
			}
		}
	}

	if tp.reg != nil {
		tp.registerMetrics(report, tasks, adm)
	}
	taskCount := 0
	for _, name := range tp.order {
		taskCount += len(tasks[name])
	}
	tp.journal.Append("run_start", "stream/"+tp.name,
		fmt.Sprintf("%d components, %d tasks", len(tp.order), taskCount))

	start := time.Now()
	var (
		wg  sync.WaitGroup
		rec panicRecorder
	)
	for _, name := range tp.order {
		for _, tr := range tasks[name] {
			wg.Add(1)
			go func(tr *taskRun) {
				defer wg.Done()
				if err := tr.run(); err != nil {
					rec.record(err)
				}
			}(tr)
		}
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	if adm != nil {
		report.Admission = adm.stats()
		if report.Admission.ShedTuples > 0 {
			tp.journal.Append("admission", "stream/"+tp.name,
				fmt.Sprintf("shed %d tuples in %d batches (%d pressure transitions)",
					report.Admission.ShedTuples, report.Admission.ShedBatches,
					report.Admission.Transitions))
		}
	}
	if err := rec.err(); err != nil {
		tp.journal.Append("run_end", "stream/"+tp.name, "failed: "+err.Error())
		return report, err
	}
	tp.journal.Append("run_end", "stream/"+tp.name,
		fmt.Sprintf("clean after %v", report.Elapsed.Round(time.Millisecond)))
	return report, nil
}

// panicRecorder collects task-panic errors from concurrently failing
// executors.
type panicRecorder struct {
	mu   sync.Mutex
	errs []error // guarded by mu
}

// record stores one task failure.
func (p *panicRecorder) record(e error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.errs = append(p.errs, e)
}

// err summarizes the recorded failures (nil when none). Safe to call while
// tasks are still running, though callers normally wait first.
func (p *panicRecorder) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.errs) == 0 {
		return nil
	}
	return fmt.Errorf("stream: %d task(s) panicked; first: %w", len(p.errs), p.errs[0])
}

// run executes the task loop, converting panics in user code (spouts and
// bolts) into errors so one faulty operator cannot crash the host process.
// Downstream completion still propagates, so the topology drains instead
// of deadlocking. On a panic, tuples still sitting in pending batches are
// dropped — the run already reports an error.
func (t *taskRun) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task %s[%d] panicked: %v", t.comp.name, t.idx, r)
		}
		// Always notify downstream — also on panic, or consumers wait
		// forever. Drain our input so upstream producers can finish.
		if t.in != nil {
			go func() {
				for range t.in {
				}
			}()
		}
		for _, out := range t.outs {
			seen := make(map[*taskRun]bool, len(out.dests))
			for _, d := range out.dests {
				if !seen[d] {
					seen[d] = true
					d.done()
				}
			}
		}
	}()
	t.loop()
	return nil
}

// loop is the executor body: spouts pull, bolts drain their queue; both
// flush pending batches on completion (so the explicit flush, not batch
// fill, is what guarantees delivery of the tail) and then notify
// downstream.
func (t *taskRun) loop() {
	em := &emitter{outs: t.outs, counters: t.counters, pool: t.pool}
	if t.spout != nil {
		for {
			tu, ok := t.spout.Next()
			if !ok {
				break
			}
			t.counters.Executed.Add(1)
			em.Emit(tu)
		}
	} else {
		bb, batched := t.bolt.(BatchBolt)
		for b := range t.in {
			var pstart time.Time
			if t.obs != nil {
				if !b.enq.IsZero() {
					t.obs.wait.Observe(time.Since(b.enq))
					b.enq = time.Time{}
				}
				pstart = time.Now()
			}
			if batched {
				t.counters.Executed.Add(uint64(len(b.items)))
				bb.ExecuteBatch(b.items, em)
				for i := range b.items {
					b.items[i] = nil // drop refs so pooled batches don't pin tuples
				}
			} else {
				for i, tu := range b.items {
					b.items[i] = nil // drop the ref so pooled batches don't pin tuples
					t.counters.Executed.Add(1)
					t.bolt.Execute(tu, em)
				}
			}
			b.items = b.items[:0]
			t.pool.Put(b)
			if t.obs != nil {
				t.obs.process.Observe(time.Since(pstart))
			}
		}
		if f, ok := t.bolt.(Flusher); ok {
			f.Flush(em)
		}
	}
	em.flush()
}
