package stream

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// slowBolt consumes at a fixed per-tuple delay — the throttled consumer
// of the overload scenarios — and counts exactly what it saw.
type slowBolt struct {
	delay time.Duration
	seen  *atomic.Uint64
}

func (b *slowBolt) Execute(Tuple, Emitter) {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.seen.Add(1)
}

func TestParseAdmissionPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want AdmissionPolicy
		ok   bool
	}{
		{"block", AdmitBlock, true},
		{"", AdmitBlock, true},
		{"shed-oldest", AdmitShedOldest, true},
		{"shed-sampled", AdmitShedSampled, true},
		{"drop", 0, false},
	} {
		got, err := ParseAdmissionPolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseAdmissionPolicy(%q) = (%v, %v)", tc.in, got, err)
		}
		if tc.ok && tc.in != "" && got.String() != tc.in {
			t.Errorf("String() round-trip: %q -> %q", tc.in, got.String())
		}
	}
}

// runOverload drives a fast producer into a consumer throttled to a small
// fraction of the producer's rate through a tiny queue, under the given
// policy, and returns the run report plus the consumed-tuple count.
func runOverload(t *testing.T, policy AdmissionPolicy, n int, j *obs.Journal, reg *obs.Registry) (*Report, uint64) {
	t.Helper()
	var seen atomic.Uint64
	opts := []Option{
		WithBatchSize(8),
		WithQueueCap(4),
		WithAdmission(AdmissionConfig{Policy: policy, SampleN: 2}),
	}
	if j != nil {
		opts = append(opts, WithJournal(j))
	}
	if reg != nil {
		opts = append(opts, WithRegistry(reg))
	}
	tp := New("overload", 0, opts...)
	tp.AddSpout("src", func(task int) Spout {
		return &taggedSpout{task: task, n: n}
	}, 1)
	// ~50µs per tuple vs a spout that produces as fast as it can loop:
	// the consumer runs well below 10% of the producer's rate, so the
	// 4-batch queue saturates almost immediately.
	tp.AddBolt("sink", func(int) Bolt {
		return &slowBolt{delay: 50 * time.Microsecond, seen: &seen}
	}, 1).SubscribeTo("src", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep, seen.Load()
}

// TestOverloadShedPoliciesAccountExactly is the overload acceptance test:
// a consumer throttled far below the producer's rate, a bounded queue,
// and the invariant produced = consumed + shed holding to the tuple.
func TestOverloadShedPoliciesAccountExactly(t *testing.T) {
	const n = 4000
	for _, policy := range []AdmissionPolicy{AdmitShedOldest, AdmitShedSampled} {
		rep, consumed := runOverload(t, policy, n, nil, nil)
		produced := rep.EdgeTuples("src", "sink")
		if produced != n {
			t.Fatalf("%v: produced %d tuples, want %d", policy, produced, n)
		}
		shed := rep.Admission.ShedTuples
		if shed == 0 {
			t.Fatalf("%v: overload never shed (consumed %d)", policy, consumed)
		}
		if consumed+shed != produced {
			t.Fatalf("%v: accounting broken: consumed %d + shed %d != produced %d",
				policy, consumed, shed, produced)
		}
		if rep.Tasks["sink"][0].Executed.Load() != consumed {
			t.Fatalf("%v: executed counter %d != consumed %d",
				policy, rep.Tasks["sink"][0].Executed.Load(), consumed)
		}
	}
}

// TestOverloadBlockPolicyIsLossless pins the default: admission enabled
// with the block policy engages pressure but never drops a tuple.
func TestOverloadBlockPolicyIsLossless(t *testing.T) {
	const n = 1500
	rep, consumed := runOverload(t, AdmitBlock, n, nil, nil)
	if consumed != n {
		t.Fatalf("block policy lost tuples: consumed %d of %d", consumed, n)
	}
	if rep.Admission.ShedTuples != 0 || rep.Admission.ShedBatches != 0 {
		t.Fatalf("block policy shed: %+v", rep.Admission)
	}
	if rep.Admission.Transitions == 0 {
		t.Fatal("pressure never engaged under a saturated queue")
	}
}

// TestAdmissionJournalAndMetrics checks the observability contract:
// pressure transitions and the shed summary land in the journal, and the
// registry exposes the exact shed count.
func TestAdmissionJournalAndMetrics(t *testing.T) {
	j := obs.NewJournal(256)
	reg := obs.NewRegistry()
	rep, consumed := runOverload(t, AdmitShedOldest, 4000, j, reg)
	shed := rep.Admission.ShedTuples
	if shed == 0 {
		t.Fatal("no shedding to observe")
	}
	if consumed+shed != rep.EdgeTuples("src", "sink") {
		t.Fatalf("accounting: %d + %d != %d", consumed, shed, rep.EdgeTuples("src", "sink"))
	}

	var engaged, summary bool
	for _, ev := range j.Recent(256) {
		switch ev.Type {
		case "pressure":
			if strings.Contains(ev.Msg, "engaged") {
				engaged = true
			}
		case "admission":
			summary = true
		}
	}
	if !engaged {
		t.Fatal("no pressure-engaged journal event")
	}
	if !summary {
		t.Fatal("no admission shed summary journal event")
	}

	found := false
	for _, fam := range reg.Gather() {
		if fam.Desc.Name != "admission_shed_total" {
			continue
		}
		found = true
		if len(fam.Samples) != 1 || uint64(fam.Samples[0].Value) != shed {
			t.Fatalf("admission_shed_total = %+v, want %d", fam.Samples, shed)
		}
	}
	if !found {
		t.Fatal("admission_shed_total not exported")
	}
}

// TestAdmissionOffLeavesSendsUntouched pins the zero-cost-off contract:
// no WithAdmission option, no admission state on any edge.
func TestAdmissionOffLeavesSendsUntouched(t *testing.T) {
	var seen atomic.Uint64
	tp := New("plain", 4, WithBatchSize(4))
	tp.AddSpout("src", func(task int) Spout { return &taggedSpout{task: task, n: 100} }, 1)
	tp.AddBolt("sink", func(int) Bolt { return &slowBolt{seen: &seen} }, 1).
		SubscribeTo("src", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 100 || rep.Admission != (AdmissionStats{}) {
		t.Fatalf("plain run: seen=%d admission=%+v", seen.Load(), rep.Admission)
	}
}

func TestAdmissionConfigDefaults(t *testing.T) {
	c := AdmissionConfig{}.withDefaults()
	if c.SampleN != 2 || c.HighPct != 80 || c.LowPct != 40 {
		t.Fatalf("defaults: %+v", c)
	}
	a := newAdmission(c, 10)
	if a.highBatches != 8 || a.lowBatches != 4 {
		t.Fatalf("watermarks for cap 10: high=%d low=%d", a.highBatches, a.lowBatches)
	}
	// Tiny queues must still produce a valid low < high ordering.
	a = newAdmission(c, 1)
	if a.highBatches != 1 || a.lowBatches != 0 {
		t.Fatalf("watermarks for cap 1: high=%d low=%d", a.highBatches, a.lowBatches)
	}
}
