// Admission control for the stream engine: what a producer does when a
// destination queue is full, and watermark-based pressure signaling so
// the rest of the system (journal events, health rules, the remote
// coordinator's credit scheme) learns about overload *before* the
// process OOMs or wedges on a full channel.
//
// The default policy keeps the engine's historical behavior: block on
// the bounded channel, which is lossless backpressure. The shed policies
// trade tuples for liveness with exact accounting — every dropped tuple
// is counted, so produced = consumed + shed holds to the tuple.
package stream

import (
	"fmt"
	"sync/atomic"
)

// AdmissionPolicy selects the full-queue behavior of every edge in a
// topology.
type AdmissionPolicy int

const (
	// AdmitBlock blocks the producer until the consumer drains (lossless,
	// the default).
	AdmitBlock AdmissionPolicy = iota
	// AdmitShedOldest drops the oldest queued batch to make room for the
	// new one: freshest data wins, age-sensitive workloads degrade
	// gracefully.
	AdmitShedOldest
	// AdmitShedSampled drops a deterministic 1-in-N of incoming batches
	// while the queue is full and blocks for the rest: thins the stream
	// under overload without starving any producer.
	AdmitShedSampled
)

// ParseAdmissionPolicy maps the CLI spelling to a policy.
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	switch s {
	case "block", "":
		return AdmitBlock, nil
	case "shed-oldest":
		return AdmitShedOldest, nil
	case "shed-sampled":
		return AdmitShedSampled, nil
	}
	return 0, fmt.Errorf("stream: unknown admission policy %q (want block, shed-oldest or shed-sampled)", s)
}

// String renders the policy in its ParseAdmissionPolicy spelling.
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitShedOldest:
		return "shed-oldest"
	case AdmitShedSampled:
		return "shed-sampled"
	default:
		return "block"
	}
}

// AdmissionConfig tunes admission control and pressure watermarks.
type AdmissionConfig struct {
	Policy AdmissionPolicy
	// SampleN is the shed-sampled drop rate: 1 in SampleN full-queue
	// batches is dropped. Default 2.
	SampleN int
	// HighPct/LowPct are the queue-depth watermarks (percent of capacity)
	// at which a producer→destination link engages and releases pressure.
	// Defaults 80 and 50.
	HighPct int
	LowPct  int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.SampleN <= 1 {
		c.SampleN = 2
	}
	if c.HighPct <= 0 || c.HighPct > 100 {
		c.HighPct = 80
	}
	if c.LowPct <= 0 || c.LowPct >= c.HighPct {
		c.LowPct = c.HighPct / 2
		if c.LowPct == 0 {
			c.LowPct = 1
		}
	}
	return c
}

// WithAdmission enables admission control with cfg. Without this option
// the engine behaves exactly as before: producers block on full queues
// and no pressure state is tracked.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(tp *Topology) {
		c := cfg.withDefaults()
		tp.adm = &c
	}
}

// AdmissionStats is the exact shed/pressure accounting of one run.
type AdmissionStats struct {
	ShedTuples  uint64 // tuples dropped by a shed policy
	ShedBatches uint64 // transport batches those tuples rode in
	Transitions uint64 // pressure engage+release edges across all links
}

// admission is the per-run admission runtime shared by every edgeOut.
// The atomic counters are the exactness contract: a tuple is counted
// shed in the same operation that drops it.
type admission struct {
	policy      AdmissionPolicy
	sampleN     uint64
	highBatches int // queue depth (batches) that engages pressure
	lowBatches  int // queue depth that releases it
	shedTuples  atomic.Uint64
	shedBatches atomic.Uint64
	transitions atomic.Uint64
	pressured   atomic.Int64 // producer→destination links currently engaged
	// onTransition is invoked on every pressure edge (engaged=true/false)
	// from the producer goroutine. Wired by Run to the topology journal;
	// deliberately a dynamic call so the rare slow path (which formats and
	// allocates) stays off the zero-alloc static call graph of send.
	onTransition func(dest *taskRun, engaged bool)
}

func newAdmission(cfg AdmissionConfig, queueCap int) *admission {
	a := &admission{
		policy:      cfg.Policy,
		sampleN:     uint64(cfg.SampleN),
		highBatches: queueCap * cfg.HighPct / 100,
		lowBatches:  queueCap * cfg.LowPct / 100,
	}
	if a.highBatches < 1 {
		a.highBatches = 1
	}
	if a.lowBatches >= a.highBatches {
		a.lowBatches = a.highBatches - 1
	}
	return a
}

// stats snapshots the counters.
func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		ShedTuples:  a.shedTuples.Load(),
		ShedBatches: a.shedBatches.Load(),
		Transitions: a.transitions.Load(),
	}
}

// drop counts batch b as shed — its tuples exactly once — and returns it
// emptied (tuple refs cleared) so the producer can reuse it instead of
// round-tripping through the pool.
func (a *admission) drop(b *batch) *batch {
	a.shedBatches.Add(1)
	a.shedTuples.Add(uint64(len(b.items)))
	for i := range b.items {
		b.items[i] = nil
	}
	b.items = b.items[:0]
	return b
}

// deliver ships one full batch to destination d under admission control.
// Static callee of send (hotpath: zero-alloc): no allocation anywhere on
// this path; the transition hook is a dynamic call and carries the
// allocating slow path. Shed batches are stashed in o.spare rather than
// pool.Put so no interface conversion appears on the path.
func (o *edgeOut) deliver(d int, b *batch) {
	a := o.adm
	ch := o.dests[d].in

	// Watermark bookkeeping: producer-local per-destination state, so no
	// locks; each producer observes the shared queue depth independently.
	depth := len(ch)
	if !o.pressure[d] {
		if depth >= a.highBatches {
			o.pressure[d] = true
			a.pressured.Add(1)
			a.transitions.Add(1)
			if a.onTransition != nil {
				a.onTransition(o.dests[d], true)
			}
		}
	} else if depth <= a.lowBatches {
		o.pressure[d] = false
		a.pressured.Add(-1)
		a.transitions.Add(1)
		if a.onTransition != nil {
			a.onTransition(o.dests[d], false)
		}
	}

	switch a.policy {
	case AdmitShedOldest:
		for {
			select {
			case ch <- b:
				return
			default:
			}
			// Full: evict the oldest queued batch and retry. The consumer
			// may drain between the two selects — then the eviction select
			// misses and the next loop iteration just sends.
			select {
			case old := <-ch:
				o.spare = a.drop(old)
			default:
			}
		}
	case AdmitShedSampled:
		select {
		case ch <- b:
			return
		default:
		}
		o.sampled++
		if o.sampled%a.sampleN == 0 {
			o.spare = a.drop(b)
			return
		}
		ch <- b
	default: // AdmitBlock
		ch <- b
	}
}
