// Package stream is an in-process distributed stream-processing engine in
// the style of Apache Storm: a topology of spouts and bolts, each component
// running a configurable number of task instances, connected by bounded
// queues under pluggable stream groupings. It is the substrate the
// distributed set-similarity join runs on.
//
// Each task instance executes on its own goroutine and owns its state, so
// bolts never need locks; the queues are the only synchronization (share
// memory by communicating). Bounded queues provide natural backpressure:
// the engine is lossless, which stands in for Storm's acking without
// changing the steady-state throughput comparison the experiments make.
//
// Transport is micro-batched: producers accumulate tuples per destination
// and ship []Tuple batches (WithBatchSize, default 64) over the channels,
// amortizing channel synchronization across the batch; an explicit flush on
// task completion guarantees every tuple is delivered, and per-(producer,
// destination) FIFO order is preserved because batches fill and ship in
// emit order. Queue capacity (WithQueueCap) counts batches, so the tuples
// buffered per queue are roughly queueCap × batchSize.
//
// Per-edge tuple and byte counters model the cluster network: every tuple
// crossing a component boundary is counted, which is how the experiments
// measure communication cost.
package stream

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Tuple is anything that can flow along an edge. SizeBytes approximates the
// serialized wire size for communication-cost accounting; it never affects
// semantics.
type Tuple interface {
	SizeBytes() int
}

// Spout produces the input stream of a topology instance. Next returns the
// next tuple, or ok=false when the source is exhausted, which triggers
// orderly topology shutdown.
type Spout interface {
	Next() (t Tuple, ok bool)
}

// Bolt consumes tuples and may emit downstream through em.
type Bolt interface {
	Execute(t Tuple, em Emitter)
}

// Flusher is an optional Bolt extension: Flush runs exactly once, after the
// bolt's input is exhausted and before its downstream is notified, so
// bolts can emit trailing aggregates.
type Flusher interface {
	Flush(em Emitter)
}

// BatchBolt is an optional Bolt extension: the executor hands such a bolt
// each transport batch whole instead of tuple by tuple, preserving tuple
// order exactly. Bolts that amortize per-record setup across a batch —
// the worker bolt keeps its verifier pool fed with back-to-back records —
// implement it; Execute remains required and must behave identically for
// a single tuple.
type BatchBolt interface {
	Bolt
	ExecuteBatch(ts []Tuple, em Emitter)
}

// Emitter sends tuples downstream. Emit targets the default stream;
// EmitTo targets a named stream, reaching only subscribers of that stream
// (Storm's multi-stream declaration). Emitting to a stream nobody
// subscribes to is legal and drops the tuple.
type Emitter interface {
	Emit(t Tuple)
	EmitTo(stream string, t Tuple)
}

// DefaultStream is the stream name Emit and SubscribeTo use.
const DefaultStream = "default"

// Grouping decides which downstream task instances receive each tuple.
// NewSelector binds grouping state (e.g. a round-robin cursor) to one
// producer task so selectors need no synchronization.
type Grouping interface {
	NewSelector(ntasks int) Selector
}

// Selector routes one tuple to zero or more of the ntasks downstream
// instances. Implementations append to buf and return it to avoid
// per-tuple allocation.
type Selector interface {
	Select(t Tuple, buf []int) []int
}

// Shuffle distributes tuples round-robin across downstream tasks.
type Shuffle struct{}

// NewSelector implements Grouping.
func (Shuffle) NewSelector(ntasks int) Selector { return &shuffleSel{n: ntasks} }

type shuffleSel struct{ n, i int }

func (s *shuffleSel) Select(_ Tuple, buf []int) []int {
	buf = append(buf, s.i)
	s.i++
	if s.i == s.n {
		s.i = 0
	}
	return buf
}

// Fields routes by a hash of the tuple, so equal keys land on the same
// task.
type Fields struct {
	Hash func(Tuple) uint64
}

// NewSelector implements Grouping.
func (f Fields) NewSelector(ntasks int) Selector {
	return fieldsSel{hash: f.Hash, n: ntasks}
}

type fieldsSel struct {
	hash func(Tuple) uint64
	n    int
}

func (s fieldsSel) Select(t Tuple, buf []int) []int {
	return append(buf, int(s.hash(t)%uint64(s.n)))
}

// Broadcast replicates every tuple to all downstream tasks.
type Broadcast struct{}

// NewSelector implements Grouping.
func (Broadcast) NewSelector(ntasks int) Selector { return broadcastSel{n: ntasks} }

type broadcastSel struct{ n int }

func (s broadcastSel) Select(_ Tuple, buf []int) []int {
	for i := 0; i < s.n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// PartitionFunc routes with an arbitrary function — the hook the length-
// based and prefix-based distribution strategies plug into. The function
// must append destination task indices to buf and return it; duplicates are
// delivered once per occurrence.
type PartitionFunc func(t Tuple, ntasks int, buf []int) []int

// NewSelector implements Grouping.
func (f PartitionFunc) NewSelector(ntasks int) Selector {
	return partitionSel{f: f, n: ntasks}
}

type partitionSel struct {
	f func(t Tuple, ntasks int, buf []int) []int
	n int
}

func (s partitionSel) Select(t Tuple, buf []int) []int { return s.f(t, s.n, buf) }

// Topology is a DAG of components under construction. Build with New,
// AddSpout, AddBolt, then call Run.
type Topology struct {
	name      string
	queueCap  int
	batchSize int
	comps     map[string]*component
	order     []string
	err       error
	reg       *obs.Registry
	journal   *obs.Journal
	adm       *AdmissionConfig // nil = plain blocking sends
}

// Option tunes a Topology at construction time.
type Option func(*Topology)

// WithBatchSize sets the transport micro-batch size: how many tuples
// accumulate per destination before a channel send ships them. 1 disables
// batching (one send per tuple); values <= 0 keep the default of 64.
func WithBatchSize(n int) Option {
	return func(tp *Topology) {
		if n > 0 {
			tp.batchSize = n
		}
	}
}

// WithQueueCap sets the per-task input queue capacity in batches; values
// <= 0 keep the default. It overrides the queueCap argument of New.
func WithQueueCap(n int) Option {
	return func(tp *Topology) {
		if n > 0 {
			tp.queueCap = n
		}
	}
}

type inputDecl struct {
	from     string
	stream   string
	grouping Grouping
}

type component struct {
	name   string
	par    int
	spoutF func(task int) Spout
	boltF  func(task int) Bolt
	inputs []inputDecl
}

// New returns an empty topology. queueCap is the per-task input queue
// capacity in batches; zero selects the default of 1024. Options tune
// batching and can override queueCap.
func New(name string, queueCap int, opts ...Option) *Topology {
	if queueCap <= 0 {
		queueCap = 1024
	}
	tp := &Topology{
		name:      name,
		queueCap:  queueCap,
		batchSize: DefaultBatchSize,
		comps:     make(map[string]*component),
	}
	for _, opt := range opts {
		opt(tp)
	}
	return tp
}

// DefaultBatchSize is the transport micro-batch size New uses unless
// WithBatchSize overrides it.
const DefaultBatchSize = 64

func (tp *Topology) add(c *component) *ComponentRef {
	if tp.err != nil {
		return &ComponentRef{tp: tp, comp: c}
	}
	if c.par < 1 {
		tp.err = fmt.Errorf("stream: component %q has parallelism %d", c.name, c.par)
		return &ComponentRef{tp: tp, comp: c}
	}
	if _, dup := tp.comps[c.name]; dup {
		tp.err = fmt.Errorf("stream: duplicate component %q", c.name)
		return &ComponentRef{tp: tp, comp: c}
	}
	tp.comps[c.name] = c
	tp.order = append(tp.order, c.name)
	return &ComponentRef{tp: tp, comp: c}
}

// AddSpout registers a source component with the given parallelism; factory
// is invoked once per task index.
func (tp *Topology) AddSpout(name string, factory func(task int) Spout, parallelism int) *ComponentRef {
	return tp.add(&component{name: name, par: parallelism, spoutF: factory})
}

// AddBolt registers a processing component with the given parallelism.
func (tp *Topology) AddBolt(name string, factory func(task int) Bolt, parallelism int) *ComponentRef {
	return tp.add(&component{name: name, par: parallelism, boltF: factory})
}

// ComponentRef supports fluent input wiring.
type ComponentRef struct {
	tp   *Topology
	comp *component
}

// SubscribeTo consumes the default output stream of component from under
// grouping g.
func (c *ComponentRef) SubscribeTo(from string, g Grouping) *ComponentRef {
	return c.SubscribeToStream(from, DefaultStream, g)
}

// SubscribeToStream consumes a named output stream of component from.
func (c *ComponentRef) SubscribeToStream(from, stream string, g Grouping) *ComponentRef {
	if c.comp.spoutF != nil {
		c.tp.err = fmt.Errorf("stream: spout %q cannot subscribe to %q", c.comp.name, from)
		return c
	}
	c.comp.inputs = append(c.comp.inputs, inputDecl{from: from, stream: stream, grouping: g})
	return c
}

// validate checks the declared graph: inputs exist, bolts have inputs,
// graph is acyclic.
func (tp *Topology) validate() error {
	if tp.err != nil {
		return tp.err
	}
	if len(tp.comps) == 0 {
		return errors.New("stream: empty topology")
	}
	for _, c := range tp.comps {
		if c.boltF != nil && len(c.inputs) == 0 {
			return fmt.Errorf("stream: bolt %q has no inputs", c.name)
		}
		for _, in := range c.inputs {
			if _, ok := tp.comps[in.from]; !ok {
				return fmt.Errorf("stream: %q subscribes to unknown component %q", c.name, in.from)
			}
		}
	}
	// Kahn toposort to reject cycles.
	indeg := make(map[string]int)
	adj := make(map[string][]string)
	for _, c := range tp.comps {
		for _, in := range c.inputs {
			adj[in.from] = append(adj[in.from], c.name)
			indeg[c.name]++
		}
	}
	var q []string
	for name := range tp.comps {
		if indeg[name] == 0 {
			q = append(q, name)
		}
	}
	seen := 0
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		seen++
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				q = append(q, m)
			}
		}
	}
	if seen != len(tp.comps) {
		return fmt.Errorf("stream: topology %q has a cycle", tp.name)
	}
	return nil
}

// EdgeKey names a producer→consumer component pair.
type EdgeKey struct {
	From, To string
}

// EdgeCounters counts traffic over one edge; this is the simulated network
// bill. Batches counts channel sends, so Tuples/Batches is the realized
// batch occupancy — how much synchronization the transport amortized.
type EdgeCounters struct {
	Tuples  atomic.Uint64
	Bytes   atomic.Uint64
	Batches atomic.Uint64
}

// Occupancy returns the mean tuples per shipped batch (0 when nothing was
// shipped). Values near the configured batch size mean the transport
// amortized one channel send across that many tuples; values near 1 mean
// the edge degenerated to per-tuple sends (e.g. a sparse stream flushed by
// completion).
func (e *EdgeCounters) Occupancy() float64 {
	b := e.Batches.Load()
	if b == 0 {
		return 0
	}
	return float64(e.Tuples.Load()) / float64(b)
}

// TaskCounters counts per-task work.
type TaskCounters struct {
	Executed atomic.Uint64
	Emitted  atomic.Uint64
}

// Report is the outcome of a completed run.
type Report struct {
	Topology string
	Elapsed  time.Duration
	// Edges maps component pairs to traffic counters.
	Edges map[EdgeKey]*EdgeCounters
	// Tasks maps component name to per-task counters, indexed by task.
	Tasks map[string][]*TaskCounters
	// Bolts exposes the bolt instances after the run so callers can read
	// back operator state (e.g. join statistics), keyed by component.
	Bolts map[string][]Bolt
	// Admission is the shed/pressure accounting of the run; all-zero
	// unless WithAdmission enabled a shed policy or pressure engaged.
	Admission AdmissionStats
}

// TotalTuples sums tuple counts over all edges.
func (r *Report) TotalTuples() uint64 {
	var n uint64
	for _, e := range r.Edges {
		n += e.Tuples.Load()
	}
	return n
}

// TotalBytes sums byte counts over all edges.
func (r *Report) TotalBytes() uint64 {
	var n uint64
	for _, e := range r.Edges {
		n += e.Bytes.Load()
	}
	return n
}

// EdgeTuples returns the tuple count for one edge (zero when absent).
func (r *Report) EdgeTuples(from, to string) uint64 {
	if e, ok := r.Edges[EdgeKey{From: from, To: to}]; ok {
		return e.Tuples.Load()
	}
	return 0
}

// EdgeBatches returns the batch (channel send) count for one edge (zero
// when absent).
func (r *Report) EdgeBatches(from, to string) uint64 {
	if e, ok := r.Edges[EdgeKey{From: from, To: to}]; ok {
		return e.Batches.Load()
	}
	return 0
}
