package stream

import (
	"sync"
	"testing"
)

// batchRecBolt implements BatchBolt and records every batch it receives.
// Execute must never run once ExecuteBatch exists — the executor hands the
// whole transport batch over in one call.
type batchRecBolt struct {
	mu      sync.Mutex
	batches [][]taggedTuple // guarded by mu
	execs   int             // guarded by mu
}

func (b *batchRecBolt) Execute(Tuple, Emitter) {
	b.mu.Lock()
	b.execs++
	b.mu.Unlock()
}

func (b *batchRecBolt) ExecuteBatch(ts []Tuple, _ Emitter) {
	cp := make([]taggedTuple, len(ts))
	for i, t := range ts {
		cp[i] = t.(taggedTuple)
	}
	b.mu.Lock()
	b.batches = append(b.batches, cp)
	b.mu.Unlock()
}

// TestBatchBoltReceivesWholeBatches checks the BatchBolt contract: batches
// arrive intact (never split, never above the transport batch size), every
// tuple is delivered exactly once, per-producer order is preserved across
// batch boundaries, the per-tuple Execute path is bypassed, and the
// Executed counter still counts tuples.
func TestBatchBoltReceivesWholeBatches(t *testing.T) {
	const perProducer = 400
	for _, bs := range []int{1, 8, 64} {
		tp := New("batchbolt", 8, WithBatchSize(bs))
		tp.AddSpout("src", func(task int) Spout {
			return &taggedSpout{task: task, n: perProducer}
		}, 2)
		tp.AddBolt("sink", func(int) Bolt { return &batchRecBolt{} }, 1).
			SubscribeTo("src", Shuffle{})
		rep, err := tp.Run()
		if err != nil {
			t.Fatalf("batch %d: %v", bs, err)
		}
		sink := rep.Bolts["sink"][0].(*batchRecBolt)
		if sink.execs != 0 {
			t.Fatalf("batch %d: per-tuple Execute called %d times on a BatchBolt", bs, sink.execs)
		}
		total := 0
		lastSeq := map[int]int{0: -1, 1: -1}
		for _, b := range sink.batches {
			if len(b) == 0 || len(b) > bs {
				t.Fatalf("batch %d: delivered batch of size %d", bs, len(b))
			}
			total += len(b)
			for _, tt := range b {
				if tt.seq <= lastSeq[tt.producer] {
					t.Fatalf("batch %d: producer %d out of order: %d after %d",
						bs, tt.producer, tt.seq, lastSeq[tt.producer])
				}
				lastSeq[tt.producer] = tt.seq
			}
		}
		if total != 2*perProducer {
			t.Fatalf("batch %d: delivered %d tuples, want %d", bs, total, 2*perProducer)
		}
		if got := rep.Tasks["sink"][0].Executed.Load(); got != uint64(total) {
			t.Fatalf("batch %d: Executed counter %d, want %d", bs, got, total)
		}
	}
}

// relayBatchBolt forwards every tuple of every batch downstream — checks
// that a BatchBolt's emitter works mid-batch like any bolt's.
type relayBatchBolt struct{}

func (relayBatchBolt) Execute(Tuple, Emitter) {}
func (relayBatchBolt) ExecuteBatch(ts []Tuple, em Emitter) {
	for _, t := range ts {
		em.Emit(t)
	}
}

// TestBatchBoltEmitsDownstream wires a BatchBolt mid-pipeline and checks
// nothing is lost or reordered on the way to a per-tuple sink.
func TestBatchBoltEmitsDownstream(t *testing.T) {
	const perProducer = 300
	tp := New("batchrelay", 8, WithBatchSize(16))
	tp.AddSpout("src", func(task int) Spout {
		return &taggedSpout{task: task, n: perProducer}
	}, 3)
	tp.AddBolt("relay", func(int) Bolt { return relayBatchBolt{} }, 2).
		SubscribeTo("src", Shuffle{})
	tp.AddBolt("sink", func(int) Bolt { return &orderBolt{} }, 1).
		SubscribeTo("relay", Shuffle{})
	rep, err := tp.Run()
	if err != nil {
		t.Fatal(err)
	}
	sink := rep.Bolts["sink"][0].(*orderBolt)
	total := 0
	for _, seqs := range sink.got {
		total += len(seqs)
	}
	if total != 3*perProducer {
		t.Fatalf("delivered %d tuples, want %d", total, 3*perProducer)
	}
}
