package checkpoint

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/bundle"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/window"
	"repro/internal/workload"
)

func opts(tau float64, win window.Policy) local.Options {
	return local.Options{
		Params: filter.Params{Func: similarity.Jaccard, Threshold: tau},
		Window: win,
	}
}

// TestCheckpointRestoreContinuesIdentically is the recovery property: for
// every algorithm, splitting a stream at an arbitrary point, checkpointing,
// restoring into a fresh joiner, and continuing must produce exactly the
// same matches for the remainder as the uninterrupted run.
func TestCheckpointRestoreContinuesIdentically(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(21)).Generate(600)
	const cut = 350
	for _, alg := range []local.Algorithm{local.Naive, local.Prefix, local.Bundled} {
		for _, win := range []window.Policy{window.Unbounded{}, window.Count{N: 120}} {
			o := opts(0.7, win)

			// Uninterrupted run; collect matches after the cut.
			ref := local.New(alg, o)
			want := make(map[record.Pair]bool)
			for i, r := range recs {
				ref.Step(r, true, func(m local.Match) {
					if i >= cut {
						want[record.NewPair(r.ID, m.Rec.ID, 0)] = true
					}
				})
			}

			// Run to the cut, checkpoint, restore, continue.
			j1 := local.New(alg, o)
			for _, r := range recs[:cut] {
				j1.Step(r, true, func(local.Match) {})
			}
			var buf bytes.Buffer
			cur := Cursor{NextID: cut, NextTime: cut}
			if err := Write(&buf, cur, j1); err != nil {
				t.Fatalf("%v/%v: write: %v", alg, win, err)
			}
			j2 := local.New(alg, o)
			gotCur, n, err := Read(&buf, j2)
			if err != nil {
				t.Fatalf("%v/%v: read: %v", alg, win, err)
			}
			if gotCur != cur {
				t.Fatalf("%v/%v: cursor %+v want %+v", alg, win, gotCur, cur)
			}
			if n != j1.Size() {
				t.Fatalf("%v/%v: restored %d records, source held %d", alg, win, n, j1.Size())
			}
			got := make(map[record.Pair]bool)
			for _, r := range recs[cut:] {
				j2.Step(r, true, func(m local.Match) {
					got[record.NewPair(r.ID, m.Rec.ID, 0)] = true
				})
			}
			if len(got) != len(want) {
				t.Fatalf("%v/%v: got %d matches after restore, want %d", alg, win, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%v/%v: missing %v", alg, win, p)
				}
			}
		}
	}
}

// TestCheckpointBundleGroupedRoundTrip exercises restore with explicit
// bundle-grouping configs: restore goes through Load, which must rebuild
// the bundle groupings from scratch under the same Config, including when
// a bounded window has already evicted part of the stream.
func TestCheckpointBundleGroupedRoundTrip(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(47)).Generate(500)
	const cut = 300
	configs := []bundle.Config{
		{GroupThreshold: 0.9, MaxMembers: 4},
		{GroupThreshold: 0.85, MaxMembers: 8, OneByOneVerify: true},
	}
	for _, cfg := range configs {
		for _, win := range []window.Policy{window.Unbounded{}, window.Count{N: 96}} {
			o := opts(0.7, win)
			o.Bundle = cfg

			ref := local.New(local.Bundled, o)
			want := make(map[record.Pair]bool)
			for i, r := range recs {
				ref.Step(r, true, func(m local.Match) {
					if i >= cut {
						want[record.NewPair(r.ID, m.Rec.ID, 0)] = true
					}
				})
			}

			j1 := local.New(local.Bundled, o)
			for _, r := range recs[:cut] {
				j1.Step(r, true, func(local.Match) {})
			}
			var buf bytes.Buffer
			if err := Write(&buf, Cursor{NextID: cut, NextTime: cut}, j1); err != nil {
				t.Fatalf("%+v/%v: write: %v", cfg, win, err)
			}
			j2 := local.New(local.Bundled, o)
			if _, n, err := Read(&buf, j2); err != nil {
				t.Fatalf("%+v/%v: read: %v", cfg, win, err)
			} else if n != j1.Size() {
				t.Fatalf("%+v/%v: restored %d records, source held %d", cfg, win, n, j1.Size())
			}
			got := make(map[record.Pair]bool)
			for _, r := range recs[cut:] {
				j2.Step(r, true, func(m local.Match) {
					got[record.NewPair(r.ID, m.Rec.ID, 0)] = true
				})
			}
			if len(got) != len(want) {
				t.Fatalf("%+v/%v: got %d matches after restore, want %d", cfg, win, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%+v/%v: missing %v", cfg, win, p)
				}
			}
		}
	}
}

// TestCursorContinuationExact pins the contract the worker resume path
// depends on: the restored cursor alone is enough to restart ID and tick
// assignment. The tail after restore is re-stamped purely from the cursor
// (NextID+i, NextTime+i) and must reproduce the uninterrupted run, which
// only holds if the cursor round-trips exactly.
func TestCursorContinuationExact(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(61)).Generate(400)
	const cut = 250
	o := opts(0.7, window.Count{N: 80})

	ref := local.New(local.Prefix, o)
	want := make(map[record.Pair]bool)
	for i, r := range recs {
		ref.Step(r, true, func(m local.Match) {
			if i >= cut {
				want[record.NewPair(r.ID, m.Rec.ID, 0)] = true
			}
		})
	}

	j1 := local.New(local.Prefix, o)
	for _, r := range recs[:cut] {
		j1.Step(r, true, func(local.Match) {})
	}
	var buf bytes.Buffer
	saved := Cursor{NextID: cut, NextTime: cut}
	if err := Write(&buf, saved, j1); err != nil {
		t.Fatal(err)
	}
	j2 := local.New(local.Prefix, o)
	cur, _, err := Read(&buf, j2)
	if err != nil {
		t.Fatal(err)
	}
	if cur != saved {
		t.Fatalf("cursor round trip: got %+v, want %+v", cur, saved)
	}

	// Rebuild the tail from the cursor alone: same token sets, but IDs and
	// ticks assigned from the restored position.
	got := make(map[record.Pair]bool)
	for i, r := range recs[cut:] {
		cont := &record.Record{
			ID:     record.ID(cur.NextID) + record.ID(i),
			Time:   cur.NextTime + int64(i),
			Tokens: r.Tokens,
		}
		if cont.ID != r.ID || cont.Time != r.Time {
			t.Fatalf("cursor-derived stamp (%d, %d) diverges from stream (%d, %d)",
				cont.ID, cont.Time, r.ID, r.Time)
		}
		j2.Step(cont, true, func(m local.Match) {
			got[record.NewPair(cont.ID, m.Rec.ID, 0)] = true
		})
	}
	if len(got) != len(want) {
		t.Fatalf("cursor-continued run: got %d matches, want %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("cursor-continued run missing %v", p)
		}
	}
}

func TestCheckpointOnlyLiveRecords(t *testing.T) {
	// With a small window, the checkpoint must contain only the live tail.
	o := opts(0.8, window.Count{N: 10})
	j := local.New(local.Prefix, o)
	recs := workload.NewGenerator(workload.UniformSmall(5)).Generate(200)
	for _, r := range recs {
		j.Step(r, true, func(local.Match) {})
	}
	var buf bytes.Buffer
	if err := Write(&buf, Cursor{NextID: 200, NextTime: 200}, j); err != nil {
		t.Fatal(err)
	}
	j2 := local.New(local.Prefix, o)
	_, n, err := Read(&buf, j2)
	if err != nil {
		t.Fatal(err)
	}
	if n > 11 {
		t.Fatalf("checkpoint carried %d records for a 10-record window", n)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	j := local.New(local.Naive, opts(0.8, nil))
	if _, _, err := Read(strings.NewReader("not a checkpoint"), j); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := Read(strings.NewReader(""), j); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated: magic + cursor but no frames.
	var buf bytes.Buffer
	if err := Write(&buf, Cursor{}, local.New(local.Naive, opts(0.8, nil))); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, err := Read(bytes.NewReader(raw[:len(raw)-1]), j); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestEmptyCheckpointRoundTrip(t *testing.T) {
	j := local.New(local.Bundled, opts(0.8, nil))
	var buf bytes.Buffer
	if err := Write(&buf, Cursor{NextID: 7, NextTime: 9}, j); err != nil {
		t.Fatal(err)
	}
	j2 := local.New(local.Bundled, opts(0.8, nil))
	cur, n, err := Read(&buf, j2)
	if err != nil || n != 0 {
		t.Fatalf("empty round trip: %v n=%d", err, n)
	}
	if cur.NextID != 7 || cur.NextTime != 9 {
		t.Fatalf("cursor: %+v", cur)
	}
}

func TestWriteFailurePropagates(t *testing.T) {
	j := local.New(local.Naive, opts(0.8, nil))
	j.Load(&record.Record{ID: 0, Tokens: []uint32{1, 2, 3}})
	// A writer that fails immediately must surface an error from Write.
	if err := Write(failWriter{}, Cursor{}, j); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = errors.New("synthetic write failure")

func TestReadIntoWrongFrameFails(t *testing.T) {
	// A checkpoint stream carrying a non-record frame must be rejected.
	var buf bytes.Buffer
	buf.Write([]byte("SSJCKPT\x01"))
	buf.WriteByte(0) // cursor id = 0
	buf.WriteByte(0) // cursor time = 0
	// A Result frame where a Record/EOF is expected.
	buf.WriteByte(3)  // wire.TypeResult
	buf.WriteByte(10) // payload length
	buf.Write(make([]byte, 10))
	j := local.New(local.Naive, opts(0.8, nil))
	if _, _, err := Read(&buf, j); err == nil {
		t.Fatal("wrong frame type accepted")
	}
}

func TestBiCheckpointRoundTrip(t *testing.T) {
	o := opts(0.7, window.Count{N: 100})
	src := local.NewBi(local.Prefix, o)
	recs := workload.NewGenerator(workload.UniformSmall(33)).Generate(200)
	for i, r := range recs {
		if i%2 == 0 {
			src.StepLeft(r, func(local.Match) {})
		} else {
			src.StepRight(r, func(local.Match) {})
		}
	}
	var buf bytes.Buffer
	cur := Cursor{NextID: 200, NextTime: 200}
	if err := WriteBi(&buf, cur, src); err != nil {
		t.Fatal(err)
	}
	dst := local.NewBi(local.Prefix, o)
	gotCur, n, err := ReadBi(&buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	if gotCur != cur {
		t.Fatalf("cursor: %+v", gotCur)
	}
	if n != src.SizeLeft()+src.SizeRight() {
		t.Fatalf("restored %d records, source held %d", n, src.SizeLeft()+src.SizeRight())
	}
	if dst.SizeLeft() != src.SizeLeft() || dst.SizeRight() != src.SizeRight() {
		t.Fatalf("sizes: %d/%d vs %d/%d",
			dst.SizeLeft(), dst.SizeRight(), src.SizeLeft(), src.SizeRight())
	}
	// Continued probes must agree.
	probe := recs[len(recs)-1]
	probe2 := &record.Record{ID: probe.ID + 1, Time: probe.Time + 1, Tokens: probe.Tokens}
	var a, b int
	src.StepSide(probe2, false, false, func(local.Match) { a++ })
	dst.StepSide(probe2, false, false, func(local.Match) { b++ })
	if a != b {
		t.Fatalf("restored bi joiner diverges: %d vs %d", a, b)
	}
}

func TestBiCheckpointRejectsGarbage(t *testing.T) {
	dst := local.NewBi(local.Naive, opts(0.8, nil))
	if _, _, err := ReadBi(strings.NewReader("nope"), dst); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := ReadBi(strings.NewReader(""), dst); err == nil {
		t.Fatal("empty accepted")
	}
	// Wrong frame type mid-stream.
	var buf bytes.Buffer
	buf.Write([]byte("SSJCKPT\x01"))
	buf.WriteByte(0)
	buf.WriteByte(0)
	buf.WriteByte(3) // TypeResult
	buf.WriteByte(2)
	buf.Write([]byte{0, 0})
	if _, _, err := ReadBi(&buf, dst); err == nil {
		t.Fatal("wrong frame accepted")
	}
}

func TestBiWriteFailurePropagates(t *testing.T) {
	bi := local.NewBi(local.Naive, opts(0.8, nil))
	bi.StepLeft(&record.Record{ID: 0, Tokens: []uint32{1, 2, 3}}, func(local.Match) {})
	if err := WriteBi(failWriter{}, Cursor{}, bi); err == nil {
		t.Fatal("write error swallowed")
	}
}
