package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/record"
	"repro/internal/wire"
)

// magic2 identifies the v2 session-checkpoint envelope: a header carrying
// the partition-plan hash and the worker's unacknowledged results,
// followed by a complete v1 checkpoint body (Write/WriteBi output,
// its own magic included). Readers of v1 files reject it as bad magic,
// and ReadSessionHeader passes v1 files through untouched, so both
// formats coexist in a checkpoint directory.
var magic2 = []byte("SSJCKPT\x02")

// SessionMeta is the v2 envelope: the session's plan fingerprint (to
// refuse resuming against a checkpoint saved under a different partition
// plan) and the results the worker had emitted but the coordinator had
// not yet acknowledged as durable when the checkpoint was taken.
type SessionMeta struct {
	PlanHash uint64
	Unacked  []wire.Result
}

// WriteSessionHeader writes the v2 envelope; the caller follows with
// Write or WriteBi for the window body.
func WriteSessionHeader(w io.Writer, meta SessionMeta) error {
	var buf bytes.Buffer
	buf.Write(magic2)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], meta.PlanHash)
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], uint64(len(meta.Unacked)))
	buf.Write(tmp[:n])
	for _, res := range meta.Unacked {
		n = binary.PutUvarint(tmp[:], uint64(res.A))
		buf.Write(tmp[:n])
		n = binary.PutUvarint(tmp[:], uint64(res.B))
		buf.Write(tmp[:n])
		var f [8]byte
		binary.LittleEndian.PutUint64(f[:], math.Float64bits(res.Sim))
		buf.Write(f[:])
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: writing session header: %w", err)
	}
	return nil
}

// ReadSessionHeader consumes the v2 envelope if present and returns the
// metadata plus a reader positioned at the v1 checkpoint body. A v1 file
// (no envelope) is returned as-is with v2=false and zero metadata, so
// callers handle both formats with one code path.
func ReadSessionHeader(r io.Reader) (meta SessionMeta, body io.Reader, v2 bool, err error) {
	got := make([]byte, len(magic2))
	if _, err := io.ReadFull(r, got); err != nil {
		return meta, nil, false, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if !bytes.Equal(got, magic2) {
		// Not a v2 envelope — put the bytes back and let the caller try
		// the v1 reader (which validates its own magic).
		return meta, io.MultiReader(bytes.NewReader(got), r), false, nil
	}
	br := byteReaderAdapter{r: r}
	if meta.PlanHash, err = binary.ReadUvarint(br); err != nil {
		return meta, nil, true, fmt.Errorf("checkpoint: reading plan hash: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return meta, nil, true, fmt.Errorf("checkpoint: reading unacked count: %w", err)
	}
	if count > 1<<24 {
		return meta, nil, true, fmt.Errorf("checkpoint: absurd unacked count %d", count)
	}
	meta.Unacked = make([]wire.Result, count)
	for i := range meta.Unacked {
		a, err := binary.ReadUvarint(br)
		if err != nil {
			return meta, nil, true, fmt.Errorf("checkpoint: reading unacked result %d: %w", i, err)
		}
		b, err := binary.ReadUvarint(br)
		if err != nil {
			return meta, nil, true, fmt.Errorf("checkpoint: reading unacked result %d: %w", i, err)
		}
		var f [8]byte
		if _, err := io.ReadFull(r, f[:]); err != nil {
			return meta, nil, true, fmt.Errorf("checkpoint: reading unacked result %d: %w", i, err)
		}
		meta.Unacked[i] = wire.Result{
			A:   record.ID(a),
			B:   record.ID(b),
			Sim: math.Float64frombits(binary.LittleEndian.Uint64(f[:])),
		}
	}
	return meta, r, true, nil
}

// ErrPlanMismatch reports a resume attempt against a checkpoint saved
// under a different partition plan.
var ErrPlanMismatch = errors.New("checkpoint: partition-plan hash mismatch (stale checkpoint directory?)")
