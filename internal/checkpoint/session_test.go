package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/bundle"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/wire"
	"repro/internal/window"
)

func sessionJoiner(t *testing.T) local.Joiner {
	t.Helper()
	return local.New(local.Bundled, local.Options{
		Params: filter.Params{Func: similarity.Jaccard, Threshold: 0.6},
		Window: window.Unbounded{},
		Bundle: bundle.Config{GroupThreshold: 0.8, MaxMembers: 16},
	})
}

func TestSessionEnvelopeRoundTrip(t *testing.T) {
	j := sessionJoiner(t)
	j.Load(&record.Record{ID: 1, Tokens: []tokens.Rank{1, 2, 3}})
	meta := SessionMeta{
		PlanHash: 0xABCDEF0123456789,
		Unacked: []wire.Result{
			{A: 1, B: 2, Sim: 0.75},
			{A: 9, B: 4, Sim: 1},
		},
	}
	var buf bytes.Buffer
	if err := WriteSessionHeader(&buf, meta); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, Cursor{NextID: 2, NextTime: 5}, j); err != nil {
		t.Fatal(err)
	}

	got, body, v2, err := ReadSessionHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !v2 {
		t.Fatal("v2 envelope not detected")
	}
	if !reflect.DeepEqual(got, meta) {
		t.Fatalf("meta mismatch:\ngot  %+v\nwant %+v", got, meta)
	}
	j2 := sessionJoiner(t)
	cur, n, err := Read(body, j2)
	if err != nil {
		t.Fatal(err)
	}
	if cur.NextID != 2 || cur.NextTime != 5 || n != 1 {
		t.Fatalf("inner checkpoint: cur=%+v n=%d", cur, n)
	}
}

func TestSessionHeaderPassesThroughV1(t *testing.T) {
	j := sessionJoiner(t)
	j.Load(&record.Record{ID: 7, Tokens: []tokens.Rank{4, 5}})
	var buf bytes.Buffer
	if err := Write(&buf, Cursor{NextID: 8}, j); err != nil {
		t.Fatal(err)
	}
	meta, body, v2, err := ReadSessionHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2 || meta.PlanHash != 0 || meta.Unacked != nil {
		t.Fatalf("v1 file misread as v2: %+v", meta)
	}
	j2 := sessionJoiner(t)
	cur, n, err := Read(body, j2)
	if err != nil {
		t.Fatalf("v1 body unreadable after pass-through: %v", err)
	}
	if cur.NextID != 8 || n != 1 {
		t.Fatalf("v1 body: cur=%+v n=%d", cur, n)
	}
}

func TestV1ReaderRejectsV2File(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSessionHeader(&buf, SessionMeta{PlanHash: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, Cursor{}, sessionJoiner(t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(&buf, sessionJoiner(t)); err == nil {
		t.Fatal("v1 Read accepted a v2 file")
	}
}

func TestSessionHeaderEmptyUnacked(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSessionHeader(&buf, SessionMeta{PlanHash: 3}); err != nil {
		t.Fatal(err)
	}
	meta, _, v2, err := ReadSessionHeader(&buf)
	if err != nil || !v2 {
		t.Fatalf("empty-unacked header: %v v2=%v", err, v2)
	}
	if meta.PlanHash != 3 || len(meta.Unacked) != 0 {
		t.Fatalf("meta = %+v", meta)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestPath)
	m := &Manifest{
		Schema:    ManifestSchema,
		SessionID: 0xBEEF,
		PlanHash:  12345,
		Hello: wire.Hello{
			Version: wire.Version, Func: 1, Threshold: 0.7, Strategy: 0,
			Bounds: []int{10, 20, 30}, FT: true, Durable: true,
			SessionID: 0xBEEF, PlanHash: 12345,
		},
		Workers:     []string{"a:1", "b:2", "c:3"},
		Bounds:      []int{10, 20, 30},
		IngestNext:  500,
		ResultsNext: 77,
		Cursors:     []TaskCursor{{Task: 0, SentPos: 100}, {Task: 2, SentPos: 90}},
	}
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place: atomic save must replace, not append.
	m.IngestNext = 600
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest mismatch:\ngot  %+v\nwant %+v", got, m)
	}
	// No temp debris.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("session dir has %d entries, want just the manifest", len(entries))
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestPath)
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("missing manifest loaded")
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("corrupt manifest loaded")
	}
	if err := SaveManifest(path, &Manifest{Schema: ManifestSchema + 1, SessionID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("wrong-schema manifest loaded")
	}
	if err := SaveManifest(path, &Manifest{Schema: ManifestSchema}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("zero-session manifest loaded")
	}
}

func TestErrPlanMismatchIsSentinel(t *testing.T) {
	wrapped := errors.New("worker: " + ErrPlanMismatch.Error())
	if errors.Is(wrapped, ErrPlanMismatch) {
		t.Fatal("string copy should not match the sentinel")
	}
	if !errors.Is(ErrPlanMismatch, ErrPlanMismatch) {
		t.Fatal("sentinel identity broken")
	}
}
