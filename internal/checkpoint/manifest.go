package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

// ManifestSchema is the current manifest format version.
const ManifestSchema = 1

// TaskCursor is the coordinator's last persisted replay position for one
// worker task: how many entries of that task's dispatch log had been sent
// when the manifest was written. Advisory only — on resume the worker's
// live ResumeAck cursor is authoritative; this value just bounds how much
// progress a crash can appear to lose in status output.
type TaskCursor struct {
	Task    int    `json:"task"`
	SentPos uint64 `json:"sent_pos"`
}

// Manifest is the coordinator's session checkpoint: everything a fresh
// coordinator process needs to re-run the session — the full launch
// configuration (as the wire Hello it would send, minus per-task fields),
// the worker fleet, and the WAL positions. It deliberately stores the
// *launch* partition plan even for sessions that later degraded: plan
// hash must stay stable so surviving workers accept the resume, and the
// degraded bounds are carried separately.
type Manifest struct {
	Schema    int    `json:"schema"`
	SessionID uint64 `json:"session_id"`
	PlanHash  uint64 `json:"plan_hash"`
	// Hello carries the session configuration (Task/Workers fields are
	// meaningless here and left zero).
	Hello   wire.Hello `json:"hello"`
	Workers []string   `json:"workers"`
	// Bounds is the *current* length partition (differs from Hello.Bounds
	// after a degraded-mode rebalance).
	Bounds      []int        `json:"bounds,omitempty"`
	IngestNext  uint64       `json:"ingest_next"`  // ingest WAL: next record index
	ResultsNext uint64       `json:"results_next"` // results WAL: next entry index
	Cursors     []TaskCursor `json:"cursors,omitempty"`
}

// ManifestPath is the manifest file name inside a session state
// directory.
const ManifestPath = "manifest.json"

// SaveManifest writes m atomically (temp file + rename + directory-entry
// durability via fsync) so a crash mid-write never leaves a torn
// manifest.
func SaveManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: syncing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: installing manifest: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadManifest reads and validates a manifest written by SaveManifest.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("checkpoint: manifest schema %d, want %d", m.Schema, ManifestSchema)
	}
	if m.SessionID == 0 {
		return nil, fmt.Errorf("checkpoint: manifest %s has no session id", path)
	}
	return &m, nil
}
