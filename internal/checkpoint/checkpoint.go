// Package checkpoint persists and restores the window state of a streaming
// joiner — the recovery story a deployed stream processor needs. A
// checkpoint is a logical snapshot: the live stored records in arrival
// order, serialized with the wire codec, plus the stream cursor (next ID
// and tick). Restore replays them through the joiner's Load path, which
// rebuilds indexes (and bundle groupings) rather than serializing internal
// pointers, so checkpoints survive any change to index internals.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/local"
	"repro/internal/record"
	"repro/internal/wire"
)

// magic identifies checkpoint files; the trailing byte is the format
// version.
var magic = []byte("SSJCKPT\x01")

// Cursor is the stream position saved alongside the window state so a
// restored stream continues ID and time assignment where it left off.
type Cursor struct {
	NextID   uint64
	NextTime int64
}

// Write serializes the cursor and the joiner's live records to w.
func Write(w io.Writer, cur Cursor, j local.Joiner) error {
	if _, err := w.Write(magic); err != nil {
		return fmt.Errorf("checkpoint: writing magic: %w", err)
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], cur.NextID)
	n += binary.PutVarint(hdr[n:], cur.NextTime)
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("checkpoint: writing cursor: %w", err)
	}
	ww := wire.NewWriter(w)
	var werr error
	j.Dump(func(r *record.Record) bool {
		if err := ww.WriteRecord(true, r); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return fmt.Errorf("checkpoint: writing record: %w", werr)
	}
	if err := ww.WriteEOF(); err != nil {
		return fmt.Errorf("checkpoint: writing eof: %w", err)
	}
	return nil
}

// byteReaderAdapter lets binary.ReadUvarint consume exactly the bytes it
// needs from a plain io.Reader without buffering ahead.
type byteReaderAdapter struct{ r io.Reader }

func (b byteReaderAdapter) ReadByte() (byte, error) {
	var one [1]byte
	_, err := io.ReadFull(b.r, one[:])
	return one[0], err
}

// Read restores a checkpoint into j (which must be freshly constructed
// with the same join configuration) and returns the saved cursor and the
// number of records loaded.
func Read(r io.Reader, j local.Joiner) (Cursor, int, error) {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil {
		return Cursor{}, 0, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	for i, b := range magic {
		if got[i] != b {
			return Cursor{}, 0, errors.New("checkpoint: bad magic (not a checkpoint or wrong version)")
		}
	}
	br := byteReaderAdapter{r: r}
	nextID, err := binary.ReadUvarint(br)
	if err != nil {
		return Cursor{}, 0, fmt.Errorf("checkpoint: reading cursor id: %w", err)
	}
	nextTime, err := binary.ReadVarint(br)
	if err != nil {
		return Cursor{}, 0, fmt.Errorf("checkpoint: reading cursor time: %w", err)
	}
	cur := Cursor{NextID: nextID, NextTime: nextTime}

	rd := wire.NewReader(r)
	count := 0
	for {
		typ, err := rd.Next()
		if err != nil {
			return cur, count, fmt.Errorf("checkpoint: reading frame: %w", err)
		}
		switch typ {
		case wire.TypeRecord:
			rt, err := rd.ReadRecord()
			if err != nil {
				return cur, count, fmt.Errorf("checkpoint: decoding record: %w", err)
			}
			j.Load(rt.Rec)
			count++
		case wire.TypeEOF:
			return cur, count, nil
		default:
			return cur, count, fmt.Errorf("checkpoint: unexpected frame type %d", typ)
		}
	}
}

// WriteBi serializes a two-stream joiner's windows (both sides, with side
// flags on the wire records).
func WriteBi(w io.Writer, cur Cursor, bi *local.BiJoiner) error {
	if _, err := w.Write(magic); err != nil {
		return fmt.Errorf("checkpoint: writing magic: %w", err)
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], cur.NextID)
	n += binary.PutVarint(hdr[n:], cur.NextTime)
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("checkpoint: writing cursor: %w", err)
	}
	ww := wire.NewWriter(w)
	var werr error
	bi.DumpSides(func(r *record.Record, right bool) bool {
		if err := ww.WriteRecordSide(true, right, r); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return fmt.Errorf("checkpoint: writing record: %w", werr)
	}
	if err := ww.WriteEOF(); err != nil {
		return fmt.Errorf("checkpoint: writing eof: %w", err)
	}
	return nil
}

// ReadBi restores a checkpoint written by WriteBi into bi (freshly
// constructed with the same configuration).
func ReadBi(r io.Reader, bi *local.BiJoiner) (Cursor, int, error) {
	cur, count := Cursor{}, 0
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil {
		return cur, 0, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	for i, b := range magic {
		if got[i] != b {
			return cur, 0, errors.New("checkpoint: bad magic (not a checkpoint or wrong version)")
		}
	}
	br := byteReaderAdapter{r: r}
	nextID, err := binary.ReadUvarint(br)
	if err != nil {
		return cur, 0, fmt.Errorf("checkpoint: reading cursor id: %w", err)
	}
	nextTime, err := binary.ReadVarint(br)
	if err != nil {
		return cur, 0, fmt.Errorf("checkpoint: reading cursor time: %w", err)
	}
	cur = Cursor{NextID: nextID, NextTime: nextTime}
	rd := wire.NewReader(r)
	for {
		typ, err := rd.Next()
		if err != nil {
			return cur, count, fmt.Errorf("checkpoint: reading frame: %w", err)
		}
		switch typ {
		case wire.TypeRecord:
			rt, err := rd.ReadRecord()
			if err != nil {
				return cur, count, fmt.Errorf("checkpoint: decoding record: %w", err)
			}
			bi.LoadSide(rt.Rec, rt.Right)
			count++
		case wire.TypeEOF:
			return cur, count, nil
		default:
			return cur, count, fmt.Errorf("checkpoint: unexpected frame type %d", typ)
		}
	}
}
