package partition

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/filter"
	"repro/internal/obs"
)

// Tracker watches the stream's recent length distribution and decides when
// the active partition has drifted out of balance — the adaptive
// repartitioning extension: a static partition fitted to yesterday's
// lengths can be arbitrarily bad after the workload shifts.
//
// The tracker keeps a sliding histogram over the last WindowSize records
// (implemented as a ring of per-record lengths) so old traffic ages out,
// and evaluates the active partition's estimated imbalance against the
// optimal achievable imbalance on the current histogram.
type Tracker struct {
	model  CostModel
	ring   []int
	next   int
	filled bool
	hist   Histogram
	// liveCurrent/liveAchievable hold Float64bits of the most recent
	// Evaluate outcome so a scrape goroutine can read the imbalance while
	// the owning worker streams (the tracker itself stays single-writer).
	liveCurrent    atomic.Uint64
	liveAchievable atomic.Uint64
	// journal, when set, receives a rebalance_advice event each time
	// ShouldRepartition trips, so drift decisions land on the session
	// timeline next to the checkpoint and retry events they interact with.
	journal *obs.Journal
}

// SetJournal routes the tracker's repartition advice onto j (nil detaches).
func (t *Tracker) SetJournal(j *obs.Journal) { t.journal = j }

// NewTracker creates a tracker over a sliding window of windowSize record
// lengths (minimum 16).
func NewTracker(params filter.Params, windowSize int) *Tracker {
	if windowSize < 16 {
		windowSize = 16
	}
	t := &Tracker{
		model: CostModel{Params: params},
		ring:  make([]int, windowSize),
	}
	t.storeLive(1, 1)
	return t
}

// Observe records the next record length.
func (t *Tracker) Observe(length int) {
	if t.filled {
		old := t.ring[t.next]
		if old < len(t.hist.counts) && t.hist.counts[old] > 0 {
			t.hist.counts[old]--
			t.hist.total--
		}
	}
	t.ring[t.next] = length
	t.hist.Add(length)
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// Count reports how many lengths are inside the window.
func (t *Tracker) Count() int {
	if t.filled {
		return len(t.ring)
	}
	return t.next
}

// Snapshot returns a copy of the windowed histogram.
func (t *Tracker) Snapshot() *Histogram {
	cp := Histogram{counts: append([]uint64(nil), t.hist.counts...), total: t.hist.total}
	return &cp
}

// Evaluate returns the active partition's estimated imbalance on the
// current window and the imbalance of a freshly fitted load-aware
// partition — the achievable floor.
func (t *Tracker) Evaluate(active Partition) (current, achievable float64) {
	w := t.model.Weights(&t.hist)
	if len(w) <= 1 {
		t.storeLive(1, 1)
		return 1, 1
	}
	current = Imbalance(active, w)
	achievable = Imbalance(LoadAware(w, active.Workers()), w)
	t.storeLive(current, achievable)
	return current, achievable
}

func (t *Tracker) storeLive(current, achievable float64) {
	t.liveCurrent.Store(math.Float64bits(current))
	t.liveAchievable.Store(math.Float64bits(achievable))
}

// LiveImbalance returns the outcome of the most recent Evaluate (1, 1
// before any evaluation). Safe to call from any goroutine.
func (t *Tracker) LiveImbalance() (current, achievable float64) {
	return math.Float64frombits(t.liveCurrent.Load()),
		math.Float64frombits(t.liveAchievable.Load())
}

// RegisterMetrics binds the tracker's live imbalance readings to reg as
// gauges, so the load-aware migration decision is visible while it streams.
func (t *Tracker) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("partition_imbalance_current",
		"Estimated load imbalance of the active partition on the sliding window.",
		func() float64 { c, _ := t.LiveImbalance(); return c })
	reg.GaugeFunc("partition_imbalance_achievable",
		"Imbalance a freshly fitted load-aware partition would achieve on the same window.",
		func() float64 { _, a := t.LiveImbalance(); return a })
}

// ShouldRepartition reports whether the active partition's estimated
// imbalance exceeds the achievable imbalance by more than factor (e.g.
// 1.5 = "50% worse than what a refit would give"). It requires a full
// window so cold starts do not trigger spurious repartitions.
func (t *Tracker) ShouldRepartition(active Partition, factor float64) bool {
	if !t.filled {
		return false
	}
	current, achievable := t.Evaluate(active)
	if current <= achievable*factor {
		return false
	}
	t.journal.Append("rebalance_advice", "partition",
		fmt.Sprintf("imbalance %.3f exceeds achievable %.3f by over %.2fx; refit advised",
			current, achievable, factor))
	return true
}

// Refit returns a load-aware partition fitted to the current window, for k
// workers.
func (t *Tracker) Refit(k int) Partition {
	w := t.model.Weights(&t.hist)
	return LoadAware(w, k)
}
