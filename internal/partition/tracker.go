package partition

import "repro/internal/filter"

// Tracker watches the stream's recent length distribution and decides when
// the active partition has drifted out of balance — the adaptive
// repartitioning extension: a static partition fitted to yesterday's
// lengths can be arbitrarily bad after the workload shifts.
//
// The tracker keeps a sliding histogram over the last WindowSize records
// (implemented as a ring of per-record lengths) so old traffic ages out,
// and evaluates the active partition's estimated imbalance against the
// optimal achievable imbalance on the current histogram.
type Tracker struct {
	model  CostModel
	ring   []int
	next   int
	filled bool
	hist   Histogram
}

// NewTracker creates a tracker over a sliding window of windowSize record
// lengths (minimum 16).
func NewTracker(params filter.Params, windowSize int) *Tracker {
	if windowSize < 16 {
		windowSize = 16
	}
	return &Tracker{
		model: CostModel{Params: params},
		ring:  make([]int, windowSize),
	}
}

// Observe records the next record length.
func (t *Tracker) Observe(length int) {
	if t.filled {
		old := t.ring[t.next]
		if old < len(t.hist.counts) && t.hist.counts[old] > 0 {
			t.hist.counts[old]--
			t.hist.total--
		}
	}
	t.ring[t.next] = length
	t.hist.Add(length)
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// Count reports how many lengths are inside the window.
func (t *Tracker) Count() int {
	if t.filled {
		return len(t.ring)
	}
	return t.next
}

// Snapshot returns a copy of the windowed histogram.
func (t *Tracker) Snapshot() *Histogram {
	cp := Histogram{counts: append([]uint64(nil), t.hist.counts...), total: t.hist.total}
	return &cp
}

// Evaluate returns the active partition's estimated imbalance on the
// current window and the imbalance of a freshly fitted load-aware
// partition — the achievable floor.
func (t *Tracker) Evaluate(active Partition) (current, achievable float64) {
	w := t.model.Weights(&t.hist)
	if len(w) <= 1 {
		return 1, 1
	}
	current = Imbalance(active, w)
	achievable = Imbalance(LoadAware(w, active.Workers()), w)
	return current, achievable
}

// ShouldRepartition reports whether the active partition's estimated
// imbalance exceeds the achievable imbalance by more than factor (e.g.
// 1.5 = "50% worse than what a refit would give"). It requires a full
// window so cold starts do not trigger spurious repartitions.
func (t *Tracker) ShouldRepartition(active Partition, factor float64) bool {
	if !t.filled {
		return false
	}
	current, achievable := t.Evaluate(active)
	return current > achievable*factor
}

// Refit returns a load-aware partition fitted to the current window, for k
// workers.
func (t *Tracker) Refit(k int) Partition {
	w := t.model.Weights(&t.hist)
	return LoadAware(w, k)
}
