package partition

import (
	"math"
	"reflect"
	"testing"
)

func TestHeir(t *testing.T) {
	cases := []struct {
		alive []bool
		d     int
		want  int
		ok    bool
	}{
		{[]bool{true, false, true}, 1, 2, true},    // next alive above
		{[]bool{true, true, false}, 2, 1, true},    // nothing above: highest below
		{[]bool{false, true, true}, 0, 1, true},    // first worker dies
		{[]bool{true, false, false}, 1, 0, true},   // chain collapsed to the left
		{[]bool{false, false, false}, 1, 0, false}, // everyone dead
	}
	for i, tc := range cases {
		got, ok := Heir(tc.alive, tc.d)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("case %d: Heir(%v, %d) = %d, %v; want %d, %v",
				i, tc.alive, tc.d, got, ok, tc.want, tc.ok)
		}
	}
}

// TestHeirChainConsistency pins the invariant the FT coordinator's log
// merging depends on: when an heir later dies itself, every interval it
// held (its own plus any absorbed) moves to a single next heir.
func TestHeirChainConsistency(t *testing.T) {
	alive := []bool{true, true, true, true}
	alive[1] = false
	if h, ok := Heir(alive, 1); !ok || h != 2 {
		t.Fatalf("heir of 1 = %d, %v; want 2", h, ok)
	}
	alive[2] = false
	if h, ok := Heir(alive, 2); !ok || h != 3 {
		t.Fatalf("heir of 2 = %d, %v; want 3 (single heir for merged intervals)", h, ok)
	}
	// And when the right flank is gone, the chain flows left the same way.
	alive = []bool{true, true, false, false}
	if h, ok := Heir(alive, 3); !ok || h != 1 {
		t.Fatalf("heir of 3 = %d, %v; want 1", h, ok)
	}
}

func TestRebalance(t *testing.T) {
	orig := Partition{Bounds: []int{5, 10, 20}}
	cases := []struct {
		name  string
		alive []bool
		want  []int
	}{
		{"middle dies", []bool{true, false, true}, []int{5, 5, 20}},
		{"last dies", []bool{true, true, false}, []int{5, math.MaxInt, math.MaxInt}},
		{"first dies", []bool{false, true, true}, []int{0, 10, 20}},
	}
	for _, tc := range cases {
		got, err := Rebalance(orig, tc.alive)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got.Bounds, tc.want) {
			t.Errorf("%s: bounds = %v, want %v", tc.name, got.Bounds, tc.want)
		}
	}
}

// TestRebalanceComposesAcrossDeaths re-runs Rebalance from the ORIGINAL
// partition as deaths accumulate and checks every length routes to an
// alive worker throughout.
func TestRebalanceComposesAcrossDeaths(t *testing.T) {
	orig := Partition{Bounds: []int{5, 10, 15, 20}}
	alive := []bool{true, true, true, true}
	for _, death := range []int{1, 2} {
		alive[death] = false
		p, err := Rebalance(orig, alive)
		if err != nil {
			t.Fatal(err)
		}
		for l := 1; l <= 30; l++ {
			w := p.WorkerOf(l)
			if !alive[w] {
				t.Fatalf("after deaths up to %d: length %d routed to dead worker %d (bounds %v)",
					death, l, w, p.Bounds)
			}
		}
	}
	p, _ := Rebalance(orig, alive)
	if want := []int{5, 5, 5, 20}; !reflect.DeepEqual(p.Bounds, want) {
		t.Errorf("bounds after two deaths = %v, want %v", p.Bounds, want)
	}
}

// TestRebalanceOverlongRoutesToSurvivor guards the WorkerOf clamp: with
// the tail workers dead, over-long records must land on the highest
// survivor, not the corpse the clamp would otherwise pick.
func TestRebalanceOverlongRoutesToSurvivor(t *testing.T) {
	p, err := Rebalance(Partition{Bounds: []int{5, 10, 20}}, []bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if w := p.WorkerOf(1000); w != 0 {
		t.Errorf("over-long record routed to worker %d, want 0", w)
	}
}

func TestRebalanceErrors(t *testing.T) {
	if _, err := Rebalance(Partition{Bounds: []int{5, 10}}, []bool{false, false}); err != ErrNoSurvivors {
		t.Errorf("all dead: err = %v, want ErrNoSurvivors", err)
	}
	if _, err := Rebalance(Partition{Bounds: []int{5, 10}}, []bool{true}); err == nil {
		t.Error("mask length mismatch accepted")
	}
}
