package partition

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/filter"
	"repro/internal/similarity"
)

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Add(3)
	h.Add(3)
	h.Add(7)
	if h.Count(3) != 2 || h.Count(7) != 1 || h.Count(5) != 0 {
		t.Fatalf("counts wrong: %d %d %d", h.Count(3), h.Count(7), h.Count(5))
	}
	if h.Total() != 3 {
		t.Fatalf("total: %d", h.Total())
	}
	if h.MaxLen() != 7 {
		t.Fatalf("maxlen: %d", h.MaxLen())
	}
	h.Add(-1) // ignored
	if h.Total() != 3 {
		t.Fatal("negative length not ignored")
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.MaxLen() != 0 || h.Total() != 0 {
		t.Fatal("empty histogram")
	}
}

func TestWorkerOfAndOverlapping(t *testing.T) {
	p := Partition{Bounds: []int{10, 20, 30}}
	cases := []struct{ l, want int }{
		{1, 0}, {10, 0}, {11, 1}, {20, 1}, {21, 2}, {30, 2}, {99, 2},
	}
	for _, c := range cases {
		if got := p.WorkerOf(c.l); got != c.want {
			t.Errorf("WorkerOf(%d) = %d want %d", c.l, got, c.want)
		}
	}
	if f, l := p.Overlapping(8, 22); f != 0 || l != 2 {
		t.Fatalf("Overlapping(8,22) = %d,%d", f, l)
	}
	if f, l := p.Overlapping(12, 15); f != 1 || l != 1 {
		t.Fatalf("Overlapping(12,15) = %d,%d", f, l)
	}
}

func TestEvenLength(t *testing.T) {
	p := EvenLength(100, 4)
	if p.Workers() != 4 {
		t.Fatalf("workers: %d", p.Workers())
	}
	if p.Bounds[3] != 100 {
		t.Fatalf("last bound must cover maxLen: %v", p.Bounds)
	}
	for i := 1; i < 4; i++ {
		if p.Bounds[i] < p.Bounds[i-1] {
			t.Fatalf("bounds not monotone: %v", p.Bounds)
		}
	}
}

func TestEvenFrequencyBalancesCounts(t *testing.T) {
	var h Histogram
	// Heavy skew: 1000 records of length 5, few elsewhere.
	for i := 0; i < 1000; i++ {
		h.Add(5)
	}
	for l := 20; l < 30; l++ {
		h.Add(l)
	}
	p := EvenFrequency(&h, 2)
	// Worker 0 should take length 5 and not much more.
	if p.WorkerOf(5) != 0 {
		t.Fatalf("length 5 on worker %d", p.WorkerOf(5))
	}
	if p.WorkerOf(25) != 1 {
		t.Fatalf("length 25 on worker %d: %v", p.WorkerOf(25), p.Bounds)
	}
}

func TestCostModelWeightsMatchDirectComputation(t *testing.T) {
	params := filter.Params{Func: similarity.Jaccard, Threshold: 0.8}
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		h.Add(1 + rng.Intn(40))
	}
	m := CostModel{Params: params}
	w := m.Weights(&h)
	maxLen := h.MaxLen()
	for lp := 1; lp <= maxLen; lp++ {
		var direct float64
		f := float64(h.Count(lp))
		if f > 0 {
			lo, hi := params.LengthBounds(lp)
			for l := lo; l <= hi && l <= maxLen; l++ {
				direct += float64(h.Count(l)) * float64(l+lp)
			}
			direct *= f
		}
		if math.Abs(w[lp]-direct) > 1e-6*(1+direct) {
			t.Fatalf("weight mismatch at l=%d: got %v want %v", lp, w[lp], direct)
		}
	}
}

func TestLoadAwareBeatsBaselinesOnSkew(t *testing.T) {
	params := filter.Params{Func: similarity.Jaccard, Threshold: 0.8}
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	// Zipf-flavored length skew around short lengths.
	for i := 0; i < 20000; i++ {
		l := 1 + int(math.Floor(math.Pow(rng.Float64(), 3)*80))
		h.Add(l)
	}
	w := CostModel{Params: params}.Weights(&h)
	k := 8
	la := LoadAware(w, k)
	el := EvenLength(h.MaxLen(), k)
	ef := EvenFrequency(&h, k)
	iLA, iEL, iEF := Imbalance(la, w), Imbalance(el, w), Imbalance(ef, w)
	if iLA > iEL || iLA > iEF {
		t.Fatalf("load-aware not best: la=%v el=%v ef=%v", iLA, iEL, iEF)
	}
	if iLA > 2.0 {
		t.Fatalf("load-aware imbalance too high: %v (bounds %v)", iLA, la.Bounds)
	}
}

func TestLoadAwareIsMinimaxOptimalOnSmallInputs(t *testing.T) {
	// Exhaustive check against brute-force optimal contiguous partition.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		w := make([]float64, n+1)
		for l := 1; l <= n; l++ {
			w[l] = float64(rng.Intn(100))
		}
		for k := 1; k <= 4; k++ {
			got := maxLoad(LoadAware(w, k), w)
			want := bruteOptimal(w, k)
			if got > want+1e-9 {
				t.Fatalf("suboptimal: w=%v k=%d got %v want %v", w[1:], k, got, want)
			}
		}
	}
}

func maxLoad(p Partition, w []float64) float64 {
	var max float64
	for _, ld := range Loads(p, w) {
		if ld > max {
			max = ld
		}
	}
	return max
}

// bruteOptimal computes the optimal minimax contiguous partition by DP.
func bruteOptimal(w []float64, k int) float64 {
	n := len(w) - 1
	prefix := make([]float64, n+1)
	for l := 1; l <= n; l++ {
		prefix[l] = prefix[l-1] + w[l]
	}
	const inf = math.MaxFloat64
	dp := make([][]float64, k+1)
	for i := range dp {
		dp[i] = make([]float64, n+1)
		for j := range dp[i] {
			dp[i][j] = inf
		}
	}
	dp[0][0] = 0
	for parts := 1; parts <= k; parts++ {
		for end := 0; end <= n; end++ {
			for cut := 0; cut <= end; cut++ {
				if dp[parts-1][cut] == inf {
					continue
				}
				load := prefix[end] - prefix[cut]
				worst := dp[parts-1][cut]
				if load > worst {
					worst = load
				}
				if worst < dp[parts][end] {
					dp[parts][end] = worst
				}
			}
		}
	}
	return dp[k][n]
}

func TestLoadAwareEdgeCases(t *testing.T) {
	// All-zero weights fall back to even-length.
	p := LoadAware(make([]float64, 11), 3)
	if p.Workers() != 3 {
		t.Fatalf("workers: %d", p.Workers())
	}
	// k=1 owns everything.
	w := []float64{0, 5, 5, 5}
	p = LoadAware(w, 1)
	if p.Workers() != 1 || p.WorkerOf(2) != 0 {
		t.Fatalf("k=1: %v", p.Bounds)
	}
	// More workers than lengths.
	p = LoadAware([]float64{0, 10}, 4)
	if p.Workers() != 4 {
		t.Fatalf("padded workers: %v", p.Bounds)
	}
}

func TestPanicOnBadK(t *testing.T) {
	for _, f := range []func(){
		func() { EvenLength(10, 0) },
		func() { EvenFrequency(&Histogram{}, 0) },
		func() { LoadAware([]float64{0, 1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for k=0")
				}
			}()
			f()
		}()
	}
}

func TestImbalancePerfectSplit(t *testing.T) {
	w := []float64{0, 1, 1, 1, 1}
	p := Partition{Bounds: []int{2, 4}}
	if got := Imbalance(p, w); math.Abs(got-1) > 1e-9 {
		t.Fatalf("imbalance: got %v want 1", got)
	}
}

func TestPartitionString(t *testing.T) {
	p := Partition{Bounds: []int{5, 9}}
	if got := p.String(); got != "[(0,5] (5,9]]" {
		t.Fatalf("string: %q", got)
	}
}

// Property: every length maps to exactly one worker and Overlapping is
// consistent with WorkerOf for arbitrary partitions and ranges.
func TestPartitionPropertyCoverage(t *testing.T) {
	f := func(rawBounds []uint16, l uint16, lo, hi uint16) bool {
		if len(rawBounds) == 0 {
			return true
		}
		bounds := make([]int, 0, len(rawBounds))
		for _, b := range rawBounds {
			bounds = append(bounds, int(b))
		}
		sort.Ints(bounds)
		p := Partition{Bounds: bounds}
		w := p.WorkerOf(int(l))
		if w < 0 || w >= p.Workers() {
			return false
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		first, last := p.Overlapping(int(lo), int(hi))
		if first > last {
			return false
		}
		// Every worker owning a length inside [lo,hi] must lie in
		// [first,last].
		for x := int(lo); x <= int(hi) && x < int(lo)+200; x++ {
			wx := p.WorkerOf(x)
			if wx < first || wx > last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the load-aware partition never has a max load above the
// greedy bound sum/k + maxWeight.
func TestLoadAwareBoundProperty(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		w := make([]float64, len(raw)+1)
		var sum, maxW float64
		for i, v := range raw {
			w[i+1] = float64(v)
			sum += float64(v)
			if float64(v) > maxW {
				maxW = float64(v)
			}
		}
		p := LoadAware(w, k)
		if p.Workers() != k {
			return false
		}
		return maxLoad(p, w) <= sum/float64(k)+maxW+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
