package partition

import (
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/obs"
	"repro/internal/similarity"
)

func trackerParams() filter.Params {
	return filter.Params{Func: similarity.Jaccard, Threshold: 0.8}
}

func TestTrackerWindowSlides(t *testing.T) {
	tr := NewTracker(trackerParams(), 16)
	for i := 0; i < 16; i++ {
		tr.Observe(5)
	}
	if tr.Count() != 16 {
		t.Fatalf("count: %d", tr.Count())
	}
	h := tr.Snapshot()
	if h.Count(5) != 16 {
		t.Fatalf("snapshot count(5): %d", h.Count(5))
	}
	// Push 16 new lengths; the old ones must age out completely.
	for i := 0; i < 16; i++ {
		tr.Observe(40)
	}
	h = tr.Snapshot()
	if h.Count(5) != 0 || h.Count(40) != 16 {
		t.Fatalf("window did not slide: count(5)=%d count(40)=%d", h.Count(5), h.Count(40))
	}
	if tr.Count() != 16 {
		t.Fatalf("count after slide: %d", tr.Count())
	}
}

func TestTrackerMinimumWindow(t *testing.T) {
	tr := NewTracker(trackerParams(), 1)
	if len(tr.ring) < 16 {
		t.Fatalf("window not clamped: %d", len(tr.ring))
	}
}

func TestShouldRepartitionOnlyWhenFull(t *testing.T) {
	tr := NewTracker(trackerParams(), 32)
	active := Partition{Bounds: []int{1, 100}}
	tr.Observe(50)
	if tr.ShouldRepartition(active, 1.1) {
		t.Fatal("cold tracker triggered repartition")
	}
}

func TestTrackerDetectsDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTracker(trackerParams(), 512)
	// Phase A: short records around 5-15. Fit a partition to it.
	for i := 0; i < 512; i++ {
		tr.Observe(5 + rng.Intn(11))
	}
	active := tr.Refit(4)
	if tr.ShouldRepartition(active, 1.3) {
		cur, ach := tr.Evaluate(active)
		t.Fatalf("freshly fitted partition flagged: cur=%v ach=%v", cur, ach)
	}
	// Phase B: drift to long records 80-200.
	for i := 0; i < 512; i++ {
		tr.Observe(80 + rng.Intn(121))
	}
	if !tr.ShouldRepartition(active, 1.3) {
		cur, ach := tr.Evaluate(active)
		t.Fatalf("drift not detected: cur=%v ach=%v active=%v", cur, ach, active.Bounds)
	}
	// Refitting clears the alarm.
	refit := tr.Refit(4)
	if tr.ShouldRepartition(refit, 1.3) {
		t.Fatal("refit partition still flagged")
	}
}

func TestTrackerEvaluateEmptyWindow(t *testing.T) {
	tr := NewTracker(trackerParams(), 32)
	cur, ach := tr.Evaluate(Partition{Bounds: []int{10}})
	if cur != 1 || ach != 1 {
		t.Fatalf("empty evaluate: %v %v", cur, ach)
	}
}

// TestTrackerJournalsRebalanceAdvice pins the observability hook: a
// tripping drift check lands a rebalance_advice event on the journal, a
// quiet one stays silent, and a nil journal is safe.
func TestTrackerJournalsRebalanceAdvice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTracker(trackerParams(), 512)
	j := obs.NewJournal(16)
	tr.SetJournal(j)
	for i := 0; i < 512; i++ {
		tr.Observe(5 + rng.Intn(11))
	}
	active := tr.Refit(4)
	if tr.ShouldRepartition(active, 1.3) {
		t.Fatal("freshly fitted partition flagged")
	}
	if j.Appended() != 0 {
		t.Fatalf("quiet check journaled %d events", j.Appended())
	}
	for i := 0; i < 512; i++ {
		tr.Observe(80 + rng.Intn(121))
	}
	if !tr.ShouldRepartition(active, 1.3) {
		t.Fatal("drift not detected")
	}
	evs := j.Recent(0)
	if len(evs) != 1 || evs[0].Type != "rebalance_advice" || evs[0].Component != "partition" {
		t.Fatalf("journal = %+v", evs)
	}
	tr.SetJournal(nil)
	if !tr.ShouldRepartition(active, 1.3) {
		t.Fatal("nil journal changed the decision")
	}
}
