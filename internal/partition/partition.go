// Package partition implements the length-domain partitioning behind the
// length-based distribution framework: the stream's record-length histogram
// feeds a local-join cost model, and a partitioner splits the length domain
// into contiguous per-worker intervals. Three strategies are provided —
// even-length and even-frequency baselines, and the load-aware partitioner
// that balances estimated join cost, which is the paper's contribution.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/filter"
)

// Histogram counts records by set size. The zero value is ready to use.
type Histogram struct {
	counts []uint64
	total  uint64
}

// Add records one observation of a record with the given length.
func (h *Histogram) Add(length int) {
	if length < 0 {
		return
	}
	for len(h.counts) <= length {
		h.counts = append(h.counts, 0)
	}
	h.counts[length]++
	h.total++
}

// Count returns the number of observed records with exactly the given
// length.
func (h *Histogram) Count(length int) uint64 {
	if length < 0 || length >= len(h.counts) {
		return 0
	}
	return h.counts[length]
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// MaxLen returns the largest observed length (0 when empty).
func (h *Histogram) MaxLen() int {
	for l := len(h.counts) - 1; l >= 0; l-- {
		if h.counts[l] > 0 {
			return l
		}
	}
	return 0
}

// CostModel estimates the local join cost each stored-record length
// contributes under the length-based framework. A stored record of length
// l' is probed by every future record of a compatible length l, and each
// such probe costs about l+l' merge steps; with f the length frequency,
//
//	w(l') = f(l') · Σ_{l compatible with l'} f(l) · (l + l')
//
// which collapses to two prefix sums. Per-worker cost is then the sum of
// w over the worker's interval, so minimizing the maximum interval sum
// balances the load.
type CostModel struct {
	Params filter.Params
}

// Weights returns w indexed by length 1..h.MaxLen() (index 0 unused).
func (m CostModel) Weights(h *Histogram) []float64 {
	maxLen := h.MaxLen()
	w := make([]float64, maxLen+1)
	if maxLen == 0 {
		return w
	}
	// prefix sums of f and l·f
	s0 := make([]float64, maxLen+2)
	s1 := make([]float64, maxLen+2)
	for l := 1; l <= maxLen; l++ {
		f := float64(h.Count(l))
		s0[l+1] = s0[l] + f
		s1[l+1] = s1[l] + float64(l)*f
	}
	sum := func(s []float64, lo, hi int) float64 { // inclusive range
		if lo < 1 {
			lo = 1
		}
		if hi > maxLen {
			hi = maxLen
		}
		if lo > hi {
			return 0
		}
		return s[hi+1] - s[lo]
	}
	for lp := 1; lp <= maxLen; lp++ {
		f := float64(h.Count(lp))
		if f == 0 {
			continue
		}
		lo, hi := m.Params.LengthBounds(lp)
		w[lp] = f * (sum(s1, lo, hi) + float64(lp)*sum(s0, lo, hi))
	}
	return w
}

// Partition assigns contiguous length intervals to workers. Bounds[i] is
// the inclusive upper length owned by worker i; worker i owns lengths
// (Bounds[i-1], Bounds[i]], worker 0 additionally owns everything below,
// and the last worker owns everything above its bound. Bounds is
// non-decreasing with len(Bounds) == number of workers.
type Partition struct {
	Bounds []int
}

// Workers returns the worker count.
func (p Partition) Workers() int { return len(p.Bounds) }

// WorkerOf returns the worker owning records of the given length.
func (p Partition) WorkerOf(length int) int {
	i := sort.SearchInts(p.Bounds, length)
	if i >= len(p.Bounds) {
		i = len(p.Bounds) - 1
	}
	return i
}

// Overlapping returns the inclusive worker index range whose intervals
// intersect the length range [lo, hi] — the probe fan-out of the
// length-based framework.
func (p Partition) Overlapping(lo, hi int) (first, last int) {
	first = p.WorkerOf(lo)
	last = p.WorkerOf(hi)
	return first, last
}

// String renders the interval list.
func (p Partition) String() string {
	out := "["
	prev := 0
	for i, b := range p.Bounds {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("(%d,%d]", prev, b)
		prev = b
	}
	return out + "]"
}

// EvenLength splits [1, maxLen] into k equal-width intervals — the
// simplest baseline, oblivious to both frequency and cost.
func EvenLength(maxLen, k int) Partition {
	if k < 1 {
		panic("partition: k must be >= 1")
	}
	if maxLen < 1 {
		maxLen = 1
	}
	bounds := make([]int, k)
	for i := 0; i < k; i++ {
		bounds[i] = maxLen * (i + 1) / k
		if bounds[i] < 1 {
			bounds[i] = 1
		}
	}
	bounds[k-1] = maxLen
	return Partition{Bounds: bounds}
}

// EvenFrequency splits the length domain so each worker stores roughly the
// same number of records — frequency-aware but cost-oblivious.
func EvenFrequency(h *Histogram, k int) Partition {
	if k < 1 {
		panic("partition: k must be >= 1")
	}
	maxLen := h.MaxLen()
	if maxLen == 0 {
		return EvenLength(1, k)
	}
	per := float64(h.Total()) / float64(k)
	bounds := make([]int, 0, k)
	var acc float64
	for l := 1; l <= maxLen && len(bounds) < k-1; l++ {
		acc += float64(h.Count(l))
		if acc >= per*float64(len(bounds)+1) {
			bounds = append(bounds, l)
		}
	}
	for len(bounds) < k {
		bounds = append(bounds, maxLen)
	}
	return Partition{Bounds: bounds}
}

// LoadAware partitions the weight array (from CostModel.Weights) into k
// contiguous intervals minimizing the maximum interval weight. Binary
// search over the answer with a greedy feasibility check yields the optimal
// minimax split in O(len(w) · log(sum/min)).
func LoadAware(w []float64, k int) Partition {
	if k < 1 {
		panic("partition: k must be >= 1")
	}
	maxLen := len(w) - 1
	if maxLen < 1 {
		return EvenLength(1, k)
	}
	var lo, hi float64
	for l := 1; l <= maxLen; l++ {
		if w[l] > lo {
			lo = w[l]
		}
		hi += w[l]
	}
	if hi == 0 {
		return EvenLength(maxLen, k)
	}
	// Binary search the smallest cap for which a greedy split uses <= k
	// intervals.
	for i := 0; i < 60 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if segmentsNeeded(w, mid) <= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	bounds := greedySplit(w, hi, k)
	return Partition{Bounds: bounds}
}

// segmentsNeeded counts greedy intervals under the cap.
func segmentsNeeded(w []float64, cap float64) int {
	segs := 1
	var acc float64
	for l := 1; l < len(w); l++ {
		if acc+w[l] > cap && acc > 0 {
			segs++
			acc = 0
		}
		acc += w[l]
	}
	return segs
}

// greedySplit materializes interval bounds under the cap, padding or
// merging to exactly k workers.
func greedySplit(w []float64, cap float64, k int) []int {
	maxLen := len(w) - 1
	bounds := make([]int, 0, k)
	var acc float64
	for l := 1; l <= maxLen; l++ {
		if acc+w[l] > cap && acc > 0 && len(bounds) < k-1 {
			bounds = append(bounds, l-1)
			acc = 0
		}
		acc += w[l]
	}
	for len(bounds) < k {
		bounds = append(bounds, maxLen)
	}
	return bounds
}

// Imbalance evaluates a partition against the weights: it returns the ratio
// of the heaviest worker's weight to the mean worker weight (1.0 is
// perfect; k is worst).
func Imbalance(p Partition, w []float64) float64 {
	k := p.Workers()
	loads := Loads(p, w)
	var sum, max float64
	for _, ld := range loads {
		sum += ld
		if ld > max {
			max = ld
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(k))
}

// Loads sums the weights per worker interval.
func Loads(p Partition, w []float64) []float64 {
	loads := make([]float64, p.Workers())
	for l := 1; l < len(w); l++ {
		loads[p.WorkerOf(l)] += w[l]
	}
	return loads
}
