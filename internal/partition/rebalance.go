package partition

import (
	"errors"
	"math"
)

// ErrNoSurvivors is returned by Rebalance when every worker is dead.
var ErrNoSurvivors = errors.New("partition: no surviving workers")

// Heir returns the surviving worker that absorbs dead worker d's length
// interval under Rebalance: the next alive worker above d, or — when
// nothing above d survives — the highest alive worker below it. ok is
// false when no worker is alive.
//
// The next-else-last rule has a property the fault-tolerant coordinator
// depends on: the intervals owned by an alive worker (its own plus any it
// absorbed) always form a contiguous run ending at that worker, so when it
// dies in turn, every interval it held moves to the SAME heir. Merged
// replay logs therefore never need to be split.
func Heir(alive []bool, d int) (int, bool) {
	for i := d + 1; i < len(alive); i++ {
		if alive[i] {
			return i, true
		}
	}
	for i := d - 1; i >= 0; i-- {
		if alive[i] {
			return i, true
		}
	}
	return 0, false
}

// Rebalance reassigns dead workers' length intervals onto survivors,
// producing new bounds over the SAME worker count (task indices are wire
// identities and cannot shift). A dead worker's interval collapses to
// empty and its lengths flow to Heir(alive, d). p must be the original
// partition: the result is computed fresh from it, so repeated deaths
// compose without drift.
//
// The returned bounds keep the Partition invariants WorkerOf relies on: a
// dead worker's bound equals its left edge (empty interval), and when the
// last workers are all dead the highest survivor's bound is raised to
// MaxInt so WorkerOf's clamp can never route an over-long record to a
// corpse.
func Rebalance(p Partition, alive []bool) (Partition, error) {
	k := len(p.Bounds)
	if len(alive) != k {
		return Partition{}, errors.New("partition: alive mask length mismatch")
	}
	lastAlive := -1
	for i := k - 1; i >= 0; i-- {
		if alive[i] {
			lastAlive = i
			break
		}
	}
	if lastAlive < 0 {
		return Partition{}, ErrNoSurvivors
	}
	nb := make([]int, k)
	edge := 0
	for i := 0; i < k; i++ {
		if alive[i] {
			edge = p.Bounds[i]
		}
		nb[i] = edge
	}
	if lastAlive < k-1 {
		for i := lastAlive; i < k; i++ {
			nb[i] = math.MaxInt
		}
	}
	return Partition{Bounds: nb}, nil
}
