package similarity

import (
	"math/rand"
	"testing"

	"repro/internal/tokens"
)

// genSorted returns n distinct ascending ranks drawn from [0, universe).
func genSorted(rng *rand.Rand, n, universe int) []tokens.Rank {
	if n > universe {
		n = universe
	}
	seen := make(map[tokens.Rank]bool, n)
	out := make([]tokens.Rank, 0, n)
	for len(out) < n {
		v := tokens.Rank(rng.Intn(universe))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sortRanks(out)
	return out
}

// TestKernelsAgreeRandomized drives every kernel against the linear
// reference across random set shapes, including heavy skew (the gallop
// target) and clustered ranks (the bitset target).
func TestKernelsAgreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var pa, pb Packed
	for i := 0; i < 2000; i++ {
		la, lb := rng.Intn(80), rng.Intn(80)
		if i%3 == 0 { // force skew
			lb = la*16 + rng.Intn(40)
		}
		universe := 1 + rng.Intn(400)
		a := genSorted(rng, la, universe)
		b := genSorted(rng, lb, universe)
		want := IntersectSize(a, b)

		if got, _ := IntersectSizeGallop(a, b); got != want {
			t.Fatalf("iter %d: gallop=%d want %d (a=%v b=%v)", i, got, want, a, b)
		}
		PackInto(&pa, a)
		PackInto(&pb, b)
		if pa.N != len(a) || pb.N != len(b) {
			t.Fatalf("iter %d: PackInto N mismatch: %d/%d want %d/%d", i, pa.N, pb.N, len(a), len(b))
		}
		if got, _ := IntersectSizePacked(&pa, &pb); got != want {
			t.Fatalf("iter %d: bitset=%d want %d (a=%v b=%v)", i, got, want, a, b)
		}

		// Bounded variants must agree with VerifyOverlap on the ok
		// decision for every requirement, and return the exact overlap
		// whenever ok.
		for _, req := range []int{0, 1, want, want + 1, len(a)} {
			wantOK := want >= req || req <= 0
			if o, _, ok := VerifyOverlapGallop(a, b, req); ok != wantOK || (ok && o != want) {
				t.Fatalf("iter %d req %d: gallop verify (%d,%v) want (%d,%v)", i, req, o, ok, want, wantOK)
			}
			if o, _, ok := VerifyOverlapPacked(&pa, &pb, req); ok != wantOK || (ok && o != want) {
				t.Fatalf("iter %d req %d: bitset verify (%d,%v) want (%d,%v)", i, req, o, ok, want, wantOK)
			}
		}
	}
}

// TestKernelEdgeShapes pins the boundary shapes: empty sides, identical
// sets, disjoint sets, single elements at block boundaries.
func TestKernelEdgeShapes(t *testing.T) {
	cases := []struct{ a, b []tokens.Rank }{
		{nil, nil},
		{nil, ranks(1, 2, 3)},
		{ranks(5), nil},
		{ranks(1, 2, 3), ranks(1, 2, 3)},
		{ranks(1, 2, 3), ranks(4, 5, 6)},
		{ranks(63, 64, 127, 128), ranks(63, 128)}, // 64-rank block boundaries
		{ranks(0), ranks(0)},
		{ranks(1 << 20), ranks(1<<20-1, 1<<20, 1<<20+1)},
	}
	var pa, pb Packed
	for i, c := range cases {
		want := IntersectSize(c.a, c.b)
		if got, _ := IntersectSizeGallop(c.a, c.b); got != want {
			t.Fatalf("case %d: gallop=%d want %d", i, got, want)
		}
		PackInto(&pa, c.a)
		PackInto(&pb, c.b)
		if got, _ := IntersectSizePacked(&pa, &pb); got != want {
			t.Fatalf("case %d: bitset=%d want %d", i, got, want)
		}
	}
}

// TestKernelConfigDispatch pins the auto-dispatch decisions the bundle
// hot path relies on.
func TestKernelConfigDispatch(t *testing.T) {
	k := KernelConfig{}.WithDefaults()
	if k.GallopRatio != 8 || k.BitsetMinLen != 64 {
		t.Fatalf("defaults: %+v", k)
	}
	packOf := func(set []tokens.Rank) *Packed {
		p := &Packed{}
		PackInto(p, set)
		return p
	}
	dense := make([]tokens.Rank, 100) // ranks 0..99: two blocks, 50 bits/word
	sparse := make([]tokens.Rank, 100)
	for i := range dense {
		dense[i] = tokens.Rank(i)
		sparse[i] = tokens.Rank(i * 64) // one block per rank: 1 bit/word
	}
	dp, sp := packOf(dense), packOf(sparse)
	if got := k.Choose(10, 100, nil, nil); got != KernelGallop {
		t.Fatalf("skewed unpacked: %v", got)
	}
	if got := k.Choose(100, 10, nil, nil); got != KernelGallop {
		t.Fatalf("skew is symmetric: %v", got)
	}
	if got := k.Choose(100, 100, dp, dp); got != KernelBitset {
		t.Fatalf("near-equal dense packed: %v", got)
	}
	if got := k.Choose(100, 100, sp, sp); got != KernelLinear {
		t.Fatalf("sparse packed must not dispatch to bitset: %v", got)
	}
	if got := k.Choose(100, 100, dp, nil); got != KernelLinear {
		t.Fatalf("near-equal half-packed: %v", got)
	}
	forced := (KernelConfig{Mode: KernelBitset}).WithDefaults()
	if got := forced.Choose(100, 100, sp, sp); got != KernelBitset {
		t.Fatalf("forced bitset must skip the density guard: %v", got)
	}
	if got := forced.Choose(3, 5, nil, sp); got != KernelLinear {
		t.Fatalf("forced bitset without packed forms must fall back: %v", got)
	}
	for _, mode := range []Kernel{KernelAuto, KernelLinear, KernelGallop, KernelBitset} {
		back, err := ParseKernel(mode.String())
		if err != nil || back != mode {
			t.Fatalf("round trip %v: %v %v", mode, back, err)
		}
	}
	if _, err := ParseKernel("simd"); err == nil {
		t.Fatal("unknown kernel name must error")
	}
	seq := func(n, stride int) []tokens.Rank {
		s := make([]tokens.Rank, n)
		for i := range s {
			s[i] = tokens.Rank(i * stride)
		}
		return s
	}
	if !(KernelConfig{Mode: KernelBitset}).WithDefaults().ShouldPack(seq(1, 1)) {
		t.Fatal("forced bitset packs everything")
	}
	if k.ShouldPack(seq(63, 1)) || !k.ShouldPack(seq(64, 1)) {
		t.Fatal("auto packs dense sets at BitsetMinLen")
	}
	if k.ShouldPack(seq(64, 64)) {
		t.Fatal("auto must not pack a sparse set (one rank per block)")
	}
	if (KernelConfig{Mode: KernelLinear}).WithDefaults().ShouldPack(seq(1000, 1)) {
		t.Fatal("linear mode never packs")
	}
}

// fuzzRanks decodes fuzz bytes into an ascending, deduplicated rank
// slice: each byte is a positive delta (clamped to >= 1), so any input
// yields a valid sorted set.
func fuzzRanks(data []byte) []tokens.Rank {
	out := make([]tokens.Rank, 0, len(data))
	cur := tokens.Rank(0)
	for _, d := range data {
		cur += tokens.Rank(d%97) + 1
		out = append(out, cur)
	}
	return out
}

// FuzzIntersectKernels differentially tests the galloping and bitset
// kernels (and the scratch Into ops under the documented dst = a[:0]
// aliasing contract) against the linear-merge reference.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, uint8(2))
	f.Add([]byte{}, []byte{5}, uint8(0))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, []byte{4, 4}, uint8(3))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, reqByte uint8) {
		a := fuzzRanks(rawA)
		b := fuzzRanks(rawB)
		want := IntersectSize(a, b)
		req := int(reqByte) % (want + 2)

		if got, _ := IntersectSizeGallop(a, b); got != want {
			t.Fatalf("gallop=%d want %d", got, want)
		}
		if o, _, ok := VerifyOverlapGallop(a, b, req); ok != (want >= req) || (ok && o != want) {
			t.Fatalf("gallop verify req=%d: (%d,%v) want (%d,%v)", req, o, ok, want, want >= req)
		}

		var pa, pb Packed
		PackInto(&pa, a)
		PackInto(&pb, b)
		if got, _ := IntersectSizePacked(&pa, &pb); got != want {
			t.Fatalf("bitset=%d want %d", got, want)
		}
		if o, _, ok := VerifyOverlapPacked(&pa, &pb, req); ok != (want >= req) || (ok && o != want) {
			t.Fatalf("bitset verify req=%d: (%d,%v) want (%d,%v)", req, o, ok, want, want >= req)
		}

		// Scratch ops under the in-place aliasing contract.
		ac := append([]tokens.Rank(nil), a...)
		got := IntersectInto(ac[:0], ac, b)
		if len(got) != want {
			t.Fatalf("in-place IntersectInto len=%d want %d", len(got), want)
		}
		ac = append(ac[:0], a...)
		if got := SubtractInto(ac[:0], ac, b); len(got) != len(a)-want {
			t.Fatalf("in-place SubtractInto len=%d want %d", len(got), len(a)-want)
		}
	})
}

// benchSets builds a deterministic (short, long) pair with roughly half
// the short side present in the long side, at the given length ratio.
func benchSets(short, long int) (a, b []tokens.Rank) {
	rng := rand.New(rand.NewSource(1234))
	b = genSorted(rng, long, long*4)
	a = make([]tokens.Rank, 0, short)
	seen := make(map[tokens.Rank]bool)
	for len(a) < short/2 { // half from b
		v := b[rng.Intn(len(b))]
		if !seen[v] {
			seen[v] = true
			a = append(a, v)
		}
	}
	for len(a) < short { // half fresh
		v := tokens.Rank(rng.Intn(long * 4))
		if !seen[v] {
			seen[v] = true
			a = append(a, v)
		}
	}
	sortRanks(a)
	return a, b
}

// The BenchmarkIntersect* family measures each kernel across the size
// ratios that drive dispatch (1:1, 1:16, 1:256). CI asserts 0 allocs/op
// on all of them: the packed variants reuse pre-built Packed forms, the
// way the bundle index caches them.
func benchmarkKernels(b *testing.B, short, long int) {
	sa, sb := benchSets(short, long)
	var pa, pb Packed
	PackInto(&pa, sa)
	PackInto(&pb, sb)
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = IntersectSize(sa, sb)
		}
	})
	b.Run("gallop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink, _ = IntersectSizeGallop(sa, sb)
		}
	})
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink, _ = IntersectSizePacked(&pa, &pb)
		}
	})
	b.Run("pack-reuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			PackInto(&pa, sa)
		}
	})
}

// TestPackedBatchDense pins the word-batched popcount fast path against
// the scalar reference on contiguous runs: aligned, misaligned (word
// lists equal but offset in rank space), and tails shorter than one
// batch. words totals must match the unbatched definition (one unit per
// merged word) so kernel step accounting is batch-invariant.
func TestPackedBatchDense(t *testing.T) {
	shapes := []struct {
		name   string
		sa, sb []tokens.Rank
	}{
		{"aligned-full", contigRanks(0, 512), contigRanks(0, 512)},
		{"half-overlap", contigRanks(0, 512), contigRanks(256, 512)},
		{"word-misaligned", contigRanks(0, 512), contigRanks(7, 512)},
		{"short-tail", contigRanks(0, 200), contigRanks(64, 200)},
		{"sub-batch", contigRanks(0, 128), contigRanks(64, 128)},
		{"disjoint-runs", append(contigRanks(0, 128), contigRanks(1024, 128)...), append(contigRanks(64, 128), contigRanks(1024+64, 128)...)},
	}
	for _, s := range shapes {
		var pa, pb Packed
		PackInto(&pa, s.sa)
		PackInto(&pb, s.sb)
		want := IntersectSize(s.sa, s.sb)
		got, words := IntersectSizePacked(&pa, &pb)
		if got != want {
			t.Fatalf("%s: IntersectSizePacked = %d, want %d", s.name, got, want)
		}
		// Equal-word merges advance both lists together, so the word
		// total is the merge length regardless of batching.
		if wantWords := mergeWords(pa.Words, pb.Words); words != wantWords {
			t.Fatalf("%s: words = %d, want %d", s.name, words, wantWords)
		}
		for _, req := range []int{0, 1, want, want + 1, len(s.sa)} {
			o, _, ok := VerifyOverlapPacked(&pa, &pb, req)
			if ok != (want >= req) {
				t.Fatalf("%s: VerifyOverlapPacked(req=%d) ok = %v, want %v", s.name, req, ok, want >= req)
			}
			if ok && o != want {
				t.Fatalf("%s: VerifyOverlapPacked(req=%d) overlap = %d, want %d", s.name, req, o, want)
			}
		}
	}
}

// mergeWords is the scalar reference for the packed kernels' words
// counter: one unit per merge iteration of the word lists.
func mergeWords(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		n++
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

var sink int

func BenchmarkIntersectEven(b *testing.B)    { benchmarkKernels(b, 1024, 1024) }
func BenchmarkIntersectSkew16(b *testing.B)  { benchmarkKernels(b, 64, 1024) }
func BenchmarkIntersectSkew256(b *testing.B) { benchmarkKernels(b, 16, 4096) }

// contigRanks returns n consecutive ranks starting at base: every 64-rank
// block is fully populated, so the packed form's word list is one
// contiguous run and the bitset kernel's word-batched fast path fires on
// every merge step.
func contigRanks(base, n int) []tokens.Rank {
	s := make([]tokens.Rank, n)
	for i := range s {
		s[i] = tokens.Rank(base + i)
	}
	return s
}

// BenchmarkIntersectDense pits the bitset kernel against fully
// contiguous rank runs with 50% overlap — the shape where the 4-word
// popcount batch carries the whole merge. Kept under the same 0
// allocs/op CI gate as the sparse BenchmarkIntersect* cases.
func BenchmarkIntersectDense(b *testing.B) {
	const n = 4096
	sa := contigRanks(0, n)
	sb := contigRanks(n/2, n)
	var pa, pb Packed
	PackInto(&pa, sa)
	PackInto(&pb, sb)
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink, _ = IntersectSizePacked(&pa, &pb)
		}
	})
	b.Run("bitset-verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink, _, _ = VerifyOverlapPacked(&pa, &pb, n/2)
		}
	})
	b.Run("gallop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink, _ = IntersectSizeGallop(sa, sb)
		}
	})
}
