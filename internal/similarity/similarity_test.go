package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tokens"
)

func set(rs ...tokens.Rank) []tokens.Rank { return rs }

func TestOfJaccard(t *testing.T) {
	a := set(1, 2, 3, 4)
	b := set(3, 4, 5, 6)
	// overlap 2, union 6
	if got, want := Of(Jaccard, a, b), 2.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("jaccard: got %v want %v", got, want)
	}
}

func TestOfCosineDiceOverlap(t *testing.T) {
	a := set(1, 2, 3, 4)
	b := set(3, 4, 5, 6)
	if got, want := Of(Cosine, a, b), 2.0/4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("cosine: got %v want %v", got, want)
	}
	if got, want := Of(Dice, a, b), 4.0/8.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("dice: got %v want %v", got, want)
	}
	if got := Of(Overlap, a, b); got != 2 {
		t.Fatalf("overlap: got %v want 2", got)
	}
}

func TestOfIdenticalSetsIsOne(t *testing.T) {
	a := set(2, 4, 6)
	for _, f := range []Func{Jaccard, Cosine, Dice} {
		if got := Of(f, a, a); math.Abs(got-1) > 1e-12 {
			t.Errorf("%v(a,a) = %v, want 1", f, got)
		}
	}
}

func TestOfEmptySets(t *testing.T) {
	for _, f := range []Func{Jaccard, Cosine, Dice} {
		if got := Of(f, nil, nil); got != 0 {
			t.Errorf("%v(∅,∅) = %v, want 0", f, got)
		}
		if got := Of(f, set(1), nil); got != 0 {
			t.Errorf("%v(a,∅) = %v, want 0", f, got)
		}
	}
}

func TestMinMaxSizeJaccardExactArithmetic(t *testing.T) {
	// τ=0.7, l=10: bounds are ceil(7)=7 and floor(10/0.7)=14.
	if got := MinSize(Jaccard, 0.7, 10); got != 7 {
		t.Fatalf("MinSize: got %d want 7", got)
	}
	if got := MaxSize(Jaccard, 0.7, 10); got != 14 {
		t.Fatalf("MaxSize: got %d want 14", got)
	}
	// τ=0.5, l=4: [2, 8]
	if got := MinSize(Jaccard, 0.5, 4); got != 2 {
		t.Fatalf("MinSize: got %d want 2", got)
	}
	if got := MaxSize(Jaccard, 0.5, 4); got != 8 {
		t.Fatalf("MaxSize: got %d want 8", got)
	}
}

func TestRequiredOverlapJaccard(t *testing.T) {
	// τ=0.8, la=lb=10: ceil(0.8/1.8*20) = ceil(8.888) = 9
	if got := RequiredOverlap(Jaccard, 0.8, 10, 10); got != 9 {
		t.Fatalf("got %d want 9", got)
	}
	// Overlap o >= α iff jaccard >= τ must hold at the boundary:
	// o=9: 9/11 = 0.818 >= 0.8 ✓; o=8: 8/12 = 0.667 < 0.8 ✓
}

func TestRequiredOverlapMatchesDefinition(t *testing.T) {
	// For all sizes and achievable overlaps: sim >= τ ⇔ o >= RequiredOverlap.
	for _, tau := range []float64{0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95} {
		for la := 1; la <= 30; la++ {
			for lb := 1; lb <= 30; lb++ {
				req := RequiredOverlap(Jaccard, tau, la, lb)
				maxO := la
				if lb < maxO {
					maxO = lb
				}
				for o := 0; o <= maxO; o++ {
					sim := FromOverlap(Jaccard, o, la, lb)
					if (sim >= tau-1e-12) != (o >= req) {
						t.Fatalf("τ=%v la=%d lb=%d o=%d: sim=%v req=%d",
							tau, la, lb, o, sim, req)
					}
				}
			}
		}
	}
}

func TestLengthBoundsAreTight(t *testing.T) {
	// For every function and (la, lb) with lb inside [MinSize, MaxSize] of
	// la, identical overlap lb==la case must be achievable. Conversely a
	// partner outside the bounds can never reach τ even with full overlap.
	for _, f := range []Func{Jaccard, Cosine, Dice} {
		for _, tau := range []float64{0.6, 0.7, 0.8, 0.9} {
			for la := 1; la <= 40; la++ {
				lo := MinSize(f, tau, la)
				hi := MaxSize(f, tau, la)
				for lb := 1; lb <= 2*la+4; lb++ {
					maxO := la
					if lb < maxO {
						maxO = lb
					}
					best := FromOverlap(f, maxO, la, lb)
					reachable := best >= tau-1e-12
					inside := lb >= lo && lb <= hi
					if reachable != inside {
						t.Fatalf("%v τ=%v la=%d lb=%d: reachable=%v inside=[%d,%d]",
							f, tau, la, lb, reachable, lo, hi)
					}
				}
			}
		}
	}
}

func TestPrefixLenJaccard(t *testing.T) {
	// l=10, τ=0.8: p = 10 - 8 + 1 = 3
	if got := PrefixLen(Jaccard, 0.8, 10); got != 3 {
		t.Fatalf("got %d want 3", got)
	}
	if got := PrefixLen(Jaccard, 0.8, 0); got != 0 {
		t.Fatalf("empty: got %d want 0", got)
	}
	if got := PrefixLen(Jaccard, 0.99, 1); got != 1 {
		t.Fatalf("tiny: got %d want 1", got)
	}
}

// TestPrefixFilterComplete is the correctness theorem behind the whole
// system: any pair reaching the threshold must share a token within their
// symmetric prefixes, for every supported function.
func TestPrefixFilterComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, f := range []Func{Jaccard, Cosine, Dice} {
		for _, tau := range []float64{0.6, 0.7, 0.8, 0.9} {
			for trial := 0; trial < 300; trial++ {
				a := randomSet(rng, 1+rng.Intn(20), 40)
				b := randomSet(rng, 1+rng.Intn(20), 40)
				if Of(f, a, b) < tau {
					continue
				}
				pa := PrefixLen(f, tau, len(a))
				pb := PrefixLen(f, tau, len(b))
				if IntersectSize(a[:pa], b[:pb]) == 0 {
					t.Fatalf("%v τ=%v: similar pair with disjoint prefixes\na=%v (p=%d)\nb=%v (p=%d) sim=%v",
						f, tau, a, pa, b, pb, Of(f, a, b))
				}
			}
		}
	}
}

func randomSet(rng *rand.Rand, n, universe int) []tokens.Rank {
	seen := make(map[tokens.Rank]bool)
	out := make([]tokens.Rank, 0, n)
	for len(out) < n {
		r := tokens.Rank(rng.Intn(universe))
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return tokens.Dedup(out)
}

func TestIntersectSize(t *testing.T) {
	if got := IntersectSize(set(1, 2, 3), set(2, 3, 4)); got != 2 {
		t.Fatalf("got %d want 2", got)
	}
	if got := IntersectSize(nil, set(1)); got != 0 {
		t.Fatalf("got %d want 0", got)
	}
}

func TestVerifyOverlap(t *testing.T) {
	a := set(1, 2, 3, 4, 5)
	b := set(2, 4, 6, 8, 10)
	o, ok := VerifyOverlap(a, b, 2)
	if !ok || o != 2 {
		t.Fatalf("got (%d,%v) want (2,true)", o, ok)
	}
	if _, ok := VerifyOverlap(a, b, 3); ok {
		t.Fatal("requirement 3 should fail (true overlap is 2)")
	}
}

func TestVerifyOverlapZeroRequiredReturnsExact(t *testing.T) {
	a := set(1, 2, 3)
	b := set(3)
	o, ok := VerifyOverlap(a, b, 0)
	if !ok || o != 1 {
		t.Fatalf("got (%d,%v) want (1,true)", o, ok)
	}
}

func TestVerifyOverlapMatchesIntersectProperty(t *testing.T) {
	f := func(xs, ys []uint32, reqRaw uint8) bool {
		a := tokens.Dedup(append([]tokens.Rank{}, xs...))
		b := tokens.Dedup(append([]tokens.Rank{}, ys...))
		req := int(reqRaw % 16)
		truth := IntersectSize(a, b)
		o, ok := VerifyOverlap(a, b, req)
		if ok != (truth >= req) {
			return false
		}
		if ok && o != truth {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyOverlapFromResumesCorrectly(t *testing.T) {
	a := set(1, 2, 3, 4, 5, 6)
	b := set(1, 2, 3, 4, 5, 6)
	// Pretend candidate generation matched prefix tokens a[0..1] and b[0..1]
	// with overlap 2; resuming from (2,2,2) must find total 6.
	o, ok := VerifyOverlapFrom(a, b, 2, 2, 2, 6)
	if !ok || o != 6 {
		t.Fatalf("got (%d,%v) want (6,true)", o, ok)
	}
	if _, ok := VerifyOverlapFrom(a, b, 2, 2, 2, 7); ok {
		t.Fatal("requirement 7 cannot be met")
	}
}

func TestFuncStringRoundTrip(t *testing.T) {
	for _, f := range []Func{Jaccard, Cosine, Dice, Overlap} {
		got, err := ParseFunc(f.String())
		if err != nil || got != f {
			t.Fatalf("round trip %v: got %v err %v", f, got, err)
		}
	}
	if _, err := ParseFunc("nope"); err == nil {
		t.Fatal("expected error for unknown func name")
	}
}

func TestOverlapFuncThresholdSemantics(t *testing.T) {
	// Overlap threshold is an absolute count.
	if got := MinSize(Overlap, 3, 10); got != 3 {
		t.Fatalf("MinSize: got %d want 3", got)
	}
	if got := RequiredOverlap(Overlap, 3, 10, 20); got != 3 {
		t.Fatalf("RequiredOverlap: got %d want 3", got)
	}
	if got := MaxSize(Overlap, 3, 10); got != math.MaxInt32 {
		t.Fatalf("MaxSize: got %d want MaxInt32", got)
	}
	if got := PrefixLen(Overlap, 3, 10); got != 8 {
		t.Fatalf("PrefixLen: got %d want 8", got)
	}
}

func TestCosineAndDiceBounds(t *testing.T) {
	// Cosine τ=0.8, l=10: min ⌈0.64·10⌉=7, max ⌊10/0.64⌋=15, prefix 10-7+1=4.
	if got := MinSize(Cosine, 0.8, 10); got != 7 {
		t.Fatalf("cosine MinSize: %d", got)
	}
	if got := MaxSize(Cosine, 0.8, 10); got != 15 {
		t.Fatalf("cosine MaxSize: %d", got)
	}
	if got := PrefixLen(Cosine, 0.8, 10); got != 4 {
		t.Fatalf("cosine PrefixLen: %d", got)
	}
	// Cosine required overlap la=9, lb=16: ⌈0.8·12⌉=10.
	if got := RequiredOverlap(Cosine, 0.8, 9, 16); got != 10 {
		t.Fatalf("cosine RequiredOverlap: %d", got)
	}
	// Dice τ=0.8, l=10: min ⌈(0.8/1.2)·10⌉=7, max ⌊1.2/0.8·10⌋=15.
	if got := MinSize(Dice, 0.8, 10); got != 7 {
		t.Fatalf("dice MinSize: %d", got)
	}
	if got := MaxSize(Dice, 0.8, 10); got != 15 {
		t.Fatalf("dice MaxSize: %d", got)
	}
	// Dice required overlap 10+10: ⌈0.8/2·20⌉=8.
	if got := RequiredOverlap(Dice, 0.8, 10, 10); got != 8 {
		t.Fatalf("dice RequiredOverlap: %d", got)
	}
}

func TestRequiredOverlapMatchesDefinitionCosineDice(t *testing.T) {
	for _, f := range []Func{Cosine, Dice} {
		for _, tau := range []float64{0.6, 0.75, 0.9} {
			for la := 1; la <= 25; la++ {
				for lb := 1; lb <= 25; lb++ {
					req := RequiredOverlap(f, tau, la, lb)
					maxO := la
					if lb < maxO {
						maxO = lb
					}
					for o := 0; o <= maxO; o++ {
						sim := FromOverlap(f, o, la, lb)
						if (sim >= tau-1e-12) != (o >= req) {
							t.Fatalf("%v τ=%v la=%d lb=%d o=%d: sim=%v req=%d",
								f, tau, la, lb, o, sim, req)
						}
					}
				}
			}
		}
	}
}

func TestVerifyOverlapFromEarlyAbort(t *testing.T) {
	a := set(1, 2, 3, 100, 200, 300)
	b := set(1, 2, 3, 400, 500, 600)
	// After matching the 3-token prefix, 3 more are required but the
	// suffixes are disjoint: the merge must abort without reaching the end.
	o, ok := VerifyOverlapFrom(a, b, 3, 3, 3, 6)
	if ok {
		t.Fatal("impossible requirement satisfied")
	}
	if o > 3 {
		t.Fatalf("overlap overcounted: %d", o)
	}
}

func TestFuncStringUnknown(t *testing.T) {
	if got := Func(99).String(); got != "Func(99)" {
		t.Fatalf("unknown func string: %q", got)
	}
}
