// Verification kernels: interchangeable set-intersection routines behind
// one dispatch configuration. The linear merge in similarity.go is the
// reference; this file adds
//
//   - a galloping (exponential-search) merge for skewed length ratios,
//     where the short side drives binary probes into the long side, and
//   - a word-packed bitset intersection over a sparse block
//     representation (Packed), where 64 ranks are tested per AND+popcount,
//
// together with KernelConfig, which picks a kernel per merge shape. Every
// kernel computes the exact intersection size, so the join's emitted
// matches are byte-identical for any kernel choice — only the work
// profile changes. The bounded variants share VerifyOverlap's contract:
// ok reports whether the requirement was met, and the returned overlap is
// exact when ok and a meaningless lower bound when !ok.
package similarity

import (
	"fmt"
	"math/bits"

	"repro/internal/tokens"
)

// Kernel selects an intersection routine.
type Kernel uint8

const (
	// KernelAuto picks per merge: galloping when the length ratio reaches
	// GallopRatio, bitset when both sides carry a Packed form dense
	// enough for the word merge to beat the element merge, linear
	// otherwise. The default.
	KernelAuto Kernel = iota
	// KernelLinear forces the reference linear merge.
	KernelLinear
	// KernelGallop forces the galloping merge.
	KernelGallop
	// KernelBitset forces the word-packed bitset intersection (falling
	// back to linear when a side has no Packed form).
	KernelBitset
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelLinear:
		return "linear"
	case KernelGallop:
		return "gallop"
	case KernelBitset:
		return "bitset"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel converts a name produced by String back into a Kernel.
func ParseKernel(name string) (Kernel, error) {
	switch name {
	case "", "auto":
		return KernelAuto, nil
	case "linear":
		return KernelLinear, nil
	case "gallop":
		return KernelGallop, nil
	case "bitset":
		return KernelBitset, nil
	default:
		return 0, fmt.Errorf("similarity: unknown kernel %q", name)
	}
}

// KernelConfig tunes kernel dispatch. The zero value means auto with
// default cutoffs; WithDefaults materializes them.
type KernelConfig struct {
	// Mode selects the kernel (KernelAuto by default).
	Mode Kernel
	// GallopRatio is the minimum len(long)/len(short) ratio at which auto
	// dispatch prefers the galloping merge (default 8). The galloping
	// merge costs O(short · log(long/short)); below the ratio the linear
	// merge's branch-predictable scan wins.
	GallopRatio int
	// BitsetMinLen is the minimum set length at which a Packed bitset
	// representation is built and cached in auto mode (default 64).
	// Below it the packing overhead exceeds the popcount advantage.
	// Length is necessary but not sufficient: auto additionally
	// requires the set's rank span to prove density (see ShouldPack).
	BitsetMinLen int
	// AdaptiveMinLen lets the joiner re-estimate BitsetMinLen
	// periodically from the realized kernel mix instead of keeping the
	// static cutoff (see bundle.Index's adaptTick). Off by default.
	// Adaptation moves packing eligibility only — every kernel computes
	// exact overlaps — so it never changes the emitted matches.
	AdaptiveMinLen bool
}

// WithDefaults fills zero fields with the default cutoffs.
func (k KernelConfig) WithDefaults() KernelConfig {
	if k.GallopRatio == 0 {
		k.GallopRatio = 8
	}
	if k.BitsetMinLen == 0 {
		k.BitsetMinLen = 64
	}
	return k
}

// ShouldPack reports whether set (ascending, deduplicated ranks) should
// carry a cached Packed form under this configuration: always in forced
// bitset mode, never in linear/gallop mode. Auto mode packs only when
// the set is long enough (BitsetMinLen) AND provably dense: the rank
// span bounds the occupied block count from above, so span ≤ 32·n
// guarantees an average of at least two set bits per word. Sets over a
// wide vocabulary (span ≫ 32·n) can never win the word merge, and
// skipping the pack keeps the insert path — where unions are repacked on
// every member add — free of maintenance cost the verify phase would
// never repay (E21, Enron-like: packing alone cost ~15% throughput).
func (k KernelConfig) ShouldPack(set []tokens.Rank) bool {
	n := len(set)
	switch k.Mode {
	case KernelBitset:
		return n > 0
	case KernelAuto:
		if n < k.BitsetMinLen {
			return false
		}
		span := int(set[n-1]) - int(set[0])
		return span <= 32*n
	default:
		return false
	}
}

// Choose picks the kernel for one merge of an la-element set against an
// lb-element set; ap/bp are the sides' cached Packed forms, nil when a
// side has none.
//
// Auto dispatch consults density, not just availability: the block merge
// runs up to len(ap.Words)+len(bp.Words) iterations, each heavier than a
// linear merge step (word loads, AND, and — in the bounded variant — two
// popcounts for the remaining-overlap bound). On sparse rank sets, where
// nearly every rank sits in its own block, that is the same iteration
// count as the linear merge at roughly twice the per-step cost, and the
// bitset kernel measures ~1.5× *slower* end-to-end (E21, Enron-like).
// Auto therefore takes the bitset path only when the merge averages at
// least two set bits per occupied word across both sides — i.e. the word
// walk is at most half as long as the element walk. Forced bitset mode
// skips the guard so sweeps and parity tests can pin the kernel.
//
// hotpath: zero-alloc — runs once per verification merge.
func (k KernelConfig) Choose(la, lb int, ap, bp *Packed) Kernel {
	switch k.Mode {
	case KernelLinear:
		return KernelLinear
	case KernelGallop:
		return KernelGallop
	case KernelBitset:
		if ap != nil && bp != nil {
			return KernelBitset
		}
		return KernelLinear
	}
	short, long := la, lb
	if short > long {
		short, long = long, short
	}
	if long >= short*k.GallopRatio {
		return KernelGallop
	}
	if ap != nil && bp != nil && len(ap.Words)+len(bp.Words) <= (la+lb)/4 {
		return KernelBitset
	}
	return KernelLinear
}

// ---------------------------------------------------------------- gallop --

// gallopTo returns the smallest index i >= from with b[i] >= x, probing
// exponentially from `from` and binary-searching the final window. probes
// counts comparisons, the galloping merge's unit of work.
//
// hotpath: zero-alloc — runs once per short-side element.
func gallopTo(b []tokens.Rank, from int, x tokens.Rank) (idx, probes int) {
	n := len(b)
	if from >= n || b[from] >= x {
		return from, 1
	}
	// Exponential probe: window (from+step/2, from+step] with b[lo] < x.
	step := 1
	lo := from
	for lo+step < n && b[lo+step] < x {
		lo += step
		step <<= 1
		probes++
	}
	hi := lo + step
	if hi > n {
		hi = n
	}
	// Binary search in (lo, hi): b[lo] < x <= b[hi] (virtual +inf at n).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		probes++
		if b[mid] < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, probes + 1
}

// IntersectSizeGallop computes |a∩b| by galloping the shorter side
// through the longer. Both slices must be ascending.
//
// hotpath: zero-alloc — verification inner loop.
func IntersectSizeGallop(a, b []tokens.Rank) (o, probes int) {
	if len(a) > len(b) {
		a, b = b, a
	}
	j := 0
	for i := 0; i < len(a) && j < len(b); i++ {
		idx, p := gallopTo(b, j, a[i])
		probes += p
		j = idx
		if j < len(b) && b[j] == a[i] {
			o++
			j++
		}
	}
	return o, probes
}

// VerifyOverlapGallop decides |a∩b| >= required by galloping merge with
// early termination (VerifyOverlap's contract: exact overlap when ok).
//
// hotpath: zero-alloc — verification inner loop.
func VerifyOverlapGallop(a, b []tokens.Rank, required int) (o, probes int, ok bool) {
	if len(a) > len(b) {
		a, b = b, a
	}
	j := 0
	for i := 0; i < len(a) && j < len(b); i++ {
		rest := len(a) - i
		if lb := len(b) - j; lb < rest {
			rest = lb
		}
		if o+rest < required {
			return o, probes, false
		}
		idx, p := gallopTo(b, j, a[i])
		probes += p
		j = idx
		if j < len(b) && b[j] == a[i] {
			o++
			j++
		}
	}
	return o, probes, o >= required
}

// ---------------------------------------------------------------- bitset --

// Packed is the word-packed bitset form of an ascending rank slice: Words
// holds the 64-rank block indices (rank >> 6) that contain at least one
// member, ascending and deduplicated, and Bits holds the matching
// occupancy words (bit k of Bits[i] set iff rank Words[i]*64 + k is
// present). N caches the total popcount, i.e. the set size. For clustered
// rank sets the representation tests up to 64 ranks per AND+popcount; in
// the worst case (every rank in its own block) it degrades to a merge
// with one popcount per element, which still matches the linear kernel's
// asymptotics.
type Packed struct {
	Words []uint32
	Bits  []uint64
	N     int
}

// PackInto overwrites p with the packed form of set (ascending,
// deduplicated ranks), reusing p's backing slices. The amortized cost is
// one pass over set with no allocation once the slices have grown.
func PackInto(p *Packed, set []tokens.Rank) {
	p.Words = p.Words[:0]
	p.Bits = p.Bits[:0]
	p.N = len(set)
	for _, r := range set {
		w := uint32(r >> 6)
		bit := uint64(1) << (r & 63)
		if n := len(p.Words); n > 0 && p.Words[n-1] == w {
			p.Bits[n-1] |= bit
			continue
		}
		p.Words = append(p.Words, w)
		p.Bits = append(p.Bits, bit)
	}
}

// IntersectSizePacked computes |a∩b| by merging the block lists and
// popcounting matching words. words counts merge iterations, the bitset
// kernel's unit of work (a word batch counts its width, so totals are
// identical to the unbatched merge).
//
// Dense sets take the word-batched fast path: Words is strictly
// ascending, so equal endpoints spanning exactly 3 blocks prove both
// runs are the contiguous w..w+3 — four AND+popcounts with no per-word
// branching. Clustered rank sets (the ones auto dispatch packs) spend
// most of the merge there.
//
// hotpath: zero-alloc — verification inner loop.
func IntersectSizePacked(a, b *Packed) (o, words int) {
	i, j := 0, 0
	for i < len(a.Words) && j < len(b.Words) {
		if i+3 < len(a.Words) && j+3 < len(b.Words) &&
			a.Words[i] == b.Words[j] && a.Words[i+3] == b.Words[j+3] &&
			a.Words[i+3]-a.Words[i] == 3 {
			o += bits.OnesCount64(a.Bits[i]&b.Bits[j]) +
				bits.OnesCount64(a.Bits[i+1]&b.Bits[j+1]) +
				bits.OnesCount64(a.Bits[i+2]&b.Bits[j+2]) +
				bits.OnesCount64(a.Bits[i+3]&b.Bits[j+3])
			words += 4
			i += 4
			j += 4
			continue
		}
		words++
		switch {
		case a.Words[i] == b.Words[j]:
			o += bits.OnesCount64(a.Bits[i] & b.Bits[j])
			i++
			j++
		case a.Words[i] < b.Words[j]:
			i++
		default:
			j++
		}
	}
	return o, words
}

// VerifyOverlapPacked decides |a∩b| >= required over packed forms with
// early termination: remaining popcounts bound the reachable overlap
// exactly, so the scan aborts as soon as the requirement is out of reach
// (VerifyOverlap's contract: exact overlap when ok).
//
// Contiguous equal runs take the same word-batched popcount fast path
// as IntersectSizePacked: the infeasibility bound is tested once per
// batch instead of once per word, which may delay an abort by at most
// three words but never changes the decision — ok remains exactly
// |a∩b| >= required.
//
// hotpath: zero-alloc — verification inner loop.
func VerifyOverlapPacked(a, b *Packed, required int) (o, words int, ok bool) {
	remA, remB := a.N, b.N
	i, j := 0, 0
	for i < len(a.Words) && j < len(b.Words) {
		rest := remA
		if remB < rest {
			rest = remB
		}
		if o+rest < required {
			return o, words, false
		}
		if i+3 < len(a.Words) && j+3 < len(b.Words) &&
			a.Words[i] == b.Words[j] && a.Words[i+3] == b.Words[j+3] &&
			a.Words[i+3]-a.Words[i] == 3 {
			o += bits.OnesCount64(a.Bits[i]&b.Bits[j]) +
				bits.OnesCount64(a.Bits[i+1]&b.Bits[j+1]) +
				bits.OnesCount64(a.Bits[i+2]&b.Bits[j+2]) +
				bits.OnesCount64(a.Bits[i+3]&b.Bits[j+3])
			remA -= bits.OnesCount64(a.Bits[i]) + bits.OnesCount64(a.Bits[i+1]) +
				bits.OnesCount64(a.Bits[i+2]) + bits.OnesCount64(a.Bits[i+3])
			remB -= bits.OnesCount64(b.Bits[j]) + bits.OnesCount64(b.Bits[j+1]) +
				bits.OnesCount64(b.Bits[j+2]) + bits.OnesCount64(b.Bits[j+3])
			words += 4
			i += 4
			j += 4
			continue
		}
		words++
		switch {
		case a.Words[i] == b.Words[j]:
			o += bits.OnesCount64(a.Bits[i] & b.Bits[j])
			remA -= bits.OnesCount64(a.Bits[i])
			remB -= bits.OnesCount64(b.Bits[j])
			i++
			j++
		case a.Words[i] < b.Words[j]:
			remA -= bits.OnesCount64(a.Bits[i])
			i++
		default:
			remB -= bits.OnesCount64(b.Bits[j])
			j++
		}
	}
	return o, words, o >= required
}
