package similarity

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/tokens"
)

func ranks(xs ...tokens.Rank) []tokens.Rank { return xs }

// refIntersect/refSubtract are the obviously-correct references the Into
// variants are checked against.
func refIntersect(a, b []tokens.Rank) []tokens.Rank {
	var out []tokens.Rank
	return IntersectInto(out, a, b)
}

func refSubtract(a, b []tokens.Rank) []tokens.Rank {
	var out []tokens.Rank
	return SubtractInto(out, a, b)
}

// sameRanks compares element-wise, treating nil and empty as equal (the
// Into ops return dst's empty prefix untouched when nothing matches).
func sameRanks(a, b []tokens.Rank) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIntoInPlaceAliasing checks the documented in-place idiom: dst = a[:0]
// must produce the same result as a fresh destination, for both set ops,
// including the boundary shapes (identical sets, disjoint sets, one side
// empty) where the write cursor runs closest to the read cursor.
func TestIntoInPlaceAliasing(t *testing.T) {
	cases := []struct{ a, b []tokens.Rank }{
		{ranks(1, 3, 5, 7), ranks(3, 4, 5)},
		{ranks(1, 2, 3), ranks(1, 2, 3)}, // identical: every element kept by ∩
		{ranks(1, 2, 3), ranks(7, 8)},    // disjoint: every element kept by \
		{ranks(1, 2, 3), nil},            // empty b
		{nil, ranks(1, 2)},               // empty a
		{ranks(2, 4, 6, 8, 10), ranks(1, 2, 3, 4, 9, 10)},
	}
	for i, c := range cases {
		wantI := refIntersect(c.a, c.b)
		ac := append([]tokens.Rank(nil), c.a...)
		if got := IntersectInto(ac[:0], ac, c.b); !sameRanks(got, wantI) {
			t.Fatalf("case %d: in-place intersect: got %v want %v", i, got, wantI)
		}
		wantS := refSubtract(c.a, c.b)
		ac = append([]tokens.Rank(nil), c.a...)
		if got := SubtractInto(ac[:0], ac, c.b); !sameRanks(got, wantS) {
			t.Fatalf("case %d: in-place subtract: got %v want %v", i, got, wantS)
		}
	}
}

// TestIntoInPlaceRandomized drives the in-place idiom across random sorted
// sets — the cursor-chasing argument must hold for every overlap shape.
func TestIntoInPlaceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	gen := func() []tokens.Rank {
		n := rng.Intn(30)
		seen := make(map[tokens.Rank]bool)
		var out []tokens.Rank
		for len(out) < n {
			v := tokens.Rank(rng.Intn(40))
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		sortRanks(out)
		return out
	}
	for i := 0; i < 500; i++ {
		a, b := gen(), gen()
		wantI, wantS := refIntersect(a, b), refSubtract(a, b)
		ac := append([]tokens.Rank(nil), a...)
		if got := IntersectInto(ac[:0], ac, b); !sameRanks(got, wantI) {
			t.Fatalf("iter %d: intersect(%v, %v): got %v want %v", i, a, b, got, wantI)
		}
		ac = append([]tokens.Rank(nil), a...)
		if got := SubtractInto(ac[:0], ac, b); !sameRanks(got, wantS) {
			t.Fatalf("iter %d: subtract(%v, %v): got %v want %v", i, a, b, got, wantS)
		}
	}
}

func sortRanks(xs []tokens.Rank) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestIntoZeroCapGrowth: a nil or zero-capacity destination must grow
// without disturbing the inputs, and the result must not share backing
// storage with either input after growth.
func TestIntoZeroCapGrowth(t *testing.T) {
	a := ranks(1, 2, 3, 4, 5, 6, 7, 8)
	b := ranks(2, 4, 6, 8, 10)
	aCopy := append([]tokens.Rank(nil), a...)
	bCopy := append([]tokens.Rank(nil), b...)

	for name, dst := range map[string][]tokens.Rank{
		"nil":     nil,
		"zerocap": make([]tokens.Rank, 0),
	} {
		got := IntersectInto(dst, a, b)
		if !reflect.DeepEqual(got, ranks(2, 4, 6, 8)) {
			t.Fatalf("%s: intersect: %v", name, got)
		}
		got[0] = 99 // must not write through to a or b
		if !reflect.DeepEqual(a, aCopy) || !reflect.DeepEqual(b, bCopy) {
			t.Fatalf("%s: growth aliased an input: a=%v b=%v", name, a, b)
		}
		got = SubtractInto(dst, a, b)
		if !reflect.DeepEqual(got, ranks(1, 3, 5, 7)) {
			t.Fatalf("%s: subtract: %v", name, got)
		}
	}
}

// TestIntoAppendsAfterPrefix: both ops append after dst's existing
// elements — the contract the bundle code relies on when it chains results
// into one scratch buffer.
func TestIntoAppendsAfterPrefix(t *testing.T) {
	dst := ranks(100)
	dst = IntersectInto(dst, ranks(1, 2), ranks(2, 3))
	dst = SubtractInto(dst, ranks(4, 5), ranks(5))
	if !reflect.DeepEqual(dst, ranks(100, 2, 4)) {
		t.Fatalf("chained result: %v", dst)
	}
}

// TestScratchConcurrent hammers the pooled scratch from many goroutines —
// run under -race this is the regression gate for the verifier pool's
// per-goroutine scratch discipline: buffers from GetRanks are exclusively
// owned between Get and Put, shared inputs are read-only, and results
// computed into pooled scratch (including in-place over a private copy)
// stay correct under interleaving.
func TestScratchConcurrent(t *testing.T) {
	a := ranks(1, 3, 5, 7, 9, 11, 13)
	b := ranks(3, 4, 7, 8, 11, 12)
	wantI := refIntersect(a, b)
	wantS := refSubtract(a, b)

	const goroutines = 8
	const iters = 300
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				buf := GetRanks()
				*buf = IntersectInto((*buf)[:0], a, b)
				if !sameRanks(*buf, wantI) {
					errs <- "intersect into pooled scratch diverged"
					PutRanks(buf)
					return
				}
				*buf = SubtractInto((*buf)[:0], a, b)
				if !sameRanks(*buf, wantS) {
					errs <- "subtract into pooled scratch diverged"
					PutRanks(buf)
					return
				}
				// In-place over a private copy staged in a second pooled
				// buffer — the verifier-local usage pattern.
				tmp := GetRanks()
				*tmp = append((*tmp)[:0], a...)
				*tmp = IntersectInto((*tmp)[:0], *tmp, b)
				if !sameRanks(*tmp, wantI) {
					errs <- "in-place intersect in pooled scratch diverged"
					PutRanks(tmp)
					PutRanks(buf)
					return
				}
				PutRanks(tmp)
				PutRanks(buf)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
