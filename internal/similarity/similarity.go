// Package similarity implements the set-similarity functions the join
// supports (Jaccard, Cosine, Dice, Overlap) together with the
// threshold-derived bounds every filter relies on: compatible length ranges,
// required overlaps, and prefix lengths. All bound computations are exact on
// integers — a tiny epsilon absorbs float rounding so that, e.g.,
// ceil(0.7*10) is 7 and not 8.
package similarity

import (
	"fmt"
	"math"

	"repro/internal/tokens"
)

// Func enumerates the supported similarity functions.
type Func int

const (
	// Jaccard is |x∩y| / |x∪y|.
	Jaccard Func = iota
	// Cosine is |x∩y| / sqrt(|x|·|y|).
	Cosine
	// Dice is 2·|x∩y| / (|x|+|y|).
	Dice
	// Overlap is the absolute intersection size |x∩y|; thresholds are
	// integral counts rather than fractions.
	Overlap
)

// String implements fmt.Stringer.
func (f Func) String() string {
	switch f {
	case Jaccard:
		return "jaccard"
	case Cosine:
		return "cosine"
	case Dice:
		return "dice"
	case Overlap:
		return "overlap"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// ParseFunc converts a name produced by String back into a Func.
func ParseFunc(name string) (Func, error) {
	switch name {
	case "jaccard":
		return Jaccard, nil
	case "cosine":
		return Cosine, nil
	case "dice":
		return Dice, nil
	case "overlap":
		return Overlap, nil
	default:
		return 0, fmt.Errorf("similarity: unknown function %q", name)
	}
}

const eps = 1e-9

func ceilMul(t float64, l int) int {
	return int(math.Ceil(t*float64(l) - eps))
}

func floorDiv(l int, t float64) int {
	return int(math.Floor(float64(l)/t + eps))
}

// Of computes the similarity of two ascending rank slices.
func Of(f Func, a, b []tokens.Rank) float64 {
	o := IntersectSize(a, b)
	return FromOverlap(f, o, len(a), len(b))
}

// FromOverlap converts an intersection size into a similarity value given
// the two set sizes. Empty operands yield 0 for the fractional functions.
func FromOverlap(f Func, o, la, lb int) float64 {
	switch f {
	case Jaccard:
		u := la + lb - o
		if u == 0 {
			return 0
		}
		return float64(o) / float64(u)
	case Cosine:
		if la == 0 || lb == 0 {
			return 0
		}
		return float64(o) / math.Sqrt(float64(la)*float64(lb))
	case Dice:
		if la+lb == 0 {
			return 0
		}
		return 2 * float64(o) / float64(la+lb)
	case Overlap:
		return float64(o)
	default:
		panic("similarity: unknown Func")
	}
}

// MinSize returns the smallest partner size a record of size l can match at
// threshold t, per the length filter.
func MinSize(f Func, t float64, l int) int {
	switch f {
	case Jaccard:
		return ceilMul(t, l)
	case Cosine:
		return ceilMul(t*t, l)
	case Dice:
		return ceilMul(t/(2-t), l)
	case Overlap:
		return int(math.Ceil(t - eps))
	default:
		panic("similarity: unknown Func")
	}
}

// MaxSize returns the largest partner size a record of size l can match at
// threshold t. For Overlap there is no upper bound; math.MaxInt32 stands in.
func MaxSize(f Func, t float64, l int) int {
	switch f {
	case Jaccard:
		return floorDiv(l, t)
	case Cosine:
		return floorDiv(l, t*t)
	case Dice:
		return int(math.Floor(float64(l)*(2-t)/t + eps))
	case Overlap:
		return math.MaxInt32
	default:
		panic("similarity: unknown Func")
	}
}

// RequiredOverlap returns the minimum intersection size two records of
// sizes la and lb must share to reach threshold t (the equivalence between
// similarity thresholds and overlap thresholds that drives all filtering).
func RequiredOverlap(f Func, t float64, la, lb int) int {
	switch f {
	case Jaccard:
		return int(math.Ceil(t/(1+t)*float64(la+lb) - eps))
	case Cosine:
		return int(math.Ceil(t*math.Sqrt(float64(la)*float64(lb)) - eps))
	case Dice:
		return int(math.Ceil(t/2*float64(la+lb) - eps))
	case Overlap:
		return int(math.Ceil(t - eps))
	default:
		panic("similarity: unknown Func")
	}
}

// PrefixLen returns the symmetric ("mid") prefix length for a record of
// size l: any two records with similarity >= t must share a token within
// their first PrefixLen tokens under the global ordering, regardless of
// arrival order. It equals l - MinSize(l) + 1 because the required overlap
// with any compatible partner is at least MinSize(l).
func PrefixLen(f Func, t float64, l int) int {
	if l == 0 {
		return 0
	}
	p := l - MinSize(f, t, l) + 1
	if p < 1 {
		p = 1
	}
	if p > l {
		p = l
	}
	return p
}

// IntersectSize computes |a∩b| by linear merge of ascending rank slices.
func IntersectSize(a, b []tokens.Rank) int {
	i, j, o := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			o++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return o
}

// VerifyOverlap decides whether |a∩b| >= required, merging with early
// termination: the scan aborts as soon as the remaining elements cannot
// reach the requirement. It returns the final overlap when the requirement
// is met (ok=true); when ok=false the returned overlap is a lower bound
// seen before aborting and must not be used as the true intersection size.
func VerifyOverlap(a, b []tokens.Rank, required int) (overlap int, ok bool) {
	if required <= 0 {
		return IntersectSize(a, b), true
	}
	i, j, o := 0, 0, 0
	for i < len(a) && j < len(b) {
		rest := len(a) - i
		if lb := len(b) - j; lb < rest {
			rest = lb
		}
		if o+rest < required {
			return o, false
		}
		switch {
		case a[i] == b[j]:
			o++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return o, o >= required
}

// VerifyOverlapFrom behaves like VerifyOverlap but starts the merge at
// positions (i, j) with an already-accumulated overlap o. Prefix-based
// joiners use it to avoid re-scanning the prefix portion they already
// compared during candidate generation.
func VerifyOverlapFrom(a, b []tokens.Rank, i, j, o, required int) (overlap int, ok bool) {
	for i < len(a) && j < len(b) {
		rest := len(a) - i
		if lb := len(b) - j; lb < rest {
			rest = lb
		}
		if o+rest < required {
			return o, false
		}
		switch {
		case a[i] == b[j]:
			o++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return o, o >= required
}
