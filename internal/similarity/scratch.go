package similarity

import (
	"sync"

	"repro/internal/tokens"
)

// rankScratch recycles rank-slice scratch buffers across goroutines.
// Joiners use them for candidate and verification intermediates (trial
// intersections, released-token sets) whose lifetime is one probe or
// insert, keeping the join hot loop allocation-flat. sync.Pool is
// internally synchronized; the slices themselves are owned exclusively by
// the borrower between Get and Put.
var rankScratch = sync.Pool{New: func() interface{} {
	b := make([]tokens.Rank, 0, 64)
	return &b
}}

// GetRanks borrows an empty rank buffer from the pool. Return it with
// PutRanks when the intermediate result is no longer referenced.
func GetRanks() *[]tokens.Rank {
	b := rankScratch.Get().(*[]tokens.Rank)
	*b = (*b)[:0]
	return b
}

// PutRanks returns a buffer borrowed with GetRanks. The caller must not
// retain any alias to the slice afterwards.
func PutRanks(b *[]tokens.Rank) { rankScratch.Put(b) }

// IntersectInto appends a∩b (both ascending) to dst and returns it —
// the allocation-free counterpart of building a fresh intersection slice.
// dst may be a pooled scratch buffer, or may alias a's backing array from
// index 0 (dst = a[:0], the in-place idiom): the write cursor never passes
// the read cursor, so a is consumed before it is overwritten. dst must not
// otherwise overlap a, and must never alias b.
func IntersectInto(dst, a, b []tokens.Rank) []tokens.Rank {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst
}

// SubtractInto appends a\b (both ascending) to dst and returns it. dst may
// be a pooled scratch buffer, or may alias a's backing array from index 0
// (dst = a[:0], same argument as IntersectInto). dst must not otherwise
// overlap a, and must never alias b.
func SubtractInto(dst, a, b []tokens.Rank) []tokens.Rank {
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j < len(b) && b[j] == a[i] {
			i++
			j++
			continue
		}
		dst = append(dst, a[i])
		i++
	}
	return dst
}
