// Package topology assembles the distributed streaming set-similarity join:
// a source spout replaying the record stream, a dispatcher bolt applying a
// distribution strategy, worker bolts hosting local joiners, and a sink
// collecting result pairs and latency. It is the glue between the stream
// engine substrate and the join algorithms, and the unit the experiment
// harness runs.
package topology

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/bundle"
	"repro/internal/checkpoint"
	"repro/internal/dispatch"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/reorder"
	"repro/internal/stream"
	"repro/internal/window"
)

// RecTuple carries one record from source through dispatcher to workers.
// Enq is the ingestion wall-clock time used for latency measurement; Right
// marks the record's stream side in two-stream (R⋈S) runs and is always
// false for self-joins.
type RecTuple struct {
	Rec   *record.Record
	Enq   time.Time
	Right bool
	// Trace is non-nil on the 1-in-N tuples the run's Tracer sampled; each
	// stage appends its span to it. Nil on the unsampled fast path.
	Trace *obs.Trace
}

// SizeBytes approximates the wire size: record header (id + time + length)
// plus 4 bytes per token.
func (t *RecTuple) SizeBytes() int { return 24 + 4*len(t.Rec.Tokens) }

// recSlab hands out RecTuples in chunks so spouts pay one allocation per
// chunk instead of one interface-boxing allocation per record. Tuples are
// never recycled — a chunk is garbage once its last tuple is processed —
// so the slab needs no synchronization beyond the single spout goroutine.
type recSlab struct {
	chunk []RecTuple
}

const recSlabChunk = 256

func (s *recSlab) get() *RecTuple {
	if len(s.chunk) == 0 {
		s.chunk = make([]RecTuple, recSlabChunk)
	}
	rt := &s.chunk[0]
	s.chunk = s.chunk[1:]
	return rt
}

// ResultTuple carries one verified join pair from a worker to the sink. It
// travels as a pointer recycled through resultPool: the sink returns each
// tuple after reading it, so result-heavy joins do not allocate per pair.
type ResultTuple struct {
	Pair record.Pair
	Enq  time.Time
	// Trace and ParentSpan carry the sampled lineage (if any) from the
	// worker that verified the pair to the sink; the sink clears both
	// before recycling the tuple.
	Trace      *obs.Trace
	ParentSpan int
}

// SizeBytes implements stream.Tuple.
func (*ResultTuple) SizeBytes() int { return 24 }

// resultPool recycles ResultTuples between the worker bolts (Get) and the
// sink (Put). sync.Pool is internally synchronized, so concurrent workers
// and the sink need no further locking.
var resultPool = sync.Pool{New: func() interface{} { return new(ResultTuple) }}

// Config specifies one join topology run.
type Config struct {
	// Workers is the joiner parallelism (required, >= 1).
	Workers int
	// Strategy distributes records to workers (required).
	Strategy dispatch.Strategy
	// Algorithm selects the local joiner (default Prefix).
	Algorithm local.Algorithm
	// Params are the join function and threshold (required).
	Params filter.Params
	// Window bounds join partners (default unbounded).
	Window window.Policy
	// Bundle tunes the Bundled algorithm.
	Bundle bundle.Config
	// QueueCap is the per-task queue capacity in transport batches
	// (default: enough batches to buffer ~1024 tuples).
	QueueCap int
	// BatchSize is the transport micro-batch size: tuples accumulated per
	// destination before a channel send (default 64; 1 disables batching).
	BatchSize int
	// CollectPairs keeps every result pair in memory (tests and small
	// runs); otherwise the sink only counts.
	CollectPairs bool
	// WireNsPerByte simulates cluster network cost: every worker burns
	// this many nanoseconds of CPU per received tuple byte before
	// processing it, modelling deserialization and NIC work that loopback
	// channels skip. Zero (default) disables the simulation; see
	// EXPERIMENTS.md E16 for calibration guidance.
	WireNsPerByte int
	// Parallelism sizes each worker's verifier pool: P-1 helper goroutines
	// per worker task fan candidate-bundle verification out across cores,
	// with results merged back in deterministic order so any P produces
	// the byte-identical result stream of a sequential run (Bundled
	// algorithm only; see bundle.ProbePar). 0 or 1 keeps workers strictly
	// single-threaded. Note the total goroutine budget is
	// Workers × Parallelism.
	Parallelism int
	// Dispatchers parallelizes the routing stage (default 1). With more
	// than one dispatcher, records can reach a worker slightly out of
	// order; each worker then runs a watermark reorder buffer whose slack
	// covers the maximum in-flight skew (Dispatchers × queue capacity), so
	// join semantics are unchanged. Result.LateDrops reports records that
	// exceeded even that slack (0 in practice).
	Dispatchers int
	// Registry, when set, receives the run's live metrics: engine edge and
	// task series plus per-worker record latency and joiner statistics.
	Registry *obs.Registry
	// Tracer, when set and enabled, samples tuple lineages end to end
	// (emit → dispatch → queue → process/verify → deliver).
	Tracer *obs.Tracer
	// Journal, when set, receives run lifecycle events from the stream
	// engine (run_start/run_end). Nil keeps the run silent.
	Journal *obs.Journal
	// Checkpoint captures every worker's window state at stream end into
	// Result.Checkpoints, one serialized checkpoint per task. Self-join
	// runs only.
	Checkpoint bool
	// Restore seeds worker joiners from a prior run's Result.Checkpoints
	// (one entry per task, in task order; empty entries start fresh). The
	// restoring run must use the same Workers, Strategy, Algorithm, Params,
	// Window and Bundle configuration, and its records must continue the
	// ID/time sequence of the checkpointed stream. Self-join runs only.
	Restore [][]byte
}

func (c Config) validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("topology: Workers must be >= 1, got %d", c.Workers)
	}
	if c.Strategy == nil {
		return fmt.Errorf("topology: Strategy is required")
	}
	if c.Params.Threshold <= 0 {
		return fmt.Errorf("topology: Params.Threshold must be positive")
	}
	return nil
}

// Result summarizes one completed run.
type Result struct {
	// Results is the number of verified pairs emitted.
	Results uint64
	// Pairs holds the result pairs when Config.CollectPairs was set.
	Pairs []record.Pair
	// Records is the number of source records processed.
	Records uint64
	// Elapsed is the topology wall time; Throughput derives from it.
	Elapsed time.Duration
	// CommTuples and CommBytes count dispatcher→worker traffic — the
	// simulated network cost of the distribution strategy.
	CommTuples, CommBytes uint64
	// StoredCopies sums records indexed across workers (replication).
	StoredCopies uint64
	// WorkerCosts are per-worker join work counters, for load analysis.
	WorkerCosts []local.Cost
	// Latency aggregates per-record processing latency across workers
	// (enqueue at source to completion of the record's probe).
	Latency metrics.Latency
	// LateDrops counts records that arrived at a worker beyond the reorder
	// slack (only possible with Dispatchers > 1; expected 0).
	LateDrops uint64
	// Report is the raw engine report.
	Report *stream.Report
	// Checkpoints holds each worker's serialized window state when
	// Config.Checkpoint was set (index = task). Feed it to a later run's
	// Config.Restore to continue the stream where this run stopped.
	Checkpoints [][]byte
}

// Throughput returns the end-to-end record rate.
func (r *Result) Throughput() metrics.Throughput {
	return metrics.Throughput{Records: r.Records, Elapsed: r.Elapsed}
}

// sourceSpout replays a slice of records, stamping ingestion time. When a
// tracer is attached it asks for a sample per record: the unsampled path is
// one atomic add, the sampled one starts the tuple's lineage with an emit
// span.
type sourceSpout struct {
	recs   []*record.Record
	i      int
	tracer *obs.Tracer
	slab   recSlab
}

// Next implements stream.Spout.
func (s *sourceSpout) Next() (stream.Tuple, bool) {
	if s.i >= len(s.recs) {
		return nil, false
	}
	r := s.recs[s.i]
	s.i++
	rt := s.slab.get()
	rt.Rec, rt.Enq = r, time.Now()
	if tr := s.tracer.Sample(); tr != nil {
		tr.Append("emit", "source", 0, -1, rt.Enq, rt.Enq)
		rt.Trace = tr
	}
	return rt, true
}

// BiRecord tags a record with its stream side for two-stream joins.
type BiRecord struct {
	Rec   *record.Record
	Right bool
}

// biSourceSpout replays a two-sided stream.
type biSourceSpout struct {
	recs   []BiRecord
	i      int
	tracer *obs.Tracer
	slab   recSlab
}

// Next implements stream.Spout.
func (s *biSourceSpout) Next() (stream.Tuple, bool) {
	if s.i >= len(s.recs) {
		return nil, false
	}
	br := s.recs[s.i]
	s.i++
	rt := s.slab.get()
	rt.Rec, rt.Enq, rt.Right = br.Rec, time.Now(), br.Right
	if tr := s.tracer.Sample(); tr != nil {
		tr.Append("emit", "source", 0, -1, rt.Enq, rt.Enq)
		rt.Trace = tr
	}
	return rt, true
}

// dispatcherBolt forwards records; routing happens in the grouping between
// dispatcher and workers, mirroring how Storm topologies separate the
// routing decision (grouping) from operator logic. traced gates the
// per-tuple type assertion so untraced runs forward with zero overhead.
type dispatcherBolt struct {
	task   int
	traced bool
}

// Execute implements stream.Bolt.
func (d dispatcherBolt) Execute(t stream.Tuple, em stream.Emitter) {
	if d.traced {
		if rt, ok := t.(*RecTuple); ok && rt.Trace != nil {
			parent, prev := rt.Trace.Tail()
			rt.Trace.Append("dispatch", "dispatcher", d.task, parent, prev, time.Now())
		}
	}
	em.Emit(t)
}

// workerBolt hosts one local joiner and applies the strategy's store and
// emit arbitration.
type workerBolt struct {
	task   int
	k      int
	strat  dispatch.Strategy
	joiner local.Joiner
	lat    metrics.Latency
	// slat replaces lat on instrumented runs so scrapes can snapshot the
	// histogram while the worker goroutine observes.
	slat      *metrics.SyncLatency
	stored    uint64
	results   uint64
	wirePerB  int
	wireBurnt time.Duration
	// reorder restores arrival order under parallel dispatchers
	// (nil when Dispatchers == 1).
	reorder *reorder.Buffer[*RecTuple]
	// bi replaces joiner in two-stream runs.
	bi *local.BiJoiner
	// emitFn is the per-match callback handed to the joiner, bound once at
	// construction; cur* carry the record under probe so the hot path does
	// not allocate a fresh closure per record. Bolts run single-threaded,
	// so the fields need no locking.
	emitFn       func(local.Match)
	curRec       *record.Record
	curEnq       time.Time
	curTrace     *obs.Trace
	curQueueSpan int
	curEm        stream.Emitter
}

// burn spins the CPU for roughly d, standing in for per-tuple network and
// deserialization work on a real cluster.
func burn(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// Execute implements stream.Bolt: probe (always), store when the strategy
// assigns the record here, and emit deduplicated results. With parallel
// dispatchers the record first passes the reorder buffer so the joiner
// always sees nondecreasing sequence numbers.
func (w *workerBolt) Execute(t stream.Tuple, em stream.Emitter) {
	rt := t.(*RecTuple)
	if w.wirePerB > 0 {
		d := time.Duration(w.wirePerB * rt.SizeBytes())
		burn(d)
		w.wireBurnt += d
	}
	if w.reorder != nil {
		w.reorder.Push(rt, func(ordered *RecTuple) { w.process(ordered, em) })
		return
	}
	w.process(rt, em)
}

// ExecuteBatch implements stream.BatchBolt: a whole transport batch of
// records streams through the worker in one call, in order. This is the
// engine→pool handoff: the verifier pool sees back-to-back records
// without a per-tuple trip through the executor loop, so its helpers
// stay warm across a batch.
func (w *workerBolt) ExecuteBatch(ts []stream.Tuple, em stream.Emitter) {
	for _, t := range ts {
		w.Execute(t, em)
	}
}

// Flush drains the reorder buffer at stream end.
func (w *workerBolt) Flush(em stream.Emitter) {
	if w.reorder != nil {
		w.reorder.Flush(func(ordered *RecTuple) { w.process(ordered, em) })
	}
}

// emitMatch is the joiner's per-match callback: strategy arbitration, then
// a pooled ResultTuple to the sink. It reads the record under probe from
// the cur* fields process() binds, so the same bound method value serves
// every record without a per-record closure allocation.
func (w *workerBolt) emitMatch(m local.Match) {
	if !w.strat.Emits(w.curRec, m.Rec, w.task, w.k) {
		return
	}
	w.results++
	out := resultPool.Get().(*ResultTuple)
	out.Pair = record.NewPair(w.curRec.ID, m.Rec.ID, m.Sim)
	out.Enq = w.curEnq
	if w.curTrace != nil {
		now := time.Now()
		out.Trace = w.curTrace
		out.ParentSpan = w.curTrace.Append("verify", "worker", w.task, w.curQueueSpan, now, now)
	}
	w.curEm.Emit(out)
}

func (w *workerBolt) process(rt *RecTuple, em stream.Emitter) {
	r := rt.Rec
	store := w.strat.Stores(r, w.task, w.k)
	if store {
		w.stored++
	}
	// For a sampled tuple, close the queue span (source/dispatch emit to
	// worker receipt) before the join so the verify spans can hang off it.
	queueSpan := -1
	var pstart time.Time
	if rt.Trace != nil {
		parent, prev := rt.Trace.Tail()
		pstart = time.Now()
		queueSpan = rt.Trace.Append("queue", "worker", w.task, parent, prev, pstart)
	}
	w.curRec, w.curEnq, w.curTrace, w.curQueueSpan, w.curEm = r, rt.Enq, rt.Trace, queueSpan, em
	if w.bi != nil {
		w.bi.StepSide(r, rt.Right, store, w.emitFn)
	} else {
		w.joiner.Step(r, store, w.emitFn)
	}
	if rt.Trace != nil {
		rt.Trace.Append("process", "worker", w.task, queueSpan, pstart, time.Now())
	}
	if w.slat != nil {
		w.slat.Observe(time.Since(rt.Enq))
	} else {
		w.lat.Observe(time.Since(rt.Enq))
	}
}

// registerJoinerMetrics publishes the worker's joiner statistics to reg.
// Only the Bundled joiner has live counters; other joiners are covered by
// the engine-level task series.
func (w *workerBolt) registerJoinerMetrics(reg *obs.Registry, task int) {
	type livePublisher interface {
		PublishLive(*bundle.LiveStats)
	}
	lp, ok := w.joiner.(livePublisher)
	if !ok {
		return
	}
	ls := &bundle.LiveStats{}
	lp.PublishLive(ls)
	label := fmt.Sprintf("worker/%d", task)
	reg.CounterVec("bundle_records_total",
		"Records processed by a worker's bundle index.", "task").
		SetFunc(label, func() float64 { return float64(ls.Records.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("bundle_candidates_total",
		"Candidate members examined by a worker's bundle index.", "task").
		SetFunc(label, func() float64 { return float64(ls.Candidates.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("bundle_verified_total",
		"Candidates fully verified by a worker's bundle index.", "task").
		SetFunc(label, func() float64 { return float64(ls.Verified.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("bundle_results_total",
		"Matches emitted by a worker's bundle index.", "task").
		SetFunc(label, func() float64 { return float64(ls.Results.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.GaugeVec("bundle_live_members",
		"Records currently indexed by a worker's bundle index.", "task").
		SetFunc(label, func() float64 { return float64(ls.Members.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.GaugeVec("bundle_verify_hit_rate",
		"Fraction of verified candidates that produced a result.", "task").
		SetFunc(label, func() float64 { // obscheck: bounded — one series per worker task, capped by worker count
			v := ls.Verified.Load()
			if v == 0 {
				return 0
			}
			return float64(ls.Results.Load()) / float64(v)
		})
	reg.CounterVec("verify_kernel_linear_total",
		"Verification merges run by the linear intersection kernel.", "task").
		SetFunc(label, func() float64 { return float64(ls.KernelLinear.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_kernel_gallop_total",
		"Verification merges run by the galloping intersection kernel.", "task").
		SetFunc(label, func() float64 { return float64(ls.KernelGallop.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_kernel_bitset_total",
		"Verification merges run by the word-packed bitset kernel.", "task").
		SetFunc(label, func() float64 { return float64(ls.KernelBitset.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_candidates_pruned_total",
		"Candidates discarded by upper-bound checks before any kernel ran.", "task").
		SetFunc(label, func() float64 { return float64(ls.Pruned.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_tree_probes_total",
		"Probes answered by the filter-and-verification tree (tree/auto verify mode).", "task").
		SetFunc(label, func() float64 { return float64(ls.TreeProbes.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_tree_nodes_visited_total",
		"Tree nodes expanded while answering tree-mode probes.", "task").
		SetFunc(label, func() float64 { return float64(ls.TreeNodesVisited.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_tree_subtrees_pruned_total",
		"Whole subtrees discarded by tree-node filters before any member was touched.", "task").
		SetFunc(label, func() float64 { return float64(ls.TreeSubtreesPruned.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_tree_cands_avoided_total",
		"Candidate members never materialized thanks to tree-level pruning.", "task").
		SetFunc(label, func() float64 { return float64(ls.TreeCandsAvoided.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.GaugeVec("verify_tree_nodes",
		"Nodes currently in the filter-and-verification tree.", "task").
		SetFunc(label, func() float64 { return float64(ls.TreeNodes.Load()) }) // obscheck: bounded — one series per worker task, capped by worker count
}

// registerPoolMetrics publishes the worker's verifier-pool counters to
// reg: pool size, fanned vs serial probe rounds, idle helper wakeups, and
// per-context verified-candidate counts (the per-core work distribution).
// Only present when the joiner runs a parallel verifier pool.
func (w *workerBolt) registerPoolMetrics(reg *obs.Registry, task int) {
	type pooled interface {
		VerifyPool() *bundle.Pool
	}
	pj, ok := w.joiner.(pooled)
	if !ok {
		return
	}
	pool := pj.VerifyPool()
	if pool == nil {
		return
	}
	label := fmt.Sprintf("worker/%d", task)
	reg.GaugeVec("verify_pool_size",
		"Verifier pool parallelism of a worker task (helpers + caller).", "task").
		SetFunc(label, func() float64 { return float64(pool.Size()) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_pool_parallel_rounds_total",
		"Probes whose candidate verification was fanned across the pool.", "task").
		SetFunc(label, func() float64 { return float64(pool.Snapshot().RoundsParallel) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_pool_serial_rounds_total",
		"Probes kept on the calling goroutine (below the fanout cutoff).", "task").
		SetFunc(label, func() float64 { return float64(pool.Snapshot().RoundsSerial) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_pool_fanned_candidates_total",
		"Candidate bundles verified in fanned rounds.", "task").
		SetFunc(label, func() float64 { return float64(pool.Snapshot().Fanned) }) // obscheck: bounded — one series per worker task, capped by worker count
	reg.CounterVec("verify_pool_idle_stints_total",
		"Helper wakeups that found the candidate cursor already drained.", "task").
		SetFunc(label, func() float64 { return float64(pool.Snapshot().IdleStints) }) // obscheck: bounded — one series per worker task, capped by worker count
	verified := reg.CounterVec("verify_pool_ctx_verified_total",
		"Candidate bundles verified by one verifier context of a worker's pool.", "ctx")
	for i := 0; i < pool.Size(); i++ {
		i := i
		verified.SetFunc(fmt.Sprintf("%s/ctx/%d", label, i), // obscheck: bounded — one series per verifier context, capped by pool size
			func() float64 { return float64(pool.CtxVerified(i)) })
	}
}

// sinkBolt counts (and optionally keeps) result pairs.
type sinkBolt struct {
	collect bool
	count   uint64
	pairs   []record.Pair
}

// Execute implements stream.Bolt: read the pair, then recycle the tuple.
// Traced results get their terminal deliver span; the trace reference must
// be cleared before pooling so recycled tuples do not resurrect lineages.
func (s *sinkBolt) Execute(t stream.Tuple, _ stream.Emitter) {
	rt := t.(*ResultTuple)
	s.count++
	if s.collect {
		s.pairs = append(s.pairs, rt.Pair)
	}
	if rt.Trace != nil {
		now := time.Now()
		rt.Trace.Append("deliver", "sink", 0, rt.ParentSpan, now, now)
		rt.Trace = nil
		rt.ParentSpan = 0
	}
	resultPool.Put(rt)
}

// Run executes one self-join over the record slice and returns the
// summary.
func Run(recs []*record.Record, cfg Config) (*Result, error) {
	// The checkpoint cursor continues the stream's own stamping: the next
	// run's records follow the last ID and tick this run consumed.
	var cur checkpoint.Cursor
	if n := len(recs); n > 0 {
		cur = checkpoint.Cursor{NextID: uint64(recs[n-1].ID) + 1, NextTime: recs[n-1].Time + 1}
	}
	return run(cfg, uint64(len(recs)), func(int) stream.Spout {
		return &sourceSpout{recs: recs, tracer: cfg.Tracer}
	}, false, cur)
}

// RunBi executes one two-stream (R⋈S) join over the side-tagged stream:
// each record matches only stored records of the opposite side. Record IDs
// must be globally increasing in arrival order, exactly as for Run.
func RunBi(recs []BiRecord, cfg Config) (*Result, error) {
	return run(cfg, uint64(len(recs)), func(int) stream.Spout {
		return &biSourceSpout{recs: recs, tracer: cfg.Tracer}
	}, true, checkpoint.Cursor{})
}

func run(cfg Config, nrecs uint64, spoutF func(int) stream.Spout, bi bool, cur checkpoint.Cursor) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if bi && (cfg.Checkpoint || len(cfg.Restore) > 0) {
		return nil, fmt.Errorf("topology: Checkpoint/Restore support self-join runs only")
	}
	if cfg.Window == nil {
		cfg.Window = window.Unbounded{}
	}

	if cfg.Dispatchers < 1 {
		cfg.Dispatchers = 1
	}
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = stream.DefaultBatchSize
	}
	// Queue capacity counts batches; the default keeps the buffered-tuple
	// budget (~1024 per queue) of the unbatched engine.
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = (1024 + batchSize - 1) / batchSize
		if queueCap < 4 {
			queueCap = 4
		}
	}

	streamOpts := []stream.Option{stream.WithBatchSize(batchSize)}
	if cfg.Registry != nil {
		streamOpts = append(streamOpts, stream.WithRegistry(cfg.Registry))
	}
	if cfg.Journal != nil {
		streamOpts = append(streamOpts, stream.WithJournal(cfg.Journal))
	}
	tp := stream.New("ssjoin-"+cfg.Strategy.Name(), queueCap, streamOpts...)
	tp.AddSpout("source", spoutF, 1)
	traced := cfg.Tracer.Enabled()
	tp.AddBolt("dispatcher", func(task int) stream.Bolt {
		return dispatcherBolt{task: task, traced: traced}
	}, cfg.Dispatchers).SubscribeTo("source", stream.Shuffle{})

	k := cfg.Workers
	jopts := local.Options{
		Params:      cfg.Params,
		Window:      cfg.Window,
		Bundle:      cfg.Bundle,
		Parallelism: cfg.Parallelism,
	}
	// Parallel joiners own helper goroutines; every joiner the run creates
	// is released on the way out, error paths included. Bolt factories run
	// serially during materialization, so the append needs no lock.
	var owned []interface{ Close() error }
	defer func() {
		for _, c := range owned {
			c.Close()
		}
	}()
	// Restore happens before topology construction so a corrupt checkpoint
	// fails the run cleanly instead of inside a bolt factory.
	var restored []local.Joiner
	if len(cfg.Restore) > 0 {
		if len(cfg.Restore) != k {
			return nil, fmt.Errorf("topology: Restore has %d checkpoints for %d workers", len(cfg.Restore), k)
		}
		restored = make([]local.Joiner, k)
		for i, b := range cfg.Restore {
			j := local.New(cfg.Algorithm, jopts)
			if c, ok := j.(interface{ Close() error }); ok {
				owned = append(owned, c)
			}
			if len(b) > 0 {
				if _, _, err := checkpoint.Read(bytes.NewReader(b), j); err != nil {
					return nil, fmt.Errorf("topology: restoring worker %d: %w", i, err)
				}
			}
			restored[i] = j
		}
	}
	routeGrouping := stream.PartitionFunc(func(t stream.Tuple, n int, buf []int) []int {
		return cfg.Strategy.Route(t.(*RecTuple).Rec, n, buf)
	})
	// With one dispatcher arrival order is FIFO end to end; with several,
	// skew is bounded by what can be in flight across dispatcher paths:
	// each dispatcher can hold queueCap input batches plus one pending
	// output batch per worker edge, all in units of batchSize tuples.
	var slack uint64
	if cfg.Dispatchers > 1 {
		perDispatcher := uint64(queueCap+k+2) * uint64(batchSize)
		slack = uint64(cfg.Dispatchers)*perDispatcher + 64
	}
	tp.AddBolt("worker", func(task int) stream.Bolt {
		w := &workerBolt{
			task:     task,
			k:        k,
			strat:    cfg.Strategy,
			wirePerB: cfg.WireNsPerByte,
		}
		w.emitFn = w.emitMatch
		switch {
		case bi:
			w.bi = local.NewBi(cfg.Algorithm, jopts)
			owned = append(owned, w.bi)
		case restored != nil:
			w.joiner = restored[task]
		default:
			w.joiner = local.New(cfg.Algorithm, jopts)
			if c, ok := w.joiner.(interface{ Close() error }); ok {
				owned = append(owned, c)
			}
		}
		if slack > 0 {
			w.reorder = reorder.New(slack, func(rt *RecTuple) uint64 { return uint64(rt.Rec.ID) })
		}
		if cfg.Registry != nil {
			w.slat = &metrics.SyncLatency{}
			cfg.Registry.HistogramVec("worker_record_seconds",
				"Per-record latency observed at a worker: source enqueue to probe completion.", "task").
				SetFunc(fmt.Sprintf("worker/%d", task), w.slat.Snapshot) // obscheck: bounded — one series per worker task, capped by worker count
			w.registerJoinerMetrics(cfg.Registry, task)
			w.registerPoolMetrics(cfg.Registry, task)
		}
		return w
	}, k).SubscribeTo("dispatcher", routeGrouping)

	tp.AddBolt("sink", func(int) stream.Bolt {
		return &sinkBolt{collect: cfg.CollectPairs}
	}, 1).SubscribeTo("worker", stream.Shuffle{})

	rep, err := tp.Run()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Records: nrecs,
		Elapsed: rep.Elapsed,
		Report:  rep,
	}
	res.CommTuples = rep.EdgeTuples("dispatcher", "worker")
	if e, ok := rep.Edges[stream.EdgeKey{From: "dispatcher", To: "worker"}]; ok {
		res.CommBytes = e.Bytes.Load()
	}
	if cfg.Checkpoint {
		res.Checkpoints = make([][]byte, k)
	}
	for i, b := range rep.Bolts["worker"] {
		w := b.(*workerBolt)
		if cfg.Checkpoint {
			var buf bytes.Buffer
			if err := checkpoint.Write(&buf, cur, w.joiner); err != nil {
				return nil, fmt.Errorf("topology: checkpointing worker %d: %w", i, err)
			}
			res.Checkpoints[i] = buf.Bytes()
		}
		if w.bi != nil {
			cl, cr := w.bi.CostLeft(), w.bi.CostRight()
			res.WorkerCosts = append(res.WorkerCosts, local.Cost{
				Probes:      cl.Probes + cr.Probes,
				Stored:      cl.Stored + cr.Stored,
				Scanned:     cl.Scanned + cr.Scanned,
				Candidates:  cl.Candidates + cr.Candidates,
				Verified:    cl.Verified + cr.Verified,
				Results:     cl.Results + cr.Results,
				VerifySteps: cl.VerifySteps + cr.VerifySteps,
				Postings:    cl.Postings + cr.Postings,
			})
		} else {
			res.WorkerCosts = append(res.WorkerCosts, w.joiner.Cost())
		}
		res.StoredCopies += w.stored
		if w.slat != nil {
			snap := w.slat.Snapshot()
			res.Latency.Merge(&snap)
		} else {
			res.Latency.Merge(&w.lat)
		}
		if w.reorder != nil {
			res.LateDrops += w.reorder.Late()
		}
	}
	for _, b := range rep.Bolts["sink"] {
		s := b.(*sinkBolt)
		res.Results += s.count
		res.Pairs = append(res.Pairs, s.pairs...)
	}
	return res, nil
}
