package topology

import (
	"repro/internal/local"
	"repro/internal/record"
	"testing"
)

// TestParallelParityTopology is the engine-level parity matrix the CI
// bench-smoke job runs under -race: every (batch size × verifier-pool
// size) combination must produce exactly the sequential run's result-pair
// set, which itself must equal brute force. Pairs are compared as sets —
// worker outputs interleave nondeterministically at the collecting sink
// regardless of parallelism — while the per-worker byte-identical stream
// order is enforced by the bundle- and local-level parity tests.
func TestParallelParityTopology(t *testing.T) {
	p := params(0.6)
	recs := genStream(700, 29)
	want := bruteCount(recs, p, nil)
	if len(want) == 0 {
		t.Fatal("degenerate workload: no brute-force pairs")
	}
	for _, batch := range []int{1, 64} {
		for _, par := range []int{1, 2, 4, 8} {
			res, err := Run(recs, Config{
				Workers:      3,
				Strategy:     strategies(p, recs, 3)[0],
				Algorithm:    local.Bundled,
				Params:       p,
				BatchSize:    batch,
				Parallelism:  par,
				CollectPairs: true,
			})
			if err != nil {
				t.Fatalf("batch=%d P=%d: %v", batch, par, err)
			}
			got := make(map[record.Pair]bool)
			for _, pr := range res.Pairs {
				key := record.Pair{First: pr.First, Second: pr.Second}
				if got[key] {
					t.Fatalf("batch=%d P=%d: duplicate pair %v", batch, par, key)
				}
				got[key] = true
			}
			if len(got) != len(want) {
				t.Fatalf("batch=%d P=%d: got %d pairs want %d", batch, par, len(got), len(want))
			}
			for pr := range want {
				if !got[pr] {
					t.Fatalf("batch=%d P=%d: missing %v", batch, par, pr)
				}
			}
		}
	}
}

// TestParallelParityBiJoin runs the two-stream join with verifier pools on
// both sides and checks the pair set against the sequential run — and that
// the run terminates cleanly, which also exercises the owned-joiner close
// path for BiJoiners.
func TestParallelParityBiJoin(t *testing.T) {
	p := params(0.7)
	base := genStream(500, 41)
	recs := make([]BiRecord, len(base))
	for i, r := range base {
		recs[i] = BiRecord{Rec: r, Right: i%3 == 0}
	}
	run := func(par int) map[record.Pair]bool {
		res, err := RunBi(recs, Config{
			Workers: 2, Strategy: strategies(p, base, 2)[0],
			Algorithm: local.Bundled, Params: p,
			Parallelism: par, CollectPairs: true,
		})
		if err != nil {
			t.Fatalf("P=%d: %v", par, err)
		}
		out := make(map[record.Pair]bool)
		for _, pr := range res.Pairs {
			out[record.Pair{First: pr.First, Second: pr.Second}] = true
		}
		return out
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("degenerate: no cross-side pairs")
	}
	for _, par := range []int{2, 4} {
		got := run(par)
		if len(got) != len(want) {
			t.Fatalf("P=%d: got %d pairs want %d", par, len(got), len(want))
		}
		for pr := range want {
			if !got[pr] {
				t.Fatalf("P=%d: missing %v", par, pr)
			}
		}
	}
}

// TestParallelParityCheckpointRestore: a split run with checkpoint/restore
// under a verifier pool must equal the parallel full run — recovery and
// parallel verification compose.
func TestParallelParityCheckpointRestore(t *testing.T) {
	p := params(0.6)
	recs := genStream(500, 59)
	const cut = 300
	base := Config{
		Workers: 2, Strategy: strategies(p, recs, 2)[0],
		Algorithm: local.Bundled, Params: p,
		Parallelism: 4, CollectPairs: true,
	}
	full, err := Run(recs, base)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[record.Pair]bool)
	for _, pr := range full.Pairs {
		want[record.Pair{First: pr.First, Second: pr.Second}] = true
	}

	first := base
	first.Checkpoint = true
	r1, err := Run(recs[:cut], first)
	if err != nil {
		t.Fatal(err)
	}
	second := base
	second.Restore = r1.Checkpoints
	r2, err := Run(recs[cut:], second)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[record.Pair]bool)
	for _, pr := range append(r1.Pairs, r2.Pairs...) {
		got[record.Pair{First: pr.First, Second: pr.Second}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("split run got %d pairs, full parallel run %d", len(got), len(want))
	}
	for pr := range want {
		if !got[pr] {
			t.Fatalf("split run missing %v", pr)
		}
	}
}
