//go:build race

package topology

// raceEnabled reports whether the race detector is active; timing-sensitive
// tests (wall-clock burn ratios) skip under its ~10x instrumentation.
const raceEnabled = true
