//go:build !race

package topology

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
