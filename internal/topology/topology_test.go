package topology

import (
	"testing"

	"repro/internal/dispatch"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/window"
	"repro/internal/workload"
)

func params(tau float64) filter.Params {
	return filter.Params{Func: similarity.Jaccard, Threshold: tau}
}

func genStream(n int, seed int64) []*record.Record {
	return workload.NewGenerator(workload.UniformSmall(seed)).Generate(n)
}

func histOf(recs []*record.Record) *partition.Histogram {
	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	return &h
}

func strategies(p filter.Params, recs []*record.Record, k int) []dispatch.Strategy {
	h := histOf(recs)
	w := partition.CostModel{Params: p}.Weights(h)
	return []dispatch.Strategy{
		dispatch.NewLengthBased(p, partition.LoadAware(w, k)),
		dispatch.PrefixBased{Params: p},
		dispatch.BroadcastBased{},
	}
}

func bruteCount(recs []*record.Record, p filter.Params, win window.Policy) map[record.Pair]bool {
	if win == nil {
		win = window.Unbounded{}
	}
	out := make(map[record.Pair]bool)
	for i, r := range recs {
		for j := 0; j < i; j++ {
			s := recs[j]
			if !win.Live(s.ID, s.Time, r.ID, r.Time) {
				continue
			}
			if similarity.Of(p.Func, r.Tokens, s.Tokens) >= p.Threshold-1e-12 {
				out[record.NewPair(r.ID, s.ID, 0)] = true
			}
		}
	}
	return out
}

// TestAllTopologiesMatchBruteForce is the system-level correctness gate:
// every (strategy × algorithm × worker-count) combination must produce
// exactly the brute-force pair set.
func TestAllTopologiesMatchBruteForce(t *testing.T) {
	p := params(0.6)
	recs := genStream(500, 99)
	want := bruteCount(recs, p, nil)
	for _, k := range []int{1, 4} {
		for _, strat := range strategies(p, recs, k) {
			for _, alg := range []local.Algorithm{local.Naive, local.Prefix, local.Bundled} {
				res, err := Run(recs, Config{
					Workers:      k,
					Strategy:     strat,
					Algorithm:    alg,
					Params:       p,
					CollectPairs: true,
				})
				if err != nil {
					t.Fatalf("%s/%s k=%d: %v", strat.Name(), alg, k, err)
				}
				got := make(map[record.Pair]bool)
				for _, pr := range res.Pairs {
					key := record.Pair{First: pr.First, Second: pr.Second}
					if got[key] {
						t.Fatalf("%s/%s k=%d: duplicate pair %v", strat.Name(), alg, k, pr)
					}
					got[key] = true
				}
				if len(got) != len(want) {
					t.Fatalf("%s/%s k=%d: got %d pairs want %d",
						strat.Name(), alg, k, len(got), len(want))
				}
				for pr := range want {
					if !got[pr] {
						t.Fatalf("%s/%s k=%d: missing %v", strat.Name(), alg, k, pr)
					}
				}
			}
		}
	}
}

func TestWindowedTopologyMatchesBruteForce(t *testing.T) {
	p := params(0.7)
	recs := genStream(400, 3)
	win := window.Count{N: 50}
	want := bruteCount(recs, p, win)
	k := 3
	for _, strat := range strategies(p, recs, k) {
		res, err := Run(recs, Config{
			Workers:      k,
			Strategy:     strat,
			Algorithm:    local.Prefix,
			Params:       p,
			Window:       win,
			CollectPairs: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if int(res.Results) != len(want) {
			t.Fatalf("%s: got %d results want %d", strat.Name(), res.Results, len(want))
		}
	}
}

func TestCommunicationCostOrdering(t *testing.T) {
	// At a high threshold, length-based must ship fewer tuples than
	// broadcast (k copies each) and no more than prefix-based replication.
	p := params(0.8)
	recs := genStream(800, 17)
	k := 8
	counts := make(map[string]uint64)
	for _, strat := range strategies(p, recs, k) {
		res, err := Run(recs, Config{Workers: k, Strategy: strat, Algorithm: local.Prefix, Params: p})
		if err != nil {
			t.Fatal(err)
		}
		counts[strat.Name()] = res.CommTuples
	}
	if counts["length"] >= counts["broadcast"] {
		t.Fatalf("length %d should beat broadcast %d", counts["length"], counts["broadcast"])
	}
	if counts["broadcast"] != uint64(len(recs)*k) {
		t.Fatalf("broadcast tuples: got %d want %d", counts["broadcast"], len(recs)*k)
	}
}

func TestStoredCopiesNoReplicationForLength(t *testing.T) {
	p := params(0.7)
	recs := genStream(500, 21)
	k := 6
	strats := strategies(p, recs, k)
	get := func(s dispatch.Strategy) uint64 {
		res, err := Run(recs, Config{Workers: k, Strategy: s, Algorithm: local.Prefix, Params: p})
		if err != nil {
			t.Fatal(err)
		}
		return res.StoredCopies
	}
	if got := get(strats[0]); got != uint64(len(recs)) {
		t.Fatalf("length-based stored copies: %d want %d", got, len(recs))
	}
	if got := get(strats[1]); got <= uint64(len(recs)) {
		t.Fatalf("prefix-based should replicate, stored %d", got)
	}
	if got := get(strats[2]); got != uint64(len(recs)) {
		t.Fatalf("broadcast stored copies: %d want %d", got, len(recs))
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	p := params(0.6)
	recs := genStream(300, 33)
	res, err := Run(recs, Config{
		Workers: 2, Strategy: strategies(p, recs, 2)[0],
		Algorithm: local.Bundled, Params: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 300 {
		t.Fatalf("records: %d", res.Records)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed missing")
	}
	if res.Throughput().PerSecond() <= 0 {
		t.Fatal("throughput missing")
	}
	if len(res.WorkerCosts) != 2 {
		t.Fatalf("worker costs: %d", len(res.WorkerCosts))
	}
	if res.Latency.Count() == 0 {
		t.Fatal("latency not measured")
	}
	if res.CommTuples == 0 || res.CommBytes == 0 {
		t.Fatal("communication not measured")
	}
}

func TestConfigValidation(t *testing.T) {
	p := params(0.8)
	recs := genStream(10, 1)
	cases := []Config{
		{Workers: 0, Strategy: dispatch.BroadcastBased{}, Params: p},
		{Workers: 2, Strategy: nil, Params: p},
		{Workers: 2, Strategy: dispatch.BroadcastBased{}},
	}
	for i, cfg := range cases {
		if _, err := Run(recs, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSingleWorkerDegeneratesToLocalJoin(t *testing.T) {
	p := params(0.75)
	recs := genStream(300, 8)
	res, err := Run(recs, Config{
		Workers:  1,
		Strategy: dispatch.BroadcastBased{},
		Params:   p, CollectPairs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteCount(recs, p, nil)
	if int(res.Results) != len(want) {
		t.Fatalf("k=1: got %d want %d", res.Results, len(want))
	}
}

// TestLiveMigrationInTopology runs the dispatch.Migrating strategy through
// the real engine across a drifting stream with a count window and checks
// the result set against brute force — live repartitioning end to end.
func TestLiveMigrationInTopology(t *testing.T) {
	const (
		n    = 800
		k    = 4
		winN = 200
	)
	p := params(0.7)
	phaseA := workload.NewGenerator(workload.AOLLike(41)).Generate(n / 2)
	phaseB := workload.NewGenerator(workload.EnronLike(41)).Generate(n / 2)
	recs := append([]*record.Record{}, phaseA...)
	for i, r := range phaseB {
		r.ID = record.ID(n/2 + i)
		r.Time = int64(r.ID)
		recs = append(recs, r)
	}
	var hA, hB partition.Histogram
	for _, r := range phaseA {
		hA.Add(r.Len())
	}
	for _, r := range phaseB {
		hB.Add(r.Len())
	}
	cm := partition.CostModel{Params: p}
	mig := dispatch.PlanMigration(p,
		partition.LoadAware(cm.Weights(&hA), k),
		partition.LoadAware(cm.Weights(&hB), k),
		record.ID(n/2), winN)

	win := window.Count{N: winN}
	res, err := Run(recs, Config{
		Workers:      k,
		Strategy:     mig,
		Algorithm:    local.Prefix,
		Params:       p,
		Window:       win,
		CollectPairs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteCount(recs, p, win)
	got := make(map[record.Pair]bool)
	for _, pr := range res.Pairs {
		key := record.Pair{First: pr.First, Second: pr.Second}
		if got[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		got[key] = true
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs want %d", len(got), len(want))
	}
	for pr := range want {
		if !got[pr] {
			t.Fatalf("missing %v", pr)
		}
	}
}

// TestWireCostSlowsBroadcastMore checks the E16 mechanism: simulated
// network cost must hit broadcast (k copies) harder than length routing.
func TestWireCostSlowsBroadcastMore(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock burn ratios are meaningless under race instrumentation")
	}
	p := params(0.8)
	recs := genStream(2000, 55)
	k := 4
	run := func(strat dispatch.Strategy, cost int) float64 {
		res, err := Run(recs, Config{
			Workers: k, Strategy: strat, Algorithm: local.Prefix,
			Params: p, WireNsPerByte: cost,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput().PerSecond()
	}
	length := strategies(p, recs, k)[0]
	bcast := dispatch.BroadcastBased{}
	// When wire cost dominates, throughput is inversely proportional to
	// received bytes: broadcast receives k copies of every record, so the
	// length framework must be clearly faster in absolute terms.
	lRate := run(length, 400)
	bRate := run(bcast, 400)
	if lRate < 1.5*bRate {
		t.Fatalf("wire cost should separate frameworks: length %.0f vs broadcast %.0f rec/s",
			lRate, bRate)
	}
}

// TestParallelDispatchersMatchBruteForce: with several dispatchers and the
// reorder buffer, windowed results must still be exact and nothing may be
// dropped as late.
func TestParallelDispatchersMatchBruteForce(t *testing.T) {
	p := params(0.7)
	recs := genStream(3000, 71)
	win := window.Count{N: 400}
	want := bruteCount(recs, p, win)
	for _, d := range []int{2, 4} {
		res, err := Run(recs, Config{
			Workers:     3,
			Dispatchers: d,
			Strategy:    strategies(p, recs, 3)[0],
			Algorithm:   local.Prefix,
			Params:      p,
			Window:      win,
			QueueCap:    64, // small queues exercise the skew bound
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.LateDrops != 0 {
			t.Fatalf("d=%d: %d late drops", d, res.LateDrops)
		}
		if int(res.Results) != len(want) {
			t.Fatalf("d=%d: got %d results want %d", d, res.Results, len(want))
		}
	}
}

// TestSoakAllStrategiesAgreeAtScale pushes a larger windowed stream through
// every framework and checks result-count equality — the release soak.
func TestSoakAllStrategiesAgreeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	p := params(0.8)
	recs := workload.NewGenerator(workload.AOLLike(2026)).Generate(60000)
	win := window.Count{N: 5000}
	k := 8
	var counts []uint64
	for _, strat := range strategies(p, recs, k) {
		res, err := Run(recs, Config{
			Workers: k, Strategy: strat, Algorithm: local.Bundled,
			Params: p, Window: win,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Results)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("strategies disagree at scale: %v", counts)
	}
	if counts[0] == 0 {
		t.Fatal("no results on a duplicate-heavy stream")
	}
}

// TestDistributedBiJoinMatchesLocal: the two-stream distributed join must
// match a local BiJoiner run exactly, for every strategy.
func TestDistributedBiJoinMatchesLocal(t *testing.T) {
	p := params(0.7)
	base := genStream(600, 123)
	recs := make([]BiRecord, len(base))
	for i, r := range base {
		recs[i] = BiRecord{Rec: r, Right: i%3 == 0} // uneven sides
	}
	// Local reference.
	bi := local.NewBi(local.Naive, local.Options{Params: p})
	want := make(map[record.Pair]bool)
	for _, br := range recs {
		br := br
		emit := func(m local.Match) {
			want[record.NewPair(br.Rec.ID, m.Rec.ID, 0)] = true
		}
		if br.Right {
			bi.StepRight(br.Rec, emit)
		} else {
			bi.StepLeft(br.Rec, emit)
		}
	}
	for _, k := range []int{1, 4} {
		for _, strat := range strategies(p, base, k) {
			res, err := RunBi(recs, Config{
				Workers: k, Strategy: strat, Algorithm: local.Prefix,
				Params: p, CollectPairs: true,
			})
			if err != nil {
				t.Fatalf("%s k=%d: %v", strat.Name(), k, err)
			}
			got := make(map[record.Pair]bool)
			for _, pr := range res.Pairs {
				key := record.Pair{First: pr.First, Second: pr.Second}
				if got[key] {
					t.Fatalf("%s k=%d: duplicate %v", strat.Name(), k, key)
				}
				got[key] = true
			}
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: got %d pairs want %d", strat.Name(), k, len(got), len(want))
			}
			for pr := range want {
				if !got[pr] {
					t.Fatalf("%s k=%d: missing %v", strat.Name(), k, pr)
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: no cross-side pairs")
	}
}

// TestBatchSizeParity checks the E7-style equality contract of the batched
// transport: every batch size (including 1 = unbatched and sizes larger
// than any queue) must produce the identical result-pair set, and the
// transport must report batch counts consistent with the tuple counts.
func TestBatchSizeParity(t *testing.T) {
	p := params(0.6)
	recs := genStream(600, 17)
	var want map[record.Pair]bool
	for _, bs := range []int{1, 7, 64, 4096} {
		for _, strat := range strategies(p, recs, 4) {
			res, err := Run(recs, Config{
				Workers:      4,
				Strategy:     strat,
				Algorithm:    local.Bundled,
				Params:       p,
				BatchSize:    bs,
				CollectPairs: true,
			})
			if err != nil {
				t.Fatalf("batch %d %s: %v", bs, strat.Name(), err)
			}
			got := make(map[record.Pair]bool)
			for _, pr := range res.Pairs {
				got[record.Pair{First: pr.First, Second: pr.Second}] = true
			}
			if want == nil {
				want = got
				if len(want) == 0 {
					t.Fatal("degenerate test: no result pairs")
				}
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("batch %d %s: got %d pairs want %d", bs, strat.Name(), len(got), len(want))
			}
			for pr := range want {
				if !got[pr] {
					t.Fatalf("batch %d %s: missing %v", bs, strat.Name(), pr)
				}
			}
			batches := res.Report.EdgeBatches("dispatcher", "worker")
			tuples := res.Report.EdgeTuples("dispatcher", "worker")
			if batches == 0 || batches > tuples {
				t.Fatalf("batch %d %s: implausible batch count %d for %d tuples",
					bs, strat.Name(), batches, tuples)
			}
		}
	}
}

// TestBatchedParallelDispatchersExact re-checks the reorder-buffer contract
// under batching: parallel dispatchers magnify arrival skew by the batch
// size, and the widened slack must still deliver exact results with zero
// late drops.
func TestBatchedParallelDispatchersExact(t *testing.T) {
	p := params(0.6)
	recs := genStream(800, 5)
	want := bruteCount(recs, p, nil)
	for _, bs := range []int{8, 64} {
		for _, d := range []int{2, 4} {
			res, err := Run(recs, Config{
				Workers:      4,
				Dispatchers:  d,
				Strategy:     strategies(p, recs, 4)[0],
				Algorithm:    local.Prefix,
				Params:       p,
				BatchSize:    bs,
				QueueCap:     2, // tiny queues force batch-boundary skew
				CollectPairs: true,
			})
			if err != nil {
				t.Fatalf("batch %d d=%d: %v", bs, d, err)
			}
			if res.LateDrops != 0 {
				t.Fatalf("batch %d d=%d: %d late drops", bs, d, res.LateDrops)
			}
			got := make(map[record.Pair]bool)
			for _, pr := range res.Pairs {
				got[record.Pair{First: pr.First, Second: pr.Second}] = true
			}
			if len(got) != len(want) {
				t.Fatalf("batch %d d=%d: got %d pairs want %d", bs, d, len(got), len(want))
			}
		}
	}
}

// TestCheckpointedSplitRunMatchesFullRun is the topology-level recovery
// gate: run the first half of a stream with Checkpoint set, feed the
// captured worker states into a Restore run over the second half, and the
// union of pairs must equal one uninterrupted run — for every strategy and
// algorithm, under a bounded window so eviction state is exercised too.
func TestCheckpointedSplitRunMatchesFullRun(t *testing.T) {
	p := params(0.6)
	recs := genStream(600, 17)
	const cut = 350
	win := window.Count{N: 150}
	for _, k := range []int{1, 3} {
		for _, strat := range strategies(p, recs, k) {
			for _, alg := range []local.Algorithm{local.Prefix, local.Bundled} {
				base := Config{
					Workers:      k,
					Strategy:     strat,
					Algorithm:    alg,
					Params:       p,
					Window:       win,
					CollectPairs: true,
				}
				full, err := Run(recs, base)
				if err != nil {
					t.Fatalf("%s/%s k=%d: full run: %v", strat.Name(), alg, k, err)
				}
				want := make(map[record.Pair]bool)
				for _, pr := range full.Pairs {
					want[record.Pair{First: pr.First, Second: pr.Second}] = true
				}

				first := base
				first.Checkpoint = true
				r1, err := Run(recs[:cut], first)
				if err != nil {
					t.Fatalf("%s/%s k=%d: first half: %v", strat.Name(), alg, k, err)
				}
				if len(r1.Checkpoints) != k {
					t.Fatalf("%s/%s k=%d: %d checkpoints for %d workers",
						strat.Name(), alg, k, len(r1.Checkpoints), k)
				}
				second := base
				second.Restore = r1.Checkpoints
				r2, err := Run(recs[cut:], second)
				if err != nil {
					t.Fatalf("%s/%s k=%d: second half: %v", strat.Name(), alg, k, err)
				}

				got := make(map[record.Pair]bool)
				for _, pr := range append(r1.Pairs, r2.Pairs...) {
					got[record.Pair{First: pr.First, Second: pr.Second}] = true
				}
				if len(got) != len(want) {
					t.Fatalf("%s/%s k=%d: split run got %d pairs, full run %d",
						strat.Name(), alg, k, len(got), len(want))
				}
				for pr := range want {
					if !got[pr] {
						t.Fatalf("%s/%s k=%d: split run missing %v", strat.Name(), alg, k, pr)
					}
				}
			}
		}
	}
}

// TestCheckpointRestoreValidation covers the config error paths.
func TestCheckpointRestoreValidation(t *testing.T) {
	p := params(0.6)
	recs := genStream(50, 3)
	base := Config{Workers: 2, Strategy: strategies(p, recs, 2)[0], Params: p}

	bad := base
	bad.Restore = [][]byte{[]byte("junk")} // wrong count AND bad payload
	if _, err := Run(recs, bad); err == nil {
		t.Fatal("restore count mismatch accepted")
	}
	bad.Restore = [][]byte{[]byte("junk"), []byte("junk")}
	if _, err := Run(recs, bad); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}

	biRecs := make([]BiRecord, len(recs))
	for i, r := range recs {
		biRecs[i] = BiRecord{Rec: r, Right: i%2 == 1}
	}
	biCfg := base
	biCfg.Checkpoint = true
	if _, err := RunBi(biRecs, biCfg); err == nil {
		t.Fatal("bi checkpoint accepted")
	}
}
