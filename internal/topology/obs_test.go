package topology

import (
	"testing"

	"repro/internal/dispatch"
	"repro/internal/local"
	"repro/internal/obs"
)

// TestRunWithObservability runs a bundled self-join with a registry and an
// aggressive tracer and checks the full surface: results are unchanged,
// worker latency histograms carry one observation per record, bundle live
// counters agree with the harvested joiner costs, and sampled traces chain
// emit → dispatch → queue → process with deliver spans for result tuples.
func TestRunWithObservability(t *testing.T) {
	p := params(0.6)
	recs := genStream(800, 11)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(8, 64)
	cfg := Config{
		Workers:   4,
		Strategy:  dispatch.PrefixBased{Params: p},
		Algorithm: local.Bundled,
		Params:    p,
		Registry:  reg,
		Tracer:    tracer,
	}
	res, err := Run(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Observability must not change the join: compare against a plain run.
	plain, err := Run(recs, Config{
		Workers: 4, Strategy: dispatch.PrefixBased{Params: p},
		Algorithm: local.Bundled, Params: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results != plain.Results {
		t.Fatalf("results drifted under instrumentation: %d vs %d", res.Results, plain.Results)
	}

	byName := map[string]obs.MetricSnapshot{}
	for _, ms := range reg.Snapshot() {
		byName[ms.Name] = ms
	}
	lat := byName["worker_record_seconds"]
	var latCount uint64
	for _, s := range lat.Samples {
		latCount += s.Count
	}
	// PrefixBased multicasts, so each receiving worker observes the record;
	// the scrape must agree with the harvested aggregate.
	if latCount != res.Latency.Count() {
		t.Fatalf("latency observations %d != harvested %d", latCount, res.Latency.Count())
	}
	var bundleResults float64
	for _, s := range byName["bundle_results_total"].Samples {
		bundleResults += s.Value
	}
	var wantResults uint64
	for _, c := range res.WorkerCosts {
		wantResults += c.Results
	}
	if uint64(bundleResults) != wantResults {
		t.Fatalf("bundle live results %v != joiner costs %d", bundleResults, wantResults)
	}
	if _, ok := byName["stream_edge_tuples_total"]; !ok {
		t.Fatal("engine metrics missing from registry")
	}

	if tracer.Sampled() != 800/8 {
		t.Fatalf("sampled %d traces", tracer.Sampled())
	}
	stages := map[string]int{}
	deliverParentOK := true
	for _, ts := range tracer.Recent() {
		for i, sp := range ts.Spans {
			stages[sp.Stage]++
			if sp.Parent < -1 || sp.Parent >= i {
				t.Fatalf("trace %d span %d: bad parent %d", ts.ID, i, sp.Parent)
			}
			if sp.Stage == "deliver" && sp.Parent >= 0 &&
				ts.Spans[sp.Parent].Stage != "verify" {
				deliverParentOK = false
			}
		}
		if ts.Spans[0].Stage != "emit" {
			t.Fatalf("trace %d does not start at emit: %+v", ts.ID, ts.Spans[0])
		}
	}
	for _, stage := range []string{"emit", "dispatch", "queue", "process"} {
		if stages[stage] == 0 {
			t.Fatalf("no %q spans recorded (got %v)", stage, stages)
		}
	}
	if !deliverParentOK {
		t.Fatal("deliver span not parented to a verify span")
	}
}
