package lint

import (
	"go/ast"
	"regexp"
	"sort"
	"strings"
)

// WireState closes the wire protocol over its *handlers*, the dimension
// wirecheck (encoder/decoder coverage, switch defaults) cannot see: every
// frame-type constant in a package named "wire" declares who consumes it
// with a `handled-by: <role>[,<role>]` marker (roles: coordinator,
// worker), and the Finish hook verifies that each declared role actually
// handles the frame somewhere in the repo — as a case arm in a switch
// annotated `// wire-dispatch: <role>`, or at an out-of-switch handling
// site marked `// wire-handled: <role> <Const>` (handshake reads, inline
// type checks). Encode and decode arms are re-verified from the same
// collected facts, so a new constant with any of its three arms missing
// is a build break even when the gap and the constant live in different
// packages.
//
// Dispatch arms are collected per package and exported as facts; the
// whole-program union runs in Finish, so a role may split its dispatch
// over several switches (the plain and fault-tolerant coordinator loops)
// and several packages.
var WireState = &Analyzer{
	Name:   "wirestate",
	Doc:    "every wire frame constant needs encode, decode, and per-role handler arms",
	Run:    runWireState,
	Finish: finishWireState,
}

// WireEnumFact is the package fact a "wire" package exports: one entry
// per frame-type constant with its declared handler roles and its local
// encode/decode status.
type WireEnumFact struct {
	// Consts lists the package's frame-type constants, sorted by name.
	Consts []WireConst `json:"consts"`
}

// AFact marks WireEnumFact as a fact.
func (*WireEnumFact) AFact() {}

// WireConst describes one frame-type constant.
type WireConst struct {
	// Name is the constant's identifier (TypeHello, ...).
	Name string `json:"name"`
	// Roles are the declared handler roles from the handled-by marker.
	Roles []string `json:"roles"`
	// Encoded reports a flushFrame encode arm in the wire package.
	Encoded bool `json:"encoded"`
	// Decoded reports a Read* decoder method or a payload-free marker.
	Decoded bool `json:"decoded"`
	// Pos locates the constant's declaration.
	Pos FactPos `json:"pos"`
}

// WireDispatchFact is the package fact any package exports when it
// contains annotated dispatch switches or wire-handled markers: the union
// of frame constants each role handles here.
type WireDispatchFact struct {
	// Handled maps role -> sorted constant names handled in this package.
	Handled map[string][]string `json:"handled"`
}

// AFact marks WireDispatchFact as a fact.
func (*WireDispatchFact) AFact() {}

func init() {
	RegisterFact(func() Fact { return new(WireEnumFact) })
	RegisterFact(func() Fact { return new(WireDispatchFact) })
}

var (
	handledByRe    = regexp.MustCompile(`handled-by:[ \t]*([a-z][a-z, \t]*)`)
	wireDispatchRe = regexp.MustCompile(`wire-dispatch:\s*([a-z]+)`)
	wireHandledRe  = regexp.MustCompile(`wire-handled:\s*([a-z]+)\s+(\w+)`)
)

// wireRoles are the protocol endpoints a frame can declare as handler.
var wireRoles = map[string]bool{"coordinator": true, "worker": true}

func runWireState(pass *Pass) error {
	if pass.Pkg.Name() == "wire" {
		collectWireEnum(pass)
	}
	collectWireDispatch(pass)
	return nil
}

// collectWireEnum gathers the wire package's frame constants, their
// handled-by declarations, and their local encode/decode arms, reporting
// missing or malformed markers immediately and exporting the rest as the
// package's WireEnumFact.
func collectWireEnum(pass *Pass) {
	var consts []WireConst

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				text := ""
				if vs.Doc != nil {
					text += vs.Doc.Text() + "\n"
				}
				if vs.Comment != nil {
					text += vs.Comment.Text()
				}
				for _, name := range vs.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || !wireTypeConst(obj) {
						continue
					}
					wc := WireConst{
						Name: name.Name,
						Pos:  factPos(pass.Fset.Position(name.Pos())),
					}
					if m := handledByRe.FindStringSubmatch(text); m != nil {
						for _, role := range strings.Split(m[1], ",") {
							role = strings.TrimSpace(role)
							if role == "" {
								continue
							}
							if !wireRoles[role] {
								pass.Reportf(name.Pos(),
									"wire constant %s declares unknown handler role %q (want coordinator and/or worker)",
									name.Name, role)
								continue
							}
							wc.Roles = append(wc.Roles, role)
						}
						sort.Strings(wc.Roles)
					} else {
						pass.Reportf(name.Pos(),
							"wire constant %s has no handled-by marker: declare its consumer(s) with `// handled-by: coordinator[,worker]`",
							name.Name)
					}
					consts = append(consts, wc)
				}
			}
		}
	}
	if len(consts) == 0 {
		return
	}

	// Local encode/decode arms, collected the way wirecheck does: encode =
	// the constant reaches a flushFrame call; decode = a Read<Suffix>
	// method exists or the constant is marked payload-free.
	encoded := make(map[string]bool)
	readers := make(map[string]bool)
	payloadFree := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil && strings.HasPrefix(d.Name.Name, "Read") {
					readers[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if commentContains(vs.Doc, "payload-free") || commentContains(vs.Comment, "payload-free") {
						for _, name := range vs.Names {
							payloadFree[name.Name] = true
						}
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !calleeNamed(call, "flushFrame") {
				return true
			}
			for _, arg := range call.Args {
				if id := constIdent(pass, arg); id != "" {
					encoded[id] = true
				}
			}
			return true
		})
	}
	for i := range consts {
		consts[i].Encoded = encoded[consts[i].Name]
		suffix := strings.TrimPrefix(consts[i].Name, "Type")
		consts[i].Decoded = payloadFree[consts[i].Name] || readers["Read"+suffix]
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Name < consts[j].Name })
	pass.ExportPackageFact(&WireEnumFact{Consts: consts})
}

// collectWireDispatch gathers, in any package, the case arms of switches
// annotated `// wire-dispatch: <role>` plus inline `// wire-handled:
// <role> <Const>` markers, and exports the per-role union.
func collectWireDispatch(pass *Pass) {
	handled := make(map[string]map[string]bool)
	add := func(role, constName string) {
		set := handled[role]
		if set == nil {
			set = make(map[string]bool)
			handled[role] = set
		}
		set[constName] = true
	}

	for _, f := range pass.Files {
		// Map marker comments by line: wire-dispatch markers annotate the
		// switch on the same or the next line; wire-handled markers stand
		// alone.
		dispatchAt := make(map[int]string)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pass.Fset.Position(c.Pos())
				if strings.HasSuffix(pos.Filename, "_test.go") {
					continue
				}
				if m := wireDispatchRe.FindStringSubmatch(c.Text); m != nil {
					if wireRoles[m[1]] {
						dispatchAt[pos.Line] = m[1]
					} else {
						pass.Reportf(c.Pos(), "wire-dispatch marker names unknown role %q (want coordinator or worker)", m[1])
					}
				}
				if m := wireHandledRe.FindStringSubmatch(c.Text); m != nil {
					if wireRoles[m[1]] {
						add(m[1], m[2])
					} else {
						pass.Reportf(c.Pos(), "wire-handled marker names unknown role %q (want coordinator or worker)", m[1])
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Body == nil {
				return true
			}
			line := pass.Fset.Position(sw.Pos()).Line
			role := dispatchAt[line]
			if role == "" {
				role = dispatchAt[line-1]
			}
			if role == "" {
				return true
			}
			for _, cl := range sw.Body.List {
				cc := cl.(*ast.CaseClause)
				for _, e := range cc.List {
					if obj := switchCaseObj(pass, e); obj != nil && wireTypeConst(obj) {
						add(role, obj.Name())
					}
				}
			}
			return true
		})
	}
	if len(handled) == 0 {
		return
	}
	fact := &WireDispatchFact{Handled: make(map[string][]string, len(handled))}
	for role, set := range handled {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		fact.Handled[role] = names
	}
	pass.ExportPackageFact(fact)
}

// finishWireState unions every package's dispatch arms and verifies each
// frame constant's three arms: encode, decode, and a handler per declared
// role.
func finishWireState(s *Session) error {
	handled := make(map[string]map[string]bool)
	for _, sf := range s.AllPackageFacts(&WireDispatchFact{}) {
		df := sf.Fact.(*WireDispatchFact)
		for role, names := range df.Handled {
			set := handled[role]
			if set == nil {
				set = make(map[string]bool)
				handled[role] = set
			}
			for _, n := range names {
				set[n] = true
			}
		}
	}
	for _, sf := range s.AllPackageFacts(&WireEnumFact{}) {
		ef := sf.Fact.(*WireEnumFact)
		for _, wc := range ef.Consts {
			pos := wc.Pos.Position()
			if !wc.Encoded {
				s.Reportf("wirestate", pos,
					"wire constant %s has no encode arm: no Writer method passes it to flushFrame", wc.Name)
			}
			if !wc.Decoded {
				s.Reportf("wirestate", pos,
					"wire constant %s has no decode arm: declare Read%s on Reader or mark the constant payload-free",
					wc.Name, strings.TrimPrefix(wc.Name, "Type"))
			}
			for _, role := range wc.Roles {
				if !handled[role][wc.Name] {
					s.Reportf("wirestate", pos,
						"wire constant %s declares handled-by: %s but no %s dispatch handles it: add a case in a `// wire-dispatch: %s` switch or a `// wire-handled: %s %s` marker",
						wc.Name, role, role, role, role, wc.Name)
				}
			}
		}
	}
	return nil
}
