package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// WireCheck keeps the frame protocol in internal/wire closed under
// encode/decode and keeps every dispatcher honest about unknown opcodes:
//
//   - Inside a package named "wire", every frame-type constant (a package-
//     level constant whose name starts with "Type") must reach the encoder
//     (appear as the argument of a flushFrame call) and must be decodable:
//     either the Reader declares a matching Read<Suffix> method, or the
//     constant carries a "payload-free" comment marking frames with no
//     body to decode.
//   - In every package, a switch whose cases compare against wire frame-
//     type constants must either list all of them or carry a default
//     clause, so an unexpected opcode is handled explicitly instead of
//     falling through silently.
var WireCheck = &Analyzer{
	Name: "wirecheck",
	Doc:  "wire opcodes need encoder+decoder coverage; opcode switches need default or exhaustive cases",
	Run:  runWireCheck,
}

func runWireCheck(pass *Pass) error {
	if pass.Pkg.Name() == "wire" {
		checkWireEnum(pass)
	}
	checkOpcodeSwitches(pass)
	return nil
}

// wireTypeConst reports whether obj is a frame-type enum constant: a
// package-level constant named Type* declared in a package named wire.
func wireTypeConst(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Name() != "wire" {
		return false
	}
	return strings.HasPrefix(c.Name(), "Type") && c.Parent() == c.Pkg().Scope()
}

// checkWireEnum verifies encoder and decoder coverage for every frame-type
// constant declared in this package.
func checkWireEnum(pass *Pass) {
	type constDecl struct {
		name        string
		pos         ast.Node
		payloadFree bool
	}
	var consts []constDecl

	// Collect Type* constants and their payload-free markers.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				marker := commentContains(vs.Doc, "payload-free") ||
					commentContains(vs.Comment, "payload-free")
				for _, name := range vs.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || !wireTypeConst(obj) {
						continue
					}
					consts = append(consts, constDecl{name: name.Name, pos: name, payloadFree: marker})
				}
			}
		}
	}
	if len(consts) == 0 {
		return
	}

	// Collect encode sites (flushFrame arguments) and Read* methods.
	encoded := make(map[string]bool)
	readers := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv != nil && strings.HasPrefix(fd.Name.Name, "Read") {
				readers[fd.Name.Name] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !calleeNamed(call, "flushFrame") {
				return true
			}
			for _, arg := range call.Args {
				if id := constIdent(pass, arg); id != "" {
					encoded[id] = true
				}
			}
			return true
		})
	}

	for _, c := range consts {
		if !encoded[c.name] {
			pass.Reportf(c.pos.Pos(),
				"opcode %s has no encoder: no Writer method passes it to flushFrame", c.name)
		}
		suffix := strings.TrimPrefix(c.name, "Type")
		if !c.payloadFree && !readers["Read"+suffix] {
			pass.Reportf(c.pos.Pos(),
				"opcode %s has no decoder: declare Read%s on Reader or mark the constant payload-free",
				c.name, suffix)
		}
	}
}

// commentContains reports whether a comment group mentions the marker.
func commentContains(cg *ast.CommentGroup, marker string) bool {
	return cg != nil && strings.Contains(cg.Text(), marker)
}

// calleeNamed reports whether call invokes a plain or method identifier
// with the given name.
func calleeNamed(call *ast.CallExpr, name string) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == name
	case *ast.SelectorExpr:
		return fun.Sel.Name == name
	}
	return false
}

// constIdent returns the name of the constant an expression resolves to.
func constIdent(pass *Pass, e ast.Expr) string {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		if _, ok := obj.(*types.Const); ok {
			return obj.Name()
		}
	}
	return ""
}

// checkOpcodeSwitches enforces default-or-exhaustive on switches over wire
// frame types, in whatever package they appear.
func checkOpcodeSwitches(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Body == nil {
				return true
			}
			covered := make(map[string]bool)
			var enumPkg *types.Package
			hasDefault := false
			usesWireEnum := false
			for _, cl := range sw.Body.List {
				cc := cl.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					obj := switchCaseObj(pass, e)
					if obj != nil && wireTypeConst(obj) {
						usesWireEnum = true
						covered[obj.Name()] = true
						enumPkg = obj.Pkg()
					}
				}
			}
			if !usesWireEnum || hasDefault {
				return true
			}
			missing := missingEnumConsts(enumPkg, covered)
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"switch over wire frame types has no default and misses %s: handle them or add a default clause",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// switchCaseObj resolves a case expression to its constant object.
func switchCaseObj(pass *Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return pass.Info.Uses[x]
	case *ast.SelectorExpr:
		return pass.Info.Uses[x.Sel]
	}
	return nil
}

// missingEnumConsts lists the wire frame-type constants of pkg absent from
// covered, sorted by enum value.
func missingEnumConsts(pkg *types.Package, covered map[string]bool) []string {
	if pkg == nil {
		return nil
	}
	type entry struct {
		name string
		val  uint64
	}
	var missing []entry
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !wireTypeConst(obj) || covered[name] {
			continue
		}
		val, _ := constant.Uint64Val(constant.ToInt(obj.(*types.Const).Val()))
		missing = append(missing, entry{name: name, val: val})
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].val < missing[j].val })
	out := make([]string, len(missing))
	for i, m := range missing {
		out[i] = fmt.Sprintf("%s.%s", pkg.Name(), m.name)
	}
	return out
}
