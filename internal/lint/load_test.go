package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadDirErrors covers the fixture loader's failure branches.
func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join("testdata", "no-such-dir")); err == nil {
		t.Error("LoadDir on a missing directory succeeded")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("LoadDir on an empty directory: err = %v", err)
	}
	broken := t.TempDir()
	if err := os.WriteFile(filepath.Join(broken, "bad.go"), []byte("package broken\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(broken); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Errorf("LoadDir on unparsable source: err = %v", err)
	}
	typebad := t.TempDir()
	if err := os.WriteFile(filepath.Join(typebad, "bad.go"), []byte("package typebad\nvar x undefinedType\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(typebad); err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("LoadDir on untypeable source: err = %v", err)
	}
}

// TestLoadErrors covers the go list fallback path: bad patterns and bad
// directories must surface go list's stderr, not a crash.
func TestLoadErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	if _, err := Load("", []string{"./no/such/pattern/..."}); err == nil || !strings.Contains(err.Error(), "go list") {
		t.Errorf("Load with a bad pattern: err = %v", err)
	}
	if _, err := Load(string(filepath.Separator)+"no-such-dir-for-lint-test", []string{"./..."}); err == nil {
		t.Error("Load with a bad dir succeeded")
	}
}

// TestTypecheckFilesMissingExport covers the export-data lookup error
// branch: an import with no export data available must fail cleanly.
func TestTypecheckFilesMissingExport(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte("package p\nimport \"strings\"\nvar X = strings.ToUpper(\"x\")\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, map[string]string{}) // no export data at all
	if _, err := TypecheckFiles(fset, "p", []string{src}, imp); err == nil {
		t.Error("TypecheckFiles resolved an import with no export data")
	}
}

// parseOne parses a single source string for ignore-index tests.
func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// TestIgnoreIndexMultiAnalyzer checks multi-analyzer ignore lists: each
// listed analyzer is suppressed on the directive's line and the next,
// unlisted analyzers are not.
func TestIgnoreIndexMultiAnalyzer(t *testing.T) {
	fset, files := parseOne(t, `package p

//lint:ignore lockcheck,allocheck documented reason
var x = 1
`)
	var diags []Diagnostic
	idx := buildIgnoreIndex(fset, files, &diags)
	if len(diags) != 0 {
		t.Fatalf("well-formed directive reported: %v", diags)
	}
	pos := token.Position{Filename: "ignore.go", Line: 4}
	for _, a := range []string{"lockcheck", "allocheck"} {
		if !idx.covers(pos, a) {
			t.Errorf("line 4 not covered for %s", a)
		}
		if !idx.covers(token.Position{Filename: "ignore.go", Line: 3}, a) {
			t.Errorf("directive line not covered for %s", a)
		}
	}
	if idx.covers(pos, "wirecheck") {
		t.Error("unlisted analyzer suppressed")
	}
	if idx.covers(token.Position{Filename: "ignore.go", Line: 5}, "lockcheck") {
		t.Error("coverage leaked past the next line")
	}
}

// TestIgnoreIndexMandatoryReason checks that a directive without a reason
// (or without an analyzer list) suppresses nothing and is itself
// reported as a malformed-directive finding.
func TestIgnoreIndexMandatoryReason(t *testing.T) {
	fset, files := parseOne(t, `package p

//lint:ignore lockcheck
var x = 1

//lint:ignore
var y = 2
`)
	var diags []Diagnostic
	idx := buildIgnoreIndex(fset, files, &diags)
	if len(diags) != 2 {
		t.Fatalf("malformed directives reported %d findings, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "lint" || !strings.Contains(d.Message, "malformed //lint:ignore") {
			t.Errorf("unexpected malformed-directive finding: %s", d)
		}
	}
	if idx.covers(token.Position{Filename: "ignore.go", Line: 4}, "lockcheck") {
		t.Error("reason-less directive suppressed a finding")
	}
}
