package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxCheck enforces the cancellation contract of the RPC layer:
//
//   - No struct may store a context.Context in a field, in any package.
//     Contexts are call-scoped; a stored context outlives its cancel
//     semantics (the rule go vet's "containedctx"-style checks encode).
//   - In a package named "remote", every exported function or method whose
//     name marks it as a blocking RPC entry point (prefixes Run, Serve,
//     Dial, Handle) must accept a context.Context as its first parameter,
//     so callers can cancel network work.
//   - A function that already has a context.Context parameter must not
//     synthesize a fresh root with context.Background or context.TODO —
//     that silently detaches the callee from the caller's cancellation.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "RPC entry points take a ctx first; no ctx in structs; no Background under a live ctx",
	Run:  runCtxCheck,
}

// entryPointPrefixes mark blocking RPC operations in package remote.
var entryPointPrefixes = []string{"Run", "Serve", "Dial", "Handle"}

func runCtxCheck(pass *Pass) error {
	checkCtxFields(pass)
	if pass.Pkg.Name() == "remote" {
		checkEntryPoints(pass)
	}
	checkDetachedContexts(pass)
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				t, ok := pass.Info.Types[field.Type]
				if !ok || !isContextType(t.Type) {
					continue
				}
				pass.Reportf(field.Pos(),
					"context.Context stored in a struct field: pass it as a parameter instead")
			}
			return true
		})
	}
}

// checkEntryPoints requires ctx-first signatures on exported RPC entry
// points.
func checkEntryPoints(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !hasEntryPointName(fd.Name.Name) {
				continue
			}
			params := fd.Type.Params
			if params != nil && len(params.List) > 0 {
				if t, ok := pass.Info.Types[params.List[0].Type]; ok && isContextType(t.Type) {
					continue
				}
			}
			pass.Reportf(fd.Name.Pos(),
				"RPC entry point %s must take a context.Context as its first parameter", fd.Name.Name)
		}
	}
}

func hasEntryPointName(name string) bool {
	for _, p := range entryPointPrefixes {
		if !strings.HasPrefix(name, p) {
			continue
		}
		// The prefix must end on a word boundary: Handle and HandleSession
		// are entry points, Handler is a noun (likewise Runner, Dialer).
		rest := name[len(p):]
		if rest == "" || rest[0] >= 'A' && rest[0] <= 'Z' {
			return true
		}
	}
	return false
}

// checkDetachedContexts flags context.Background/TODO calls inside
// functions that already receive a context.
func checkDetachedContexts(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcTakesContext(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					pass.Reportf(call.Pos(),
						"context.%s inside a function that receives a ctx: propagate the caller's context",
						fn.Name())
				}
				return true
			})
		}
	}
}

// funcTakesContext reports whether fd has a context.Context parameter.
func funcTakesContext(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t, ok := pass.Info.Types[field.Type]; ok && isContextType(t.Type) {
			return true
		}
	}
	return false
}
