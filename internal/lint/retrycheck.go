package lint

import (
	"go/ast"
	"go/types"
)

// RetryCheck enforces the cancellation contract of retry loops: in any
// function that receives a context.Context, a for-loop that sleeps
// (time.Sleep, or a receive from time.After) must consult the context in
// the same innermost loop — select on ctx.Done(), check ctx.Err(), or
// delegate the wait to a ctx-accepting helper (e.g. a sleepCtx-style
// function called with the context). A backoff loop without such a check
// keeps a cancelled operation alive for the rest of its retry budget,
// which in the fault-tolerant coordinator means shutdown stalls for the
// full backoff schedule of every dead worker.
//
// Nested function literals are analyzed as their own scope: a sleep
// inside a goroutine body neither condemns nor excuses the enclosing
// loop.
var RetryCheck = &Analyzer{
	Name: "retrycheck",
	Doc:  "retry/backoff loops under a ctx must check cancellation each iteration",
	Run:  runRetryCheck,
}

func runRetryCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && fieldListTakesContext(pass, fn.Type.Params) {
					checkRetryLoops(pass, fn.Body)
				}
			case *ast.FuncLit:
				if fieldListTakesContext(pass, fn.Type.Params) {
					checkRetryLoops(pass, fn.Body)
				}
			}
			return true
		})
	}
	return nil
}

// fieldListTakesContext reports whether any parameter is a context.Context.
func fieldListTakesContext(pass *Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if t, ok := pass.Info.Types[field.Type]; ok && isContextType(t.Type) {
			return true
		}
	}
	return false
}

// checkRetryLoops walks one function body and reports every for/range
// loop that sleeps without a cancellation check in its own (innermost)
// statement list. Function literals are skipped — they form their own
// scope and are picked up by runRetryCheck when they take a ctx.
func checkRetryLoops(pass *Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch loop := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				inspectLoop(pass, loop, loop.Body, walk)
				return false
			case *ast.RangeStmt:
				inspectLoop(pass, loop, loop.Body, walk)
				return false
			}
			return true
		})
	}
	walk(body)
}

// inspectLoop classifies the statements that belong directly to this loop
// (stopping at nested loops and func literals), reports when it sleeps
// without checking the context, and recurses into nested loops so each
// level is judged on its own statements.
func inspectLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt, walk func(ast.Node)) {
	sleeps := false
	cancelAware := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch inner := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			// A sleep in a nested loop belongs to that loop; judge it
			// separately below.
			walk(n)
			return false
		case *ast.CallExpr:
			if isTimeSleepOrAfter(pass, inner) {
				sleeps = true
			}
			if callConsultsContext(pass, inner) {
				cancelAware = true
			}
		}
		return true
	})
	if sleeps && !cancelAware {
		pass.Reportf(loop.Pos(),
			"retry loop sleeps without a context cancellation check: select on ctx.Done or check ctx.Err each iteration")
	}
}

// isTimeSleepOrAfter matches time.Sleep and time.After calls.
func isTimeSleepOrAfter(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	return fn.Name() == "Sleep" || fn.Name() == "After"
}

// callConsultsContext reports whether a call observes cancellation: a
// ctx.Done()/ctx.Err() method call, or any call handed a context.Context
// argument (a ctx-accepting helper owns the cancellation check).
func callConsultsContext(pass *Pass, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Done" || sel.Sel.Name == "Err" {
			if t, ok := pass.Info.Types[sel.X]; ok && isContextType(t.Type) {
				return true
			}
		}
	}
	for _, arg := range call.Args {
		if t, ok := pass.Info.Types[arg]; ok && isContextType(t.Type) {
			return true
		}
	}
	return false
}
