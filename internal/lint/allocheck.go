package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocCheck statically verifies the `// hotpath: zero-alloc` contract:
// a function carrying that marker in its doc comment — the emit path, the
// batch pool, the verifier pool's claim loop — must be free of allocation
// sites, and so must every function it statically calls, transitively,
// across package boundaries. The benchmark (BenchmarkEmitPath, 0
// allocs/op) proves the property dynamically for the inputs it runs;
// this analyzer enforces it for every path through the code.
//
// Allocation sites: make/new, escaping composite literals (&T{...},
// slice and map literals), append outside the amortized self-append form
// `x = append(x, ...)`, function literals and method values (closure
// allocation), go statements, string concatenation, map writes,
// conversions of concrete values to interface types (boxing), and
// variadic calls without a `...` spread (the argument slice). Plain
// struct value literals are allowed — they live in registers or the
// caller's frame.
//
// Call-tree coverage uses facts: every package exports an AllocFact per
// function recording its transitive allocation status, and a hot
// function's cross-package calls consult the callee's fact. Dynamic
// calls — func values, interface methods — cannot be resolved statically
// and are trusted (their signatures are still checked for boxing at the
// call site); the benchmark remains the gate for those. Calls into the
// standard library are allowed only for packages known alloc-free on
// these paths (sync, sync/atomic, time, math, math/bits, errors.Is);
// anything else is reported as unverifiable.
var AllocCheck = &Analyzer{
	Name: "allocheck",
	Doc:  "functions marked `// hotpath: zero-alloc` (and their call trees) must not allocate",
	Run:  runAllocCheck,
}

// AllocFact, exported on every package-level function and method, records
// whether the function may allocate on some path, transitively through
// its static callees. Dependent packages consult it when a hot path calls
// across a package boundary.
type AllocFact struct {
	// Allocates reports whether any path through the function allocates.
	Allocates bool `json:"allocates"`
	// What describes the first allocation site when Allocates is true.
	What string `json:"what,omitempty"`
}

// AFact marks AllocFact as a fact.
func (*AllocFact) AFact() {}

func init() {
	RegisterFact(func() Fact { return new(AllocFact) })
}

// hotpathMarker is the doc-comment annotation that opts a function into
// static zero-alloc verification.
const hotpathMarker = "hotpath: zero-alloc"

// allocSite is one direct allocation found in a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocCall is one static call found in a function body, to be resolved
// against the callee's summary or fact.
type allocCall struct {
	pos    token.Pos
	callee *types.Func
}

// allocSummary is the per-function result of the body scan.
type allocSummary struct {
	decl  *ast.FuncDecl
	hot   bool
	sites []allocSite
	calls []allocCall
	// allocates/what is the transitive status after the fixpoint.
	allocates bool
	what      string
	whatPos   token.Pos
}

// allocSafeStdlib lists standard-library packages whose functions are
// trusted not to allocate on the paths hot code uses (sync.Pool recycles,
// atomics and time reads are value-returning).
var allocSafeStdlib = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"time":        true,
	"math":        true,
	"math/bits":   true,
}

func runAllocCheck(pass *Pass) error {
	c := &allocChecker{pass: pass, summaries: make(map[*types.Func]*allocSummary)}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := &allocSummary{decl: fd, hot: hasHotpathMarker(fd)}
			c.scanBody(fd.Body, sum)
			c.summaries[obj] = sum
			order = append(order, obj)
		}
	}

	// Seed transitive status: direct sites, then cross-package callee
	// facts and unverifiable calls.
	for _, fn := range order {
		sum := c.summaries[fn]
		if len(sum.sites) > 0 {
			sum.allocates = true
			sum.what = sum.sites[0].what
			sum.whatPos = sum.sites[0].pos
			continue
		}
		for _, call := range sum.calls {
			if call.callee.Pkg() == pass.Pkg {
				continue // resolved in the fixpoint below
			}
			if what, bad := c.externalAllocates(call.callee); bad {
				sum.allocates = true
				sum.what = what
				sum.whatPos = call.pos
				break
			}
		}
	}

	// Fixpoint over same-package calls: a caller allocates if any callee
	// does. Iterate until stable (recursion converges: status only flips
	// false -> true).
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			sum := c.summaries[fn]
			if sum.allocates {
				continue
			}
			for _, call := range sum.calls {
				callee, ok := c.summaries[call.callee]
				if !ok || !callee.allocates {
					continue
				}
				sum.allocates = true
				sum.what = "call to " + calleeName(call.callee) + ", which allocates (" + callee.what + ")"
				sum.whatPos = call.pos
				changed = true
				break
			}
		}
	}

	// Export facts for dependents, report violations on hot functions.
	for _, fn := range order {
		sum := c.summaries[fn]
		if objectPath(fn) != "" {
			pass.ExportObjectFact(fn, &AllocFact{Allocates: sum.allocates, What: sum.what})
		}
		if !sum.hot {
			continue
		}
		if sum.allocates {
			// Report the first offending site; further sites surface once
			// the first is fixed, keeping the output focused.
			pass.Reportf(sum.whatPos, "hot path %s allocates: %s", fn.Name(), sum.what)
		}
		// Every additional direct site also gets its own diagnostic so a
		// fix-all sweep sees the full list at once.
		for _, site := range sum.sites[min(1, len(sum.sites)):] {
			pass.Reportf(site.pos, "hot path %s allocates: %s", fn.Name(), site.what)
		}
	}
	return nil
}

// hasHotpathMarker reports whether the function's doc comment carries the
// zero-alloc annotation.
func hasHotpathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, hotpathMarker) {
			return true
		}
	}
	return false
}

// allocChecker carries one package's allocheck state.
type allocChecker struct {
	pass      *Pass
	summaries map[*types.Func]*allocSummary
}

// externalAllocates resolves a cross-package callee: the stdlib
// allowlist first, then its AllocFact when one was exported (dependency
// packages run first). The allowlist takes precedence because it encodes
// an amortization judgment facts cannot express — under the vet
// protocol, facts get computed for stdlib dependencies too, and a
// literal scan of sync.Pool.Get sees its one-time pinSlow allocation
// even though the steady-state path is alloc-free. Unknown externals
// count as allocating — unverifiable is a finding, not a pass.
func (c *allocChecker) externalAllocates(callee *types.Func) (what string, bad bool) {
	pkg := callee.Pkg()
	if pkg == nil || allocSafeStdlib[pkg.Path()] {
		return "", false
	}
	var af AllocFact
	if c.pass.ImportObjectFact(callee, &af) {
		if af.Allocates {
			return "call to " + calleeName(callee) + ", which allocates (" + af.What + ")", true
		}
		return "", false
	}
	return "call to " + calleeName(callee) + " (package " + pkg.Path() + " not verified alloc-free)", true
}

// scanBody walks one function body recording direct allocation sites and
// static call sites. Function literals are themselves sites; their bodies
// are not descended into (a closure that never runs still allocates, and
// if it runs on the hot path it should carry its own named declaration).
func (c *allocChecker) scanBody(body *ast.BlockStmt, sum *allocSummary) {
	info := c.pass.Info
	// callFuns marks expressions appearing as the Fun of a call, so a
	// selector that *invokes* a method is not misread as a method value.
	callFuns := make(map[ast.Expr]bool)
	// selfAppends marks append calls in the amortized self-assign form.
	selfAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			callFuns[x.Fun] = true
		case *ast.AssignStmt:
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				if call, ok := x.Rhs[0].(*ast.CallExpr); ok && isBuiltinCall(info, call, "append") {
					if len(call.Args) > 0 && types.ExprString(call.Args[0]) == types.ExprString(x.Lhs[0]) {
						selfAppends[call] = true
					}
				}
			}
		}
		return true
	})

	site := func(pos token.Pos, what string) {
		sum.sites = append(sum.sites, allocSite{pos: pos, what: what})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			site(x.Pos(), "function literal (closure allocation)")
			return false
		case *ast.GoStmt:
			site(x.Pos(), "go statement (new goroutine)")
			return false
		case *ast.CompositeLit:
			c.compositeLit(x, site)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := x.X.(*ast.CompositeLit); ok {
					site(lit.Pos(), "escaping composite literal (&"+types.ExprString(lit.Type)+"{...})")
					return false
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
				site(x.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
				site(x.Pos(), "string concatenation (+=)")
			}
			for _, lhs := range x.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
						site(lhs.Pos(), "map write (may grow the map)")
					}
				}
			}
			c.boxingAssign(x, site)
		case *ast.SelectorExpr:
			if !callFuns[x] {
				if fsel, ok := info.Selections[x]; ok && fsel.Kind() == types.MethodVal {
					site(x.Pos(), "method value (closure allocation)")
				}
			}
		case *ast.CallExpr:
			c.callExpr(x, selfAppends, site, sum)
		}
		return true
	})
}

// compositeLit flags slice and map literals (backing store allocation);
// struct and array value literals pass.
func (c *allocChecker) compositeLit(lit *ast.CompositeLit, site func(token.Pos, string)) {
	t := c.pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		site(lit.Pos(), "slice literal (backing array allocation)")
	case *types.Map:
		site(lit.Pos(), "map literal")
	}
}

// callExpr classifies one call: builtin make/new/append, conversion to
// interface, variadic argument slice, interface boxing at arguments, and
// static callee recording.
func (c *allocChecker) callExpr(call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, site func(token.Pos, string), sum *allocSummary) {
	info := c.pass.Info
	// Builtins.
	if name, ok := builtinName(info, call); ok {
		switch name {
		case "make":
			site(call.Pos(), "make")
		case "new":
			site(call.Pos(), "new")
		case "append":
			if !selfAppends[call] {
				site(call.Pos(), "append outside the self-assign form `x = append(x, ...)`")
			}
		}
		return
	}
	// Conversions: T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && !types.IsInterface(info.TypeOf(call.Args[0])) {
			site(call.Pos(), "conversion to interface type (boxing)")
		}
		return
	}
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig != nil {
		if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
			site(call.Pos(), "variadic call (argument slice allocation)")
		}
		c.boxingArgs(call, sig, site)
	}
	// Static callee for the transitive check.
	if callee := staticCalleeOf(info, call); callee != nil {
		sum.calls = append(sum.calls, allocCall{pos: call.Pos(), callee: callee})
	}
}

// boxingArgs flags concrete values passed to interface-typed parameters.
func (c *allocChecker) boxingArgs(call *ast.CallExpr, sig *types.Signature, site func(token.Pos, string)) {
	info := c.pass.Info
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if isUntypedNil(info, arg) {
			continue
		}
		site(arg.Pos(), "interface conversion at argument (boxing)")
	}
}

// boxingAssign flags concrete values assigned to interface-typed
// destinations.
func (c *allocChecker) boxingAssign(x *ast.AssignStmt, site func(token.Pos, string)) {
	info := c.pass.Info
	if len(x.Lhs) != len(x.Rhs) {
		return
	}
	for i := range x.Lhs {
		lt := info.TypeOf(x.Lhs[i])
		rt := info.TypeOf(x.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if types.IsInterface(lt) && !types.IsInterface(rt) && !isUntypedNil(info, x.Rhs[i]) {
			site(x.Rhs[i].Pos(), "interface conversion in assignment (boxing)")
		}
	}
}

// builtinName resolves a call to a builtin's name.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	n, ok := builtinName(info, call)
	return ok && n == name
}

// staticCalleeOf resolves a call's static callee function, nil for
// dynamic calls.
func staticCalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isUntypedNil reports whether e is the predeclared nil.
func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
