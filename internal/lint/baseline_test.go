package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testDiag builds a diagnostic for baseline and SARIF tests.
func testDiag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 2},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestBaselineRoundtrip checks Write/Read and the diff semantics: line
// moves don't count as new, new messages and extra occurrences do.
func TestBaselineRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	orig := []Diagnostic{
		testDiag("allocheck", "a.go", 10, "hot path f allocates: make"),
		testDiag("lockorder", "b.go", 20, "potential deadlock"),
	}
	if err := WriteBaseline(path, orig); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("baseline has %d entries, want 2", len(entries))
	}

	// Same findings on different lines: nothing new.
	moved := []Diagnostic{
		testDiag("allocheck", "a.go", 99, "hot path f allocates: make"),
		testDiag("lockorder", "b.go", 1, "potential deadlock"),
	}
	if fresh := NewFindings(moved, entries); len(fresh) != 0 {
		t.Errorf("line moves flagged as new: %v", fresh)
	}

	// A brand-new message fails; the baselined one is still absorbed.
	withNew := append(moved, testDiag("wirestate", "c.go", 5, "no encode arm"))
	fresh := NewFindings(withNew, entries)
	if len(fresh) != 1 || fresh[0].Analyzer != "wirestate" {
		t.Errorf("new finding not isolated: %v", fresh)
	}

	// A second occurrence of a baselined (analyzer, file, message) needs a
	// second baseline entry: matching is a multiset, not a set.
	dup := append(moved, testDiag("allocheck", "a.go", 120, "hot path f allocates: make"))
	if fresh := NewFindings(dup, entries); len(fresh) != 1 {
		t.Errorf("duplicate occurrence not flagged: %v", fresh)
	}
}

// TestReadBaselineMissing treats a missing file as an empty baseline.
func TestReadBaselineMissing(t *testing.T) {
	entries, err := ReadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || entries != nil {
		t.Fatalf("missing baseline: entries=%v err=%v", entries, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(bad); err == nil {
		t.Error("corrupt baseline accepted")
	}
}

// TestWriteSARIF validates the emitted document's shape: version, rule
// table, one result per diagnostic with a physical location, and valid
// JSON throughout.
func TestWriteSARIF(t *testing.T) {
	diags := []Diagnostic{
		testDiag("allocheck", "internal/stream/run.go", 10, "hot path Emit allocates: make"),
		testDiag("lint", "x.go", 3, "malformed //lint:ignore directive"),
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, All()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version=%q runs=%d", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "repolint" {
		t.Errorf("driver = %q", run.Tool.Driver.Name)
	}
	// 11 analyzers + the "lint" pseudo-rule referenced by a result.
	if len(run.Tool.Driver.Rules) != len(All())+1 {
		t.Errorf("rule table has %d entries, want %d", len(run.Tool.Driver.Rules), len(All())+1)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "allocheck" ||
		r.Locations[0].PhysicalLocation.ArtifactLocation.URI != "internal/stream/run.go" ||
		r.Locations[0].PhysicalLocation.Region.StartLine != 10 {
		t.Errorf("first result malformed: %+v", r)
	}
	if !strings.Contains(buf.String(), "sarif-2.1.0.json") {
		t.Error("schema reference missing")
	}
}
