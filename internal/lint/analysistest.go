package lint

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// wantRe matches fixture expectations: a trailing comment of the form
//
//	// want "regexp"
//
// on the line the analyzer must flag. Multiple diagnostics on one line use
// repeated quoted patterns: // want "first" "second".
var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var wantPatternRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one // want entry awaiting a matching diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// CheckFixture runs the analyzers over the fixture package in dir and
// compares the diagnostics against the // want comments embedded in the
// fixture sources. It returns one error per mismatch: a diagnostic no
// // want expects, or a // want no diagnostic satisfied. This is the
// stdlib stand-in for golang.org/x/tools/go/analysis/analysistest.
func CheckFixture(dir string, analyzers []*Analyzer) []error {
	pkg, err := LoadDir(dir)
	if err != nil {
		return []error{err}
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		return []error{err}
	}
	expects, err := collectWants(pkg)
	if err != nil {
		return []error{err}
	}

	var errs []error
	for _, d := range diags {
		if !claim(expects, d) {
			errs = append(errs, fmt.Errorf("unexpected diagnostic: %s", d))
		}
	}
	for _, e := range expects {
		if !e.matched {
			errs = append(errs, fmt.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, e.pattern))
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

// collectWants extracts the // want expectations from the fixture comments.
func collectWants(pkg *Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantPatternRe.FindAllString(m[1], -1) {
					text, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %w", pos, q, err)
					}
					re, err := regexp.Compile(text)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %w", pos, text, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}

// claim marks the first unmatched expectation satisfied by d.
func claim(expects []*expectation, d Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.line != d.Pos.Line || !sameFile(e.file, d.Pos.Filename) {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// sameFile compares paths by basename so absolute and relative spellings
// of the same fixture file agree.
func sameFile(a, b string) bool {
	return a == b || baseName(a) == baseName(b)
}

func baseName(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
