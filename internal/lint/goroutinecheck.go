package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroutineCheck bans fire-and-forget goroutines in the distribution
// layer. In the scoped packages (internal/remote, internal/stream,
// internal/topology, cmd/ssjoinworker), every `go` statement must be tied
// to an observable lifecycle:
//
//   - the goroutine calls (*sync.WaitGroup).Done, usually deferred, so a
//     collector can wg.Wait for it; or
//   - the goroutine participates in a channel protocol — it sends or
//     receives on a channel, ranges over one, or closes one — so its
//     termination is coupled to channel close or a completion signal.
//
// A bare `go` whose body touches neither is invisible to shutdown: nothing
// can wait for it, and the work it performs races process exit. Genuine
// process-lifetime goroutines must carry //lint:ignore goroutinecheck with
// a justification.
var GoroutineCheck = &Analyzer{
	Name: "goroutinecheck",
	Doc:  "goroutines in the distribution layer need a WaitGroup or channel lifecycle",
	Run:  runGoroutineCheck,
}

// goroutineScopes lists the package names and import-path suffixes the
// check applies to.
var goroutineScopes = struct {
	names    map[string]bool
	suffixes []string
}{
	names:    map[string]bool{"remote": true, "stream": true, "topology": true},
	suffixes: []string{"cmd/ssjoinworker"},
}

func inGoroutineScope(pkg *types.Package) bool {
	if goroutineScopes.names[pkg.Name()] {
		return true
	}
	for _, s := range goroutineScopes.suffixes {
		if strings.HasSuffix(pkg.Path(), s) {
			return true
		}
	}
	return false
}

func runGoroutineCheck(pass *Pass) error {
	if !inGoroutineScope(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineHasLifecycle(pass, g) {
				pass.Reportf(g.Pos(),
					"fire-and-forget goroutine: tie it to a sync.WaitGroup or a channel close/completion signal")
			}
			return true
		})
	}
	return nil
}

// goroutineHasLifecycle inspects the spawned function for a WaitGroup.Done
// call or any channel operation.
func goroutineHasLifecycle(pass *Pass, g *ast.GoStmt) bool {
	var body ast.Node
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		// `go f(...)`: inspect the call; without the callee body we accept
		// only calls that receive a channel or WaitGroup argument, which at
		// least proves the caller handed over a lifecycle handle.
		for _, arg := range g.Call.Args {
			if t, ok := pass.Info.Types[arg]; ok && carriesLifecycle(t.Type) {
				return true
			}
		}
		return false
	}

	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupDone(pass, x) || isChannelClose(pass, x) {
				found = true
			}
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := pass.Info.Types[x.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroupDone reports whether call is (*sync.WaitGroup).Done.
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync" && fn.Name() == "Done"
}

// isChannelClose reports whether call is the builtin close on a channel.
func isChannelClose(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// carriesLifecycle reports whether t is a channel or *sync.WaitGroup.
func carriesLifecycle(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
