package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ObsCheck keeps the metrics namespace scrapeable. Every family registered
// through an obs.Registry constructor (Counter, Gauge, Histogram, their
// *Func and *Vec variants) ends up on /metrics, where the name is the
// dashboard contract and the help string is the only documentation a
// scraper sees. The check therefore requires, at every registration call
// site whose arguments are compile-time constants:
//
//   - a snake_case metric name ([a-z][a-z0-9_]*) — the registry rejects
//     other names at runtime, but only on the code path that registers
//     them, which for rarely-exercised gauges can be long after merge;
//   - non-blank help text, so `# HELP` lines never ship empty.
//
// Names or help strings computed at runtime are out of static reach and
// pass unexamined; the registry's own validation remains the backstop.
var ObsCheck = &Analyzer{
	Name: "obscheck",
	Doc:  "metrics registered on an obs.Registry need snake_case names and non-empty help",
	Run:  runObsCheck,
}

// obsRegistryMethods are the Registry constructors that mint families.
var obsRegistryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true, "HistogramFunc": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

var obsNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func runObsCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !obsRegistryMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isObsRegistryMethod(fn) || len(call.Args) < 2 {
				return true
			}
			if name, ok := constString(pass, call.Args[0]); ok && !obsNameRe.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q is not snake_case: names must match [a-z][a-z0-9_]*", name)
			}
			if help, ok := constString(pass, call.Args[1]); ok && strings.TrimSpace(help) == "" {
				pass.Reportf(call.Args[1].Pos(),
					"metric registered without help text: the help string is the family's only documentation on /metrics")
			}
			return true
		})
	}
	return nil
}

// isObsRegistryMethod reports whether fn is a method on a named type
// Registry declared in a package named obs (matching by package name, not
// import path, so the fixture's local stand-in type is covered too).
func isObsRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// constString evaluates e as a compile-time string constant.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
