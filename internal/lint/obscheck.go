package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ObsCheck keeps the metrics namespace scrapeable. Every family registered
// through an obs.Registry constructor (Counter, Gauge, Histogram, their
// *Func and *Vec variants) ends up on /metrics, where the name is the
// dashboard contract and the help string is the only documentation a
// scraper sees. The check therefore requires, at every registration call
// site whose arguments are compile-time constants:
//
//   - a snake_case metric name ([a-z][a-z0-9_]*) — the registry rejects
//     other names at runtime, but only on the code path that registers
//     them, which for rarely-exercised gauges can be long after merge;
//   - non-blank help text, so `# HELP` lines never ship empty.
//
// Names or help strings computed at runtime are out of static reach and
// pass unexamined; the registry's own validation remains the backstop.
//
// The check also guards label cardinality: every labeled family (a *Vec)
// keeps one child series per distinct label value forever, so a label
// value computed at runtime — a record id, an address, anything attacker-
// or workload-shaped — grows /metrics without bound and eventually makes
// scrapes unpayable. Calls to With or SetFunc whose label argument is not
// a compile-time constant are therefore findings, unless the line (or the
// line above) carries an
//
//	// obscheck: bounded — <why the value set is finite>
//
// marker documenting why the dynamic value set is actually bounded (edge
// names fixed at wiring time, a task index capped by worker count, ...).
var ObsCheck = &Analyzer{
	Name: "obscheck",
	Doc:  "metrics registered on an obs.Registry need snake_case names, non-empty help, and bounded label cardinality",
	Run:  runObsCheck,
}

// obsRegistryMethods are the Registry constructors that mint families.
var obsRegistryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true, "HistogramFunc": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

var obsNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// obsVecLabelMethods take a label value as their first argument and mint
// a child series per distinct value.
var obsVecLabelMethods = map[string]bool{"With": true, "SetFunc": true}

// obsVecTypes are the labeled-family handle types those methods hang off.
var obsVecTypes = map[string]bool{"CounterVec": true, "GaugeVec": true, "HistogramVec": true}

// obsBoundedRe matches a well-formed bounded-cardinality marker: the
// justification after "bounded" is mandatory, so every suppression
// documents why the value set is finite.
// (The justification may not open with a slash, so a trailing comment
// does not pass for one.)
var obsBoundedRe = regexp.MustCompile(`^//\s*obscheck:\s*bounded\b\s*(?:—|--|-|:)?\s*[^\s/]`)

// obsBoundedPrefixRe catches markers that name the check but lack the
// justification.
var obsBoundedPrefixRe = regexp.MustCompile(`^//\s*obscheck:\s*bounded\b`)

func runObsCheck(pass *Pass) error {
	for _, f := range pass.Files {
		bounded := obsBoundedLines(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obsVecLabelMethods[sel.Sel.Name] {
				checkObsLabelArg(pass, call, sel, bounded)
			}
			if !obsRegistryMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isObsRegistryMethod(fn) || len(call.Args) < 2 {
				return true
			}
			if name, ok := constString(pass, call.Args[0]); ok && !obsNameRe.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q is not snake_case: names must match [a-z][a-z0-9_]*", name)
			}
			if help, ok := constString(pass, call.Args[1]); ok && strings.TrimSpace(help) == "" {
				pass.Reportf(call.Args[1].Pos(),
					"metric registered without help text: the help string is the family's only documentation on /metrics")
			}
			return true
		})
	}
	return nil
}

// checkObsLabelArg flags a With/SetFunc call on an obs Vec type whose
// label value is computed at runtime and not covered by a bounded marker.
func checkObsLabelArg(pass *Pass, call *ast.CallExpr, sel *ast.SelectorExpr, bounded map[int]bool) {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !isObsVecMethod(fn) || len(call.Args) < 1 {
		return
	}
	if _, isConst := constString(pass, call.Args[0]); isConst {
		return
	}
	// Key the marker lookup off the label argument's line: chained
	// multi-line calls start lines earlier, but the marker belongs next to
	// the value it justifies.
	line := pass.Fset.Position(call.Args[0].Pos()).Line
	if bounded[line] || bounded[line-1] {
		return
	}
	pass.Reportf(call.Args[0].Pos(),
		"label value for %s is computed at runtime: unbounded label cardinality grows /metrics forever; "+
			"mark the call `// obscheck: bounded — <why>` if the value set is provably finite",
		sel.Sel.Name)
}

// obsBoundedLines maps line numbers carrying a bounded-cardinality marker,
// reporting markers whose mandatory justification is missing.
func obsBoundedLines(pass *Pass, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if obsBoundedRe.MatchString(c.Text) {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			} else if obsBoundedPrefixRe.MatchString(c.Text) {
				pass.Reportf(c.Pos(),
					"bounded-cardinality marker needs a justification: `// obscheck: bounded — <why the value set is finite>`")
			}
		}
	}
	return lines
}

// isObsVecMethod reports whether fn is a method on a named *Vec family
// type declared in a package named obs (name-based, like
// isObsRegistryMethod, so the fixture's stand-ins are covered).
func isObsVecMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obsVecTypes[obj.Name()] && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// isObsRegistryMethod reports whether fn is a method on a named type
// Registry declared in a package named obs (matching by package name, not
// import path, so the fixture's local stand-in type is covered too).
func isObsRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// constString evaluates e as a compile-time string constant.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
