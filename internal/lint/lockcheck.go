package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// LockCheck enforces mutex discipline declared in struct field comments: a
// field annotated
//
//	// guarded by <mu>
//
// (where <mu> names a sync.Mutex or sync.RWMutex field of the same struct)
// may only be read or written while that mutex is held in the enclosing
// function. The analysis is intraprocedural and syntactic: Lock/RLock on
// the field's mutex opens a critical section, Unlock/RUnlock closes it, and
// a deferred Unlock keeps the section open to the end of the function.
// Function literals are analyzed with an empty lock state, since they may
// run on another goroutine. Helpers that rely on a caller-held lock must
// either take the lock themselves or carry a //lint:ignore lockcheck
// comment explaining the protocol.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "annotated struct fields must be accessed with their mutex held",
	Run:  runLockCheck,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// lockState is the set of mutex field objects currently held.
type lockState map[*types.Var]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// lockChecker carries the per-package state of one lockcheck run.
type lockChecker struct {
	pass *Pass
	// guarded maps a protected field to the mutex field guarding it.
	guarded map[*types.Var]*types.Var
}

func runLockCheck(pass *Pass) error {
	c := &lockChecker{pass: pass, guarded: make(map[*types.Var]*types.Var)}
	c.collectAnnotations()
	if len(c.guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.stmt(fd.Body, make(lockState))
		}
	}
	return nil
}

// collectAnnotations scans struct declarations for guarded-by comments and
// resolves both ends to field objects.
func (c *lockChecker) collectAnnotations() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				ann := fieldAnnotation(field)
				if ann == "" {
					continue
				}
				mu := findStructField(c.pass, st, ann)
				if mu == nil {
					c.pass.Reportf(field.Pos(),
						"guarded-by annotation names %q, which is not a field of this struct", ann)
					continue
				}
				if !isMutexType(mu.Type()) {
					c.pass.Reportf(field.Pos(),
						"guarded-by annotation names %q, which is not a sync.Mutex or sync.RWMutex", ann)
					continue
				}
				for _, name := range field.Names {
					if obj, ok := c.pass.Info.Defs[name].(*types.Var); ok {
						c.guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
}

// fieldAnnotation extracts the guarded-by target from a field's trailing or
// doc comment.
func fieldAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// findStructField resolves a field name within a struct literal type.
func findStructField(pass *Pass, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				obj, _ := pass.Info.Defs[n].(*types.Var)
				return obj
			}
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// via pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// mutexCall classifies a call as Lock/RLock (+1), Unlock/RUnlock (-1) on a
// mutex stored in a struct field, returning the mutex field object.
func (c *lockChecker) mutexCall(call *ast.CallExpr) (*types.Var, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, 0
	}
	var dir int
	switch fn.Name() {
	case "Lock", "RLock":
		dir = 1
	case "Unlock", "RUnlock":
		dir = -1
	default:
		return nil, 0
	}
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	fsel, ok := c.pass.Info.Selections[recv]
	if !ok || fsel.Kind() != types.FieldVal {
		return nil, 0
	}
	mu, ok := fsel.Obj().(*types.Var)
	if !ok {
		return nil, 0
	}
	return mu, dir
}

// stmt folds one statement into the lock state and returns the state after
// it. Branch bodies are analyzed with a copy: a lock taken inside a branch
// is conservatively considered released at the join.
func (c *lockChecker) stmt(s ast.Stmt, st lockState) lockState {
	switch n := s.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		inner := st
		for _, sub := range n.List {
			inner = c.stmt(sub, inner)
		}
		return inner
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if mu, dir := c.mutexCall(call); mu != nil {
				if dir > 0 {
					st[mu] = true
				} else {
					delete(st, mu)
				}
				return st
			}
		}
		c.exprs(st, n.X)
		return st
	case *ast.DeferStmt:
		if mu, dir := c.mutexCall(n.Call); mu != nil && dir < 0 {
			// Deferred unlock: the section stays open to function end.
			return st
		}
		c.exprs(st, n.Call)
		return st
	case *ast.IfStmt:
		st = c.stmt(n.Init, st)
		c.exprs(st, n.Cond)
		c.stmt(n.Body, st.clone())
		if n.Else != nil {
			c.stmt(n.Else, st.clone())
		}
		return st
	case *ast.ForStmt:
		st = c.stmt(n.Init, st)
		c.exprs(st, n.Cond)
		body := c.stmt(n.Body, st.clone())
		c.stmt(n.Post, body)
		return st
	case *ast.RangeStmt:
		c.exprs(st, n.X)
		c.stmt(n.Body, st.clone())
		return st
	case *ast.SwitchStmt:
		st = c.stmt(n.Init, st)
		c.exprs(st, n.Tag)
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CaseClause)
			c.exprs(st, cc.List...)
			inner := st.clone()
			for _, sub := range cc.Body {
				inner = c.stmt(sub, inner)
			}
		}
		return st
	case *ast.TypeSwitchStmt:
		st = c.stmt(n.Init, st)
		c.stmt(n.Assign, st)
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CaseClause)
			inner := st.clone()
			for _, sub := range cc.Body {
				inner = c.stmt(sub, inner)
			}
		}
		return st
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CommClause)
			inner := st.clone()
			inner = c.stmt(cc.Comm, inner)
			for _, sub := range cc.Body {
				inner = c.stmt(sub, inner)
			}
		}
		return st
	case *ast.LabeledStmt:
		return c.stmt(n.Stmt, st)
	case *ast.GoStmt:
		c.exprs(st, n.Call)
		return st
	default:
		// Leaf statements: check every contained expression.
		ast.Inspect(s, func(sub ast.Node) bool {
			if e, ok := sub.(ast.Expr); ok {
				c.exprs(st, e)
				return false
			}
			return true
		})
		return st
	}
}

// exprs checks guarded-field accesses in the given expressions. Function
// literals restart with an empty lock state; a nested mutexCall's receiver
// selector is skipped so x.mu.Lock() does not read as an access of x.mu.
func (c *lockChecker) exprs(st lockState, list ...ast.Expr) {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				c.stmt(x.Body, make(lockState))
				return false
			case *ast.SelectorExpr:
				fsel, ok := c.pass.Info.Selections[x]
				if !ok || fsel.Kind() != types.FieldVal {
					return true
				}
				field, ok := fsel.Obj().(*types.Var)
				if !ok {
					return true
				}
				mu, guarded := c.guarded[field]
				if !guarded {
					return true
				}
				if !st[mu] {
					c.pass.Reportf(x.Sel.Pos(),
						"field %s is guarded by %s but accessed without holding it",
						field.Name(), mu.Name())
				}
			}
			return true
		})
	}
}
