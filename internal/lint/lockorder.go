package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the repo-global lock-acquisition graph and reports any
// cycle as a potential deadlock, witness path included. Nodes are lock
// classes — a struct-field sync.Mutex/RWMutex identified as
// pkg.Type.field, the same mutexes the `// guarded by` annotations of
// lockcheck name — and an edge A → B means some function acquires B while
// holding A: either a nested Lock call in one body, or a call (possibly
// cross-package, via the LocksFact the analyzer exports on every
// lock-acquiring function) to a function that acquires B. Two goroutines
// taking the same pair of locks in opposite orders is the classic
// deadlock; a cycle in the class graph is its static signature.
//
// The analysis is class-level, not instance-level: acquiring the same
// class twice through *different* receiver expressions (a.mu then b.mu)
// is not reported, since instance-ordered hand-over-hand locking is
// legitimate; re-locking the same receiver expression is (self-deadlock
// for sync.Mutex). Function literals and go statements start with an
// empty held set — a spawned goroutine does not inherit its creator's
// locks. Cycles are reported by the Finish hook once the whole repo's
// graph is merged; the vet-tool mode (one package at a time) only exports
// facts.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "cross-package lock acquisition order must be acyclic (deadlock freedom)",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// LocksFact, exported on a function, records the lock classes the
// function may acquire, transitively through same-package callees and the
// facts of imported ones. Dependent packages consult it to extend held
// edges through cross-package calls.
type LocksFact struct {
	// Acquires lists lock classes ("pkg/path.Type.field"), sorted.
	Acquires []string `json:"acquires"`
}

// AFact marks LocksFact as a fact.
func (*LocksFact) AFact() {}

// LockGraphFact is a package fact carrying the acquired-while-held edges
// discovered in one package; the Finish hook merges all packages' edges
// into the global graph.
type LockGraphFact struct {
	// Edges are the package's lock-order edges, sorted by (From, To).
	Edges []LockEdge `json:"edges"`
}

// AFact marks LockGraphFact as a fact.
func (*LockGraphFact) AFact() {}

// LockEdge is one acquired-while-held observation.
type LockEdge struct {
	// From is the lock class held at the acquisition site.
	From string `json:"from"`
	// To is the lock class being acquired.
	To string `json:"to"`
	// Pos locates the acquisition site.
	Pos FactPos `json:"pos"`
	// Fn names the function containing the site.
	Fn string `json:"fn"`
	// Via names the callee whose LocksFact contributed To, when the
	// acquisition is indirect; empty for a literal nested Lock call.
	Via string `json:"via,omitempty"`
}

func init() {
	RegisterFact(func() Fact { return new(LocksFact) })
	RegisterFact(func() Fact { return new(LockGraphFact) })
}

// heldLock is one entry of the walker's held-locks state: the class plus
// the receiver expression it was acquired through, so same-class
// different-instance acquisitions are not misread as self-deadlock.
type heldLock struct {
	class string
	expr  string
}

// orderChecker carries one package's lockorder state.
type orderChecker struct {
	pass     *Pass
	decls    map[*types.Func]*ast.FuncDecl
	callees  map[*types.Func][]*types.Func
	acquired map[*types.Func]map[string]bool
	edges    map[[2]string]LockEdge
	curFn    string
}

func runLockOrder(pass *Pass) error {
	c := &orderChecker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		callees:  make(map[*types.Func][]*types.Func),
		acquired: make(map[*types.Func]map[string]bool),
		edges:    make(map[[2]string]LockEdge),
	}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[obj] = fd
			order = append(order, obj)
		}
	}

	// Per-function direct acquisitions and same-package callees, pruning
	// function literals and go statements (they run with their own empty
	// held set).
	for _, fn := range order {
		direct := make(map[string]bool)
		var callees []*types.Func
		ast.Inspect(c.decls[fn].Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				_ = x
				return false
			case *ast.CallExpr:
				if class, _, dir := c.lockClassCall(x); class != "" {
					if dir > 0 {
						direct[class] = true
					}
					return true
				}
				if callee := c.staticCallee(x); callee != nil {
					if callee.Pkg() == pass.Pkg {
						callees = append(callees, callee)
					} else {
						var lf LocksFact
						if pass.ImportObjectFact(callee, &lf) {
							for _, cl := range lf.Acquires {
								direct[cl] = true
							}
						}
					}
				}
			}
			return true
		})
		c.acquired[fn] = direct
		c.callees[fn] = callees
	}

	// Fixpoint: fold callee acquisitions into callers until stable (the
	// call graph is small; cross-package edges were already folded above).
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			acq := c.acquired[fn]
			for _, callee := range c.callees[fn] {
				for cl := range c.acquired[callee] {
					if !acq[cl] {
						acq[cl] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge walk: flow-sensitive held tracking per function body.
	for _, fn := range order {
		c.curFn = fn.Name()
		c.stmt(c.decls[fn].Body, nil)
	}

	// Export facts: per-function acquisition summaries (for dependents)
	// and this package's slice of the global graph (for Finish).
	for _, fn := range order {
		if len(c.acquired[fn]) == 0 {
			continue
		}
		classes := make([]string, 0, len(c.acquired[fn]))
		for cl := range c.acquired[fn] {
			classes = append(classes, cl)
		}
		sort.Strings(classes)
		pass.ExportObjectFact(fn, &LocksFact{Acquires: classes})
	}
	if len(c.edges) > 0 {
		edges := make([]LockEdge, 0, len(c.edges))
		for _, e := range c.edges {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		pass.ExportPackageFact(&LockGraphFact{Edges: edges})
	}
	return nil
}

// lockClassCall classifies call as Lock/RLock (+1) or Unlock/RUnlock (-1)
// on a struct-field mutex, returning the lock class ("pkg.Type.field"),
// the receiver expression string, and the direction. Non-mutex calls
// return "".
func (c *orderChecker) lockClassCall(call *ast.CallExpr) (class, expr string, dir int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", 0
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		dir = 1
	case "Unlock", "RUnlock":
		dir = -1
	default:
		return "", "", 0
	}
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", "", 0
	}
	fsel, ok := c.pass.Info.Selections[recv]
	if !ok || fsel.Kind() != types.FieldVal {
		return "", "", 0
	}
	field, ok := fsel.Obj().(*types.Var)
	if !ok {
		return "", "", 0
	}
	owner := recvTypeName(fsel.Recv())
	if owner == "" || field.Pkg() == nil {
		return "", "", 0
	}
	return field.Pkg().Path() + "." + owner + "." + field.Name(), types.ExprString(recv), dir
}

// staticCallee resolves a call to the function object it statically
// invokes (same-package functions, methods, imported functions). Dynamic
// calls — func values, interface methods — return nil.
func (c *orderChecker) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.Info.Uses[id].(*types.Func)
	return fn
}

// edge records one acquired-while-held observation, keeping the first
// site seen per (from, to) pair.
func (c *orderChecker) edge(from, to string, pos token.Pos, via string) {
	key := [2]string{from, to}
	if _, ok := c.edges[key]; ok {
		return
	}
	c.edges[key] = LockEdge{
		From: from,
		To:   to,
		Pos:  factPos(c.pass.Fset.Position(pos)),
		Fn:   c.curFn,
		Via:  via,
	}
}

// call folds one call expression into the held state, recording edges for
// acquisitions (literal or through callee facts) and releases for
// unlocks.
func (c *orderChecker) call(call *ast.CallExpr, held []heldLock) []heldLock {
	if class, expr, dir := c.lockClassCall(call); class != "" {
		if dir > 0 {
			for _, h := range held {
				if h.class != class {
					c.edge(h.class, class, call.Pos(), "")
				} else if h.expr == expr {
					// Re-locking the same receiver: self-deadlock for a
					// Mutex, writer starvation hazard for an RWMutex.
					c.edge(h.class, class, call.Pos(), "")
				}
			}
			return append(held, heldLock{class: class, expr: expr})
		}
		// Release: drop the matching acquisition, preferring the exact
		// receiver expression.
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].class == class && held[i].expr == expr {
				return append(held[:i:i], held[i+1:]...)
			}
		}
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].class == class {
				return append(held[:i:i], held[i+1:]...)
			}
		}
		return held
	}
	if len(held) > 0 {
		if callee := c.staticCallee(call); callee != nil {
			for _, to := range c.calleeAcquires(callee) {
				for _, h := range held {
					if h.class != to {
						c.edge(h.class, to, call.Pos(), calleeName(callee))
					}
				}
			}
		}
	}
	return held
}

// calleeAcquires returns the sorted lock classes a callee may acquire:
// the package-local summary for same-package functions, the imported
// LocksFact for cross-package ones.
func (c *orderChecker) calleeAcquires(callee *types.Func) []string {
	var set map[string]bool
	if callee.Pkg() == c.pass.Pkg {
		set = c.acquired[callee]
	} else {
		var lf LocksFact
		if c.pass.ImportObjectFact(callee, &lf) {
			return lf.Acquires
		}
		return nil
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for cl := range set {
		out = append(out, cl)
	}
	sort.Strings(out)
	return out
}

// exprs scans expressions for calls and function literals under the
// current held state. Function literals restart with an empty held set.
func (c *orderChecker) exprs(held []heldLock, list ...ast.Expr) []heldLock {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				c.stmt(x.Body, nil)
				return false
			case *ast.CallExpr:
				held = c.call(x, held)
			}
			return true
		})
	}
	return held
}

// stmt folds one statement into the held state and returns the state
// after it, cloning at branches like lockcheck: a lock taken inside a
// branch is conservatively considered released at the join.
func (c *orderChecker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	clone := func(h []heldLock) []heldLock {
		return append([]heldLock(nil), h...)
	}
	switch n := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		for _, sub := range n.List {
			held = c.stmt(sub, held)
		}
		return held
	case *ast.ExprStmt:
		return c.exprs(held, n.X)
	case *ast.DeferStmt:
		if class, _, dir := c.lockClassCall(n.Call); class != "" && dir < 0 {
			// Deferred unlock: the section stays open to function end.
			return held
		}
		return c.exprs(held, n.Call)
	case *ast.GoStmt:
		// The spawned goroutine holds nothing; analyze a literal body
		// fresh, and skip the ordering effects of named callees.
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			c.stmt(lit.Body, nil)
		}
		return held
	case *ast.IfStmt:
		held = c.stmt(n.Init, held)
		held = c.exprs(held, n.Cond)
		c.stmt(n.Body, clone(held))
		if n.Else != nil {
			c.stmt(n.Else, clone(held))
		}
		return held
	case *ast.ForStmt:
		held = c.stmt(n.Init, held)
		held = c.exprs(held, n.Cond)
		body := c.stmt(n.Body, clone(held))
		c.stmt(n.Post, body)
		return held
	case *ast.RangeStmt:
		held = c.exprs(held, n.X)
		c.stmt(n.Body, clone(held))
		return held
	case *ast.SwitchStmt:
		held = c.stmt(n.Init, held)
		held = c.exprs(held, n.Tag)
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CaseClause)
			inner := c.exprs(clone(held), cc.List...)
			for _, sub := range cc.Body {
				inner = c.stmt(sub, inner)
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		held = c.stmt(n.Init, held)
		c.stmt(n.Assign, clone(held))
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CaseClause)
			inner := clone(held)
			for _, sub := range cc.Body {
				inner = c.stmt(sub, inner)
			}
		}
		return held
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CommClause)
			inner := c.stmt(cc.Comm, clone(held))
			for _, sub := range cc.Body {
				inner = c.stmt(sub, inner)
			}
		}
		return held
	case *ast.LabeledStmt:
		return c.stmt(n.Stmt, held)
	default:
		// Leaf statements (assignments, returns, sends...): check every
		// contained expression for calls.
		ast.Inspect(s, func(sub ast.Node) bool {
			if e, ok := sub.(ast.Expr); ok {
				held = c.exprs(held, e)
				return false
			}
			return true
		})
		return held
	}
}

// finishLockOrder merges every package's edges and reports one diagnostic
// per cycle (strongly connected component) with the witness path.
func finishLockOrder(s *Session) error {
	edges := make(map[string]map[string]LockEdge)
	nodeSet := make(map[string]bool)
	for _, sf := range s.AllPackageFacts(&LockGraphFact{}) {
		gf := sf.Fact.(*LockGraphFact)
		for _, e := range gf.Edges {
			nodeSet[e.From] = true
			nodeSet[e.To] = true
			m := edges[e.From]
			if m == nil {
				m = make(map[string]LockEdge)
				edges[e.From] = m
			}
			if _, ok := m[e.To]; !ok {
				m[e.To] = e
			}
		}
	}
	if len(nodeSet) == 0 {
		return nil
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	for _, comp := range stronglyConnected(nodes, edges) {
		if len(comp) == 1 {
			if _, self := edges[comp[0]][comp[0]]; !self {
				continue
			}
		}
		cycle := witnessCycle(comp, edges)
		if len(cycle) == 0 {
			continue
		}
		var names, sites []string
		for _, e := range cycle {
			names = append(names, displayClass(e.From))
			site := fmt.Sprintf("%s:%d in %s", e.Pos.File, e.Pos.Line, e.Fn)
			if e.Via != "" {
				site += " via " + e.Via
			}
			sites = append(sites, fmt.Sprintf("%s acquired while holding %s at %s",
				displayClass(e.To), displayClass(e.From), site))
		}
		names = append(names, displayClass(cycle[0].From))
		s.Reportf("lockorder", cycle[0].Pos.Position(),
			"potential deadlock: lock ordering cycle %s (%s)",
			strings.Join(names, " -> "), strings.Join(sites, "; "))
	}
	return nil
}

// stronglyConnected returns the strongly connected components of the
// graph (Tarjan), each sorted, components ordered by smallest member.
func stronglyConnected(nodes []string, edges map[string]map[string]LockEdge) [][]string {
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		succs := make([]string, 0, len(edges[v]))
		for w := range edges[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// witnessCycle returns a shortest cycle through the component's smallest
// node, as the edge sequence to show in the diagnostic.
func witnessCycle(comp []string, edges map[string]map[string]LockEdge) []LockEdge {
	inComp := make(map[string]bool, len(comp))
	for _, n := range comp {
		inComp[n] = true
	}
	start := comp[0]
	// BFS from start within the component, tracking the edge taken into
	// each node; the first edge returning to start closes the cycle.
	prev := make(map[string]LockEdge)
	queue := []string{start}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		succs := make([]string, 0, len(edges[v]))
		for w := range edges[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if !inComp[w] {
				continue
			}
			if w == start {
				// Close the cycle: walk prev back from v to start.
				var rev []LockEdge
				rev = append(rev, edges[v][w])
				for v != start {
					e := prev[v]
					rev = append(rev, e)
					v = e.From
				}
				out := make([]LockEdge, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			if !visited[w] {
				visited[w] = true
				prev[w] = edges[v][w]
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// displayClass shortens a lock class's package path to its base element
// for readable diagnostics; identity in the graph stays fully qualified.
func displayClass(class string) string {
	if i := strings.LastIndexByte(class, '/'); i >= 0 {
		return class[i+1:]
	}
	return class
}

// calleeName renders a callee for diagnostics as pkg.Func or
// pkg.Type.Method.
func calleeName(fn *types.Func) string {
	path := objectPath(fn)
	if path == "" {
		path = fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + path
	}
	return path
}
