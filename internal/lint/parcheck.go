package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// ParCheck enforces the verifier-pool write discipline introduced with the
// parallel probe/verify stage: a function whose doc comment carries the
// marker
//
//	parcheck: runs on the verifier pool
//
// executes concurrently on pool goroutines during the read-only verify
// phase, so it must not write any struct field annotated `// guarded by
// <mu>` — not even with the mutex held. The guarded-by annotation declares
// shared mutable state; the pool's determinism and lock-freedom rest on
// the verify phase never touching such state (all index mutation belongs
// to the collect/insert/evict phases, which run strictly before and after
// the fan-out). Writes are assignments, compound assignments and ++/--
// whose target is (or indexes into) a guarded field; function literals
// declared inside a marked function inherit the constraint, since the
// pool may run them too. The analysis is intraprocedural like lockcheck:
// helpers a marked function calls are not traversed — mark them as well
// when they run on the pool.
var ParCheck = &Analyzer{
	Name: "parcheck",
	Doc:  "verifier-pool functions must not write guarded-by fields",
	Run:  runParCheck,
}

var poolMarkerRe = regexp.MustCompile(`parcheck: runs on the verifier pool`)

func runParCheck(pass *Pass) error {
	// Collect every field carrying a guarded-by annotation. Unlike
	// lockcheck, the annotation's mutex target does not matter here: the
	// annotation itself declares "shared mutable state", which is exactly
	// what the verify phase must keep its hands off.
	guarded := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				ann := fieldAnnotation(field)
				if ann == "" {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
						guarded[obj] = ann
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			if !poolMarkerRe.MatchString(fd.Doc.Text()) {
				continue
			}
			checkPoolWrites(pass, fd, guarded)
		}
	}
	return nil
}

// checkPoolWrites reports every write to a guarded field inside fd's body,
// function literals included.
func checkPoolWrites(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	report := func(target ast.Expr) {
		field := guardedField(pass, target, guarded)
		if field == nil {
			return
		}
		pass.Reportf(target.Pos(),
			"field %s is guarded by %s but written from %s, which runs on the verifier pool",
			field.Name(), guarded[field], fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(x.X)
		}
		return true
	})
}

// guardedField resolves a write target to a guarded struct field, seeing
// through parentheses, dereferences and indexing so both `s.f = v` and
// `s.f[i] = v` count as writes to f.
func guardedField(pass *Pass, e ast.Expr, guarded map[*types.Var]string) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			fsel, ok := pass.Info.Selections[x]
			if !ok || fsel.Kind() != types.FieldVal {
				return nil
			}
			field, ok := fsel.Obj().(*types.Var)
			if !ok {
				return nil
			}
			if _, is := guarded[field]; is {
				return field
			}
			return nil
		default:
			return nil
		}
	}
}
