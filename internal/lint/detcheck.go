package lint

import (
	"go/ast"
	"go/types"
)

// DetCheck keeps the deterministic paths deterministic. The experiment
// tables (EXPERIMENTS.md) are diffed across runs and machines, so the
// packages that compute them — internal/offline, internal/experiments,
// internal/partition — must not consult nondeterministic global state:
//
//   - No calls to math/rand package-level functions (Int, Intn, Float64,
//     Shuffle, Perm, Seed, ...), which draw from the globally seeded
//     source. Explicitly seeded generators via rand.New(rand.NewSource(s))
//     are fine and are the required idiom.
//   - time.Now may be used only to measure elapsed wall time: its result
//     must be assigned to a variable that the same function later passes
//     to time.Since. Any other use (timestamps in table data, seeds,
//     time-dependent branching) is flagged.
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc:  "no global math/rand or free time.Now in deterministic experiment paths",
	Run:  runDetCheck,
}

// detScopeNames are the package names the check applies to.
var detScopeNames = map[string]bool{
	"offline":     true,
	"experiments": true,
	"partition":   true,
}

func runDetCheck(pass *Pass) error {
	if !detScopeNames[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeterminism(pass, fd)
		}
	}
	return nil
}

// checkDeterminism flags global rand use anywhere in fd and time.Now calls
// that do not feed a time.Since measurement.
func checkDeterminism(pass *Pass, fd *ast.FuncDecl) {
	// Pass 1: variables passed to time.Since anywhere in the function.
	sinced := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if !isTimePkgFunc(pass, call, "Since") {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				sinced[obj] = true
			}
		}
		return true
	})

	// Pass 2: flag offending calls.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// start := time.Now() later consumed by time.Since(start) is the
			// sanctioned elapsed-time idiom.
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 && isTimeNowCall(pass, x.Rhs[0]) {
				if id, ok := x.Lhs[0].(*ast.Ident); ok {
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj != nil && sinced[obj] {
						return false
					}
				}
				pass.Reportf(x.Rhs[0].Pos(),
					"time.Now result never reaches time.Since: deterministic paths may use wall time only for elapsed measurement")
				return false
			}
		case *ast.CallExpr:
			if isTimeNowCall(pass, x) {
				pass.Reportf(x.Pos(),
					"free-standing time.Now in a deterministic path: assign it and measure with time.Since, or derive the value from the input")
				return true
			}
			if fn := globalRandFunc(pass, x); fn != "" {
				pass.Reportf(x.Pos(),
					"math/rand global %s draws from shared nondeterministic state: use rand.New(rand.NewSource(seed))", fn)
				return true
			}
		}
		return true
	})
}

// isTimeNowCall reports whether e is a call of time.Now.
func isTimeNowCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	return isTimePkgFunc(pass, call, "Now")
}

// isTimePkgFunc reports whether call invokes the named function of package
// time.
func isTimePkgFunc(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "time" && fn.Name() == name
}

// randConstructors are the explicitly seeded math/rand entry points the
// deterministic paths are allowed to call.
var randConstructors = map[string]bool{"New": true, "NewSource": true}

// globalRandFunc returns the name of the math/rand package-level function
// a call invokes through the global source, or "".
func globalRandFunc(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "" // methods on a seeded *rand.Rand are deterministic
	}
	if randConstructors[fn.Name()] {
		return ""
	}
	return fn.Name()
}
