package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/wire").
	Path string
	// Fset positions the syntax trees.
	Fset *token.FileSet
	// Files are the package's non-test sources with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds full type information for Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// goList runs `go list -export -deps -json` over the patterns and decodes
// the JSON stream. Export data for every dependency (standard library
// included) comes from the build cache, so the loader works offline.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Standard"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiled export data files.
type exportImporter struct {
	base    types.ImporterFrom
	exports map[string]string // import path -> export file
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	ei.base = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return ei
}

// Import implements types.Importer.
func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.base.ImportFrom(path, "", 0)
}

// newInfo allocates a types.Info with every map analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// TypecheckFiles parses and type-checks one package from explicit source
// files, resolving imports through imp. The standalone loader and the vet
// tool mode both build on it.
func TypecheckFiles(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load lists, parses, and type-checks the packages matching the patterns
// (relative to dir; empty dir means the current directory). Only the
// matched packages themselves are analyzed; their dependencies are loaded
// from export data.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := TypecheckFiles(fset, p.ImportPath, filenames, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files as one
// package, resolving imports from standard library source. It backs the
// fixture harness, where packages live under testdata and are invisible
// to the go tool.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(filenames)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return TypecheckFiles(fset, filepath.Base(dir), filenames, imp)
}
