// SARIF output: the Static Analysis Results Interchange Format (v2.1.0),
// the shape code-scanning UIs ingest. The encoding here is the minimal
// valid subset — one run, one driver, one rule per analyzer, one result
// per diagnostic with a physical location — built from plain structs so
// the module stays dependency-free.
package lint

import (
	"encoding/json"
	"io"
)

// sarifLog is the document root.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

// sarifRun is one analysis run.
type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

// sarifTool wraps the driver description.
type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

// sarifDriver describes the producing tool and its rules.
type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

// sarifRule is one analyzer, keyed by its name.
type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

// sarifResult is one finding.
type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

// sarifMessage is SARIF's text wrapper.
type sarifMessage struct {
	Text string `json:"text"`
}

// sarifLocation points a result at a file position.
type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

// sarifPhysical is the artifact + region pair.
type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

// sarifArtifact names the file.
type sarifArtifact struct {
	URI string `json:"uri"`
}

// sarifRegion is the 1-based position within the file.
type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log. The analyzers
// list populates the rule table (every analyzer, findings or not, so the
// consumer knows what was checked).
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		known[a.Name] = true
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !known[d.Analyzer] {
			// The pseudo-analyzer "lint" (malformed directives) and any
			// filtered-out analyzer still need a rule entry for validity.
			rules = append(rules, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: "lint framework diagnostics"}})
			known[d.Analyzer] = true
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "repolint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
