// Package lockorderfix exercises lockorder: cross-function lock
// acquisition edges, cycle detection with a witness path, instance-aware
// same-class locking, self-deadlock, and suppression.
package lockorderfix

import "sync"

// A is one lock class.
type A struct{ mu sync.Mutex }

// B is a second lock class, acquired in both orders relative to A.
type B struct{ mu sync.Mutex }

// lockAB acquires A then B: the first half of the cycle. The diagnostic
// lands on the inner acquisition of the cycle's witness path.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "potential deadlock: lock ordering cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockBA acquires B then A: the second half of the cycle.
func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// indirect contributes the same A->B edge through a callee summary; the
// first-seen edge (lockAB's) keeps the witness position.
func indirect(a *A, b *B) {
	a.mu.Lock()
	lockB(b)
	a.mu.Unlock()
}

// lockB acquires B on behalf of callers; its summary carries the class.
func lockB(b *B) {
	b.mu.Lock()
	b.mu.Unlock()
}

// chain is hand-over-hand locking over two *instances* of one class:
// same class, different receiver expressions, no self-edge, no report.
func chain(a1, a2 *A) {
	a1.mu.Lock()
	a2.mu.Lock()
	a2.mu.Unlock()
	a1.mu.Unlock()
}

// E is a class locked twice through the same receiver: self-deadlock.
type E struct{ mu sync.Mutex }

// relock re-acquires the mutex it already holds.
func (e *E) relock() {
	e.mu.Lock()
	e.mu.Lock() // want "potential deadlock: lock ordering cycle"
	e.mu.Unlock()
	e.mu.Unlock()
}

// C and D form a second cycle whose witness line carries a suppression,
// so no diagnostic survives for it.
type C struct{ mu sync.Mutex }

// D pairs with C.
type D struct{ mu sync.Mutex }

// lockCD is half of the suppressed cycle.
func lockCD(c *C, d *D) {
	c.mu.Lock()
	//lint:ignore lockorder fixture: documented intentional inversion
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// lockDC is the other half of the suppressed cycle.
func lockDC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}

// spawned shows that goroutine bodies start with an empty held set: the
// literal acquires B while the spawner holds A, but no edge is recorded.
func spawned(a *A, b *B) {
	a.mu.Lock()
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
	}()
	a.mu.Unlock()
}
