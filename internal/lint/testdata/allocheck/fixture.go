// Package allocfix exercises allocheck: direct allocation sites in
// functions marked `hotpath: zero-alloc`, transitive propagation through
// same-package callees, unverifiable external calls, the allowed
// self-append idiom, and suppression.
package allocfix

import "strconv"

// grow appends into a new variable: a growth allocation.
//
// hotpath: zero-alloc
func grow(xs []int) []int {
	ys := append(xs, 1) // want "append outside the self-assign form"
	return ys
}

// selfAppend uses the amortized idiom and stays clean.
//
// hotpath: zero-alloc
func selfAppend(xs []int) []int {
	xs = append(xs, 1)
	return xs
}

// helper allocates; it is not hot itself, but hot callers inherit the
// violation through the package-local summary.
func helper(n int) []int {
	return make([]int, n)
}

// viaCall is hot and calls helper.
//
// hotpath: zero-alloc
func viaCall(n int) []int {
	return helper(n) // want "call to allocfix.helper, which allocates \\(make\\)"
}

// external calls into a standard-library package outside the alloc-free
// allowlist; unverifiable counts as a finding, not a pass.
//
// hotpath: zero-alloc
func external(v int) string {
	return strconv.Itoa(v) // want "not verified alloc-free"
}

// closes builds a closure on the hot path.
//
// hotpath: zero-alloc
func closes(n int) func() int {
	f := func() int { return n } // want "function literal \\(closure allocation\\)"
	return f
}

// structValue passes a plain value literal: registers, no heap.
//
// hotpath: zero-alloc
func structValue(emit func(pair)) {
	emit(pair{a: 1, b: 2})
}

// pair is a value payload for structValue.
type pair struct{ a, b int }

// suppressed documents a deliberate warm-up allocation.
//
// hotpath: zero-alloc
func suppressed() []int {
	//lint:ignore allocheck fixture: one-time warm-up buffer, measured cold
	return make([]int, 8)
}
