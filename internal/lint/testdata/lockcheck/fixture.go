// Package lockfix exercises lockcheck: guarded-field accesses with and
// without their mutex held.
package lockfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	ok int
}

func (c *counter) goodInc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) goodDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) badBare() {
	c.n++ // want "guarded by mu but accessed without holding it"
}

func (c *counter) badAfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want "guarded by mu but accessed without holding it"
}

func (c *counter) badConditionalLock(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want "guarded by mu but accessed without holding it"
	if b {
		c.mu.Unlock()
	}
}

func (c *counter) badClosureEscapesLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "guarded by mu but accessed without holding it"
	}()
}

func (c *counter) unguardedFieldNeedsNoLock() {
	c.ok++
}

func (c *counter) ignoredAccess() int {
	//lint:ignore lockcheck read is fenced by wg.Wait in the caller
	return c.n
}

type table struct {
	rw sync.RWMutex
	m  map[string]int // guarded by rw
}

func (t *table) goodRead(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

func (t *table) goodWrite(k string, v int) {
	t.rw.Lock()
	t.m[k] = v
	t.rw.Unlock()
}

type brokenAnnotation struct {
	x int // guarded by missing // want "not a field of this struct"
}

type notAMutex struct {
	guard int
	y     int // guarded by guard // want "not a sync.Mutex or sync.RWMutex"
}

func use(b *brokenAnnotation, n *notAMutex) int { return b.x + n.y + n.guard }
