// Package wire is a miniature frame protocol exercising wirestate:
// handled-by declarations on frame constants, dispatch-switch and inline
// handler annotations, three-arm (encode/decode/handler) coverage, and
// suppression. The package must be named "wire" for its Type* constants
// to count as frame types.
package wire

// Frame types under test.
const (
	// TypeA is fully covered: encode arm, decode arm, worker handler.
	// handled-by: worker
	TypeA byte = iota + 1
	// TypeB declares a coordinator consumer no dispatch provides.
	// handled-by: coordinator
	TypeB // want "declares handled-by: coordinator but no coordinator dispatch handles it"
	// TypeC forgot its handled-by marker entirely.
	TypeC // want "has no handled-by marker"
	// TypeD is missing its encode arm (never passed to flushFrame).
	// handled-by: worker
	TypeD // want "has no encode arm"
	// TypeE's missing handler is suppressed with a documented reason.
	// handled-by: worker
	TypeE //lint:ignore wirestate fixture: handler lands with the next frame type
	// TypeF is consumed outside any switch, via a wire-handled marker.
	// handled-by: worker
	TypeF
)

// Writer encodes frames.
type Writer struct{}

// flushFrame pretends to write one frame of type t.
func (w *Writer) flushFrame(t byte) {}

// WriteAll exercises the encode arms (TypeD deliberately absent).
func (w *Writer) WriteAll() {
	w.flushFrame(TypeA)
	w.flushFrame(TypeB)
	w.flushFrame(TypeC)
	w.flushFrame(TypeE)
	w.flushFrame(TypeF)
}

// Reader decodes frames.
type Reader struct{}

// ReadA decodes a TypeA payload.
func (r *Reader) ReadA() {}

// ReadB decodes a TypeB payload.
func (r *Reader) ReadB() {}

// ReadC decodes a TypeC payload.
func (r *Reader) ReadC() {}

// ReadD decodes a TypeD payload.
func (r *Reader) ReadD() {}

// ReadE decodes a TypeE payload.
func (r *Reader) ReadE() {}

// ReadF decodes a TypeF payload.
func (r *Reader) ReadF() {}

// handle is the worker-side dispatch loop.
func handle(t byte) {
	// wire-dispatch: worker
	switch t {
	case TypeA, TypeD:
	default:
	}
}

// drainF consumes TypeF outside any dispatch switch.
func drainF(t byte) bool {
	// wire-handled: worker TypeF
	return t == TypeF
}
