// Package experiments (fixture) exercises detcheck: reproducible
// experiment paths must not consult global randomness or free wall-clock
// time. The package is named experiments so the scoped analyzer applies.
package experiments

import (
	"math/rand"
	"time"
)

func goodElapsedMeasurement() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

func goodSeededGenerator(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func badGlobalIntn() int {
	return rand.Intn(10) // want "math/rand global Intn"
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand global Shuffle"
}

func badTimestampInData() int64 {
	return time.Now().UnixNano() // want "free-standing time.Now"
}

func badNowNeverMeasured() {
	start := time.Now() // want "time.Now result never reaches time.Since"
	_ = start
	work()
}

func ignoredWallClock() int64 {
	//lint:ignore detcheck cache-busting value is outside every table
	return time.Now().Unix()
}

func work() {}
