// Package obs (fixture) exercises obscheck: families registered on a
// Registry must carry snake_case names and non-empty help text. The
// Registry below mirrors internal/obs's constructor surface just enough
// for the receiver-type match (named type Registry in a package named
// obs); the fixture loader type-checks against the standard library only,
// so the real package cannot be imported here.
package obs

// Counter is a stand-in family handle.
type Counter struct{ v uint64 }

// Gauge is a stand-in family handle.
type Gauge struct{ v uint64 }

// Registry is the stand-in for internal/obs.Registry.
type Registry struct{}

// Counter mimics the real get-or-create constructor.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge mimics the real get-or-create constructor.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// CounterFunc mimics the callback-backed constructor.
func (r *Registry) CounterFunc(name, help string, f func() float64) {}

// GaugeVec mimics the labeled-family constructor.
func (r *Registry) GaugeVec(name, help, label string) *Gauge { return &Gauge{} }

const depthHelp = "queued batches per edge"

func wire(r *Registry) {
	r.Counter("tuples_total", "tuples shipped downstream") // compliant
	r.Counter("TuplesTotal", "tuples shipped downstream")  // want "not snake_case"
	r.Gauge("queue-depth", depthHelp)                      // want "not snake_case"
	r.Gauge("queue_depth", "")                             // want "without help text"
	r.GaugeVec("edge_depth", "   ", "edge")                // want "without help text"
	r.CounterFunc("9lives", "cats remaining", func() float64 { return 9 }) // want "not snake_case"

	// Runtime-computed names are beyond static reach; the registry's own
	// validation is the backstop.
	dyn := pick()
	r.Counter(dyn, "whatever the caller chose")

	//lint:ignore obscheck legacy dashboard name predates the convention
	r.Counter("Legacy-Name", "kept for dashboard continuity")
}

func pick() string { return "chosen_at_runtime" }

var _ = wire
