// Package obs (fixture) exercises obscheck: families registered on a
// Registry must carry snake_case names and non-empty help text, and
// labeled families (*Vec) must not take runtime-computed label values
// without a bounded-cardinality marker. The types below mirror
// internal/obs's surface just enough for the receiver-type match (named
// types in a package named obs); the fixture loader type-checks against
// the standard library only, so the real package cannot be imported here.
package obs

// Counter is a stand-in family handle.
type Counter struct{ v uint64 }

// Gauge is a stand-in family handle.
type Gauge struct{ v uint64 }

// CounterVec is the stand-in labeled counter family.
type CounterVec struct{}

// With mimics the child-per-label-value accessor.
func (cv *CounterVec) With(label string) *Counter { return &Counter{} }

// GaugeVec is the stand-in labeled gauge family.
type GaugeVec struct{}

// With mimics the child-per-label-value accessor.
func (gv *GaugeVec) With(label string) *Gauge { return &Gauge{} }

// SetFunc mimics the callback-backed child binder.
func (gv *GaugeVec) SetFunc(label string, f func() float64) {}

// Registry is the stand-in for internal/obs.Registry.
type Registry struct{}

// Counter mimics the real get-or-create constructor.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge mimics the real get-or-create constructor.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// CounterFunc mimics the callback-backed constructor.
func (r *Registry) CounterFunc(name, help string, f func() float64) {}

// GaugeVec mimics the labeled-family constructor.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec { return &GaugeVec{} }

// CounterVec mimics the labeled-family constructor.
func (r *Registry) CounterVec(name, help, label string) *CounterVec { return &CounterVec{} }

const depthHelp = "queued batches per edge"

func wire(r *Registry) {
	r.Counter("tuples_total", "tuples shipped downstream") // compliant
	r.Counter("TuplesTotal", "tuples shipped downstream")  // want "not snake_case"
	r.Gauge("queue-depth", depthHelp)                      // want "not snake_case"
	r.Gauge("queue_depth", "")                             // want "without help text"
	r.GaugeVec("edge_depth", "   ", "edge")                // want "without help text"
	r.CounterFunc("9lives", "cats remaining", func() float64 { return 9 }) // want "not snake_case"

	// Runtime-computed names are beyond static reach; the registry's own
	// validation is the backstop.
	dyn := pick()
	r.Counter(dyn, "whatever the caller chose")

	//lint:ignore obscheck legacy dashboard name predates the convention
	r.Counter("Legacy-Name", "kept for dashboard continuity")
}

func pick() string { return "chosen_at_runtime" }

const staticLabel = "bundle"

// cardinality exercises the unbounded-label-value pass: constant labels
// and marker-documented bounded sets pass; anything else computed at
// runtime is a finding.
func cardinality(r *Registry, edges []string, recordID string) {
	gv := r.GaugeVec("edge_depth_ok", "queued batches per edge", "edge")
	cv := r.CounterVec("kernel_calls_total", "verification kernel invocations", "kernel")

	gv.With("fixed")      // compliant: constant label
	cv.With(staticLabel)  // compliant: named constant
	gv.With(recordID)     // want "unbounded label cardinality"
	cv.With("id:" + recordID) // want "unbounded label cardinality"
	gv.SetFunc(recordID, func() float64 { return 0 }) // want "unbounded label cardinality"

	for _, e := range edges {
		gv.With(e) // obscheck: bounded — edge names are fixed at topology wiring time
	}
	// obscheck: bounded — edge set is fixed at topology wiring time
	gv.SetFunc(edges[0], func() float64 { return 0 })

	gv.With(edges[0]) // obscheck: bounded // want "unbounded label cardinality" "needs a justification"
}

var _ = wire
var _ = cardinality
