// Package retryfix (fixture) exercises retrycheck: loops that sleep under
// a live context must observe cancellation each iteration.
package retryfix

import (
	"context"
	"time"
)

// badRetry is the canonical offense: exponential backoff that outlives a
// cancelled caller.
func badRetry(ctx context.Context, attempt func() error) error {
	var err error
	for i := 0; i < 5; i++ { // want "retry loop sleeps without a context cancellation check"
		if err = attempt(); err == nil {
			return nil
		}
		time.Sleep(time.Duration(i) * time.Millisecond)
	}
	return err
}

// badAfter sleeps through a channel receive instead; same problem.
func badAfter(ctx context.Context, ready func() bool) {
	for !ready() { // want "retry loop sleeps without a context cancellation check"
		<-time.After(10 * time.Millisecond)
	}
}

// badRange shows the range form is caught too.
func badRange(ctx context.Context, addrs []string, dial func(string) error) {
	for _, a := range addrs { // want "retry loop sleeps without a context cancellation check"
		if dial(a) != nil {
			time.Sleep(time.Millisecond)
		}
	}
}

// goodErrCheck polls ctx.Err each iteration.
func goodErrCheck(ctx context.Context, attempt func() error) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt() == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

// goodSelect races the sleep against cancellation.
func goodSelect(ctx context.Context, ready func() bool) {
	for !ready() {
		select {
		case <-ctx.Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// goodHelper delegates the wait to a ctx-accepting sleeper.
func goodHelper(ctx context.Context, attempt func() error) error {
	for {
		if attempt() == nil {
			return nil
		}
		if err := pause(ctx, time.Millisecond); err != nil {
			return err
		}
	}
}

// pause is the sleepCtx shape: no loop, so its own time.After is fine.
func pause(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// noCtx has no context to consult; plain polling loops are out of scope.
func noCtx(ready func() bool) {
	for !ready() {
		time.Sleep(time.Millisecond)
	}
}

// nestedScopes: the outer loop checks ctx, but the inner loop sleeps on
// its own and must be flagged independently.
func nestedScopes(ctx context.Context, attempt func() error) {
	for ctx.Err() == nil {
		for i := 0; i < 3; i++ { // want "retry loop sleeps without a context cancellation check"
			if attempt() == nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// literalScope: a goroutine body is its own scope — the enclosing loop
// does not sleep, and the ctx-less literal is out of scope, so nothing
// fires here.
func literalScope(ctx context.Context, work func()) {
	for ctx.Err() == nil {
		go func() {
			time.Sleep(time.Millisecond)
			work()
		}()
		if err := pause(ctx, time.Millisecond); err != nil {
			return
		}
	}
}

// literalWithCtx: a ctx-taking literal is analyzed on its own and caught.
var retryFn = func(ctx context.Context, attempt func() error) {
	for attempt() != nil { // want "retry loop sleeps without a context cancellation check"
		time.Sleep(time.Millisecond)
	}
}

// suppressed documents the one legitimate exception path.
func suppressed(ctx context.Context, attempt func() error) {
	//lint:ignore retrycheck fixture: demonstrates suppression
	for attempt() != nil {
		time.Sleep(time.Millisecond)
	}
}
