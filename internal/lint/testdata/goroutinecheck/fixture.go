// Package remote (fixture) exercises goroutinecheck: goroutine lifecycle
// discipline in the distribution layer. The package is named remote so the
// scoped analyzer applies.
package remote

import "sync"

func goodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func goodCompletionChannel() chan int {
	ch := make(chan int)
	go func() {
		ch <- 1
		close(ch)
	}()
	return ch
}

func goodDrainUntilClose(in chan int) {
	go func() {
		for range in {
		}
	}()
}

func goodSelectOnDone(done chan struct{}) {
	go func() {
		<-done
	}()
}

func badFireAndForget() {
	go func() { // want "fire-and-forget goroutine"
		work()
	}()
}

func badBareCall() {
	go work() // want "fire-and-forget goroutine"
}

func goodBareCallHandedLifecycle(done chan struct{}) {
	go workUntil(done)
}

func goodBareCallHandedWaitGroup(wg *sync.WaitGroup) {
	go workTracked(wg)
}

func ignoredProcessLifetime() {
	//lint:ignore goroutinecheck process-lifetime stats loop, dies with the process
	go func() {
		for {
			work()
		}
	}()
}

func work() {}

func workUntil(done chan struct{}) { <-done }

func workTracked(wg *sync.WaitGroup) { defer wg.Done(); work() }
