// Package wire (fixture) exercises wirecheck: encoder/decoder coverage of
// the frame-type enum and default-or-exhaustive opcode switches. The
// package is named wire so the enum rules apply.
package wire

// Frame types of the fixture protocol.
const (
	TypeHello byte = iota + 1
	TypeData
	// TypeEOF closes the stream; payload-free, nothing to decode.
	TypeEOF
	TypeOrphan // want "opcode TypeOrphan has no encoder" "opcode TypeOrphan has no decoder"
)

// Writer encodes frames.
type Writer struct{}

func (w *Writer) flushFrame(typ byte) error { return nil }

// WriteHello encodes a TypeHello frame.
func (w *Writer) WriteHello() error { return w.flushFrame(TypeHello) }

// WriteData encodes a TypeData frame.
func (w *Writer) WriteData() error { return w.flushFrame(TypeData) }

// WriteEOF encodes a TypeEOF frame.
func (w *Writer) WriteEOF() error { return w.flushFrame(TypeEOF) }

// Reader decodes frames.
type Reader struct{}

// ReadHello decodes a TypeHello frame.
func (r *Reader) ReadHello() error { return nil }

// ReadData decodes a TypeData frame.
func (r *Reader) ReadData() error { return nil }

func goodSwitchWithDefault(typ byte) int {
	switch typ {
	case TypeHello:
		return 1
	default:
		return 0
	}
}

func goodExhaustiveSwitch(typ byte) int {
	switch typ {
	case TypeHello, TypeData, TypeEOF, TypeOrphan:
		return 1
	}
	return 0
}

func badPartialSwitch(typ byte) int {
	switch typ { // want "misses wire.TypeData, wire.TypeEOF, wire.TypeOrphan"
	case TypeHello:
		return 1
	}
	return 0
}

func unrelatedSwitchIsFine(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
