// Package remote (fixture) exercises ctxcheck: ctx-first RPC entry
// points, no contexts in structs, no detached roots under a live ctx.
package remote

import "context"

// Run is a blocking entry point with the required ctx-first signature.
func Run(ctx context.Context, n int) error { return work(ctx) }

// HandleSession is ctx-first and compliant.
func HandleSession(ctx context.Context) error { return work(ctx) }

// RunLegacy misses the context parameter.
func RunLegacy(n int) error { return nil } // want "RunLegacy must take a context.Context as its first parameter"

// ServeWorker misses the context parameter.
func ServeWorker() {} // want "ServeWorker must take a context.Context as its first parameter"

// DialFleet takes arguments but no leading context.
func DialFleet(addr string, retries int) error { return nil } // want "DialFleet must take a context.Context as its first parameter"

type session struct {
	ctx context.Context // want "context.Context stored in a struct field"
	id  int
}

func (s *session) use() int { return s.id }

func work(ctx context.Context) error {
	detached := context.Background() // want "propagate the caller's context"
	_ = detached
	return ctx.Err()
}

func alsoTodo(ctx context.Context) error {
	_ = context.TODO() // want "propagate the caller's context"
	return ctx.Err()
}

// newRoot has no inbound ctx, so minting a root here is legitimate.
func newRoot() context.Context {
	return context.Background()
}

// Handler shares the Handle prefix but is a noun, not a blocking entry
// point; the word-boundary rule keeps it exempt.
func Handler() int { return 0 }

// helper is unexported, so the entry-point rule does not apply even though
// the name has a blocking prefix.
func runQuietly() {}

var _ = session{}
var _ = (&session{}).use
var _ = newRoot
var _ = runQuietly
var _ = Handler
