// Package parfix exercises parcheck: functions marked as running on the
// verifier pool must not write guarded-by fields, even with the lock held.
package parfix

import "sync"

type index struct {
	mu    sync.Mutex
	size  int   // guarded by mu
	slots []int // guarded by mu
	hits  int
}

// serialInsert mutates freely: it is not marked, so it runs on the
// single-writer insert path and parcheck leaves it alone.
func (ix *index) serialInsert() {
	ix.mu.Lock()
	ix.size++
	ix.mu.Unlock()
}

// goodVerify reads guarded state and writes only locals.
//
// parcheck: runs on the verifier pool.
func (ix *index) goodVerify() int {
	total := ix.size
	total += ix.hits
	return total
}

// badVerify writes a guarded field from the pool.
//
// parcheck: runs on the verifier pool.
func (ix *index) badVerify() {
	ix.size = 0 // want "guarded by mu but written from badVerify"
}

// badVerifyLocked holds the mutex, which does not help: pool stints must
// stay lock-free and read-only.
//
// parcheck: runs on the verifier pool.
func (ix *index) badVerifyLocked() {
	ix.mu.Lock()
	ix.size++ // want "guarded by mu but written from badVerifyLocked"
	ix.mu.Unlock()
}

// badVerifyIndexed writes through an element of a guarded slice.
//
// parcheck: runs on the verifier pool.
func (ix *index) badVerifyIndexed(i int) {
	ix.slots[i] = 7 // want "guarded by mu but written from badVerifyIndexed"
}

// badVerifyClosure inherits the constraint inside a function literal.
//
// parcheck: runs on the verifier pool.
func (ix *index) badVerifyClosure() func() {
	return func() {
		ix.size-- // want "guarded by mu but written from badVerifyClosure"
	}
}

// unguardedWriteIsFine: only guarded-by fields are protected; hits carries
// no annotation.
//
// parcheck: runs on the verifier pool.
func (ix *index) unguardedWriteIsFine() {
	ix.hits++
}

// ignoredWrite shows the escape hatch for a write proven safe by other
// means (here: a caller-side barrier before the pool starts).
//
// parcheck: runs on the verifier pool.
func (ix *index) ignoredWrite() {
	//lint:ignore parcheck reset happens before any pool goroutine observes ix
	ix.size = 0
}
