package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestAnalyzerFixtures runs every analyzer over its known-bad fixture and
// checks the produced diagnostics against the // want comments: each
// expected finding must fire, nothing extra may fire, and //lint:ignore
// must suppress.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{LockCheck, "lockcheck"},
		{GoroutineCheck, "goroutinecheck"},
		{WireCheck, "wirecheck"},
		{CtxCheck, "ctxcheck"},
		{DetCheck, "detcheck"},
		{ObsCheck, "obscheck"},
		{RetryCheck, "retrycheck"},
		{ParCheck, "parcheck"},
		{LockOrder, "lockorder"},
		{AllocCheck, "allocheck"},
		{WireState, "wirestate"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			for _, err := range CheckFixture(filepath.Join("testdata", c.dir), []*Analyzer{c.analyzer}) {
				t.Error(err)
			}
		})
	}
}

// TestFixturesAreKnownBad guards the fixtures themselves: every fixture
// must contain at least one // want expectation, so a fixture that rots
// into all-clean fails loudly instead of testing nothing.
func TestFixturesAreKnownBad(t *testing.T) {
	dirs, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 11 {
		t.Fatalf("expected a fixture dir per analyzer, found %d", len(dirs))
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		pkg, err := LoadDir(filepath.Join("testdata", d.Name()))
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		wants, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		if len(wants) == 0 {
			t.Errorf("%s: fixture has no // want expectations", d.Name())
		}
	}
}

// TestByName checks suite lookup and the unknown-analyzer error.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 11 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("lockcheck, detcheck")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName pair = %d analyzers, err %v", len(two), err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

// TestSuiteCleanOnRepo runs the full suite over the whole module — the
// same gate `make lint` applies, baseline included — and requires zero
// fresh findings, so the tree cannot drift from its own invariants
// between lint runs. The whole-program RunAll entry point matters here:
// the interprocedural analyzers need every package's facts before their
// Finish hooks judge the repo.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := RunAll(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := ReadBaseline("../../lint.baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	// Baseline paths are repo-relative; diagnostics come back absolute.
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
	for _, d := range NewFindings(diags, baseline) {
		t.Errorf("%s", d)
	}
}
