// Facts: the interprocedural layer of the lint framework. An analyzer
// running on one package can export typed facts about that package's
// objects (functions, constants) or about the package as a whole; passes
// over dependent packages — analyzed later, in dependency order — import
// those facts to reason across package boundaries without re-reading the
// dependency's source. The mechanism mirrors golang.org/x/tools/go/analysis
// facts, built on the standard library alone: facts are plain structs,
// serialized as JSON so the vet-tool mode can persist them alongside the
// export data cmd/go already caches (the .vetx files of the vet protocol).
//
// Whole-program checks that cannot be phrased package-at-a-time (cycle
// detection over the merged lock graph, protocol-coverage accounting) run
// in an Analyzer's Finish hook, after every package's Run completed, with
// access to the full accumulated fact store through the Session.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// Fact is the marker interface every fact type implements. A fact must be
// a pointer to a JSON-serializable struct and must be registered with
// RegisterFact before any store decodes it.
type Fact interface {
	// AFact marks the type as a lint fact; it is never called.
	AFact()
}

// factProtos maps registered fact type names to constructors, so Decode
// can materialize facts read back from serialized form.
var factProtos = map[string]func() Fact{}

// RegisterFact makes a fact type known to the serializer under its struct
// type name. Call it from an init function next to the fact declaration.
func RegisterFact(proto func() Fact) {
	factProtos[factName(proto())] = proto
}

// factName returns the bare struct type name of a fact value.
func factName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// factKey addresses one fact: the declaring package's import path, the
// object's path within it ("" for a package-level fact), and the fact
// type's registered name.
type factKey struct {
	pkg string
	obj string
	typ string
}

// FactStore accumulates the facts of one analysis session. It is shared
// by every pass of a RunAll invocation; the standalone runner threads one
// store through all packages in dependency order, the vet-tool mode
// persists and reloads it per package.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

// objectPath returns the stable intra-package path of an object: the bare
// name for package-level declarations, "Recv.Method" for methods. Objects
// facts cannot address (locals, imports) yield "".
func objectPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			name := recvTypeName(recv.Type())
			if name == "" {
				return ""
			}
			return name + "." + fn.Name()
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Name()
}

// recvTypeName resolves a receiver type to its named type's bare name.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// set stores f under the key, replacing any previous fact of the same type.
func (s *FactStore) set(pkg, obj string, f Fact) {
	s.m[factKey{pkg: pkg, obj: obj, typ: factName(f)}] = f
}

// get copies the stored fact for the key into target (which selects the
// fact type) and reports whether one was found.
func (s *FactStore) get(pkg, obj string, target Fact) bool {
	stored, ok := s.m[factKey{pkg: pkg, obj: obj, typ: factName(target)}]
	if !ok {
		return false
	}
	// Copy through JSON so callers can mutate their view freely.
	data, err := json.Marshal(stored)
	if err != nil {
		return false
	}
	return json.Unmarshal(data, target) == nil
}

// encodedFact is the serialized form of one store entry.
type encodedFact struct {
	Pkg  string          `json:"pkg"`
	Obj  string          `json:"obj,omitempty"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Encode serializes the store deterministically (sorted by key) so fact
// files are byte-stable across runs.
func (s *FactStore) Encode() ([]byte, error) {
	out := make([]encodedFact, 0, len(s.m))
	for k, f := range s.m {
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("lint: encoding fact %s for %s.%s: %w", k.typ, k.pkg, k.obj, err)
		}
		out = append(out, encodedFact{Pkg: k.pkg, Obj: k.obj, Type: k.typ, Data: data})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Type < b.Type
	})
	return json.Marshal(out)
}

// Decode merges serialized facts into the store. Facts of unregistered
// types are an error: a version skew between producer and consumer should
// fail loudly, not drop invariants.
func (s *FactStore) Decode(data []byte) error {
	var in []encodedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("lint: decoding fact stream: %w", err)
	}
	for _, e := range in {
		proto, ok := factProtos[e.Type]
		if !ok {
			return fmt.Errorf("lint: unknown fact type %q (missing RegisterFact?)", e.Type)
		}
		f := proto()
		if err := json.Unmarshal(e.Data, f); err != nil {
			return fmt.Errorf("lint: decoding fact %s for %s.%s: %w", e.Type, e.Pkg, e.Obj, err)
		}
		s.set(e.Pkg, e.Obj, f)
	}
	return nil
}

// Len reports the number of stored facts.
func (s *FactStore) Len() int { return len(s.m) }

// ExportObjectFact attaches f to obj, making it visible to later passes
// over packages that import this one. obj must be addressable by a stable
// path (package-level declaration or method); other objects are ignored.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	path := objectPath(obj)
	if path == "" {
		return
	}
	p.facts.set(obj.Pkg().Path(), path, f)
}

// ImportObjectFact copies the fact of f's type attached to obj into f and
// reports whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	path := objectPath(obj)
	if path == "" {
		return false
	}
	return p.facts.get(obj.Pkg().Path(), path, f)
}

// ExportPackageFact attaches f to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.facts == nil {
		return
	}
	p.facts.set(p.Pkg.Path(), "", f)
}

// ImportPackageFact copies the package-level fact of f's type for the
// package with the given import path into f.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(path, "", f)
}

// StoredFact is one fact together with its address, as returned by the
// Session accessors Finish hooks use.
type StoredFact struct {
	// Pkg is the import path of the package the fact was exported from.
	Pkg string
	// Obj is the object path within Pkg; empty for package-level facts.
	Obj string
	// Fact is the stored fact value. Treat it as read-only.
	Fact Fact
}

// allFacts returns every stored fact of proto's type, sorted by package
// path then object path, so Finish hooks iterate deterministically.
func (s *FactStore) allFacts(proto Fact) []StoredFact {
	want := factName(proto)
	var out []StoredFact
	for k, f := range s.m {
		if k.typ == want {
			out = append(out, StoredFact{Pkg: k.pkg, Obj: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}

// FactPos is a serializable source position embedded in facts, so Finish
// hooks can report diagnostics at positions recorded in other packages.
type FactPos struct {
	// File is the source file path as the loader saw it.
	File string `json:"file"`
	// Line and Col locate the fact's subject within File.
	Line int `json:"line"`
	Col  int `json:"col"`
}

// factPos converts a resolved token position.
func factPos(pos token.Position) FactPos {
	return FactPos{File: pos.Filename, Line: pos.Line, Col: pos.Column}
}

// Position converts back to the token form diagnostics use.
func (fp FactPos) Position() token.Position {
	return token.Position{Filename: fp.File, Line: fp.Line, Column: fp.Col}
}
