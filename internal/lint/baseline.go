// Baseline support: diff-aware gating for CI. A baseline file records the
// findings a repo has accepted (ideally none); a gated run fails only on
// findings NOT in the baseline, so a new invariant violation breaks the
// build while a pre-existing, tracked one does not block unrelated work.
// Matching ignores line and column — refactors move code — and compares
// (analyzer, file, message) as a multiset, so two identical findings in
// one file need two baseline entries.
package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry is one accepted finding in the baseline file.
type BaselineEntry struct {
	// Analyzer names the check that produced the finding.
	Analyzer string `json:"analyzer"`
	// File is the repo-relative path of the finding.
	File string `json:"file"`
	// Message is the diagnostic text.
	Message string `json:"message"`
}

// baselineKey folds an entry (or a diagnostic) to its matching identity.
func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, so bootstrapping needs no special case.
func ReadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return entries, nil
}

// WriteBaseline writes the diagnostics as a sorted baseline file, one
// entry per finding occurrence.
func WriteBaseline(path string, diags []Diagnostic) error {
	entries := make([]BaselineEntry, 0, len(diags))
	for _, d := range diags {
		entries = append(entries, BaselineEntry{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Message:  d.Message,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// NewFindings returns the diagnostics not covered by the baseline,
// multiset-style: a baseline entry absorbs exactly one matching finding.
func NewFindings(diags []Diagnostic, baseline []BaselineEntry) []Diagnostic {
	budget := make(map[string]int, len(baseline))
	for _, e := range baseline {
		budget[baselineKey(e.Analyzer, e.File, e.Message)]++
	}
	var fresh []Diagnostic
	for _, d := range diags {
		k := baselineKey(d.Analyzer, d.Pos.Filename, d.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh
}
