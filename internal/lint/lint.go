// Package lint is a repo-specific static analysis framework in the shape
// of golang.org/x/tools/go/analysis, built on the standard library alone
// (go/ast + go/types + export data) so the module stays dependency-free.
// It exists because the distribution layer — internal/remote, the stream
// runtime, the topology glue — encodes concurrency and protocol invariants
// that comments cannot enforce; the analyzers in this package turn those
// invariants into machine-checked build gates. docs/LINTING.md describes
// each analyzer and its invariant.
//
// The model mirrors go/analysis: an Analyzer owns a Run function invoked
// once per package with a Pass carrying the syntax trees and full type
// information. Diagnostics can be suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>...] reason
//
// placed on the offending line or the line directly above it; the reason
// is mandatory so every suppression documents itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check run over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore comments.
	Name string
	// Doc is the one-paragraph invariant description shown by -help.
	Doc string
	// Run inspects the package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's worth of material to an Analyzer.
type Pass struct {
	// Analyzer is the check currently running.
	Analyzer *Analyzer
	// Fset maps token positions back to file/line.
	Fset *token.FileSet
	// Files are the parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info is the full type information for Files.
	Info *types.Info

	diags   *[]Diagnostic
	ignores ignoreIndex
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Message states the violated invariant.
	Message string
}

// String renders the diagnostic in the conventional vet format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an ignore comment covers it.
// Test files are exempt wholesale: the standalone loader never sees them,
// and when the suite runs under `go vet -vettool` (which does feed them)
// the two modes must agree on what is checked.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.ignores.covers(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreIndex records, per file and line, which analyzers are suppressed.
type ignoreIndex map[string]map[int]map[string]bool

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+\S`)

// buildIgnoreIndex scans all comments for //lint:ignore directives. A
// directive covers its own line and the next one, so it works both as a
// trailing comment and as a line of its own above the finding.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, name := range strings.Split(m[1], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := lines[line]
						if set == nil {
							set = make(map[string]bool)
							lines[line] = set
						}
						set[name] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx ignoreIndex) covers(pos token.Position, analyzer string) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	set := lines[pos.Line]
	return set[analyzer] || set["all"]
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := buildIgnoreIndex(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
			ignores:  ignores,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		LockCheck,
		GoroutineCheck,
		WireCheck,
		CtxCheck,
		DetCheck,
		ObsCheck,
		RetryCheck,
		ParCheck,
	}
}

// ByName resolves a comma-separated analyzer list; the empty string means
// the full suite.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
