// Package lint is a repo-specific static analysis framework in the shape
// of golang.org/x/tools/go/analysis, built on the standard library alone
// (go/ast + go/types + export data) so the module stays dependency-free.
// It exists because the distribution layer — internal/remote, the stream
// runtime, the topology glue — encodes concurrency and protocol invariants
// that comments cannot enforce; the analyzers in this package turn those
// invariants into machine-checked build gates. docs/LINTING.md describes
// each analyzer and its invariant.
//
// The model mirrors go/analysis: an Analyzer owns a Run function invoked
// once per package with a Pass carrying the syntax trees and full type
// information. Diagnostics can be suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>...] reason
//
// placed on the offending line or the line directly above it; the reason
// is mandatory so every suppression documents itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check run over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore comments.
	Name string
	// Doc is the one-paragraph invariant description shown by -help.
	Doc string
	// Run inspects the package and reports findings through pass.Report.
	Run func(pass *Pass) error
	// Finish, when non-nil, runs once after every package's Run completed,
	// with access to the accumulated fact store through the Session. It is
	// where whole-program checks live: cycle detection over the merged
	// lock graph, protocol-coverage accounting. The vet-tool mode, which
	// analyzes one package at a time, never calls Finish — the standalone
	// runner (make lint) is the authoritative whole-repo gate.
	Finish func(s *Session) error
}

// Pass carries one package's worth of material to an Analyzer.
type Pass struct {
	// Analyzer is the check currently running.
	Analyzer *Analyzer
	// Fset maps token positions back to file/line.
	Fset *token.FileSet
	// Files are the parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info is the full type information for Files.
	Info *types.Info

	facts   *FactStore
	diags   *[]Diagnostic
	ignores ignoreIndex
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Message states the violated invariant.
	Message string
}

// String renders the diagnostic in the conventional vet format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an ignore comment covers it.
// Test files are exempt wholesale: the standalone loader never sees them,
// and when the suite runs under `go vet -vettool` (which does feed them)
// the two modes must agree on what is checked.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.ignores.covers(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreIndex records, per file and line, which analyzers are suppressed.
type ignoreIndex map[string]map[int]map[string]bool

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+\S`)

var ignorePrefixRe = regexp.MustCompile(`^//lint:ignore\b`)

// buildIgnoreIndex scans all comments for //lint:ignore directives,
// recording them in idx. A directive covers its own line and the next
// one, so it works both as a trailing comment and as a line of its own
// above the finding. A directive that is missing its analyzer list or its
// mandatory reason is itself a finding — suppressions must document
// themselves — reported under the pseudo-analyzer name "lint" (which no
// ignore directive can silence).
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					if ignorePrefixRe.MatchString(c.Text) && diags != nil {
						pos := fset.Position(c.Pos())
						if !strings.HasSuffix(pos.Filename, "_test.go") {
							*diags = append(*diags, Diagnostic{
								Pos:      pos,
								Analyzer: "lint",
								Message:  "malformed //lint:ignore directive: need an analyzer list and a reason (//lint:ignore <analyzer>[,<analyzer>...] reason)",
							})
						}
					}
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, name := range strings.Split(m[1], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := lines[line]
						if set == nil {
							set = make(map[string]bool)
							lines[line] = set
						}
						set[name] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx ignoreIndex) covers(pos token.Position, analyzer string) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	set := lines[pos.Line]
	return set[analyzer] || set["all"]
}

// Session is the shared state of one whole-program analysis: the fact
// store every pass reads and writes, the merged suppression index, and
// the accumulated diagnostics. Finish hooks receive it after the last
// package's Run.
type Session struct {
	facts   *FactStore
	ignores ignoreIndex
	diags   []Diagnostic
}

// NewSession returns an empty session with a fresh fact store.
func NewSession() *Session {
	return &Session{facts: NewFactStore(), ignores: make(ignoreIndex)}
}

// Facts exposes the session's fact store (vet-tool mode serializes it).
func (s *Session) Facts() *FactStore { return s.facts }

// AllPackageFacts returns every package-level fact of proto's type,
// sorted by package path.
func (s *Session) AllPackageFacts(proto Fact) []StoredFact {
	var out []StoredFact
	for _, sf := range s.facts.allFacts(proto) {
		if sf.Obj == "" {
			out = append(out, sf)
		}
	}
	return out
}

// AllObjectFacts returns every object-level fact of proto's type, sorted
// by package path then object path.
func (s *Session) AllObjectFacts(proto Fact) []StoredFact {
	var out []StoredFact
	for _, sf := range s.facts.allFacts(proto) {
		if sf.Obj != "" {
			out = append(out, sf)
		}
	}
	return out
}

// Reportf records a finding from a Finish hook at an explicit position,
// honoring the same test-file exemption and suppression index as
// Pass.Reportf. The analyzer is named by string so Finish hooks avoid an
// initialization cycle with their own Analyzer variable.
func (s *Session) Reportf(analyzer string, pos token.Position, format string, args ...interface{}) {
	if strings.HasSuffix(pos.Filename, "_test.go") {
		return
	}
	if s.ignores.covers(pos, analyzer) {
		return
	}
	s.diags = append(s.diags, Diagnostic{
		Pos:      pos,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// mergeIgnores folds one package's suppression index into the session's.
// Keys are file paths, so packages never collide.
func (s *Session) mergeIgnores(idx ignoreIndex) {
	for file, lines := range idx {
		s.ignores[file] = lines
	}
}

// runPackage executes the analyzers' Run phase over one package inside
// the session.
func (s *Session) runPackage(pkg *Package, analyzers []*Analyzer) error {
	s.mergeIgnores(buildIgnoreIndex(pkg.Fset, pkg.Files, &s.diags))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			facts:    s.facts,
			diags:    &s.diags,
			ignores:  s.ignores,
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return nil
}

// finish runs every Finish hook and returns the sorted diagnostics.
func (s *Session) finish(analyzers []*Analyzer) ([]Diagnostic, error) {
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		if err := a.Finish(s); err != nil {
			return nil, fmt.Errorf("lint: %s finish: %w", a.Name, err)
		}
	}
	sortDiagnostics(s.diags)
	return s.diags, nil
}

// sortDiagnostics orders findings by position for stable output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// dependencyOrder sorts packages so every package follows all of its
// (transitive) dependencies that are themselves in the set — the order
// fact producers must run before fact consumers.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	out := make([]*Package, 0, len(pkgs))
	seen := make(map[string]bool, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.Path] {
			return
		}
		seen[p.Path] = true
		imports := p.Types.Imports()
		paths := make([]string, 0, len(imports))
		for _, imp := range imports {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, ip := range paths {
			if dep, ok := byPath[ip]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range sorted {
		visit(p)
	}
	return out
}

// RunAll executes the analyzers over all packages in dependency order with
// a shared fact store, runs the Finish hooks, and returns the surviving
// diagnostics sorted by position. This is the whole-program entry point
// the standalone runner and the repo-wide test gate use.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	s := NewSession()
	for _, pkg := range dependencyOrder(pkgs) {
		if err := s.runPackage(pkg, analyzers); err != nil {
			return nil, err
		}
	}
	return s.finish(analyzers)
}

// Run executes the analyzers (Run and Finish phases) over one loaded
// package and returns the surviving diagnostics sorted by position. The
// fixture harness builds on it; whole-repo callers use RunAll so facts
// flow between packages.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAll([]*Package{pkg}, analyzers)
}

// RunModular executes only the analyzers' Run phase over one package, with
// facts imported from the serialized stores of its dependencies — the
// vet-tool mode, where cmd/go drives one package at a time and persists
// facts in the build cache. Finish hooks are skipped: whole-program checks
// need the full package set. Returns the diagnostics and this package's
// serialized facts (dependencies' facts included, so transitive consumers
// need only their direct dependencies' files).
func RunModular(pkg *Package, analyzers []*Analyzer, depFacts [][]byte) ([]Diagnostic, []byte, error) {
	s := NewSession()
	for _, data := range depFacts {
		if len(data) == 0 {
			continue
		}
		if err := s.facts.Decode(data); err != nil {
			return nil, nil, err
		}
	}
	if err := s.runPackage(pkg, analyzers); err != nil {
		return nil, nil, err
	}
	sortDiagnostics(s.diags)
	encoded, err := s.facts.Encode()
	if err != nil {
		return nil, nil, err
	}
	return s.diags, encoded, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		LockCheck,
		GoroutineCheck,
		WireCheck,
		CtxCheck,
		DetCheck,
		ObsCheck,
		RetryCheck,
		ParCheck,
		LockOrder,
		AllocCheck,
		WireState,
	}
}

// ByName resolves a comma-separated analyzer list; the empty string means
// the full suite.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
