package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// testFact is a fact type private to the tests.
type testFact struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

// AFact marks testFact as a fact.
func (*testFact) AFact() {}

func init() {
	RegisterFact(func() Fact { return new(testFact) })
}

// TestFactStoreRoundtrip exercises set/get copy semantics and the
// deterministic Encode/Decode cycle.
func TestFactStoreRoundtrip(t *testing.T) {
	s := NewFactStore()
	s.set("pkg/a", "F", &testFact{N: 1, S: "x"})
	s.set("pkg/a", "", &testFact{N: 2})
	s.set("pkg/b", "T.M", &testFact{N: 3})

	var got testFact
	if !s.get("pkg/a", "F", &got) || got.N != 1 || got.S != "x" {
		t.Fatalf("get pkg/a.F = %+v", got)
	}
	// Mutating the caller's copy must not corrupt the store.
	got.N = 99
	var again testFact
	if !s.get("pkg/a", "F", &again) || again.N != 1 {
		t.Fatalf("store mutated through caller copy: %+v", again)
	}
	if s.get("pkg/a", "G", &again) {
		t.Fatal("get reported a fact that was never set")
	}

	enc1, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("Encode is not deterministic")
	}

	s2 := NewFactStore()
	if err := s2.Decode(enc1); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("decoded %d facts, want %d", s2.Len(), s.Len())
	}
	var m testFact
	if !s2.get("pkg/b", "T.M", &m) || m.N != 3 {
		t.Fatalf("decoded store missing pkg/b.T.M: %+v", m)
	}
}

// TestFactStoreDecodeUnknownType checks that version skew fails loudly.
func TestFactStoreDecodeUnknownType(t *testing.T) {
	raw, _ := json.Marshal([]encodedFact{{
		Pkg: "p", Obj: "F", Type: "NoSuchFact", Data: json.RawMessage(`{}`),
	}})
	err := NewFactStore().Decode(raw)
	if err == nil || !strings.Contains(err.Error(), "NoSuchFact") {
		t.Fatalf("Decode unknown fact type: err = %v", err)
	}
	if err := NewFactStore().Decode([]byte("not json")); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

// TestSessionFactAccessors checks the package/object split of the Finish
// hook accessors and their deterministic order.
func TestSessionFactAccessors(t *testing.T) {
	s := NewSession()
	s.facts.set("pkg/b", "", &testFact{N: 1})
	s.facts.set("pkg/a", "", &testFact{N: 2})
	s.facts.set("pkg/a", "F", &testFact{N: 3})

	pf := s.AllPackageFacts(&testFact{})
	if len(pf) != 2 || pf[0].Pkg != "pkg/a" || pf[1].Pkg != "pkg/b" {
		t.Fatalf("AllPackageFacts = %+v", pf)
	}
	of := s.AllObjectFacts(&testFact{})
	if len(of) != 1 || of[0].Obj != "F" || of[0].Fact.(*testFact).N != 3 {
		t.Fatalf("AllObjectFacts = %+v", of)
	}
}

// TestRunModularFacts runs the per-package vet-tool entry point over the
// wirestate fixture and checks that (a) Finish diagnostics are absent —
// modular mode cannot judge whole-program coverage — and (b) the
// serialized facts round-trip and contain the fixture's wire enum.
func TestRunModularFacts(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "wirestate"))
	if err != nil {
		t.Fatal(err)
	}
	diags, facts, err := RunModular(pkg, []*Analyzer{WireState}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "dispatch handles it") || strings.Contains(d.Message, "encode arm") {
			t.Errorf("Finish-style diagnostic leaked into modular mode: %s", d)
		}
	}
	// The missing-marker check is per-package and must still fire.
	foundMarker := false
	for _, d := range diags {
		if strings.Contains(d.Message, "has no handled-by marker") {
			foundMarker = true
		}
	}
	if !foundMarker {
		t.Error("modular run lost the per-package missing-marker diagnostic")
	}

	store := NewFactStore()
	if err := store.Decode(facts); err != nil {
		t.Fatal(err)
	}
	var enum WireEnumFact
	if !store.get(pkg.Path, "", &enum) {
		t.Fatal("modular facts missing the WireEnumFact")
	}
	if len(enum.Consts) != 6 {
		t.Fatalf("WireEnumFact has %d consts, want 6", len(enum.Consts))
	}
	var disp WireDispatchFact
	if !store.get(pkg.Path, "", &disp) {
		t.Fatal("modular facts missing the WireDispatchFact")
	}
	if got := disp.Handled["worker"]; len(got) != 3 {
		t.Fatalf("worker dispatch arms = %v, want 3 (TypeA, TypeD, TypeF)", got)
	}

	// Feeding the facts back as a dependency store must decode cleanly.
	if _, _, err := RunModular(pkg, []*Analyzer{WireState}, [][]byte{facts}); err != nil {
		t.Fatal(err)
	}
}

// TestObjectPath pins the addressing scheme facts rely on.
func TestObjectPath(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "allocheck"))
	if err != nil {
		t.Fatal(err)
	}
	scope := pkg.Types.Scope()
	if got := objectPath(scope.Lookup("helper")); got != "helper" {
		t.Errorf("objectPath(helper) = %q", got)
	}
	if got := objectPath(nil); got != "" {
		t.Errorf("objectPath(nil) = %q", got)
	}
}
