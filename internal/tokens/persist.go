package tokens

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Save serializes the dictionary (words in id order with their document
// frequencies) so a text pipeline can be restored with identical token
// ids.
func (d *Dictionary) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	if err := put(uint64(len(d.words))); err != nil {
		return err
	}
	for i, word := range d.words {
		if err := put(uint64(len(word))); err != nil {
			return err
		}
		if _, err := bw.WriteString(word); err != nil {
			return err
		}
		if err := put(d.freq[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadDictionary reads a dictionary written by Save. The reader must be
// positioned exactly at the start of the dictionary; trailing data is left
// unread only when r is buffered by the caller — use a *bufio.Reader when
// concatenating sections.
func LoadDictionary(r io.ByteReader) (*Dictionary, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("tokens: dictionary count: %w", err)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("tokens: absurd dictionary size %d", n)
	}
	d := NewDictionary()
	for i := uint64(0); i < n; i++ {
		wl, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("tokens: word %d length: %w", i, err)
		}
		if wl > 1<<20 {
			return nil, fmt.Errorf("tokens: absurd word length %d", wl)
		}
		buf := make([]byte, wl)
		for j := range buf {
			b, err := r.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("tokens: word %d bytes: %w", i, err)
			}
			buf[j] = b
		}
		id := d.Intern(string(buf))
		f, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("tokens: word %d freq: %w", i, err)
		}
		d.freq[id] = f
	}
	return d, nil
}

// Save serializes the ordering: the frozen rank table and the stable
// post-frozen assignments, so restored pipelines map every known token to
// the exact rank it had — which stored records depend on.
func (o *Ordering) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	if err := put(uint64(o.frozen)); err != nil {
		return err
	}
	for _, r := range o.rank[:o.frozen] {
		if err := put(uint64(r)); err != nil {
			return err
		}
	}
	if err := put(uint64(len(o.extra))); err != nil {
		return err
	}
	for tok, r := range o.extra {
		if err := put(uint64(tok)); err != nil {
			return err
		}
		if err := put(uint64(r)); err != nil {
			return err
		}
	}
	if err := put(uint64(o.next)); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadOrdering reads an ordering written by Save, binding it to dict.
func LoadOrdering(r io.ByteReader, dict *Dictionary) (*Ordering, error) {
	frozen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("tokens: ordering frozen count: %w", err)
	}
	if frozen > 1<<28 {
		return nil, fmt.Errorf("tokens: absurd frozen count %d", frozen)
	}
	o := &Ordering{
		dict:   dict,
		rank:   make([]Rank, frozen),
		frozen: int(frozen),
		extra:  make(map[Token]Rank),
	}
	for i := range o.rank {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("tokens: rank %d: %w", i, err)
		}
		o.rank[i] = Rank(v)
	}
	ne, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("tokens: extra count: %w", err)
	}
	if ne > 1<<28 {
		return nil, fmt.Errorf("tokens: absurd extra count %d", ne)
	}
	for i := uint64(0); i < ne; i++ {
		tok, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("tokens: extra token: %w", err)
		}
		rk, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("tokens: extra rank: %w", err)
		}
		o.extra[Token(tok)] = Rank(rk)
	}
	next, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("tokens: ordering next: %w", err)
	}
	o.next = Rank(next)
	return o, nil
}
