package tokens

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestDictionarySaveLoadRoundTrip(t *testing.T) {
	d := NewDictionary()
	words := []string{"alpha", "beta", "γάμμα", "", "with space"}
	for i, w := range words {
		id := d.Intern(w)
		for j := 0; j <= i; j++ {
			d.Observe([]Token{id})
		}
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDictionary(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != d.Size() {
		t.Fatalf("size: %d vs %d", got.Size(), d.Size())
	}
	for i, w := range words {
		id, ok := got.Lookup(w)
		if !ok || id != Token(i) {
			t.Fatalf("word %q: id %d ok %v", w, id, ok)
		}
		if got.Frequency(id) != d.Frequency(id) {
			t.Fatalf("freq of %q: %d vs %d", w, got.Frequency(id), d.Frequency(id))
		}
	}
}

func TestOrderingSaveLoadPreservesRanks(t *testing.T) {
	d := NewDictionary()
	for _, w := range []string{"a", "b", "c", "d"} {
		id := d.Intern(w)
		d.Observe([]Token{id})
	}
	o := NewOrdering(d)
	// Force two post-frozen assignments.
	late1 := d.Intern("late1")
	late2 := d.Intern("late2")
	r1, r2 := o.RankOf(late1), o.RankOf(late2)

	var db, ob bytes.Buffer
	if err := d.Save(&db); err != nil {
		t.Fatal(err)
	}
	if err := o.Save(&ob); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDictionary(bufio.NewReader(&db))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := LoadOrdering(bufio.NewReader(&ob), d2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Size(); i++ {
		if o.RankOf(Token(i)) != o2.RankOf(Token(i)) {
			t.Fatalf("rank of token %d differs: %d vs %d",
				i, o.RankOf(Token(i)), o2.RankOf(Token(i)))
		}
	}
	if o2.RankOf(late1) != r1 || o2.RankOf(late2) != r2 {
		t.Fatal("post-frozen ranks not preserved")
	}
	// New tokens after restore continue the rank sequence.
	newer := d2.Intern("newer")
	if got := o2.RankOf(newer); got != r2+1 {
		t.Fatalf("next rank: got %d want %d", got, r2+1)
	}
}

func TestLoadDictionaryRejectsGarbage(t *testing.T) {
	if _, err := LoadDictionary(bufio.NewReader(strings.NewReader(""))); err == nil {
		t.Fatal("empty accepted")
	}
	// Absurd count.
	if _, err := LoadDictionary(bufio.NewReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}))); err == nil {
		t.Fatal("absurd count accepted")
	}
}

func TestLoadOrderingRejectsGarbage(t *testing.T) {
	d := NewDictionary()
	if _, err := LoadOrdering(bufio.NewReader(strings.NewReader("")), d); err == nil {
		t.Fatal("empty accepted")
	}
}
