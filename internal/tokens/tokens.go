// Package tokens provides the token universe for set-similarity joins: a
// string-interning dictionary, tokenizers that split raw text into token
// multisets, and a global frequency ordering that maps tokens to ranks so
// that ascending rank means ascending document frequency. Prefix filtering
// depends on that ordering: rare tokens sort first, so short prefixes carry
// maximal pruning power.
package tokens

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"unicode"
)

// Token is an interned token identifier. Identifiers are dense and start at
// zero, so they index directly into Dictionary side tables.
type Token uint32

// Rank is a position in a global frequency ordering. Lower rank means lower
// document frequency (rarer token). Records are stored as ascending rank
// sequences; see Ordering.
type Rank = uint32

// Dictionary interns token strings and tracks per-token document frequency.
// The zero value is not usable; call NewDictionary. Dictionary is not safe
// for concurrent mutation; wrap it or shard it upstream if needed.
type Dictionary struct {
	ids   map[string]Token
	words []string
	freq  []uint64
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]Token)}
}

// Intern returns the Token for word, creating it with zero frequency when
// unseen.
func (d *Dictionary) Intern(word string) Token {
	if id, ok := d.ids[word]; ok {
		return id
	}
	id := Token(len(d.words))
	d.ids[word] = id
	d.words = append(d.words, word)
	d.freq = append(d.freq, 0)
	return id
}

// Lookup returns the Token for word without creating it.
func (d *Dictionary) Lookup(word string) (Token, bool) {
	id, ok := d.ids[word]
	return id, ok
}

// Word returns the string for id. It panics if id was never interned, which
// indicates a programming error (ids only come from this dictionary).
func (d *Dictionary) Word(id Token) string {
	return d.words[id]
}

// Size reports the number of distinct tokens interned so far.
func (d *Dictionary) Size() int { return len(d.words) }

// Observe records one document-frequency observation for each distinct token
// in set. Call it once per record with the record's deduplicated tokens.
func (d *Dictionary) Observe(set []Token) {
	for _, t := range set {
		d.freq[t]++
	}
}

// Frequency returns the number of Observe calls that included id.
func (d *Dictionary) Frequency(id Token) uint64 { return d.freq[id] }

// Ordering maps tokens to ranks such that ascending rank means ascending
// document frequency at the time the ordering was built. Tokens interned
// after the ordering was built ("unseen" tokens) are assigned ranks above
// every frozen token but in a stable first-come order; they are rare by
// definition, and placing them after the frozen range keeps frozen ranks
// immutable, which streaming indexes require.
type Ordering struct {
	dict   *Dictionary
	rank   []Rank // indexed by Token; valid for tokens frozen at build time
	frozen int    // number of tokens covered by rank
	extra  map[Token]Rank
	next   Rank
}

// NewOrdering freezes the current frequency statistics of dict into a global
// ordering. Ties are broken by token id so the ordering is deterministic.
func NewOrdering(dict *Dictionary) *Ordering {
	n := dict.Size()
	ids := make([]Token, n)
	for i := range ids {
		ids[i] = Token(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		fa, fb := dict.freq[ids[a]], dict.freq[ids[b]]
		if fa != fb {
			return fa < fb
		}
		return ids[a] < ids[b]
	})
	rank := make([]Rank, n)
	for r, id := range ids {
		rank[id] = Rank(r)
	}
	return &Ordering{
		dict:   dict,
		rank:   rank,
		frozen: n,
		extra:  make(map[Token]Rank),
		next:   Rank(n),
	}
}

// RankOf returns the global rank of id, assigning a fresh post-frozen rank
// to tokens unseen at build time.
func (o *Ordering) RankOf(id Token) Rank {
	if int(id) < o.frozen {
		return o.rank[id]
	}
	if r, ok := o.extra[id]; ok {
		return r
	}
	r := o.next
	o.next++
	o.extra[id] = r
	return r
}

// Universe reports the number of ranks assigned so far.
func (o *Ordering) Universe() int { return int(o.next) }

// DumpRanks visits every (token, rank) assignment made so far — the frozen
// table plus post-frozen extras. Ordering-refresh uses it to build the
// inverse mapping when re-encoding stored records.
func (o *Ordering) DumpRanks(visit func(Token, Rank)) {
	for id := 0; id < o.frozen; id++ {
		visit(Token(id), o.rank[id])
	}
	for id, r := range o.extra {
		visit(id, r)
	}
}

// Tokenizer splits raw text into a token string slice. Implementations must
// be deterministic; dedup happens downstream.
type Tokenizer interface {
	Tokenize(text string) []string
}

// WordTokenizer splits on Unicode whitespace, lowercases, and strips leading
// and trailing punctuation from each word. The zero value is ready to use.
type WordTokenizer struct {
	// KeepCase disables lowercasing when true.
	KeepCase bool
}

// Tokenize implements Tokenizer.
func (w WordTokenizer) Tokenize(text string) []string {
	fields := strings.FieldsFunc(text, unicode.IsSpace)
	out := fields[:0]
	for _, f := range fields {
		f = strings.TrimFunc(f, unicode.IsPunct)
		if f == "" {
			continue
		}
		if !w.KeepCase {
			f = strings.ToLower(f)
		}
		out = append(out, f)
	}
	return out
}

// QGramTokenizer produces overlapping character q-grams; it is the usual
// choice for short dirty strings in data-cleaning workloads. Q must be at
// least 1. Strings shorter than Q yield a single gram (the whole string).
type QGramTokenizer struct {
	Q int
	// Pad, when true, pads the string with Q-1 leading and trailing '#'
	// sentinels so edge characters appear in Q grams.
	Pad bool
}

// Tokenize implements Tokenizer.
func (q QGramTokenizer) Tokenize(text string) []string {
	if q.Q < 1 {
		panic(fmt.Sprintf("tokens: QGramTokenizer.Q must be >= 1, got %d", q.Q))
	}
	r := []rune(strings.ToLower(text))
	if q.Pad && q.Q > 1 {
		pad := make([]rune, q.Q-1)
		for i := range pad {
			pad[i] = '#'
		}
		r = append(append(append([]rune{}, pad...), r...), pad...)
	}
	if len(r) == 0 {
		return nil
	}
	if len(r) <= q.Q {
		return []string{string(r)}
	}
	out := make([]string, 0, len(r)-q.Q+1)
	for i := 0; i+q.Q <= len(r); i++ {
		out = append(out, string(r[i:i+q.Q]))
	}
	return out
}

// Dedup sorts ranks ascending and removes duplicates in place, returning the
// shortened slice. Records are sets, so every pipeline stage calls this once
// at ingestion.
func Dedup(ranks []Rank) []Rank {
	if len(ranks) < 2 {
		return ranks
	}
	slices.Sort(ranks)
	w := 1
	for i := 1; i < len(ranks); i++ {
		if ranks[i] != ranks[i-1] {
			ranks[w] = ranks[i]
			w++
		}
	}
	return ranks[:w]
}
