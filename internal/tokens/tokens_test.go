package tokens

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDictionaryInternIsIdempotent(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("apple")
	b := d.Intern("banana")
	if a == b {
		t.Fatalf("distinct words got same id %d", a)
	}
	if again := d.Intern("apple"); again != a {
		t.Fatalf("re-intern apple: got %d want %d", again, a)
	}
	if d.Size() != 2 {
		t.Fatalf("size: got %d want 2", d.Size())
	}
	if w := d.Word(a); w != "apple" {
		t.Fatalf("word(a): got %q", w)
	}
}

func TestDictionaryLookup(t *testing.T) {
	d := NewDictionary()
	if _, ok := d.Lookup("ghost"); ok {
		t.Fatal("lookup of unseen word succeeded")
	}
	id := d.Intern("ghost")
	got, ok := d.Lookup("ghost")
	if !ok || got != id {
		t.Fatalf("lookup: got (%d,%v) want (%d,true)", got, ok, id)
	}
}

func TestObserveCountsDocumentFrequency(t *testing.T) {
	d := NewDictionary()
	a, b := d.Intern("a"), d.Intern("b")
	d.Observe([]Token{a, b})
	d.Observe([]Token{a})
	if f := d.Frequency(a); f != 2 {
		t.Fatalf("freq(a): got %d want 2", f)
	}
	if f := d.Frequency(b); f != 1 {
		t.Fatalf("freq(b): got %d want 1", f)
	}
}

func TestOrderingRareTokensRankFirst(t *testing.T) {
	d := NewDictionary()
	common := d.Intern("the")
	rare := d.Intern("xylophone")
	mid := d.Intern("data")
	for i := 0; i < 10; i++ {
		d.Observe([]Token{common})
	}
	for i := 0; i < 3; i++ {
		d.Observe([]Token{mid})
	}
	d.Observe([]Token{rare})
	o := NewOrdering(d)
	if !(o.RankOf(rare) < o.RankOf(mid) && o.RankOf(mid) < o.RankOf(common)) {
		t.Fatalf("ordering wrong: rare=%d mid=%d common=%d",
			o.RankOf(rare), o.RankOf(mid), o.RankOf(common))
	}
}

func TestOrderingTiesBreakByID(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("a")
	b := d.Intern("b")
	o := NewOrdering(d)
	if !(o.RankOf(a) < o.RankOf(b)) {
		t.Fatalf("tie break: rank(a)=%d rank(b)=%d", o.RankOf(a), o.RankOf(b))
	}
}

func TestOrderingUnseenTokensGetStablePostFrozenRanks(t *testing.T) {
	d := NewDictionary()
	d.Intern("seen")
	o := NewOrdering(d)
	newTok := d.Intern("later")
	r1 := o.RankOf(newTok)
	if int(r1) < o.Universe()-1 {
		t.Fatalf("unseen token rank %d should be post-frozen", r1)
	}
	if r2 := o.RankOf(newTok); r2 != r1 {
		t.Fatalf("unseen rank not stable: %d then %d", r1, r2)
	}
	another := d.Intern("evenlater")
	if o.RankOf(another) == r1 {
		t.Fatal("two unseen tokens share a rank")
	}
}

func TestOrderingIsPermutationOfFrozenTokens(t *testing.T) {
	d := NewDictionary()
	rng := rand.New(rand.NewSource(7))
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, w := range words {
		d.Intern(w)
	}
	for i := 0; i < 100; i++ {
		id := Token(rng.Intn(len(words)))
		d.Observe([]Token{id})
	}
	o := NewOrdering(d)
	seen := make(map[Rank]bool)
	for i := 0; i < len(words); i++ {
		r := o.RankOf(Token(i))
		if int(r) >= len(words) {
			t.Fatalf("rank %d out of frozen range", r)
		}
		if seen[r] {
			t.Fatalf("duplicate rank %d", r)
		}
		seen[r] = true
	}
}

func TestWordTokenizer(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"  spaced\tout\nlines ", []string{"spaced", "out", "lines"}},
		{"...", nil},
		{"", nil},
		{"don't STOP", []string{"don't", "stop"}},
	}
	var w WordTokenizer
	for _, c := range cases {
		got := w.Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWordTokenizerKeepCase(t *testing.T) {
	w := WordTokenizer{KeepCase: true}
	got := w.Tokenize("Hello World")
	want := []string{"Hello", "World"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestQGramTokenizer(t *testing.T) {
	q := QGramTokenizer{Q: 3}
	got := q.Tokenize("abcd")
	want := []string{"abc", "bcd"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("3-grams of abcd: got %v want %v", got, want)
	}
	if short := q.Tokenize("ab"); !reflect.DeepEqual(short, []string{"ab"}) {
		t.Fatalf("short string: got %v", short)
	}
	if empty := q.Tokenize(""); empty != nil {
		t.Fatalf("empty string: got %v", empty)
	}
}

func TestQGramTokenizerPad(t *testing.T) {
	q := QGramTokenizer{Q: 2, Pad: true}
	got := q.Tokenize("ab")
	want := []string{"#a", "ab", "b#"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("padded 2-grams: got %v want %v", got, want)
	}
}

func TestQGramTokenizerPanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Q=0")
		}
	}()
	QGramTokenizer{Q: 0}.Tokenize("x")
}

func TestDedup(t *testing.T) {
	got := Dedup([]Rank{5, 1, 3, 1, 5, 2})
	want := []Rank{1, 2, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if out := Dedup(nil); out != nil {
		t.Fatalf("nil input: got %v", out)
	}
	if out := Dedup([]Rank{7}); !reflect.DeepEqual(out, []Rank{7}) {
		t.Fatalf("singleton: got %v", out)
	}
}

func TestDedupPropertySortedUnique(t *testing.T) {
	f := func(in []uint32) bool {
		ranks := make([]Rank, len(in))
		copy(ranks, in)
		out := Dedup(ranks)
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
			return false
		}
		uniq := make(map[Rank]bool)
		for _, r := range out {
			if uniq[r] {
				return false
			}
			uniq[r] = true
		}
		// Same value set as input.
		inSet := make(map[Rank]bool)
		for _, r := range in {
			inSet[r] = true
		}
		if len(inSet) != len(out) {
			return false
		}
		for _, r := range out {
			if !inSet[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
