package tokens

import (
	"testing"
	"unicode/utf8"
)

// FuzzWordTokenizer: arbitrary (possibly invalid UTF-8) input must never
// panic and never produce empty tokens.
func FuzzWordTokenizer(f *testing.F) {
	f.Add("hello, world")
	f.Add("  \t\n ")
	f.Add("日本語 テキスト")
	f.Add(string([]byte{0xFF, 0xFE, 0x20, 0x41}))
	f.Fuzz(func(t *testing.T, text string) {
		for _, tok := range (WordTokenizer{}).Tokenize(text) {
			if tok == "" {
				t.Fatal("empty token")
			}
		}
	})
}

// FuzzQGramTokenizer: grams must cover the string and have length <= Q
// runes.
func FuzzQGramTokenizer(f *testing.F) {
	f.Add("abcdef", 3)
	f.Add("", 2)
	f.Add("é", 4)
	f.Fuzz(func(t *testing.T, text string, q int) {
		q = int(uint(q)%6) + 1 // 1..6, safe for all ints including MinInt
		grams := QGramTokenizer{Q: q}.Tokenize(text)
		for _, g := range grams {
			if n := utf8.RuneCountInString(g); n > q {
				t.Fatalf("gram %q has %d runes > q=%d", g, n, q)
			}
		}
	})
}
