// Package workload generates the synthetic record streams the experiments
// run on. The paper evaluates on real corpora (web queries, tweets,
// emails); those are substituted here by generators that reproduce the two
// statistics that drive set-similarity-join cost — the record-length
// distribution and the token-frequency skew — plus a controllable
// near-duplicate rate, since duplicate-heavy streams are what bundling
// exploits. Each named profile documents the corpus it stands in for.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/tokens"
)

// LengthDist samples record set sizes.
type LengthDist interface {
	Sample(rng *rand.Rand) int
	String() string
}

// Lognormal samples lengths from exp(N(Mu, Sigma²)) clamped to [Min, Max] —
// the canonical shape of document-length distributions.
type Lognormal struct {
	Mu, Sigma float64
	Min, Max  int
}

// Sample implements LengthDist.
func (d Lognormal) Sample(rng *rand.Rand) int {
	l := int(math.Round(math.Exp(rng.NormFloat64()*d.Sigma + d.Mu)))
	if l < d.Min {
		l = d.Min
	}
	if l > d.Max {
		l = d.Max
	}
	return l
}

// String implements fmt.Stringer.
func (d Lognormal) String() string {
	return fmt.Sprintf("lognormal(μ=%.2f σ=%.2f [%d,%d])", d.Mu, d.Sigma, d.Min, d.Max)
}

// Uniform samples lengths uniformly from [Min, Max].
type Uniform struct{ Min, Max int }

// Sample implements LengthDist.
func (d Uniform) Sample(rng *rand.Rand) int {
	if d.Max <= d.Min {
		return d.Min
	}
	return d.Min + rng.Intn(d.Max-d.Min+1)
}

// String implements fmt.Stringer.
func (d Uniform) String() string { return fmt.Sprintf("uniform[%d,%d]", d.Min, d.Max) }

// Profile parameterizes a stream generator.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// Vocab is the token-universe size.
	Vocab int
	// ZipfS is the token-frequency skew exponent (must be > 1; higher is
	// more skewed).
	ZipfS float64
	// Lengths is the record set-size distribution.
	Lengths LengthDist
	// DupRate is the probability an incoming record is a near-duplicate of
	// a recent record rather than a fresh draw.
	DupRate float64
	// DupMutate is the per-token replacement probability applied when
	// deriving a near-duplicate.
	DupMutate float64
	// Seed makes the stream reproducible.
	Seed int64
}

// The named profiles stand in for the corpora distributed streaming
// set-similarity join papers evaluate on. Scales are laptop-sized; the
// harness sweeps record counts independently.

// AOLLike imitates a web query log: very short records (mean ≈ 3 tokens),
// large skewed vocabulary, moderate duplication (repeated queries).
func AOLLike(seed int64) Profile {
	return Profile{
		Name:      "AOL-like",
		Vocab:     200_000,
		ZipfS:     1.2,
		Lengths:   Lognormal{Mu: 1.1, Sigma: 0.45, Min: 1, Max: 20},
		DupRate:   0.30,
		DupMutate: 0.25,
		Seed:      seed,
	}
}

// TweetLike imitates a microblog stream: ~10-token records, heavy skew,
// high near-duplicate rate (retweets).
func TweetLike(seed int64) Profile {
	return Profile{
		Name:      "TWEET-like",
		Vocab:     500_000,
		ZipfS:     1.15,
		Lengths:   Lognormal{Mu: 2.3, Sigma: 0.4, Min: 3, Max: 60},
		DupRate:   0.45,
		DupMutate: 0.15,
		Seed:      seed,
	}
}

// EnronLike imitates an email corpus: long records with a fat tail.
func EnronLike(seed int64) Profile {
	return Profile{
		Name:      "ENRON-like",
		Vocab:     300_000,
		ZipfS:     1.1,
		Lengths:   Lognormal{Mu: 4.4, Sigma: 0.7, Min: 10, Max: 800},
		DupRate:   0.20,
		DupMutate: 0.10,
		Seed:      seed,
	}
}

// UniformSmall is a fully controlled profile for unit-scale experiments.
func UniformSmall(seed int64) Profile {
	return Profile{
		Name:      "UNIFORM",
		Vocab:     10_000,
		ZipfS:     1.3,
		Lengths:   Uniform{Min: 4, Max: 24},
		DupRate:   0.35,
		DupMutate: 0.2,
		Seed:      seed,
	}
}

// Profiles returns all named profiles keyed by report name.
func Profiles(seed int64) []Profile {
	return []Profile{AOLLike(seed), TweetLike(seed), EnronLike(seed), UniformSmall(seed)}
}

// ProfileByName resolves a profile name (case-sensitive prefix before the
// "-like" suffix is accepted too).
func ProfileByName(name string, seed int64) (Profile, error) {
	for _, p := range Profiles(seed) {
		if p.Name == name {
			return p, nil
		}
	}
	switch name {
	case "aol":
		return AOLLike(seed), nil
	case "tweet":
		return TweetLike(seed), nil
	case "enron":
		return EnronLike(seed), nil
	case "uniform":
		return UniformSmall(seed), nil
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Generator produces a reproducible record stream for a profile.
// Token ranks are assigned so that ascending rank means ascending expected
// frequency, exactly the global ordering prefix filtering assumes: the
// Zipf sample k (0 = most frequent) maps to rank Vocab-1-k.
type Generator struct {
	prof Profile
	rng  *rand.Rand
	zipf *rand.Zipf
	// reservoir of recent records to derive near-duplicates from
	recent []*record.Record
	next   record.ID
}

// NewGenerator returns a generator for the profile.
func NewGenerator(p Profile) *Generator {
	if p.Vocab < 2 {
		panic("workload: Vocab must be >= 2")
	}
	if p.ZipfS <= 1 {
		panic("workload: ZipfS must be > 1")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	return &Generator{
		prof: p,
		rng:  rng,
		zipf: rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Vocab-1)),
	}
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

func (g *Generator) sampleToken() tokens.Rank {
	k := g.zipf.Uint64() // 0 is the most frequent token
	return tokens.Rank(uint64(g.prof.Vocab) - 1 - k)
}

// Next produces the next record of the stream.
func (g *Generator) Next() *record.Record {
	var set []tokens.Rank
	if len(g.recent) > 0 && g.rng.Float64() < g.prof.DupRate {
		src := g.recent[g.rng.Intn(len(g.recent))]
		set = append([]tokens.Rank(nil), src.Tokens...)
		for i := range set {
			if g.rng.Float64() < g.prof.DupMutate {
				set[i] = g.sampleToken()
			}
		}
		set = tokens.Dedup(set)
	} else {
		n := g.prof.Lengths.Sample(g.rng)
		if n < 1 {
			n = 1
		}
		set = make([]tokens.Rank, 0, n)
		for attempts := 0; len(set) < n && attempts < 20*n; attempts++ {
			set = append(set, g.sampleToken())
			set = tokens.Dedup(set)
		}
	}
	r := &record.Record{ID: g.next, Time: int64(g.next), Tokens: set}
	g.next++
	if len(g.recent) < 512 {
		g.recent = append(g.recent, r)
	} else {
		g.recent[g.rng.Intn(len(g.recent))] = r
	}
	return r
}

// Generate materializes the next n records.
func (g *Generator) Generate(n int) []*record.Record {
	out := make([]*record.Record, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// LengthHistogram builds a length histogram from a fresh sample of n
// records of the same profile without consuming the generator — the
// bootstrap statistics the load-aware partitioner needs.
func LengthHistogram(p Profile, n int) *partition.Histogram {
	g := NewGenerator(p)
	var h partition.Histogram
	for i := 0; i < n; i++ {
		h.Add(g.Next().Len())
	}
	return &h
}
