package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/record"
	"repro/internal/tokens"
)

// Save writes records in the plain text exchange format: one record per
// line, space-separated token ranks in ascending order. Record IDs and
// times are positional (line number), matching how Load reassigns them.
func Save(w io.Writer, recs []*record.Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		for i, t := range r.Tokens {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(t), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads records saved by Save, assigning sequential IDs and times in
// line order. Blank lines are skipped; malformed tokens are an error.
func Load(r io.Reader) ([]*record.Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []*record.Record
	var id record.ID
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		set := make([]tokens.Rank, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad token %q: %w", line, f, err)
			}
			set = append(set, tokens.Rank(v))
		}
		out = append(out, &record.Record{ID: id, Time: int64(id), Tokens: tokens.Dedup(set)})
		id++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: scan: %w", err)
	}
	return out, nil
}
