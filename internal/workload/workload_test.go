package workload

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/similarity"
)

func TestGeneratorIsReproducible(t *testing.T) {
	a := NewGenerator(UniformSmall(42)).Generate(100)
	b := NewGenerator(UniformSmall(42)).Generate(100)
	for i := range a {
		if a[i].ID != b[i].ID || len(a[i].Tokens) != len(b[i].Tokens) {
			t.Fatalf("streams diverge at %d", i)
		}
		for j := range a[i].Tokens {
			if a[i].Tokens[j] != b[i].Tokens[j] {
				t.Fatalf("streams diverge at record %d token %d", i, j)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewGenerator(UniformSmall(1)).Generate(50)
	b := NewGenerator(UniformSmall(2)).Generate(50)
	same := 0
	for i := range a {
		if len(a[i].Tokens) == len(b[i].Tokens) {
			eq := true
			for j := range a[i].Tokens {
				if a[i].Tokens[j] != b[i].Tokens[j] {
					eq = false
					break
				}
			}
			if eq {
				same++
			}
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRecordsAreValidSets(t *testing.T) {
	for _, p := range Profiles(7) {
		g := NewGenerator(p)
		for i := 0; i < 200; i++ {
			r := g.Next()
			if r.Len() == 0 {
				t.Fatalf("%s: empty record", p.Name)
			}
			if !sort.SliceIsSorted(r.Tokens, func(a, b int) bool { return r.Tokens[a] < r.Tokens[b] }) {
				t.Fatalf("%s: unsorted tokens %v", p.Name, r.Tokens)
			}
			for j := 1; j < r.Len(); j++ {
				if r.Tokens[j] == r.Tokens[j-1] {
					t.Fatalf("%s: duplicate token", p.Name)
				}
			}
			if int(r.ID) != i {
				t.Fatalf("%s: id %d at position %d", p.Name, r.ID, i)
			}
		}
	}
}

func TestProfileLengthShapes(t *testing.T) {
	// AOL-like records must be much shorter than ENRON-like on average.
	mean := func(p Profile) float64 {
		g := NewGenerator(p)
		var sum int
		const n = 2000
		for i := 0; i < n; i++ {
			sum += g.Next().Len()
		}
		return float64(sum) / n
	}
	aol, enron := mean(AOLLike(3)), mean(EnronLike(3))
	if aol > 8 {
		t.Fatalf("AOL-like mean length too big: %v", aol)
	}
	if enron < 30 {
		t.Fatalf("ENRON-like mean length too small: %v", enron)
	}
	if enron < 5*aol {
		t.Fatalf("profiles not distinct enough: aol=%v enron=%v", aol, enron)
	}
}

func TestDupRateProducesSimilarPairs(t *testing.T) {
	// A duplicate-heavy profile must yield many high-similarity pairs; a
	// zero-dup profile on a large vocabulary must yield almost none.
	count := func(p Profile) int {
		g := NewGenerator(p)
		recs := g.Generate(300)
		n := 0
		for i := range recs {
			for j := 0; j < i; j++ {
				if similarity.Of(similarity.Jaccard, recs[i].Tokens, recs[j].Tokens) >= 0.8 {
					n++
				}
			}
		}
		return n
	}
	dup := UniformSmall(5)
	dup.DupRate = 0.5
	dup.DupMutate = 0.05
	noDup := UniformSmall(5)
	noDup.DupRate = 0
	noDup.Vocab = 1_000_000
	a, b := count(dup), count(noDup)
	if a < 50 {
		t.Fatalf("dup-heavy stream has too few similar pairs: %d", a)
	}
	if b > a/10 {
		t.Fatalf("no-dup stream too similar: dup=%d nodup=%d", a, b)
	}
}

func TestZipfSkewShowsInRanks(t *testing.T) {
	// High ranks (frequent tokens) must appear far more often than low
	// ranks across a sample.
	p := UniformSmall(11)
	g := NewGenerator(p)
	freq := make(map[uint32]int)
	for i := 0; i < 2000; i++ {
		for _, tok := range g.Next().Tokens {
			freq[tok]++
		}
	}
	var topCount, bottomCount int
	for tok, c := range freq {
		if int(tok) >= p.Vocab-10 {
			topCount += c
		}
		if int(tok) < p.Vocab/2 {
			bottomCount += c
		}
	}
	if topCount < bottomCount {
		t.Fatalf("skew missing: top10=%d bottomHalf=%d", topCount, bottomCount)
	}
}

func TestLengthHistogram(t *testing.T) {
	h := LengthHistogram(UniformSmall(13), 500)
	if h.Total() != 500 {
		t.Fatalf("total: %d", h.Total())
	}
	if h.MaxLen() == 0 {
		t.Fatal("empty histogram")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"aol", "tweet", "enron", "uniform", "AOL-like"} {
		if _, err := ProfileByName(name, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ProfileByName("nope", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestGeneratorPanicsOnBadProfile(t *testing.T) {
	bad := []Profile{
		{Vocab: 1, ZipfS: 1.2, Lengths: Uniform{Min: 1, Max: 2}},
		{Vocab: 100, ZipfS: 1.0, Lengths: Uniform{Min: 1, Max: 2}},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewGenerator(p)
		}()
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	recs := NewGenerator(UniformSmall(17)).Generate(120)
	var buf bytes.Buffer
	if err := Save(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("count: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID {
			t.Fatalf("id mismatch at %d", i)
		}
		if len(got[i].Tokens) != len(recs[i].Tokens) {
			t.Fatalf("len mismatch at %d", i)
		}
		for j := range recs[i].Tokens {
			if got[i].Tokens[j] != recs[i].Tokens[j] {
				t.Fatalf("token mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestLoadSkipsBlankAndRejectsGarbage(t *testing.T) {
	got, err := Load(strings.NewReader("1 2 3\n\n4 5\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("load: %v %d", err, len(got))
	}
	if _, err := Load(strings.NewReader("1 x 3\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLengthDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{Min: 5, Max: 9}
	for i := 0; i < 100; i++ {
		l := u.Sample(rng)
		if l < 5 || l > 9 {
			t.Fatalf("uniform out of range: %d", l)
		}
	}
	if (Uniform{Min: 4, Max: 4}).Sample(rng) != 4 {
		t.Fatal("degenerate uniform")
	}
	ln := Lognormal{Mu: 2, Sigma: 0.5, Min: 1, Max: 50}
	var sum float64
	for i := 0; i < 2000; i++ {
		l := ln.Sample(rng)
		if l < 1 || l > 50 {
			t.Fatalf("lognormal out of range: %d", l)
		}
		sum += float64(l)
	}
	mean := sum / 2000
	// E[lognormal(2, .5)] ≈ exp(2.125) ≈ 8.4
	if math.Abs(mean-8.4) > 2.5 {
		t.Fatalf("lognormal mean off: %v", mean)
	}
	if u.String() == "" || ln.String() == "" {
		t.Fatal("empty dist strings")
	}
}
