package local

import (
	"reflect"
	"testing"

	"repro/internal/filter"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/window"
	"repro/internal/workload"
)

// stepStream drives a full store=true stream through j and returns the
// ordered flat match stream (probe, partner, overlap, sim).
func stepStream(j Joiner, recs []*record.Record) [][4]float64 {
	var out [][4]float64
	for _, r := range recs {
		j.Step(r, true, func(m Match) {
			out = append(out, [4]float64{float64(r.ID), float64(m.Rec.ID), float64(m.Overlap), m.Sim})
		})
	}
	return out
}

// TestParallelParityLocalJoiner checks the joiner-level determinism
// contract: a Bundled joiner with any verifier-pool size must emit the
// byte-identical ordered match stream and accumulate the identical Cost as
// the sequential joiner.
func TestParallelParityLocalJoiner(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(19)).Generate(600)
	opt := Options{
		Params: filter.Params{Func: similarity.Jaccard, Threshold: 0.6},
		Window: window.Count{N: 150},
	}
	ref := New(Bundled, opt)
	want := stepStream(ref, recs)
	wantCost := ref.Cost()
	if len(want) == 0 {
		t.Fatal("degenerate workload: no matches")
	}
	for _, p := range []int{2, 4, 8} {
		po := opt
		po.Parallelism = p
		j := New(Bundled, po)
		got := stepStream(j, recs)
		gotCost := j.Cost()
		CloseJoiner(j)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("P=%d: match stream differs (%d vs %d entries)", p, len(got), len(want))
		}
		if gotCost != wantCost {
			t.Fatalf("P=%d: cost differs:\n got  %+v\n want %+v", p, gotCost, wantCost)
		}
	}
}

// TestCloseJoinerFallsBackSequential: closing a parallel joiner releases
// its pool but keeps it correct — subsequent steps run sequentially and the
// whole stream still matches the sequential reference. CloseJoiner must
// also be safe on joiners that own nothing and on repeated calls.
func TestCloseJoinerFallsBackSequential(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(23)).Generate(400)
	opt := Options{Params: filter.Params{Func: similarity.Jaccard, Threshold: 0.6}}
	ref := New(Bundled, opt)
	want := stepStream(ref, recs)

	po := opt
	po.Parallelism = 4
	j := New(Bundled, po)
	got := stepStream(j, recs[:200])
	CloseJoiner(j)
	got = append(got, stepStream(j, recs[200:])...)
	CloseJoiner(j) // idempotent
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("close mid-stream changed results (%d vs %d entries)", len(got), len(want))
	}

	for _, a := range []Algorithm{Naive, Prefix} {
		CloseJoiner(New(a, opt)) // no-op, must not panic
	}
}

// TestBiJoinerCloseReleasesBothSides: BiJoiner.Close must close both
// underlying joiners' pools and stay usable afterwards.
func TestBiJoinerCloseReleasesBothSides(t *testing.T) {
	opt := Options{
		Params:      filter.Params{Func: similarity.Jaccard, Threshold: 0.6},
		Parallelism: 3,
	}
	bi := NewBi(Bundled, opt)
	recs := workload.NewGenerator(workload.UniformSmall(29)).Generate(100)
	n := 0
	for i, r := range recs {
		emit := func(Match) { n++ }
		if i%2 == 0 {
			bi.StepLeft(r, emit)
		} else {
			bi.StepRight(r, emit)
		}
	}
	if err := bi.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bi.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("degenerate: no cross-side matches")
	}
}

// TestParallelismIgnoredByOtherAlgorithms: Naive and Prefix accept the
// option without growing goroutines or changing results. Compared as sets:
// the Prefix joiner's per-probe emit order follows its inverted index's
// map iteration, which is not stable across runs even sequentially.
func TestParallelismIgnoredByOtherAlgorithms(t *testing.T) {
	recs := workload.NewGenerator(workload.UniformSmall(31)).Generate(200)
	asSet := func(xs [][4]float64) map[[4]float64]int {
		m := make(map[[4]float64]int)
		for _, x := range xs {
			m[x]++
		}
		return m
	}
	for _, a := range []Algorithm{Naive, Prefix} {
		base := Options{Params: filter.Params{Func: similarity.Jaccard, Threshold: 0.6}}
		par := base
		par.Parallelism = 8
		want := stepStream(New(a, base), recs)
		got := stepStream(New(a, par), recs)
		if !reflect.DeepEqual(asSet(got), asSet(want)) {
			t.Fatalf("%v: Parallelism changed results", a)
		}
	}
}
