// Package local provides the per-worker streaming join algorithms behind a
// single Joiner interface: a brute-force Naive joiner (testing baseline and
// cost-model anchor), a Prefix joiner (inverted prefix index with length,
// position and optional suffix filters — the record-at-a-time
// state of the art), and a Bundle joiner (the paper's bundle-based
// algorithm with batch verification).
//
// The distributed layer hosts exactly one Joiner per worker; the length-
// based framework drives it with store=true at the record's home worker and
// store=false elsewhere.
package local

import (
	"fmt"

	"repro/internal/bundle"
	"repro/internal/filter"
	"repro/internal/index"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/window"
)

// Match is a verified join result emitted by a Joiner.
type Match struct {
	Rec     *record.Record
	Overlap int
	Sim     float64
}

// Cost summarizes the work a joiner performed, in comparable units across
// algorithms. The load-aware partitioner and the experiment harness consume
// it.
type Cost struct {
	Probes       uint64 // Step calls
	Stored       uint64 // records stored
	Scanned      uint64 // postings / stored records visited
	Candidates   uint64 // pairs surviving candidate-time filters
	Verified     uint64 // pairs fully verified
	Results      uint64 // matches emitted
	VerifySteps  uint64 // merge iterations spent in verification
	Postings     uint64 // live posting entries (index footprint)
	SuffixPruned uint64 // candidates killed by the suffix filter
}

// Joiner is a single-threaded streaming set-similarity self-join operator.
type Joiner interface {
	// Step advances the stream to r: expire out-of-window state, emit every
	// stored match of r, and store r when store is true.
	Step(r *record.Record, store bool, emit func(Match))
	// Size reports the number of records currently stored.
	Size() int
	// Cost reports accumulated work counters.
	Cost() Cost
	// Name identifies the algorithm in reports.
	Name() string
	// Dump visits every live stored record in arrival order; returning
	// false stops the walk. Checkpointing uses it.
	Dump(visit func(*record.Record) bool)
	// Load stores r without emitting matches — the restore path. Records
	// must be loaded in their original arrival order.
	Load(r *record.Record)
}

// Algorithm selects a Joiner implementation.
type Algorithm int

const (
	// Naive scans every stored record and verifies length-compatible ones.
	Naive Algorithm = iota
	// Prefix is the record-at-a-time prefix-filter joiner.
	Prefix
	// Bundled is the bundle-based joiner with batch verification.
	Bundled
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Naive:
		return "naive"
	case Prefix:
		return "prefix"
	case Bundled:
		return "bundle"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a name produced by String back to an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "naive":
		return Naive, nil
	case "prefix":
		return Prefix, nil
	case "bundle":
		return Bundled, nil
	default:
		return 0, fmt.Errorf("local: unknown algorithm %q", name)
	}
}

// Options configures a Joiner.
type Options struct {
	Params filter.Params
	Window window.Policy
	// Bundle tunes the Bundled algorithm; ignored otherwise.
	Bundle bundle.Config
	// SuffixFilter enables the recursive suffix filter as a deep prune
	// between candidate generation and verification (Prefix algorithm
	// only). SuffixDepth bounds the recursion (default 2 when enabled).
	SuffixFilter bool
	SuffixDepth  int
	// Parallelism sizes the verifier pool of the Bundled algorithm: P-1
	// helper goroutines fan candidate verification out per record, with
	// results merged back in deterministic order (see bundle.ProbePar).
	// 0 or 1 keeps the joiner strictly single-threaded; other algorithms
	// ignore it. A parallel joiner owns goroutines — close it with
	// CloseJoiner (or an io.Closer assertion) when done.
	Parallelism int
}

// New constructs the requested joiner.
func New(a Algorithm, opt Options) Joiner {
	if opt.Window == nil {
		opt.Window = window.Unbounded{}
	}
	switch a {
	case Naive:
		return newNaive(opt)
	case Prefix:
		return newPrefix(opt)
	case Bundled:
		return newBundled(opt)
	default:
		panic(fmt.Sprintf("local: unknown algorithm %d", int(a)))
	}
}

// ---------------------------------------------------------------- naive --

type naiveJoiner struct {
	params filter.Params
	win    window.Policy
	store  []*record.Record
	head   int
	cost   Cost
}

func newNaive(opt Options) *naiveJoiner {
	return &naiveJoiner{params: opt.Params, win: opt.Window}
}

func (n *naiveJoiner) Name() string { return "naive" }
func (n *naiveJoiner) Size() int    { return len(n.store) - n.head }
func (n *naiveJoiner) Cost() Cost   { return n.cost }

// Dump implements Joiner.
func (n *naiveJoiner) Dump(visit func(*record.Record) bool) {
	for _, r := range n.store[n.head:] {
		if !visit(r) {
			return
		}
	}
}

// Load implements Joiner.
func (n *naiveJoiner) Load(r *record.Record) {
	n.store = append(n.store, r)
	n.cost.Stored++
}

func (n *naiveJoiner) Step(r *record.Record, store bool, emit func(Match)) {
	n.cost.Probes++
	for n.head < len(n.store) {
		s := n.store[n.head]
		if n.win.Live(s.ID, s.Time, r.ID, r.Time) {
			break
		}
		n.store[n.head] = nil
		n.head++
	}
	if n.head > 64 && n.head*2 > len(n.store) {
		n.store = append(n.store[:0], n.store[n.head:]...)
		n.head = 0
	}
	for _, s := range n.store[n.head:] {
		n.cost.Scanned++
		if s.ID == r.ID || !n.params.LengthCompatible(r.Len(), s.Len()) {
			continue
		}
		n.cost.Candidates++
		req := n.params.RequiredOverlap(r.Len(), s.Len())
		o, steps := overlapSteps(r.Tokens, s.Tokens)
		n.cost.VerifySteps += uint64(steps)
		n.cost.Verified++
		if o >= req {
			n.cost.Results++
			emit(Match{Rec: s, Overlap: o,
				Sim: similarity.FromOverlap(n.params.Func, o, r.Len(), s.Len())})
		}
	}
	if store {
		n.store = append(n.store, r)
		n.cost.Stored++
	}
}

func overlapSteps(a, b []uint32) (o, steps int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		steps++
		switch {
		case a[i] == b[j]:
			o++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return o, steps
}

// --------------------------------------------------------------- prefix --

type prefixJoiner struct {
	params      filter.Params
	ix          *index.Inverted
	cost        Cost
	suffixDepth int // 0 disables the suffix filter
}

func newPrefix(opt Options) *prefixJoiner {
	depth := 0
	if opt.SuffixFilter {
		depth = opt.SuffixDepth
		if depth <= 0 {
			depth = 2
		}
	}
	return &prefixJoiner{
		params:      opt.Params,
		ix:          index.New(opt.Params, opt.Window),
		suffixDepth: depth,
	}
}

func (p *prefixJoiner) Name() string { return "prefix" }
func (p *prefixJoiner) Size() int    { return p.ix.Size() }

// Dump implements Joiner.
func (p *prefixJoiner) Dump(visit func(*record.Record) bool) { p.ix.Dump(visit) }

// Load implements Joiner.
func (p *prefixJoiner) Load(r *record.Record) { p.ix.Insert(r) }

func (p *prefixJoiner) Cost() Cost {
	st := p.ix.Stats()
	c := p.cost
	c.Scanned = st.Scanned
	c.Candidates = st.Candidates
	c.Stored = st.Inserted
	c.Postings = st.Postings
	return c
}

func (p *prefixJoiner) Step(r *record.Record, store bool, emit func(Match)) {
	p.cost.Probes++
	p.ix.Evict(r.ID, r.Time)
	la := r.Len()
	p.ix.Probe(r, func(c index.Candidate) {
		req := p.params.RequiredOverlap(la, c.Rec.Len())
		if p.suffixDepth > 0 &&
			!p.params.SuffixOK(r.Tokens, c.Rec.Tokens, c.ResumeA, c.ResumeB, c.Overlap, p.suffixDepth) {
			p.cost.SuffixPruned++
			return
		}
		o, steps := verifyFromSteps(r.Tokens, c.Rec.Tokens, c.ResumeA, c.ResumeB, c.Overlap, req)
		p.cost.VerifySteps += uint64(steps)
		p.cost.Verified++
		if o >= req {
			p.cost.Results++
			emit(Match{Rec: c.Rec, Overlap: o,
				Sim: similarity.FromOverlap(p.params.Func, o, la, c.Rec.Len())})
		}
	})
	if store {
		p.ix.Insert(r)
	}
}

// verifyFromSteps resumes a merge at (i, j) with acc matches, counting
// iterations and aborting when the requirement becomes unreachable. When it
// aborts, the returned overlap is strictly below required, which is all the
// caller needs.
func verifyFromSteps(a, b []uint32, i, j, acc, required int) (o, steps int) {
	o = acc
	for i < len(a) && j < len(b) {
		rest := len(a) - i
		if lb := len(b) - j; lb < rest {
			rest = lb
		}
		if o+rest < required {
			return o, steps
		}
		steps++
		switch {
		case a[i] == b[j]:
			o++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return o, steps
}

// --------------------------------------------------------------- bundle --

type bundledJoiner struct {
	params filter.Params
	bx     *bundle.Index
	pool   *bundle.Pool // nil when Parallelism <= 1
	probes uint64
	stored uint64
}

func newBundled(opt Options) *bundledJoiner {
	b := &bundledJoiner{params: opt.Params, bx: bundle.New(opt.Params, opt.Window, opt.Bundle)}
	if opt.Parallelism > 1 {
		b.pool = bundle.NewPool(opt.Parallelism)
	}
	return b
}

func (b *bundledJoiner) Name() string { return "bundle" }
func (b *bundledJoiner) Size() int    { return int(b.bx.Stats().LiveMembers) }

// BundleStats exposes the underlying bundle index counters for ablation
// experiments; it is only present on the Bundled joiner.
func (b *bundledJoiner) BundleStats() bundle.Stats { return b.bx.Stats() }

// PublishLive makes the bundle index mirror its counters into ls after
// every record, for live scraping; only present on the Bundled joiner.
func (b *bundledJoiner) PublishLive(ls *bundle.LiveStats) { b.bx.PublishLive(ls) }

// Dump implements Joiner.
func (b *bundledJoiner) Dump(visit func(*record.Record) bool) { b.bx.Dump(visit) }

// Load implements Joiner: a silent probe rebuilds the bundle grouping the
// record had (or better) without emitting matches.
func (b *bundledJoiner) Load(r *record.Record) {
	best, _ := b.bx.Probe(r, func(bundle.Match) {})
	b.bx.Insert(r, best)
	b.stored++
}

func (b *bundledJoiner) Cost() Cost {
	st := b.bx.Stats()
	return Cost{
		Probes:      b.probes,
		Stored:      b.stored,
		Scanned:     st.Scanned,
		Candidates:  st.MemberChecks,
		Verified:    st.Verified,
		Results:     st.Results,
		VerifySteps: st.VerifySteps + st.UnionSteps,
		Postings:    st.Postings,
	}
}

func (b *bundledJoiner) Step(r *record.Record, store bool, emit func(Match)) {
	b.probes++
	b.bx.Evict(r.ID, r.Time)
	best, _ := b.bx.ProbePar(b.pool, r, func(m bundle.Match) {
		emit(Match{Rec: m.Rec, Overlap: m.Overlap, Sim: m.Sim})
	})
	if store {
		b.bx.Insert(r, best)
		b.stored++
	}
}

// VerifyPool exposes the verifier pool for metrics registration (nil when
// the joiner runs sequentially); only present on the Bundled joiner.
func (b *bundledJoiner) VerifyPool() *bundle.Pool { return b.pool }

// Close releases the verifier pool's helper goroutines. The joiner keeps
// working afterwards, falling back to the sequential probe path.
func (b *bundledJoiner) Close() error {
	if b.pool != nil {
		b.pool.Close()
		b.pool = nil
	}
	return nil
}

// CloseJoiner releases any goroutines j owns (the Bundled joiner's
// verifier pool). Safe on every Joiner; a no-op for the sequential ones.
func CloseJoiner(j Joiner) {
	if c, ok := j.(interface{ Close() error }); ok {
		c.Close()
	}
}

// Interface checks.
var (
	_ Joiner = (*naiveJoiner)(nil)
	_ Joiner = (*prefixJoiner)(nil)
	_ Joiner = (*bundledJoiner)(nil)
)
