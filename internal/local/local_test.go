package local

import (
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/window"
)

func opts(tau float64, win window.Policy) Options {
	return Options{
		Params: filter.Params{Func: similarity.Jaccard, Threshold: tau},
		Window: win,
	}
}

func rec(id record.ID, ranks ...tokens.Rank) *record.Record {
	return &record.Record{ID: id, Time: int64(id), Tokens: tokens.Dedup(ranks)}
}

func allAlgorithms() []Algorithm { return []Algorithm{Naive, Prefix, Bundled} }

func TestAlgorithmStringRoundTrip(t *testing.T) {
	for _, a := range allAlgorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip %v: got %v err %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("zzz"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestEveryJoinerFindsDuplicate(t *testing.T) {
	for _, a := range allAlgorithms() {
		j := New(a, opts(0.9, window.Unbounded{}))
		var got []record.ID
		j.Step(rec(0, 1, 2, 3, 4), true, func(Match) {})
		j.Step(rec(1, 1, 2, 3, 4), true, func(m Match) { got = append(got, m.Rec.ID) })
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("%v: matches=%v", a, got)
		}
		if j.Size() != 2 {
			t.Fatalf("%v: size=%d want 2", a, j.Size())
		}
	}
}

func TestProbeOnlyDoesNotStore(t *testing.T) {
	for _, a := range allAlgorithms() {
		j := New(a, opts(0.8, window.Unbounded{}))
		j.Step(rec(0, 1, 2, 3, 4), false, func(Match) {})
		n := 0
		j.Step(rec(1, 1, 2, 3, 4), true, func(Match) { n++ })
		if n != 0 {
			t.Fatalf("%v: probe-only record was stored (found %d matches)", a, n)
		}
		if j.Size() != 1 {
			t.Fatalf("%v: size=%d want 1", a, j.Size())
		}
	}
}

// TestJoinersAgreeWithNaive drives all three joiners over random streams at
// several thresholds and windows: their emitted pair sets must be
// identical.
func TestJoinersAgreeWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, tau := range []float64{0.5, 0.7, 0.85} {
		for _, win := range []window.Policy{window.Unbounded{}, window.Count{N: 30}, window.Time{Span: 40}} {
			stream := randomStream(rng, 300, 55)
			results := make(map[Algorithm]map[record.Pair]bool)
			for _, a := range allAlgorithms() {
				j := New(a, opts(tau, win))
				pairs := make(map[record.Pair]bool)
				for _, r := range stream {
					j.Step(r, true, func(m Match) {
						pairs[record.NewPair(r.ID, m.Rec.ID, 0)] = true
					})
				}
				results[a] = pairs
			}
			want := results[Naive]
			for _, a := range []Algorithm{Prefix, Bundled} {
				got := results[a]
				if len(got) != len(want) {
					t.Fatalf("τ=%v win=%v: %v found %d pairs, naive %d",
						tau, win, a, len(got), len(want))
				}
				for p := range want {
					if !got[p] {
						t.Fatalf("τ=%v win=%v: %v missing %v", tau, win, a, p)
					}
				}
			}
		}
	}
}

// TestJoinersAgreeOnCosineAndDice extends the agreement test to the other
// fractional similarity functions.
func TestJoinersAgreeOnCosineAndDice(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, f := range []similarity.Func{similarity.Cosine, similarity.Dice} {
		stream := randomStream(rng, 250, 45)
		o := Options{
			Params: filter.Params{Func: f, Threshold: 0.75},
			Window: window.Unbounded{},
		}
		results := make(map[Algorithm]map[record.Pair]bool)
		for _, a := range allAlgorithms() {
			j := New(a, o)
			pairs := make(map[record.Pair]bool)
			for _, r := range stream {
				j.Step(r, true, func(m Match) {
					pairs[record.NewPair(r.ID, m.Rec.ID, 0)] = true
				})
			}
			results[a] = pairs
		}
		want := results[Naive]
		for _, a := range []Algorithm{Prefix, Bundled} {
			got := results[a]
			if len(got) != len(want) {
				t.Fatalf("%v %v: got %d pairs want %d", f, a, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%v %v: missing %v", f, a, p)
				}
			}
		}
	}
}

func TestPrefixScansLessThanNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	stream := randomStream(rng, 800, 2000)
	nv := New(Naive, opts(0.8, window.Unbounded{}))
	pf := New(Prefix, opts(0.8, window.Unbounded{}))
	for _, r := range stream {
		nv.Step(r, true, func(Match) {})
		pf.Step(r, true, func(Match) {})
	}
	if pf.Cost().Verified >= nv.Cost().Verified {
		t.Fatalf("prefix filter gave no pruning: prefix=%d naive=%d",
			pf.Cost().Verified, nv.Cost().Verified)
	}
}

func TestCostCounters(t *testing.T) {
	for _, a := range allAlgorithms() {
		j := New(a, opts(0.8, window.Unbounded{}))
		j.Step(rec(0, 1, 2, 3, 4), true, func(Match) {})
		j.Step(rec(1, 1, 2, 3, 4), true, func(Match) {})
		c := j.Cost()
		if c.Probes != 2 {
			t.Fatalf("%v probes: %d", a, c.Probes)
		}
		if c.Stored != 2 {
			t.Fatalf("%v stored: %d", a, c.Stored)
		}
		if c.Results != 1 {
			t.Fatalf("%v results: %d", a, c.Results)
		}
	}
}

func TestNilWindowDefaultsToUnbounded(t *testing.T) {
	j := New(Prefix, Options{Params: filter.Params{Func: similarity.Jaccard, Threshold: 0.8}})
	j.Step(rec(0, 1, 2, 3), true, func(Match) {})
	n := 0
	j.Step(rec(1000000, 1, 2, 3), true, func(Match) { n++ })
	if n != 1 {
		t.Fatalf("unbounded default: got %d matches want 1", n)
	}
}

func randomStream(rng *rand.Rand, n, universe int) []*record.Record {
	var protos [][]tokens.Rank
	out := make([]*record.Record, 0, n)
	for i := 0; i < n; i++ {
		var set []tokens.Rank
		if len(protos) > 0 && rng.Float64() < 0.5 {
			proto := protos[rng.Intn(len(protos))]
			set = append([]tokens.Rank{}, proto...)
			if len(set) > 1 && rng.Float64() < 0.6 {
				set[rng.Intn(len(set))] = tokens.Rank(rng.Intn(universe))
			}
		} else {
			m := 2 + rng.Intn(12)
			for len(set) < m {
				set = append(set, tokens.Rank(rng.Intn(universe)))
			}
			protos = append(protos, set)
		}
		out = append(out, rec(record.ID(i), set...))
	}
	return out
}

// TestSuffixFilterPreservesResults: enabling the suffix filter must never
// change the result set, only prune candidates earlier.
func TestSuffixFilterPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	stream := randomStream(rng, 400, 60)
	run := func(suffix bool) (map[record.Pair]bool, Cost) {
		o := opts(0.7, window.Unbounded{})
		o.SuffixFilter = suffix
		j := New(Prefix, o)
		pairs := make(map[record.Pair]bool)
		for _, r := range stream {
			j.Step(r, true, func(m Match) {
				pairs[record.NewPair(r.ID, m.Rec.ID, 0)] = true
			})
		}
		return pairs, j.Cost()
	}
	plain, _ := run(false)
	filtered, cost := run(true)
	if len(plain) != len(filtered) {
		t.Fatalf("suffix filter changed results: %d vs %d", len(plain), len(filtered))
	}
	for p := range plain {
		if !filtered[p] {
			t.Fatalf("suffix filter dropped %v", p)
		}
	}
	if cost.SuffixPruned == 0 {
		t.Fatal("suffix filter never pruned anything on a random stream")
	}
}

func TestSuffixDepthDefault(t *testing.T) {
	o := opts(0.8, nil)
	o.SuffixFilter = true
	j := New(Prefix, o).(*prefixJoiner)
	if j.suffixDepth != 2 {
		t.Fatalf("default depth: %d", j.suffixDepth)
	}
	o.SuffixDepth = 5
	j = New(Prefix, o).(*prefixJoiner)
	if j.suffixDepth != 5 {
		t.Fatalf("explicit depth: %d", j.suffixDepth)
	}
}

func TestJoinerNames(t *testing.T) {
	for _, a := range allAlgorithms() {
		if got := New(a, opts(0.8, nil)).Name(); got != a.String() {
			t.Fatalf("name: %q vs %q", got, a.String())
		}
	}
}

func TestDumpAndLoadRoundTripPerJoiner(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	stream := randomStream(rng, 150, 40)
	for _, a := range allAlgorithms() {
		src := New(a, opts(0.7, window.Count{N: 60}))
		for _, r := range stream {
			src.Step(r, true, func(Match) {})
		}
		// Dump must visit exactly Size() live records in arrival order.
		var dumped []*record.Record
		src.Dump(func(r *record.Record) bool {
			dumped = append(dumped, r)
			return true
		})
		if len(dumped) != src.Size() {
			t.Fatalf("%v: dumped %d, size %d", a, len(dumped), src.Size())
		}
		for i := 1; i < len(dumped); i++ {
			if dumped[i].ID <= dumped[i-1].ID {
				t.Fatalf("%v: dump not in arrival order", a)
			}
		}
		// Early-stop must work.
		n := 0
		src.Dump(func(*record.Record) bool { n++; return n < 3 })
		if n != 3 && src.Size() >= 3 {
			t.Fatalf("%v: early stop visited %d", a, n)
		}
		// Load into a fresh joiner; future probes must behave like src.
		dst := New(a, opts(0.7, window.Count{N: 60}))
		for _, r := range dumped {
			dst.Load(r)
		}
		if dst.Size() != src.Size() {
			t.Fatalf("%v: loaded size %d vs %d", a, dst.Size(), src.Size())
		}
		probe := stream[len(stream)-1]
		probe2 := &record.Record{ID: probe.ID + 1, Time: probe.Time + 1, Tokens: probe.Tokens}
		var a1, a2 int
		src.Step(probe2, false, func(Match) { a1++ })
		dst.Step(probe2, false, func(Match) { a2++ })
		if a1 != a2 {
			t.Fatalf("%v: restored joiner diverges: %d vs %d matches", a, a1, a2)
		}
	}
}

func TestBiJoinerDirect(t *testing.T) {
	bi := NewBi(Prefix, opts(0.8, window.Count{N: 100}))
	got := 0
	bi.StepLeft(rec(0, 1, 2, 3, 4), func(Match) { got++ })
	bi.StepRight(rec(1, 1, 2, 3, 4), func(m Match) {
		got++
		if m.Rec.ID != 0 {
			t.Fatalf("wrong partner %d", m.Rec.ID)
		}
	})
	bi.StepLeft(rec(2, 1, 2, 3, 4), func(m Match) { got++ }) // matches right record 1
	if got != 2 {
		t.Fatalf("matches: %d", got)
	}
	if bi.SizeLeft() != 2 || bi.SizeRight() != 1 {
		t.Fatalf("sizes: %d/%d", bi.SizeLeft(), bi.SizeRight())
	}
	if bi.CostLeft().Stored != 2 || bi.CostRight().Stored != 1 {
		t.Fatalf("costs: %+v %+v", bi.CostLeft(), bi.CostRight())
	}
}

func TestBiJoinerOwnSideEviction(t *testing.T) {
	// A left record must expire from the left store even if no right
	// record probes it for a while.
	bi := NewBi(Naive, opts(0.9, window.Count{N: 2}))
	bi.StepLeft(rec(0, 1, 2, 3), func(Match) {})
	bi.StepLeft(rec(5, 7, 8, 9), func(Match) {})
	bi.StepLeft(rec(10, 11, 12, 13), func(Match) {})
	if bi.SizeLeft() > 2 {
		t.Fatalf("left store not evicted: %d", bi.SizeLeft())
	}
}
