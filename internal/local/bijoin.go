package local

import "repro/internal/record"

// BiJoiner joins two streams R and S: each incoming R-record is matched
// against the stored S-records and vice versa; same-side pairs are never
// reported. This is the data-integration shape (two sources feeding one
// matcher) built from two single-stream joiners: a record probes the
// opposite side's store and loads into its own side without probing.
type BiJoiner struct {
	left, right Joiner
}

// NewBi builds a two-stream joiner; both sides share the algorithm and
// options.
func NewBi(a Algorithm, opt Options) *BiJoiner {
	return &BiJoiner{left: New(a, opt), right: New(a, opt)}
}

// StepLeft processes the next R-record: emits its matches among stored
// S-records, then stores it on the R side.
func (b *BiJoiner) StepLeft(r *record.Record, emit func(Match)) {
	b.StepSide(r, false, true, emit)
}

// StepRight processes the next S-record symmetrically.
func (b *BiJoiner) StepRight(r *record.Record, emit func(Match)) {
	b.StepSide(r, true, true, emit)
}

// StepSide is the distributed-worker entry point: probe the opposite side
// always, store on the record's own side only when store is true (the
// length-based framework stores each record at one worker only).
func (b *BiJoiner) StepSide(r *record.Record, right, store bool, emit func(Match)) {
	own, opposite := b.left, b.right
	if right {
		own, opposite = b.right, b.left
	}
	opposite.Step(r, false, emit) // probe + evict the opposite side
	if store {
		own.Load(r)
	}
	b.evictOwn(own, r)
}

// evictOwn advances the window of the side that just stored a record;
// Step already evicts the probed side, but the storing side would
// otherwise only age when probed by the opposite stream.
func (b *BiJoiner) evictOwn(j Joiner, r *record.Record) {
	// Step with an impossible record would be wasteful; all three joiners
	// expose eviction through Step's probe path, so the cheapest correct
	// trigger is a probe with an empty record, which generates no
	// candidates.
	j.Step(&record.Record{ID: r.ID, Time: r.Time}, false, func(Match) {})
}

// Close releases any goroutines the side joiners own (verifier pools of
// the Bundled algorithm); both sides keep working sequentially afterwards.
func (b *BiJoiner) Close() error {
	CloseJoiner(b.left)
	CloseJoiner(b.right)
	return nil
}

// SizeLeft and SizeRight report per-side stored counts.
func (b *BiJoiner) SizeLeft() int { return b.left.Size() }

// SizeRight reports the S-side stored count.
func (b *BiJoiner) SizeRight() int { return b.right.Size() }

// CostLeft and CostRight expose per-side work counters.
func (b *BiJoiner) CostLeft() Cost { return b.left.Cost() }

// CostRight exposes the S-side work counters.
func (b *BiJoiner) CostRight() Cost { return b.right.Cost() }

// LoadSide stores r on one side without probing — the restore path.
func (b *BiJoiner) LoadSide(r *record.Record, right bool) {
	if right {
		b.right.Load(r)
	} else {
		b.left.Load(r)
	}
}

// DumpSides visits every live stored record with its side, left side first
// (each side in arrival order); returning false stops the walk.
func (b *BiJoiner) DumpSides(visit func(r *record.Record, right bool) bool) {
	stopped := false
	b.left.Dump(func(r *record.Record) bool {
		if !visit(r, false) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	b.right.Dump(func(r *record.Record) bool { return visit(r, true) })
}
