package bundle

import (
	"runtime"
	"testing"
)

// TestAutoPoolSizeBounds pins the auto-sizer's contract: the result is
// always a usable pool size within [1, min(GOMAXPROCS, autoPoolCap)].
// The exact value is host-dependent by design (measured-scaling clamp),
// so only the bounds are asserted.
func TestAutoPoolSizeBounds(t *testing.T) {
	p := AutoPoolSize()
	hi := runtime.GOMAXPROCS(0)
	if hi > autoPoolCap {
		hi = autoPoolCap
	}
	if p < 1 || p > hi {
		t.Fatalf("AutoPoolSize() = %d, want within [1, %d]", p, hi)
	}
	// A pool of the chosen size must construct and close cleanly.
	pool := NewPool(p)
	pool.Close()
}
