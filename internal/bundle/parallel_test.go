package bundle

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/record"
	"repro/internal/window"
)

// processPar mirrors Index.Process with the probe fanned over pool — the
// sequence bundledJoiner.Step performs per record.
func processPar(bx *Index, pool *Pool, r *record.Record, emit func(Match)) {
	bx.Evict(r.ID, r.Time)
	best, ok := bx.ProbePar(pool, r, emit)
	if !ok {
		bx.InsertSingleton(r)
	} else {
		bx.Insert(r, best)
	}
	bx.stats.Records++
}

// emitted is one match flattened for ordered comparison: probe identity
// plus everything the match carries.
type emitted struct {
	Probe   record.ID
	Partner record.ID
	Overlap int
	Sim     float64
}

func runSequential(stream []*record.Record, tau float64, win window.Policy, cfg Config) ([]emitted, Stats) {
	bx := New(params(tau), win, cfg)
	var out []emitted
	for _, r := range stream {
		bx.Process(r, func(m Match) {
			out = append(out, emitted{r.ID, m.Rec.ID, m.Overlap, m.Sim})
		})
	}
	return out, bx.Stats()
}

func runParallel(stream []*record.Record, tau float64, win window.Policy, cfg Config, p int) ([]emitted, Stats) {
	bx := New(params(tau), win, cfg)
	pool := NewPool(p)
	defer pool.Close()
	var out []emitted
	for _, r := range stream {
		processPar(bx, pool, r, func(m Match) {
			out = append(out, emitted{r.ID, m.Rec.ID, m.Overlap, m.Sim})
		})
	}
	return out, bx.Stats()
}

func at(xs []emitted, i int) interface{} {
	if i < len(xs) {
		return xs[i]
	}
	return "<end of stream>"
}

// requireStreams asserts byte-identical ordered match streams and identical
// work counters between a parallel run and the sequential reference.
func requireStreams(t *testing.T, label string, got, want []emitted, gotStats, wantStats Stats) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("%s: match stream diverges at position %d: got %v want %v (lengths %d vs %d)",
			label, i, at(got, i), at(want, i), len(got), len(want))
	}
	if gotStats != wantStats {
		t.Fatalf("%s: stats diverge:\n got  %+v\n want %+v", label, gotStats, wantStats)
	}
}

// TestParallelParityMatchStream is the tentpole determinism gate at the
// index level: for every pool size the parallel probe must emit the exact
// ordered match stream of the sequential Probe — same matches, same order,
// same similarity bytes — and accumulate the exact same work counters, so
// insertion decisions (and therefore index evolution) are identical too.
func TestParallelParityMatchStream(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	stream := duplicateHeavyStream(rng, 500, 40)
	for _, tau := range []float64{0.5, 0.8} {
		for _, win := range []window.Policy{window.Unbounded{}, window.Count{N: 60}} {
			want, wantStats := runSequential(stream, tau, win, Config{})
			if tau == 0.5 && len(want) == 0 {
				t.Fatal("degenerate workload: sequential run found no matches")
			}
			for _, p := range []int{1, 2, 4, 8} {
				got, gotStats := runParallel(stream, tau, win, Config{}, p)
				requireStreams(t, fmt.Sprintf("τ=%v win=%v P=%d", tau, win, p),
					got, want, gotStats, wantStats)
			}
		}
	}
}

// TestParallelParityAcrossConfigs re-checks parity under the verification
// and grouping variants: one-by-one verification (different counter mix),
// tight member caps (insertion rejections), and aggressive grouping.
func TestParallelParityAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	stream := duplicateHeavyStream(rng, 400, 30)
	configs := []Config{
		{OneByOneVerify: true},
		{MaxMembers: 3},
		{GroupThreshold: 0.95},
		{MinCoreFrac: 0.9},
	}
	for ci, cfg := range configs {
		want, wantStats := runSequential(stream, 0.6, window.Count{N: 100}, cfg)
		for _, p := range []int{2, 8} {
			got, gotStats := runParallel(stream, 0.6, window.Count{N: 100}, cfg, p)
			requireStreams(t, fmt.Sprintf("cfg#%d P=%d", ci, p), got, want, gotStats, wantStats)
		}
	}
}

// TestPoolCloseIdempotent covers the lifecycle edges: double close, closing
// a size-1 pool (no goroutines), and the nil pool's snapshot.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(4)
	if p.Size() != 4 {
		t.Fatalf("size: %d", p.Size())
	}
	p.Close()
	p.Close()

	one := NewPool(1)
	one.Close()
	one.Close()

	var nilPool *Pool
	nilPool.Close()
	if s := nilPool.Snapshot(); s.Size != 1 {
		t.Fatalf("nil pool snapshot size: %d", s.Size)
	}
	if np := NewPool(0); np.Size() != 1 {
		t.Fatalf("clamp: NewPool(0) size %d", np.Size())
	}
}

// TestPoolSnapshotCounters checks the accounting the obs layer scrapes:
// fanned rounds happen, and the per-context verified counters sum exactly
// to the fanned-candidate total.
func TestPoolSnapshotCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	// Never group: every record becomes its own bundle, so probes see many
	// candidate bundles and reliably cross the fanout cutoff.
	stream := duplicateHeavyStream(rng, 400, 25)
	bx := New(params(0.5), window.Unbounded{}, Config{GroupThreshold: 2.0})
	pool := NewPool(3)
	defer pool.Close()
	for _, r := range stream {
		processPar(bx, pool, r, func(Match) {})
	}
	s := pool.Snapshot()
	if s.Size != 3 || len(s.PerCtx) != 3 {
		t.Fatalf("snapshot shape: %+v", s)
	}
	if s.RoundsParallel == 0 {
		t.Fatal("no probe ever fanned out on a candidate-heavy stream")
	}
	var per uint64
	for _, v := range s.PerCtx {
		per += v
	}
	if per != s.Fanned {
		t.Fatalf("per-context verified %d != fanned %d", per, s.Fanned)
	}
	if s.PerCtx[0] == 0 {
		t.Fatal("the probing goroutine's own context did no work")
	}
	if v := pool.CtxVerified(0); v != s.PerCtx[0] {
		t.Fatalf("CtxVerified(0) = %d, snapshot says %d", v, s.PerCtx[0])
	}
}

// BenchmarkParallelVerify drives the full per-record pipeline (evict,
// parallel probe, insert) at each pool size over a duplicate-heavy windowed
// stream. On a multi-core box P>1 shows the verify-phase speedup; on one
// core it measures pool overhead (the parity tests guarantee the output is
// identical either way).
// BenchmarkProbePar isolates the probe path (no inserts after warmup):
// a pre-built index is probed with fresh records, so the numbers track
// candidate claiming and the verify fan-out rather than index
// maintenance. This is the before/after benchmark for chunked candidate
// claiming (see claimChunk) — the contended atomic on j.next is the
// dominant cost at high P with cheap per-candidate work.
func BenchmarkProbePar(b *testing.B) {
	rng := rand.New(rand.NewSource(73))
	stream := duplicateHeavyStream(rng, 3000, 400)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			bx := New(params(0.5), window.Unbounded{}, Config{})
			pool := NewPool(p)
			defer pool.Close()
			for i, src := range stream {
				r := &record.Record{ID: record.ID(i), Time: int64(i), Tokens: src.Tokens}
				processPar(bx, pool, r, func(Match) {})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := stream[i%len(stream)]
				r := &record.Record{ID: record.ID(len(stream) + i), Time: int64(len(stream) + i), Tokens: src.Tokens}
				if p > 1 {
					bx.ProbePar(pool, r, func(Match) {})
				} else {
					bx.Probe(r, func(Match) {})
				}
			}
		})
	}
}

func BenchmarkParallelVerify(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	stream := duplicateHeavyStream(rng, 2000, 30)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			bx := New(params(0.5), window.Count{N: 500}, Config{})
			pool := NewPool(p)
			defer pool.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := stream[i%len(stream)]
				r := &record.Record{ID: record.ID(i), Time: int64(i), Tokens: src.Tokens}
				processPar(bx, pool, r, func(Match) {})
			}
		})
	}
}
