// Adaptive kernel tuning: a per-run BitsetMinLen learned from the
// realized verify_kernel_* mix instead of the static default. The knob
// only moves packing *eligibility* — which kernel runs a merge — and
// every kernel is exact, so adaptation can never change the emitted
// match stream; it only shifts work between packing cost on the insert
// path and word-merge savings on the verify path.
package bundle

import "repro/internal/similarity"

const (
	// adaptInterval is the probe count between re-estimates.
	adaptInterval = 4096
	// adaptMinSample is the minimum kernel-merge count an interval must
	// contribute before its mix is trusted.
	adaptMinSample = 256
	// adaptMinLen/adaptMaxLen clamp the adapted cutoff.
	adaptMinLen = 16
	adaptMaxLen = 512
)

// adaptTick runs once per probe (from finishProbe). Every adaptInterval
// probes it inspects the kernel mix since the last estimate: when the
// bitset kernel carries most merges the packing cutoff halves (pack
// more, down to adaptMinLen); when bitset merges are rare despite
// packing, the cutoff doubles (stop paying pack cost the verify phase
// never repays, up to adaptMaxLen). Off unless AdaptiveMinLen is set,
// and meaningful only in auto mode — forced modes ignore BitsetMinLen.
//
// Single-writer safety: BitsetMinLen is read only by ShouldPack, which
// runs in the single-writer insert/collect phases; kernel dispatch
// (Choose) never consults it, so mutating it between probes can never
// race with a fanned verify phase.
func (bx *Index) adaptTick() {
	if !bx.cfg.Kernel.AdaptiveMinLen || bx.cfg.Kernel.Mode != similarity.KernelAuto {
		return
	}
	bx.adaptProbes++
	if bx.adaptProbes%adaptInterval != 0 {
		return
	}
	dl := bx.stats.KernelLinear - bx.adaptMark.linear
	dg := bx.stats.KernelGallop - bx.adaptMark.gallop
	db := bx.stats.KernelBitset - bx.adaptMark.bitset
	bx.adaptMark.linear = bx.stats.KernelLinear
	bx.adaptMark.gallop = bx.stats.KernelGallop
	bx.adaptMark.bitset = bx.stats.KernelBitset
	total := dl + dg + db
	if total < adaptMinSample {
		return
	}
	cut := bx.cfg.Kernel.BitsetMinLen
	switch {
	case db*2 > total:
		cut /= 2
	case db*20 < total:
		cut *= 2
	}
	if cut < adaptMinLen {
		cut = adaptMinLen
	}
	if cut > adaptMaxLen {
		cut = adaptMaxLen
	}
	bx.cfg.Kernel.BitsetMinLen = cut
}
